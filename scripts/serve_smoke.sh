#!/bin/sh
# serve-smoke: end-to-end gate for the tuning service (DESIGN.md §13).
#
# Drives a pipe-mode daemon from a pre-written request file three times:
#
#   run A  — uninterrupted: 5 requests against --max-active 2
#            --max-queue 1, so exactly 3 sessions are admitted and 2 are
#            shed with a structured rejection;
#   run B1 — same requests with a journal and an injected crash
#            (--kill-after-rounds), which must exit with code 42 and
#            leave the request journals and checkpoints behind;
#   run B2 — restarted on the same journal with no new input: recovery
#            must resume the interrupted sessions and complete them.
#
# The gate: the sorted "ok" response lines of B1 + B2 must be
# byte-identical to run A's — crash plus recovery loses nothing and
# changes nothing.
set -eu

CLI=${CLI:-_build/default/bin/alt_cli.exe}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/alt_serve_smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

[ -x "$CLI" ] || fail "CLI not built at $CLI (run: dune build bin/alt_cli.exe)"

req() { "$CLI" request --emit "$@"; }
{
  req --id r0 --op gmm --spatial 8 --channels 8 --out-channels 8 --budget 12
  req --id r1 --op c2d --spatial 6 --channels 4 --out-channels 8 --budget 12
  req --id r2 --op gmm --spatial 8 --channels 8 --out-channels 8 --budget 12 --seed 3
  req --id r3 --op c2d --spatial 6 --channels 4 --out-channels 8 --budget 12 --seed 4
  req --id r4 --op gmm --spatial 8 --channels 8 --out-channels 8 --budget 8
} > "$DIR/reqs.bin"

count() { grep -c "$1" "$2" 2>/dev/null || true; }

# --- run A: uninterrupted --------------------------------------------
"$CLI" serve --max-active 2 --max-queue 1 \
  < "$DIR/reqs.bin" > "$DIR/a.out" 2> "$DIR/a.err" \
  || fail "run A exited $?"

[ "$(count '"status":"rejected"' "$DIR/a.out")" = 2 ] \
  || fail "expected 2 shed requests, got $(count '"status":"rejected"' "$DIR/a.out")"
[ "$(count '"reason":"overloaded"' "$DIR/a.out")" = 2 ] \
  || fail "rejections lack the overloaded reason"
[ "$(count 'retry_after_ms' "$DIR/a.out")" = 2 ] \
  || fail "rejections lack the retry_after_ms hint"
[ "$(count '"status":"ok"' "$DIR/a.out")" = 3 ] \
  || fail "expected 3 completed sessions, got $(count '"status":"ok"' "$DIR/a.out")"

# --- run B1: crash mid-tuning ----------------------------------------
set +e
"$CLI" serve --max-active 2 --max-queue 1 --journal "$DIR/j" \
  --kill-after-rounds 2 \
  < "$DIR/reqs.bin" > "$DIR/b1.out" 2> "$DIR/b1.err"
code=$?
set -e
[ "$code" = 42 ] || fail "expected injected-crash exit 42, got $code"
[ "$(ls "$DIR/j"/*.req.json 2>/dev/null | wc -l)" -ge 1 ] \
  || fail "crash left no request journals behind"

# --- run B2: restart + recovery --------------------------------------
"$CLI" serve --max-active 2 --max-queue 1 --journal "$DIR/j" \
  < /dev/null > "$DIR/b2.out" 2> "$DIR/b2.err" \
  || fail "recovery run exited $?"

grep '"status":"ok"' "$DIR/a.out" | sort > "$DIR/a.ok"
cat "$DIR/b1.out" "$DIR/b2.out" | grep '"status":"ok"' | sort > "$DIR/b.ok"
cmp -s "$DIR/a.ok" "$DIR/b.ok" \
  || { diff "$DIR/a.ok" "$DIR/b.ok" >&2 || true; \
       fail "crash+recovery responses differ from the uninterrupted run"; }

[ "$(ls "$DIR/j"/*.req.json 2>/dev/null | wc -l)" = 0 ] \
  || fail "recovery left request journals behind"

echo "serve-smoke: OK (3 sessions admitted, 2 shed, crash at round 2 recovered byte-identically)"
