(* Deterministic fault injection (see the .mli).

   Every decision is derived from one MD5 digest of (seed, candidate key):
   the first three bytes draw the "does it fault" Bernoulli, the next two
   pick the failure mode and the flaky-attempt count.  Nothing here reads
   a clock or a global RNG, so the fault pattern commutes with pool size,
   batching, retries and checkpoint/resume. *)

type mode = Crash | Timeout | Flaky of int | Persistent

type t = { rate : float; seed : int }

exception Injected of string

let none = { rate = 0.0; seed = 0 }

let create ?(seed = 0) ~rate () =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Fault.create: rate must be in [0, 1]";
  { rate; seed }

let active t = t.rate > 0.0

(* Gated decision counters (DESIGN.md §11): how often the injector was
   consulted and which modes it drew.  Counters are atomic and only ever
   written — the injector never reads them — so enabling metrics cannot
   perturb the fault pattern. *)
let m_decisions = Alt_obs.Metrics.counter "fault.decisions"
let m_crash = Alt_obs.Metrics.counter "fault.injected.crash"
let m_timeout = Alt_obs.Metrics.counter "fault.injected.timeout"
let m_flaky = Alt_obs.Metrics.counter "fault.injected.flaky"
let m_persistent = Alt_obs.Metrics.counter "fault.injected.persistent"

let count_mode = function
  | None -> ()
  | Some Crash -> Alt_obs.Metrics.incr m_crash
  | Some Timeout -> Alt_obs.Metrics.incr m_timeout
  | Some (Flaky _) -> Alt_obs.Metrics.incr m_flaky
  | Some Persistent -> Alt_obs.Metrics.incr m_persistent

let decide t ~key =
  if t.rate <= 0.0 then None
  else begin
    Alt_obs.Metrics.incr m_decisions;
    let d = Digest.string (Printf.sprintf "fault|%d|%s" t.seed key) in
    let byte i = Char.code d.[i] in
    (* 24 uniform bits -> u in [0, 1) *)
    let u =
      float_of_int ((byte 0 lsl 16) lor (byte 1 lsl 8) lor byte 2)
      /. 16_777_216.0
    in
    let r =
      if u >= t.rate then None
      else
        (* mode mix: 25% crashes, 25% timeouts, 30% transient flakes
           (recoverable by retry), 20% persistent errors *)
        let m = byte 3 mod 100 in
        if m < 25 then Some Crash
        else if m < 50 then Some Timeout
        else if m < 80 then Some (Flaky (1 + (byte 4 mod 2)))
        else Some Persistent
    in
    count_mode r;
    r
  end

let backoff_ms ~attempt = 10.0 *. (2.0 ** float_of_int attempt)

let pp_mode ppf = function
  | Crash -> Fmt.string ppf "crash"
  | Timeout -> Fmt.string ppf "timeout"
  | Flaky k -> Fmt.pf ppf "flaky(%d)" k
  | Persistent -> Fmt.string ppf "persistent"
