(** Deterministic fault injection for the measurement pipeline.

    Real auto-tuners lose a large fraction of their on-device measurements
    to build errors, kernel timeouts and flaky devices, and only work
    because the search records those failures (with a penalty cost) and
    keeps going.  Our measurements are simulations that never fail on
    their own, so robustness must be injectable: this module decides, per
    measured candidate, whether its simulation fails and how.

    The injector is a pure function of [(seed, candidate key)] — the key
    being the canonical-program digest of {!Alt_tuner.Measure} — so the
    injected fault pattern is byte-identical across runs, across pool
    sizes, and across checkpoint/resume, which is what makes the recovery
    machinery testable. *)

(** What happens to a faulted candidate's simulation attempts. *)
type mode =
  | Crash  (** every attempt raises {!Injected} (a simulator crash) *)
  | Timeout
      (** every attempt blows through the per-measurement point budget and
          is killed by the watchdog *)
  | Flaky of int
      (** transient: the first [k] attempts fail, the next one succeeds *)
  | Persistent  (** every attempt reports a measurement error *)

type t = { rate : float; seed : int }
(** An injector: candidates fault with probability [rate] (under the
    deterministic per-key draw), patterned by [seed]. *)

exception Injected of string
(** The exception raised by {!Crash}-mode attempts (inside pool workers,
    so the pool's failure draining is exercised for real). *)

val none : t
(** No faults; the measurement path is byte-identical to an injector-free
    build. *)

val create : ?seed:int -> rate:float -> unit -> t
(** Raises [Invalid_argument] unless [0 <= rate <= 1]. *)

val active : t -> bool

val decide : t -> key:string -> mode option
(** The fault assigned to candidate [key]: [None] with probability
    [1 - rate].  Pure and deterministic in [(t.seed, key)]. *)

val backoff_ms : attempt:int -> float
(** Deterministic exponential backoff schedule charged (as simulated
    milliseconds, not wall-clock sleep) before retry [attempt + 1]. *)

val pp_mode : mode Fmt.t
