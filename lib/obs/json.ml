(* Minimal JSON values: just enough for the observability subsystem to
   render metric snapshots and trace records, and to parse them back in
   validators and tests.  No external dependency (yojson is not in the
   build environment); the grammar is standard JSON with two deliberate
   restrictions — numbers are OCaml ints or floats, and non-finite floats
   render as [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Stdlib.Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Stdlib.Buffer.add_string buf "\\\""
      | '\\' -> Stdlib.Buffer.add_string buf "\\\\"
      | '\n' -> Stdlib.Buffer.add_string buf "\\n"
      | '\r' -> Stdlib.Buffer.add_string buf "\\r"
      | '\t' -> Stdlib.Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Stdlib.Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Stdlib.Buffer.add_char buf c)
    s;
  Stdlib.Buffer.add_char buf '"'

(* Floats render via the shortest-exact [%.17g]-style fallback chain:
   prefer the shortest representation that round-trips, so whole numbers
   like 2.0 stay readable ("2.0", not "2.0000000000000000e+00"). *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  (* ensure the token re-parses as a float, not an int *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s
  else s ^ ".0"

let rec render buf (v : t) =
  match v with
  | Null -> Stdlib.Buffer.add_string buf "null"
  | Bool b -> Stdlib.Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Stdlib.Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Stdlib.Buffer.add_string buf (float_repr f)
      else Stdlib.Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List l ->
      Stdlib.Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Stdlib.Buffer.add_char buf ',';
          render buf x)
        l;
      Stdlib.Buffer.add_char buf ']'
  | Obj fields ->
      Stdlib.Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Stdlib.Buffer.add_char buf ',';
          escape_to buf k;
          Stdlib.Buffer.add_char buf ':';
          render buf x)
        fields;
      Stdlib.Buffer.add_char buf '}'

let to_string v =
  let buf = Stdlib.Buffer.create 256 in
  render buf v;
  Stdlib.Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_token c =
  expect c '"';
  let buf = Stdlib.Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Stdlib.Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Stdlib.Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Stdlib.Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Stdlib.Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Stdlib.Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Stdlib.Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Stdlib.Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Stdlib.Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* ASCII-only escapes are what our own emitter produces *)
            if code < 0x80 then Stdlib.Buffer.add_char buf (Char.chr code)
            else Stdlib.Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Stdlib.Buffer.add_char buf ch;
        go ()
  in
  go ();
  Stdlib.Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with Some ch when is_num_char ch -> advance c; go () | _ -> ()
  in
  go ();
  let tok = String.sub c.src start (c.pos - start) in
  if tok = "" then fail c "expected number";
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') tok
  in
  if is_float then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail c "bad float"
  else
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string_token c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string_token c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ()
          | Some '}' -> advance c
          | _ -> fail c "expected , or }"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected , or ]"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_float_opt = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
