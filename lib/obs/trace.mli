(** Span-based structured tracing (DESIGN.md §11).

    Off by default: until {!configure} (or [ALT_TRACE=FILE]) installs a
    sink, {!with_span} is one flag check plus a direct call of the traced
    function — no allocation — and {!instant} is a no-op.  When enabled,
    records are written as JSONL, one object per line:

    {v {"seq":12,"ts":1754500000123456000,"ph":"B","name":"measure.batch","attrs":{"pending":7}} v}

    [ph] is ["B"] (span begin), ["E"] (span end) or ["I"] (instant).
    The sink assigns strictly increasing [seq] numbers and clamps [ts]
    (nanoseconds) to be non-decreasing in emission order.

    Records produced inside pool tasks are captured into per-task
    buffers ({!task_begin}/{!task_end}) and flushed by the pool on the
    calling domain in submission order ({!flush_buffer}), so the record
    stream is identical for every [--jobs] value, modulo timestamps.

    Tracing reads clocks and writes to its own sink only — it never
    touches tuner state, so enabling it cannot change a tuning
    trajectory (enforced by the differential suite in
    test/test_obs.ml). *)

val enabled : unit -> bool

val configure : path:string -> unit
(** Open (truncate) [path] as the trace sink; closed at process exit. *)

val configure_from_env : unit -> unit
(** Honour [ALT_TRACE=FILE]: like {!configure} when set. *)

val close : unit -> unit
val flush : unit -> unit
val path : unit -> string option

(** {1 Spans and events} *)

val with_span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] emits a ["B"] record, runs [f], and emits the
    matching ["E"] record even when [f] raises.  Call sites with
    non-trivial [attrs] should gate on {!enabled} themselves to avoid
    building the attribute list on the disabled path. *)

val instant : ?attrs:(string * Json.t) list -> string -> unit

(** {1 Per-task capture buffers (pool integration)}

    A worker calls {!task_begin} before running a task body and
    {!task_end} after; records emitted in between land in the returned
    buffer instead of the sink.  The pool then calls {!flush_buffer} on
    the calling domain, in submission order, once the batch has joined.
    All three are no-ops while tracing is disabled ([task_begin] returns
    [None]). *)

type buffer

val task_begin : unit -> buffer option
val task_end : buffer option -> unit
val flush_buffer : buffer option -> unit

(** {1 Clocks} *)

val now_ns : unit -> int
val now_ms : unit -> float
