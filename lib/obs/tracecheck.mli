(** Trace-file validation: parse a JSONL trace produced by {!Trace} back
    into records and check the sink's invariants.  Shared by the CLI
    [obs-validate] subcommand and the round-trip tests. *)

type record = {
  seq : int;
  ts : int;
  ph : string;  (** ["B"], ["E"] or ["I"] *)
  name : string;
  attrs : (string * Json.t) list;
}

val parse_line : string -> (record, string) result
val parse_file : string -> (record list, string) result

val validate : record list -> (unit, string) result
(** Checks that [seq] runs 0,1,2,… in file order, timestamps never go
    backwards, and every ["E"] closes the innermost open ["B"] of the
    same name with nothing left open at the end. *)

val validate_file : string -> (unit, string) result

val normalize : record list -> string list
(** Timestamp- and seq-free projection (one canonical JSON string per
    record); attributes carrying wall-clock readings ([gbdt_fit_ms])
    are dropped too.  Identical runs must agree on it exactly, for
    every [--jobs] value. *)
