(* Span-based structured tracing (DESIGN.md §11).

   One record per line of JSONL, three phases: "B" (span begin), "E"
   (span end), "I" (instant event).  The sink stamps every record with a
   strictly increasing sequence number and clamps timestamps to be
   non-decreasing in emission order, so a trace file is always
   well-formed even when records produced on different domains carry
   slightly skewed clock readings.

   Determinism contract (the part the round-trip tests pin down): the
   emitted record *stream* — names, phases, attributes, nesting — is a
   pure function of the traced computation, independent of --jobs.
   Records produced inside a pool task are captured into a per-task
   buffer on the worker domain and flushed by the pool on the calling
   domain in submission order (Pool.run_slots), so two identical runs
   produce byte-identical traces modulo the "ts" fields.  Only
   timestamps vary between runs; validators normalize them.

   Trajectory neutrality: tracing reads wall clocks and writes to its
   own sink — it never touches an RNG, a budget counter or any tuner
   state, so enabling it cannot change a tuning result (enforced by the
   differential suite in test/test_obs.ml).  The disabled path of
   {!with_span} is one atomic-flag check and a direct call of the traced
   function: no allocation, which is what keeps instrumented inner loops
   (Profiler.run) at zero overhead by default. *)

type record = {
  ph : char; (* 'B' | 'E' | 'I' *)
  name : string;
  ts : int; (* nanoseconds since the epoch, pre-clamping *)
  attrs : (string * Json.t) list;
}

type sink = {
  oc : out_channel;
  path : string;
  lock : Mutex.t;
  mutable seq : int;
  mutable last_ts : int;
}

let sink : sink option Atomic.t = Atomic.make None

let enabled () = Atomic.get sink <> None

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let now_ms () = Unix.gettimeofday () *. 1e3

(* ------------------------------------------------------------------ *)
(* Sink                                                               *)
(* ------------------------------------------------------------------ *)

let render_line seq ts (r : record) =
  let buf = Stdlib.Buffer.create 128 in
  let json =
    Json.Obj
      [
        ("seq", Json.Int seq);
        ("ts", Json.Int ts);
        ("ph", Json.String (String.make 1 r.ph));
        ("name", Json.String r.name);
        ("attrs", Json.Obj r.attrs);
      ]
  in
  Stdlib.Buffer.add_string buf (Json.to_string json);
  Stdlib.Buffer.add_char buf '\n';
  Stdlib.Buffer.contents buf

let sink_write (r : record) =
  match Atomic.get sink with
  | None -> () (* closed mid-flight: drop silently *)
  | Some s ->
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () ->
          let ts = if r.ts > s.last_ts then r.ts else s.last_ts in
          s.last_ts <- ts;
          let seq = s.seq in
          s.seq <- seq + 1;
          output_string s.oc (render_line seq ts r))

let flush () =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () -> Stdlib.flush s.oc)

let close () =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      Atomic.set sink None;
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () -> close_out_noerr s.oc)

let at_exit_installed = ref false

let configure ~path =
  close ();
  let oc = open_out path in
  Atomic.set sink
    (Some { oc; path; lock = Mutex.create (); seq = 0; last_ts = 0 });
  if not !at_exit_installed then begin
    at_exit_installed := true;
    Stdlib.at_exit close
  end

let path () = Option.map (fun s -> s.path) (Atomic.get sink)

let configure_from_env () =
  match Sys.getenv_opt "ALT_TRACE" with
  | Some p when p <> "" -> configure ~path:p
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-domain capture buffers (pool integration)                      *)
(* ------------------------------------------------------------------ *)

(* Records produced while a capture buffer is active on the current
   domain land in the buffer instead of the sink; the pool flushes
   buffers on the calling domain in submission order.  Buffers nest
   (a stack per domain), though the pool's no-nesting rule means the
   stack never actually exceeds depth 1 today. *)

type buffer = record list ref

let buf_stack : buffer list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let emit (r : record) =
  let stack = Domain.DLS.get buf_stack in
  match !stack with
  | b :: _ -> b := r :: !b
  | [] -> sink_write r

let task_begin () : buffer option =
  if not (enabled ()) then None
  else begin
    let b : buffer = ref [] in
    let stack = Domain.DLS.get buf_stack in
    stack := b :: !stack;
    Some b
  end

let task_end (buf : buffer option) =
  match buf with
  | None -> ()
  | Some _ ->
      let stack = Domain.DLS.get buf_stack in
      (match !stack with _ :: tl -> stack := tl | [] -> ())

let flush_buffer (buf : buffer option) =
  match buf with
  | None -> ()
  | Some b -> List.iter sink_write (List.rev !b)

(* ------------------------------------------------------------------ *)
(* Span and event API                                                 *)
(* ------------------------------------------------------------------ *)

let instant ?(attrs = []) name =
  if enabled () then emit { ph = 'I'; name; ts = now_ns (); attrs }

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    emit { ph = 'B'; name; ts = now_ns (); attrs };
    (* the end record is emitted even when [f] raises, so span nesting in
       the trace stays well-formed under injected crashes *)
    Fun.protect
      ~finally:(fun () -> emit { ph = 'E'; name; ts = now_ns (); attrs = [] })
      f
  end
