(** Global metrics registry (DESIGN.md §11): named counters, gauges and
    fixed-bucket histograms, snapshotable and renderable as JSON.

    Collection is {e off by default}: {!incr}/{!add}/{!set}/{!observe}
    are no-ops until {!enable} (or {!set_output}/[ALT_METRICS]) turns it
    on, so an instrumented hot path costs one atomic-flag check and
    allocates nothing.  Counters are atomic and safe from pool worker
    domains; gauges and histograms must only be updated from the calling
    (tuning) domain.  Nothing in the tuner reads the registry, so
    enabling collection never changes a tuning trajectory (enforced by
    the differential suite in test/test_obs.ml). *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** {1 Registration}

    Instruments are global and idempotent: the same name returns the
    same instrument.  Registering a name under a different kind raises
    [Invalid_argument]. *)

val counter : string -> counter
val gauge : string -> gauge

val histogram : string -> buckets:float list -> histogram
(** [buckets] are the ascending upper bounds of the finite buckets; an
    implicit overflow bucket catches everything above the last bound.
    Raises [Invalid_argument] on an empty or unsorted list. *)

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val add_raw : counter -> int -> unit
(** Unconditional {!add}, bypassing the enabled gate: used to publish
    per-task stats structs into the registry at the end of a run so the
    CLI can print from the registry even at the defaults. *)

val set_raw : gauge -> float -> unit
(** Unconditional {!set}. *)

(** {1 Reads and snapshots} *)

type value =
  | Counter of int
  | Gauge of float option  (** [None] until the gauge is first set *)
  | Histogram of {
      buckets : (float * int) list;  (** (upper bound, count) per bucket *)
      overflow : int;
      count : int;
      sum : float;
    }

type metric = { name : string; value : value }

val counter_value : counter -> int
val gauge_value : gauge -> float option

val snapshot : unit -> metric list
(** Every registered instrument with its current value, sorted by name
    (deterministic output order). *)

val find : string -> metric option
val reset : unit -> unit
(** Zero every instrument (registration survives); for tests. *)

(** {1 Rendering and output} *)

val to_json : unit -> Json.t
(** [{"version":1,"metrics":[{"name":...,"kind":...,...},...]}]. *)

val write_file : string -> unit

val set_output : string -> unit
(** Enable collection and write the final snapshot to the given path at
    process exit (the [--metrics FILE] CLI knob). *)

val output_path : unit -> string option

val configure_from_env : unit -> unit
(** Honour [ALT_METRICS=FILE]: like {!set_output} when set. *)
