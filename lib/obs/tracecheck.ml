(* Trace-file validation: parse a JSONL trace back into records and check
   the invariants the sink promises (DESIGN.md §11).  Shared by the CLI
   [obs-validate] subcommand and the round-trip tests, so the schema is
   pinned in exactly one place. *)

type record = {
  seq : int;
  ts : int;
  ph : string;
  name : string;
  attrs : (string * Json.t) list;
}

let record_of_json (j : Json.t) : (record, string) result =
  let ( let* ) = Result.bind in
  let field k conv what =
    match Option.bind (Json.member k j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed %S field" what)
  in
  let* seq = field "seq" Json.to_int_opt "seq" in
  let* ts = field "ts" Json.to_int_opt "ts" in
  let* ph = field "ph" Json.to_string_opt "ph" in
  let* name = field "name" Json.to_string_opt "name" in
  let* attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj fields) -> Ok fields
    | Some _ -> Error "\"attrs\" is not an object"
    | None -> Error "missing \"attrs\" field"
  in
  if ph <> "B" && ph <> "E" && ph <> "I" then
    Error (Printf.sprintf "bad phase %S (want B, E or I)" ph)
  else Ok { seq; ts; ph; name; attrs }

let parse_line line =
  match Json.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> record_of_json j

let parse_file path : (record list, string) result =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line -> (
            match parse_line line with
            | Ok r -> go (lineno + 1) (r :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
      in
      go 1 [])

(* Structural invariants of a well-formed trace:
   - seq numbers are exactly 0,1,2,... in file order;
   - timestamps are non-decreasing in file order (the sink clamps);
   - every "E" closes the innermost open "B" of the same name, and no
     span is left open at the end of the file. *)
let validate (records : record list) : (unit, string) result =
  let rec go i expect_seq last_ts open_spans = function
    | [] ->
        if open_spans = [] then Ok ()
        else
          Error
            (Printf.sprintf "unclosed span(s) at end of trace: %s"
               (String.concat ", " (List.rev open_spans)))
    | r :: rest ->
        if r.seq <> expect_seq then
          Error
            (Printf.sprintf "record %d: seq %d, expected %d" i r.seq expect_seq)
        else if r.ts < last_ts then
          Error
            (Printf.sprintf "record %d: timestamp %d went backwards (prev %d)"
               i r.ts last_ts)
        else
          let continue open_spans =
            go (i + 1) (expect_seq + 1) r.ts open_spans rest
          in
          (match r.ph with
          | "B" -> continue (r.name :: open_spans)
          | "E" -> (
              match open_spans with
              | top :: tl when top = r.name -> continue tl
              | top :: _ ->
                  Error
                    (Printf.sprintf
                       "record %d: span end %S does not match open span %S" i
                       r.name top)
              | [] ->
                  Error
                    (Printf.sprintf
                       "record %d: span end %S with no open span" i r.name)
              )
          | _ -> continue open_spans)
  in
  go 0 0 0 [] records

let validate_file path =
  Result.bind (parse_file path) validate

(* Timestamp- and seq-free projection of a record stream.  Two runs of the
   same deterministic computation must agree on this projection exactly —
   across repeats and across --jobs values.  Beyond "seq"/"ts" this also
   means dropping the attributes that carry wall-clock readings (the
   per-round GBDT fit time); everything else in a record is a pure
   function of the traced computation. *)
let volatile_attrs = [ "gbdt_fit_ms" ]

let normalize (records : record list) : string list =
  List.map
    (fun r ->
      let attrs =
        List.filter (fun (k, _) -> not (List.mem k volatile_attrs)) r.attrs
      in
      Json.to_string
        (Json.Obj
           [
             ("ph", Json.String r.ph);
             ("name", Json.String r.name);
             ("attrs", Json.Obj attrs);
           ]))
    records
