(* Global metrics registry (DESIGN.md §11).

   Instruments are registered once by name and held by the call sites as
   plain handles, so the hot-path cost of an update is one atomic-flag
   check (collection is off by default) plus, when enabled, one atomic or
   plain field update — no allocation, no table lookup.

   Concurrency contract: counters are [Atomic]-backed and safe to bump
   from pool worker domains (the profiler does).  Gauges and histograms
   are plain mutable records and must only be updated from the calling
   (tuning) domain — which is where every current gauge/histogram site
   lives, since budget accounting and round bookkeeping are serialized
   there by design (DESIGN.md §7).

   Determinism: counter totals are order-independent sums and every
   gauge/histogram site is serialized, so a metrics snapshot of a tuning
   run is identical for every --jobs value.  Nothing in the tuner ever
   reads the registry, so enabling collection cannot perturb a
   trajectory (the trajectory-neutrality half of the contract; the
   differential suite in test/test_obs.ml enforces it). *)

type counter = { cname : string; cell : int Atomic.t }
type gauge = { gname : string; mutable gval : float; mutable gset : bool }

type histogram = {
  hname : string;
  bounds : float array; (* upper bounds of the finite buckets, ascending *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable hcount : int;
  mutable hsum : float;
}

type value =
  | Counter of int
  | Gauge of float option
  | Histogram of { buckets : (float * int) list; overflow : int; count : int; sum : float }

type metric = { name : string; value : value }

type instrument = Icounter of counter | Igauge of gauge | Ihistogram of histogram

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let on = Atomic.make false
let out_path : string option ref = ref None

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register name make check =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> check i
      | None ->
          let i = make () in
          Hashtbl.replace registry name i;
          i)

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered with another kind" name)

let counter name : counter =
  match
    register name
      (fun () -> Icounter { cname = name; cell = Atomic.make 0 })
      (function Icounter _ as i -> i | _ -> kind_clash name)
  with
  | Icounter c -> c
  | _ -> assert false

let gauge name : gauge =
  match
    register name
      (fun () -> Igauge { gname = name; gval = 0.0; gset = false })
      (function Igauge _ as i -> i | _ -> kind_clash name)
  with
  | Igauge g -> g
  | _ -> assert false

let histogram name ~buckets : histogram =
  let bounds = Array.of_list buckets in
  let sorted = Array.copy bounds in
  Array.sort Float.compare sorted;
  if bounds <> sorted || Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: buckets must be non-empty and ascending";
  match
    register name
      (fun () ->
        Ihistogram
          {
            hname = name;
            bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            hcount = 0;
            hsum = 0.0;
          })
      (function Ihistogram _ as i -> i | _ -> kind_clash name)
  with
  | Ihistogram h -> h
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Updates                                                            *)
(* ------------------------------------------------------------------ *)

(* Gated hot-path updates: no-ops while collection is disabled. *)

let add c by = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell by : int)
let incr c = add c 1

let set g v =
  if Atomic.get on then begin
    g.gval <- v;
    g.gset <- true
  end

let observe h v =
  if Atomic.get on then begin
    let n = Array.length h.bounds in
    let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
    let i = bucket 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v
  end

(* Unconditional updates, for end-of-run publication of counters that are
   tracked elsewhere (the per-task stats structs of Measure): the CLI
   prints its human-readable summary from the registry whether or not
   collection was enabled, which is what keeps the default output
   byte-identical to the pre-registry implementation. *)

let add_raw c by = ignore (Atomic.fetch_and_add c.cell by : int)

let set_raw g v =
  g.gval <- v;
  g.gset <- true

(* ------------------------------------------------------------------ *)
(* Reads, snapshots, rendering                                        *)
(* ------------------------------------------------------------------ *)

let counter_value c = Atomic.get c.cell
let gauge_value g = if g.gset then Some g.gval else None

let value_of = function
  | Icounter c -> Counter (Atomic.get c.cell)
  | Igauge g -> Gauge (gauge_value g)
  | Ihistogram h ->
      Histogram
        {
          buckets =
            Array.to_list
              (Array.mapi (fun i b -> (b, h.counts.(i))) h.bounds);
          overflow = h.counts.(Array.length h.bounds);
          count = h.hcount;
          sum = h.hsum;
        }

let snapshot () : metric list =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name i acc -> { name; value = value_of i } :: acc)
        registry [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let find name =
  with_lock (fun () -> Hashtbl.find_opt registry name)
  |> Option.map (fun i -> { name; value = value_of i })

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Icounter c -> Atomic.set c.cell 0
          | Igauge g ->
              g.gval <- 0.0;
              g.gset <- false
          | Ihistogram h ->
              Array.fill h.counts 0 (Array.length h.counts) 0;
              h.hcount <- 0;
              h.hsum <- 0.0)
        registry)

let metric_to_json (m : metric) : Json.t =
  let kind, fields =
    match m.value with
    | Counter n -> ("counter", [ ("value", Json.Int n) ])
    | Gauge None -> ("gauge", [ ("value", Json.Null) ])
    | Gauge (Some v) -> ("gauge", [ ("value", Json.Float v) ])
    | Histogram { buckets; overflow; count; sum } ->
        ( "histogram",
          [
            ( "buckets",
              Json.List
                (List.map
                   (fun (le, n) ->
                     Json.Obj [ ("le", Json.Float le); ("count", Json.Int n) ])
                   buckets) );
            ("overflow", Json.Int overflow);
            ("count", Json.Int count);
            ("sum", Json.Float sum);
          ] )
  in
  Json.Obj (("name", Json.String m.name) :: ("kind", Json.String kind) :: fields)

let to_json () : Json.t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("metrics", Json.List (List.map metric_to_json (snapshot ())));
    ]

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

let at_exit_installed = ref false

let set_output path =
  enable ();
  out_path := Some path;
  if not !at_exit_installed then begin
    at_exit_installed := true;
    Stdlib.at_exit (fun () ->
        match !out_path with
        | Some p -> ( try write_file p with Sys_error _ -> ())
        | None -> ())
  end

let output_path () = !out_path

let configure_from_env () =
  match Sys.getenv_opt "ALT_METRICS" with
  | Some path when path <> "" -> set_output path
  | _ -> ()
