(** Minimal JSON values for the observability subsystem (DESIGN.md §11):
    rendering metric snapshots and trace records, and parsing them back
    in validators and tests.  Standard JSON, with numbers split into
    OCaml ints and floats; non-finite floats render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Object field order is preserved;
    floats use the shortest representation that round-trips. *)

val parse : string -> (t, string) result
(** Parse one JSON value; [Error] carries a message with the offending
    offset.  Trailing non-whitespace is an error. *)

val parse_exn : string -> t
(** {!parse}, raising [Failure] on malformed input. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing fields and non-objects. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts both [Float] and [Int] (JSON does not distinguish). *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
