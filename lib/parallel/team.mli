(** A resident domain team with a barrier-style [parallel_for] — the
    execution engine under the exec backend's parallel macro-kernels
    (DESIGN.md §15).

    {!Pool} spawns domains per batch, which is the right trade for
    second-long measurement batches but not for latency-sensitive kernel
    invocations: a compiled macro-kernel runs for micro- to milliseconds
    and is re-entered once per warmup/timed repeat, so the ~10us+ spawn
    and join cost per run would swamp the parallel gain.  A team keeps
    its worker domains alive across jobs: submitting a job is a mutex
    broadcast, and completion is a condition-variable barrier.

    Chunks are identified by index, not by executing domain: which
    worker runs which chunk is a race, but callers that key all mutable
    state by chunk index (as the exec kernels do) get results that are
    independent of the scheduling, so the team adds no nondeterminism.

    Teams compose with {!Pool}: [parallel_for] may be called from inside
    a pool task (the tuner's [--jobs] fan-out measuring with
    [--exec-domains] does exactly that).  Concurrent jobs from racing
    callers serialize on an internal submission lock — each job still
    runs with the full team. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] resident worker domains (the
    caller is the remaining lane).  Raises [Invalid_argument] if
    [domains < 1]. *)

val domains : t -> int

val parallel_for : t -> chunks:int -> (int -> unit) -> unit
(** [parallel_for t ~chunks f] runs [f 0 .. f (chunks - 1)], distributing
    chunk indices over the team's lanes (work sharing by atomic cursor),
    and returns only after every chunk has completed — a full barrier.
    The calling domain participates.  If any [f i] raises, the exception
    of the {e lowest} failing chunk index is re-raised after the barrier
    (every chunk still runs).  [chunks = 0] is a no-op; with
    [domains = 1] or [chunks = 1] the chunks run serially on the caller
    with no synchronization. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the team afterwards degrades
    to serial execution ([parallel_for] still works on the caller). *)

val get : domains:int -> t
(** The process-wide shared team of the given size, created (and
    registered for [at_exit] shutdown) on first use.  Teams of different
    sizes coexist; repeated calls return the same team. *)
