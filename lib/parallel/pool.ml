(* Deterministic task pool on OCaml 5 domains (see the .mli for the
   contract).

   Domains are spawned per batch rather than kept resident: a batch of
   cache simulations runs for milliseconds to seconds, so the ~10us spawn
   cost is noise, and per-batch domains make the drain guarantee trivial —
   workers can only exit by exhausting the task cursor, and every entry
   point joins all domains before returning or re-raising.  Task results
   (and any exceptions, with their backtraces) land in a slot array
   indexed by submission position, which is what makes the output order
   independent of execution order and lets a raising task surface as a
   per-task outcome instead of poisoning the batch. *)

type t = {
  jobs : int;
  lock : Mutex.t; (* guards [closed] and [active] *)
  idle : Condition.t; (* signalled when [active] drops to 0 *)
  mutable closed : bool; (* no new batches admitted *)
  mutable active : int; (* batches currently executing *)
}

exception Nested_pool
exception Task_failed of int * exn
exception Closed

(* placeholder for a slot whose task never ran; unreachable as long as the
   cursor drains the batch, but kept as a real exception so even a broken
   invariant surfaces as an outcome rather than an assert *)
exception Never_ran

(* Domain-local flag marking "this domain is currently executing a pool
   task"; checked on entry to reject nested parallelism.  Worker domains
   are fresh per batch so their flag starts false; the calling domain
   participates in the drain and resets its flag after every task. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let create ?(jobs = 1) () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  {
    jobs;
    lock = Mutex.create ();
    idle = Condition.create ();
    closed = false;
    active = 0;
  }

let jobs t = t.jobs

let default_jobs () = Domain.recommended_domain_count ()

let check_not_nested () = if Domain.DLS.get in_task then raise Nested_pool

(* Batch admission.  Every mapping entry point brackets its batch with
   [begin_batch]/[end_batch]; [shutdown] atomically flips [closed] (so the
   admission check and the shutdown decision serialize on one mutex — a
   racing submission either gets in before the flip and is drained, or
   raises [Closed] after it; it can never be half-admitted) and then waits
   for the in-flight count to reach zero. *)
let begin_batch t =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    raise Closed
  end;
  t.active <- t.active + 1;
  Mutex.unlock t.lock

let end_batch t =
  Mutex.lock t.lock;
  t.active <- t.active - 1;
  if t.active = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.lock

let wait_idle_locked t =
  while t.active > 0 do
    Condition.wait t.idle t.lock
  done

let drain t =
  Mutex.lock t.lock;
  wait_idle_locked t;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  wait_idle_locked t;
  Mutex.unlock t.lock

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

(* Batch/task counters (gated: no-ops unless metrics collection is on).
   Only ever bumped on the calling domain, after a batch has joined, so
   their totals are independent of --jobs and of execution order. *)
let m_batches = Alt_obs.Metrics.counter "pool.batches"
let m_submitted = Alt_obs.Metrics.counter "pool.tasks.submitted"
let m_completed = Alt_obs.Metrics.counter "pool.tasks.completed"
let m_failed = Alt_obs.Metrics.counter "pool.tasks.failed"

type 'b slot = Done of 'b | Failed of exn * Printexc.raw_backtrace

(* Run one task with the nesting flag set, capturing any exception
   together with its backtrace.  Trace records emitted by the task are
   captured into a per-task buffer (instead of the sink) so the caller
   can flush them in submission order; the buffer is [None] while
   tracing is disabled and the capture degenerates to two no-op calls. *)
let run_task f x =
  let buf = Alt_obs.Trace.task_begin () in
  Domain.DLS.set in_task true;
  let r = try Done (f x) with e -> Failed (e, Printexc.get_raw_backtrace ()) in
  Domain.DLS.set in_task false;
  Alt_obs.Trace.task_end buf;
  (r, buf)

let count_slots slots =
  Alt_obs.Metrics.add m_batches 1;
  Alt_obs.Metrics.add m_submitted (Array.length slots);
  Array.iter
    (function
      | Done _ -> Alt_obs.Metrics.incr m_completed
      | Failed _ -> Alt_obs.Metrics.incr m_failed)
    slots

(* Drain the whole batch into submission-indexed slots.  Every task runs
   (even after another one failed), and all domains are joined before
   returning.  Trace buffers are flushed here, in submission order, which
   is what makes the trace stream independent of --jobs. *)
let run_slots t f (xs : 'a array) : 'b slot array =
  check_not_nested ();
  begin_batch t;
  Fun.protect ~finally:(fun () -> end_batch t) @@ fun () ->
  let n = Array.length xs in
  let slots = Array.make n (Failed (Never_ran, Printexc.get_callstack 0)) in
  let bufs = Array.make n None in
  if t.jobs = 1 || n <= 1 then
    for i = 0 to n - 1 do
      let r, buf = run_task f xs.(i) in
      slots.(i) <- r;
      bufs.(i) <- buf
    done
  else begin
    let cursor = Atomic.make 0 in
    let worker () =
      let rec drain () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r, buf = run_task f xs.(i) in
          slots.(i) <- r;
          bufs.(i) <- buf;
          drain ()
        end
      in
      drain ()
    in
    let helpers =
      Array.init (min (t.jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join helpers
  end;
  Array.iter Alt_obs.Trace.flush_buffer bufs;
  count_slots slots;
  slots

let map_array_result t f (xs : 'a array) : ('b, exn) result array =
  Array.map
    (function Done r -> Ok r | Failed (e, _) -> Error e)
    (run_slots t f xs)

let map_result t f xs = Array.to_list (map_array_result t f (Array.of_list xs))

let map_array t (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if t.jobs = 1 || n <= 1 then begin
    (* degenerate serial path: tasks run on the calling domain in
       submission order and the first failure propagates immediately —
       later tasks never run, exactly Array.map with the exception wrapped
       as Task_failed *)
    check_not_nested ();
    begin_batch t;
    Fun.protect ~finally:(fun () -> end_batch t) @@ fun () ->
    let out = ref [] in
    let i = ref 0 in
    (* count tasks even when an early failure aborts the batch: exactly
       the tasks that actually ran are submitted/completed/failed *)
    Fun.protect
      ~finally:(fun () ->
        Alt_obs.Metrics.add m_batches 1;
        Alt_obs.Metrics.add m_submitted !i)
      (fun () ->
        while !i < n do
          let r, buf = run_task f xs.(!i) in
          Alt_obs.Trace.flush_buffer buf;
          incr i;
          match r with
          | Done r ->
              Alt_obs.Metrics.incr m_completed;
              out := r :: !out
          | Failed (e, bt) ->
              Alt_obs.Metrics.incr m_failed;
              Printexc.raise_with_backtrace (Task_failed (!i - 1, e)) bt
        done);
    Array.of_list (List.rev !out)
  end
  else begin
    let slots = run_slots t f xs in
    (* deterministic error choice: scan in submission order so the
       exception of the lowest-indexed failing task wins, re-raised with
       its submission index and the task's original backtrace *)
    Array.iteri
      (fun i -> function
        | Failed (e, bt) -> Printexc.raise_with_backtrace (Task_failed (i, e)) bt
        | Done _ -> ())
      slots;
    Array.map
      (function
        | Done r -> r
        (* unreachable after the scan above, but a faithful re-raise
           beats an assertion if the invariant ever breaks *)
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt)
      slots
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))
