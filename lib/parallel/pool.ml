(* Deterministic task pool on OCaml 5 domains (see the .mli for the
   contract).

   Domains are spawned per batch rather than kept resident: a batch of
   cache simulations runs for milliseconds to seconds, so the ~10us spawn
   cost is noise, and per-batch domains make the drain guarantee trivial —
   workers can only exit by exhausting the task cursor, and [map] joins
   every domain before returning or re-raising.  Task results (and any
   exceptions) land in a slot array indexed by submission position, which
   is what makes the output order independent of execution order. *)

type t = { jobs : int }

exception Nested_pool

(* Domain-local flag marking "this domain is currently executing a pool
   task"; checked on entry to [map] to reject nested parallelism.  Worker
   domains are fresh per batch so their flag starts false; the calling
   domain participates in the drain and resets its flag afterwards. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let create ?(jobs = 1) () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs }

let jobs t = t.jobs

let default_jobs () = Domain.recommended_domain_count ()

let check_not_nested () = if Domain.DLS.get in_task then raise Nested_pool

type 'b slot = Empty | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map_array t (f : 'a -> 'b) (xs : 'a array) : 'b array =
  check_not_nested ();
  let n = Array.length xs in
  if t.jobs = 1 || n <= 1 then
    (* degenerate serial path: run on the calling domain, first exception
       propagates immediately — exactly Array.map *)
    Array.map
      (fun x ->
        Domain.DLS.set in_task true;
        Fun.protect ~finally:(fun () -> Domain.DLS.set in_task false)
          (fun () -> f x))
      xs
  else begin
    let slots = Array.make n Empty in
    let cursor = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_task true;
      let rec drain () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (slots.(i) <-
            (try Done (f xs.(i))
             with e -> Failed (e, Printexc.get_raw_backtrace ())));
          drain ()
        end
      in
      drain ();
      Domain.DLS.set in_task false
    in
    let helpers =
      Array.init (min (t.jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join helpers;
    (* deterministic error choice: the lowest submission index wins *)
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty | Done _ -> ())
      slots;
    Array.map
      (function Done r -> r | Empty | Failed _ -> assert false)
      slots
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))
