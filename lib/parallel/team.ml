(* Resident domain team with a barrier-style parallel_for (see the .mli
   for the contract and the contrast with Pool's per-batch domains).

   One job at a time: callers serialize on [sub], then publish the job
   under [lock] by bumping [generation] and broadcasting [work].  Worker
   domains park on [work] between jobs; chunk indices are handed out by
   an atomic cursor (work sharing, no stealing), and the last completed
   chunk broadcasts [done_c] to release the caller's barrier wait.  The
   caller participates in the drain, so a team of N uses N-1 resident
   workers plus the calling domain.

   Failures are deterministic: every chunk runs even after another chunk
   raised, failures land in a per-job slot array indexed by chunk, and
   the barrier re-raises the lowest-indexed one — the same discipline as
   Pool.map, minus backtrace bookkeeping (kernel chunks share no state,
   so a failing chunk cannot poison its neighbours). *)

type job = {
  f : int -> unit;
  chunks : int;
  cursor : int Atomic.t;
  completed : int Atomic.t;
  failures : exn option array;
}

type t = {
  size : int;
  lock : Mutex.t; (* guards [job], [generation], [stop] *)
  work : Condition.t; (* workers: a new job (or stop) is available *)
  done_c : Condition.t; (* caller: all chunks of the job completed *)
  sub : Mutex.t; (* serializes parallel_for callers *)
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.size

(* Drain the current job's cursor, recording failures by chunk index.
   The completed counter only reaches [chunks] after every chunk body
   has returned, which is what makes the caller's wait a true barrier. *)
let drain t (j : job) =
  let rec pick () =
    let i = Atomic.fetch_and_add j.cursor 1 in
    if i < j.chunks then begin
      (try j.f i with e -> j.failures.(i) <- Some e);
      let c = 1 + Atomic.fetch_and_add j.completed 1 in
      if c = j.chunks then begin
        Mutex.lock t.lock;
        Condition.broadcast t.done_c;
        Mutex.unlock t.lock
      end;
      pick ()
    end
  in
  pick ()

let rec worker_loop t gen =
  Mutex.lock t.lock;
  while t.generation = gen && not t.stop do
    Condition.wait t.work t.lock
  done;
  if t.stop then Mutex.unlock t.lock
  else begin
    let mygen = t.generation in
    let j = t.job in
    Mutex.unlock t.lock;
    (match j with Some j -> drain t j | None -> ());
    worker_loop t mygen
  end

let create ~domains =
  if domains < 1 then invalid_arg "Team.create: domains must be >= 1";
  let t =
    {
      size = domains;
      lock = Mutex.create ();
      work = Condition.create ();
      done_c = Condition.create ();
      sub = Mutex.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  Mutex.lock t.lock;
  let ws = t.workers in
  t.stop <- true;
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join ws

let run_serial ~chunks f =
  for i = 0 to chunks - 1 do
    f i
  done

let parallel_for t ~chunks f =
  if chunks < 0 then invalid_arg "Team.parallel_for: chunks must be >= 0";
  if chunks = 0 then ()
  else if t.size = 1 || chunks = 1 then run_serial ~chunks f
  else begin
    Mutex.lock t.sub;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.sub)
      (fun () ->
        let j =
          {
            f;
            chunks;
            cursor = Atomic.make 0;
            completed = Atomic.make 0;
            failures = Array.make chunks None;
          }
        in
        Mutex.lock t.lock;
        if t.stop then begin
          (* workers already joined: degrade to the serial path *)
          Mutex.unlock t.lock;
          run_serial ~chunks f
        end
        else begin
          t.job <- Some j;
          t.generation <- t.generation + 1;
          Condition.broadcast t.work;
          Mutex.unlock t.lock;
          drain t j;
          Mutex.lock t.lock;
          while Atomic.get j.completed < j.chunks do
            Condition.wait t.done_c t.lock
          done;
          t.job <- None;
          Mutex.unlock t.lock;
          Array.iter (function Some e -> raise e | None -> ()) j.failures
        end)
  end

(* Process-wide shared teams, one per size, shut down at exit so no
   worker domain is left parked on a condition variable when the runtime
   tears down. *)
let global : (int, t) Hashtbl.t = Hashtbl.create 4
let global_lock = Mutex.create ()
let exit_hooked = ref false

let get ~domains =
  if domains < 1 then invalid_arg "Team.get: domains must be >= 1";
  Mutex.lock global_lock;
  let t =
    match Hashtbl.find_opt global domains with
    | Some t -> t
    | None ->
        let t = create ~domains in
        Hashtbl.replace global domains t;
        if not !exit_hooked then begin
          exit_hooked := true;
          at_exit (fun () ->
              Mutex.lock global_lock;
              let ts = Hashtbl.fold (fun _ t acc -> t :: acc) global [] in
              Hashtbl.reset global;
              Mutex.unlock global_lock;
              List.iter shutdown ts)
        end;
        t
  in
  Mutex.unlock global_lock;
  t
