(** A deterministic, work-stealing-free task pool on OCaml 5 domains.

    The pool exists so the tuner's "on-device measurements" (trace-driven
    cache simulations) can run concurrently while the tuning trajectory
    stays byte-identical to a serial run: [map] always returns results in
    submission order, regardless of which domain executed which task or in
    what order tasks finished.  Tasks are distributed by an atomic cursor
    over the submission list (work sharing, no stealing, no reordering).

    Determinism contract:
    - [map pool f xs] returns exactly [List.map f xs] whenever no task
      raises, for every pool size;
    - with [jobs = 1] the map degenerates to [List.map] on the calling
      domain — no domain is spawned and an exception propagates
      immediately, exactly like [List.map];
    - with [jobs > 1], every task is still executed (the batch drains, so
      no worker domain is left hung), all domains are joined, and then the
      exception of the {e lowest-indexed} failing task is re-raised with
      its backtrace;
    - nested use (calling [map] from inside a pool task) is rejected with
      [Nested_pool], because worker domains draining an inner batch while
      holding outer-batch tasks would deadlock-free but nondeterministically
      interleave budget accounting upstream. *)

type t

exception Nested_pool
(** Raised when [map] is called from inside a pool task. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] makes a pool that runs at most [jobs] tasks
    concurrently ([jobs - 1] helper domains plus the calling domain).
    Default 1 (serial).  Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** The runtime's recommended domain count — a sensible [--jobs] value. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving submission order. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
