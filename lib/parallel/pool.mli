(** A deterministic, work-stealing-free task pool on OCaml 5 domains.

    The pool exists so the tuner's "on-device measurements" (trace-driven
    cache simulations) can run concurrently while the tuning trajectory
    stays byte-identical to a serial run: every entry point returns
    results in submission order, regardless of which domain executed which
    task or in what order tasks finished.  Tasks are distributed by an
    atomic cursor over the submission list (work sharing, no stealing, no
    reordering).

    Two failure disciplines are offered:

    - {!map} / {!map_array} raise on the first failure.  A raising task
      never poisons the batch: with [jobs > 1] the whole batch still
      drains (no worker domain is left hung), all domains are joined, and
      then the exception of the {e lowest-indexed} failing task is
      re-raised as [Task_failed (index, exn)] with the task's original
      backtrace.  With [jobs = 1] no domain is spawned, tasks run in
      submission order on the calling domain, and the first failure
      propagates immediately (later tasks never run).
    - {!map_result} / {!map_array_result} never raise (beyond
      [Nested_pool]): each task's exception is captured and surfaced as
      its own [Error] outcome in submission order, and {e every} task runs
      for {e every} [jobs] value — the result list is identical for
      [jobs = 1] and [jobs = N].  This is the discipline the fault-tolerant
      measurement pipeline is built on.

    Determinism contract:
    - [map pool f xs] returns exactly [List.map f xs] whenever no task
      raises, for every pool size;
    - [map_result pool f xs] is the same list of per-task outcomes for
      every pool size;
    - nested use (calling back into the pool from inside a pool task) is
      rejected with [Nested_pool], because worker domains draining an
      inner batch while holding outer-batch tasks would nondeterministically
      interleave budget accounting upstream. *)

type t

exception Nested_pool
(** Raised when a pool entry point is called from inside a pool task. *)

exception Task_failed of int * exn
(** [Task_failed (i, e)]: the task at submission index [i] raised [e].
    Raised by {!map} / {!map_array} with the failing task's original
    backtrace attached. *)

exception Closed
(** Raised by every mapping entry point once {!shutdown} has closed the
    pool.  A batch admitted before the close always runs to completion
    first — submissions racing a shutdown either deliver their full
    result or raise [Closed] having run nothing; no task is ever lost or
    run twice. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] makes a pool that runs at most [jobs] tasks
    concurrently ([jobs - 1] helper domains plus the calling domain).
    Default 1 (serial).  Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** The runtime's recommended domain count — a sensible [--jobs] value. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving submission order; raises [Task_failed] on the
    lowest-indexed failing task (see the failure discipline above). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val map_result : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Parallel map surfacing each task's exception as a per-task [Error]
    outcome, in submission order.  Every task runs; never raises except
    [Nested_pool]. *)

val map_array_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array

(** {1 Lifecycle}

    Worker domains are spawned per batch and joined before every entry
    point returns, so the pool holds no resident resources; the lifecycle
    API exists for services that must guarantee a quiescent point — a
    graceful daemon drain — and reject work submitted after it. *)

val shutdown : t -> unit
(** Graceful stop: atomically closes the pool to new batches, then blocks
    until every in-flight batch has drained (all their tasks completed
    and their domains joined).  The admission check and the close
    serialize on one lock, so a submission racing [shutdown] either runs
    to completion before [shutdown] returns or raises {!Closed} without
    running any task.  Idempotent; safe to call from another domain; must
    not be called from inside a pool task (it would deadlock on its own
    batch). *)

val drain : t -> unit
(** Block until every in-flight batch has completed, without closing the
    pool to new work. *)

val is_closed : t -> bool
