(** Integer index relations: the algebra underneath layout primitives
    (DESIGN.md §16).

    A relation maps points of a [domain] shape to points of a [range]
    shape.  It is stored as a canonical chain of five step kinds —
    mixed-radix {e decode}/{e encode}, {e permute} (affine dimension
    maps), and the two piecewise-guarded kinds {e shift} (padding) and
    {e window} (overlapped tiling).  Every step carries a derivable
    inverse, so the whole chain can be evaluated in both directions:

    - forward (domain → range) is a total map for injective chains and
      a one-to-many map when a window is present (an overlapped element
      lives in several tiles);
    - backward (range → domain) is always a {e function with holes}:
      every range point comes from at most one domain point, and [None]
      marks the zero-filled positions (pad margins, window overhang).

    [compose] concatenates chains and canonicalizes symbolically
    (permutation fusion, decode/encode cancellation, shift merging,
    nested-decode flattening), so replayed or propagated layout chains
    stay short.  The QCheck2 suite in test/test_relation.ml proves the
    round-trip laws ([backward ∘ forward ≡ id] on the domain,
    [forward ∘ backward ≡ id] on the live range), compose ≡ sequential
    application, and canonicalization idempotence over random primitive
    chains.

    Values are pure data (safe for structural comparison and hashing);
    the [compile_*] functions precompute the per-step shape trace once
    and return closures for per-point evaluation. *)

exception Relation_error of string

type step =
  | Decode of { dim : int; radices : int array }
      (** one dimension of extent [prod radices] becomes [|radices|]
          mixed-radix digit dimensions, most significant first (split) *)
  | Encode of { dim : int; radices : int array }
      (** [|radices|] consecutive dimensions with exactly those extents
          collapse row-major into one dimension (fuse) *)
  | Permute of int array
      (** new dimension [i] is old dimension [perm.(i)] (reorder) *)
  | Shift of { dim : int; lo : int; hi : int }
      (** pad: [x -> x + lo] with [lo + hi] new positions; the inverse
          is guarded by [0 <= y - lo < extent] *)
  | Window of { dim : int; tile : int; stride : int }
      (** unfold: one dimension becomes [tiles; tile]; forward is
          one-to-many (every tile containing the point), backward is
          [(t, r) -> t*stride + r] guarded against the overhang *)

type t
(** A relation from [domain] to [range]; canonical step chain. *)

val domain : t -> Shape.t
val range : t -> Shape.t
val steps : t -> step list

val id : Shape.t -> t
(** The identity relation on a shape. *)

(** {1 Step constructors}

    Each validates against the given domain shape and raises
    {!Relation_error} on illegal parameters (out-of-range dimension,
    factor product mismatch, invalid permutation, negative padding,
    tile larger than extent). *)

val decode : Shape.t -> dim:int -> radices:int array -> t
val encode : Shape.t -> dim:int -> radices:int array -> t
val permute : Shape.t -> int array -> t
val shift : Shape.t -> dim:int -> lo:int -> hi:int -> t
val window : Shape.t -> dim:int -> tile:int -> stride:int -> t

val apply_step : Shape.t -> step -> Shape.t
(** Shape transform of one step (validated). *)

(** {1 Algebra} *)

val compose : t -> t -> t
(** [compose a b] is the relation running [a] then [b]; requires
    [range a = domain b].  The combined chain is canonicalized; counts
    [layout.relation.compose] (and [.simplify] per rewrite) in the
    metrics registry. *)

val canonicalize : t -> t
(** Re-runs the rewrite rules to fixpoint.  Idempotent:
    [canonicalize (canonicalize t) = canonicalize t] (proven by the
    QCheck2 suite). *)

val inverse : t -> t
(** The inverse relation; defined for bijective chains only (no shift,
    no window) — raises {!Relation_error} otherwise.  Each step kind
    inverts symbolically: decode ↔ encode, permute ↔ inverse
    permutation. *)

val injective : t -> bool
(** No window step: every domain point has exactly one image. *)

val bijective : t -> bool
(** Injective and total in both directions (no window, no shift). *)

(** {1 Point evaluation} *)

val compile_bwd : t -> int array -> int array option
(** [compile_bwd t] precomputes the shape trace and returns the
    backward evaluator: range point → its unique domain source, or
    [None] for holes (pad margins, window overhang). *)

val compile_fwd : t -> int array -> int array
(** Forward evaluator for injective relations; raises
    {!Relation_error} if a window step is present. *)

val fwd_points : t -> int array -> int array list
(** All images of a domain point, in ascending row-major order of the
    range; a singleton for injective relations, possibly several when
    windows overlap.  Never empty for an in-domain point. *)

(** {1 Extents, strides and cost} *)

val range_strides : t -> int array
(** Row-major element strides of the range shape — what lowering and
    the exec backend's affine-profile extraction read as the physical
    strides of a laid-out buffer. *)

val num_range_elements : t -> int

val expansion : t -> float
(** [range elements / domain elements]; 1.0 for bijective chains, > 1
    with padding or overlapped tiling. *)

val conversion_cost : t -> int
(** Data-movement cost of materializing the range from the domain (one
    read per domain element + one write per range element) — the
    symbolic conversion-cost derivation layout search ranks with. *)

val pp_step : step Fmt.t
val pp : t Fmt.t
val equal : t -> t -> bool
