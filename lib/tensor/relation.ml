(* Integer index relations (DESIGN.md §16).

   A relation is a canonical chain of steps from a domain shape to a
   range shape.  Three step kinds are bijective dimension surgery
   (mixed-radix decode/encode and permutation); two are the guarded,
   data-expanding kinds (shift = padding, window = overlapped tiling).
   Every step knows how to run backward, so the chain is evaluated in
   both directions; [compose] concatenates chains and canonicalizes
   with local, semantics-preserving rewrites.  The laws — round trips
   in both directions, compose = sequential application, idempotent
   canonicalization — are proven by QCheck2 in test/test_relation.ml,
   which is where the proof burden of the layout algebra now lives. *)

exception Relation_error of string

let err fmt = Fmt.kstr (fun s -> raise (Relation_error s)) fmt

type step =
  | Decode of { dim : int; radices : int array }
  | Encode of { dim : int; radices : int array }
  | Permute of int array
  | Shift of { dim : int; lo : int; hi : int }
  | Window of { dim : int; tile : int; stride : int }

type t = { dom : Shape.t; rng : Shape.t; steps : step list }

let domain t = t.dom
let range t = t.rng
let steps t = t.steps

let pp_step ppf = function
  | Decode { dim; radices } ->
      Fmt.pf ppf "decode(dim=%d, [%a])" dim Fmt.(array ~sep:(any ",") int) radices
  | Encode { dim; radices } ->
      Fmt.pf ppf "encode(dim=%d, [%a])" dim Fmt.(array ~sep:(any ",") int) radices
  | Permute perm -> Fmt.pf ppf "permute([%a])" Fmt.(array ~sep:(any ",") int) perm
  | Shift { dim; lo; hi } -> Fmt.pf ppf "shift(dim=%d, lo=%d, hi=%d)" dim lo hi
  | Window { dim; tile; stride } ->
      Fmt.pf ppf "window(dim=%d, tile=%d, stride=%d)" dim tile stride

let pp ppf t =
  Fmt.pf ppf "@[<h>%a => %a :: %a@]" Shape.pp t.dom Shape.pp t.rng
    Fmt.(list ~sep:(any " ; ") pp_step)
    t.steps

let equal a b =
  Shape.equal a.dom b.dom && Shape.equal a.rng b.rng && a.steps = b.steps

(* ------------------------------------------------------------------ *)
(* Shape transform (with validation)                                  *)
(* ------------------------------------------------------------------ *)

let prod = Array.fold_left ( * ) 1

let window_tiles ~d ~tile ~stride =
  if stride <= 0 then err "window: stride %d must be positive" stride;
  if tile > d then err "window: tile %d larger than extent %d" tile d;
  Shape.cdiv (d - tile) stride + 1

let apply_step (s : Shape.t) (st : step) : Shape.t =
  let n = Shape.rank s in
  match st with
  | Decode { dim; radices } ->
      if dim < 0 || dim >= n then err "decode: dim %d out of range" dim;
      if Array.length radices = 0 then err "decode: empty radices";
      if Array.exists (fun r -> r <= 0) radices then err "decode: radix <= 0";
      if prod radices <> s.(dim) then
        err "decode: radices product %d <> extent %d (dim %d)" (prod radices)
          s.(dim) dim;
      Array.concat
        [ Array.sub s 0 dim; radices; Array.sub s (dim + 1) (n - dim - 1) ]
  | Encode { dim; radices } ->
      let k = Array.length radices in
      if k = 0 then err "encode: empty radices";
      if dim < 0 || dim + k > n then err "encode: range out of bounds";
      Array.iteri
        (fun j r ->
          if s.(dim + j) <> r then
            err "encode: extent %d at dim %d <> radix %d" s.(dim + j) (dim + j)
              r)
        radices;
      Array.concat
        [
          Array.sub s 0 dim;
          [| prod radices |];
          Array.sub s (dim + k) (n - dim - k);
        ]
  | Permute perm ->
      if Array.length perm <> n then err "permute: rank mismatch";
      let seen = Array.make n false in
      Array.iter
        (fun p ->
          if p < 0 || p >= n || seen.(p) then err "permute: invalid permutation";
          seen.(p) <- true)
        perm;
      Array.map (fun p -> s.(p)) perm
  | Shift { dim; lo; hi } ->
      if dim < 0 || dim >= n then err "shift: dim out of range";
      if lo < 0 || hi < 0 then err "shift: negative padding";
      let s' = Array.copy s in
      s'.(dim) <- s.(dim) + lo + hi;
      s'
  | Window { dim; tile; stride } ->
      if dim < 0 || dim >= n then err "window: dim out of range";
      let tiles = window_tiles ~d:s.(dim) ~tile ~stride in
      Array.concat
        [
          Array.sub s 0 dim;
          [| tiles; tile |];
          Array.sub s (dim + 1) (n - dim - 1);
        ]

(* Shapes before each step, plus the final shape. *)
let trace_of dom steps =
  let rec go s = function
    | [] -> [ s ]
    | st :: tl -> s :: go (apply_step s st) tl
  in
  Array.of_list (go dom steps)

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                   *)
(* ------------------------------------------------------------------ *)

let m_compose = Alt_obs.Metrics.counter "layout.relation.compose"
let m_simplify = Alt_obs.Metrics.counter "layout.relation.simplify"

let is_identity_perm perm =
  let ok = ref true in
  Array.iteri (fun i p -> if p <> i then ok := false) perm;
  !ok

(* One rewrite pass.  Every rule is local (head of the list or the
   first adjacent pair) and semantics-preserving; [canon] iterates to
   fixpoint, which makes canonicalization idempotent by construction. *)
let rec pass (steps : step list) : step list * int =
  match steps with
  | [] -> ([], 0)
  | Permute p :: rest when is_identity_perm p ->
      let rest', k = pass rest in
      (rest', k + 1)
  | Decode { radices; _ } :: rest when Array.length radices = 1 ->
      let rest', k = pass rest in
      (rest', k + 1)
  | Encode { radices; _ } :: rest when Array.length radices = 1 ->
      let rest', k = pass rest in
      (rest', k + 1)
  | Shift { lo = 0; hi = 0; _ } :: rest ->
      let rest', k = pass rest in
      (rest', k + 1)
  | Permute p :: Permute q :: rest ->
      (* out2.(i) = out1.(q.(i)) = in.(p.(q.(i))) *)
      let r = Array.map (fun qi -> p.(qi)) q in
      let rest', k = pass (Permute r :: rest) in
      (rest', k + 1)
  | Decode { dim; radices } :: Encode { dim = d2; radices = r2 } :: rest
    when d2 = dim && r2 = radices ->
      let rest', k = pass rest in
      (rest', k + 1)
  | Encode { dim; radices } :: Decode { dim = d2; radices = r2 } :: rest
    when d2 = dim && r2 = radices ->
      let rest', k = pass rest in
      (rest', k + 1)
  | Shift { dim; lo; hi } :: Shift { dim = d2; lo = lo2; hi = hi2 } :: rest
    when d2 = dim ->
      let rest', k =
        pass (Shift { dim; lo = lo + lo2; hi = hi + hi2 } :: rest)
      in
      (rest', k + 1)
  | Decode { dim; radices = r1 } :: Decode { dim = d2; radices = r2 } :: rest
    when d2 >= dim && d2 < dim + Array.length r1 && prod r2 = r1.(d2 - dim) ->
      (* refining one digit of a decode nests: mixed-radix positional
         decomposition is hierarchical, so both decodes flatten into one *)
      let j = d2 - dim in
      let merged =
        Array.concat
          [ Array.sub r1 0 j; r2; Array.sub r1 (j + 1) (Array.length r1 - j - 1) ]
      in
      let rest', k = pass (Decode { dim; radices = merged } :: rest) in
      (rest', k + 1)
  | st :: rest ->
      let rest', k = pass rest in
      (st :: rest', k)

let canon_steps steps =
  let rec fix steps budget =
    if budget = 0 then steps
    else
      let steps', k = pass steps in
      if k = 0 then steps'
      else begin
        Alt_obs.Metrics.add m_simplify k;
        fix steps' (budget - 1)
      end
  in
  fix steps 1000

let canonicalize t = { t with steps = canon_steps t.steps }

(* ------------------------------------------------------------------ *)
(* Constructors                                                       *)
(* ------------------------------------------------------------------ *)

let id dom =
  Shape.validate dom;
  { dom; rng = Array.copy dom; steps = [] }

let of_step dom (st : step) =
  let rng = apply_step dom st in
  { dom; rng; steps = canon_steps [ st ] }

let decode dom ~dim ~radices = of_step dom (Decode { dim; radices })
let encode dom ~dim ~radices = of_step dom (Encode { dim; radices })
let permute dom perm = of_step dom (Permute (Array.copy perm))
let shift dom ~dim ~lo ~hi = of_step dom (Shift { dim; lo; hi })
let window dom ~dim ~tile ~stride = of_step dom (Window { dim; tile; stride })

let compose a b =
  if not (Shape.equal a.rng b.dom) then
    err "compose: range %a <> domain %a" Shape.pp a.rng Shape.pp b.dom;
  Alt_obs.Metrics.incr m_compose;
  { dom = a.dom; rng = b.rng; steps = canon_steps (a.steps @ b.steps) }

let injective t =
  List.for_all (function Window _ -> false | _ -> true) t.steps

let bijective t =
  List.for_all
    (function Window _ | Shift _ -> false | _ -> true)
    t.steps

let invert_perm perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  inv

let inverse t =
  if not (bijective t) then
    err "inverse: relation %a is not bijective" pp t;
  let inv_step = function
    | Decode { dim; radices } -> Encode { dim; radices }
    | Encode { dim; radices } -> Decode { dim; radices }
    | Permute perm -> Permute (invert_perm perm)
    | Shift _ | Window _ -> assert false
  in
  {
    dom = t.rng;
    rng = t.dom;
    steps = canon_steps (List.rev_map inv_step t.steps);
  }

(* ------------------------------------------------------------------ *)
(* Point evaluation                                                   *)
(* ------------------------------------------------------------------ *)

(* Forward transform of one in-domain point through one step; [Window]
   is excluded (one-to-many) — handled separately by [fwd_points]. *)
let step_fwd (st : step) (idx : int array) : int array =
  let n = Array.length idx in
  match st with
  | Decode { dim; radices } ->
      let m = Array.length radices in
      let out = Array.make m 0 in
      let v = ref idx.(dim) in
      for j = m - 1 downto 0 do
        out.(j) <- !v mod radices.(j);
        v := !v / radices.(j)
      done;
      Array.concat
        [ Array.sub idx 0 dim; out; Array.sub idx (dim + 1) (n - dim - 1) ]
  | Encode { dim; radices } ->
      let m = Array.length radices in
      let v = ref 0 in
      for j = 0 to m - 1 do
        v := (!v * radices.(j)) + idx.(dim + j)
      done;
      Array.concat
        [ Array.sub idx 0 dim; [| !v |]; Array.sub idx (dim + m) (n - dim - m) ]
  | Permute perm -> Array.map (fun p -> idx.(p)) perm
  | Shift { dim; lo; hi = _ } ->
      let out = Array.copy idx in
      out.(dim) <- idx.(dim) + lo;
      out
  | Window _ -> err "step_fwd: window is one-to-many"

(* Backward transform through one step: [shape_before] is the step's
   input shape (from the trace).  [None] = hole. *)
let step_bwd (shape_before : Shape.t) (st : step) (idx : int array) :
    int array option =
  let n = Array.length idx in
  match st with
  | Decode { dim; radices } ->
      let m = Array.length radices in
      let v = ref 0 in
      for j = 0 to m - 1 do
        v := (!v * radices.(j)) + idx.(dim + j)
      done;
      Some
        (Array.concat
           [
             Array.sub idx 0 dim;
             [| !v |];
             Array.sub idx (dim + m) (n - dim - m);
           ])
  | Encode { dim; radices } ->
      let m = Array.length radices in
      let out = Array.make m 0 in
      let v = ref idx.(dim) in
      for j = m - 1 downto 0 do
        out.(j) <- !v mod radices.(j);
        v := !v / radices.(j)
      done;
      Some
        (Array.concat
           [ Array.sub idx 0 dim; out; Array.sub idx (dim + 1) (n - dim - 1) ])
  | Permute perm ->
      let out = Array.make n 0 in
      Array.iteri (fun i p -> out.(p) <- idx.(i)) perm;
      Some out
  | Shift { dim; lo; hi = _ } ->
      let v = idx.(dim) - lo in
      if v < 0 || v >= shape_before.(dim) then None
      else begin
        let out = Array.copy idx in
        out.(dim) <- v;
        Some out
      end
  | Window { dim; tile = _; stride } ->
      let v = (idx.(dim) * stride) + idx.(dim + 1) in
      if v >= shape_before.(dim) then None
      else
        Some
          (Array.concat
             [
               Array.sub idx 0 dim;
               [| v |];
               Array.sub idx (dim + 2) (n - dim - 2);
             ])

let compile_bwd t =
  let steps = Array.of_list t.steps in
  let trace = trace_of t.dom t.steps in
  let n = Array.length steps in
  fun (idx : int array) ->
    if Array.length idx <> Shape.rank t.rng then
      err "bwd: index rank %d <> range rank %d" (Array.length idx)
        (Shape.rank t.rng);
    let rec go i idx =
      if i < 0 then Some idx
      else
        match step_bwd trace.(i) steps.(i) idx with
        | None -> None
        | Some idx' -> go (i - 1) idx'
    in
    go (n - 1) idx

let compile_fwd t =
  if not (injective t) then
    err "fwd: relation %a has a window (one-to-many)" pp t;
  let steps = t.steps in
  fun (idx : int array) ->
    if Array.length idx <> Shape.rank t.dom then
      err "fwd: index rank %d <> domain rank %d" (Array.length idx)
        (Shape.rank t.dom);
    List.fold_left (fun i st -> step_fwd st i) (Array.copy idx) steps

(* All forward images: expand each window into every tile containing
   the point; the result is sorted by range offset so the order is a
   stable part of the contract. *)
let fwd_points t idx =
  if Array.length idx <> Shape.rank t.dom then
    err "fwd_points: index rank %d <> domain rank %d" (Array.length idx)
      (Shape.rank t.dom);
  let trace = trace_of t.dom t.steps in
  let pts = ref [ Array.copy idx ] in
  List.iteri
    (fun i st ->
      match st with
      | Window { dim; tile; stride } ->
          let d = trace.(i).(dim) in
          let tiles = window_tiles ~d ~tile ~stride in
          pts :=
            List.concat_map
              (fun (p : int array) ->
                let x = p.(dim) in
                let t_lo = max 0 (Shape.cdiv (x - tile + 1) stride) in
                let t_hi = min (tiles - 1) (x / stride) in
                let n = Array.length p in
                let rec gen tt acc =
                  if tt < t_lo then acc
                  else
                    let q =
                      Array.concat
                        [
                          Array.sub p 0 dim;
                          [| tt; x - (tt * stride) |];
                          Array.sub p (dim + 1) (n - dim - 1);
                        ]
                    in
                    gen (tt - 1) (q :: acc)
                in
                gen t_hi [])
              !pts
      | _ -> pts := List.map (step_fwd st) !pts)
    t.steps;
  let strides = Shape.strides t.rng in
  let off p =
    let o = ref 0 in
    Array.iteri (fun i x -> o := !o + (x * strides.(i))) p;
    !o
  in
  List.sort (fun a b -> compare (off a) (off b)) !pts

(* ------------------------------------------------------------------ *)
(* Extents, strides and cost                                          *)
(* ------------------------------------------------------------------ *)

let range_strides t = Shape.strides t.rng
let num_range_elements t = Shape.num_elements t.rng

let expansion t =
  float_of_int (num_range_elements t)
  /. float_of_int (Shape.num_elements t.dom)

let conversion_cost t = Shape.num_elements t.dom + Shape.num_elements t.rng
