(* Loop / index variables with globally unique identifiers.

   Variables are the atoms of the symbolic index algebra ([Ixexpr]) and of
   lowered loop nests.  Identity is the integer [id]; [name] is only used
   for printing.  Fresh identifiers come from a global atomic counter, which
   keeps substitution and environment lookup trivially correct across
   modules — and across domains, should lowering ever run off the main
   domain (the parallel measurement engine keeps lowering serial, but
   nothing downstream may depend on ids being dense). *)

type t = { id : int; name : string }

let counter = Atomic.make 0

let fresh name = { id = Atomic.fetch_and_add counter 1 + 1; name }

let id v = v.id
let name v = v.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash v = v.id

let pp ppf v = Fmt.pf ppf "%s#%d" v.name v.id

let renamed v name = { v with name }

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
