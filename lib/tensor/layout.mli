(** Data layout state and layout primitives (paper Section 4.1).

    A layout records a tensor's logical shape plus a cached sequence of
    primitives.  Basic primitives ([split]/[reorder]/[fuse], Table 1)
    perform one-to-one transformations; advanced primitives ([unfold] for
    overlapped tiling and [pad] for alignment, Section 4.1.2) may expand
    data.  [store_at] couples two tensors and lives at the graph level
    ({!Alt_graph.Placement}).  Physical buffers are row-major over
    [physical_shape].

    Concrete index semantics are carried by a canonical {!Relation}
    (DESIGN.md §16), derived incrementally as primitives are applied;
    the seed per-primitive implementations survive verbatim in
    {!Reference} as the differential oracle, selectable at runtime with
    [ALT_LAYOUT_REFERENCE=1]. *)

exception Layout_error of string

type prim =
  | Split of { dim : int; factors : int list }
  | Reorder of int array
  | Fuse of { dim : int; count : int }
  | Unfold of { dim : int; tile : int; stride : int }
  | Pad of { dim : int; lo : int; hi : int }

type t

val create : Shape.t -> t
(** Identity layout of a logical shape. *)

val logical_shape : t -> Shape.t
val physical_shape : t -> Shape.t
val prims : t -> prim list
val is_trivial : t -> bool

val relation : t -> Relation.t
(** The layout's index relation: domain = [logical_shape], range =
    [physical_shape], steps = the canonicalized primitive chain.
    Memoized; derived incrementally by {!apply}. *)

val phys_strides : t -> int array
(** Row-major element strides of the physical shape, read from the
    relation's range — what lowering and the exec backend's
    affine-profile extraction use. *)

val conversion_cost : t -> int
(** {!Relation.conversion_cost} of the layout's relation: one read per
    logical element + one write per physical element. *)

val has_advanced : t -> bool
(** True if the primitive sequence contains [unfold] or [pad] — the
    "non-trivial advanced primitives" test of Algorithm 1. *)

val invertible : t -> bool
(** True if the logical->physical index map is a bijection (no advanced
    primitives); required of output-tensor layouts. *)

val apply : t -> prim -> t

val split : t -> dim:int -> factors:int list -> t
(** Factors must multiply to the current extent of [dim]. *)

val reorder : t -> int array -> t
(** [reorder t perm]: new dim [i] is old dim [perm.(i)]. *)

val fuse : t -> dim:int -> count:int -> t
val unfold : t -> dim:int -> tile:int -> stride:int -> t
val pad : t -> dim:int -> lo:int -> hi:int -> t

val equal : t -> t -> bool
val pp : t Fmt.t
val pp_prim : prim Fmt.t

type window = Var.t -> int option
(** Maps sliding-window variables (e.g. a convolution's output spatial
    iterators) to their constant stride V; used by the unfold rewrite. *)

val no_window : window

val forward_exprs :
  ?bounds:Ixexpr.bounds -> ?window:window -> t -> Ixexpr.t array ->
  Ixexpr.t array
(** Rewrites logical access expressions to physical ones (Table 1); for
    [unfold] the access must have the sliding form [V*i + r] with window
    variable [i] (Eq. (1)).  Raises {!Layout_error} otherwise. *)

val inverse_exprs : ?bounds:Ixexpr.bounds -> t -> Ixexpr.t array -> Ixexpr.t array
(** Physical index expressions -> logical; requires [invertible].  This is
    the S_Y^{-1} used when reconstructing a producer's loop nest. *)

val logical_of_physical :
  ?bounds:Ixexpr.bounds -> t -> Ixexpr.t array ->
  Ixexpr.t array * (Ixexpr.t * int) list
(** Physical index expressions -> logical, total even for [unfold] and
    [pad]; also returns in-bounds conditions [(expr, extent)] meaning
    [0 <= expr < extent] that guard padded / overhanging positions.  Used to
    generate conversion-operator programs. *)

val eval_fwd : t -> int array -> int array
(** Concrete logical index -> physical index; rejects layouts with
    [unfold] (one-to-many). *)

val phys_index : t -> int array -> int
(** Concrete logical index -> physical {e offset} (row-major over
    [physical_shape]); rejects layouts with [unfold] like {!eval_fwd}.
    Pinned byte-identical to {!Reference.phys_index} by the QCheck2
    differential suite. *)

val pack : t -> float array -> float array
(** Materializes the physical buffer from logical row-major data (zero
    fills padding; duplicates overlapped tiles). *)

val unpack : t -> float array -> float array
(** Recovers logical row-major data from a physical buffer. *)

val num_physical_elements : t -> int

val expansion_ratio : t -> float
(** Physical elements / logical elements (>= 1; > 1 for unfold and pad). *)

val of_prims : Shape.t -> prim list -> t
(** Replays a primitive sequence onto a fresh layout of [shape].  Each
    primitive is validated exactly once against the incrementally
    maintained physical shape (linear in chain length; the seed
    re-validated the whole prefix per step, quadratic — the
    [layout.relation.validate] counter ticks once per validation and a
    regression test pins the linear count). *)

val replay : Shape.t -> t -> t
(** [replay shape src] copies [src]'s primitive chain onto a tensor of
    [shape] — how layout propagation duplicates a chosen layout onto
    consumers.  When [shape] equals [src]'s logical shape (the common
    case) the already-proven relation is shared and nothing is
    re-validated; otherwise it falls back to {!of_prims} (which raises
    {!Layout_error} if the chain is illegal for [shape]). *)

(** The seed implementations of the concrete maps, kept verbatim as the
    differential oracle: the QCheck2 suite in test/test_relation.ml pins
    the relation-backed [pack]/[unpack]/[eval_fwd]/[phys_index] above
    byte-identical to these.  Setting [ALT_LAYOUT_REFERENCE=1] routes
    the production entry points through this module at runtime (counted
    by the [layout.relation.fallback] metric). *)
module Reference : sig
  val physical_shape : t -> Shape.t
  val pack : t -> float array -> float array
  val unpack : t -> float array -> float array
  val eval_fwd : t -> int array -> int array
  val phys_index : t -> int array -> int
end
