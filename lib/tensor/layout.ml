(* Data layout state and layout primitives (paper Section 4.1).

   A layout is the original (logical) shape of a tensor plus an ordered
   sequence of primitives.  Primitives are cached, exactly as in the paper;
   the actual transformation happens when
   - deducing the physical shape ([physical_shape]),
   - rewriting access expressions during lowering ([forward_exprs],
     implementing Table 1 and the unfold rule Eq. (1)),
   - reconstructing the loop nest of a producer ([inverse_exprs], the
     S_Y^{-1} of Section 6), and
   - moving concrete data ([pack] / [unpack], used by conversion operators,
     offline weight packing and test oracles).

   Concrete index semantics (shape deduction, pack/unpack, forward/backward
   point maps, strides, conversion cost) are expressed through the
   {!Relation} algebra (DESIGN.md §16): every layout owns a canonical
   index relation, derived incrementally as primitives are applied and
   memoized per domain.  The record itself stays the seed
   [{ logical; prims }] pair — candidate digests, fault-injection keys and
   checkpoints all [Marshal] values containing layouts, so the wire shape
   must not change.  The symbolic rewrites ([forward_exprs],
   [inverse_exprs], [logical_of_physical]) intentionally keep walking the
   primitive list verbatim: canonicalized relations could emit different
   (equivalent) index expressions and perturb tuning trajectories.

   The seed implementations of the concrete maps are kept verbatim in
   {!Reference} as the differential oracle (test/test_relation.ml proves
   byte-identity); [ALT_LAYOUT_REFERENCE=1] routes production entry points
   back through them, same escape-hatch pattern as [ALT_GBDT_REFERENCE].

   Physical buffers are always row-major over the physical shape.

   [store_at] couples two tensors and is therefore represented at the graph
   level (see [Alt_graph.Placement]); this module handles single-tensor
   primitives. *)

exception Layout_error of string

let err fmt = Fmt.kstr (fun s -> raise (Layout_error s)) fmt

type prim =
  | Split of { dim : int; factors : int list }
  | Reorder of int array
  | Fuse of { dim : int; count : int }
  | Unfold of { dim : int; tile : int; stride : int }
  | Pad of { dim : int; lo : int; hi : int }

type t = { logical : Shape.t; prims : prim list (* in application order *) }

let create logical =
  Shape.validate logical;
  { logical; prims = [] }

let logical_shape t = t.logical
let prims t = t.prims
let is_trivial t = t.prims = []

let has_advanced t =
  List.exists
    (function Unfold _ | Pad _ -> true | Split _ | Reorder _ | Fuse _ -> false)
    t.prims

let invertible t =
  List.for_all
    (function Split _ | Reorder _ | Fuse _ -> true | Unfold _ | Pad _ -> false)
    t.prims

let pp_prim ppf = function
  | Split { dim; factors } ->
      Fmt.pf ppf "split(dim=%d, factors=[%a])" dim
        Fmt.(list ~sep:comma int)
        factors
  | Reorder perm -> Fmt.pf ppf "reorder([%a])" Fmt.(array ~sep:comma int) perm
  | Fuse { dim; count } -> Fmt.pf ppf "fuse(dim=%d, count=%d)" dim count
  | Unfold { dim; tile; stride } ->
      Fmt.pf ppf "unfold(dim=%d, tile=%d, stride=%d)" dim tile stride
  | Pad { dim; lo; hi } -> Fmt.pf ppf "pad(dim=%d, lo=%d, hi=%d)" dim lo hi

let pp ppf t =
  Fmt.pf ppf "@[<h>%a :: %a@]" Shape.pp t.logical
    Fmt.(list ~sep:(any " ; ") pp_prim)
    t.prims

let equal a b = Shape.equal a.logical b.logical && a.prims = b.prims

(* Number of tiles in an unfolded dimension of extent [d]: ceil((d-B)/S)+1.
   The last tile may overhang the tensor; overhanging positions zero-fill
   on [pack] and are guarded on conversion, matching Section 4.1.2. *)
let unfold_tiles ~d ~tile ~stride =
  if tile > d then err "unfold: tile %d larger than extent %d" tile d;
  Shape.cdiv (d - tile) stride + 1

(* ------------------------------------------------------------------ *)
(* Shape deduction.                                                   *)
(* ------------------------------------------------------------------ *)

(* Ticks once per primitive validated: the regression test for the
   incremental [apply]/[of_prims]/[replay] path asserts an n-primitive
   chain costs exactly n validations, not the seed's n(n+1)/2. *)
let m_validate = Alt_obs.Metrics.counter "layout.relation.validate"

let shape_step (s : Shape.t) p =
  Alt_obs.Metrics.incr m_validate;
  match p with
  | Split { dim; factors } ->
      if dim < 0 || dim >= Shape.rank s then err "split: dim %d out of range" dim;
      let p = List.fold_left ( * ) 1 factors in
      if p <> s.(dim) then
        err "split: factors product %d <> extent %d (dim %d)" p s.(dim) dim;
      if List.exists (fun f -> f <= 0) factors then err "split: factor <= 0";
      Array.concat
        [
          Array.sub s 0 dim;
          Array.of_list factors;
          Array.sub s (dim + 1) (Shape.rank s - dim - 1);
        ]
  | Reorder perm ->
      let n = Shape.rank s in
      if Array.length perm <> n then err "reorder: permutation rank mismatch";
      let seen = Array.make n false in
      Array.iter
        (fun p ->
          if p < 0 || p >= n || seen.(p) then err "reorder: invalid permutation";
          seen.(p) <- true)
        perm;
      Array.map (fun p -> s.(p)) perm
  | Fuse { dim; count } ->
      if count < 2 then err "fuse: count must be >= 2";
      if dim < 0 || dim + count > Shape.rank s then err "fuse: range out of bounds";
      Array.concat
        [
          Array.sub s 0 dim;
          [| Shape.prod_range s dim (dim + count - 1) |];
          Array.sub s (dim + count) (Shape.rank s - dim - count);
        ]
  | Unfold { dim; tile; stride } ->
      if dim < 0 || dim >= Shape.rank s then err "unfold: dim out of range";
      let tiles = unfold_tiles ~d:s.(dim) ~tile ~stride in
      Array.concat
        [
          Array.sub s 0 dim;
          [| tiles; tile |];
          Array.sub s (dim + 1) (Shape.rank s - dim - 1);
        ]
  | Pad { dim; lo; hi } ->
      if dim < 0 || dim >= Shape.rank s then err "pad: dim out of range";
      if lo < 0 || hi < 0 then err "pad: negative padding";
      let s' = Array.copy s in
      s'.(dim) <- s.(dim) + lo + hi;
      s'

(* Shapes before each primitive, plus the final shape (length = #prims+1). *)
let shape_trace t : Shape.t list =
  let rec go s = function
    | [] -> [ s ]
    | p :: tl -> s :: go (shape_step s p) tl
  in
  go t.logical t.prims

(* ------------------------------------------------------------------ *)
(* Derived relation (memoized).                                       *)
(* ------------------------------------------------------------------ *)

(* The relation step of one primitive, given the shape it applies to
   ([fuse] needs the extents it collapses). *)
let prim_relation (s : Shape.t) = function
  | Split { dim; factors } ->
      Relation.decode s ~dim ~radices:(Array.of_list factors)
  | Reorder perm -> Relation.permute s perm
  | Fuse { dim; count } -> Relation.encode s ~dim ~radices:(Array.sub s dim count)
  | Unfold { dim; tile; stride } -> Relation.window s ~dim ~tile ~stride
  | Pad { dim; lo; hi } -> Relation.shift s ~dim ~lo ~hi

type derived = { phys : Shape.t; rel : Relation.t }

(* Per-domain memo of derived state, keyed structurally by the layout
   itself.  [apply] extends the parent's entry, so growing a chain
   validates each new primitive exactly once; worker domains re-derive
   lazily on first use (the table is domain-local — no locking). *)
let memo_key : (t, derived) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let memo_cap = 65536

let memo_put t d =
  let tbl = Domain.DLS.get memo_key in
  if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
  Hashtbl.replace tbl t d

let extend_derived d p =
  (* validate against the cached physical shape — one [shape_step] — and
     push the primitive's relation onto the canonical chain *)
  let phys = shape_step d.phys p in
  { phys; rel = Relation.compose d.rel (prim_relation d.phys p) }

let derived t =
  let tbl = Domain.DLS.get memo_key in
  match Hashtbl.find_opt tbl t with
  | Some d -> d
  | None ->
      let d0 = { phys = t.logical; rel = Relation.id t.logical } in
      let d = List.fold_left extend_derived d0 t.prims in
      memo_put t d;
      d

let physical_shape t = (derived t).phys
let relation t = (derived t).rel
let phys_strides t = Relation.range_strides (derived t).rel
let conversion_cost t = Relation.conversion_cost (derived t).rel

(* ------------------------------------------------------------------ *)
(* Primitive constructors (validated against the current shape).       *)
(* ------------------------------------------------------------------ *)

let apply t p =
  (* Validation happens eagerly so misuse fails at schedule-construction
     time, not deep inside lowering; only the new primitive is checked —
     the memoized parent relation already proves the prefix. *)
  let d = extend_derived (derived t) p in
  let t' = { t with prims = t.prims @ [ p ] } in
  memo_put t' d;
  t'

let split t ~dim ~factors = apply t (Split { dim; factors })
let reorder t perm = apply t (Reorder (Array.copy perm))
let fuse t ~dim ~count = apply t (Fuse { dim; count })
let unfold t ~dim ~tile ~stride = apply t (Unfold { dim; tile; stride })
let pad t ~dim ~lo ~hi = apply t (Pad { dim; lo; hi })

(* ------------------------------------------------------------------ *)
(* Symbolic forward rewriting (Table 1 and Eq. (1)).                   *)
(* ------------------------------------------------------------------ *)

type window = Var.t -> int option
(* For sliding-window accesses: maps a window variable (e.g. the output
   height iterator of a convolution) to the constant convolution stride V. *)

let no_window : window = fun _ -> None

let split_exprs e factors =
  (* e over extent (prod factors) -> one expression per factor, row-major. *)
  let fs = Array.of_list factors in
  let m = Array.length fs in
  let tail_prod j = Shape.prod_range fs (j + 1) (m - 1) in
  Array.to_list
    (Array.init m (fun j ->
         let q = Ixexpr.div e (Ixexpr.const (tail_prod j)) in
         if j = 0 then q else Ixexpr.mod_ q (Ixexpr.const fs.(j))))

let fuse_expr es sizes =
  (* indices es with extents sizes -> single row-major expression *)
  let n = Array.length sizes in
  let acc = ref Ixexpr.zero in
  for j = 0 to n - 1 do
    let tail = Shape.prod_range sizes (j + 1) (n - 1) in
    acc := Ixexpr.add !acc (Ixexpr.mul es.(j) (Ixexpr.const tail))
  done;
  !acc

let forward_exprs ?(bounds = Ixexpr.no_bounds) ?(window = no_window) t
    (idx : Ixexpr.t array) : Ixexpr.t array =
  if Array.length idx <> Shape.rank t.logical then
    err "forward_exprs: index rank %d <> logical rank %d" (Array.length idx)
      (Shape.rank t.logical);
  let step (shape, idx) p =
    let shape' = shape_step shape p in
    let idx' =
      match p with
      | Split { dim; factors } ->
          Array.concat
            [
              Array.sub idx 0 dim;
              Array.of_list (split_exprs idx.(dim) factors);
              Array.sub idx (dim + 1) (Array.length idx - dim - 1);
            ]
      | Reorder perm -> Array.map (fun pdim -> idx.(pdim)) perm
      | Fuse { dim; count } ->
          let sizes = Array.sub shape dim count in
          let es = Array.sub idx dim count in
          Array.concat
            [
              Array.sub idx 0 dim;
              [| fuse_expr es sizes |];
              Array.sub idx (dim + count) (Array.length idx - dim - count);
            ]
      | Pad { dim; lo; hi = _ } ->
          let idx' = Array.copy idx in
          idx'.(dim) <- Ixexpr.add idx.(dim) (Ixexpr.const lo);
          idx'
      | Unfold { dim; tile; stride } ->
          (* Eq. (1): access V*i + r with window var i of stride V becomes
             [ i / wpt ; V*i + r - stride * (i / wpt) ]
             where wpt = floor((tile - M) / V) + 1 and M is the window
             extent (max value of r, plus one). *)
          let e = idx.(dim) in
          let wvars =
            Var.Set.filter (fun v -> window v <> None) (Ixexpr.vars e)
          in
          let wv =
            match Var.Set.elements wvars with
            | [ v ] -> v
            | [] ->
                err "unfold: access %a has no window variable (dim %d)"
                  Ixexpr.pp e dim
            | _ -> err "unfold: access %a has several window variables" Ixexpr.pp e
          in
          let v_stride = Option.get (window wv) in
          (match Ixexpr.coeff_of ~bounds e wv with
          | Some c when c = v_stride -> ()
          | Some c ->
              err "unfold: window var %a has coefficient %d, stride is %d"
                Var.pp wv c v_stride
          | None -> err "unfold: access %a not affine in window var" Ixexpr.pp e);
          let r = Option.get (Ixexpr.drop_var ~bounds e wv) in
          let m =
            match Ixexpr.range ~bounds r with
            | Some (lo, hi) when lo >= 0 -> hi + 1
            | _ -> err "unfold: cannot bound window extent of %a" Ixexpr.pp r
          in
          if m > tile then
            err "unfold: window extent %d exceeds tile size %d" m tile;
          let wpt = ((tile - m) / v_stride) + 1 in
          let tile_ix =
            Ixexpr.simplify ~bounds
              (Ixexpr.div (Ixexpr.var wv) (Ixexpr.const wpt))
          in
          let off =
            Ixexpr.simplify ~bounds
              (Ixexpr.sub e (Ixexpr.mul (Ixexpr.const stride) tile_ix))
          in
          Array.concat
            [
              Array.sub idx 0 dim;
              [| tile_ix; off |];
              Array.sub idx (dim + 1) (Array.length idx - dim - 1);
            ]
    in
    (shape', idx')
  in
  let _, out = List.fold_left step (t.logical, idx) t.prims in
  Array.map (Ixexpr.simplify ~bounds) out

(* ------------------------------------------------------------------ *)
(* Symbolic inverse rewriting: physical indices -> logical indices.    *)
(* ------------------------------------------------------------------ *)

let inverse_exprs ?(bounds = Ixexpr.no_bounds) t (idx : Ixexpr.t array) :
    Ixexpr.t array =
  if not (invertible t) then
    err "inverse_exprs: layout %a contains advanced primitives" pp t;
  let trace = Array.of_list (shape_trace t) in
  let prims = Array.of_list t.prims in
  let n = Array.length prims in
  let cur = ref idx in
  for i = n - 1 downto 0 do
    let shape_before = trace.(i) in
    let idx = !cur in
    (cur :=
       match prims.(i) with
       | Split { dim; factors } ->
           (* inverse of split = fuse of the produced dims *)
           let sizes = Array.of_list factors in
           let es = Array.sub idx dim (Array.length sizes) in
           Array.concat
             [
               Array.sub idx 0 dim;
               [| fuse_expr es sizes |];
               Array.sub idx
                 (dim + Array.length sizes)
                 (Array.length idx - dim - Array.length sizes);
             ]
       | Reorder perm ->
           let out = Array.make (Array.length idx) Ixexpr.zero in
           Array.iteri (fun i pdim -> out.(pdim) <- idx.(i)) perm;
           out
       | Fuse { dim; count } ->
           let sizes = Array.to_list (Array.sub shape_before dim count) in
           Array.concat
             [
               Array.sub idx 0 dim;
               Array.of_list (split_exprs idx.(dim) sizes);
               Array.sub idx (dim + 1) (Array.length idx - dim - 1);
             ]
       | Unfold _ | Pad _ -> assert false)
  done;
  Array.map (Ixexpr.simplify ~bounds) !cur

(* Physical index exprs -> logical index exprs, defined even for unfold
   (logical = tile*stride + offset) and pad (logical = i - lo, with an
   in-bounds condition).  Used to generate conversion-operator programs. *)
let logical_of_physical ?(bounds = Ixexpr.no_bounds) t (idx : Ixexpr.t array) :
    Ixexpr.t array * (Ixexpr.t * int) list =
  let trace = Array.of_list (shape_trace t) in
  let prims = Array.of_list t.prims in
  let n = Array.length prims in
  let cur = ref idx in
  let conds = ref [] in
  for i = n - 1 downto 0 do
    let shape_before = trace.(i) in
    let idx = !cur in
    (cur :=
       match prims.(i) with
       | Split { dim; factors } ->
           let sizes = Array.of_list factors in
           let es = Array.sub idx dim (Array.length sizes) in
           Array.concat
             [
               Array.sub idx 0 dim;
               [| fuse_expr es sizes |];
               Array.sub idx
                 (dim + Array.length sizes)
                 (Array.length idx - dim - Array.length sizes);
             ]
       | Reorder perm ->
           let out = Array.make (Array.length idx) Ixexpr.zero in
           Array.iteri (fun i pdim -> out.(pdim) <- idx.(i)) perm;
           out
       | Fuse { dim; count } ->
           let sizes = Array.to_list (Array.sub shape_before dim count) in
           Array.concat
             [
               Array.sub idx 0 dim;
               Array.of_list (split_exprs idx.(dim) sizes);
               Array.sub idx (dim + 1) (Array.length idx - dim - 1);
             ]
       | Unfold { dim; tile = _; stride } ->
           let t_ix = idx.(dim) and off = idx.(dim + 1) in
           let logical =
             Ixexpr.add (Ixexpr.mul t_ix (Ixexpr.const stride)) off
           in
           conds := (logical, shape_before.(dim)) :: !conds;
           Array.concat
             [
               Array.sub idx 0 dim;
               [| logical |];
               Array.sub idx (dim + 2) (Array.length idx - dim - 2);
             ]
       | Pad { dim; lo; hi = _ } ->
           let logical = Ixexpr.sub idx.(dim) (Ixexpr.const lo) in
           conds := (logical, shape_before.(dim)) :: !conds;
           let idx' = Array.copy idx in
           idx'.(dim) <- logical;
           idx')
  done;
  ( Array.map (Ixexpr.simplify ~bounds) !cur,
    List.map (fun (e, d) -> (Ixexpr.simplify ~bounds e, d)) !conds )

(* ------------------------------------------------------------------ *)
(* Concrete data movement (relation-backed, seed kept as oracle).      *)
(* ------------------------------------------------------------------ *)

(* The seed implementations, verbatim: per-primitive backward/forward
   walks over the primitive list.  They are the differential oracle the
   QCheck2 suite pins the relation path against, and the
   [ALT_LAYOUT_REFERENCE=1] escape hatch at runtime. *)
module Reference = struct
  let physical_shape t = List.fold_left shape_step t.logical t.prims

  (* Map a physical multi-index to its logical source (total even for unfold
     and pad; pad out-of-range positions return None => zero fill). *)
  let concrete_logical_of_physical t : int array -> int array option =
    let trace = Array.of_list (shape_trace t) in
    let prims = Array.of_list t.prims in
    let n = Array.length prims in
    fun phys ->
      let cur = ref (Array.copy phys) in
      let ok = ref true in
      (try
         for i = n - 1 downto 0 do
           let shape_before = trace.(i) in
           let idx = !cur in
           (cur :=
              match prims.(i) with
              | Split { dim; factors } ->
                  let sizes = Array.of_list factors in
                  let m = Array.length sizes in
                  let v = ref 0 in
                  for j = 0 to m - 1 do
                    v := (!v * sizes.(j)) + idx.(dim + j)
                  done;
                  Array.concat
                    [
                      Array.sub idx 0 dim;
                      [| !v |];
                      Array.sub idx (dim + m) (Array.length idx - dim - m);
                    ]
              | Reorder perm ->
                  let out = Array.make (Array.length idx) 0 in
                  Array.iteri (fun i pdim -> out.(pdim) <- idx.(i)) perm;
                  out
              | Fuse { dim; count } ->
                  let sizes = Array.sub shape_before dim count in
                  let out = Array.make count 0 in
                  let v = ref idx.(dim) in
                  for j = count - 1 downto 0 do
                    out.(j) <- !v mod sizes.(j);
                    v := !v / sizes.(j)
                  done;
                  Array.concat
                    [
                      Array.sub idx 0 dim;
                      out;
                      Array.sub idx (dim + 1) (Array.length idx - dim - 1);
                    ]
              | Unfold { dim; tile = _; stride } ->
                  let v = (idx.(dim) * stride) + idx.(dim + 1) in
                  if v >= shape_before.(dim) then raise Exit;
                  Array.concat
                    [
                      Array.sub idx 0 dim;
                      [| v |];
                      Array.sub idx (dim + 2) (Array.length idx - dim - 2);
                    ]
              | Pad { dim; lo; hi = _ } ->
                  let v = idx.(dim) - lo in
                  if v < 0 || v >= shape_before.(dim) then raise Exit;
                  let idx' = Array.copy idx in
                  idx'.(dim) <- v;
                  idx')
         done
       with Exit -> ok := false);
      if !ok then Some !cur else None

  let pack t (src : float array) : float array =
    if Array.length src <> Shape.num_elements t.logical then
      err "pack: source size %d <> logical elements %d" (Array.length src)
        (Shape.num_elements t.logical);
    let phys = physical_shape t in
    let dst = Array.make (Shape.num_elements phys) 0.0 in
    let back = concrete_logical_of_physical t in
    let lstrides = Shape.strides t.logical in
    for off = 0 to Array.length dst - 1 do
      let pidx = Shape.index_of_offset phys off in
      match back pidx with
      | None -> () (* zero fill (padding / overrun) *)
      | Some lidx ->
          let loff = ref 0 in
          Array.iteri (fun i x -> loff := !loff + (x * lstrides.(i))) lidx;
          dst.(off) <- src.(!loff)
    done;
    dst

  let unpack t (src : float array) : float array =
    (* Defined for any layout: every physical element maps back to a logical
       position; duplicated (unfolded) elements agree by construction. *)
    let phys = physical_shape t in
    if Array.length src <> Shape.num_elements phys then
      err "unpack: source size %d <> physical elements %d" (Array.length src)
        (Shape.num_elements phys);
    let dst = Array.make (Shape.num_elements t.logical) 0.0 in
    let back = concrete_logical_of_physical t in
    let lstrides = Shape.strides t.logical in
    for off = 0 to Array.length src - 1 do
      let pidx = Shape.index_of_offset phys off in
      match back pidx with
      | None -> ()
      | Some lidx ->
          let loff = ref 0 in
          Array.iteri (fun i x -> loff := !loff + (x * lstrides.(i))) lidx;
          dst.(!loff) <- src.(off)
    done;
    dst

  (* Concrete logical index -> physical index; rejects unfold (one-to-many).
     Used by reference executors and [unpack] round-trip tests. *)
  let eval_fwd t : int array -> int array =
    if List.exists (function Unfold _ -> true | _ -> false) t.prims then
      err "eval_fwd: layout has unfold (one-to-many mapping)";
    let prims = t.prims in
    let trace = shape_trace t in
    fun lidx ->
      let rec go idx shapes prims =
        match (shapes, prims) with
        | _, [] -> idx
        | shape :: shapes', p :: prims' ->
            let idx' =
              match p with
              | Split { dim; factors } ->
                  let sizes = Array.of_list factors in
                  let m = Array.length sizes in
                  let out = Array.make m 0 in
                  let v = ref idx.(dim) in
                  for j = m - 1 downto 0 do
                    out.(j) <- !v mod sizes.(j);
                    v := !v / sizes.(j)
                  done;
                  Array.concat
                    [
                      Array.sub idx 0 dim;
                      out;
                      Array.sub idx (dim + 1) (Array.length idx - dim - 1);
                    ]
              | Reorder perm -> Array.map (fun pdim -> idx.(pdim)) perm
              | Fuse { dim; count } ->
                  let sizes = Array.sub shape dim count in
                  let v = ref 0 in
                  for j = 0 to count - 1 do
                    v := (!v * sizes.(j)) + idx.(dim + j)
                  done;
                  Array.concat
                    [
                      Array.sub idx 0 dim;
                      [| !v |];
                      Array.sub idx (dim + count) (Array.length idx - dim - count);
                    ]
              | Pad { dim; lo; hi = _ } ->
                  let idx' = Array.copy idx in
                  idx'.(dim) <- idx.(dim) + lo;
                  idx'
              | Unfold _ -> assert false
            in
            go idx' shapes' prims'
        | [], _ :: _ -> assert false
      in
      go (Array.copy lidx) trace prims

  let phys_index t =
    let fwd = eval_fwd t in
    let phys = physical_shape t in
    fun lidx -> Shape.offset_of_index phys (fwd lidx)
end

let m_fallback = Alt_obs.Metrics.counter "layout.relation.fallback"

let reference_mode () =
  match Sys.getenv_opt "ALT_LAYOUT_REFERENCE" with
  | Some ("1" | "true" | "yes") ->
      Alt_obs.Metrics.incr m_fallback;
      true
  | _ -> false

let pack t (src : float array) : float array =
  if reference_mode () then Reference.pack t src
  else begin
    if Array.length src <> Shape.num_elements t.logical then
      err "pack: source size %d <> logical elements %d" (Array.length src)
        (Shape.num_elements t.logical);
    let d = derived t in
    let phys = d.phys in
    let dst = Array.make (Shape.num_elements phys) 0.0 in
    let back = Relation.compile_bwd d.rel in
    let lstrides = Shape.strides t.logical in
    for off = 0 to Array.length dst - 1 do
      let pidx = Shape.index_of_offset phys off in
      match back pidx with
      | None -> () (* zero fill (padding / overrun) *)
      | Some lidx ->
          let loff = ref 0 in
          Array.iteri (fun i x -> loff := !loff + (x * lstrides.(i))) lidx;
          dst.(off) <- src.(!loff)
    done;
    dst
  end

let unpack t (src : float array) : float array =
  if reference_mode () then Reference.unpack t src
  else begin
    let d = derived t in
    let phys = d.phys in
    if Array.length src <> Shape.num_elements phys then
      err "unpack: source size %d <> physical elements %d" (Array.length src)
        (Shape.num_elements phys);
    let dst = Array.make (Shape.num_elements t.logical) 0.0 in
    let back = Relation.compile_bwd d.rel in
    let lstrides = Shape.strides t.logical in
    for off = 0 to Array.length src - 1 do
      let pidx = Shape.index_of_offset phys off in
      match back pidx with
      | None -> ()
      | Some lidx ->
          let loff = ref 0 in
          Array.iteri (fun i x -> loff := !loff + (x * lstrides.(i))) lidx;
          dst.(!loff) <- src.(off)
    done;
    dst
  end

let eval_fwd t : int array -> int array =
  if List.exists (function Unfold _ -> true | _ -> false) t.prims then
    err "eval_fwd: layout has unfold (one-to-many mapping)";
  if reference_mode () then Reference.eval_fwd t
  else Relation.compile_fwd (relation t)

let phys_index t =
  if reference_mode () then Reference.phys_index t
  else begin
    let fwd = eval_fwd t in
    let phys = physical_shape t in
    fun lidx -> Shape.offset_of_index phys (fwd lidx)
  end

let num_physical_elements t = Shape.num_elements (physical_shape t)

let expansion_ratio t =
  float_of_int (num_physical_elements t)
  /. float_of_int (Shape.num_elements t.logical)

(* Replay a primitive sequence onto a (same-shaped) tensor — how layout
   propagation duplicates a source tensor's primitives (Section 4.2). *)
let of_prims shape prims =
  List.fold_left apply (create shape) prims

let replay shape src =
  Shape.validate shape;
  if Shape.equal shape src.logical then
    (* Same logical shape: the source chain is already proven legal, and
       the copy is structurally equal to [src], so it shares the memoized
       relation — zero re-validation.  (This is what layout propagation
       does for every consumer of a chosen layout.) *)
    { logical = shape; prims = src.prims }
  else of_prims shape src.prims
