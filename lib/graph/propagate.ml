(* Layout propagation (paper Section 4.2, Algorithm 1) and end-to-end
   compilation planning.

   Given layout choices for complex operators, this module decides:
   - the storage layout every tensor is materialized in,
   - which elementwise producers *emit* a requested layout directly
     (Fig. 5b — backward propagation, avoiding a conversion operator),
   - which consumer chains share the producer's output layout so that
     operator fusion stays legal (forward propagation, Fig. 7),
   - where conversion operators must be inserted (the constraints of
     Algorithm 1: advanced primitives are never propagated further, complex
     operators are tuned independently, and primitives only replicate
     across same-shaped elementwise operators).

   The propagation [mode] realizes the paper's ablation variants:
   - [Full]     : ALT (backward emission + forward sharing + fusion);
   - [Adjacent] : ALT-WP (only adjacent conversion elimination; consumers
                  keep their own layouts, so fusion with transformed
                  producers conflicts and is lost);
   - [Off]      : every mismatch goes through a conversion operator. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Opdef = Alt_ir.Opdef

type mode = Full | Adjacent | Off

type choice = {
  out_layout : Layout.t;
  in_layouts : (string * Layout.t) list;
}

(* A compilation stage, in execution order. *)
type stage =
  | Convert of { tensor : string; src : Layout.t; dst : Layout.t }
      (* materialize [tensor] additionally in layout [dst] *)
  | Complex_stage of {
      node : Graph.node;
      out_layout : Layout.t;
      in_layouts : (string * Layout.t) list; (* layout used for each read *)
      fused : Graph.node list; (* elementwise chain fused into the nest *)
    }
  | Simple_stage of { node : Graph.node; out_layout : Layout.t }

type plan = {
  stages : stage list;
  storage : (string * Layout.t) list; (* final storage layout per tensor *)
  conversions : int;
  fused_ops : int;
}

let trivial_of g name = Layout.create (Graph.tensor_shape g name)

(* Is [node] a pure elementwise operator (Assign, no reductions)? *)
let is_assign (n : Graph.node) = n.Graph.op.Opdef.combiner = Opdef.Assign

let single_consumer g name =
  match Graph.consumers g name with [ c ] -> Some c | _ -> None

let plan ?(mode = Full) (g : Graph.t)
    ~(choices : (string * choice) list) : plan =
  let storage : (string, Layout.t) Hashtbl.t = Hashtbl.create 64 in
  let claimed : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let emitted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* conversions needed by a complex node, keyed by node name *)
  let pending_converts : (string, stage list) Hashtbl.t = Hashtbl.create 16 in
  (* reads of each complex node: tensor -> layout actually read *)
  let reads : (string, (string * Layout.t) list) Hashtbl.t = Hashtbl.create 16 in
  (* producer out name -> fused consumer chain *)
  let fusion : (string, Graph.node list) Hashtbl.t = Hashtbl.create 16 in
  let in_chain : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let get_storage name =
    match Hashtbl.find_opt storage name with
    | Some l -> l
    | None -> trivial_of g name
  in
  (* ---- pass 1: decisions ---- *)
  Array.iter
    (fun (node : Graph.node) ->
      let op = node.Graph.op in
      match List.assoc_opt op.Opdef.name choices with
      | None -> ()
      | Some ch ->
          (* Output layout. *)
          Hashtbl.replace storage op.Opdef.out_name ch.out_layout;
          Hashtbl.replace claimed op.Opdef.out_name ();
          (* Forward propagation: share the output primitives along the
             single-consumer elementwise chain so fusion stays aligned. *)
          if mode = Full then begin
            let rec walk cur =
              match single_consumer g cur with
              | Some cons
                when is_assign cons
                     && (not cons.Graph.op.Opdef.complex)
                     && Shape.equal cons.Graph.op.Opdef.out_shape
                          op.Opdef.out_shape
                     && (not (Hashtbl.mem claimed cons.Graph.op.Opdef.out_name))
                     && not (Layout.has_advanced ch.out_layout) ->
                  let cl =
                    Layout.replay cons.Graph.op.Opdef.out_shape ch.out_layout
                  in
                  Hashtbl.replace storage cons.Graph.op.Opdef.out_name cl;
                  Hashtbl.replace claimed cons.Graph.op.Opdef.out_name ();
                  Hashtbl.replace fusion op.Opdef.out_name
                    ((try Hashtbl.find fusion op.Opdef.out_name with Not_found -> [])
                    @ [ cons ]);
                  Hashtbl.replace in_chain cons.Graph.op.Opdef.out_name ();
                  walk cons.Graph.op.Opdef.out_name
              | _ -> ()
            in
            walk op.Opdef.out_name
          end;
          (* Input layouts. *)
          let node_reads = ref [] in
          List.iter
            (fun (t, _) ->
              let desired =
                match List.assoc_opt t ch.in_layouts with
                | Some l -> l
                | None -> get_storage t
              in
              let current = get_storage t in
              if Layout.equal desired current then
                node_reads := (t, current) :: !node_reads
              else if
                Graph.is_param g t
                && (not (Hashtbl.mem claimed t))
                && List.length (Graph.consumers g t) = 1
              then begin
                (* constants are repacked offline for free *)
                Hashtbl.replace storage t desired;
                Hashtbl.replace claimed t ();
                node_reads := (t, desired) :: !node_reads
              end
              else if
                Graph.is_input g t
                && (not (Hashtbl.mem claimed t))
                && List.length (Graph.consumers g t) = 1
              then begin
                (* graph inputs are packed at entry in the desired layout *)
                Hashtbl.replace storage t desired;
                Hashtbl.replace claimed t ();
                node_reads := (t, desired) :: !node_reads
              end
              else if
                mode <> Off
                && (match Graph.producer g t with
                   | Some p ->
                       is_assign p
                       && (not p.Graph.op.Opdef.complex)
                       && (not (Hashtbl.mem claimed t))
                       && List.length (Graph.consumers g t) = 1
                   | None -> false)
              then begin
                (* Fig. 5b: the simple producer emits the desired layout
                   directly, performing the conversion as part of its work *)
                Hashtbl.replace storage t desired;
                Hashtbl.replace claimed t ();
                Hashtbl.replace emitted t ();
                node_reads := (t, desired) :: !node_reads
              end
              else begin
                (* conversion operator before this node (Fig. 5a) *)
                let prev =
                  try Hashtbl.find pending_converts op.Opdef.name
                  with Not_found -> []
                in
                Hashtbl.replace pending_converts op.Opdef.name
                  (prev @ [ Convert { tensor = t; src = current; dst = desired } ]);
                node_reads := (t, desired) :: !node_reads
              end)
            op.Opdef.inputs;
          Hashtbl.replace reads op.Opdef.name (List.rev !node_reads))
    g.Graph.nodes;
  (* ---- pass 2: stage emission ----
     A fused group (producer + elementwise chain) is emitted at the
     position of its *last* member: fused consumers may read tensors
     produced between the producer and themselves (e.g. a residual branch),
     so emitting at the producer's position would break dependencies. *)
  let conversions = ref 0 and fused_ops = ref 0 in
  let stages = ref [] in
  (* emit position (node id of the last fused member) -> complex node *)
  let emit_at : (int, Graph.node) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (node : Graph.node) ->
      let op = node.Graph.op in
      if
        List.mem_assoc op.Opdef.name choices
        && not (Hashtbl.mem in_chain op.Opdef.out_name)
      then begin
        let fused =
          try Hashtbl.find fusion op.Opdef.out_name with Not_found -> []
        in
        let pos =
          List.fold_left
            (fun p (c : Graph.node) -> max p c.Graph.nid)
            node.Graph.nid fused
        in
        Hashtbl.replace emit_at pos node
      end)
    g.Graph.nodes;
  let emit_complex (node : Graph.node) =
    let op = node.Graph.op in
    (match Hashtbl.find_opt pending_converts op.Opdef.name with
    | Some cs ->
        conversions := !conversions + List.length cs;
        stages := List.rev_append cs !stages
    | None -> ());
    let fused = try Hashtbl.find fusion op.Opdef.out_name with Not_found -> [] in
    fused_ops := !fused_ops + List.length fused;
    (* layouts for the fused consumers' extra inputs *)
    let extra =
      List.concat_map
        (fun (c : Graph.node) ->
          List.filter_map
            (fun (t, _) ->
              if t = op.Opdef.out_name || Hashtbl.mem in_chain t then
                None (* produced inside the fused nest *)
              else Some (t, get_storage t))
            c.Graph.op.Opdef.inputs)
        fused
    in
    stages :=
      Complex_stage
        {
          node;
          out_layout = Hashtbl.find storage op.Opdef.out_name;
          in_layouts = Hashtbl.find reads op.Opdef.name @ extra;
          fused;
        }
      :: !stages
  in
  Array.iter
    (fun (node : Graph.node) ->
      let op = node.Graph.op in
      if
        (not (Hashtbl.mem in_chain op.Opdef.out_name))
        && (not (List.mem_assoc op.Opdef.name choices))
      then
        stages :=
          Simple_stage { node; out_layout = get_storage op.Opdef.out_name }
          :: !stages;
      match Hashtbl.find_opt emit_at node.Graph.nid with
      | Some cnode -> emit_complex cnode
      | None -> ())
    g.Graph.nodes;
  let storage_list =
    let names =
      List.map fst (g.Graph.inputs @ g.Graph.params)
      @ (Array.to_list g.Graph.nodes
        |> List.map (fun n -> n.Graph.op.Opdef.out_name))
    in
    List.map (fun n -> (n, get_storage n)) names
  in
  {
    stages = List.rev !stages;
    storage = storage_list;
    conversions = !conversions;
    fused_ops = !fused_ops;
  }

let pp_stage ppf = function
  | Convert { tensor; dst; _ } ->
      Fmt.pf ppf "convert %s -> %a" tensor Layout.pp dst
  | Complex_stage { node; fused; _ } ->
      Fmt.pf ppf "complex %s%s" node.Graph.op.Opdef.name
        (if fused = [] then ""
         else
           Fmt.str " (+%a)"
             Fmt.(list ~sep:comma string)
             (List.map (fun (n : Graph.node) -> n.Graph.op.Opdef.name) fused))
  | Simple_stage { node; _ } ->
      Fmt.pf ppf "simple %s" node.Graph.op.Opdef.name

let pp ppf p =
  Fmt.pf ppf "plan: %d stages, %d conversions, %d fused ops@."
    (List.length p.stages) p.conversions p.fused_ops;
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_stage s) p.stages
