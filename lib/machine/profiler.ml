(* Trace-driven program profiler.

   Interprets a lowered program against concrete buffers while feeding every
   memory access through the two-level cache model and counting issued
   instructions.  This is the stand-in for the paper's on-device
   measurement: one [run] = one "hardware measurement" of the auto-tuner.

   Modelling notes:
   - Vectorization: statements under a [Vectorized] loop cost 1/lanes
     instructions when their accesses are contiguous (stride 0 or 1 in the
     vectorized variable); non-contiguous accesses cost a full gather.
     All per-element cache effects are still simulated.
   - Register accumulation: a [Reduce] whose accumulator tile fits in
     registers is charged memory traffic once every K iterations, where K
     is the extent product of the enclosing loops the accumulator is
     invariant in (bounded by the register budget).  This models the
     register blocking every real tensor compiler performs; without it,
     reduction order would be invisible to the model.
   - Parallelism: counters are accumulated serially; the latency formula
     divides by the effective speedup of loops marked [Parallel].
   - Sampling: when the iteration space exceeds [max_points], outermost
     loops are truncated proportionally and the counters are rescaled
     (documented in DESIGN.md §5); [sampled] is set in the result and
     numerical outputs are then partial.

   Fast path (DESIGN.md §9): innermost loops whose statements access
   memory affinely with stride 0 or 1 in the loop variable — the
   contiguous-innermost structure ALT's own layout+loop tuning drives
   towards — are executed by a line-granular batching engine instead of
   the element-wise interpreter.  The engine walks the innermost loop in
   *spans* (maximal iteration ranges in which no access stream crosses a
   cache line and no accumulator spill fires): within a span every access
   is a guaranteed cache hit, so per stream it costs one O(1)
   [Cache.touch_run] instead of per-element tag probes, and the
   per-iteration counter increments collapse to one bulk update per
   statement run.  Values are computed in a separate tight loop over
   pre-hoisted base offsets (base + stride·x), eliminating the
   per-iteration closure chains and env reads of the scalar interpreter.
   Every batched operation reproduces the exact clock/stamp/tag
   transitions of the element-wise walk, so the produced counters are
   bit-identical to the scalar interpreter's — proven by the differential
   suite in test/test_fastsim.ml.  Gather/strided statements fall back to
   the scalar interpreter.  [ALT_FAST_SIM=0] (or [~fast:false]) disables
   the engine globally. *)

module Var = Alt_tensor.Var
module Shape = Alt_tensor.Shape
module Ixexpr = Alt_tensor.Ixexpr
module Layout = Alt_tensor.Layout
module Program = Alt_ir.Program
module Sexpr = Alt_ir.Sexpr

type counters = {
  mutable insts : float;
  mutable loads : float;
  mutable stores : float;
  mutable flops : float;
  mutable l1_accesses : float;
  mutable l1_misses : float;
  mutable l2_misses : float;
}

type result = {
  machine : Machine.t;
  insts : float;
  loads : float;
  stores : float;
  flops : float;
  l1_accesses : float;
  l1_misses : float;
  l2_misses : float;
  parallel_extent : int;
  cycles : float;
  latency_ms : float;
  sampled : bool;
  scale : float;
}

(* Fast-engine coverage counters (observability only; never affect the
   simulation).  A "leaf group" is an innermost loop whose body is made of
   Store/Reduce statements — the unit the fast engine batches. *)
type engine_stats = {
  mutable fast_groups : int; (* leaf groups compiled to the fast path *)
  mutable scalar_groups : int; (* leaf groups that fell back *)
  mutable fast_runs : int; (* innermost-loop executions, fast engine *)
  mutable scalar_runs : int; (* innermost-loop executions, fallback *)
}

let fresh_engine_stats () =
  { fast_groups = 0; scalar_groups = 0; fast_runs = 0; scalar_runs = 0 }

(* ALT_FAST_SIM=0|false|off|no disables the fast path by default; callers
   can still override per run with [~fast]. *)
let fast_env =
  lazy
    (match Sys.getenv_opt "ALT_FAST_SIM" with
    | Some ("0" | "false" | "off" | "no") -> false
    | _ -> true)

let fast_sim_enabled () = Lazy.force fast_env

let elem_bytes = 4 (* float32 addressing model *)

(* ------------------------------------------------------------------ *)
(* Execution context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  mutable env : int array; (* loop variable values, dense-indexed *)
  mutable bufs : float array array;
  mutable bases : int array; (* byte base address per slot *)
  l1 : Cache.t;
  l2 : Cache.t;
  machine : Machine.t;
  (* hoisted [Machine.t]/[Cache.t] fields, read on every access *)
  prefetch_extra : int;
  lb1 : int; (* l1 line bytes *)
  shift1 : int; (* log2 lb1 *)
  c : counters;
  es : engine_stats;
}

let mem_access ctx addr =
  ctx.c.l1_accesses <- ctx.c.l1_accesses +. 1.0;
  if not (Cache.access ctx.l1 addr) then begin
    ctx.c.l1_misses <- ctx.c.l1_misses +. 1.0;
    if not (Cache.access ctx.l2 addr) then
      ctx.c.l2_misses <- ctx.c.l2_misses +. 1.0;
    let lb = ctx.lb1 in
    for k = 1 to ctx.prefetch_extra do
      ignore (Cache.prefetch ctx.l1 (addr + (k * lb)) : bool);
      ignore (Cache.prefetch ctx.l2 (addr + (k * lb)) : bool)
    done
  end

(* ------------------------------------------------------------------ *)
(* Expression compilation                                             *)
(* ------------------------------------------------------------------ *)

type varmap = { tbl : (int, int) Hashtbl.t; mutable next : int }

let var_slot vm (v : Var.t) =
  match Hashtbl.find_opt vm.tbl (Var.id v) with
  | Some i -> i
  | None ->
      let i = vm.next in
      vm.next <- i + 1;
      Hashtbl.replace vm.tbl (Var.id v) i;
      i

let rec compile_ix vm (e : Ixexpr.t) : int array -> int =
  match e with
  | Ixexpr.Const n -> fun _ -> n
  | Ixexpr.Var v ->
      let i = var_slot vm v in
      fun env -> env.(i)
  | Ixexpr.Add (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env + fb env
  | Ixexpr.Sub (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env - fb env
  | Ixexpr.Mul (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env * fb env
  | Ixexpr.Div (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> Ixexpr.fdiv (fa env) (fb env)
  | Ixexpr.Mod (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> Ixexpr.fmod (fa env) (fb env)
  | Ixexpr.Min (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> min (fa env) (fb env)
  | Ixexpr.Max (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> max (fa env) (fb env)

let rec compile_cond vm (c : Sexpr.cond) : int array -> bool =
  match c with
  | Sexpr.Cmp (op, a, b) -> (
      let fa = compile_ix vm a and fb = compile_ix vm b in
      match op with
      | Sexpr.Clt -> fun env -> fa env < fb env
      | Sexpr.Cle -> fun env -> fa env <= fb env
      | Sexpr.Cgt -> fun env -> fa env > fb env
      | Sexpr.Cge -> fun env -> fa env >= fb env
      | Sexpr.Ceq -> fun env -> fa env = fb env)
  | Sexpr.And (a, b) ->
      let fa = compile_cond vm a and fb = compile_cond vm b in
      fun env -> fa env && fb env
  | Sexpr.Or (a, b) ->
      let fa = compile_cond vm a and fb = compile_cond vm b in
      fun env -> fa env || fb env

(* Static offset of an access: element offset closure over env. *)
let compile_offset vm (slots : Program.slot array) (a : Program.access) :
    int array -> int =
  let phys = Layout.physical_shape slots.(a.Program.slot).Program.layout in
  let strides = Shape.strides phys in
  let fs = Array.map (compile_ix vm) a.Program.idx in
  let n = Array.length fs in
  fun env ->
    let off = ref 0 in
    for i = 0 to n - 1 do
      off := !off + (fs.(i) env * strides.(i))
    done;
    !off

(* Stride of the vectorized variable through the flattened offset of [a];
   [None] when not affine.  0 and 1 are "contiguous" for vector issue. *)
let vec_stride (slots : Program.slot array) (a : Program.access)
    (v : Var.t option) : int option =
  match v with
  | None -> Some 0
  | Some v -> (
      let phys = Layout.physical_shape slots.(a.Program.slot).Program.layout in
      let strides = Shape.strides phys in
      let total = ref (Some 0) in
      Array.iteri
        (fun i e ->
          match (!total, Ixexpr.coeff_of e v) with
          | Some t, Some c -> total := Some (t + (c * strides.(i)))
          | _ -> total := None)
        a.Program.idx;
      !total)

type vec_ctx = { vvar : Var.t option; lanes : int }

let access_inst_cost slots vc a =
  match vc.vvar with
  | None -> 1.0
  | Some _ -> (
      match vec_stride slots a vc.vvar with
      | Some 0 | Some 1 -> 1.0 /. float_of_int vc.lanes
      | Some _ | None -> 1.0)

(* Compile a pexpr to an evaluator; loads count themselves. *)
let rec compile_pexpr vm slots vc ctx (e : Program.pexpr) :
    int array -> float =
  match e with
  | Program.Pconst f -> fun _ -> f
  | Program.Pload a ->
      let off = compile_offset vm slots a in
      let cost = access_inst_cost slots vc a in
      let slot = a.Program.slot in
      fun env ->
        let o = off env in
        mem_access ctx (ctx.bases.(slot) + (o * elem_bytes));
        ctx.c.loads <- ctx.c.loads +. cost;
        ctx.c.insts <- ctx.c.insts +. cost;
        ctx.bufs.(slot).(o)
  | Program.Pbin (op, a, b) ->
      let fa = compile_pexpr vm slots vc ctx a
      and fb = compile_pexpr vm slots vc ctx b in
      let g = Sexpr.apply_binop op in
      fun env -> g (fa env) (fb env)
  | Program.Pun (op, a) ->
      let fa = compile_pexpr vm slots vc ctx a in
      let g = Sexpr.apply_unop op in
      fun env -> g (fa env)
  | Program.Pselect (c, a, b) ->
      let fc = compile_cond vm c
      and fa = compile_pexpr vm slots vc ctx a
      and fb = compile_pexpr vm slots vc ctx b in
      fun env -> if fc env then fa env else fb env

let rec pexpr_arith = function
  | Program.Pload _ | Program.Pconst _ -> 0
  | Program.Pbin (_, a, b) -> 1 + pexpr_arith a + pexpr_arith b
  | Program.Pun (_, a) -> 1 + pexpr_arith a
  | Program.Pselect (_, a, b) -> 1 + max (pexpr_arith a) (pexpr_arith b)

(* ------------------------------------------------------------------ *)
(* Sampling: truncate outermost loops to fit a point budget.           *)
(* ------------------------------------------------------------------ *)

(* Annotated copy of the statement tree carrying simulated extents. *)
type astmt =
  | Afor of Program.loop * int (* simulated extent *) * astmt
  | Ablock of astmt list
  | Aleaf of Program.stmt

let rec annotate ratio (s : Program.stmt) : astmt =
  match s with
  | Program.For (l, b) ->
      if ratio >= 1.0 then Afor (l, l.Program.extent, annotate 1.0 b)
      else
        let sim =
          max 1
            (int_of_float (Float.round (ratio *. float_of_int l.Program.extent)))
        in
        let sim = min sim l.Program.extent in
        let ratio' = ratio *. float_of_int l.Program.extent /. float_of_int sim in
        Afor (l, sim, annotate (Float.min 1.0 ratio') b)
  | Program.Block lst -> Ablock (List.map (annotate ratio) lst)
  | (Program.Store _ | Program.Reduce _) as leaf -> Aleaf leaf

let rec sim_points = function
  | Afor (_, sim, b) -> sim * sim_points b
  | Ablock l -> List.fold_left (fun a s -> a + sim_points s) 0 l
  | Aleaf _ -> 1

(* ------------------------------------------------------------------ *)
(* Register promotion                                                 *)
(* ------------------------------------------------------------------ *)

(* Register-promotion factor for a reduction accumulator: walk enclosing
   loops innermost-first; loops whose variable the accumulator offset does
   not depend on multiply K (traffic divisor); loops it does depend on grow
   the register-tile footprint until the register budget is exhausted. *)
let promotion_factor machine (enclosing : Program.loop list)
    (a : Program.access) : int =
  let deps =
    Array.fold_left
      (fun s e -> Var.Set.union s (Ixexpr.vars e))
      Var.Set.empty a.Program.idx
  in
  let rec walk footprint k = function
    | [] -> k
    | (l : Program.loop) :: tl ->
        if Var.Set.mem l.Program.v deps then begin
          let footprint' = footprint * l.Program.extent in
          if footprint' > machine.Machine.reg_cap then k
          else walk footprint' k tl
        end
        else walk footprint (k * l.Program.extent) tl
  in
  max 1 (walk 1 1 enclosing)

(* ------------------------------------------------------------------ *)
(* Fast path: line-granular batched execution of innermost loops       *)
(* ------------------------------------------------------------------ *)

(* A per-iteration access stream of an innermost statement group: one
   memory access per loop iteration at byte address [base + stride·4·x],
   with a memoized cache-residency handle for O(1) re-touches.  Streams
   are stored in exact scalar access order (per iteration: each leaf in
   block order; within a leaf, loads in evaluation order, then the store
   target). *)
type stream = {
  str_slot : int;
  str_off : int array -> int; (* element offset at x = 0 *)
  str_stride : int; (* elements per iteration: 0 or 1 *)
  mutable str_addr : int; (* byte address at the current iteration *)
  mutable str_line : int; (* memoized resident line; -1 = invalid *)
  mutable str_way : int; (* cache way slot holding str_line *)
  mutable str_gen : int; (* Cache.generation at the last validation *)
}

(* Hoisted base of a pure load/store used by the value loop. *)
type pbase = {
  pb_off : int array -> int;
  pb_stride : int;
  mutable pb_base : int; (* element offset at x = 0, refreshed per run *)
}

(* One statement under the innermost loop, compiled for batched
   execution. *)
type fast_leaf = {
  fl_step : int -> unit; (* value update for iteration x *)
  fl_run : int -> unit; (* whole-loop value update (single-leaf groups) *)
  (* per-iteration counter deltas (exact dyadic floats; see DESIGN.md §9) *)
  fl_d_loads : float;
  fl_d_stores : float;
  fl_d_insts : float;
  fl_d_flops : float;
  fl_d_l1acc : int;
  (* accumulator spill state; fl_k = 0 for Store leaves *)
  fl_k : int;
  mutable fl_tick : int; (* persists across runs, like the scalar tick *)
  mutable fl_spills : int; (* spills in the current run *)
  fl_acc_slot : int;
  fl_acc_off : int array -> int;
  fl_acc_stride : int; (* any affine stride; spills are full accesses *)
  fl_acc_cost : float;
  mutable fl_acc_base : int; (* byte address at x = 0, refreshed per run *)
}

let rec pexpr_has_load = function
  | Program.Pload _ -> true
  | Program.Pconst _ -> false
  | Program.Pbin (_, a, b) -> pexpr_has_load a || pexpr_has_load b
  | Program.Pun (_, a) -> pexpr_has_load a
  | Program.Pselect (_, a, b) -> pexpr_has_load a || pexpr_has_load b

(* Loads under a Pselect execute conditionally, so the per-iteration
   access set would vary — such statements fall back to the scalar
   interpreter. *)
let rec selects_load_free = function
  | Program.Pload _ | Program.Pconst _ -> true
  | Program.Pbin (_, a, b) -> selects_load_free a && selects_load_free b
  | Program.Pun (_, a) -> selects_load_free a
  | Program.Pselect (_, a, b) ->
      (not (pexpr_has_load a)) && not (pexpr_has_load b)

(* Loads of [e] in evaluation order.  [compile_pexpr] builds
   [g (fa env) (fb env)] applications, whose arguments OCaml evaluates
   right-to-left — so the right subtree's accesses fire first.  The
   differential suite pins this order. *)
let rec loads_in_order = function
  | Program.Pload a -> [ a ]
  | Program.Pconst _ -> []
  | Program.Pbin (_, a, b) -> loads_in_order b @ loads_in_order a
  | Program.Pun (_, a) -> loads_in_order a
  | Program.Pselect (_, _, _) -> [] (* load-free by [selects_load_free] *)

(* Pure value evaluator: loads read buffers directly at hoisted affine
   offsets; no cache or counter effects.  Mirrors [compile_pexpr]'s
   evaluation structure exactly, so float results are bit-identical. *)
let rec compile_pure vm slots ctx (bases : pbase list ref)
    (strides : Program.access -> int) (e : Program.pexpr) : int -> float =
  match e with
  | Program.Pconst f -> fun _ -> f
  | Program.Pload a ->
      let pb =
        { pb_off = compile_offset vm slots a; pb_stride = strides a; pb_base = 0 }
      in
      bases := pb :: !bases;
      let buf = ctx.bufs.(a.Program.slot) in
      fun x -> buf.(pb.pb_base + (pb.pb_stride * x))
  | Program.Pbin (op, a, b) ->
      let fa = compile_pure vm slots ctx bases strides a
      and fb = compile_pure vm slots ctx bases strides b in
      let g = Sexpr.apply_binop op in
      fun x -> g (fa x) (fb x)
  | Program.Pun (op, a) ->
      let fa = compile_pure vm slots ctx bases strides a in
      let g = Sexpr.apply_unop op in
      fun x -> g (fa x)
  | Program.Pselect (c, a, b) ->
      let fc = compile_cond vm c
      and fa = compile_pure vm slots ctx bases strides a
      and fb = compile_pure vm slots ctx bases strides b in
      fun x -> if fc ctx.env then fa x else fb x

(* Bulk counter updates are products [delta * iterations].  They equal the
   scalar interpreter's one-by-one float additions exactly because every
   per-iteration cost is a dyadic rational (1, 1/lanes with power-of-two
   lanes, integer arith counts and their /lanes scalings), so both the
   partial sums and the products are computed without rounding. *)
let is_pow2 n = n > 0 && n land (n - 1) = 0

type fast_plan = {
  fp_streams : stream array;
  fp_leaves : fast_leaf array;
  fp_pbases : pbase array;
  fp_d_l1acc : int; (* per-iteration accesses, all leaves *)
}

(* Try to compile the body [b] of innermost loop [l] into a fast plan.
   Returns [None] — scalar fallback — unless every statement is a
   Store/Reduce whose per-iteration accesses are affine with stride 0 or 1
   in the loop variable (gather/strided bodies), with no loads under
   selects, and at most one Reduce placed last (spill ordering). *)
let fast_plan_of vm slots (vc : vec_ctx) ctx machine
    (enclosing : Program.loop list) (l : Program.loop) (b : astmt) :
    fast_plan option =
  let exception Fallback in
  try
    if not (is_pow2 machine.Machine.lanes) then raise Fallback;
    let rec flatten = function
      | Aleaf s -> [ s ]
      | Ablock lst -> List.concat_map flatten lst
      | Afor _ -> raise Fallback
    in
    let stmts = flatten b in
    if stmts = [] then raise Fallback;
    (* at most one Reduce, and only in last position (spills must come
       after every other access of the same iteration) *)
    let n = List.length stmts in
    List.iteri
      (fun i s ->
        match s with
        | Program.Reduce _ when i < n - 1 -> raise Fallback
        | _ -> ())
      stmts;
    let v = Some l.Program.v in
    let stride01 a =
      match vec_stride slots a v with
      | Some ((0 | 1) as s) -> s
      | Some _ | None -> raise Fallback
    in
    let stride_any a =
      match vec_stride slots a v with Some s -> s | None -> raise Fallback
    in
    let vslot = var_slot vm l.Program.v in
    let streams = ref [] and pbases = ref [] in
    (* Whole-loop value runner from a per-iteration step; the loop
       variable's env slot tracks x for Pselect conditions. *)
    let generic_run (step : int -> unit) simn =
      let env = ctx.env in
      for x = 0 to simn - 1 do
        env.(vslot) <- x;
        step x
      done
    in
    let mk_stream a =
      let s =
        {
          str_slot = a.Program.slot;
          str_off = compile_offset vm slots a;
          str_stride = stride01 a;
          str_addr = 0;
          str_line = -1;
          str_way = 0;
          str_gen = -1;
        }
      in
      streams := s :: !streams;
      s
    in
    let compile_leaf (s : Program.stmt) : fast_leaf =
      match s with
      | Program.Store (a, e) ->
          if not (selects_load_free e) then raise Fallback;
          let lds = loads_in_order e in
          List.iter (fun la -> ignore (mk_stream la : stream)) lds;
          let st = mk_stream a in
          ignore (st : stream);
          let loads_cost =
            List.fold_left
              (fun acc la -> acc +. access_inst_cost slots vc la)
              0.0 lds
          in
          let st_cost = access_inst_cost slots vc a in
          let arith = float_of_int (pexpr_arith e) in
          let arith_scaled =
            match vc.vvar with
            | None -> arith
            | Some _ -> arith /. float_of_int vc.lanes
          in
          let fe = compile_pure vm slots ctx pbases stride_any e in
          let spb =
            { pb_off = compile_offset vm slots a; pb_stride = stride01 a;
              pb_base = 0 }
          in
          pbases := spb :: !pbases;
          let buf = ctx.bufs.(a.Program.slot) in
          let step x = buf.(spb.pb_base + (spb.pb_stride * x)) <- fe x in
          let run =
            match e with
            | Program.Pconst cst ->
                (* tile-init loops: one fill instead of simn closure calls;
                   stride 0 degenerates to one (idempotent) write *)
                fun simn ->
                  if spb.pb_stride = 1 then Array.fill buf spb.pb_base simn cst
                  else buf.(spb.pb_base) <- cst
            | _ -> generic_run step
          in
          {
            fl_step = step;
            fl_run = run;
            fl_d_loads = loads_cost;
            fl_d_stores = st_cost;
            fl_d_insts = loads_cost +. st_cost +. arith_scaled;
            fl_d_flops = arith;
            fl_d_l1acc = List.length lds + 1;
            fl_k = 0;
            fl_tick = 0;
            fl_spills = 0;
            fl_acc_slot = 0;
            fl_acc_off = (fun _ -> 0);
            fl_acc_stride = 0;
            fl_acc_cost = 0.0;
            fl_acc_base = 0;
          }
      | Program.Reduce (a, r, e) ->
          if not (selects_load_free e) then raise Fallback;
          let lds = loads_in_order e in
          List.iter (fun la -> ignore (mk_stream la : stream)) lds;
          let loads_cost =
            List.fold_left
              (fun acc la -> acc +. access_inst_cost slots vc la)
              0.0 lds
          in
          let arith = float_of_int (pexpr_arith e + 1) in
          let arith_scaled =
            match vc.vvar with
            | None -> arith
            | Some _ -> arith /. float_of_int vc.lanes
          in
          let acc_cost = access_inst_cost slots vc a in
          let k = promotion_factor machine enclosing a in
          let astride = stride_any a in
          let apb =
            { pb_off = compile_offset vm slots a; pb_stride = astride;
              pb_base = 0 }
          in
          pbases := apb :: !pbases;
          let buf = ctx.bufs.(a.Program.slot) in
          let step, run =
            match e with
            | Program.Pbin
                (Sexpr.Bmul, Program.Pload la, Program.Pload lb)
              when r = Program.Rsum ->
                (* the multiply-accumulate kernel every conv/matmul/depthwise
                   reduction lowers to: run it as a tight array loop, with
                   loop-invariant (stride-0) operands hoisted when they
                   cannot alias the accumulator *)
                let pba =
                  { pb_off = compile_offset vm slots la;
                    pb_stride = stride_any la; pb_base = 0 }
                and pbb =
                  { pb_off = compile_offset vm slots lb;
                    pb_stride = stride_any lb; pb_base = 0 }
                in
                pbases := pba :: pbb :: !pbases;
                let ba = ctx.bufs.(la.Program.slot)
                and bb = ctx.bufs.(lb.Program.slot) in
                let sa = pba.pb_stride and sb = pbb.pb_stride in
                let alias_a = la.Program.slot = a.Program.slot
                and alias_b = lb.Program.slot = a.Program.slot in
                let step x =
                  let o = apb.pb_base + (astride * x) in
                  buf.(o) <-
                    buf.(o)
                    +. (ba.(pba.pb_base + (sa * x))
                       *. bb.(pbb.pb_base + (sb * x)))
                in
                let run simn =
                  let oa = pba.pb_base
                  and ob = pbb.pb_base
                  and oc = apb.pb_base in
                  if astride = 0 && (not alias_a) && not alias_b then begin
                    (* scalar accumulator: defer the store to the end *)
                    let acc = ref buf.(oc) in
                    (if sa = 0 then
                       let va = ba.(oa) in
                       for x = 0 to simn - 1 do
                         acc := !acc +. (va *. bb.(ob + (sb * x)))
                       done
                     else if sb = 0 then
                       let vb = bb.(ob) in
                       for x = 0 to simn - 1 do
                         acc := !acc +. (ba.(oa + (sa * x)) *. vb)
                       done
                     else
                       for x = 0 to simn - 1 do
                         acc :=
                           !acc +. (ba.(oa + (sa * x)) *. bb.(ob + (sb * x)))
                       done);
                    buf.(oc) <- !acc
                  end
                  else if sa = 0 && not alias_a then begin
                    let va = ba.(oa) in
                    for x = 0 to simn - 1 do
                      let o = oc + (astride * x) in
                      buf.(o) <- buf.(o) +. (va *. bb.(ob + (sb * x)))
                    done
                  end
                  else if sb = 0 && not alias_b then begin
                    let vb = bb.(ob) in
                    for x = 0 to simn - 1 do
                      let o = oc + (astride * x) in
                      buf.(o) <- buf.(o) +. (ba.(oa + (sa * x)) *. vb)
                    done
                  end
                  else
                    for x = 0 to simn - 1 do
                      let o = oc + (astride * x) in
                      buf.(o) <-
                        buf.(o)
                        +. (ba.(oa + (sa * x)) *. bb.(ob + (sb * x)))
                    done
                in
                (step, run)
            | _ ->
                let fe = compile_pure vm slots ctx pbases stride_any e in
                let combine =
                  match r with
                  | Program.Rsum -> Float.add
                  | Program.Rmax -> Float.max
                in
                let step x =
                  let v = fe x in
                  let o = apb.pb_base + (astride * x) in
                  buf.(o) <- combine buf.(o) v
                in
                (step, generic_run step)
          in
          {
            fl_step = step;
            fl_run = run;
            fl_d_loads = loads_cost;
            fl_d_stores = 0.0;
            fl_d_insts = loads_cost +. arith_scaled;
            fl_d_flops = arith;
            fl_d_l1acc = List.length lds;
            fl_k = k;
            fl_tick = 0;
            fl_spills = 0;
            fl_acc_slot = a.Program.slot;
            fl_acc_off = compile_offset vm slots a;
            fl_acc_stride = astride;
            fl_acc_cost = acc_cost;
            fl_acc_base = 0;
          }
      | Program.For _ | Program.Block _ -> raise Fallback
    in
    let leaves = Array.of_list (List.map compile_leaf stmts) in
    let streams = Array.of_list (List.rev !streams) in
    let d_l1acc = Array.fold_left (fun a fl -> a + fl.fl_d_l1acc) 0 leaves in
    Some
      {
        fp_streams = streams;
        fp_leaves = leaves;
        fp_pbases = Array.of_list !pbases;
        fp_d_l1acc = d_l1acc;
      }
  with Fallback -> None

(* Like [mem_access], but counting misses into int refs flushed in bulk. *)
let fast_mem_access ctx mis1 mis2 addr =
  if not (Cache.access ctx.l1 addr) then begin
    incr mis1;
    if not (Cache.access ctx.l2 addr) then incr mis2;
    let lb = ctx.lb1 in
    for k = 1 to ctx.prefetch_extra do
      ignore (Cache.prefetch ctx.l1 (addr + (k * lb)) : bool);
      ignore (Cache.prefetch ctx.l2 (addr + (k * lb)) : bool)
    done
  end

(* One execution of an innermost loop through the batching engine:
   value pass (tight loop over hoisted offsets), then the span walk over
   the cache model, then one bulk counter flush. *)
let make_fast_runner ctx (plan : fast_plan) vslot sim =
  let streams = plan.fp_streams
  and leaves = plan.fp_leaves
  and pbases = plan.fp_pbases in
  let n_streams = Array.length streams
  and n_leaves = Array.length leaves
  and n_pbases = Array.length pbases in
  let l1 = ctx.l1 in
  let lb = ctx.lb1 and shift = ctx.shift1 in
  let fsim = float_of_int sim in
  fun () ->
    ctx.es.fast_runs <- ctx.es.fast_runs + 1;
    let env = ctx.env in
    env.(vslot) <- 0;
    (* refresh hoisted bases at x = 0 *)
    for i = 0 to n_streams - 1 do
      let s = streams.(i) in
      s.str_addr <- ctx.bases.(s.str_slot) + (s.str_off env * elem_bytes)
    done;
    for i = 0 to n_pbases - 1 do
      let pb = pbases.(i) in
      pb.pb_base <- pb.pb_off env
    done;
    for i = 0 to n_leaves - 1 do
      let fl = leaves.(i) in
      fl.fl_spills <- 0;
      if fl.fl_k > 0 then
        fl.fl_acc_base <-
          ctx.bases.(fl.fl_acc_slot) + (fl.fl_acc_off env * elem_bytes)
    done;
    (* value pass: pure, independent of the cache model.  Single-leaf
       groups (the common case) run the leaf's compiled whole-loop
       runner; multi-leaf blocks interleave per iteration, since a later
       leaf may read what an earlier one wrote at the same iteration. *)
    if n_leaves = 1 then leaves.(0).fl_run sim
    else
      for x = 0 to sim - 1 do
        env.(vslot) <- x;
        for i = 0 to n_leaves - 1 do
          leaves.(i).fl_step x
        done
      done;
    (* cache pass: span walk *)
    let mis1 = ref 0 and mis2 = ref 0 in
    let x = ref 0 in
    while !x < sim do
      (* span length: iterations until any stride-1 stream crosses a line
         or an accumulator spill fires *)
      let m = ref (sim - !x) in
      for i = 0 to n_streams - 1 do
        let s = streams.(i) in
        if s.str_stride = 1 then begin
          let within = (lb - (s.str_addr land (lb - 1))) / elem_bytes in
          if within < !m then m := within
        end
      done;
      for i = 0 to n_leaves - 1 do
        let fl = leaves.(i) in
        if fl.fl_k > 0 then begin
          let d = fl.fl_k - fl.fl_tick in
          if d < !m then m := d
        end
      done;
      let m = !m in
      (* Iteration !x, exact scalar access order: O(1) memoized touch when
         no line was installed since the stream's last validation,
         otherwise one real (possibly missing) access. *)
      for i = 0 to n_streams - 1 do
        let s = streams.(i) in
        let addr = s.str_addr in
        let line = addr lsr shift in
        if s.str_line = line && s.str_gen = Cache.generation l1 then
          Cache.touch_run l1 s.str_way 1
        else begin
          let hit, way = Cache.access_way l1 addr in
          s.str_line <- line;
          s.str_way <- way;
          if not hit then begin
            incr mis1;
            if not (Cache.access ctx.l2 addr) then incr mis2;
            for k = 1 to ctx.prefetch_extra do
              ignore (Cache.prefetch l1 (addr + (k * lb)) : bool);
              ignore (Cache.prefetch ctx.l2 (addr + (k * lb)) : bool)
            done
          end;
          s.str_gen <- Cache.generation l1
        end
      done;
      (* Iterations !x+1 .. !x+m-1: no stream crosses a line and no spill
         fires, so if every stream's line survived the fronts above, all
         remaining accesses are guaranteed hits — collapsible to one
         O(1) touch_run per stream (within-set stamp order is preserved:
         each stream's final stamp keeps its per-iteration relative
         order).  A front install may however have evicted another
         stream's line (more active streams than ways in one set): such
         spans replay element-wise, which is scalar by construction. *)
      if m > 1 then begin
        let gen = Cache.generation l1 in
        let resident = ref true in
        for i = 0 to n_streams - 1 do
          let s = streams.(i) in
          if s.str_gen <> gen && Cache.way_line l1 s.str_way <> s.str_line
          then resident := false
        done;
        if !resident then
          for i = 0 to n_streams - 1 do
            let s = streams.(i) in
            if s.str_gen = gen then Cache.touch_run l1 s.str_way (m - 1)
            else begin
              (* resident but installs happened since validation: re-probe
                 once (also settles the prefetched bit), then bulk-touch *)
              ignore (Cache.access_run l1 s.str_addr (m - 1) : bool * int);
              s.str_gen <- gen
            end
          done
        else
          for y = 1 to m - 1 do
            for i = 0 to n_streams - 1 do
              let s = streams.(i) in
              let addr = s.str_addr + (s.str_stride * elem_bytes * y) in
              let hit, way = Cache.access_way l1 addr in
              s.str_way <- way;
              if not hit then begin
                incr mis1;
                if not (Cache.access ctx.l2 addr) then incr mis2;
                for k = 1 to ctx.prefetch_extra do
                  ignore (Cache.prefetch l1 (addr + (k * lb)) : bool);
                  ignore (Cache.prefetch ctx.l2 (addr + (k * lb)) : bool)
                done
              end;
              s.str_gen <- Cache.generation l1
            done
          done
      end;
      for i = 0 to n_streams - 1 do
        let s = streams.(i) in
        s.str_addr <- s.str_addr + (s.str_stride * elem_bytes * m)
      done;
      (* accumulator spills fire after the loads of their iteration *)
      for i = 0 to n_leaves - 1 do
        let fl = leaves.(i) in
        if fl.fl_k > 0 then begin
          fl.fl_tick <- fl.fl_tick + m;
          if fl.fl_tick >= fl.fl_k then begin
            fl.fl_tick <- 0;
            fl.fl_spills <- fl.fl_spills + 1;
            let addr =
              fl.fl_acc_base
              + (fl.fl_acc_stride * elem_bytes * (!x + m - 1))
            in
            fast_mem_access ctx mis1 mis2 addr;
            fast_mem_access ctx mis1 mis2 addr
          end
        end
      done;
      x := !x + m
    done;
    (* bulk counter flush *)
    let c = ctx.c in
    let spill_acc = ref 0 in
    for i = 0 to n_leaves - 1 do
      let fl = leaves.(i) in
      c.loads <- c.loads +. (fl.fl_d_loads *. fsim);
      c.stores <- c.stores +. (fl.fl_d_stores *. fsim);
      c.insts <- c.insts +. (fl.fl_d_insts *. fsim);
      c.flops <- c.flops +. (fl.fl_d_flops *. fsim);
      if fl.fl_spills > 0 then begin
        let ns = float_of_int fl.fl_spills in
        c.loads <- c.loads +. (fl.fl_acc_cost *. ns);
        c.stores <- c.stores +. (fl.fl_acc_cost *. ns);
        c.insts <- c.insts +. (2.0 *. fl.fl_acc_cost *. ns);
        spill_acc := !spill_acc + fl.fl_spills
      end
    done;
    c.l1_accesses <-
      c.l1_accesses
      +. float_of_int ((plan.fp_d_l1acc * sim) + (2 * !spill_acc));
    c.l1_misses <- c.l1_misses +. float_of_int !mis1;
    c.l2_misses <- c.l2_misses +. float_of_int !mis2

(* ------------------------------------------------------------------ *)
(* Statement compilation                                              *)
(* ------------------------------------------------------------------ *)

let rec all_leaves = function
  | Aleaf _ -> true
  | Ablock l -> l <> [] && List.for_all all_leaves l
  | Afor _ -> false

let compile ctx (p : Program.t) ~(sample_ratio : float) ~(fast : bool) =
  let machine = ctx.machine in
  let vm = { tbl = Hashtbl.create 64; next = 0 } in
  let slots = p.Program.slots in
  let ann = annotate sample_ratio p.Program.body in
  (* enclosing: innermost-first loop list; vc: vectorization context *)
  let rec comp (enclosing : Program.loop list) (vc : vec_ctx) = function
    | Afor (l, sim, b) -> (
        let slot = var_slot vm l.Program.v in
        let vc' =
          if l.Program.kind = Program.Vectorized then
            { vvar = Some l.Program.v; lanes = machine.Machine.lanes }
          else vc
        in
        let enclosing' = l :: enclosing in
        let plan =
          if fast && all_leaves b then
            fast_plan_of vm slots vc' ctx machine enclosing' l b
          else None
        in
        match plan with
        | Some plan ->
            ctx.es.fast_groups <- ctx.es.fast_groups + 1;
            make_fast_runner ctx plan slot sim
        | None ->
            if all_leaves b then
              ctx.es.scalar_groups <- ctx.es.scalar_groups + 1;
            let fb = comp enclosing' vc' b in
            if all_leaves b then
              fun () ->
                ctx.es.scalar_runs <- ctx.es.scalar_runs + 1;
                let env = ctx.env in
                for x = 0 to sim - 1 do
                  env.(slot) <- x;
                  fb ()
                done
            else
              fun () ->
                let env = ctx.env in
                for x = 0 to sim - 1 do
                  env.(slot) <- x;
                  fb ()
                done)
    | Ablock lst ->
        let fs = List.map (comp enclosing vc) lst in
        fun () -> List.iter (fun f -> f ()) fs
    | Aleaf (Program.Store (a, e)) ->
        let off = compile_offset vm slots a in
        let fe = compile_pexpr vm slots vc ctx e in
        let arith = float_of_int (pexpr_arith e) in
        let arith_scaled =
          match vc.vvar with
          | None -> arith
          | Some _ -> arith /. float_of_int vc.lanes
        in
        let st_cost = access_inst_cost slots vc a in
        let slot = a.Program.slot in
        fun () ->
          let v = fe ctx.env in
          let o = off ctx.env in
          mem_access ctx (ctx.bases.(slot) + (o * elem_bytes));
          ctx.bufs.(slot).(o) <- v;
          ctx.c.stores <- ctx.c.stores +. st_cost;
          ctx.c.insts <- ctx.c.insts +. st_cost +. arith_scaled;
          ctx.c.flops <- ctx.c.flops +. arith
    | Aleaf (Program.For _ | Program.Block _) -> assert false
    | Aleaf (Program.Reduce (a, r, e)) ->
        let off = compile_offset vm slots a in
        let fe = compile_pexpr vm slots vc ctx e in
        let arith = float_of_int (pexpr_arith e + 1) in
        let arith_scaled =
          match vc.vvar with
          | None -> arith
          | Some _ -> arith /. float_of_int vc.lanes
        in
        let acc_cost = access_inst_cost slots vc a in
        let k = promotion_factor machine enclosing a in
        let tick = ref 0 in
        let slot = a.Program.slot in
        let combine =
          match r with
          | Program.Rsum -> Float.add
          | Program.Rmax -> Float.max
        in
        fun () ->
          let v = fe ctx.env in
          let o = off ctx.env in
          let buf = ctx.bufs.(slot) in
          buf.(o) <- combine buf.(o) v;
          ctx.c.insts <- ctx.c.insts +. arith_scaled;
          ctx.c.flops <- ctx.c.flops +. arith;
          incr tick;
          if !tick >= k then begin
            tick := 0;
            (* accumulator spill/refill once per K iterations *)
            let addr = ctx.bases.(slot) + (o * elem_bytes) in
            mem_access ctx addr;
            mem_access ctx addr;
            ctx.c.loads <- ctx.c.loads +. acc_cost;
            ctx.c.stores <- ctx.c.stores +. acc_cost;
            ctx.c.insts <- ctx.c.insts +. (2.0 *. acc_cost)
          end
  in
  let runner = comp [] { vvar = None; lanes = machine.Machine.lanes } ann in
  (vm, runner, ann)

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let parallel_extent (p : Program.t) =
  List.fold_left
    (fun acc (l : Program.loop) ->
      if l.Program.kind = Program.Parallel then acc * l.Program.extent else acc)
    1 (Program.loops p)

let latency_of_counters machine ~(c : counters) ~(par : int) =
  let compute = c.insts *. machine.Machine.cpi in
  let mem =
    (c.l1_misses *. machine.Machine.l1_miss_penalty)
    +. (c.l2_misses *. machine.Machine.l2_miss_penalty)
  in
  let serial = Float.max compute mem +. (0.25 *. Float.min compute mem) in
  let speedup =
    if par > 1 then
      Float.max 1.0
        (float_of_int (min machine.Machine.cores par)
        *. machine.Machine.parallel_efficiency)
    else 1.0
  in
  serial /. speedup

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  go 0

(* Observability (DESIGN.md §11).  Everything here is gated on the
   metrics/trace enabled flags and sits strictly outside the compiled
   runner, so the simulation inner loops are untouched and the disabled
   path costs two flag checks per [run] (the ≤2% overhead budget of
   [make bench-profiler] is really ~0%).  Counters only — safe to bump
   from pool worker domains, where [run] executes under the tuner. *)
let m_runs = Alt_obs.Metrics.counter "profiler.runs"
let m_sampled = Alt_obs.Metrics.counter "profiler.sampled_runs"
let m_fast_runs = Alt_obs.Metrics.counter "profiler.fast_loop_runs"
let m_scalar_runs = Alt_obs.Metrics.counter "profiler.scalar_loop_runs"
let m_fast_groups = Alt_obs.Metrics.counter "profiler.fast_groups"
let m_scalar_groups = Alt_obs.Metrics.counter "profiler.scalar_groups"

let publish_run ctx ~(es0 : engine_stats) ~sampled =
  Alt_obs.Metrics.incr m_runs;
  if sampled then Alt_obs.Metrics.incr m_sampled;
  let es = ctx.es in
  Alt_obs.Metrics.add m_fast_runs (es.fast_runs - es0.fast_runs);
  Alt_obs.Metrics.add m_scalar_runs (es.scalar_runs - es0.scalar_runs);
  Alt_obs.Metrics.add m_fast_groups (es.fast_groups - es0.fast_groups);
  Alt_obs.Metrics.add m_scalar_groups (es.scalar_groups - es0.scalar_groups);
  Cache.publish_obs ~prefix:"sim.l1" ctx.l1;
  Cache.publish_obs ~prefix:"sim.l2" ctx.l2

let run ?(machine = Machine.intel_cpu) ?max_points ?fast ?engine
    (p : Program.t) ~(bufs : float array array) : result =
  let fast = match fast with Some f -> f | None -> fast_sim_enabled () in
  if Array.length bufs <> Array.length p.Program.slots then
    invalid_arg "Profiler.run: buffer count mismatch";
  Array.iteri
    (fun i b ->
      let want =
        Layout.num_physical_elements p.Program.slots.(i).Program.layout
      in
      if Array.length b <> want then
        invalid_arg
          (Fmt.str "Profiler.run: slot %d (%s) has %d elements, want %d" i
             p.Program.slots.(i).Program.sname (Array.length b) want))
    bufs;
  let total = Program.points p in
  let ratio =
    match max_points with
    | Some m when total > m -> float_of_int m /. float_of_int total
    | _ -> 1.0
  in
  let c =
    {
      insts = 0.0;
      loads = 0.0;
      stores = 0.0;
      flops = 0.0;
      l1_accesses = 0.0;
      l1_misses = 0.0;
      l2_misses = 0.0;
    }
  in
  let es = match engine with Some es -> es | None -> fresh_engine_stats () in
  let lb1 = machine.Machine.l1.Cache.line_bytes in
  let ctx =
    {
      env = [||];
      bufs;
      bases = [||];
      l1 = Cache.create machine.Machine.l1;
      l2 = Cache.create machine.Machine.l2;
      machine;
      prefetch_extra = machine.Machine.prefetch_extra;
      lb1;
      shift1 = log2_exact lb1;
      c;
      es;
    }
  in
  let vm, runner, ann = compile ctx p ~sample_ratio:ratio ~fast in
  let simulated = sim_points ann in
  let scale = float_of_int total /. float_of_int (max 1 simulated) in
  (* Distinct, line-aligned base addresses per slot. *)
  let bases = Array.make (Array.length bufs) 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun i b ->
      bases.(i) <- !cursor;
      let bytes = Array.length b * elem_bytes in
      let lb = machine.Machine.l1.Cache.line_bytes in
      cursor := !cursor + (Shape.cdiv bytes lb * lb) + lb)
    bufs;
  ctx.env <- Array.make (max 1 vm.next) 0;
  ctx.bases <- bases;
  (* engine-stats snapshot for delta publication; [es] itself stands in
     when metrics are off so the disabled path allocates nothing *)
  let es0 =
    if Alt_obs.Metrics.enabled () then
      { fast_groups = es.fast_groups; scalar_groups = es.scalar_groups;
        fast_runs = es.fast_runs; scalar_runs = es.scalar_runs }
    else es
  in
  (* the span wraps the whole interpretation; attrs are only built when a
     trace sink is installed, so the default path allocates nothing *)
  if Alt_obs.Trace.enabled () then
    Alt_obs.Trace.with_span "profiler.run"
      ~attrs:
        [
          ("machine", Alt_obs.Json.String machine.Machine.name);
          ("points", Alt_obs.Json.Int total);
          ("sampled", Alt_obs.Json.Bool (ratio < 1.0));
        ]
      runner
  else runner ();
  if Alt_obs.Metrics.enabled () then publish_run ctx ~es0 ~sampled:(ratio < 1.0);
  c.insts <- c.insts *. scale;
  c.loads <- c.loads *. scale;
  c.stores <- c.stores *. scale;
  c.flops <- c.flops *. scale;
  c.l1_accesses <- c.l1_accesses *. scale;
  c.l1_misses <- c.l1_misses *. scale;
  c.l2_misses <- c.l2_misses *. scale;
  let par = parallel_extent p in
  let cycles = latency_of_counters machine ~c ~par in
  {
    machine;
    insts = c.insts;
    loads = c.loads;
    stores = c.stores;
    flops = c.flops;
    l1_accesses = c.l1_accesses;
    l1_misses = c.l1_misses;
    l2_misses = c.l2_misses;
    parallel_extent = par;
    cycles;
    latency_ms = cycles /. (machine.Machine.freq_ghz *. 1e6);
    sampled = ratio < 1.0;
    scale;
  }

let pp_result ppf (r : result) =
  Fmt.pf ppf
    "@[<h>%s: lat=%.4fms insts=%.3e loads=%.3e stores=%.3e l1mis=%.3e \
     l2mis=%.3e flops=%.3e par=%d%s@]"
    r.machine.Machine.name r.latency_ms r.insts r.loads r.stores r.l1_misses
    r.l2_misses r.flops r.parallel_extent
    (if r.sampled then Fmt.str " (sampled x%.1f)" r.scale else "")
