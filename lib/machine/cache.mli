(** Set-associative LRU cache model with explicit prefetch insertion.
    Addresses are byte addresses; only line tags are stored.

    In addition to the element-wise {!access}, a handle-based bulk
    interface supports the profiler's line-granular fast path
    (DESIGN.md §9): every entry point leaves the clock/stamp/tag state
    exactly equivalent to the corresponding sequence of plain [access]
    calls, so batched simulation stays counter-exact. *)

type cfg = { size_bytes : int; assoc : int; line_bytes : int }

(** Live counters, observable in tests (e.g. the prefetcher behaviour
    behind the paper's Table 2).  A [prefetch_hit] is a demand hit served
    by a line that was installed by {!prefetch} and not yet
    demand-touched. *)
type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable prefetch_installs : int;
  mutable prefetch_hits : int;
}

type t

val create : cfg -> t
(** Geometry must be power-of-two sets and line size. *)

val dump : t -> int array * int array
(** Snapshot of [(tags, stamps)], both [sets*assoc]-indexed; tag [-1] is
    an invalid way.  Two caches whose tags agree and whose stamps induce
    the same per-set recency order behave identically on any future
    access sequence — the state-level oracle the fast-path differential
    tests check beyond mere counter equality. *)

val reset : t -> unit
(** Invalidate all lines and zero the {!stats}. *)

val access : t -> int -> bool
(** [access t addr] returns [true] on hit; on miss the line is installed
    with LRU eviction. *)

val access_way : t -> int -> bool * int
(** Like {!access}, but also returns the way slot now holding the line —
    a handle for {!touch_run}/{!way_line}. *)

val access_run : t -> int -> int -> bool * int
(** [access_run t addr n] performs [n] consecutive demand accesses to the
    single cache line containing [addr] with one set/tag computation
    (after the first access the line is resident, so the remaining [n-1]
    are hits).  State and counters end exactly as after [n] successive
    [access t addr] calls.  Returns the first access's (hit, way slot). *)

val touch_run : t -> int -> int -> unit
(** [touch_run t slot n] replays [n] guaranteed-hit accesses to the line
    held by way slot [slot] in O(1).  Only valid when the line is known
    resident at [slot] and already demand-touched — i.e. immediately
    after {!access_way}/{!access_run} on it, or when {!generation} is
    unchanged (or {!way_line} still matches) since then. *)

val way_line : t -> int -> int
(** The line tag currently held by a way slot ([-1] = invalid); used to
    revalidate a memoized slot after installs elsewhere. *)

val generation : t -> int
(** Bumped on every line install (demand miss or prefetch).  While it is
    unchanged no line can have been evicted, so memoized residency holds. *)

val stats : t -> stats
(** The live counter record of this cache (mutated in place). *)

val prefetch : t -> int -> bool
(** Install a line without counting a demand access; [true] if newly
    installed. *)

val line_bytes : t -> int

val publish_obs : prefix:string -> t -> unit
(** Accumulate this cache's {!stats} into the global metrics registry as
    counters [prefix ^ ".accesses"], [".hits"], [".misses"],
    [".prefetch_installs"], [".prefetch_hits"].  No-op unless metrics
    collection is enabled. *)
