(** Trace-driven program profiler: interprets a lowered program against
    concrete buffers while simulating the cache hierarchy and counting
    issued instructions.  One [run] is one simulated "on-device
    measurement" of the auto-tuner (see the implementation header for the
    modelling notes on vectorization, register accumulation, parallelism
    and sampling).

    Innermost loops whose accesses are affine with stride 0 or 1 in the
    loop variable are executed by a line-granular batching engine
    (DESIGN.md §9) producing bit-identical counters to the element-wise
    interpreter; gather/strided bodies fall back to the scalar path. *)

module Program = Alt_ir.Program

type result = {
  machine : Machine.t;
  insts : float;  (** issued instructions (vector-scaled) *)
  loads : float;  (** load instructions *)
  stores : float;
  flops : float;
  l1_accesses : float;
  l1_misses : float;
  l2_misses : float;
  parallel_extent : int;
  cycles : float;
  latency_ms : float;
  sampled : bool;  (** outer loops were truncated; outputs are partial *)
  scale : float;  (** counter extrapolation factor when sampled *)
}

(** Fast-engine coverage counters (observability only; the numbers in
    {!result} never depend on them).  A "leaf group" is an innermost loop
    whose body consists of Store/Reduce statements — the unit the fast
    engine batches.  Pass a fresh record per [run]: the profiler may be
    driven from several domains concurrently. *)
type engine_stats = {
  mutable fast_groups : int;  (** leaf groups compiled to the fast path *)
  mutable scalar_groups : int;  (** leaf groups that fell back *)
  mutable fast_runs : int;  (** innermost-loop executions, fast engine *)
  mutable scalar_runs : int;  (** innermost-loop executions, fallback *)
}

val fresh_engine_stats : unit -> engine_stats

val parallel_extent : Program.t -> int
(** Product of the extents of [Parallel] loops — the [parallel_extent]
    the profiler reports; exported so other backends (exec) can fill the
    same {!result} field consistently. *)

val fast_sim_enabled : unit -> bool
(** Default for [?fast]: [false] iff [ALT_FAST_SIM] is set to
    [0]/[false]/[off]/[no] (read once, lazily). *)

val run :
  ?machine:Machine.t -> ?max_points:int -> ?fast:bool ->
  ?engine:engine_stats -> Program.t -> bufs:float array array -> result
(** Execute the program over per-slot physical buffers (see
    {!Runtime.alloc_bufs}).  When the iteration count exceeds
    [max_points], outermost loops are truncated and counters rescaled.
    [fast] (default {!fast_sim_enabled}) selects the line-granular
    batching engine for eligible innermost loops; results are identical
    either way.  [engine] receives coverage counts of fast vs fallback
    execution. *)

val pp_result : result Fmt.t
