(* Convenience runtime: allocate physical buffers for a program from
   logical inputs, execute it under the profiler, and unpack results.

   This is the path tests and examples use to check that transformed
   programs compute exactly what the naive operator definition computes. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Buffer = Alt_tensor.Buffer
module Program = Alt_ir.Program

(* Physical buffers for every slot: inputs packed from logical data,
   non-inputs zero-initialized. *)
let alloc_bufs (p : Program.t) ~(inputs : (string * float array) list) :
    float array array =
  Array.map
    (fun (s : Program.slot) ->
      match s.Program.role with
      | Program.Input -> (
          match List.assoc_opt s.Program.sname inputs with
          | Some logical -> Layout.pack s.Program.layout logical
          | None ->
              invalid_arg
                (Fmt.str "Runtime.alloc_bufs: missing input %s" s.Program.sname))
      | Program.Output | Program.Temp ->
          Array.make (Layout.num_physical_elements s.Program.layout) 0.0)
    p.Program.slots

let output_logical (p : Program.t) (bufs : float array array) name :
    float array =
  let i = Program.slot_index p name in
  Layout.unpack p.Program.slots.(i).Program.layout bufs.(i)

(* ------------------------------------------------------------------ *)
(* Measurement backends (DESIGN.md §12)                               *)
(* ------------------------------------------------------------------ *)

type backend = Sim | Exec of Alt_exec.Exec.cfg

let backend_tag = function
  | Sim -> "sim"
  | Exec cfg ->
      (* the :dN suffix appears only off-default, so every pre-existing
         checkpoint fingerprint (written before domains existed) still
         matches a domains=1 run *)
      Fmt.str "exec:w%d:r%d:%s%s" cfg.Alt_exec.Exec.warmup
        cfg.Alt_exec.Exec.repeats
        (match cfg.Alt_exec.Exec.clock with
        | Alt_exec.Exec.Wall -> "wall"
        | Alt_exec.Exec.Virtual _ -> "virtual")
        (if cfg.Alt_exec.Exec.domains = 1 then ""
         else Fmt.str ":d%d" cfg.Alt_exec.Exec.domains)

(* Present an exec measurement in the profiler's result type, so every
   consumer of measurements (tuners, caches, checkpoints, CLI printers)
   works unchanged.  The exec device has no counter model: instruction
   and cache fields are zero, [flops] is the program's static count, and
   [cycles] is derived from the wall clock at the machine's frequency.
   The exec device always executes the full program ([sampled=false]).
   With [cfg.domains > 1] the wall clock already reflects real multicore
   execution of the parallel band, so [parallel_extent] is reported for
   symmetry only — no model speedup is applied on top. *)
let result_of_wall ~(machine : Machine.t) (p : Program.t)
    (w : Alt_exec.Exec.wall) : Profiler.result =
  {
    Profiler.machine;
    insts = 0.0;
    loads = 0.0;
    stores = 0.0;
    flops = float_of_int p.Program.flops;
    l1_accesses = 0.0;
    l1_misses = 0.0;
    l2_misses = 0.0;
    parallel_extent = Profiler.parallel_extent p;
    cycles = w.Alt_exec.Exec.median_ms *. machine.Machine.freq_ghz *. 1e6;
    latency_ms = w.Alt_exec.Exec.median_ms;
    sampled = false;
    scale = 1.0;
  }

(* Run a program end to end on logical inputs; returns the logical contents
   of every non-input slot plus the profiler result. *)
let run_logical ?(machine = Machine.intel_cpu) ?max_points ?fast
    ?(backend = Sim) (p : Program.t)
    ~(inputs : (string * float array) list) :
    (string * float array) list * Profiler.result =
  let bufs = alloc_bufs p ~inputs in
  let r =
    match backend with
    | Sim -> Profiler.run ~machine ?max_points ?fast p ~bufs
    | Exec cfg ->
        let w = Alt_exec.Exec.measure ~cfg p ~bufs in
        result_of_wall ~machine p w
  in
  let outs =
    Array.to_list p.Program.slots
    |> List.filter (fun (s : Program.slot) -> s.Program.role <> Program.Input)
    |> List.map (fun (s : Program.slot) ->
           (s.Program.sname, output_logical p bufs s.Program.sname))
  in
  (outs, r)
