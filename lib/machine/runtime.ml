(* Convenience runtime: allocate physical buffers for a program from
   logical inputs, execute it under the profiler, and unpack results.

   This is the path tests and examples use to check that transformed
   programs compute exactly what the naive operator definition computes. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Buffer = Alt_tensor.Buffer
module Program = Alt_ir.Program

(* Physical buffers for every slot: inputs packed from logical data,
   non-inputs zero-initialized. *)
let alloc_bufs (p : Program.t) ~(inputs : (string * float array) list) :
    float array array =
  Array.map
    (fun (s : Program.slot) ->
      match s.Program.role with
      | Program.Input -> (
          match List.assoc_opt s.Program.sname inputs with
          | Some logical -> Layout.pack s.Program.layout logical
          | None ->
              invalid_arg
                (Fmt.str "Runtime.alloc_bufs: missing input %s" s.Program.sname))
      | Program.Output | Program.Temp ->
          Array.make (Layout.num_physical_elements s.Program.layout) 0.0)
    p.Program.slots

let output_logical (p : Program.t) (bufs : float array array) name :
    float array =
  let i = Program.slot_index p name in
  Layout.unpack p.Program.slots.(i).Program.layout bufs.(i)

(* Run a program end to end on logical inputs; returns the logical contents
   of every non-input slot plus the profiler result. *)
let run_logical ?machine ?max_points ?fast (p : Program.t)
    ~(inputs : (string * float array) list) :
    (string * float array) list * Profiler.result =
  let bufs = alloc_bufs p ~inputs in
  let r = Profiler.run ?machine ?max_points ?fast p ~bufs in
  let outs =
    Array.to_list p.Program.slots
    |> List.filter (fun (s : Program.slot) -> s.Program.role <> Program.Input)
    |> List.map (fun (s : Program.slot) ->
           (s.Program.sname, output_logical p bufs s.Program.sname))
  in
  (outs, r)
