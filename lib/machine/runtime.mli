(** Convenience runtime: allocate physical buffers from logical inputs,
    execute a program under the profiler, and unpack results — the path
    tests and examples use to check transformed programs bit-for-bit
    against the reference interpreter. *)

module Program = Alt_ir.Program

val alloc_bufs :
  Program.t -> inputs:(string * float array) list -> float array array
(** Inputs are packed through their slot layouts; non-inputs are
    zero-initialized. *)

val output_logical : Program.t -> float array array -> string -> float array
(** Unpack a non-input slot back to logical row-major data. *)

val run_logical :
  ?machine:Machine.t -> ?max_points:int -> ?fast:bool -> Program.t ->
  inputs:(string * float array) list ->
  (string * float array) list * Profiler.result
(** Run end-to-end on logical inputs; returns the logical contents of every
    non-input slot plus the profile.  [fast] is passed to {!Profiler.run}. *)
