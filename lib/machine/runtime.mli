(** Convenience runtime: allocate physical buffers from logical inputs,
    execute a program under the profiler, and unpack results — the path
    tests and examples use to check transformed programs bit-for-bit
    against the reference interpreter. *)

module Program = Alt_ir.Program

val alloc_bufs :
  Program.t -> inputs:(string * float array) list -> float array array
(** Inputs are packed through their slot layouts; non-inputs are
    zero-initialized. *)

val output_logical : Program.t -> float array array -> string -> float array
(** Unpack a non-input slot back to logical row-major data. *)

(** Which device measures a program (DESIGN.md §12): [Sim] interprets it
    under the cache simulator (the default everywhere); [Exec] compiles
    it to macro-kernels and times real execution with the given
    warmup/repeat discipline.  Both produce element-wise identical
    outputs and a {!Profiler.result}. *)
type backend = Sim | Exec of Alt_exec.Exec.cfg

val backend_tag : backend -> string
(** Short stable tag ("sim", "exec:w2:r5:wall", "exec:w2:r5:wall:d4",
    ...) used in measurement-cache fingerprints: sim and exec results
    never mix, and neither do exec results at different domain counts.
    The [:dN] suffix is omitted at [domains = 1] so fingerprints from
    before the knob existed remain valid. *)

val result_of_wall :
  machine:Machine.t -> Program.t -> Alt_exec.Exec.wall -> Profiler.result
(** Present an exec measurement as a profiler result ([latency_ms] is
    the median wall time; counter fields are zero, [sampled] is false)
    so caches, checkpoints and tuners consume it unchanged. *)

val run_logical :
  ?machine:Machine.t -> ?max_points:int -> ?fast:bool -> ?backend:backend ->
  Program.t ->
  inputs:(string * float array) list ->
  (string * float array) list * Profiler.result
(** Run end-to-end on logical inputs; returns the logical contents of every
    non-input slot plus the profile.  [fast] and [max_points] are passed to
    {!Profiler.run} and ignored by the [Exec] backend (which always runs
    the full program). *)
