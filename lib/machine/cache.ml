(* Set-associative LRU cache model.

   The simulator substitutes for the paper's hardware testbeds: data layout
   optimizations pay off through spatial locality, prefetch friendliness and
   reuse distance, which is exactly what a cache model measures.  Addresses
   are byte addresses; the cache stores line tags only (data lives in the
   program buffers).

   Besides the element-wise [access] entry point, the model exposes a
   handle-based fast interface for the profiler's line-granular batching
   engine (DESIGN.md §9): [access_way] returns the way slot that served an
   access, [touch_run] replays [n] guaranteed-hit accesses to that slot in
   O(1), and [generation] counts line installs so callers can tell when a
   memoized residency check must be revalidated.  Every entry point keeps
   the clock/stamp state exactly equivalent to the corresponding sequence
   of plain [access] calls, which is what makes the fast path
   counter-exact. *)

type cfg = { size_bytes : int; assoc : int; line_bytes : int }

type stats = {
  mutable accesses : int; (* demand accesses *)
  mutable hits : int;
  mutable misses : int;
  mutable prefetch_installs : int; (* prefetches that brought a new line *)
  mutable prefetch_hits : int; (* demand hits served by a prefetched line *)
}

type t = {
  cfg : cfg;
  sets : int;
  line_shift : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  stamp : int array; (* LRU stamps, same indexing *)
  pref : bool array; (* line was prefetched and not yet demand-touched *)
  mutable clock : int;
  mutable gen : int; (* bumped on every line install (demand or prefetch) *)
  st : stats;
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Cache.log2_exact: not a power of two"
  else go 0

let create cfg =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines mod cfg.assoc <> 0 then invalid_arg "Cache.create: geometry";
  let sets = lines / cfg.assoc in
  ignore (log2_exact cfg.line_bytes);
  ignore (log2_exact sets);
  {
    cfg;
    sets;
    line_shift = log2_exact cfg.line_bytes;
    tags = Array.make (sets * cfg.assoc) (-1);
    stamp = Array.make (sets * cfg.assoc) 0;
    pref = Array.make (sets * cfg.assoc) false;
    clock = 0;
    gen = 0;
    st =
      {
        accesses = 0;
        hits = 0;
        misses = 0;
        prefetch_installs = 0;
        prefetch_hits = 0;
      };
  }

let dump t = (Array.copy t.tags, Array.copy t.stamp)

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  Array.fill t.pref 0 (Array.length t.pref) false;
  t.clock <- 0;
  t.gen <- 0;
  t.st.accesses <- 0;
  t.st.hits <- 0;
  t.st.misses <- 0;
  t.st.prefetch_installs <- 0;
  t.st.prefetch_hits <- 0

let line_of t addr = addr lsr t.line_shift
let stats t = t.st
let generation t = t.gen
let way_line t slot = t.tags.(slot)

let victim_of t base =
  let victim = ref 0 in
  for i = 1 to t.cfg.assoc - 1 do
    if t.stamp.(base + i) < t.stamp.(base + !victim) then victim := i
  done;
  !victim

(* Demand access returning the way slot that now holds the line. *)
let access_way t addr =
  let line = line_of t addr in
  let set = line land (t.sets - 1) in
  let base = set * t.cfg.assoc in
  t.clock <- t.clock + 1;
  t.st.accesses <- t.st.accesses + 1;
  let rec probe i =
    if i = t.cfg.assoc then None
    else if t.tags.(base + i) = line then Some i
    else probe (i + 1)
  in
  match probe 0 with
  | Some i ->
      let slot = base + i in
      t.stamp.(slot) <- t.clock;
      t.st.hits <- t.st.hits + 1;
      if t.pref.(slot) then begin
        t.pref.(slot) <- false;
        t.st.prefetch_hits <- t.st.prefetch_hits + 1
      end;
      (true, slot)
  | None ->
      (* install in LRU way *)
      let slot = base + victim_of t base in
      t.tags.(slot) <- line;
      t.stamp.(slot) <- t.clock;
      t.pref.(slot) <- false;
      t.gen <- t.gen + 1;
      t.st.misses <- t.st.misses + 1;
      (false, slot)

(* Returns true on hit.  On miss the line is installed (LRU eviction). *)
let access t addr = fst (access_way t addr)

(* [n] further guaranteed-hit accesses to the line held by [slot]: one
   clock advance per access, stamp refreshed to the last one — the exact
   state [n] successive hitting [access] calls would leave.  Only valid
   immediately after a demand access to that slot with no install in
   between (the caller checks [generation]/[way_line]). *)
let touch_run t slot n =
  if n > 0 then begin
    t.clock <- t.clock + n;
    t.stamp.(slot) <- t.clock;
    t.st.accesses <- t.st.accesses + n;
    t.st.hits <- t.st.hits + n
  end

(* [n] consecutive demand accesses to the single line containing [addr]
   with one set/tag computation: equivalent to [n] successive [access t
   addr] calls (after the first, the line is resident and every further
   access hits).  Returns the way slot and whether the first access hit. *)
let access_run t addr n =
  let ((hit, slot) as r) = access_way t addr in
  touch_run t slot (n - 1);
  ignore (hit : bool);
  r

(* Install a line without counting it as a demand access (prefetch).
   Returns true if the line was newly installed. *)
let prefetch t addr =
  let line = line_of t addr in
  let set = line land (t.sets - 1) in
  let base = set * t.cfg.assoc in
  let rec probe i =
    if i = t.cfg.assoc then None
    else if t.tags.(base + i) = line then Some i
    else probe (i + 1)
  in
  match probe 0 with
  | Some _ -> false
  | None ->
      t.clock <- t.clock + 1;
      let slot = base + victim_of t base in
      t.tags.(slot) <- line;
      t.stamp.(slot) <- t.clock;
      t.pref.(slot) <- true;
      t.gen <- t.gen + 1;
      t.st.prefetch_installs <- t.st.prefetch_installs + 1;
      true

let line_bytes t = t.cfg.line_bytes

(* Accumulate this cache's live counters into the global metrics registry
   under [prefix] (e.g. "sim.l1").  Gated: a no-op unless metrics
   collection is enabled, so per-simulation callers pay one flag check at
   the defaults.  Caches are per-simulation instances, so the registry
   counters are running totals across all simulations of the process. *)
let publish_obs ~prefix t =
  if Alt_obs.Metrics.enabled () then begin
    let c name v = Alt_obs.Metrics.add (Alt_obs.Metrics.counter (prefix ^ name)) v in
    c ".accesses" t.st.accesses;
    c ".hits" t.st.hits;
    c ".misses" t.st.misses;
    c ".prefetch_installs" t.st.prefetch_installs;
    c ".prefetch_hits" t.st.prefetch_hits
  end
