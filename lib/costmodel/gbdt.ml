(* Gradient-boosted regression trees — the XGBoost stand-in of the paper's
   cost model (Section 5.2.3).

   Squared-error boosting over depth-limited regression trees with
   shrinkage.  The tuner trains on (features, log-latency) pairs collected
   from simulator measurements and uses predictions to pick the top-k
   candidates to actually measure.

   Two fitters produce the same trees:

   - [fit] is the exact-greedy fitter (XGBoost's "exact" tree method):
     every feature column is argsorted {e once per fit}, and each node
     receives its samples as per-feature index partitions that stay sorted
     all the way down the tree (a stable partition by split membership).
     Total sort cost is O(d n log n) per fit instead of
     O(trees x nodes x d x n log n).

   - [fit_reference] is the seed implementation (a fresh per-node
     per-feature [Array.sort]), kept verbatim as the differential oracle
     for tests and benchmarks.

   Both enumerate split candidates in the same order with the same
   floating-point expressions, so on tie-free feature columns the trees
   are bit-identical (the equivalence test draws continuous random data).
   When a feature column has {e tied} values inside a node, the reference
   fitter's unstable sort may permute the tied run differently than the
   stable partition; the split {e sets} still agree exactly (splits never
   separate tied values), and only the last-ulp rounding of the tied run's
   prefix sums could differ — see DESIGN.md §10. *)

type tree =
  | Leaf of float
  | Node of { feat : int; thresh : float; left : tree; right : tree }

(* A tree flattened to arrays for allocation-free batched prediction:
   node [i] is a leaf iff [ffeat.(i) < 0], in which case [fthresh.(i)] is
   the leaf value; otherwise go to [fleft.(i)] / [fright.(i)]. *)
type flat = {
  ffeat : int array;
  fthresh : float array;
  fleft : int array;
  fright : int array;
}

type t = {
  base : float;
  trees : tree list;
  shrinkage : float;
  flats : flat array; (* trees, flattened, in boosting order *)
}

type params = {
  max_depth : int;
  min_samples : int;
  n_trees : int;
  learning_rate : float;
}

let default_params =
  { max_depth = 4; min_samples = 4; n_trees = 40; learning_rate = 0.3 }

let rec predict_tree tree (x : float array) =
  match tree with
  | Leaf v -> v
  | Node { feat; thresh; left; right } ->
      if x.(feat) <= thresh then predict_tree left x else predict_tree right x

let predict t x =
  List.fold_left
    (fun acc tree -> acc +. (t.shrinkage *. predict_tree tree x))
    t.base t.trees

(* ------------------------------------------------------------------ *)
(* Flattened trees and batched prediction                             *)
(* ------------------------------------------------------------------ *)

let rec tree_size = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> 1 + tree_size left + tree_size right

let flatten (tree : tree) : flat =
  let n = tree_size tree in
  let ffeat = Array.make n (-1) in
  let fthresh = Array.make n 0.0 in
  let fleft = Array.make n 0 in
  let fright = Array.make n 0 in
  let next = ref 0 in
  let rec go t =
    let i = !next in
    incr next;
    (match t with
    | Leaf v -> fthresh.(i) <- v
    | Node { feat; thresh; left; right } ->
        ffeat.(i) <- feat;
        fthresh.(i) <- thresh;
        fleft.(i) <- go left;
        fright.(i) <- go right);
    i
  in
  ignore (go tree : int);
  { ffeat; fthresh; fleft; fright }

(* Below this batch size the tree-major walk loses to plain per-sample
   prediction: its per-tree setup (loading the four flat arrays, restarting
   the candidate loop) is amortized over too few candidates, while the
   pointer-chasing recursive walk fits small batches entirely in L1 —
   BENCH_tuner.json's rank_speedup was 0.83 at 32 candidates before the
   cutoff.  48 is the measured crossover on the reference box; both paths
   are bit-equal, so the cutoff is a pure throughput knob. *)
let batch_cutoff = 48

(* Tree-major: each flat's arrays stay in cache across the whole batch.
   Per candidate the accumulation order and expressions mirror [predict]
   exactly (base, then [acc +. shrinkage *. tree] in boosting order), so
   the two are bit-equal on every input — the tuner's ranking pass may
   use either.  Batches under [batch_cutoff] take the per-sample path. *)
let predict_batch t (xs : float array array) : float array =
  let n = Array.length xs in
  if n < batch_cutoff then Array.map (predict t) xs
  else begin
  let out = Array.make n t.base in
  let shrinkage = t.shrinkage in
  Array.iter
    (fun f ->
      let ffeat = f.ffeat and fthresh = f.fthresh in
      let fleft = f.fleft and fright = f.fright in
      for c = 0 to n - 1 do
        let x = xs.(c) in
        let i = ref 0 in
        while ffeat.(!i) >= 0 do
          i := if x.(ffeat.(!i)) <= fthresh.(!i) then fleft.(!i) else fright.(!i)
        done;
        out.(c) <- out.(c) +. (shrinkage *. fthresh.(!i))
      done)
    t.flats;
  out
  end

let mean a idx =
  if Array.length idx = 0 then 0.0
  else
    Array.fold_left (fun s i -> s +. a.(i)) 0.0 idx
    /. float_of_int (Array.length idx)

let sse a idx =
  let m = mean a idx in
  Array.fold_left (fun s i -> s +. ((a.(i) -. m) ** 2.0)) 0.0 idx

(* ------------------------------------------------------------------ *)
(* Exact-greedy fitter (presort once per fit)                         *)
(* ------------------------------------------------------------------ *)

(* Best (feature, threshold) split of a node given [cols]: for each
   feature, the node's sample indices sorted by that feature (threaded
   down from the per-fit presort, never re-sorted).  [idx] is the node's
   samples in the reference fitter's visitation order, used only for the
   order-sensitive [parent_sse] float sum.  Returns the winning
   [(gain, feat, thresh, i)] with [i] the left-child size in the sorted
   column — the split candidates, their enumeration order and every
   floating-point expression are those of the reference fitter. *)
let best_split_sorted (xs : float array array) (ys : float array)
    ~(cols : int array array) ~(idx : int array) ~min_samples =
  let nfeat = Array.length cols in
  let best = ref None in
  let parent_sse = sse ys idx in
  for f = 0 to nfeat - 1 do
    let sorted = cols.(f) in
    let n = Array.length sorted in
    (* prefix sums for O(n) split evaluation *)
    let psum = Array.make (n + 1) 0.0 and psq = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      psum.(i + 1) <- psum.(i) +. ys.(sorted.(i));
      psq.(i + 1) <- psq.(i) +. (ys.(sorted.(i)) ** 2.0)
    done;
    for i = min_samples to n - min_samples do
      if xs.(sorted.(i - 1)).(f) < xs.(sorted.(i)).(f) then begin
        let ln = float_of_int i and rn = float_of_int (n - i) in
        let lsum = psum.(i) and rsum = psum.(n) -. psum.(i) in
        let lsq = psq.(i) and rsq = psq.(n) -. psq.(i) in
        let lsse = lsq -. (lsum *. lsum /. ln) in
        let rsse = rsq -. (rsum *. rsum /. rn) in
        let gain = parent_sse -. (lsse +. rsse) in
        let thresh = (xs.(sorted.(i - 1)).(f) +. xs.(sorted.(i)).(f)) /. 2.0 in
        match !best with
        | Some (g, _, _, _) when g >= gain -> ()
        | _ -> best := Some (gain, f, thresh, i)
      end
    done
  done;
  !best

(* Stable partition of every sorted column by left-child membership.
   Membership is decided by {e rank} in the split feature's column (the
   first [i] entries), not by comparing against the threshold — midpoint
   thresholds can round onto a boundary value, and rank is what the
   reference fitter's [Array.sub] uses.  [mark] is a per-fit scratch
   array; marks are cleared before returning. *)
let partition_cols (cols : int array array) ~(feat : int) ~(i : int)
    ~(mark : bool array) =
  let sf = cols.(feat) in
  let n = Array.length sf in
  for k = 0 to i - 1 do
    mark.(sf.(k)) <- true
  done;
  let split col =
    let l = Array.make i 0 and r = Array.make (n - i) 0 in
    let li = ref 0 and ri = ref 0 in
    Array.iter
      (fun s ->
        if mark.(s) then begin
          l.(!li) <- s;
          incr li
        end
        else begin
          r.(!ri) <- s;
          incr ri
        end)
      col;
    (l, r)
  in
  let lcols = Array.make (Array.length cols) [||] in
  let rcols = Array.make (Array.length cols) [||] in
  Array.iteri
    (fun f col ->
      let l, r = split col in
      lcols.(f) <- l;
      rcols.(f) <- r)
    cols;
  for k = 0 to i - 1 do
    mark.(sf.(k)) <- false
  done;
  (lcols, rcols)

let rec fit_tree_sorted xs ys ~idx ~cols ~depth ~params ~mark =
  if
    depth >= params.max_depth
    || Array.length idx < 2 * params.min_samples
    || sse ys idx < 1e-10
  then Leaf (mean ys idx)
  else
    match
      best_split_sorted xs ys ~cols ~idx ~min_samples:params.min_samples
    with
    | None -> Leaf (mean ys idx)
    | Some (gain, feat, thresh, i) ->
        if gain <= 1e-12 || i = 0 || i = Array.length idx then
          Leaf (mean ys idx)
        else begin
          let lcols, rcols = partition_cols cols ~feat ~i ~mark in
          (* the reference fitter hands children their samples in the
             split feature's sorted order ([Array.sub sorted 0 i]) — the
             partitioned column is exactly that array *)
          Node
            {
              feat;
              thresh;
              left =
                fit_tree_sorted xs ys ~idx:lcols.(feat) ~cols:lcols
                  ~depth:(depth + 1) ~params ~mark;
              right =
                fit_tree_sorted xs ys ~idx:rcols.(feat) ~cols:rcols
                  ~depth:(depth + 1) ~params ~mark;
            }
        end

(* Argsort every feature column once; shared by all trees of a fit (the
   sort key is x, which boosting never changes). The comparator and the
   input permutation match the reference fitter's root-node sort, so the
   presorted columns are bit-compatible with it. *)
let presort (xs : float array array) ~n ~nfeat =
  Array.init nfeat (fun f ->
      let a = Array.init n (fun i -> i) in
      Array.sort (fun i j -> Float.compare xs.(i).(f) xs.(j).(f)) a;
      a)

(* Boost [n_new] trees onto [residual] (mutated in place), reusing the
   per-fit presorted columns. *)
let boost xs residual ~cols ~mark ~params ~shrinkage ~n_new =
  let trees = ref [] in
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  for _ = 1 to n_new do
    let tree = fit_tree_sorted xs residual ~idx ~cols ~depth:0 ~params ~mark in
    trees := tree :: !trees;
    Array.iteri
      (fun i _ ->
        residual.(i) <-
          residual.(i) -. (shrinkage *. predict_tree tree xs.(i)))
      residual
  done;
  List.rev !trees

let fit ?(params = default_params) (xs : float array array) (ys : float array)
    : t =
  if Array.length xs = 0 then
    { base = 0.0; trees = []; shrinkage = params.learning_rate; flats = [||] }
  else begin
    let n = Array.length xs in
    let nfeat = Array.length xs.(0) in
    let base = mean ys (Array.init n (fun i -> i)) in
    let residual = Array.map (fun y -> y -. base) ys in
    let cols = presort xs ~n ~nfeat in
    let mark = Array.make n false in
    let trees =
      boost xs residual ~cols ~mark ~params ~shrinkage:params.learning_rate
        ~n_new:params.n_trees
    in
    {
      base;
      trees;
      shrinkage = params.learning_rate;
      flats = Array.of_list (List.map flatten trees);
    }
  end

(* Warm start: keep the existing ensemble (base, shrinkage, trees) and
   boost [extra_trees] new trees on the residuals of the {e full} grown
   dataset.  The base is deliberately not recentered — the new trees
   absorb any drift of the data mean, exactly as later boosting rounds
   would.  Off by default in the tuner because the resulting model (and
   hence the tuning trajectory) differs from a from-scratch fit. *)
let refit ?(params = default_params) ?extra_trees (t : t)
    (xs : float array array) (ys : float array) : t =
  let n_new =
    match extra_trees with
    | Some e ->
        if e < 0 then invalid_arg "Gbdt.refit: extra_trees must be >= 0";
        e
    | None -> max 1 (params.n_trees / 5)
  in
  if Array.length xs = 0 || n_new = 0 then t
  else begin
    let n = Array.length xs in
    let nfeat = Array.length xs.(0) in
    let residual = Array.init n (fun i -> ys.(i) -. predict t xs.(i)) in
    let cols = presort xs ~n ~nfeat in
    let mark = Array.make n false in
    let trees =
      boost xs residual ~cols ~mark ~params ~shrinkage:t.shrinkage ~n_new
    in
    {
      t with
      trees = t.trees @ trees;
      flats = Array.append t.flats (Array.of_list (List.map flatten trees));
    }
  end

(* ------------------------------------------------------------------ *)
(* Reference fitter (the seed implementation, kept as the oracle)     *)
(* ------------------------------------------------------------------ *)

(* Best (feature, threshold) split of [idx] minimizing children SSE. *)
let best_split (xs : float array array) (ys : float array) (idx : int array)
    ~min_samples =
  let nfeat = Array.length xs.(0) in
  let best = ref None in
  let parent_sse = sse ys idx in
  for f = 0 to nfeat - 1 do
    let sorted = Array.copy idx in
    Array.sort (fun a b -> Float.compare xs.(a).(f) xs.(b).(f)) sorted;
    let n = Array.length sorted in
    (* prefix sums for O(n) split evaluation *)
    let psum = Array.make (n + 1) 0.0 and psq = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      psum.(i + 1) <- psum.(i) +. ys.(sorted.(i));
      psq.(i + 1) <- psq.(i) +. (ys.(sorted.(i)) ** 2.0)
    done;
    for i = min_samples to n - min_samples do
      if xs.(sorted.(i - 1)).(f) < xs.(sorted.(i)).(f) then begin
        let ln = float_of_int i and rn = float_of_int (n - i) in
        let lsum = psum.(i) and rsum = psum.(n) -. psum.(i) in
        let lsq = psq.(i) and rsq = psq.(n) -. psq.(i) in
        let lsse = lsq -. (lsum *. lsum /. ln) in
        let rsse = rsq -. (rsum *. rsum /. rn) in
        let gain = parent_sse -. (lsse +. rsse) in
        let thresh = (xs.(sorted.(i - 1)).(f) +. xs.(sorted.(i)).(f)) /. 2.0 in
        match !best with
        | Some (g, _, _, _) when g >= gain -> ()
        | _ ->
            let li = Array.sub sorted 0 i and ri = Array.sub sorted i (n - i) in
            best := Some (gain, f, thresh, (li, ri))
      end
    done
  done;
  !best

let rec fit_tree xs ys idx ~depth ~params =
  if
    depth >= params.max_depth
    || Array.length idx < 2 * params.min_samples
    || sse ys idx < 1e-10
  then Leaf (mean ys idx)
  else
    match best_split xs ys idx ~min_samples:params.min_samples with
    | None | Some (_, _, _, ([||], _)) | Some (_, _, _, (_, [||])) ->
        Leaf (mean ys idx)
    | Some (gain, feat, thresh, (li, ri)) ->
        if gain <= 1e-12 then Leaf (mean ys idx)
        else
          Node
            {
              feat;
              thresh;
              left = fit_tree xs ys li ~depth:(depth + 1) ~params;
              right = fit_tree xs ys ri ~depth:(depth + 1) ~params;
            }

let fit_reference ?(params = default_params) (xs : float array array)
    (ys : float array) : t =
  if Array.length xs = 0 then
    { base = 0.0; trees = []; shrinkage = params.learning_rate; flats = [||] }
  else begin
    let n = Array.length xs in
    let base = mean ys (Array.init n (fun i -> i)) in
    let residual = Array.map (fun y -> y -. base) ys in
    let trees = ref [] in
    let idx = Array.init n (fun i -> i) in
    for _ = 1 to params.n_trees do
      let tree = fit_tree xs residual idx ~depth:0 ~params in
      trees := tree :: !trees;
      Array.iteri
        (fun i _ ->
          residual.(i) <-
            residual.(i) -. (params.learning_rate *. predict_tree tree xs.(i)))
        residual
    done;
    let trees = List.rev !trees in
    {
      base;
      trees;
      shrinkage = params.learning_rate;
      flats = Array.of_list (List.map flatten trees);
    }
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let n_trees t = List.length t.trees

let rec tree_equal a b =
  match (a, b) with
  | Leaf x, Leaf y -> Float.equal x y
  | Node a, Node b ->
      a.feat = b.feat
      && Float.equal a.thresh b.thresh
      && tree_equal a.left b.left && tree_equal a.right b.right
  | _ -> false

let equal a b =
  Float.equal a.base b.base
  && Float.equal a.shrinkage b.shrinkage
  && List.equal tree_equal a.trees b.trees

(* Coefficient of determination on a held-out set — used in tests. *)
let r2 t xs ys =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let preds = Array.map (predict t) xs in
    let ym = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
    let ss_res = ref 0.0 and ss_tot = ref 0.0 in
    Array.iteri
      (fun i y ->
        ss_res := !ss_res +. ((y -. preds.(i)) ** 2.0);
        ss_tot := !ss_tot +. ((y -. ym) ** 2.0))
      ys;
    1.0 -. (!ss_res /. Float.max 1e-12 !ss_tot)
  end
