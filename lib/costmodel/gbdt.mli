(** Gradient-boosted regression trees — the XGBoost stand-in for the
    paper's learned cost model (Section 5.2.3). *)

type t

type params = {
  max_depth : int;
  min_samples : int;
  n_trees : int;
  learning_rate : float;
}

val default_params : params

val fit : ?params:params -> float array array -> float array -> t
(** Squared-error boosting of depth-limited trees with shrinkage, using
    the exact-greedy fitter: each feature column is argsorted once per fit
    and sorted index partitions are threaded down the tree, so total sort
    cost is O(d n log n) instead of per-node per-feature.

    {b Tie caveat.}  On {e tie-free} feature columns the trees are
    bit-identical to {!fit_reference} (QCheck2-proven on continuous random
    data, and asserted by [bench-tuner]'s tie-free oracle).  When a column
    holds {e tied} values inside a node — the common case for real
    schedule features, which are discrete knobs — the reference fitter's
    unstable per-node [Array.sort] may permute a tied run differently than
    this fitter's stable partition of the per-fit presort.  Split
    {e sets} still agree exactly (a split never separates tied values, so
    candidate thresholds and memberships are order-invariant), but the
    prefix sums over a permuted tied run can round differently in the
    last ulp, which can tip a near-tied gain comparison and yield a
    different (equally optimal) tree.  [bench-tuner] therefore reports
    [fitters_identical] on real tied feature data as a diagnostic only
    and asserts equality on tie-free data; see DESIGN.md §10. *)

val fit_reference : ?params:params -> float array array -> float array -> t
(** The seed fitter (a fresh [Array.sort] per node per feature), kept as
    the differential oracle for tests and benchmarks.  Same trees as
    {!fit}, O(log n) slower per node. *)

val refit : ?params:params -> ?extra_trees:int -> t ->
  float array array -> float array -> t
(** Warm start: keep the ensemble and boost [extra_trees] new trees
    (default [max 1 (params.n_trees / 5)]) on the residuals of the full
    grown dataset.  The base and shrinkage are inherited; the base is not
    recentered.  Raises [Invalid_argument] on negative [extra_trees]. *)

val predict : t -> float array -> float

val batch_cutoff : int
(** Batch size below which {!predict_batch} falls back to per-sample
    {!predict}: the tree-major walk only pays for itself once its
    per-tree setup is amortized over enough candidates (48 is the
    measured crossover; below it the batched path ranked ~20% slower). *)

val predict_batch : t -> float array array -> float array
(** Rank a whole candidate batch over the flattened tree arrays.
    Bit-equal to mapping {!predict} (same fold order and float
    expressions), just faster and allocation-free per node for batches
    of at least {!batch_cutoff} candidates; smaller batches take the
    per-sample path directly. *)

val n_trees : t -> int
(** Number of boosted trees in the ensemble. *)

val equal : t -> t -> bool
(** Structural equality with exact float comparison — the old-vs-new
    fitter equivalence check. *)

val r2 : t -> float array array -> float array -> float
(** Coefficient of determination on a held-out set. *)
