(* The serve wire protocol: length-prefixed JSON frames.

   One frame is

     <decimal byte length of payload>\n<payload>\n

   where the payload is a compact JSON document.  The length prefix
   makes framing independent of payload content (payloads may contain
   anything but are in practice single-line JSON); the trailing newline
   is required and checked, so a truncated or corrupted stream surfaces
   as a framing error instead of silently resynchronizing.  Frames are
   capped at [max_frame] bytes: a huge or garbage length prefix is
   rejected before any allocation, which is what keeps a malicious or
   corrupt peer from wedging the daemon. *)

module Json = Alt_obs.Json

let max_frame = 1 lsl 20 (* 1 MiB *)

let frame (payload : string) : string =
  if String.length payload > max_frame then
    invalid_arg "Proto.frame: payload exceeds max_frame";
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

let frame_json (j : Json.t) : string = frame (Json.to_string j)

(* Incremental frame decoder: feed raw bytes, pull complete payloads.
   The buffer only ever holds partial frames, so memory is bounded by
   [max_frame] plus one read chunk. *)
module Frames = struct
  type t = { mutable buf : string }

  let create () = { buf = "" }
  let feed t s = if s <> "" then t.buf <- t.buf ^ s
  let pending t = String.length t.buf

  (* Ok (Some payload): one complete frame consumed.
     Ok None: need more bytes.
     Error msg: the stream is corrupt; the connection must be dropped
     (there is no way to resynchronize a length-prefixed stream). *)
  let next t : (string option, string) result =
    match String.index_opt t.buf '\n' with
    | None ->
        if String.length t.buf > 20 then Error "frame length prefix too long"
        else Ok None
    | Some nl -> (
        let prefix = String.sub t.buf 0 nl in
        match int_of_string_opt prefix with
        | None -> Error (Printf.sprintf "bad frame length prefix %S" prefix)
        | Some len when len < 0 || len > max_frame ->
            Error (Printf.sprintf "frame length %d out of bounds" len)
        | Some len ->
            let total = nl + 1 + len + 1 in
            if String.length t.buf < total then Ok None
            else if t.buf.[total - 1] <> '\n' then
              Error "frame missing trailing newline"
            else begin
              let payload = String.sub t.buf (nl + 1) len in
              t.buf <-
                String.sub t.buf total (String.length t.buf - total);
              Ok (Some payload)
            end)
end

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type request =
  | Tune of {
      id : string;
      spec : Workload.tune_spec;
      deadline_rounds : int option;
    }
  | Compile of {
      id : string;
      op : Workload.op_spec;
      machine : string;
      preset : string;
    }
  | Stats of { id : string }
  | Shutdown of { id : string }

let request_id = function
  | Tune { id; _ } | Compile { id; _ } | Stats { id } | Shutdown { id } -> id

let request_to_json (r : request) : Json.t =
  match r with
  | Tune { id; spec; deadline_rounds } ->
      Json.Obj
        ([
           ("kind", Json.String "tune");
           ("id", Json.String id);
           ("spec", Workload.tune_spec_to_json spec);
         ]
        @
        match deadline_rounds with
        | Some d -> [ ("deadline_rounds", Json.Int d) ]
        | None -> [])
  | Compile { id; op; machine; preset } ->
      Json.Obj
        [
          ("kind", Json.String "compile");
          ("id", Json.String id);
          ("op", Workload.op_spec_to_json op);
          ("machine", Json.String machine);
          ("preset", Json.String preset);
        ]
  | Stats { id } ->
      Json.Obj [ ("kind", Json.String "stats"); ("id", Json.String id) ]
  | Shutdown { id } ->
      Json.Obj [ ("kind", Json.String "shutdown"); ("id", Json.String id) ]

let request_of_json (j : Json.t) : (request, string) result =
  let id =
    match Option.bind (Json.member "id" j) Json.to_string_opt with
    | Some id -> id
    | None -> "" (* tolerated: responses just carry the empty id back *)
  in
  match Option.bind (Json.member "kind" j) Json.to_string_opt with
  | Some "tune" -> (
      let spec_json =
        match Json.member "spec" j with Some s -> s | None -> Json.Obj []
      in
      match Workload.tune_spec_of_json spec_json with
      | Error e -> Error e
      | Ok spec ->
          let deadline_rounds =
            Option.bind (Json.member "deadline_rounds" j) Json.to_int_opt
          in
          (match deadline_rounds with
          | Some d when d < 1 -> Error "deadline_rounds must be >= 1"
          | _ -> Ok (Tune { id; spec; deadline_rounds })))
  | Some "compile" -> (
      let op_json =
        match Json.member "op" j with Some o -> o | None -> Json.Obj []
      in
      match Workload.op_spec_of_json op_json with
      | Error e -> Error e
      | Ok op ->
          let machine = Workload.string_field j "machine" "intel-cpu" in
          let preset = Workload.string_field j "preset" "alt" in
          if Workload.machine_of_name machine = None then
            Error (Fmt.str "unknown machine %S" machine)
          else Ok (Compile { id; op; machine; preset }))
  | Some "stats" -> Ok (Stats { id })
  | Some "shutdown" -> Ok (Shutdown { id })
  | Some k -> Error (Fmt.str "unknown request kind %S" k)
  | None -> Error "request missing \"kind\""

let parse_request (payload : string) : (request, string) result =
  match Json.parse payload with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> request_of_json j

(* Structured error response for a request that could not be parsed or
   validated; [id] is best-effort recovered from the payload. *)
let error_response ~id ~reason : Json.t =
  Json.Obj
    [
      ("id", Json.String id);
      ("status", Json.String "error");
      ("reason", Json.String reason);
    ]
