(** The tuning-service engine: admission control with load shedding,
    deterministic cooperative scheduling of many tuning sessions,
    per-request round deadlines, and crash-safe journaling/recovery.

    IO-free — the daemon (or a test) drives it through {!submit} and
    {!step} and ships the returned [(request id, response JSON)] pairs
    over whatever transport it owns.  Because sessions are effect
    fibers interleaved round-robin on one domain, the whole schedule is
    a pure function of the submission order: each session's result is
    byte-identical to a solo [tune-op] run of the same spec. *)

module Tuner = Alt_tuner.Tuner
module Pool = Alt_parallel.Pool
module Json = Alt_obs.Json

type config = {
  pool : Pool.t;  (** measurement pool shared by all sessions *)
  max_active : int;  (** sessions interleaved concurrently, >= 1 *)
  max_queue : int;  (** admitted-but-waiting FIFO bound, >= 0 *)
  store : Store.t;  (** cross-session result/quarantine store *)
  journal_dir : string option;
      (** where [<skey>.req.json] / [<skey>.ckpt] live; [None] disables
          durability (no recovery, no resume) *)
  default_deadline_rounds : int option;
      (** deadline applied to requests that carry none *)
}

val default_config :
  ?jobs:int ->
  ?max_active:int ->
  ?max_queue:int ->
  ?shards:int ->
  ?journal_dir:string ->
  ?default_deadline_rounds:int ->
  unit ->
  config
(** Fresh pool + store with the given knobs; defaults: [jobs:1],
    [max_active:4], [max_queue:8], [shards:16], no journal, no default
    deadline. *)

type t

val create : config -> t
(** Creates the journal directory if missing.  Raises
    [Invalid_argument] on a non-positive [max_active] or negative
    [max_queue]. *)

val submit : t -> Proto.request -> (string * Json.t) list
(** Feed one request in.  [Compile]/[Stats]/[Shutdown] are answered
    synchronously.  A [Tune] is admitted (empty response — the real
    one arrives from a later {!step}), attached to an already-running
    session with the same spec, or shed with
    [{"status":"rejected","reason":"overloaded","retry_after_ms":...}]
    when both the active set and the wait queue are full.  Shedding
    never perturbs admitted sessions. *)

val step : t -> (string * Json.t) list
(** Advance the scheduler one step: run the next active session to its
    next yield (one measurement round, checkpointed before the yield).
    Returns the responses that became due — completion
    ([{"status":"ok", "result":...}] for every attached id), deadline
    expiry ([{"status":"deadline","resumable":true}]; the checkpoint
    survives so resubmission resumes), or failure
    ([{"status":"error"}]).  No-op returning [[]] when idle. *)

val has_work : t -> bool
(** [true] while any session is runnable; drive {!step} until false to
    drain. *)

val shutdown : t -> (string * Json.t) list
(** Graceful drain-less shutdown: abort every in-flight fiber at its
    last durable yield point, answer every attached id with
    [{"status":"interrupted","resumable":true}], keep all journals
    (a restarted engine {!recover}s them), and close the pool. *)

val recover : t -> int
(** Re-admit every journaled session from [journal_dir], bypassing the
    admission limit (recovered work is never shed); their fibers resume
    from their checkpoints, replaying interrupted trajectories
    byte-identically.  Torn request journals are parked as [.bad].
    Returns the number of sessions recovered. *)

val json_of_tuner_result : Tuner.result -> Json.t
(** The canonical JSON rendering of a tuning trajectory used in [ok]
    responses — exposed so tests can compare a daemon response against
    a solo run by exact JSON equality. *)

(** {1 Counters} *)

val active_count : t -> int
val waiting_count : t -> int
val completed_count : t -> int
val shed_count : t -> int

val rounds_stepped : t -> int
(** Total measurement rounds stepped across all sessions — the daemon's
    crash-injection hook counts these. *)
