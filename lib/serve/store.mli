(** The daemon's cross-session measurement store: sharded maps from
    (measurement context, canonical program digest) to simulator results
    and quarantine decisions, behind per-shard mutexes.  Sessions plug
    in through {!view}, which namespaces every entry by the session's
    {!Workload.context_key} — only sessions with an identical
    measurement configuration can observe each other's entries, which
    is what makes sharing trajectory-neutral.  A candidate quarantined
    by one session is answered from quarantine by every later session
    in the same context instead of being re-measured. *)

module Profiler = Alt_machine.Profiler
module Measure = Alt_tuner.Measure

type t

type stats = {
  mutable result_hits : int;  (** lookups served from another session *)
  mutable result_inserts : int;  (** distinct results published *)
  mutable quarantine_hits : int;
  mutable quarantine_inserts : int;
}

val create : ?shards:int -> unit -> t
(** Default 16 shards; raises [Invalid_argument] below 1. *)

val shard_count : t -> int

val view : t -> ctx:string -> Measure.shared_store
(** The store as seen by one measurement context — pass the session's
    {!Workload.context_key}. *)

val find_result : t -> ctx:string -> string -> Profiler.result option
val publish_result : t -> ctx:string -> string -> Profiler.result -> unit
(** First writer wins: an existing entry is never overwritten, so every
    session observes one stable value per key. *)

val find_quarantine : t -> ctx:string -> string -> string option
val publish_quarantine : t -> ctx:string -> string -> string -> unit

val sizes : t -> int * int
(** [(results, quarantine)] entry totals across all shards. *)

val stats : t -> stats
(** A consistent copy of the hit/insert counters. *)
