(** Transport layer for the tuning service: frame decoding, event loop,
    and response routing.  All policy (admission, scheduling, deadlines,
    journaling) lives in {!Serve}. *)

module Json = Alt_obs.Json

val crash_exit_code : int
(** Exit code (42) used by the [kill_after_rounds] crash-injection
    hook, so harnesses can tell a simulated crash from a failure. *)

val run_pipe :
  ?kill_after_rounds:int ->
  ?input:Unix.file_descr ->
  ?output:Unix.file_descr ->
  Serve.t ->
  unit
(** Serve one client over an fd pair (default stdin/stdout).  Available
    input is drained ahead of scheduling, so a run driven from a
    pre-written request file is fully deterministic.  EOF starts a
    graceful drain: admitted sessions finish, then the loop returns
    (after closing the engine).  A [Shutdown] request aborts in-flight
    sessions at their last checkpoint and returns immediately.
    [kill_after_rounds] exits the process with {!crash_exit_code} after
    that many engine rounds — no drain, journals kept. *)

val run_socket : ?kill_after_rounds:int -> path:string -> Serve.t -> unit
(** Serve any number of concurrent clients over a Unix-domain socket at
    [path] (an existing socket file is replaced).  Tune responses are
    routed to the connection that submitted the id; a disconnected
    client's sessions still run and journal, but their responses are
    dropped.  Returns after a [Shutdown] request. *)

val request : path:string -> Proto.request -> (Json.t, string) result
(** One-shot client: connect to the daemon at [path], send [req], and
    block until its reply arrives. *)
