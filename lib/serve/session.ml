(* Cooperative session fibers over OCaml 5 effects.

   A tuning run becomes a daemon session by running it as a fiber that
   performs [Yield] after every measurement round (wired through the
   tuner's [on_round] hook, which fires *after* the round's checkpoint
   is written — so every suspension point is durable).  The scheduler
   regains control at each yield and round-robins many sessions over one
   domain: concurrency without threads, and fully deterministic — the
   interleaving is a pure function of the admission order and each
   session's round count.

   The suspended continuation is exposed as a pair of closures:
   [resume] continues the fiber to its next step, [abort] injects an
   exception at the suspension point (deadline expiry, graceful
   shutdown).  Aborting runs the fiber's cleanup ([Fun.protect]
   finalizers) and surfaces the exception as a [Raised] step, so the
   scheduler handles "killed" and "crashed" sessions through one path.
   Continuations are one-shot: exactly one of [resume]/[abort] may be
   called, once. *)

module Tuner = Alt_tuner.Tuner

type _ Effect.t += Yield : int -> unit Effect.t

exception Interrupted
exception Deadline_exceeded

type step =
  | Finished of Tuner.result
  | Raised of exn
  | Yielded of int * paused

and paused = { resume : unit -> step; abort : exn -> step }

let handler : (Tuner.result, step) Effect.Deep.handler =
  {
    Effect.Deep.retc = (fun r -> Finished r);
    exnc = (fun e -> Raised e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield rounds ->
            Some
              (fun (k : (a, step) Effect.Deep.continuation) ->
                Yielded
                  ( rounds,
                    {
                      resume = (fun () -> Effect.Deep.continue k ());
                      abort = (fun e -> Effect.Deep.discontinue k e);
                    } ))
        | _ -> None);
  }

let start (thunk : unit -> Tuner.result) : step =
  Effect.Deep.match_with thunk () handler

let yield rounds = Effect.perform (Yield rounds)
