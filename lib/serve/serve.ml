(* The tuning-service engine: admission control, cooperative scheduling,
   deadlines, crash-safe journaling and recovery.  IO-free — the daemon
   (or a test) drives it through [submit]/[step] and writes the returned
   (request id, response JSON) pairs to whatever transport it owns.

   Scheduling model.  Each admitted tune request is a session keyed by
   its spec's canonical digest (duplicate submissions attach to the
   running session).  Sessions run as effect fibers (Session) that yield
   after every measurement round; [step] pops the next session off a
   round-robin queue, advances it by one round, and either re-queues it,
   completes it, or aborts it on deadline.  At most [max_active]
   sessions are interleaved; further admissions wait in a bounded FIFO,
   and beyond that requests are shed with a structured rejection
   carrying a retry hint — overload degrades the new arrivals, never the
   admitted sessions.  The whole schedule is a pure function of the
   submission order, so N concurrent sessions produce byte-identical
   per-session results to N solo runs.

   Durability.  With a journal directory, admission atomically writes
   [<skey>.req.json] (the request plus every attached id) and the tuner
   journals [<skey>.ckpt] after every round — each written *before* the
   round's yield, so any crash point loses at most in-flight simulation
   work.  [recover] rescans the request journals on restart, re-admits
   the interrupted sessions (bypassing the admission limit — recovered
   work is never shed) and their fibers resume from the checkpoint,
   replaying the interrupted trajectory byte-identically.  Completion
   deletes both files; a deadline abort deletes the request journal but
   keeps the checkpoint, so a resubmission resumes instead of starting
   over; shutdown and crashes keep both. *)

module Layout = Alt_tensor.Layout
module Schedule = Alt_ir.Schedule
module Program = Alt_ir.Program
module Shape = Alt_tensor.Shape
module Opdef = Alt_ir.Opdef
module Propagate = Alt_graph.Propagate
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Templates = Alt_tuner.Templates
module Pool = Alt_parallel.Pool
module Json = Alt_obs.Json

let src = Logs.Src.create "alt.serve" ~doc:"ALT tuning service"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  pool : Pool.t;
  max_active : int; (* sessions interleaved concurrently *)
  max_queue : int; (* admitted-but-waiting FIFO bound *)
  store : Store.t;
  journal_dir : string option;
  default_deadline_rounds : int option;
}

let default_config ?(jobs = 1) ?(max_active = 4) ?(max_queue = 8)
    ?(shards = 16) ?journal_dir ?default_deadline_rounds () =
  {
    pool = Pool.create ~jobs ();
    max_active;
    max_queue;
    store = Store.create ~shards ();
    journal_dir;
    default_deadline_rounds;
  }

type sstate = Unstarted | Paused of Session.paused

type session = {
  skey : string;
  spec : Workload.tune_spec;
  mutable ids : string list; (* request ids awaiting this session *)
  deadline : int option; (* rounds granted in this daemon run *)
  mutable stepped : int; (* rounds taken in this daemon run *)
  mutable state : sstate;
}

type t = {
  cfg : config;
  sessions : (string, session) Hashtbl.t; (* skey -> live session *)
  active : session Queue.t; (* round-robin ring *)
  waiting : session Queue.t; (* admitted, not yet interleaved *)
  mutable completed : int;
  mutable shed : int;
  mutable errored : int;
  mutable rounds_stepped : int; (* total rounds across all sessions *)
}

let create cfg =
  if cfg.max_active < 1 then invalid_arg "Serve: max_active must be >= 1";
  if cfg.max_queue < 0 then invalid_arg "Serve: max_queue must be >= 0";
  (match cfg.journal_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  {
    cfg;
    sessions = Hashtbl.create 16;
    active = Queue.create ();
    waiting = Queue.create ();
    completed = 0;
    shed = 0;
    errored = 0;
    rounds_stepped = 0;
  }

let active_count t = Queue.length t.active
let waiting_count t = Queue.length t.waiting
let completed_count t = t.completed
let shed_count t = t.shed
let rounds_stepped t = t.rounds_stepped
let has_work t = not (Queue.is_empty t.active)

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let req_path t skey =
  Option.map (fun d -> Filename.concat d (skey ^ ".req.json")) t.cfg.journal_dir

let ckpt_path t skey =
  Option.map (fun d -> Filename.concat d (skey ^ ".ckpt")) t.cfg.journal_dir

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let journal_request t (s : session) =
  match req_path t s.skey with
  | None -> ()
  | Some path ->
      let j =
        Json.Obj
          [
            ("spec", Workload.tune_spec_to_json s.spec);
            ("ids", Json.List (List.map (fun i -> Json.String i) s.ids));
            ( "deadline_rounds",
              match s.deadline with Some d -> Json.Int d | None -> Json.Null
            );
          ]
      in
      write_atomic path (Json.to_string j)

let remove_file = function
  | None -> ()
  | Some path -> ( try Sys.remove path with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)
(* ------------------------------------------------------------------ *)

let json_of_tuner_result (r : Tuner.result) : Json.t =
  Json.Obj
    [
      ("best_latency_ms", Json.Float r.Tuner.best_latency);
      ("spent", Json.Int r.Tuner.spent);
      ( "history",
        Json.List
          (List.map
             (fun (s, l) -> Json.List [ Json.Int s; Json.Float l ])
             r.Tuner.history) );
      ( "out_layout",
        Json.String
          (Fmt.str "%a" Layout.pp r.Tuner.best_choice.Propagate.out_layout) );
      ( "in_layouts",
        Json.Obj
          (List.map
             (fun (n, l) -> (n, Json.String (Fmt.str "%a" Layout.pp l)))
             r.Tuner.best_choice.Propagate.in_layouts) );
      ("schedule", Json.String (Fmt.str "%a" Schedule.pp r.Tuner.best_schedule));
    ]

let respond_each (s : session) (mk : string -> Json.t) :
    (string * Json.t) list =
  List.map (fun id -> (id, mk id)) s.ids

let ok_response skey result id =
  Json.Obj
    [
      ("id", Json.String id);
      ("status", Json.String "ok");
      ("skey", Json.String skey);
      ("result", result);
    ]

let status_response ?(extra = []) skey status id =
  Json.Obj
    ([
       ("id", Json.String id);
       ("status", Json.String status);
       ("skey", Json.String skey);
     ]
    @ extra)

(* ------------------------------------------------------------------ *)
(* Session lifecycle                                                  *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The tuning thunk a session fiber runs.  Resume is attempted first; a
   corrupt or version/fingerprint-mismatched checkpoint is parked as
   [.bad] and the session restarts fresh — robustness over a stale
   journal must never wedge recovery. *)
let make_thunk t (s : session) () : Tuner.result =
  let shared = Store.view t.cfg.store ~ctx:(Workload.context_key s.spec) in
  let build ?resume () =
    let task = Workload.task_of_spec ~shared s.spec in
    Tuner.tune_op ~seed:s.spec.Workload.seed ~pool:t.cfg.pool
      ?checkpoint:(ckpt_path t s.skey) ?resume
      ~on_round:(fun r -> Session.yield r)
      ~system:(Workload.system_of_spec s.spec)
      ~budget:s.spec.Workload.budget task
  in
  match ckpt_path t s.skey with
  | None -> build ()
  | Some path -> (
      try build ~resume:path ()
      with (Failure msg | Invalid_argument msg)
           when contains_sub msg "checkpoint" ->
        Log.warn (fun m ->
            m "session %s: unusable checkpoint (%s); restarting fresh" s.skey
              msg);
        (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ());
        (* the file is gone now, so resuming from the same path is a
           fresh start that re-creates the journal *)
        build ~resume:path ())

let promote t =
  while Queue.length t.active < t.cfg.max_active
        && not (Queue.is_empty t.waiting) do
    Queue.push (Queue.pop t.waiting) t.active
  done

let finish_session t (s : session) =
  Hashtbl.remove t.sessions s.skey;
  promote t

(* Admission of a tune request.  Returns the immediate responses (empty
   when admitted/attached — the real response comes when the session
   completes). *)
let admit t ~id ~(spec : Workload.tune_spec) ~deadline_rounds :
    (string * Json.t) list =
  let skey = Workload.session_key spec in
  match Hashtbl.find_opt t.sessions skey with
  | Some s ->
      (* duplicate submission: attach, don't re-run *)
      s.ids <- s.ids @ [ id ];
      journal_request t s;
      []
  | None ->
      let deadline =
        match deadline_rounds with
        | Some _ as d -> d
        | None -> t.cfg.default_deadline_rounds
      in
      let s =
        { skey; spec; ids = [ id ]; deadline; stepped = 0; state = Unstarted }
      in
      if Queue.length t.active < t.cfg.max_active then begin
        Hashtbl.replace t.sessions skey s;
        Queue.push s t.active;
        journal_request t s;
        []
      end
      else if Queue.length t.waiting < t.cfg.max_queue then begin
        Hashtbl.replace t.sessions skey s;
        Queue.push s t.waiting;
        journal_request t s;
        []
      end
      else begin
        (* load shedding: never perturbs admitted sessions; the retry
           hint scales with the backlog so clients back off together *)
        t.shed <- t.shed + 1;
        let backlog = Queue.length t.active + Queue.length t.waiting in
        [
          ( id,
            status_response skey "rejected"
              ~extra:
                [
                  ("reason", Json.String "overloaded");
                  ("retry_after_ms", Json.Int (250 * backlog));
                ]
              id );
        ]
      end

(* ------------------------------------------------------------------ *)
(* Synchronous requests                                               *)
(* ------------------------------------------------------------------ *)

let compile_response ~id ~(op : Workload.op_spec) ~machine ~preset : Json.t =
  match Workload.machine_of_name machine with
  | None -> Proto.error_response ~id ~reason:(Fmt.str "unknown machine %S" machine)
  | Some machine -> (
      let op = Workload.op_of_spec op in
      let choice =
        match preset with
        | "default" -> Some (Templates.trivial_choice op)
        | "channels-last" -> Some (Templates.channels_last_choice op)
        | "blocked" ->
            Some
              (Templates.blocked_choice op
                 ~block:(2 * machine.Alt_machine.Machine.lanes))
        | "alt" ->
            Some
              (match Templates.for_op op with
              | Some tpl ->
                  tpl.Templates.decode
                    (Array.make (Array.length tpl.Templates.knobs) 0.4)
              | None -> Templates.trivial_choice op)
        | _ -> None
      in
      match choice with
      | None -> Proto.error_response ~id ~reason:(Fmt.str "unknown preset %S" preset)
      | Some choice -> (
          let task = Measure.make_task ~machine op in
          let rank =
            Shape.rank (Layout.physical_shape choice.Propagate.out_layout)
          in
          let sched =
            Schedule.vectorize
              (Schedule.default ~rank ~nred:(List.length op.Opdef.reduce))
          in
          match Measure.program_of task choice sched with
          | None ->
              Proto.error_response ~id
                ~reason:"this layout/schedule combination does not lower"
          | Some prog ->
              Json.Obj
                [
                  ("id", Json.String id);
                  ("status", Json.String "ok");
                  ("program", Json.String (Fmt.str "%a" Program.pp prog));
                ]))

let stats_response t ~id : Json.t =
  let st = Store.stats t.cfg.store in
  let results, quarantine = Store.sizes t.cfg.store in
  Json.Obj
    [
      ("id", Json.String id);
      ("status", Json.String "ok");
      ("active", Json.Int (Queue.length t.active));
      ("waiting", Json.Int (Queue.length t.waiting));
      ("completed", Json.Int t.completed);
      ("shed", Json.Int t.shed);
      ("errored", Json.Int t.errored);
      ("rounds", Json.Int t.rounds_stepped);
      ( "store",
        Json.Obj
          [
            ("results", Json.Int results);
            ("quarantine", Json.Int quarantine);
            ("result_hits", Json.Int st.Store.result_hits);
            ("result_inserts", Json.Int st.Store.result_inserts);
            ("quarantine_hits", Json.Int st.Store.quarantine_hits);
            ("quarantine_inserts", Json.Int st.Store.quarantine_inserts);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* The driver interface                                               *)
(* ------------------------------------------------------------------ *)

let submit t (r : Proto.request) : (string * Json.t) list =
  match r with
  | Proto.Tune { id; spec; deadline_rounds } ->
      admit t ~id ~spec ~deadline_rounds
  | Proto.Compile { id; op; machine; preset } ->
      [ (id, compile_response ~id ~op ~machine ~preset) ]
  | Proto.Stats { id } -> [ (id, stats_response t ~id) ]
  | Proto.Shutdown { id } ->
      (* handled by the daemon (it owns the decision to stop); answered
         here so engine-only tests see a structured reply *)
      [
        ( id,
          Json.Obj
            [
              ("id", Json.String id);
              ("status", Json.String "ok");
              ("shutting_down", Json.Bool true);
            ] );
      ]

(* Advance the scheduler by one step: pop the next active session,
   run it to its next yield, and re-queue / complete / abort it. *)
let step t : (string * Json.t) list =
  if Queue.is_empty t.active then []
  else begin
    let s = Queue.pop t.active in
    let stepped =
      match s.state with
      | Unstarted -> Session.start (make_thunk t s)
      | Paused p -> p.resume ()
    in
    match stepped with
    | Session.Yielded (_, p) -> (
        t.rounds_stepped <- t.rounds_stepped + 1;
        s.stepped <- s.stepped + 1;
        match s.deadline with
        | Some d when s.stepped >= d -> (
            (* deadline: abort at the (already checkpointed) yield
               point; the checkpoint survives, so resubmission resumes
               instead of starting over *)
            let aborted = p.abort Session.Deadline_exceeded in
            finish_session t s;
            remove_file (req_path t s.skey);
            match aborted with
            | Session.Raised Session.Deadline_exceeded ->
                respond_each s
                  (status_response s.skey "deadline"
                     ~extra:
                       [
                         ("rounds", Json.Int s.stepped);
                         ("resumable", Json.Bool true);
                       ])
            | Session.Raised e ->
                t.errored <- t.errored + 1;
                respond_each s (fun id ->
                    Proto.error_response ~id ~reason:(Printexc.to_string e))
            | Session.Finished r ->
                (* the abort landed after the tuner's last round: the
                   run is complete, report it as such *)
                t.completed <- t.completed + 1;
                remove_file (ckpt_path t s.skey);
                respond_each s (ok_response s.skey (json_of_tuner_result r))
            | Session.Yielded _ ->
                t.errored <- t.errored + 1;
                respond_each s (fun id ->
                    Proto.error_response ~id
                      ~reason:"session yielded through an abort"))
        | _ ->
            s.state <- Paused p;
            Queue.push s t.active;
            [])
    | Session.Finished r ->
        t.completed <- t.completed + 1;
        finish_session t s;
        remove_file (req_path t s.skey);
        remove_file (ckpt_path t s.skey);
        respond_each s (ok_response s.skey (json_of_tuner_result r))
    | Session.Raised e ->
        (* a genuine failure: answer every attached id with the error
           and drop the request journal so recovery does not crash-loop;
           the checkpoint is kept for post-mortem resume *)
        t.errored <- t.errored + 1;
        finish_session t s;
        remove_file (req_path t s.skey);
        Log.err (fun m ->
            m "session %s failed: %s" s.skey (Printexc.to_string e));
        respond_each s (fun id ->
            Proto.error_response ~id ~reason:(Printexc.to_string e))
  end

(* Graceful shutdown: abort every in-flight fiber at its last durable
   yield point and answer every attached id as interrupted-but-
   resumable.  Journals are kept — a restarted daemon recovers every
   interrupted session.  The pool is closed afterwards, so no stray
   batch can outlive the engine. *)
let shutdown t : (string * Json.t) list =
  let out = ref [] in
  let close (s : session) =
    (match s.state with
    | Paused p -> (
        match p.abort Session.Interrupted with
        | Session.Raised Session.Interrupted -> ()
        | Session.Raised e ->
            Log.warn (fun m ->
                m "session %s raised during shutdown: %s" s.skey
                  (Printexc.to_string e))
        | Session.Finished _ | Session.Yielded _ -> ())
    | Unstarted -> ());
    out :=
      !out
      @ respond_each s
          (status_response s.skey "interrupted"
             ~extra:[ ("resumable", Json.Bool true) ])
  in
  Queue.iter close t.active;
  Queue.iter close t.waiting;
  Queue.clear t.active;
  Queue.clear t.waiting;
  Hashtbl.reset t.sessions;
  Pool.shutdown t.cfg.pool;
  !out

(* Recovery: re-admit every journaled session.  Recovered sessions
   bypass the admission limit (they were admitted once already — the
   crash must not shed them); beyond [max_active] they queue in
   arrival order, unbounded. *)
let recover t : int =
  match t.cfg.journal_dir with
  | None -> 0
  | Some dir when not (Sys.file_exists dir) -> 0
  | Some dir ->
      let reqs =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".req.json")
        |> List.sort String.compare
      in
      let recovered = ref 0 in
      List.iter
        (fun file ->
          let path = Filename.concat dir file in
          let content =
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let parsed =
            match Json.parse content with
            | Error msg -> Error msg
            | Ok j -> (
                let spec_json =
                  match Json.member "spec" j with
                  | Some s -> s
                  | None -> Json.Obj []
                in
                match Workload.tune_spec_of_json spec_json with
                | Error msg -> Error msg
                | Ok spec ->
                    let ids =
                      match
                        Option.bind (Json.member "ids" j) Json.to_list_opt
                      with
                      | Some l -> List.filter_map Json.to_string_opt l
                      | None -> []
                    in
                    let deadline =
                      Option.bind
                        (Json.member "deadline_rounds" j)
                        Json.to_int_opt
                    in
                    Ok (spec, ids, deadline))
          in
          match parsed with
          | Error msg ->
              (* a torn request journal (the atomic write makes this
                 near-impossible, but robustness first): park it and
                 keep recovering the rest *)
              Log.warn (fun m ->
                  m "unreadable request journal %s (%s); parked as .bad" path
                    msg);
              (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ())
          | Ok (spec, ids, deadline) ->
              let skey = Workload.session_key spec in
              if not (Hashtbl.mem t.sessions skey) then begin
                let ids = if ids = [] then [ "recovered" ] else ids in
                let s =
                  {
                    skey;
                    spec;
                    ids;
                    deadline;
                    stepped = 0;
                    state = Unstarted;
                  }
                in
                Hashtbl.replace t.sessions skey s;
                if Queue.length t.active < t.cfg.max_active then
                  Queue.push s t.active
                else Queue.push s t.waiting;
                incr recovered
              end)
        reqs;
      if !recovered > 0 then
        Log.info (fun m -> m "recovered %d interrupted session(s)" !recovered);
      !recovered
