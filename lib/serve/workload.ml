(* Workload specifications: the wire-level description of what a client
   wants tuned, plus the two digests the daemon keys everything by.

   A [tune_spec] captures every knob that shapes a tuning trajectory —
   the operator, the machine, the tuner system/seed/budget, the input
   data seed and the fault configuration.  Its canonical JSON (fixed
   field order, shortest-round-trip floats) is the session identity:
   two requests with the same canonical spec are the same session and
   share one tuning run.

   The [context_key] is coarser: it digests only what determines the
   *result of one measurement* (operator, machine, simulation budget,
   input data, fault injector, retries, watchdog) and deliberately
   excludes the tuner's seed/system/budget.  Sessions agreeing on the
   context key may share measurement results and quarantine decisions —
   a measurement is a pure function of (context, canonical program), so
   importing another session's result is indistinguishable from a local
   cache hit. *)

module Opdef = Alt_ir.Opdef
module Ops = Alt_graph.Ops
module Machine = Alt_machine.Machine
module Fault = Alt_faults.Fault
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Json = Alt_obs.Json

type op_spec = {
  kind : string; (* c2d dil grp dep c1d c3d gmm t2d *)
  batch : int;
  channels : int;
  out_channels : int;
  spatial : int;
  kernel : int;
  stride : int;
}

let default_op =
  {
    kind = "c2d";
    batch = 1;
    channels = 16;
    out_channels = 32;
    spatial = 14;
    kernel = 3;
    stride = 1;
  }

(* The CLI's operator constructor, shared by tune-op/show-op/serve. *)
let op_of_spec (s : op_spec) : Opdef.t =
  let n = s.batch and i = s.channels and o = s.out_channels in
  let hw = s.spatial and k = s.kernel and stride = s.stride in
  match s.kind with
  | "c2d" ->
      Ops.c2d ~name:"op" ~inp:"X" ~ker:"K" ~out:"Y" ~n ~i ~o ~h:hw ~w:hw ~kh:k
        ~kw:k ~stride ()
  | "dil" ->
      Ops.dil ~name:"op" ~inp:"X" ~ker:"K" ~out:"Y" ~n ~i ~o ~h:hw ~w:hw ~kh:k
        ~kw:k ~stride ()
  | "grp" ->
      Ops.grp ~name:"op" ~inp:"X" ~ker:"K" ~out:"Y" ~n ~i ~o ~h:hw ~w:hw ~kh:k
        ~kw:k ~groups:2 ~stride ()
  | "dep" ->
      Ops.dep ~name:"op" ~inp:"X" ~ker:"K" ~out:"Y" ~n ~c:i ~h:hw ~w:hw ~kh:k
        ~kw:k ~stride ()
  | "c1d" ->
      Ops.c1d ~name:"op" ~inp:"X" ~ker:"K" ~out:"Y" ~n ~i ~o ~w:(hw * hw)
        ~kw:k ~stride ()
  | "c3d" ->
      Ops.c3d ~name:"op" ~inp:"X" ~ker:"K" ~out:"Y" ~n ~i ~o ~d:4 ~h:hw ~w:hw
        ~kd:k ~kh:k ~kw:k ~stride ()
  | "gmm" -> Ops.gmm ~name:"op" ~a:"A" ~b:"B" ~out:"C" ~m:hw ~k:i ~n:o ()
  | "t2d" ->
      Ops.t2d ~name:"op" ~inp:"X" ~ker:"K" ~out:"Y" ~n ~i ~o ~h:hw ~w:hw ~kh:k
        ~kw:k ()
  | k -> Fmt.failwith "unknown operator kind %S" k

let op_spec_to_json (s : op_spec) : Json.t =
  Json.Obj
    [
      ("kind", Json.String s.kind);
      ("batch", Json.Int s.batch);
      ("channels", Json.Int s.channels);
      ("out_channels", Json.Int s.out_channels);
      ("spatial", Json.Int s.spatial);
      ("kernel", Json.Int s.kernel);
      ("stride", Json.Int s.stride);
    ]

let int_field j name dflt =
  match Option.bind (Json.member name j) Json.to_int_opt with
  | Some v -> v
  | None -> dflt

let float_field j name dflt =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> dflt

let string_field j name dflt =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some v -> v
  | None -> dflt

let op_spec_of_json (j : Json.t) : (op_spec, string) result =
  match j with
  | Json.Obj _ ->
      let s =
        {
          kind = string_field j "kind" default_op.kind;
          batch = int_field j "batch" default_op.batch;
          channels = int_field j "channels" default_op.channels;
          out_channels = int_field j "out_channels" default_op.out_channels;
          spatial = int_field j "spatial" default_op.spatial;
          kernel = int_field j "kernel" default_op.kernel;
          stride = int_field j "stride" default_op.stride;
        }
      in
      (* validate eagerly so a bad spec is a structured rejection, not a
         mid-session crash *)
      (match op_of_spec s with
      | (_ : Opdef.t) -> Ok s
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg)
  | _ -> Error "op spec must be a JSON object"

type tune_spec = {
  op : op_spec;
  machine : string;
  system : string; (* vendor/autotvm/flextensor/ansor/alt/alt-ol *)
  budget : int;
  seed : int; (* tuner seed *)
  max_points : int; (* per-measurement simulation budget *)
  data_seed : int; (* input-data seed *)
  fault_rate : float;
  fault_seed : int;
  retries : int;
  watchdog_points : int option;
}

let default_tune_spec =
  {
    op = default_op;
    machine = "intel-cpu";
    system = "alt";
    budget = 64;
    seed = 0;
    max_points = 40_000;
    data_seed = 11;
    fault_rate = 0.0;
    fault_seed = 0;
    retries = 2;
    watchdog_points = None;
  }

let machine_of_name name =
  List.find_opt (fun m -> m.Machine.name = name) Machine.all

let systems =
  [
    ("vendor", Tuner.Vendor);
    ("autotvm", Tuner.Autotvm_like);
    ("flextensor", Tuner.Flextensor_like);
    ("ansor", Tuner.Ansor_like);
    ("alt", Tuner.Alt);
    ("alt-ol", Tuner.Alt_ol);
  ]

let system_of_name name = List.assoc_opt name systems

(* Canonical JSON: fixed field order, so rendering is a canonical
   serialization (the codec renders floats shortest-round-trip). *)
let tune_spec_to_json (s : tune_spec) : Json.t =
  Json.Obj
    [
      ("op", op_spec_to_json s.op);
      ("machine", Json.String s.machine);
      ("system", Json.String s.system);
      ("budget", Json.Int s.budget);
      ("seed", Json.Int s.seed);
      ("max_points", Json.Int s.max_points);
      ("data_seed", Json.Int s.data_seed);
      ("fault_rate", Json.Float s.fault_rate);
      ("fault_seed", Json.Int s.fault_seed);
      ("retries", Json.Int s.retries);
      ( "watchdog_points",
        match s.watchdog_points with
        | Some p -> Json.Int p
        | None -> Json.Null );
    ]

let tune_spec_of_json (j : Json.t) : (tune_spec, string) result =
  match j with
  | Json.Obj _ -> (
      let op_json =
        match Json.member "op" j with
        | Some o -> o
        | None -> Json.Obj []
      in
      match op_spec_of_json op_json with
      | Error e -> Error e
      | Ok op ->
          let d = default_tune_spec in
          let s =
            {
              op;
              machine = string_field j "machine" d.machine;
              system = string_field j "system" d.system;
              budget = int_field j "budget" d.budget;
              seed = int_field j "seed" d.seed;
              max_points = int_field j "max_points" d.max_points;
              data_seed = int_field j "data_seed" d.data_seed;
              fault_rate = float_field j "fault_rate" d.fault_rate;
              fault_seed = int_field j "fault_seed" d.fault_seed;
              retries = int_field j "retries" d.retries;
              watchdog_points =
                Option.bind (Json.member "watchdog_points" j) Json.to_int_opt;
            }
          in
          if machine_of_name s.machine = None then
            Error (Fmt.str "unknown machine %S" s.machine)
          else if system_of_name s.system = None then
            Error (Fmt.str "unknown system %S" s.system)
          else if s.budget < 1 then Error "budget must be >= 1"
          else if s.retries < 0 then Error "retries must be >= 0"
          else if s.fault_rate < 0.0 || s.fault_rate > 1.0 then
            Error "fault_rate must be in [0,1]"
          else Ok s)
  | _ -> Error "tune spec must be a JSON object"

(* Session identity: the canonical spec digest.  Two requests with equal
   canonical specs attach to one session. *)
let session_key (s : tune_spec) : string =
  Digest.to_hex (Digest.string ("alt-session|" ^ Json.to_string (tune_spec_to_json s)))

(* Measurement-context identity: what one measurement's result depends
   on.  Excludes the tuner seed/system/budget — sessions differing only
   there measure identical (context, program) points and may share. *)
let context_key (s : tune_spec) : string =
  let j =
    Json.Obj
      [
        ("op", op_spec_to_json s.op);
        ("machine", Json.String s.machine);
        ("backend", Json.String "sim");
        ("max_points", Json.Int s.max_points);
        ("data_seed", Json.Int s.data_seed);
        ("fault_rate", Json.Float s.fault_rate);
        ("fault_seed", Json.Int s.fault_seed);
        ("retries", Json.Int s.retries);
        ( "watchdog_points",
          match s.watchdog_points with
          | Some p -> Json.Int p
          | None -> Json.Null );
      ]
  in
  Digest.to_hex (Digest.string ("alt-context|" ^ Json.to_string j))

(* Build the measurement task a spec describes.  [shared] plugs the
   session into the daemon's cross-session store; a standalone (CLI)
   run of the same spec builds the identical task minus sharing, which
   is trajectory-neutral by the shared-store contract. *)
let task_of_spec ?shared (s : tune_spec) : Measure.task =
  let machine =
    match machine_of_name s.machine with
    | Some m -> m
    | None -> invalid_arg (Fmt.str "Workload: unknown machine %S" s.machine)
  in
  let faults =
    if s.fault_rate > 0.0 then
      Fault.create ~seed:s.fault_seed ~rate:s.fault_rate ()
    else Fault.none
  in
  Measure.make_task ~machine ~max_points:s.max_points ~seed:s.data_seed
    ~faults ~retries:s.retries ?watchdog_points:s.watchdog_points ?shared
    (op_of_spec s.op)

let system_of_spec (s : tune_spec) : Tuner.system =
  match system_of_name s.system with
  | Some sys -> sys
  | None -> invalid_arg (Fmt.str "Workload: unknown system %S" s.system)
