(** Workload specifications: the wire-level description of a tuning
    request, its canonical JSON, and the two digests the daemon keys
    everything by — the {!session_key} (full trajectory identity) and
    the coarser {!context_key} (measurement-result identity, governing
    which sessions may share the measurement store). *)

module Opdef = Alt_ir.Opdef
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Machine = Alt_machine.Machine
module Json = Alt_obs.Json

type op_spec = {
  kind : string;  (** c2d, dil, grp, dep, c1d, c3d, gmm, t2d *)
  batch : int;
  channels : int;
  out_channels : int;
  spatial : int;
  kernel : int;
  stride : int;
}

val default_op : op_spec

val int_field : Json.t -> string -> int -> int
(** [int_field j name dflt]: member [name] of [j] as an int, or [dflt]. *)

val float_field : Json.t -> string -> float -> float
val string_field : Json.t -> string -> string -> string

val op_of_spec : op_spec -> Opdef.t
(** Construct the operator (raises [Failure] on an unknown kind — use
    {!op_spec_of_json} for validated wire input). *)

val op_spec_to_json : op_spec -> Json.t
val op_spec_of_json : Json.t -> (op_spec, string) result
(** Missing fields take {!default_op} values; the spec is validated by
    constructing the operator once. *)

type tune_spec = {
  op : op_spec;
  machine : string;
  system : string;
  budget : int;
  seed : int;  (** tuner seed *)
  max_points : int;
  data_seed : int;  (** input-data seed *)
  fault_rate : float;
  fault_seed : int;
  retries : int;
  watchdog_points : int option;
}

val default_tune_spec : tune_spec
val machine_of_name : string -> Machine.t option
val system_of_name : string -> Tuner.system option
val systems : (string * Tuner.system) list

val tune_spec_to_json : tune_spec -> Json.t
(** Canonical: fixed field order, shortest-round-trip floats — rendering
    this is the session's canonical serialization. *)

val tune_spec_of_json : Json.t -> (tune_spec, string) result
(** Missing fields take {!default_tune_spec} values; machine, system and
    numeric ranges are validated. *)

val session_key : tune_spec -> string
(** Digest of the canonical spec: requests with equal keys are one
    session and share one tuning run (and its checkpoint journal). *)

val context_key : tune_spec -> string
(** Digest of everything that determines the result of one measurement
    (operator, machine, simulation budget, input data, fault injector,
    retries, watchdog) — and nothing that doesn't (tuner seed, system,
    tuning budget).  Sessions with equal context keys may share
    measurement results and quarantine decisions: a measurement is a
    pure function of (context, canonical program). *)

val task_of_spec : ?shared:Measure.shared_store -> tune_spec -> Measure.task
(** The measurement task a spec describes.  Raises [Invalid_argument] on
    an unvalidated spec (unknown machine). *)

val system_of_spec : tune_spec -> Tuner.system
