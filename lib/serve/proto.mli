(** The serve wire protocol: length-prefixed JSON frames
    ([<len>\n<payload>\n]) and the request codec.  Framing is strict —
    a bad length prefix, an out-of-bounds length or a missing trailing
    newline is a fatal stream error (length-prefixed streams cannot
    resynchronize), and frames are capped at {!max_frame} bytes so a
    corrupt peer cannot wedge the daemon. *)

module Json = Alt_obs.Json

val max_frame : int
(** Hard cap on one payload's byte length (1 MiB). *)

val frame : string -> string
(** Wrap a payload into one wire frame.  Raises [Invalid_argument] above
    {!max_frame}. *)

val frame_json : Json.t -> string

(** Incremental decoder: feed raw bytes as they arrive, pull complete
    payloads. *)
module Frames : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit
  val pending : t -> int

  val next : t -> (string option, string) result
  (** [Ok (Some payload)]: one frame consumed; [Ok None]: need more
      bytes; [Error msg]: the stream is corrupt and the connection must
      be dropped. *)
end

type request =
  | Tune of {
      id : string;
      spec : Workload.tune_spec;
      deadline_rounds : int option;
          (** max scheduler rounds granted in this daemon run; on expiry
              the session is parked resumable (journal kept) and the
              request answered with status ["deadline"] *)
    }
  | Compile of {
      id : string;
      op : Workload.op_spec;
      machine : string;
      preset : string;  (** default, channels-last, blocked, alt *)
    }
  | Stats of { id : string }
  | Shutdown of { id : string }

val request_id : request -> string
val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val parse_request : string -> (request, string) result

val error_response : id:string -> reason:string -> Json.t
