(** Cooperative session fibers over OCaml 5 effects: a tuning run
    yields after every measurement round (each one checkpointed before
    the yield, so every suspension point is durable) and the scheduler
    round-robins many sessions over one domain — deterministic
    concurrency without threads. *)

module Tuner = Alt_tuner.Tuner

type _ Effect.t += Yield : int -> unit Effect.t

exception Interrupted
(** Injected by graceful shutdown: the session stops at its last
    checkpoint and is resumable from the journal. *)

exception Deadline_exceeded
(** Injected when a session exhausts its per-request round deadline. *)

type step =
  | Finished of Tuner.result
  | Raised of exn
      (** the fiber raised — a genuine failure, or an injected
          {!Interrupted}/{!Deadline_exceeded} *)
  | Yielded of int * paused
      (** suspended after round [n]; exactly one of the [paused]
          closures may be called, once *)

and paused = { resume : unit -> step; abort : exn -> step }

val start : (unit -> Tuner.result) -> step
(** Run a tuning thunk as a fiber until its first yield (or
    completion).  The thunk must perform {!yield} from the tuner's
    [on_round] hook — see {!yield}. *)

val yield : int -> unit
(** [yield rounds] suspends the calling fiber, reporting its round
    count.  Must only be performed under {!start}. *)
