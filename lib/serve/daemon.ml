(* Transport layer for the tuning service: owns the fds, the frame
   decoding, and the event loop; all policy lives in Serve.

   Two transports:

   - pipe mode: one client over stdin/stdout (or any fd pair).  Input
     is drained ahead of scheduling — every frame already available is
     admitted before the next engine step — so driving the daemon from
     a pre-written request file is fully deterministic: admission
     decisions depend only on the file's order, never on read/step
     interleaving.  EOF on input starts a graceful drain: admitted
     sessions run to completion, then the loop exits.

   - socket mode: a Unix-domain listener with any number of concurrent
     clients.  Each connection carries its own frame decoder; tune
     responses are routed back to the connection that submitted the
     request id.  A client that disconnects mid-tune orphans its ids —
     the session still completes (and journals) but the responses are
     dropped.

   Input is read as raw bytes straight from the fd into the incremental
   frame decoder — never through a buffered channel, which would
   swallow bytes that [select] can no longer see.

   [kill_after_rounds] is the crash-injection hook: after that many
   scheduler rounds the process exits immediately with code 42 — no
   drain, no journal cleanup — simulating a crash for recovery tests. *)

module Json = Alt_obs.Json

let src = Logs.Src.create "alt.daemon" ~doc:"ALT tuning service transport"

module Log = (val Logs.src_log src : Logs.LOG)

let crash_exit_code = 42

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let send fd json =
  let frame = Proto.frame_json json in
  write_all fd frame 0 (String.length frame)

let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> None
  | n -> Some (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Some ""

let readable ?(timeout = 0.0) fd =
  match Unix.select [ fd ] [] [] timeout with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let maybe_crash engine = function
  | Some k when Serve.rounds_stepped engine >= k ->
      (* simulated crash: straight out, no drain, journals stay *)
      Log.warn (fun m -> m "kill-after-rounds reached: exiting %d" crash_exit_code);
      exit crash_exit_code
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Pipe mode                                                          *)
(* ------------------------------------------------------------------ *)

let run_pipe ?kill_after_rounds ?(input = Unix.stdin) ?(output = Unix.stdout)
    engine =
  let frames = Proto.Frames.create () in
  let eof = ref false in
  let stop = ref false in
  (* decode and dispatch everything already buffered *)
  let rec dispatch () =
    if !stop then ()
    else
      match Proto.Frames.next frames with
      | Ok None -> ()
      | Error msg ->
          (* strict framing: a malformed stream is fatal — answer, then
             treat the stream as closed and drain *)
          send output (Proto.error_response ~id:"" ~reason:("bad frame: " ^ msg));
          eof := true
      | Ok (Some payload) ->
          (match Proto.parse_request payload with
          | Error msg -> send output (Proto.error_response ~id:"" ~reason:msg)
          | Ok (Proto.Shutdown _ as req) ->
              List.iter (fun (_, j) -> send output j) (Serve.submit engine req);
              List.iter (fun (_, j) -> send output j) (Serve.shutdown engine);
              stop := true
          | Ok req ->
              List.iter (fun (_, j) -> send output j) (Serve.submit engine req));
          dispatch ()
  in
  (* drain the input ahead of scheduling: admit every frame already
     available before stepping, so file-driven runs are deterministic *)
  let rec slurp ~block =
    if (not !eof) && (not !stop)
       && readable ~timeout:(if block then -1.0 else 0.0) input
    then begin
      (match read_chunk input with
      | None -> eof := true
      | Some chunk -> Proto.Frames.feed frames chunk);
      dispatch ();
      slurp ~block:false
    end
  in
  while not !stop && ((not !eof) || Serve.has_work engine) do
    slurp ~block:(not (Serve.has_work engine));
    if (not !stop) && Serve.has_work engine then begin
      List.iter (fun (_, j) -> send output j) (Serve.step engine);
      maybe_crash engine kill_after_rounds
    end
  done;
  if not !stop then ignore (Serve.shutdown engine : (string * Json.t) list)

(* ------------------------------------------------------------------ *)
(* Socket mode                                                        *)
(* ------------------------------------------------------------------ *)

type conn = { fd : Unix.file_descr; frames : Proto.Frames.t }

let run_socket ?kill_after_rounds ~path engine =
  if Sys.file_exists path then Sys.remove path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 16;
  Log.info (fun m -> m "listening on %s" path);
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let owner : (string, conn) Hashtbl.t = Hashtbl.create 16 in
  let stop = ref false in
  let drop (c : conn) =
    Hashtbl.remove conns c.fd;
    Hashtbl.iter
      (fun id o -> if o.fd == c.fd then Hashtbl.remove owner id)
      owner;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let send_conn c json =
    try send c.fd json
    with Unix.Unix_error _ ->
      Log.warn (fun m -> m "client write failed; dropping connection");
      drop c
  in
  (* route an engine response to whichever client owns the id *)
  let route (id, json) =
    match Hashtbl.find_opt owner id with
    | Some c ->
        Hashtbl.remove owner id;
        send_conn c json
    | None -> Log.debug (fun m -> m "dropping response for orphan id %S" id)
  in
  let dispatch (c : conn) =
    let rec go () =
      if !stop then ()
      else
        match Proto.Frames.next c.frames with
        | Ok None -> ()
        | Error msg ->
            send_conn c (Proto.error_response ~id:"" ~reason:("bad frame: " ^ msg));
            drop c
        | Ok (Some payload) ->
            (match Proto.parse_request payload with
            | Error msg -> send_conn c (Proto.error_response ~id:"" ~reason:msg)
            | Ok (Proto.Shutdown _ as req) ->
                List.iter (fun (_, j) -> send_conn c j) (Serve.submit engine req);
                List.iter route (Serve.shutdown engine);
                stop := true
            | Ok (Proto.Tune { id; _ } as req) -> (
                match Serve.submit engine req with
                | [] -> Hashtbl.replace owner id c (* answered on completion *)
                | responses -> List.iter (fun (_, j) -> send_conn c j) responses)
            | Ok req ->
                List.iter (fun (_, j) -> send_conn c j) (Serve.submit engine req));
            if Hashtbl.mem conns c.fd then go ()
    in
    go ()
  in
  while not !stop do
    let fds = listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    let timeout = if Serve.has_work engine then 0.0 else -1.0 in
    let ready =
      match Unix.select fds [] [] timeout with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd == listener then begin
          let client, _ = Unix.accept listener in
          Hashtbl.replace conns client
            { fd = client; frames = Proto.Frames.create () }
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> (
              match read_chunk fd with
              | None -> drop c
              | Some chunk ->
                  Proto.Frames.feed c.frames chunk;
                  dispatch c))
      ready;
    if (not !stop) && Serve.has_work engine then begin
      List.iter route (Serve.step engine);
      maybe_crash engine kill_after_rounds
    end
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  if Sys.file_exists path then Sys.remove path

(* ------------------------------------------------------------------ *)
(* Client                                                             *)
(* ------------------------------------------------------------------ *)

(* One-shot request over the socket: connect, send, await the reply to
   our id (responses to other clients' ids cannot arrive on our
   connection, so the first frame is ours). *)
let request ~path (req : Proto.request) : (Json.t, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Fmt.str "connect %s: %s" path (Unix.error_message e))
      | () -> (
          send fd (Proto.request_to_json req);
          let frames = Proto.Frames.create () in
          let rec await () =
            match Proto.Frames.next frames with
            | Error msg -> Error msg
            | Ok (Some payload) -> Json.parse payload
            | Ok None -> (
                match read_chunk fd with
                | None -> Error "connection closed before a reply arrived"
                | Some chunk ->
                    Proto.Frames.feed frames chunk;
                    await ())
          in
          await ()))
