(* The daemon's cross-session measurement store: a sharded map from
   (measurement context, canonical program digest) to simulator results
   and quarantine decisions, shared by every session the daemon runs.

   Entries are namespaced by the context key (Workload.context_key), so
   sessions may only ever observe entries produced under an identical
   measurement configuration — sharing across contexts would change
   results; sharing within one is indistinguishable from a checkpoint
   restore (see Measure.shared_store).  Quarantine entries are the
   robustness headline: a candidate one session proved terminally
   failing is answered from quarantine by every later session instead of
   burning its retry budget again.

   Shards are plain Hashtbls behind per-shard mutexes.  The tuner only
   calls into the store from the scheduler domain today (sessions are
   cooperatively interleaved, and pool workers never touch task state),
   but the store is the one structure a future multi-domain daemon would
   share, so it is locked now — the per-shard cost is one uncontended
   mutex acquisition per lookup. *)

module Profiler = Alt_machine.Profiler
module Measure = Alt_tuner.Measure

type shard = {
  lock : Mutex.t;
  results : (string, Profiler.result) Hashtbl.t;
  quarantine : (string, string) Hashtbl.t;
}

type stats = {
  mutable result_hits : int;
  mutable result_inserts : int;
  mutable quarantine_hits : int;
  mutable quarantine_inserts : int;
}

type t = { shards : shard array; stats : stats; slock : Mutex.t }

let create ?(shards = 16) () =
  if shards < 1 then invalid_arg "Store.create: shards must be >= 1";
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            results = Hashtbl.create 64;
            quarantine = Hashtbl.create 8;
          });
    stats =
      {
        result_hits = 0;
        result_inserts = 0;
        quarantine_hits = 0;
        quarantine_inserts = 0;
      };
    slock = Mutex.create ();
  }

let shard_count t = Array.length t.shards

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Entries are keyed by "<ctx>/<program digest>"; the shard is chosen by
   the combined key's hash so one hot context still spreads over all
   shards. *)
let slot t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find_result t ~ctx key =
  let k = ctx ^ "/" ^ key in
  let s = slot t k in
  let r = locked s.lock (fun () -> Hashtbl.find_opt s.results k) in
  (match r with
  | Some _ -> locked t.slock (fun () -> t.stats.result_hits <- t.stats.result_hits + 1)
  | None -> ());
  r

let publish_result t ~ctx key result =
  let k = ctx ^ "/" ^ key in
  let s = slot t k in
  locked s.lock (fun () ->
      if not (Hashtbl.mem s.results k) then begin
        Hashtbl.replace s.results k result;
        locked t.slock (fun () ->
            t.stats.result_inserts <- t.stats.result_inserts + 1)
      end)

let find_quarantine t ~ctx key =
  let k = ctx ^ "/" ^ key in
  let s = slot t k in
  let r = locked s.lock (fun () -> Hashtbl.find_opt s.quarantine k) in
  (match r with
  | Some _ ->
      locked t.slock (fun () ->
          t.stats.quarantine_hits <- t.stats.quarantine_hits + 1)
  | None -> ());
  r

let publish_quarantine t ~ctx key reason =
  let k = ctx ^ "/" ^ key in
  let s = slot t k in
  locked s.lock (fun () ->
      if not (Hashtbl.mem s.quarantine k) then begin
        Hashtbl.replace s.quarantine k reason;
        locked t.slock (fun () ->
            t.stats.quarantine_inserts <- t.stats.quarantine_inserts + 1)
      end)

let view t ~ctx : Measure.shared_store =
  {
    Measure.s_find_result = find_result t ~ctx;
    s_publish_result = publish_result t ~ctx;
    s_find_quarantine = find_quarantine t ~ctx;
    s_publish_quarantine = publish_quarantine t ~ctx;
  }

let sizes t =
  Array.fold_left
    (fun (r, q) s ->
      locked s.lock (fun () ->
          (r + Hashtbl.length s.results, q + Hashtbl.length s.quarantine)))
    (0, 0) t.shards

let stats t =
  locked t.slock (fun () ->
      {
        result_hits = t.stats.result_hits;
        result_inserts = t.stats.result_inserts;
        quarantine_hits = t.stats.quarantine_hits;
        quarantine_inserts = t.stats.quarantine_inserts;
      })
