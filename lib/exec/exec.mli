(** Exec-backend measurement discipline (DESIGN.md §12): compile once,
    warm up, then take repeated timed runs and report the median.

    Wall-clock numbers are inherently noisy, so two rules hold
    everywhere this module is used: assertions compare ratios, never
    absolute milliseconds, and anything that must be deterministic
    (fault-injection differentials, checkpoint replay tests) uses a
    {!Virtual} clock, which executes the kernel exactly once and derives
    every sample from the program instead of the machine. *)

module Program = Alt_ir.Program

type clock =
  | Wall  (** [Unix.gettimeofday] around each timed run *)
  | Virtual of (Program.t -> float)
      (** deterministic pseudo-time: every sample is [f prog]; the
          kernel still executes (once) so outputs are produced *)

type cfg = { warmup : int; repeats : int; clock : clock; domains : int }
(** [domains] > 1 runs each kernel's leading parallel band across that
    many OCaml domains when the disjointness check passes (see
    {!Kernel.compile}); outputs are bit-identical to [domains = 1]
    regardless. *)

val default_cfg : cfg
(** [{ warmup = 2; repeats = 5; clock = Wall; domains = 1 }]. *)

(** One measurement: order statistics over the timed samples plus the
    kernel's compile-time coverage counters. *)
type wall = {
  median_ms : float;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  samples : float array;  (** per-repeat milliseconds, in run order *)
  macro_groups : int;
  generic_groups : int;
  par_chunks : int;  (** parallel chunks dispatched over all runs *)
  par_fallbacks : int;  (** 1 iff [domains > 1] could not engage *)
  imbalance_pct : float;
      (** (slowest chunk - mean) / mean of the final run, percent; 0
          when serial *)
}

val measure : ?cfg:cfg -> Program.t -> bufs:float array array -> wall
(** Compile [prog] against [bufs] and measure it.  Non-input buffers are
    re-zeroed (untimed) before every run, warmup or timed — [Reduce]
    accumulates, so without the reset each rerun would compute different
    values.  After [measure] returns, [bufs] holds the outputs of the
    final run, element-wise equal to a single interpreter execution.
    Raises [Invalid_argument] if [repeats < 1], [warmup < 0] or
    [domains < 1], or on a buffer shape mismatch (see
    {!Kernel.compile}). *)

val spread : wall -> float
(** Relative spread [(max - min) / median] of the timed samples: the
    noise gate tests use to decide whether a wall-clock comparison is
    trustworthy.  0 under a {!Virtual} clock. *)
