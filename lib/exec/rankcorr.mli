(** Rank correlation between two latency vectors — the cross-validation
    statistic of the exec backend (DESIGN.md §12): does the simulator
    rank candidates the way the real device does?

    Both statistics use average ranks for ties (Spearman) and the tau-b
    tie correction (Kendall); with fewer than two points, or when either
    vector is constant, they return [nan] — callers must gate. *)

val ranks : float array -> float array
(** 1-based ranks, ties averaged. *)

val spearman : float array -> float array -> float
(** Spearman's rho: Pearson correlation of the rank vectors. *)

val kendall : float array -> float array -> float
(** Kendall's tau-b (O(n^2); candidate sets are small). *)
