(** Compiled macro-kernels: the lowering half of the exec backend
    (DESIGN.md §12).

    [compile] turns a lowered {!Program.t} into a closure that executes
    the loop nest for real over flat [float array] buffers — no cache
    model, no counters, just the arithmetic.  Innermost loops whose
    leaves access buffers affinely in the loop variable become
    macro-kernels: tight array loops over hoisted base offsets, with the
    multiply-accumulate shape every conv/matmul reduction lowers to
    specialized (invariant operands hoisted, scalar accumulators kept in
    a register, innermost iterations unrolled).  Everything else falls
    back to a generic compiled interpretation of the same nest.

    The value semantics mirror the scalar interpreter in
    [lib/machine/profiler.ml] operation for operation — same combine
    functions, same evaluation order, same accumulation chains — so
    outputs are bit-identical to a simulator run of the same program
    (pinned by test/test_exec.ml). *)

module Program = Alt_ir.Program

(** Coverage counters, filled at compile and execution time.  A "group"
    is an innermost loop with leaf-only body — the unit the macro
    compiler targets. *)
type stats = {
  mutable macro_groups : int;  (** groups compiled to macro-kernels *)
  mutable generic_groups : int;  (** groups that fell back *)
  mutable macro_runs : int;  (** innermost-loop executions, macro path *)
  mutable generic_runs : int;  (** innermost-loop executions, fallback *)
}

type t = private {
  prog : Program.t;
  bufs : float array array;
  run : unit -> unit;  (** one full execution of the program *)
  stats : stats;
}

val compile : Program.t -> bufs:float array array -> t
(** Compile the program against per-slot physical buffers (see
    [Runtime.alloc_bufs]; lengths are validated).  The returned closure
    may be invoked repeatedly; note that [Reduce] statements accumulate
    into whatever the output buffers hold, so re-running without
    resetting non-input buffers computes a different (larger) result. *)

val reset_non_inputs : t -> unit
(** Zero every non-[Input] buffer, restoring the post-[alloc_bufs]
    state so [run] is repeatable. *)
