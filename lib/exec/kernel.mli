(** Compiled macro-kernels: the lowering half of the exec backend
    (DESIGN.md §12).

    [compile] turns a lowered {!Program.t} into a closure that executes
    the loop nest for real over flat [float array] buffers — no cache
    model, no counters, just the arithmetic.  Innermost loops whose
    leaves access buffers affinely in the loop variable become
    macro-kernels: tight array loops over hoisted base offsets, with the
    multiply-accumulate shape every conv/matmul reduction lowers to
    specialized (invariant operands hoisted, scalar accumulators kept in
    a register, innermost iterations unrolled).  Everything else falls
    back to a generic compiled interpretation of the same nest.

    The value semantics mirror the scalar interpreter in
    [lib/machine/profiler.ml] operation for operation — same combine
    functions, same evaluation order, same accumulation chains — so
    outputs are bit-identical to a simulator run of the same program
    (pinned by test/test_exec.ml).

    With [~domains > 1] the leading [Parallel] loops (the band
    [Schedule.parallel] marks) run chunked across a resident
    {!Alt_parallel.Team}: the band's iteration space is flattened and
    split into [min domains points] deterministic contiguous blocks,
    each executing its own compiled copy of the inner nest.  A
    compile-time disjointness check (DESIGN.md §15) proves every written
    buffer is touched at offsets disjoint across parallel indices —
    reduction chains stay sequential per output element — so outputs
    stay bit-identical to serial execution.  Programs that fail the
    check, or have no parallel band, fall back to the serial path and
    tick [par_fallbacks]. *)

module Program = Alt_ir.Program

(** Coverage counters, filled at compile and execution time.  A "group"
    is an innermost loop with leaf-only body — the unit the macro
    compiler targets. *)
type stats = {
  mutable macro_groups : int;  (** groups compiled to macro-kernels *)
  mutable generic_groups : int;  (** groups that fell back *)
  mutable macro_runs : int;  (** innermost-loop executions, macro path *)
  mutable generic_runs : int;  (** innermost-loop executions, fallback *)
  mutable par_chunks : int;
      (** chunks dispatched across [run]s (0 when serial) *)
  mutable par_fallbacks : int;
      (** 1 when [domains > 1] was requested but the program runs
          serially (no parallel band, or disjointness check failed) *)
}

type t = private {
  prog : Program.t;
  bufs : float array array;
  run : unit -> unit;  (** one full execution of the program *)
  stats : stats;
  par_ms : float array;
      (** per-chunk wall-clock of the latest parallel [run], in ms;
          [[||]] on the serial path.  Feeds the imbalance metric. *)
}

val compile : ?domains:int -> Program.t -> bufs:float array array -> t
(** Compile the program against per-slot physical buffers (see
    [Runtime.alloc_bufs]; lengths are validated).  [?domains] (default
    [1]) > 1 engages the parallel driver when legal — outputs are
    bit-identical either way.  The returned closure may be invoked
    repeatedly; note that [Reduce] statements accumulate into whatever
    the output buffers hold, so re-running without resetting non-input
    buffers computes a different (larger) result.  Raises
    [Invalid_argument] if [domains < 1]. *)

val reset_non_inputs : t -> unit
(** Zero every non-[Input] buffer, restoring the post-[alloc_bufs]
    state so [run] is repeatable. *)
