(* Compiled macro-kernels: the exec backend's lowering (DESIGN.md §12).

   This is the value half of the fast-sim compiler in
   lib/machine/profiler.ml with the cache model cut away: the same
   expression compilation, the same hoisted affine bases, the same
   multiply-accumulate specialization — but executing for wall-clock
   time instead of feeding a simulator.  The mirroring is deliberate and
   load-bearing: because every combine function, evaluation order and
   accumulation chain matches the scalar interpreter operation for
   operation, kernel outputs are bit-identical to a simulator run of the
   same program, which is what the differential suite in
   test/test_exec.ml pins.

   Differences from the profiler's fast planner:

   - any affine stride qualifies for a macro-kernel (the profiler
     restricts streams to stride 0/1 because the cache span walk needs
     line-crossing structure; values have no such constraint);
   - loads under Pselect are fine (there is no access trace to keep
     deterministic — the taken branch just reads its buffer);
   - the multiply-accumulate scalar-accumulator loop is 4x unrolled.
     Unrolling preserves the single sequential [acc := !acc +. m] chain,
     so float results are unchanged — it only removes loop overhead.

   Parallel driver (DESIGN.md §15): with [domains > 1] the leading
   [Parallel] loops of the nest are flattened into one iteration space,
   chunked into deterministic contiguous blocks, and the blocks run on a
   resident {!Alt_parallel.Team}.  Each block executes an independently
   compiled copy of the inner nest (own loop environment, own hoisted
   bases), so blocks share nothing but the buffers; a compile-time
   legality check proves every buffer written in the nest is touched at
   offsets disjoint across distinct parallel indices, which is what
   keeps reduction accumulation chains sequential per output element and
   the outputs bit-identical to a serial run.  Nests that fail the check
   (or have no parallel band) fall back to the serial path and count a
   [par_fallbacks] tick, so silent serialization is observable. *)

module Var = Alt_tensor.Var
module Shape = Alt_tensor.Shape
module Ixexpr = Alt_tensor.Ixexpr
module Layout = Alt_tensor.Layout
module Program = Alt_ir.Program
module Sexpr = Alt_ir.Sexpr
module Team = Alt_parallel.Team

type stats = {
  mutable macro_groups : int;
  mutable generic_groups : int;
  mutable macro_runs : int;
  mutable generic_runs : int;
  mutable par_chunks : int;
  mutable par_fallbacks : int;
}

type t = {
  prog : Program.t;
  bufs : float array array;
  run : unit -> unit;
  stats : stats;
  par_ms : float array;
}

(* ------------------------------------------------------------------ *)
(* Expression compilation (mirrors profiler.ml)                       *)
(* ------------------------------------------------------------------ *)

type ctx = { mutable env : int array; bufs : float array array }

type varmap = { tbl : (int, int) Hashtbl.t; mutable next : int }

let var_slot vm (v : Var.t) =
  match Hashtbl.find_opt vm.tbl (Var.id v) with
  | Some i -> i
  | None ->
      let i = vm.next in
      vm.next <- i + 1;
      Hashtbl.replace vm.tbl (Var.id v) i;
      i

let rec compile_ix vm (e : Ixexpr.t) : int array -> int =
  match e with
  | Ixexpr.Const n -> fun _ -> n
  | Ixexpr.Var v ->
      let i = var_slot vm v in
      fun env -> env.(i)
  | Ixexpr.Add (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env + fb env
  | Ixexpr.Sub (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env - fb env
  | Ixexpr.Mul (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env * fb env
  | Ixexpr.Div (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> Ixexpr.fdiv (fa env) (fb env)
  | Ixexpr.Mod (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> Ixexpr.fmod (fa env) (fb env)
  | Ixexpr.Min (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> min (fa env) (fb env)
  | Ixexpr.Max (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> max (fa env) (fb env)

let rec compile_cond vm (c : Sexpr.cond) : int array -> bool =
  match c with
  | Sexpr.Cmp (op, a, b) -> (
      let fa = compile_ix vm a and fb = compile_ix vm b in
      match op with
      | Sexpr.Clt -> fun env -> fa env < fb env
      | Sexpr.Cle -> fun env -> fa env <= fb env
      | Sexpr.Cgt -> fun env -> fa env > fb env
      | Sexpr.Cge -> fun env -> fa env >= fb env
      | Sexpr.Ceq -> fun env -> fa env = fb env)
  | Sexpr.And (a, b) ->
      let fa = compile_cond vm a and fb = compile_cond vm b in
      fun env -> fa env && fb env
  | Sexpr.Or (a, b) ->
      let fa = compile_cond vm a and fb = compile_cond vm b in
      fun env -> fa env || fb env

let compile_offset vm (slots : Program.slot array) (a : Program.access) :
    int array -> int =
  let strides = Layout.phys_strides slots.(a.Program.slot).Program.layout in
  let fs = Array.map (compile_ix vm) a.Program.idx in
  let n = Array.length fs in
  fun env ->
    let off = ref 0 in
    for i = 0 to n - 1 do
      off := !off + (fs.(i) env * strides.(i))
    done;
    !off

(* Element stride of loop variable [v] through the flattened offset of
   [a]; [None] when not affine in [v]. *)
let affine_stride (slots : Program.slot array) (a : Program.access)
    (v : Var.t) : int option =
  let strides = Layout.phys_strides slots.(a.Program.slot).Program.layout in
  let total = ref (Some 0) in
  Array.iteri
    (fun i e ->
      match (!total, Ixexpr.coeff_of e v) with
      | Some t, Some c -> total := Some (t + (c * strides.(i)))
      | _ -> total := None)
    a.Program.idx;
  !total

(* Plain evaluator over the loop environment; used outside macro groups.
   Mirrors the profiler's [compile_pexpr] minus the counter effects. *)
let rec compile_plain vm slots ctx (e : Program.pexpr) : int array -> float =
  match e with
  | Program.Pconst f -> fun _ -> f
  | Program.Pload a ->
      let off = compile_offset vm slots a in
      let buf = ctx.bufs.(a.Program.slot) in
      fun env -> buf.(off env)
  | Program.Pbin (op, a, b) ->
      let fa = compile_plain vm slots ctx a
      and fb = compile_plain vm slots ctx b in
      let g = Sexpr.apply_binop op in
      fun env -> g (fa env) (fb env)
  | Program.Pun (op, a) ->
      let fa = compile_plain vm slots ctx a in
      let g = Sexpr.apply_unop op in
      fun env -> g (fa env)
  | Program.Pselect (c, a, b) ->
      let fc = compile_cond vm c
      and fa = compile_plain vm slots ctx a
      and fb = compile_plain vm slots ctx b in
      fun env -> if fc env then fa env else fb env

(* Hoisted affine load base: refreshed once per innermost-loop execution,
   advanced by [pb_stride * x] inside. *)
type pbase = {
  pb_off : int array -> int;
  pb_stride : int;
  mutable pb_base : int;
}

(* x-indexed evaluator with every load hoisted to a pbase; structure is
   the profiler's [compile_pure], so float results are bit-identical. *)
let rec compile_value vm slots ctx (bases : pbase list ref)
    (strides : Program.access -> int) (e : Program.pexpr) : int -> float =
  match e with
  | Program.Pconst f -> fun _ -> f
  | Program.Pload a ->
      let pb =
        { pb_off = compile_offset vm slots a; pb_stride = strides a;
          pb_base = 0 }
      in
      bases := pb :: !bases;
      let buf = ctx.bufs.(a.Program.slot) in
      fun x -> buf.(pb.pb_base + (pb.pb_stride * x))
  | Program.Pbin (op, a, b) ->
      let fa = compile_value vm slots ctx bases strides a
      and fb = compile_value vm slots ctx bases strides b in
      let g = Sexpr.apply_binop op in
      fun x -> g (fa x) (fb x)
  | Program.Pun (op, a) ->
      let fa = compile_value vm slots ctx bases strides a in
      let g = Sexpr.apply_unop op in
      fun x -> g (fa x)
  | Program.Pselect (c, a, b) ->
      let fc = compile_cond vm c
      and fa = compile_value vm slots ctx bases strides a
      and fb = compile_value vm slots ctx bases strides b in
      fun x -> if fc ctx.env then fa x else fb x

(* ------------------------------------------------------------------ *)
(* Macro-kernel planner                                               *)
(* ------------------------------------------------------------------ *)

type macro_leaf = {
  ml_step : int -> unit;  (** one iteration at x (multi-leaf interleave) *)
  ml_run : int -> unit;  (** the whole loop of n iterations *)
}

type macro_plan = {
  mp_pbases : pbase array;
  mp_leaves : macro_leaf array;
}

let rec all_leaves = function
  | Program.Store _ | Program.Reduce _ -> true
  | Program.Block l -> l <> [] && List.for_all all_leaves l
  | Program.For _ -> false

(* Try to compile the leaf-only body [b] of innermost loop [l] into a
   macro plan: every access must be affine in the loop variable (any
   stride).  Returns [None] — generic fallback — otherwise. *)
let macro_plan_of vm slots ctx (l : Program.loop) (b : Program.stmt) :
    macro_plan option =
  let exception Fallback in
  try
    let rec flatten = function
      | Program.Block lst -> List.concat_map flatten lst
      | (Program.Store _ | Program.Reduce _) as s -> [ s ]
      | Program.For _ -> raise Fallback
    in
    let stmts = flatten b in
    if stmts = [] then raise Fallback;
    let v = l.Program.v in
    let stride_any a =
      match affine_stride slots a v with
      | Some s -> s
      | None -> raise Fallback
    in
    let vslot = var_slot vm l.Program.v in
    let pbases = ref [] in
    let hoist a =
      let pb =
        { pb_off = compile_offset vm slots a; pb_stride = stride_any a;
          pb_base = 0 }
      in
      pbases := pb :: !pbases;
      pb
    in
    (* Whole-loop runner from a per-iteration step; the loop variable's
       env slot tracks x for Pselect conditions. *)
    let generic_run (step : int -> unit) n =
      let env = ctx.env in
      for x = 0 to n - 1 do
        env.(vslot) <- x;
        step x
      done
    in
    let compile_leaf (s : Program.stmt) : macro_leaf =
      match s with
      | Program.Store (a, e) ->
          let fe = compile_value vm slots ctx pbases stride_any e in
          let spb = hoist a in
          let buf = ctx.bufs.(a.Program.slot) in
          let step x = buf.(spb.pb_base + (spb.pb_stride * x)) <- fe x in
          let run =
            match e with
            | Program.Pconst cst ->
                (* tile-init loops: one fill instead of n closure calls;
                   stride 0 degenerates to one (idempotent) write *)
                fun n ->
                  if spb.pb_stride = 1 then Array.fill buf spb.pb_base n cst
                  else buf.(spb.pb_base) <- cst
            | _ -> generic_run step
          in
          { ml_step = step; ml_run = run }
      | Program.Reduce (a, r, e) ->
          let astride = stride_any a in
          let apb = hoist a in
          let buf = ctx.bufs.(a.Program.slot) in
          let step, run =
            match e with
            | Program.Pbin (Sexpr.Bmul, Program.Pload la, Program.Pload lb)
              when r = Program.Rsum ->
                (* the multiply-accumulate kernel every conv/matmul
                   reduction lowers to: tight array loops with
                   loop-invariant operands hoisted when they cannot
                   alias the accumulator, 4x unrolled in the scalar-
                   accumulator case (single sequential chain preserved) *)
                let pba = hoist la and pbb = hoist lb in
                let ba = ctx.bufs.(la.Program.slot)
                and bb = ctx.bufs.(lb.Program.slot) in
                let sa = pba.pb_stride and sb = pbb.pb_stride in
                let alias_a = la.Program.slot = a.Program.slot
                and alias_b = lb.Program.slot = a.Program.slot in
                let step x =
                  let o = apb.pb_base + (astride * x) in
                  buf.(o) <-
                    buf.(o)
                    +. (ba.(pba.pb_base + (sa * x))
                       *. bb.(pbb.pb_base + (sb * x)))
                in
                let run n =
                  let oa = pba.pb_base
                  and ob = pbb.pb_base
                  and oc = apb.pb_base in
                  if astride = 0 && (not alias_a) && not alias_b then begin
                    let acc = ref buf.(oc) in
                    let n4 = n - (n land 3) in
                    (if sa = 0 then begin
                       let va = ba.(oa) in
                       let x = ref 0 in
                       while !x < n4 do
                         let o = ob + (sb * !x) in
                         acc := !acc +. (va *. bb.(o));
                         acc := !acc +. (va *. bb.(o + sb));
                         acc := !acc +. (va *. bb.(o + (2 * sb)));
                         acc := !acc +. (va *. bb.(o + (3 * sb)));
                         x := !x + 4
                       done;
                       for x = n4 to n - 1 do
                         acc := !acc +. (va *. bb.(ob + (sb * x)))
                       done
                     end
                     else if sb = 0 then begin
                       let vb = bb.(ob) in
                       let x = ref 0 in
                       while !x < n4 do
                         let o = oa + (sa * !x) in
                         acc := !acc +. (ba.(o) *. vb);
                         acc := !acc +. (ba.(o + sa) *. vb);
                         acc := !acc +. (ba.(o + (2 * sa)) *. vb);
                         acc := !acc +. (ba.(o + (3 * sa)) *. vb);
                         x := !x + 4
                       done;
                       for x = n4 to n - 1 do
                         acc := !acc +. (ba.(oa + (sa * x)) *. vb)
                       done
                     end
                     else begin
                       let x = ref 0 in
                       while !x < n4 do
                         let xa = oa + (sa * !x) and xb = ob + (sb * !x) in
                         acc := !acc +. (ba.(xa) *. bb.(xb));
                         acc := !acc +. (ba.(xa + sa) *. bb.(xb + sb));
                         acc := !acc +. (ba.(xa + (2 * sa)) *. bb.(xb + (2 * sb)));
                         acc := !acc +. (ba.(xa + (3 * sa)) *. bb.(xb + (3 * sb)));
                         x := !x + 4
                       done;
                       for x = n4 to n - 1 do
                         acc := !acc +. (ba.(oa + (sa * x)) *. bb.(ob + (sb * x)))
                       done
                     end);
                    buf.(oc) <- !acc
                  end
                  else if sa = 0 && not alias_a then begin
                    let va = ba.(oa) in
                    for x = 0 to n - 1 do
                      let o = oc + (astride * x) in
                      buf.(o) <- buf.(o) +. (va *. bb.(ob + (sb * x)))
                    done
                  end
                  else if sb = 0 && not alias_b then begin
                    let vb = bb.(ob) in
                    for x = 0 to n - 1 do
                      let o = oc + (astride * x) in
                      buf.(o) <- buf.(o) +. (ba.(oa + (sa * x)) *. vb)
                    done
                  end
                  else
                    for x = 0 to n - 1 do
                      let o = oc + (astride * x) in
                      buf.(o) <-
                        buf.(o)
                        +. (ba.(oa + (sa * x)) *. bb.(ob + (sb * x)))
                    done
                in
                (step, run)
            | _ ->
                let fe = compile_value vm slots ctx pbases stride_any e in
                let combine =
                  match r with
                  | Program.Rsum -> Float.add
                  | Program.Rmax -> Float.max
                in
                let step x =
                  let v = fe x in
                  let o = apb.pb_base + (astride * x) in
                  buf.(o) <- combine buf.(o) v
                in
                (step, generic_run step)
          in
          { ml_step = step; ml_run = run }
      | Program.For _ | Program.Block _ -> raise Fallback
    in
    let leaves = Array.of_list (List.map compile_leaf stmts) in
    Some { mp_pbases = Array.of_list !pbases; mp_leaves = leaves }
  with Fallback -> None

(* One execution of a macro group: refresh hoisted bases at x = 0, then
   run leaves.  Multi-leaf blocks interleave per iteration, since a later
   leaf may read what an earlier one wrote at the same iteration. *)
let make_macro_runner ctx st (plan : macro_plan) vslot n =
  let pbases = plan.mp_pbases and leaves = plan.mp_leaves in
  let n_pbases = Array.length pbases and n_leaves = Array.length leaves in
  fun () ->
    st.macro_runs <- st.macro_runs + 1;
    let env = ctx.env in
    env.(vslot) <- 0;
    for i = 0 to n_pbases - 1 do
      let pb = pbases.(i) in
      pb.pb_base <- pb.pb_off env
    done;
    if n_leaves = 1 then leaves.(0).ml_run n
    else
      for x = 0 to n - 1 do
        env.(vslot) <- x;
        for i = 0 to n_leaves - 1 do
          leaves.(i).ml_step x
        done
      done

(* ------------------------------------------------------------------ *)
(* Statement compilation and entry point                              *)
(* ------------------------------------------------------------------ *)

let compile_stmts ctx st vm (slots : Program.slot array)
    (body : Program.stmt) =
  let rec comp (s : Program.stmt) : unit -> unit =
    match s with
    | Program.For (l, b) -> (
        let vslot = var_slot vm l.Program.v in
        let n = l.Program.extent in
        let plan =
          if all_leaves b then macro_plan_of vm slots ctx l b else None
        in
        match plan with
        | Some plan ->
            st.macro_groups <- st.macro_groups + 1;
            make_macro_runner ctx st plan vslot n
        | None ->
            if all_leaves b then begin
              st.generic_groups <- st.generic_groups + 1;
              let fb = comp b in
              fun () ->
                st.generic_runs <- st.generic_runs + 1;
                let env = ctx.env in
                for x = 0 to n - 1 do
                  env.(vslot) <- x;
                  fb ()
                done
            end
            else
              let fb = comp b in
              fun () ->
                let env = ctx.env in
                for x = 0 to n - 1 do
                  env.(vslot) <- x;
                  fb ()
                done)
    | Program.Block lst ->
        let fs = List.map comp lst in
        fun () -> List.iter (fun f -> f ()) fs
    | Program.Store (a, e) ->
        let off = compile_offset vm slots a in
        let fe = compile_plain vm slots ctx e in
        let buf = ctx.bufs.(a.Program.slot) in
        fun () ->
          let v = fe ctx.env in
          let o = off ctx.env in
          buf.(o) <- v
    | Program.Reduce (a, r, e) ->
        let off = compile_offset vm slots a in
        let fe = compile_plain vm slots ctx e in
        let buf = ctx.bufs.(a.Program.slot) in
        let combine =
          match r with
          | Program.Rsum -> Float.add
          | Program.Rmax -> Float.max
        in
        fun () ->
          let v = fe ctx.env in
          let o = off ctx.env in
          buf.(o) <- combine buf.(o) v
  in
  comp body

(* ------------------------------------------------------------------ *)
(* Parallel driver (DESIGN.md §15)                                    *)
(* ------------------------------------------------------------------ *)

(* Leading [Parallel] loops of the nest — the band lower.ml puts at the
   root when [Schedule.parallel > 0]. *)
let rec peel_parallel acc = function
  | Program.For (l, b) when l.Program.kind = Program.Parallel ->
      peel_parallel (l :: acc) b
  | s -> (List.rev acc, s)

(* Disjointness legality: the peeled band may be chunked across domains
   iff for every buffer written anywhere in the nest, all accesses to it
   (reads and writes alike) land at offsets disjoint across distinct
   parallel index tuples.  Sufficient condition, per written slot:

   - every access offset is affine in every loop variable (under the
     loop bounds, which discharges the div/mod pairs tiling and fusing
     introduce), and all accesses to the slot share one profile: the
     same (variable -> aggregate element stride) map and the same
     constant-offset range;
   - the offset map is mixed-radix injective: listing the dimensions
     (|s_v|, extent_v) of every variable with nonzero stride sorted by
     |s| ascending, each must clear the reach of everything finer,
       |s_j| > W + sum_{i<j} |s_i| * (extent_i - 1)
     where W is the width of the constant-offset range (0 for plain
     affine accesses).  Injectivity over all variables jointly implies
     distinct parallel tuples touch disjoint footprints — the slices
     cannot meet.  This admits permuted/transposed/tiled layouts (their
     offset maps are exactly compact mixed radix);
   - every parallel variable of extent > 1 must carry a nonzero stride:
     a parallel-invariant write (a scalar reduction over the band, or a
     temp not indexed by it) would be carried across chunks, so it is
     rejected.  Sequential variables with stride 0 are fine — that is
     the per-element reduction chain, which stays inside one chunk.

   Reads of never-written slots are unconstrained (concurrent reads are
   fine), which is what admits pad/unfold input views. *)
let parallel_legal (p : Program.t) (par_loops : Program.loop list) : bool =
  let slots = p.Program.slots in
  let all_loops = ref [] in
  Program.iter_stmt
    (function
      | Program.For (l, _) -> all_loops := l :: !all_loops
      | _ -> ())
    p.Program.body;
  let all_loops = List.rev !all_loops in
  let extents : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (l : Program.loop) ->
      Hashtbl.replace extents (Var.id l.Program.v) l.Program.extent)
    all_loops;
  let bounds v =
    match Hashtbl.find_opt extents (Var.id v) with
    | Some e -> Some (0, e - 1)
    | None -> None
  in
  let written : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  Program.iter_stmt
    (function
      | Program.Store (a, _) | Program.Reduce (a, _, _) ->
          Hashtbl.replace written a.Program.slot ()
      | _ -> ())
    p.Program.body;
  let exception Illegal in
  (* Profile of one access: (var id -> aggregate element stride) sorted
     assoc + constant-offset range. *)
  let profile (a : Program.access) : (int * int) list * int * int =
    let strides = Layout.phys_strides slots.(a.Program.slot).Program.layout in
    let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let lo = ref 0 and hi = ref 0 in
    Array.iteri
      (fun i e ->
        let s = strides.(i) in
        let resid = ref e in
        List.iter
          (fun (l : Program.loop) ->
            match Ixexpr.coeff_of ~bounds !resid l.Program.v with
            | None -> raise Illegal
            | Some 0 -> ()
            | Some c -> (
                (match Ixexpr.drop_var ~bounds !resid l.Program.v with
                | None -> raise Illegal
                | Some r -> resid := r);
                let vid = Var.id l.Program.v in
                let prev =
                  match Hashtbl.find_opt tbl vid with Some x -> x | None -> 0
                in
                Hashtbl.replace tbl vid (prev + (c * s))))
          all_loops;
        match Ixexpr.range ~bounds !resid with
        | None -> raise Illegal
        | Some (rlo, rhi) ->
            (* physical strides are nonnegative *)
            lo := !lo + (rlo * s);
            hi := !hi + (rhi * s))
      a.Program.idx;
    let entries =
      Hashtbl.fold (fun vid s acc -> (vid, s) :: acc) tbl []
      |> List.filter (fun (_, s) -> s <> 0)
      |> List.sort compare
    in
    (entries, !lo, !hi)
  in
  (* Group every access to a written slot. *)
  let by_slot : (int, Program.access list ref) Hashtbl.t = Hashtbl.create 4 in
  let add (a : Program.access) =
    if Hashtbl.mem written a.Program.slot then
      match Hashtbl.find_opt by_slot a.Program.slot with
      | Some r -> r := a :: !r
      | None -> Hashtbl.replace by_slot a.Program.slot (ref [ a ])
  in
  Program.iter_stmt
    (function
      | Program.Store (a, e) ->
          add a;
          List.iter add (Program.expr_accesses e)
      | Program.Reduce (a, _, e) ->
          add a;
          List.iter add (Program.expr_accesses e)
      | _ -> ())
    p.Program.body;
  let slot_ok _slot (accs : Program.access list ref) =
    match !accs with
    | [] -> ()
    | a0 :: rest ->
        let prof0 = profile a0 in
        List.iter (fun a -> if profile a <> prof0 then raise Illegal) rest;
        let entries, lo, hi = prof0 in
        (* every extent > 1 parallel var must appear with nonzero stride *)
        List.iter
          (fun (l : Program.loop) ->
            if
              l.Program.extent > 1
              && not (List.mem_assoc (Var.id l.Program.v) entries)
            then raise Illegal)
          par_loops;
        let dims =
          List.filter_map
            (fun (vid, s) ->
              match Hashtbl.find_opt extents vid with
              | Some e when e > 1 -> Some (abs s, e)
              | _ -> None)
            entries
          |> List.sort compare
        in
        let reach = ref (hi - lo) in
        List.iter
          (fun (s, e) ->
            if s <= !reach then raise Illegal;
            reach := !reach + (s * (e - 1)))
          dims
  in
  try
    Hashtbl.iter slot_ok by_slot;
    true
  with Illegal -> false

let compile ?(domains = 1) (p : Program.t) ~(bufs : float array array) : t =
  if Array.length bufs <> Array.length p.Program.slots then
    invalid_arg "Kernel.compile: buffer count mismatch";
  Array.iteri
    (fun i b ->
      let want =
        Layout.num_physical_elements p.Program.slots.(i).Program.layout
      in
      if Array.length b <> want then
        invalid_arg
          (Fmt.str "Kernel.compile: slot %d (%s) has %d elements, want %d" i
             p.Program.slots.(i).Program.sname (Array.length b) want))
    bufs;
  if domains < 1 then invalid_arg "Kernel.compile: domains must be >= 1";
  let ctx = { env = [||]; bufs } in
  let st =
    {
      macro_groups = 0;
      generic_groups = 0;
      macro_runs = 0;
      generic_runs = 0;
      par_chunks = 0;
      par_fallbacks = 0;
    }
  in
  let vm = { tbl = Hashtbl.create 64; next = 0 } in
  let serial = compile_stmts ctx st vm p.Program.slots p.Program.body in
  ctx.env <- Array.make (max 1 vm.next) 0;
  let par_loops, inner = peel_parallel [] p.Program.body in
  if domains = 1 then { prog = p; bufs; run = serial; stats = st; par_ms = [||] }
  else if par_loops = [] || not (parallel_legal p par_loops) then begin
    (* requested parallel execution but cannot engage: loud, not silent *)
    st.par_fallbacks <- 1;
    { prog = p; bufs; run = serial; stats = st; par_ms = [||] }
  end
  else begin
    let extents =
      Array.of_list (List.map (fun l -> l.Program.extent) par_loops)
    in
    let k = Array.length extents in
    let total = Array.fold_left ( * ) 1 extents in
    let nchunks = min domains (max 1 total) in
    let team = Team.get ~domains in
    (* One compiled copy of the inner nest per chunk — own env, own vm,
       own hoisted bases, own run counters — so chunks share nothing but
       the buffers.  Copy selection is by chunk index, not by worker
       domain, so counters and outputs are scheduling-independent. *)
    let copies =
      Array.init nchunks (fun _ ->
          let cctx = { env = [||]; bufs } in
          let cst =
            {
              macro_groups = 0;
              generic_groups = 0;
              macro_runs = 0;
              generic_runs = 0;
              par_chunks = 0;
              par_fallbacks = 0;
            }
          in
          let cvm = { tbl = Hashtbl.create 64; next = 0 } in
          let body = compile_stmts cctx cst cvm p.Program.slots inner in
          let pslots =
            Array.of_list
              (List.map (fun l -> var_slot cvm l.Program.v) par_loops)
          in
          cctx.env <- Array.make (max 1 cvm.next) 0;
          (cctx, cst, body, pslots))
    in
    let par_ms = Array.make nchunks 0.0 in
    let run_chunk c =
      let cctx, _, body, pslots = copies.(c) in
      let lo = c * total / nchunks and hi = (c + 1) * total / nchunks in
      let t0 = Unix.gettimeofday () in
      for pt = lo to hi - 1 do
        (* row-major decode of the flat parallel point into the band;
           ascending flat order = the serial nest's visit order *)
        let rem = ref pt in
        let env = cctx.env in
        for d = k - 1 downto 0 do
          env.(pslots.(d)) <- !rem mod extents.(d);
          rem := !rem / extents.(d)
        done;
        body ()
      done;
      par_ms.(c) <- (Unix.gettimeofday () -. t0) *. 1e3
    in
    let run () =
      Team.parallel_for team ~chunks:nchunks run_chunk;
      st.par_chunks <- st.par_chunks + nchunks;
      Array.iter
        (fun ((_, cst, _, _) : ctx * stats * (unit -> unit) * int array) ->
          st.macro_runs <- st.macro_runs + cst.macro_runs;
          st.generic_runs <- st.generic_runs + cst.generic_runs;
          cst.macro_runs <- 0;
          cst.generic_runs <- 0)
        copies
    in
    { prog = p; bufs; run; stats = st; par_ms }
  end

let reset_non_inputs (k : t) =
  Array.iteri
    (fun i (s : Program.slot) ->
      if s.Program.role <> Program.Input then
        Array.fill k.bufs.(i) 0 (Array.length k.bufs.(i)) 0.0)
    k.prog.Program.slots
