(* Exec-backend measurement (DESIGN.md §12).

   Compile once outside timing; re-zero non-input buffers before every
   run (Reduce accumulates — reruns over dirty outputs would compute
   garbage and, worse, *different* garbage per repeat); time only the
   kernel invocation.  Median-of-repeats is the reported latency:
   robust to the one-off scheduling hiccups that plague wall-clock
   microbenchmarks.

   The Virtual clock exists for determinism: fault-injection and
   checkpoint tests need exec-backend measurements that are a pure
   function of the candidate, byte-identical across runs and pool
   orders.  Under Virtual the kernel executes exactly once (outputs are
   still produced and checked), and every "sample" is [f prog]. *)

module Program = Alt_ir.Program
module Metrics = Alt_obs.Metrics
module Trace = Alt_obs.Trace
module Json = Alt_obs.Json

type clock = Wall | Virtual of (Program.t -> float)
type cfg = { warmup : int; repeats : int; clock : clock; domains : int }

let default_cfg = { warmup = 2; repeats = 5; clock = Wall; domains = 1 }

type wall = {
  median_ms : float;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  samples : float array;
  macro_groups : int;
  generic_groups : int;
  par_chunks : int;
  par_fallbacks : int;
  imbalance_pct : float;
}

(* Observability: counters are cheap and domain-safe; the histograms are
   only touched from the measuring (tuning) domain. *)
let m_compiles = Metrics.counter "exec.compiles"
let m_runs = Metrics.counter "exec.runs"
let m_macro_groups = Metrics.counter "exec.macro_groups"
let m_generic_groups = Metrics.counter "exec.generic_groups"
let m_par_chunks = Metrics.counter "exec.parallel.chunks"
let m_par_fallbacks = Metrics.counter "exec.parallel.fallbacks"

let h_wall =
  Metrics.histogram "exec.wall_ms"
    ~buckets:[ 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 ]

let h_imbalance =
  Metrics.histogram "exec.parallel.imbalance_pct"
    ~buckets:[ 1.0; 5.0; 10.0; 25.0; 50.0; 100.0 ]

let median sorted =
  let n = Array.length sorted in
  if n land 1 = 1 then sorted.(n / 2)
  else 0.5 *. (sorted.((n / 2) - 1) +. sorted.(n / 2))

(* Load imbalance of the latest parallel run: how much slower the
   slowest chunk was than the mean, in percent.  0 when serial (or when
   the run was too fast for the clock to resolve). *)
let imbalance_of (k : Kernel.t) =
  let ms = k.Kernel.par_ms in
  let n = Array.length ms in
  if n = 0 then 0.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 ms in
    let mx = Array.fold_left Float.max 0.0 ms in
    let mean = sum /. float_of_int n in
    if mean <= 0.0 then 0.0 else (mx -. mean) /. mean *. 100.0
  end

let summarize (k : Kernel.t) samples =
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  {
    median_ms = median sorted;
    mean_ms = sum /. float_of_int n;
    min_ms = sorted.(0);
    max_ms = sorted.(n - 1);
    samples;
    macro_groups = k.Kernel.stats.Kernel.macro_groups;
    generic_groups = k.Kernel.stats.Kernel.generic_groups;
    par_chunks = k.Kernel.stats.Kernel.par_chunks;
    par_fallbacks = k.Kernel.stats.Kernel.par_fallbacks;
    imbalance_pct = imbalance_of k;
  }

let measure_inner cfg prog ~bufs =
  let k = Kernel.compile ~domains:cfg.domains prog ~bufs in
  let samples =
    match cfg.clock with
    | Virtual f ->
        (* one real execution for the outputs; pseudo-time for the rest *)
        Kernel.reset_non_inputs k;
        k.Kernel.run ();
        Array.make cfg.repeats (f prog)
    | Wall ->
        for _ = 1 to cfg.warmup do
          Kernel.reset_non_inputs k;
          k.Kernel.run ()
        done;
        Array.init cfg.repeats (fun _ ->
            Kernel.reset_non_inputs k;
            let t0 = Unix.gettimeofday () in
            k.Kernel.run ();
            let t1 = Unix.gettimeofday () in
            (t1 -. t0) *. 1e3)
  in
  let w = summarize k samples in
  if Metrics.enabled () then begin
    Metrics.incr m_compiles;
    Metrics.add m_runs
      (match cfg.clock with
      | Virtual _ -> 1
      | Wall -> cfg.warmup + cfg.repeats);
    Metrics.add m_macro_groups w.macro_groups;
    Metrics.add m_generic_groups w.generic_groups;
    Metrics.add m_par_chunks w.par_chunks;
    Metrics.add m_par_fallbacks w.par_fallbacks;
    if w.par_chunks > 0 then Metrics.observe h_imbalance w.imbalance_pct;
    Metrics.observe h_wall w.median_ms
  end;
  w

let measure ?(cfg = default_cfg) prog ~bufs =
  if cfg.repeats < 1 then invalid_arg "Exec.measure: repeats < 1";
  if cfg.warmup < 0 then invalid_arg "Exec.measure: warmup < 0";
  if cfg.domains < 1 then invalid_arg "Exec.measure: domains < 1";
  if Trace.enabled () then
    Trace.with_span "exec.measure"
      ~attrs:
        ([
           ("program", Json.String prog.Program.pname);
           ("repeats", Json.Int cfg.repeats);
           ( "clock",
             Json.String
               (match cfg.clock with Wall -> "wall" | Virtual _ -> "virtual") );
         ]
        (* only when engaged, so default traces stay byte-identical *)
        @ if cfg.domains > 1 then [ ("domains", Json.Int cfg.domains) ] else [])
      (fun () -> measure_inner cfg prog ~bufs)
  else measure_inner cfg prog ~bufs

let spread w =
  if w.median_ms <= 0.0 then 0.0
  else (w.max_ms -. w.min_ms) /. w.median_ms
