(* Exec-backend measurement (DESIGN.md §12).

   Compile once outside timing; re-zero non-input buffers before every
   run (Reduce accumulates — reruns over dirty outputs would compute
   garbage and, worse, *different* garbage per repeat); time only the
   kernel invocation.  Median-of-repeats is the reported latency:
   robust to the one-off scheduling hiccups that plague wall-clock
   microbenchmarks.

   The Virtual clock exists for determinism: fault-injection and
   checkpoint tests need exec-backend measurements that are a pure
   function of the candidate, byte-identical across runs and pool
   orders.  Under Virtual the kernel executes exactly once (outputs are
   still produced and checked), and every "sample" is [f prog]. *)

module Program = Alt_ir.Program
module Metrics = Alt_obs.Metrics
module Trace = Alt_obs.Trace
module Json = Alt_obs.Json

type clock = Wall | Virtual of (Program.t -> float)
type cfg = { warmup : int; repeats : int; clock : clock }

let default_cfg = { warmup = 2; repeats = 5; clock = Wall }

type wall = {
  median_ms : float;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  samples : float array;
  macro_groups : int;
  generic_groups : int;
}

(* Observability: counters are cheap and domain-safe; the histogram is
   only touched from the measuring (tuning) domain. *)
let m_compiles = Metrics.counter "exec.compiles"
let m_runs = Metrics.counter "exec.runs"
let m_macro_groups = Metrics.counter "exec.macro_groups"
let m_generic_groups = Metrics.counter "exec.generic_groups"

let h_wall =
  Metrics.histogram "exec.wall_ms"
    ~buckets:[ 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 ]

let median sorted =
  let n = Array.length sorted in
  if n land 1 = 1 then sorted.(n / 2)
  else 0.5 *. (sorted.((n / 2) - 1) +. sorted.(n / 2))

let summarize (k : Kernel.t) samples =
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  {
    median_ms = median sorted;
    mean_ms = sum /. float_of_int n;
    min_ms = sorted.(0);
    max_ms = sorted.(n - 1);
    samples;
    macro_groups = k.Kernel.stats.Kernel.macro_groups;
    generic_groups = k.Kernel.stats.Kernel.generic_groups;
  }

let measure_inner cfg prog ~bufs =
  let k = Kernel.compile prog ~bufs in
  let samples =
    match cfg.clock with
    | Virtual f ->
        (* one real execution for the outputs; pseudo-time for the rest *)
        Kernel.reset_non_inputs k;
        k.Kernel.run ();
        Array.make cfg.repeats (f prog)
    | Wall ->
        for _ = 1 to cfg.warmup do
          Kernel.reset_non_inputs k;
          k.Kernel.run ()
        done;
        Array.init cfg.repeats (fun _ ->
            Kernel.reset_non_inputs k;
            let t0 = Unix.gettimeofday () in
            k.Kernel.run ();
            let t1 = Unix.gettimeofday () in
            (t1 -. t0) *. 1e3)
  in
  let w = summarize k samples in
  if Metrics.enabled () then begin
    Metrics.incr m_compiles;
    Metrics.add m_runs
      (match cfg.clock with
      | Virtual _ -> 1
      | Wall -> cfg.warmup + cfg.repeats);
    Metrics.add m_macro_groups w.macro_groups;
    Metrics.add m_generic_groups w.generic_groups;
    Metrics.observe h_wall w.median_ms
  end;
  w

let measure ?(cfg = default_cfg) prog ~bufs =
  if cfg.repeats < 1 then invalid_arg "Exec.measure: repeats < 1";
  if cfg.warmup < 0 then invalid_arg "Exec.measure: warmup < 0";
  if Trace.enabled () then
    Trace.with_span "exec.measure"
      ~attrs:
        [
          ("program", Json.String prog.Program.pname);
          ("repeats", Json.Int cfg.repeats);
          ( "clock",
            Json.String
              (match cfg.clock with Wall -> "wall" | Virtual _ -> "virtual") );
        ]
      (fun () -> measure_inner cfg prog ~bufs)
  else measure_inner cfg prog ~bufs

let spread w =
  if w.median_ms <= 0.0 then 0.0
  else (w.max_ms -. w.min_ms) /. w.median_ms
