(* Rank correlation (Spearman rho, Kendall tau-b) for sim-vs-exec
   cross-validation.  Candidate sets are a few dozen points, so the
   O(n^2) tau is fine and numerical care stops at using sums of floats
   over small n. *)

let ranks (xs : float array) : float array =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    (* average 1-based rank over the tie block [i..j] *)
    let avg = ((float_of_int !i +. float_of_int !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let pearson (a : float array) (b : float array) : float =
  let n = Array.length a in
  if n < 2 || Array.length b <> n then Float.nan
  else begin
    let fn = float_of_int n in
    let mean xs = Array.fold_left ( +. ) 0.0 xs /. fn in
    let ma = mean a and mb = mean b in
    let sab = ref 0.0 and saa = ref 0.0 and sbb = ref 0.0 in
    for i = 0 to n - 1 do
      let da = a.(i) -. ma and db = b.(i) -. mb in
      sab := !sab +. (da *. db);
      saa := !saa +. (da *. da);
      sbb := !sbb +. (db *. db)
    done;
    if !saa = 0.0 || !sbb = 0.0 then Float.nan
    else !sab /. sqrt (!saa *. !sbb)
  end

let spearman a b =
  if Array.length a <> Array.length b then Float.nan
  else pearson (ranks a) (ranks b)

let kendall (a : float array) (b : float array) : float =
  let n = Array.length a in
  if n < 2 || Array.length b <> n then Float.nan
  else begin
    let concordant = ref 0 and discordant = ref 0 in
    let ties_a = ref 0 and ties_b = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let da = Float.compare a.(i) a.(j)
        and db = Float.compare b.(i) b.(j) in
        if da = 0 && db = 0 then ()
        else if da = 0 then incr ties_a
        else if db = 0 then incr ties_b
        else if da * db > 0 then incr concordant
        else incr discordant
      done
    done;
    let c = float_of_int !concordant and d = float_of_int !discordant in
    let n1 = c +. d +. float_of_int !ties_a
    and n2 = c +. d +. float_of_int !ties_b in
    if n1 = 0.0 || n2 = 0.0 then Float.nan
    else (c -. d) /. sqrt (n1 *. n2)
  end
