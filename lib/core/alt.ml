(* ALT — joint data-layout and loop auto-tuning for deep learning
   compilation (reproduction of Xu et al., EuroSys 2023).

   This module is the public facade: it re-exports the stable API of every
   subsystem and provides the two entry points most users need —
   [tune_operator] for a single tensor operator and [compile_model] for an
   end-to-end computational graph. *)

(* --- substrate: tensors, layouts, symbolic indices --- *)
module Var = Alt_tensor.Var
module Shape = Alt_tensor.Shape
module Ixexpr = Alt_tensor.Ixexpr
module Layout = Alt_tensor.Layout
module Buffer = Alt_tensor.Buffer

(* --- operator IR and lowering --- *)
module Sexpr = Alt_ir.Sexpr
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Program = Alt_ir.Program
module Lower = Alt_ir.Lower

(* --- graphs, propagation, compilation --- *)
module Ops = Alt_graph.Ops
module Graph = Alt_graph.Graph
module Propagate = Alt_graph.Propagate
module Placement = Alt_graph.Placement
module Compile = Alt_graph.Compile

(* --- machine models and profiling --- *)
module Machine = Alt_machine.Machine
module Cache = Alt_machine.Cache
module Profiler = Alt_machine.Profiler
module Runtime = Alt_machine.Runtime

(* exec backend: compiled macro-kernels + wall-clock measurement *)
module Kernel = Alt_exec.Kernel
module Exec = Alt_exec.Exec
module Rankcorr = Alt_exec.Rankcorr

(* --- measurement parallelism and fault tolerance --- *)
module Pool = Alt_parallel.Pool
module Fault = Alt_faults.Fault

module Json = Alt_obs.Json
module Metrics = Alt_obs.Metrics
module Trace = Alt_obs.Trace
module Tracecheck = Alt_obs.Tracecheck

(* --- learning components --- *)
module Features = Alt_costmodel.Features
module Gbdt = Alt_costmodel.Gbdt
module Mlp = Alt_rl.Mlp
module Ppo = Alt_rl.Ppo

(* --- auto-tuning --- *)
module Templates = Alt_tuner.Templates
module Loopspace = Alt_tuner.Loopspace
module Measure = Alt_tuner.Measure
module Checkpoint = Alt_tuner.Checkpoint
module Tuner = Alt_tuner.Tuner
module Taskset = Alt_tuner.Taskset
module Scheduler = Alt_tuner.Scheduler
module Graph_tuner = Alt_tuner.Graph_tuner

(* --- tuning-as-a-service daemon --- *)
module Workload = Alt_serve.Workload
module Proto = Alt_serve.Proto
module Store = Alt_serve.Store
module Session = Alt_serve.Session
module Serve = Alt_serve.Serve
module Daemon = Alt_serve.Daemon

(* --- model zoo --- *)
module Zoo = Alt_models.Zoo

(** Jointly tune layouts and loops of a single operator with ALT's
    two-stage tuner.  [budget] counts simulated on-device measurements;
    30% goes to the joint stage and 70% to the loop-only stage, as in the
    paper's single-operator setup.  [jobs] parallelizes the measurements
    without changing the result (see DESIGN.md §7).  [faults]/[retries]
    configure fault injection and recovery, [checkpoint]/[resume] the
    round journal (see DESIGN.md §8). *)
let tune_operator ?(machine = Machine.intel_cpu) ?(budget = 200)
    ?(max_points = 40_000) ?seed ?jobs ?levels ?faults ?retries
    ?watchdog_points ?backend ?warm_start ?checkpoint ?resume (op : Opdef.t) :
    Tuner.result =
  let task =
    Measure.make_task ~machine ~max_points ?faults ?retries ?watchdog_points
      ?backend op
  in
  Tuner.tune_alt ?seed ?jobs ?levels ?warm_start ?checkpoint ?resume
    ~joint_budget:(budget * 3 / 10)
    ~loop_budget:(budget * 7 / 10)
    task

(** Tune and compile an end-to-end model.  [scheduler] routes the tuning
    through the gradient task scheduler (DESIGN.md §14) instead of the
    default fixed per-task budget split. *)
let compile_model ?(system = Graph_tuner.Galt) ?(machine = Machine.intel_cpu)
    ?(budget = 400) ?max_points ?seed ?jobs ?levels ?faults ?retries
    ?backend ?warm_start ?scheduler (g : Graph.t) : Graph_tuner.tuned_graph =
  Graph_tuner.tune_graph ?seed ?jobs ?levels ?max_points ?faults ?retries
    ?backend ?warm_start ?scheduler ~system ~machine ~budget g

(** Tune a whole zoo of named models under one global trial budget with
    the gradient task scheduler (DESIGN.md §14), sharing tuning runs and
    cost models across structurally identical tasks. *)
let tune_zoo ?(system = Graph_tuner.Galt) ?(machine = Machine.intel_cpu)
    ?(budget = 400) ?(policy = Scheduler.Gradient) ?max_points ?seed ?jobs
    ?levels ?faults ?retries ?backend ?warm_start ?transfer
    (graphs : (string * Graph.t) list) :
    Scheduler.report * (string * Graph_tuner.tuned_graph) list =
  Graph_tuner.tune_models ?seed ?jobs ?levels ?max_points ?faults ?retries
    ?backend ?warm_start ?transfer ~policy ~system ~machine ~budget graphs

(** Execute a tuned model on its machine model and report the simulated
    end-to-end latency. *)
let run_model ?max_points (tg : Graph_tuner.tuned_graph)
    ~(machine : Machine.t) : Compile.exec_result =
  Graph_tuner.run ?max_points tg ~machine

let version = "0.1.0"
