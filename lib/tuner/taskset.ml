(* Task extraction and cross-model deduplication (DESIGN.md §14).

   A tuning task is a complex operator together with the elementwise chain
   that will fuse after it.  Structurally identical tasks — same operator
   signature, wherever they appear in whichever model — share one tuning
   run; [of_graphs] walks a whole zoo and returns the unique tasks in
   first-seen order, with per-model occurrence counts so the scheduler can
   weigh a task by its total latency contribution across the zoo. *)

module Shape = Alt_tensor.Shape
module Opdef = Alt_ir.Opdef
module Graph = Alt_graph.Graph

(* Structural signature of a tuning task for deduplication. *)
let signature (op : Opdef.t) (fused : Opdef.t list) : string =
  let kind_tag =
    match op.Opdef.kind with
    | Opdef.Conv c ->
        Fmt.str "conv:%s"
          (String.concat ","
             (List.map
                (fun (s : Opdef.conv_spatial) ->
                  Fmt.str "%d.%d.%d" s.Opdef.kernel s.Opdef.stride
                    s.Opdef.dilation)
                c.spatials))
    | Opdef.Matmul m -> if m.batched then "bmm" else "gmm"
    | Opdef.Simple -> "simple"
  in
  Fmt.str "%s|out=%a|in=%s|chain=%d" kind_tag Shape.pp op.Opdef.out_shape
    (String.concat ";"
       (List.map (fun (_, s) -> Shape.to_string s) op.Opdef.inputs))
    (List.length fused)

(* The elementwise chain that can fuse after [node] (structural: single
   consumer, Assign, same shape, not complex). *)
let fusable_chain (g : Graph.t) (node : Graph.node) : Graph.node list =
  let rec walk acc cur =
    match Graph.consumers g cur with
    | [ c ]
      when c.Graph.op.Opdef.combiner = Opdef.Assign
           && (not c.Graph.op.Opdef.complex)
           && Shape.equal c.Graph.op.Opdef.out_shape
                node.Graph.op.Opdef.out_shape ->
        walk (acc @ [ c ]) c.Graph.op.Opdef.out_name
    | _ -> acc
  in
  walk [] node.Graph.op.Opdef.out_name

(* Coarser than [signature]: shapes are dropped so e.g. all stride-1 3x3
   convolutions share a key regardless of channel counts.  The feature
   space is a fixed [Features.dim]-wide vector for every operator, so a
   donated ensemble always types; the key just restricts donation to
   tasks whose latency structure is close enough for the transferred
   trees to rank candidates usefully. *)
let transfer_key (op : Opdef.t) : string =
  let kind_tag =
    match op.Opdef.kind with
    | Opdef.Conv c ->
        Fmt.str "conv:%s"
          (String.concat ","
             (List.map
                (fun (s : Opdef.conv_spatial) ->
                  Fmt.str "%d.%d.%d" s.Opdef.kernel s.Opdef.stride
                    s.Opdef.dilation)
                c.spatials))
    | Opdef.Matmul m -> if m.batched then "bmm" else "gmm"
    | Opdef.Simple -> "simple"
  in
  Fmt.str "%s|rank=%d|nred=%d" kind_tag
    (Shape.rank op.Opdef.out_shape)
    (List.length op.Opdef.reduce)

type entry = {
  signature : string;
  node : Graph.node; (* representative node (first seen) *)
  chain : Graph.node list; (* its fusable elementwise chain *)
  occurrences : (string * int) list;
      (* model name -> how many nodes this task covers there *)
}

let occurrences_total (e : entry) =
  List.fold_left (fun a (_, c) -> a + c) 0 e.occurrences

let of_graph (g : Graph.t) : entry list =
  let uniq : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (n : Graph.node) ->
      let chain = fusable_chain g n in
      let s = signature n.Graph.op (List.map (fun c -> c.Graph.op) chain) in
      if not (Hashtbl.mem uniq s) then begin
        Hashtbl.replace uniq s ();
        order := { signature = s; node = n; chain; occurrences = [] } :: !order
      end)
    (Graph.complex_nodes g);
  List.rev !order

let of_graphs (graphs : (string * Graph.t) list) : entry list =
  (* first-seen order across the zoo; occurrence counts accumulated per
     model, model order within an entry following the zoo order *)
  let uniq : (string, entry ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (model, g) ->
      List.iter
        (fun (n : Graph.node) ->
          let chain = fusable_chain g n in
          let s =
            signature n.Graph.op (List.map (fun c -> c.Graph.op) chain)
          in
          let e =
            match Hashtbl.find_opt uniq s with
            | Some e -> e
            | None ->
                let e =
                  ref { signature = s; node = n; chain; occurrences = [] }
                in
                Hashtbl.replace uniq s e;
                order := e :: !order;
                e
          in
          let occ = !e.occurrences in
          let occurrences =
            match List.assoc_opt model occ with
            | None -> occ @ [ (model, 1) ]
            | Some c ->
                List.map
                  (fun (m, k) -> if m = model then (m, c + 1) else (m, k))
                  occ
          in
          e := { !e with occurrences })
        (Graph.complex_nodes g))
    graphs;
  List.rev_map (fun e -> !e) !order
