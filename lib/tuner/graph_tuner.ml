(* End-to-end graph tuning (paper Sections 6 and 7.2).

   The joint stage tunes each complex operator sequentially in topological
   order; identical tasks (same operator signature) are deduplicated and
   share one tuning run, and the total measurement budget is split across
   the unique tasks.  Each task is tuned *together with* the elementwise
   chain that will be fused after it, so fusion conflicts are visible to
   the tuner.  The resulting per-operator layout choices are propagated
   (Algorithm 1), conversions are inserted where the constraints demand,
   and the compiled graph is executed for the end-to-end latency. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Machine = Alt_machine.Machine
module Graph = Alt_graph.Graph
module Propagate = Alt_graph.Propagate
module Compile = Alt_graph.Compile

type gsystem =
  | Gvendor
  | Gautotvm
  | Gansor
  | Galt
  | Galt_ol (* no joint stage; fixed channels-last layouts; fusion on *)
  | Galt_wp (* joint tuning but only adjacent propagation; fusion lost *)

let gsystem_name = function
  | Gvendor -> "vendor"
  | Gautotvm -> "autotvm"
  | Gansor -> "ansor"
  | Galt -> "alt"
  | Galt_ol -> "alt-ol"
  | Galt_wp -> "alt-wp"

(* Structural signature of a tuning task for deduplication. *)
let signature (op : Opdef.t) (fused : Opdef.t list) : string =
  let kind_tag =
    match op.Opdef.kind with
    | Opdef.Conv c ->
        Fmt.str "conv:%s"
          (String.concat ","
             (List.map
                (fun (s : Opdef.conv_spatial) ->
                  Fmt.str "%d.%d.%d" s.Opdef.kernel s.Opdef.stride s.Opdef.dilation)
                c.spatials))
    | Opdef.Matmul m -> if m.batched then "bmm" else "gmm"
    | Opdef.Simple -> "simple"
  in
  Fmt.str "%s|out=%a|in=%s|chain=%d" kind_tag Shape.pp op.Opdef.out_shape
    (String.concat ";"
       (List.map (fun (_, s) -> Shape.to_string s) op.Opdef.inputs))
    (List.length fused)

(* The elementwise chain that can fuse after [node] (structural: single
   consumer, Assign, same shape, not complex). *)
let fusable_chain (g : Graph.t) (node : Graph.node) : Graph.node list =
  let rec walk acc cur =
    match Graph.consumers g cur with
    | [ c ]
      when c.Graph.op.Opdef.combiner = Opdef.Assign
           && (not c.Graph.op.Opdef.complex)
           && Shape.equal c.Graph.op.Opdef.out_shape
                node.Graph.op.Opdef.out_shape ->
        walk (acc @ [ c ]) c.Graph.op.Opdef.out_name
    | _ -> acc
  in
  walk [] node.Graph.op.Opdef.out_name

type tuned_graph = {
  system : gsystem;
  compiled : Compile.compiled;
  choices : (string * Propagate.choice) list;
  schedules : (string * Schedule.t) list;
  tasks_tuned : int;
  measurements : int;
  per_task : (string * Tuner.result) list;
}

let tune_graph ?(seed = 0) ?(jobs = 1) ?(levels = 1) ?(max_points = 30_000)
    ?faults ?retries ?fast ?memo ?backend ?warm_start ~(system : gsystem)
    ~(machine : Machine.t) ~(budget : int) (g : Graph.t) : tuned_graph =
  Alt_obs.Trace.with_span "graph_tuner.tune_graph" @@ fun () ->
  let complex = Graph.complex_nodes g in
  (* deduplicate by signature *)
  let uniq : (string, Graph.node * Graph.node list) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (n : Graph.node) ->
      let chain = fusable_chain g n in
      let s = signature n.Graph.op (List.map (fun c -> c.Graph.op) chain) in
      if not (Hashtbl.mem uniq s) then begin
        Hashtbl.replace uniq s (n, chain);
        order := s :: !order
      end)
    complex;
  let sigs = List.rev !order in
  let per_task_budget = max 8 (budget / max 1 (List.length sigs)) in
  (* propagation mode: ALT-WP loses fusion, so tune without the chain *)
  let mode =
    match system with Galt_wp -> Propagate.Adjacent | _ -> Propagate.Full
  in
  let tuned : (string, Tuner.result) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let node, chain = Hashtbl.find uniq s in
      let fused_ops =
        match mode with
        | Propagate.Adjacent | Propagate.Off -> []
        | Propagate.Full -> List.map (fun (c : Graph.node) -> c.Graph.op) chain
      in
      let task =
        Measure.make_task ~fused:fused_ops ~max_points ?faults ?retries
          ?fast ?memo ?backend ~machine node.Graph.op
      in
      let tune_task () =
        match system with
        | Gvendor ->
            Tuner.tune_op ~seed ~jobs ~system:Tuner.Vendor
              ~budget:per_task_budget task
        | Gautotvm ->
            (* NeoCPU-style: fixed blocked layout, restricted loop space *)
            Tuner.tune_loop_only ~seed ~jobs ?warm_start
              ~explorer:Tuner.Restricted ~budget:per_task_budget
              ~layouts:
                [
                  Templates.blocked_choice node.Graph.op
                    ~block:(2 * machine.Machine.lanes);
                ]
              task
        | Gansor ->
            Tuner.tune_loop_only ~seed ~jobs ?warm_start
              ~explorer:Tuner.Guided ~budget:per_task_budget
              ~layouts:
                [
                  Templates.blocked_choice node.Graph.op
                    ~block:(2 * machine.Machine.lanes);
                ]
              task
        | Galt_ol ->
            Tuner.tune_loop_only ~seed ~jobs ?warm_start
              ~explorer:Tuner.Guided ~budget:per_task_budget
              ~layouts:[ Templates.channels_last_choice node.Graph.op ]
              task
        | Galt | Galt_wp ->
            Tuner.tune_alt ~seed ~jobs ~levels ?warm_start
              ~joint_budget:(per_task_budget * 4 / 10)
              ~loop_budget:(per_task_budget * 6 / 10)
              task
      in
      let r =
        if Alt_obs.Trace.enabled () then
          Alt_obs.Trace.with_span "graph_tuner.task"
            ~attrs:[ ("signature", Alt_obs.Json.String s) ]
            tune_task
        else tune_task ()
      in
      (* fold the finished task's stats into the metrics registry; the CLI
         and the metrics file then report totals across all graph tasks *)
      Measure.publish_obs task;
      Hashtbl.replace tuned s r)
    sigs;
  (* assemble choices and schedules for every complex node *)
  let choices = ref [] and schedules = ref [] in
  List.iter
    (fun (n : Graph.node) ->
      let chain = fusable_chain g n in
      let s = signature n.Graph.op (List.map (fun c -> c.Graph.op) chain) in
      let r = Hashtbl.find tuned s in
      choices := (n.Graph.op.Opdef.name, r.Tuner.best_choice) :: !choices;
      schedules := (n.Graph.op.Opdef.name, r.Tuner.best_schedule) :: !schedules)
    complex;
  let plan = Propagate.plan ~mode g ~choices:!choices in
  let compiled = Compile.compile ~schedules:!schedules g plan in
  {
    system;
    compiled;
    choices = !choices;
    schedules = !schedules;
    tasks_tuned = List.length sigs;
    measurements =
      Hashtbl.fold (fun _ (r : Tuner.result) a -> a + r.Tuner.spent) tuned 0;
    per_task =
      List.map (fun s -> (s, Hashtbl.find tuned s)) sigs;
  }

(* Run the tuned graph end to end on the machine model. *)
let run ?(max_points = 60_000) ?(seed = 5) (tg : tuned_graph)
    ~(machine : Machine.t) : Compile.exec_result =
  let feeds = Graph.random_feeds ~seed tg.compiled.Compile.graph in
  Compile.execute ~machine ~max_points tg.compiled ~feeds
