(* End-to-end graph tuning (paper Sections 6 and 7.2).

   The joint stage tunes each complex operator sequentially in topological
   order; identical tasks (same operator signature) are deduplicated and
   share one tuning run, and the total measurement budget is split across
   the unique tasks.  Each task is tuned *together with* the elementwise
   chain that will be fused after it, so fusion conflicts are visible to
   the tuner.  The resulting per-operator layout choices are propagated
   (Algorithm 1), conversions are inserted where the constraints demand,
   and the compiled graph is executed for the end-to-end latency.

   Task extraction/dedup lives in Taskset; the fixed per-task budget split
   is the [Scheduler.Static] policy, and [tune_models] runs a whole zoo of
   graphs under one global budget with any scheduling policy
   (DESIGN.md §14). *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Machine = Alt_machine.Machine
module Graph = Alt_graph.Graph
module Propagate = Alt_graph.Propagate
module Compile = Alt_graph.Compile

type gsystem =
  | Gvendor
  | Gautotvm
  | Gansor
  | Galt
  | Galt_ol (* no joint stage; fixed channels-last layouts; fusion on *)
  | Galt_wp (* joint tuning but only adjacent propagation; fusion lost *)

let gsystem_name = function
  | Gvendor -> "vendor"
  | Gautotvm -> "autotvm"
  | Gansor -> "ansor"
  | Galt -> "alt"
  | Galt_ol -> "alt-ol"
  | Galt_wp -> "alt-wp"

let propagate_mode = function
  | Galt_wp -> Propagate.Adjacent
  | Gvendor | Gautotvm | Gansor | Galt | Galt_ol -> Propagate.Full

type tuned_graph = {
  system : gsystem;
  compiled : Compile.compiled;
  choices : (string * Propagate.choice) list;
  schedules : (string * Schedule.t) list;
  tasks_tuned : int;
  measurements : int;
  per_task : (string * Tuner.result) list;
}

(* Assemble a graph from per-task tuning results keyed by Taskset
   signature: pick each complex node's layout/schedule from its task's
   best, propagate, compile.  [results] may cover more tasks than [g]
   uses (the zoo's full task set); only the used ones are reported. *)
let assemble ~(system : gsystem) ~(results : (string * Tuner.result) list)
    (g : Graph.t) : tuned_graph =
  let mode = propagate_mode system in
  let tuned : (string, Tuner.result) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s, r) -> if not (Hashtbl.mem tuned s) then Hashtbl.add tuned s r)
    results;
  let used = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let choices = ref [] and schedules = ref [] in
  List.iter
    (fun (n : Graph.node) ->
      let chain = Taskset.fusable_chain g n in
      let s =
        Taskset.signature n.Graph.op (List.map (fun c -> c.Graph.op) chain)
      in
      match Hashtbl.find_opt tuned s with
      | None ->
          invalid_arg
            (Fmt.str "Graph_tuner.assemble: no tuning result for task %s" s)
      | Some r ->
          if not (Hashtbl.mem seen s) then begin
            Hashtbl.replace seen s ();
            used := s :: !used
          end;
          choices := (n.Graph.op.Opdef.name, r.Tuner.best_choice) :: !choices;
          schedules :=
            (n.Graph.op.Opdef.name, r.Tuner.best_schedule) :: !schedules)
    (Graph.complex_nodes g);
  let sigs = List.rev !used in
  let plan = Propagate.plan ~mode g ~choices:!choices in
  let compiled = Compile.compile ~schedules:!schedules g plan in
  {
    system;
    compiled;
    choices = !choices;
    schedules = !schedules;
    tasks_tuned = List.length sigs;
    measurements =
      List.fold_left
        (fun a s -> a + (Hashtbl.find tuned s).Tuner.spent)
        0 sigs;
    per_task = List.map (fun s -> (s, Hashtbl.find tuned s)) sigs;
  }

(* The per-system tuner factory handed to the scheduler.  The phase split
   is derived from [share] (the static per-task slice), so the Static
   policy reproduces the legacy sequential split exactly; the gradient
   surplus [total - share] extends the final loop-only phase, where extra
   trials refine the already-chosen layout. *)
let tuner_factory ~seed ~levels ?warm_start ~(machine : Machine.t)
    ~(system : gsystem) : Scheduler.make_tuner =
 fun ~pool ~share ~total ~transfer ~stop ~on_progress task ->
  let op = task.Measure.op in
  let blocked =
    lazy [ Templates.blocked_choice op ~block:(2 * machine.Machine.lanes) ]
  in
  match system with
  | Gvendor -> Tuner.tune_vendor ~pool ~stop ~on_progress task
  | Gautotvm ->
      (* NeoCPU-style: fixed blocked layout, restricted loop space *)
      Tuner.tune_loop_only ~seed ~pool ?warm_start ~stop ~on_progress
        ?transfer ~explorer:Tuner.Restricted ~budget:total
        ~layouts:(Lazy.force blocked) task
  | Gansor ->
      Tuner.tune_loop_only ~seed ~pool ?warm_start ~stop ~on_progress
        ?transfer ~explorer:Tuner.Guided ~budget:total
        ~layouts:(Lazy.force blocked) task
  | Galt_ol ->
      Tuner.tune_loop_only ~seed ~pool ?warm_start ~stop ~on_progress
        ?transfer ~explorer:Tuner.Guided ~budget:total
        ~layouts:[ Templates.channels_last_choice op ]
        task
  | Galt | Galt_wp ->
      Tuner.tune_alt ~seed ~pool ~levels ?warm_start ~stop ~on_progress
        ?transfer
        ~joint_budget:(share * 4 / 10)
        ~loop_budget:((share * 6 / 10) + (total - share))
        task

(* Tune a whole zoo of named graphs under one global budget, then
   assemble every model from the shared task results. *)
let tune_models ?(seed = 0) ?(jobs = 1) ?(levels = 1) ?(max_points = 30_000)
    ?faults ?retries ?fast ?memo ?backend ?warm_start ?transfer
    ?epsilon_period ?slope_window ?(policy = Scheduler.Gradient)
    ~(system : gsystem) ~(machine : Machine.t) ~(budget : int)
    (graphs : (string * Graph.t) list) :
    Scheduler.report * (string * tuned_graph) list =
  let mode = propagate_mode system in
  let make_task (e : Taskset.entry) =
    let fused_ops =
      match mode with
      | Propagate.Adjacent | Propagate.Off -> []
      | Propagate.Full ->
          List.map (fun (c : Graph.node) -> c.Graph.op) e.Taskset.chain
    in
    Measure.make_task ~fused:fused_ops ~max_points ?faults ?retries ?fast
      ?memo ?backend ~machine e.Taskset.node.Graph.op
  in
  let make_tuner = tuner_factory ~seed ~levels ?warm_start ~machine ~system in
  let report =
    Scheduler.tune_models ~jobs ?transfer ?epsilon_period ?slope_window
      ~policy ~make_task ~make_tuner ~budget graphs
  in
  let results =
    List.map
      (fun (t : Scheduler.task_report) ->
        (t.Scheduler.signature, t.Scheduler.result))
      report.Scheduler.tasks
  in
  (report, List.map (fun (name, g) -> (name, assemble ~system ~results g)) graphs)

let tune_graph ?(seed = 0) ?(jobs = 1) ?(levels = 1) ?(max_points = 30_000)
    ?faults ?retries ?fast ?memo ?backend ?warm_start ?scheduler
    ~(system : gsystem) ~(machine : Machine.t) ~(budget : int) (g : Graph.t) :
    tuned_graph =
  match scheduler with
  | Some policy ->
      let _, tuned =
        tune_models ~seed ~jobs ~levels ~max_points ?faults ?retries ?fast
          ?memo ?backend ?warm_start ~policy ~system ~machine ~budget
          [ ("model", g) ]
      in
      snd (List.hd tuned)
  | None ->
      (* the legacy sequential path: fixed per-task split, first-seen task
         order, one tuner run per unique task — kept verbatim as the
         default so existing trajectories are untouched *)
      Alt_obs.Trace.with_span "graph_tuner.tune_graph" @@ fun () ->
      let entries = Taskset.of_graph g in
      let per_task_budget = max 8 (budget / max 1 (List.length entries)) in
      (* propagation mode: ALT-WP loses fusion, so tune without the chain *)
      let mode = propagate_mode system in
      let tuned = ref [] in
      List.iter
        (fun (e : Taskset.entry) ->
          let node = e.Taskset.node and chain = e.Taskset.chain in
          let fused_ops =
            match mode with
            | Propagate.Adjacent | Propagate.Off -> []
            | Propagate.Full ->
                List.map (fun (c : Graph.node) -> c.Graph.op) chain
          in
          let task =
            Measure.make_task ~fused:fused_ops ~max_points ?faults ?retries
              ?fast ?memo ?backend ~machine node.Graph.op
          in
          let tune_task () =
            match system with
            | Gvendor ->
                Tuner.tune_op ~seed ~jobs ~system:Tuner.Vendor
                  ~budget:per_task_budget task
            | Gautotvm ->
                (* NeoCPU-style: fixed blocked layout, restricted loops *)
                Tuner.tune_loop_only ~seed ~jobs ?warm_start
                  ~explorer:Tuner.Restricted ~budget:per_task_budget
                  ~layouts:
                    [
                      Templates.blocked_choice node.Graph.op
                        ~block:(2 * machine.Machine.lanes);
                    ]
                  task
            | Gansor ->
                Tuner.tune_loop_only ~seed ~jobs ?warm_start
                  ~explorer:Tuner.Guided ~budget:per_task_budget
                  ~layouts:
                    [
                      Templates.blocked_choice node.Graph.op
                        ~block:(2 * machine.Machine.lanes);
                    ]
                  task
            | Galt_ol ->
                Tuner.tune_loop_only ~seed ~jobs ?warm_start
                  ~explorer:Tuner.Guided ~budget:per_task_budget
                  ~layouts:[ Templates.channels_last_choice node.Graph.op ]
                  task
            | Galt | Galt_wp ->
                Tuner.tune_alt ~seed ~jobs ~levels ?warm_start
                  ~joint_budget:(per_task_budget * 4 / 10)
                  ~loop_budget:(per_task_budget * 6 / 10)
                  task
          in
          let r =
            if Alt_obs.Trace.enabled () then
              Alt_obs.Trace.with_span "graph_tuner.task"
                ~attrs:
                  [ ("signature", Alt_obs.Json.String e.Taskset.signature) ]
                tune_task
            else tune_task ()
          in
          (* fold the finished task's stats into the metrics registry; the
             CLI and the metrics file then report totals across all tasks *)
          Measure.publish_obs task;
          tuned := (e.Taskset.signature, r) :: !tuned)
        entries;
      assemble ~system ~results:(List.rev !tuned) g

(* Run the tuned graph end to end on the machine model. *)
let run ?(max_points = 60_000) ?(seed = 5) (tg : tuned_graph)
    ~(machine : Machine.t) : Compile.exec_result =
  let feeds = Graph.random_feeds ~seed tg.compiled.Compile.graph in
  Compile.execute ~machine ~max_points tg.compiled ~feeds
