(** Measurement harness: one "on-device measurement" of the tuning loop is
    one profiler run of the candidate program on the machine simulator.
    Measurements are served through a canonical-program cache, can be
    batched over a {!Alt_parallel.Pool} without changing the trajectory,
    and survive injected faults through bounded retry and quarantine (see
    the implementation header for the determinism contract). *)

module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Program = Alt_ir.Program
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Runtime = Alt_machine.Runtime
module Propagate = Alt_graph.Propagate
module Pool = Alt_parallel.Pool
module Fault = Alt_faults.Fault

type cache_stats = { mutable hits : int; mutable misses : int }
(** Measurement-cache counters: [hits] were served without simulation. *)

type lower_stats = {
  mutable prog_hits : int;
      (** lowerings served from the (choice, schedule) memo cache *)
  mutable prog_misses : int;  (** actual [Lower.lower] invocations *)
  mutable feat_hits : int;
      (** feature vectors served from the memo cache *)
  mutable feat_misses : int;  (** actual [Features.extract] invocations *)
}
(** Counters of the lowering/feature memo cache (DESIGN.md §10): with the
    memo on, each candidate is lowered and featurized at most once per
    task, shared between the tuner's ranking and measurement passes. *)

type fault_stats = {
  mutable faulted : int;
      (** candidates whose first simulation attempt failed *)
  mutable retried : int;  (** retry attempts performed *)
  mutable recovered : int;  (** candidates that succeeded on a retry *)
  mutable quarantined : int;  (** candidates given up on *)
  mutable backoff_ms : float;  (** total simulated retry backoff *)
}

(** The structured result of one measurement — the error taxonomy real
    tuners treat as first-class results. *)
type outcome =
  | Ok of Profiler.result  (** the simulation succeeded *)
  | Lower_error
      (** the candidate failed to lower (illegal layout/schedule
          combination); costs no budget, like real tuners filtering
          invalid configs before measuring *)
  | Sim_error of string
      (** the simulation crashed or reported an error, and retries were
          exhausted *)
  | Timeout
      (** the watchdog killed the simulation for exceeding the
          per-measurement point budget *)
  | Quarantined
      (** the candidate was already quarantined by an earlier terminal
          failure; answered without simulating *)

type shared_store = {
  s_find_result : string -> Profiler.result option;
  s_publish_result : string -> Profiler.result -> unit;
  s_find_quarantine : string -> string option;
  s_publish_quarantine : string -> string -> unit;
}
(** Hooks into a measurement store shared across tasks (the serve
    daemon's sharded cache + quarantine).  Before a batch computes its
    misses, each key is looked up in the store and an entry found there
    is imported into the task's own tables — indistinguishable from a
    checkpoint restore, so sharing is trajectory-neutral: imported
    results are served as cache hits (budget still charged) and a
    candidate quarantined by one session is answered from quarantine by
    every other session instead of being re-measured.  Fresh results and
    fresh quarantine decisions are published back.  The implementations
    must be thread-safe when tasks on different domains share one store;
    correctness requires all sharing tasks to agree on everything in
    {!fingerprint} except [seed]/[tag] — the store is keyed by
    measurement context in [lib/serve].  Like [fast]/[memo], [shared] is
    deliberately excluded from {!fingerprint}. *)

type buf_stats = { mutable buf_hits : int; mutable buf_misses : int }
(** Counters of the physical-buffer reuse cache in the measurement path:
    a hit is a slot served without allocating (a shared input pack, or a
    recycled zero-filled scratch array), a miss is a fresh allocation.
    Counts are per slot acquisition.  With [--jobs > 1] the split
    between hits and misses depends on worker interleaving (free-list
    reuse is first-come-first-served); the measured results never do. *)

type buf_cache
(** Mutex-protected per-task buffer cache (internal): packed input
    arrays keyed by (slot, layout), scratch arrays in per-length free
    lists. *)

type task = {
  op : Opdef.t;
  fused : Opdef.t list;
      (** elementwise chain co-tuned with the operator (end-to-end flow) *)
  machine : Machine.t;
  max_points : int; (** per-measurement simulation budget *)
  fast : bool;
      (** use the profiler's line-granular fast engine; counters are
          identical either way, so [fast] is deliberately excluded from
          {!fingerprint} — checkpoints are interchangeable across it *)
  backend : Runtime.backend;
      (** which device measures candidates: the cache simulator
          ({!Runtime.Sim}, default) or compiled macro-kernels timed for
          real ({!Runtime.Exec}); included in {!fingerprint}, so sim and
          exec checkpoints never mix *)
  feeds : (string * float array) list;
  bufcache : buf_cache;  (** physical-buffer reuse; see {!buf_stats} *)
  mutable spent : int; (** measurements consumed (cache hits included) *)
  cache : (string, Profiler.result) Hashtbl.t;
      (** canonical program digest -> result; internal *)
  stats : cache_stats;
  faults : Fault.t; (** fault injector; {!Fault.none} = no faults *)
  retries : int; (** extra attempts after a failed simulation *)
  watchdog_points : int option;
      (** hard cap on a candidate's iteration points; candidates above it
          report {!Timeout} without simulating ([None] = no cap) *)
  quarantine : (string, string) Hashtbl.t; (** digest -> reason; internal *)
  fstats : fault_stats;
  memo : bool;
      (** memoize lowering and feature extraction per (choice, schedule);
          trajectory-neutral, so — like [fast] — deliberately excluded
          from {!fingerprint} *)
  lcache : (string, Program.t option) Hashtbl.t;
      (** candidate digest -> lowered program; internal *)
  fcache : (string, float array) Hashtbl.t;
      (** candidate digest -> feature vector; internal *)
  lstats : lower_stats;
  shared : shared_store option;
      (** cross-task result/quarantine sharing (see {!shared_store});
          trajectory-neutral, excluded from {!fingerprint} *)
}

val make_task :
  ?fused:Opdef.t list -> ?max_points:int -> ?seed:int -> ?faults:Fault.t ->
  ?retries:int -> ?watchdog_points:int -> ?fast:bool -> ?memo:bool ->
  ?backend:Runtime.backend -> ?shared:shared_store ->
  machine:Machine.t -> Opdef.t -> task
(** [retries] defaults to 2.  With the default [faults] ({!Fault.none})
    and no [watchdog_points], the measurement pipeline is byte-identical
    to a fault-free build.  [fast] defaults to
    {!Profiler.fast_sim_enabled} (the [ALT_FAST_SIM] knob).  [memo]
    (default true) enables the per-task lowering/feature memo cache —
    results are identical either way, only repeated work changes.
    [backend] (default {!Runtime.Sim}) selects the measuring device;
    fault injection, retries, the watchdog and quarantine apply
    identically to either backend — they wrap the measurement, not the
    simulator. *)

val cache_stats : task -> cache_stats
val fault_stats : task -> fault_stats

val lower_stats : task -> lower_stats

val buf_stats : task -> buf_stats
(** Hit/miss counters of the buffer-reuse cache (see {!buf_stats}). *)

val lower_cache_sizes : task -> int * int
(** [(lowered entries, feature entries)] currently memoized — with the
    memo on, [feat_misses = snd (lower_cache_sizes t)] (each distinct
    candidate is featurized exactly once). *)

val program_of : task -> Propagate.choice -> Schedule.t -> Program.t option
(** Lower a candidate; [None] when the combination is illegal (costs no
    budget, like real tuners filtering invalid configs).  Served from the
    per-task memo cache when [memo] is on. *)

val features_of : task -> Propagate.choice -> Schedule.t -> float array option
(** Cost-model feature vector of a candidate ([None] iff it does not
    lower), memoized per (choice, schedule) alongside the lowering so the
    ranking pass and the measurement pass share one extraction. *)

val program_key : Program.t -> string
(** Canonical serialization of a lowered program, invariant under variable
    renaming: two programs serialize equally iff the simulator cannot tell
    them apart.  Cache keys are digests of this string. *)

val candidate_key : task -> Propagate.choice -> Schedule.t -> string option
(** The measurement-cache key of a candidate ([None] if it does not
    lower).  Keys collide exactly when two candidates lower to the same
    canonical program. *)

val program_points : Program.t -> float
(** Iteration points of a program — what the watchdog compares against
    its hard cap. *)

val measure_programs :
  ?pool:Pool.t ->
  ?on_result:(int -> outcome -> unit) ->
  task -> Program.t option array -> outcome array
(** Measure a batch of already-lowered candidates.  Cache misses are
    simulated concurrently over [pool] (serially without one) with bounded
    retry on injected faults; budget charging, cache/quarantine updates
    and the [on_result] callback happen on the calling domain in
    submission order, so for a fixed seed the observable trajectory is
    identical for every pool size.  [None] entries (failed lowering) cost
    no budget and report {!Lower_error}; every other entry costs one unit
    whatever its outcome. *)

val measure_batch :
  ?pool:Pool.t ->
  task -> (Propagate.choice * Schedule.t) list -> outcome array
(** [measure_programs] over freshly lowered candidates, in order. *)

val measure : task -> Propagate.choice -> Schedule.t -> outcome
(** Lower, pack inputs, simulate (through the cache and the recovery
    policy).  Consumes one unit of budget unless lowering fails. *)

val result_of : outcome -> Profiler.result option
(** The profiler result, if the measurement succeeded. *)

val latency_of : outcome -> float
(** Latency in ms, or infinity for every failed outcome — explorers rank
    by this, so failures are steered away from, never selected. *)

val penalty_latency_ms : float
(** Ansor-style penalty cost fed to learned cost models for candidates
    that lowered but failed to measure: large enough to steer the search
    away, finite so log-space fitting stays NaN-free. *)

val pp_outcome : outcome Fmt.t

val publish_obs : task -> unit
(** Publish this task's per-task stats structs ({!cache_stats},
    {!lower_stats}, {!fault_stats}, budget spent) into the global
    {!Alt_obs.Metrics} registry as [measure.*] counters, unconditionally
    (bypassing the enabled gate).  Call once per task at the end of a
    run; the structs remain the live source of truth during the run, so
    nothing is double-counted. *)

(** {1 Checkpoint support} *)

val snapshot :
  task -> (string * Profiler.result) list * (string * string) list
(** Dump of the measurement cache and the quarantine table, for
    checkpointing. *)

val restore :
  task ->
  cache:(string * Profiler.result) list ->
  quarantine:(string * string) list -> unit
(** Warm a fresh task from a checkpoint dump.  Because cache hits charge
    budget exactly like fresh simulations, a tuning run over a restored
    task replays the interrupted run's trajectory byte-identically while
    skipping the already-simulated work. *)

val fingerprint : seed:int -> tag:string -> task -> string
(** Digest of everything that shapes a tuning trajectory besides the
    tuner's own parameters (operator, fused chain, machine, simulation
    budget, input data, fault configuration, plus the caller's [tag] and
    [seed]); checkpoints can only be resumed under a matching
    fingerprint. *)
