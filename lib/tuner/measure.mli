(** Measurement harness: one "on-device measurement" of the tuning loop is
    one profiler run of the candidate program on the machine simulator.
    Measurements are served through a canonical-program cache and can be
    batched over a {!Alt_parallel.Pool} without changing the trajectory
    (see the implementation header for the determinism contract). *)

module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Program = Alt_ir.Program
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Propagate = Alt_graph.Propagate
module Pool = Alt_parallel.Pool

type cache_stats = { mutable hits : int; mutable misses : int }
(** Measurement-cache counters: [hits] were served without simulation. *)

type task = {
  op : Opdef.t;
  fused : Opdef.t list;
      (** elementwise chain co-tuned with the operator (end-to-end flow) *)
  machine : Machine.t;
  max_points : int; (** per-measurement simulation budget *)
  feeds : (string * float array) list;
  mutable spent : int; (** measurements consumed (cache hits included) *)
  cache : (string, Profiler.result) Hashtbl.t;
      (** canonical program digest -> result; internal *)
  stats : cache_stats;
}

val make_task :
  ?fused:Opdef.t list -> ?max_points:int -> ?seed:int ->
  machine:Machine.t -> Opdef.t -> task

val cache_stats : task -> cache_stats

val program_of : task -> Propagate.choice -> Schedule.t -> Program.t option
(** Lower a candidate; [None] when the combination is illegal (costs no
    budget, like real tuners filtering invalid configs). *)

val program_key : Program.t -> string
(** Canonical serialization of a lowered program, invariant under variable
    renaming: two programs serialize equally iff the simulator cannot tell
    them apart.  Cache keys are digests of this string. *)

val candidate_key : task -> Propagate.choice -> Schedule.t -> string option
(** The measurement-cache key of a candidate ([None] if it does not
    lower).  Keys collide exactly when two candidates lower to the same
    canonical program. *)

val measure_programs :
  ?pool:Pool.t ->
  ?on_result:(int -> Profiler.result option -> unit) ->
  task -> Program.t option array -> Profiler.result option array
(** Measure a batch of already-lowered candidates.  Cache misses are
    simulated concurrently over [pool] (serially without one); budget
    charging, cache updates and the [on_result] callback happen on the
    calling domain in submission order, so for a fixed seed the observable
    trajectory is identical for every pool size.  [None] entries (failed
    lowering) cost no budget and report [None]. *)

val measure_batch :
  ?pool:Pool.t ->
  task -> (Propagate.choice * Schedule.t) list ->
  Profiler.result option array
(** [measure_programs] over freshly lowered candidates, in order. *)

val measure : task -> Propagate.choice -> Schedule.t -> Profiler.result option
(** Lower, pack inputs, simulate (through the cache).  Consumes one unit
    of budget. *)

val latency_of : Profiler.result option -> float
(** Latency in ms, or infinity for failed candidates. *)
