(** End-to-end graph tuning (Sections 6 and 7.2): per-complex-operator
    tuning in topological order with task deduplication and budget
    splitting, then propagation (Algorithm 1), compilation and execution. *)

module Schedule = Alt_ir.Schedule
module Machine = Alt_machine.Machine
module Graph = Alt_graph.Graph
module Propagate = Alt_graph.Propagate
module Compile = Alt_graph.Compile

(** Systems of the end-to-end benchmark (Fig. 10). *)
type gsystem =
  | Gvendor
  | Gautotvm
  | Gansor
  | Galt
  | Galt_ol (** no joint stage; fixed channels-last layouts; fusion on *)
  | Galt_wp (** joint tuning, adjacent-only propagation; fusion lost *)

val gsystem_name : gsystem -> string

type tuned_graph = {
  system : gsystem;
  compiled : Compile.compiled;
  choices : (string * Propagate.choice) list;
  schedules : (string * Schedule.t) list;
  tasks_tuned : int; (** unique tuning tasks after deduplication *)
  measurements : int;
  per_task : (string * Tuner.result) list;
}

val tune_graph :
  ?seed:int -> ?jobs:int -> ?levels:int -> ?max_points:int ->
  ?faults:Alt_faults.Fault.t -> ?retries:int -> ?fast:bool -> ?memo:bool ->
  ?backend:Alt_machine.Runtime.backend ->
  ?warm_start:bool -> ?scheduler:Scheduler.policy ->
  system:gsystem -> machine:Machine.t -> budget:int ->
  Graph.t -> tuned_graph
(** [jobs] bounds the domains used for concurrent measurements per tuning
    task; results are identical for every value (see {!Tuner}).  [faults]
    and [retries] configure each per-task measurement pipeline (see
    {!Measure}).  [fast] selects the profiler's fast engine per task
    (default: the [ALT_FAST_SIM] knob) and [memo] the per-task
    lowering/feature memo cache (default on); trajectories are identical
    either way.  [backend] selects the measuring device per task (see
    {!Measure.make_task}).  [warm_start] keeps each task's cost model
    across batches
    (off by default; changes trajectories — see {!Tuner.tune_alt}).
    [scheduler] routes the tuning through {!Scheduler.tune_models} with
    the given policy instead of the legacy sequential fixed-split loop
    (the default, whose trajectories are untouched). *)

val tune_models :
  ?seed:int -> ?jobs:int -> ?levels:int -> ?max_points:int ->
  ?faults:Alt_faults.Fault.t -> ?retries:int -> ?fast:bool -> ?memo:bool ->
  ?backend:Alt_machine.Runtime.backend -> ?warm_start:bool ->
  ?transfer:bool -> ?epsilon_period:int -> ?slope_window:int ->
  ?policy:Scheduler.policy ->
  system:gsystem -> machine:Machine.t -> budget:int ->
  (string * Graph.t) list -> Scheduler.report * (string * tuned_graph) list
(** Tune a zoo of named graphs under one global [budget] (DESIGN.md §14):
    tasks are deduplicated across all models ({!Taskset.of_graphs}), the
    scheduler ([policy], default [Gradient]) allocates trials round by
    round, and every model is assembled from the shared task results.
    [transfer]/[epsilon_period]/[slope_window] are forwarded to
    {!Scheduler.tune_models}. *)

val assemble :
  system:gsystem -> results:(string * Tuner.result) list -> Graph.t ->
  tuned_graph
(** Assemble a graph from per-task results keyed by {!Taskset.signature}:
    per-node layout/schedule selection, propagation, compilation.
    [results] may cover more tasks than the graph uses; raises
    [Invalid_argument] if one of the graph's tasks is missing. *)

val run :
  ?max_points:int -> ?seed:int -> tuned_graph -> machine:Machine.t ->
  Compile.exec_result
(** Execute the tuned graph on random feeds, returning the simulated
    end-to-end latency and per-stage profiles. *)
