(** Layout tuning templates (Section 5.1): a handful of tunable split
    parameters per complex operator, with the reorder fixed by the paper's
    analysis and the input tensor's unfolded dimensions tied to the output
    tiling.  Also provides the fixed layout choices used by baselines and
    the motivation experiments. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Opdef = Alt_ir.Opdef
module Propagate = Alt_graph.Propagate

(** Generic tiled-layout construction. *)

type part = Whole of int | Outer of int | Mid of int | Inner of int

type dim_op =
  | Dsplit of int list (** inner factors; the outermost part is derived *)
  | Dunfold of int * int (** tile, stride *)

val make : Shape.t -> (int * dim_op) list -> part list -> Layout.t
(** Tile/unfold logical dims and permute the resulting parts. *)

(** {1 Templates} *)

type knob = { kname : string; extent : int }

type t = {
  op : Opdef.t;
  knobs : knob array;
  decode : float array -> Propagate.choice;
      (** actions in (0,1), one per knob; factors via F = R(D*a) *)
}

exception Unsupported

val conv_template : ?levels:int -> Opdef.t -> t
(** C2D-family template: (spatial tiles, o_t, i_t, i'_t, o'_t); the input
    is unfolded with tiles derived from the output tiling.  [levels = 2]
    adds a second tiling level (Fig. 13). *)

val matmul_template : ?levels:int -> Opdef.t -> t
(** GMM/BMM template: (m_t, k_t, n_t). *)

val for_op : ?levels:int -> Opdef.t -> t option
(** Dispatch on the operator kind; [None] for simple operators. *)

(** {1 Fixed layout choices} *)

val trivial_choice : Opdef.t -> Propagate.choice
(** Identity layouts (NOHW / KN). *)

val channels_last_choice : Opdef.t -> Propagate.choice
(** NHWO / NDHWO / NWO family, HWIO-style weights. *)

val hwon_choice : Opdef.t -> Propagate.choice
(** Spatial-first DSP layout of Fig. 1. *)

val blocked_choice : Opdef.t -> block:int -> Propagate.choice
(** NCHWc-style fixed channel blocking (NeoCPU / vendor layouts). *)

val gmm_kn : Opdef.t -> Propagate.choice
val gmm_nk : Opdef.t -> Propagate.choice
val gmm_nkn : ?block:int -> Opdef.t -> Propagate.choice

val layout_zoo : Opdef.t -> Propagate.choice list
(** Deterministic affine layout variants (reorder/pad only — constant
    loop-nest structure) for cross-device rank validation: GMM gets the
    KN/NK family of Fig. 1 with padded variants, convolutions the
    NOHW/NHWO x IHW/HWI grid.  Simple operators get the single trivial
    choice. *)
