(** On-disk tuning checkpoints.

    A checkpoint is a {e replay} checkpoint, not a process image: it
    stores the measurement cache and the quarantine table of the
    interrupted run (plus bookkeeping for validation).  Resuming re-runs
    the tuner from scratch over the warmed cache — and because cache hits
    charge budget exactly like fresh simulations, the resumed run walks
    the interrupted trajectory byte-identically while skipping the
    already-simulated work, then continues past the interruption point.
    No RNG, PPO or GBDT state needs to be serialized (see DESIGN.md §8). *)

module Profiler = Alt_machine.Profiler

type t = {
  fingerprint : string;
      (** {!Measure.fingerprint} of the run that wrote this checkpoint; a
          checkpoint only resumes a run with the same fingerprint *)
  rounds : int;  (** measurement rounds completed when saved *)
  spent : int;  (** measurement budget spent when saved *)
  best_latency : float;  (** best latency at save time (informational) *)
  rng_digest : string;
      (** digest of the tuner RNG state at save time; a resumed run
          reaching the same round must reproduce it exactly *)
  cache : (string * Profiler.result) list;
  quarantine : (string * string) list;
}

val save : path:string -> t -> unit
(** Atomic write (temp file + rename): a crash mid-save never corrupts an
    existing checkpoint.  Emits a ["checkpoint.save"] trace span when
    tracing is enabled. *)

val load : path:string -> t
(** Raises [Failure] with a message naming [path] on every malformed
    input: a file too short to hold the magic, a foreign file (magic
    mismatch), a format-version mismatch, and a truncated or corrupt
    version/record section (Marshal errors are translated; they never
    escape raw). *)

val load_opt : path:string -> t option
(** [None] when [path] does not exist; otherwise {!load}. *)
