(* On-disk tuning checkpoints (see the .mli for the resume model).

   A checkpoint file is the magic string, a marshalled format version, and
   the marshalled record.  Writes go through a temporary file and a rename
   so a crash mid-write (the exact scenario checkpoints exist for) can
   never leave a truncated checkpoint behind — the previous complete one
   survives. *)

module Profiler = Alt_machine.Profiler

let magic = "ALTCKPT\001"
let version = 1

type t = {
  fingerprint : string;
  rounds : int;
  spent : int;
  best_latency : float;
  rng_digest : string;
  cache : (string * Profiler.result) list;
  quarantine : (string * string) list;
}

let save ~path (t : t) =
  Alt_obs.Trace.with_span "checkpoint.save" @@ fun () ->
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     Marshal.to_channel oc (version : int) [];
     Marshal.to_channel oc t [];
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load ~path : t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m =
        try really_input_string ic (String.length magic)
        with End_of_file ->
          failwith (path ^ ": not an ALT checkpoint (file too short)")
      in
      if m <> magic then failwith (path ^ ": not an ALT checkpoint");
      (* a crash mid-write leaves either no file or the previous complete
         one (save is atomic), but files can still arrive truncated or
         corrupted from elsewhere — turn Marshal's unhelpful exceptions
         into the documented Failure with the path *)
      let marshal_part : 'a. string -> 'a =
       fun what ->
        try Marshal.from_channel ic
        with End_of_file | Failure _ ->
          failwith
            (Printf.sprintf "%s: truncated or corrupt checkpoint (bad %s)"
               path what)
      in
      let v : int = marshal_part "version" in
      if v <> version then
        failwith
          (Printf.sprintf "%s: checkpoint format version %d, expected %d" path
             v version);
      (marshal_part "record" : t))

let load_opt ~path = if Sys.file_exists path then Some (load ~path) else None
