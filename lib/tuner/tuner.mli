(** The auto-tuning module (Section 5): ALT's two-stage joint tuner
    (cross-exploration joint stage + loop-only stage) and the baseline
    systems of the evaluation.

    Every tuner takes [?jobs] (default 1): the number of domains the
    measurement engine may use for concurrent cache simulations.  The
    tuning trajectory — [best_latency], [best_choice], [best_schedule],
    [history], [spent] — is byte-identical for every [jobs] value at a
    fixed seed; only wall-clock time changes (see DESIGN.md §7).
    [?pool] supplies an existing measurement pool instead (the serve
    daemon shares one pool across all sessions); when given, [?jobs] is
    ignored.  Trajectories are identical either way.

    Every tuner also takes the fault-tolerance/checkpoint triple (see
    DESIGN.md §8):
    - [?checkpoint:path] — journal the tuning state to [path] after every
      measurement round (atomic write);
    - [?resume:path] — before tuning, warm the measurement cache and
      quarantine table from the checkpoint at [path] (a missing file means
      a fresh start; a checkpoint from a differently-configured run is
      rejected with [Invalid_argument]).  Resuming replays the interrupted
      trajectory byte-identically, then continues past the interruption;
    - [?on_round:(round -> unit)] — hook fired after each round's
      checkpoint is written; tests raise from it to simulate kills. *)

module Schedule = Alt_ir.Schedule
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Propagate = Alt_graph.Propagate
module Ppo = Alt_rl.Ppo

type result = {
  best_latency : float; (** ms; infinity if nothing measured *)
  best_choice : Propagate.choice;
  best_schedule : Schedule.t;
  best_result : Profiler.result option;
  history : (int * float) list; (** (budget spent, best-so-far), increasing *)
  spent : int;
}

(** Loop-space exploration policy. *)
type loop_explorer =
  | Guided (** elite mutations + random, cost-model-ranked (Ansor/ALT) *)
  | Walk (** random walk, everything measured (FlexTensor: no cost model) *)
  | Restricted (** AutoTVM-like: restricted knob space *)

val state_dim : int
val actor_input_dim : int
(** Input width of the layout PPO actor (state embedding + knob features). *)

val tune_alt :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?levels:int ->
  ?layout_explorer:[ `Random | `Ppo_fresh | `Ppo of Ppo.t ] ->
  ?seed_layouts:bool -> ?warm_start:bool -> ?checkpoint:string ->
  ?resume:string -> ?on_round:(int -> unit) ->
  joint_budget:int -> loop_budget:int -> Measure.task -> result
(** The ALT tuner.  The joint stage seeds with heuristic layouts, then
    cross-explores template layouts with the layout agent, assessing each
    by rounds of loop tuning; the loop-only stage greedily allocates the
    remaining budget over the best-ranked layouts.

    [warm_start] (default false) makes the cost model keep its trees
    across batches and boost a few new ones on the grown dataset instead
    of refitting from scratch (DESIGN.md §10).  Off by default because a
    warm model ranks candidates differently than a from-scratch fit, so
    the tuning trajectory diverges from the reference one — with it off,
    trajectories are bit-identical to the pre-warm-start tuner. *)

val tune_loop_only :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?warm_start:bool ->
  ?checkpoint:string ->
  ?resume:string -> ?on_round:(int -> unit) -> explorer:loop_explorer ->
  budget:int -> layouts:Propagate.choice list -> Measure.task -> result
(** Loop tuning over fixed layout candidates, splitting the budget across
    them (the paper tries NOHW and NHWO for baselines and reports the
    best). *)

(** The systems of the single-operator benchmark (Fig. 9). *)
type system =
  | Vendor
  | Autotvm_like
  | Flextensor_like
  | Ansor_like
  | Alt
  | Alt_ol (** loop-only on fixed channels-last layouts *)

val system_name : system -> string

val tune_vendor :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?checkpoint:string ->
  ?resume:string -> ?on_round:(int -> unit) -> Measure.task -> result
(** Vendor-library stand-in: a small set of expert schedules on a fixed
    blocked layout; no search. *)

val tune_op :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?warm_start:bool ->
  ?checkpoint:string -> ?resume:string -> ?on_round:(int -> unit) ->
  system:system -> budget:int -> Measure.task -> result
