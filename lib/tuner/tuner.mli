(** The auto-tuning module (Section 5): ALT's two-stage joint tuner
    (cross-exploration joint stage + loop-only stage) and the baseline
    systems of the evaluation.

    Every tuner takes [?jobs] (default 1): the number of domains the
    measurement engine may use for concurrent cache simulations.  The
    tuning trajectory — [best_latency], [best_choice], [best_schedule],
    [history], [spent] — is byte-identical for every [jobs] value at a
    fixed seed; only wall-clock time changes (see DESIGN.md §7).
    [?pool] supplies an existing measurement pool instead (the serve
    daemon shares one pool across all sessions); when given, [?jobs] is
    ignored.  Trajectories are identical either way.

    Every tuner also takes the fault-tolerance/checkpoint triple (see
    DESIGN.md §8):
    - [?checkpoint:path] — journal the tuning state to [path] after every
      measurement round (atomic write);
    - [?resume:path] — before tuning, warm the measurement cache and
      quarantine table from the checkpoint at [path] (a missing file means
      a fresh start; a checkpoint from a differently-configured run is
      rejected with [Invalid_argument]).  Resuming replays the interrupted
      trajectory byte-identically, then continues past the interruption;
    - [?on_round:(round -> unit)] — hook fired after each round's
      checkpoint is written; tests raise from it to simulate kills.

    The scheduler triple (DESIGN.md §14) rides the same round boundary:
    - [?stop:(unit -> bool)] — cooperative preemption probe, checked
      before every measurement round; when it returns [true] the tuner
      skips all remaining rounds and returns its best-so-far [result].
      The default never stops, leaving trajectories untouched;
    - [?on_progress:(progress -> unit)] — fired after [on_round] (so the
      round's checkpoint is already durable); {!Step} performs its
      suspension effect from this hook;
    - [?transfer] — cross-task cost-model transfer: the first GBDT fit
      warm-starts from [donor ()] (if any) via [Gbdt.refit], and every
      fitted model is handed to [publish].  Folded into the checkpoint
      fingerprint as ":tx" since it changes the trajectory. *)

module Schedule = Alt_ir.Schedule
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Propagate = Alt_graph.Propagate
module Ppo = Alt_rl.Ppo

type result = {
  best_latency : float; (** ms; infinity if nothing measured *)
  best_choice : Propagate.choice;
  best_schedule : Schedule.t;
  best_result : Profiler.result option;
  history : (int * float) list; (** (budget spent, best-so-far), increasing *)
  spent : int;
}

type progress = {
  rounds : int; (** measurement rounds completed *)
  spent : int; (** trials charged to the task budget *)
  best_latency : float; (** ms; infinity if nothing measured yet *)
}
(** Best-so-far snapshot handed to [on_progress] after every measurement
    round — the scheduler's unit of observation. *)

type transfer = {
  donor : unit -> Alt_costmodel.Gbdt.t option;
      (** consulted once, at the first fit; a donated ensemble is
          warm-started on this task's samples via [Gbdt.refit] *)
  publish : Alt_costmodel.Gbdt.t -> unit;
      (** receives every fitted model, for later similar tasks *)
}
(** Cross-task cost-model transfer hooks (DESIGN.md §14).  Both callbacks
    run inside the tuner's fit path: they must not measure, draw
    randomness, or raise. *)

(** Loop-space exploration policy. *)
type loop_explorer =
  | Guided (** elite mutations + random, cost-model-ranked (Ansor/ALT) *)
  | Walk (** random walk, everything measured (FlexTensor: no cost model) *)
  | Restricted (** AutoTVM-like: restricted knob space *)

val state_dim : int
val actor_input_dim : int
(** Input width of the layout PPO actor (state embedding + knob features). *)

val tune_alt :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?levels:int ->
  ?layout_explorer:[ `Random | `Ppo_fresh | `Ppo of Ppo.t ] ->
  ?seed_layouts:bool -> ?warm_start:bool -> ?checkpoint:string ->
  ?resume:string -> ?on_round:(int -> unit) -> ?stop:(unit -> bool) ->
  ?on_progress:(progress -> unit) -> ?transfer:transfer ->
  joint_budget:int -> loop_budget:int -> Measure.task -> result
(** The ALT tuner.  The joint stage seeds with heuristic layouts, then
    cross-explores template layouts with the layout agent, assessing each
    by rounds of loop tuning; the loop-only stage greedily allocates the
    remaining budget over the best-ranked layouts.

    [warm_start] (default false) makes the cost model keep its trees
    across batches and boost a few new ones on the grown dataset instead
    of refitting from scratch (DESIGN.md §10).  Off by default because a
    warm model ranks candidates differently than a from-scratch fit, so
    the tuning trajectory diverges from the reference one — with it off,
    trajectories are bit-identical to the pre-warm-start tuner. *)

val tune_loop_only :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?warm_start:bool ->
  ?checkpoint:string ->
  ?resume:string -> ?on_round:(int -> unit) -> ?stop:(unit -> bool) ->
  ?on_progress:(progress -> unit) -> ?transfer:transfer ->
  explorer:loop_explorer ->
  budget:int -> layouts:Propagate.choice list -> Measure.task -> result
(** Loop tuning over fixed layout candidates, splitting the budget across
    them (the paper tries NOHW and NHWO for baselines and reports the
    best). *)

(** The systems of the single-operator benchmark (Fig. 9). *)
type system =
  | Vendor
  | Autotvm_like
  | Flextensor_like
  | Ansor_like
  | Alt
  | Alt_ol (** loop-only on fixed channels-last layouts *)

val system_name : system -> string

val tune_vendor :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?checkpoint:string ->
  ?resume:string -> ?on_round:(int -> unit) -> ?stop:(unit -> bool) ->
  ?on_progress:(progress -> unit) -> Measure.task -> result
(** Vendor-library stand-in: a small set of expert schedules on a fixed
    blocked layout; no search. *)

val tune_op :
  ?seed:int -> ?jobs:int -> ?pool:Alt_parallel.Pool.t -> ?warm_start:bool ->
  ?checkpoint:string -> ?resume:string -> ?on_round:(int -> unit) ->
  ?stop:(unit -> bool) -> ?on_progress:(progress -> unit) ->
  ?transfer:transfer ->
  system:system -> budget:int -> Measure.task -> result

(** Resumable stepping over any tuning entry point — the scheduler's
    suspension primitive, the same effect-fiber shape as
    [lib/serve/session.ml].  [start f] wraps the tuner thunk [f] (which
    receives the [stop] probe and the [on_progress] hook to pass through);
    each [step] runs exactly one measurement round and pauses, returning
    the round's {!progress}; [finish] flips the stop probe and drives the
    fiber through the tuner's normal finalization, returning its
    best-so-far {!result}.  Stepping a fiber to completion yields the
    byte-identical [result] of calling the entry point directly. *)
module Step : sig
  type status = Running of progress | Done of result

  type t

  val start :
    (stop:(unit -> bool) -> on_progress:(progress -> unit) -> result) -> t

  val step : t -> status
  (** Run one more measurement round (or the final wind-down). *)

  val finish : t -> result
  (** Stop cooperatively: no further rounds are measured; the fiber's own
      finalization runs and its result is returned.  Idempotent. *)

  val finished : t -> bool
  val progress : t -> progress
  (** Last yielded snapshot (zero rounds / infinite latency before the
      first step). *)
end
