(** Gradient task scheduler (DESIGN.md §14): one global trial budget
    across a model zoo.

    Every unique task — deduplicated by {!Taskset.signature} across all
    graphs — runs as a suspendable tuner fiber ({!Tuner.Step}); the
    scheduler repeatedly picks a fiber and steps it one measurement
    round.  Under [Gradient], picks maximize expected end-to-end gain
    (zoo latency share x recent improvement slope) with an
    ε-round-robin heartbeat for starvation freedom; [Roundrobin] always
    steps the least-recently-picked task; [Static] reproduces the
    legacy fixed per-task budget split byte-for-byte.

    No RNG is drawn and every scheduling input is a deterministic
    function of the simulated measurements, so trajectories are
    byte-identical for every [jobs] value. *)

module Graph = Alt_graph.Graph
module Pool = Alt_parallel.Pool

type policy = Gradient | Roundrobin | Static

val policy_name : policy -> string
val policy_of_string : string -> policy option

type make_tuner =
  pool:Pool.t ->
  share:int ->
  total:int ->
  transfer:Tuner.transfer option ->
  stop:(unit -> bool) ->
  on_progress:(Tuner.progress -> unit) ->
  Measure.task ->
  Tuner.result
(** Builds and runs one task's tuner ({!Graph_tuner} supplies the
    per-system factory).  [share] is the task's static slice of the
    global budget — phase splits (e.g. ALT's joint stage) must be
    derived from it so that [Static] reproduces the legacy per-task
    split exactly; [total] caps the fiber's own budget and exceeds
    [share] under [Gradient]/[Roundrobin] so the scheduler may feed a
    well-improving task past its share. *)

type task_report = {
  signature : string;
  occurrences : (string * int) list; (** model -> node count *)
  trials : int; (** measurement trials charged to this task *)
  rounds : int;
  best_latency : float; (** ms; infinity if nothing measured *)
  transferred : bool; (** first GBDT fit warm-started from a donor *)
  result : Tuner.result;
}

type report = {
  policy : policy;
  budget : int;
  share : int; (** static per-task share, [max 8 (budget / tasks)] *)
  spent : int; (** trials actually charged across all tasks *)
  picks : int;
  eps_picks : int; (** picks taken by the ε-round-robin heartbeat *)
  transfer : bool; (** cross-task cost-model transfer was active *)
  tasks : task_report list; (** first-seen order *)
  curves : (string * (int * float) list) list;
      (** per model, in zoo order: (global trials spent, estimated model
          latency = Σ occurrences x task best) — recorded once all of
          the model's tasks have a finite best, deduplicated *)
}

val tune_models :
  ?jobs:int ->
  ?pool:Pool.t ->
  ?transfer:bool ->
  ?epsilon_period:int ->
  ?slope_window:int ->
  policy:policy ->
  make_task:(Taskset.entry -> Measure.task) ->
  make_tuner:make_tuner ->
  budget:int ->
  (string * Graph.t) list ->
  report
(** Tune a zoo of named graphs under one global [budget].  [transfer]
    defaults to on under [Gradient] and off otherwise.  Every
    [epsilon_period]-th pick (default 7) is a round-robin heartbeat;
    the improvement slope is estimated over the last [slope_window]
    (default 5) of the task's own rounds.  One shared measurement pool
    drives all fibers ([pool] wins over [jobs]); trajectories are
    byte-identical for every pool size. *)
