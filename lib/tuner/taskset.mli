(** Task extraction and cross-model deduplication (DESIGN.md §14).

    A tuning task is a complex operator plus the elementwise chain that
    will fuse after it.  Structurally identical tasks — wherever they
    appear, in whichever model — share one tuning run; the scheduler
    weighs each unique task by its total occurrence count across the
    zoo. *)

module Opdef = Alt_ir.Opdef
module Graph = Alt_graph.Graph

val signature : Opdef.t -> Opdef.t list -> string
(** Structural dedup key of (operator, fused chain): operator kind with
    its spatial parameters, exact shapes, and chain length. *)

val fusable_chain : Graph.t -> Graph.node -> Graph.node list
(** The elementwise chain that can fuse after a node (single consumer,
    [Assign] combiner, same shape, not complex). *)

val transfer_key : Opdef.t -> string
(** Cost-model transfer key: like {!signature} but with shapes dropped
    (kind + spatial parameters + output rank + reduction count), so
    similar tasks of different sizes can share a donated GBDT ensemble.
    Coarser than {!signature}: equal signatures imply equal transfer
    keys, never the reverse. *)

type entry = {
  signature : string;
  node : Graph.node; (** representative node (first seen) *)
  chain : Graph.node list; (** its fusable elementwise chain *)
  occurrences : (string * int) list;
      (** model name -> how many nodes this task covers there, in zoo
          order; an entry from a single-graph walk has an empty list *)
}

val occurrences_total : entry -> int

val of_graph : Graph.t -> entry list
(** Unique tasks of one graph, first-seen order ([occurrences] empty). *)

val of_graphs : (string * Graph.t) list -> entry list
(** Unique tasks across a zoo of named graphs, first-seen order, with
    per-model occurrence counts. *)
