(* Layout tuning templates (paper Section 5.1).

   A template prunes the layout space of a complex operator to a handful of
   tunable split parameters; the reorder is fixed by the analysis in the
   paper (channel innermost for data reuse + SIMD, tiled dims contiguous
   for prefetch-friendly storage), and the input tensor's unfolded
   dimensions are tied to the output tiling instead of being tuned.

   For C2D the knobs are (h_t, w_t, o_t, i_t, i'_t, o'_t) — O(10^6) points
   instead of O(10^19); for GMM (m_t, k_t, n_t).  Actions are continuous in
   (0,1) and mapped to divisors via F = R(D * a) (Eq. (2)), so the same
   agent drives every shape. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Opdef = Alt_ir.Opdef
module Propagate = Alt_graph.Propagate

type part = Whole of int | Outer of int | Mid of int | Inner of int

type dim_op = Dsplit of int list (* inner factors, outermost derived *)
            | Dunfold of int * int (* tile, stride *)

(* Build a layout by tiling/unfolding logical dims and permuting the parts.
   Every dim in [ops] contributes (#factors) or 2 physical dims (extent-1
   parts are kept so placement stays uniform). *)
let make (shape : Shape.t) (ops : (int * dim_op) list) (order : part list) :
    Layout.t =
  let rank = Shape.rank shape in
  (* apply transforms in descending dim order so indices stay stable *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) ops in
  let layout =
    List.fold_left
      (fun l (d, op) ->
        match op with
        | Dsplit inner ->
            let e = shape.(d) in
            let prod = List.fold_left ( * ) 1 inner in
            if e mod prod <> 0 then
              invalid_arg
                (Fmt.str "Templates.make: factors %d do not divide %d" prod e);
            Layout.split l ~dim:d ~factors:((e / prod) :: inner)
        | Dunfold (tile, stride) -> Layout.unfold l ~dim:d ~tile ~stride)
      (Layout.create shape) sorted
  in
  (* physical position of each logical dim's parts before the reorder *)
  let parts_of d =
    match List.assoc_opt d ops with
    | None -> 1
    | Some (Dsplit fs) -> 1 + List.length fs
    | Some (Dunfold _) -> 2
  in
  let base = Array.make rank 0 in
  let off = ref 0 in
  for d = 0 to rank - 1 do
    base.(d) <- !off;
    off := !off + parts_of d
  done;
  let pos = function
    | Whole d | Outer d -> base.(d)
    | Mid d -> base.(d) + 1
    | Inner d -> base.(d) + parts_of d - 1
  in
  let perm = Array.of_list (List.map pos order) in
  if Array.length perm <> !off then
    invalid_arg "Templates.make: order does not cover all parts";
  Layout.reorder layout perm

(* ------------------------------------------------------------------ *)
(* Templates                                                          *)
(* ------------------------------------------------------------------ *)

type knob = { kname : string; extent : int }

type t = {
  op : Opdef.t;
  knobs : knob array;
  decode : float array -> Propagate.choice;
}

let factor_of extent a =
  Shape.round_to_divisor extent
    (max 1 (int_of_float (Float.round (a *. float_of_int extent))))

exception Unsupported

let conv_template ?(levels = 1) (op : Opdef.t) : t =
  match op.Opdef.kind with
  | Opdef.Conv c ->
      let out_shape = op.Opdef.out_shape in
      let inp_shape = Opdef.input_shape op c.inp in
      let ker_shape = Opdef.input_shape op c.ker in
      let sp_dims = List.map (fun (s : Opdef.conv_spatial) -> s.Opdef.out_dim) c.spatials in
      let batch_dims =
        List.filter
          (fun d -> d <> c.out_channel_dim && not (List.mem d sp_dims))
          (List.init (Shape.rank out_shape) Fun.id)
      in
      let knobs =
        Array.of_list
          (List.concat
             [
               List.map
                 (fun (s : Opdef.conv_spatial) ->
                   { kname = "st"; extent = out_shape.(s.Opdef.out_dim) })
                 c.spatials;
               [ { kname = "ot"; extent = out_shape.(c.out_channel_dim) } ];
               (if levels >= 2 then
                  List.map
                    (fun (s : Opdef.conv_spatial) ->
                      { kname = "st2"; extent = out_shape.(s.Opdef.out_dim) })
                    c.spatials
                  @ [ { kname = "ot2"; extent = out_shape.(c.out_channel_dim) } ]
                else []);
               [ { kname = "it"; extent = inp_shape.(c.inp_channel_dim) } ];
               (match c.ker_in_dim with
               | Some kd -> [ { kname = "it'"; extent = ker_shape.(kd) } ]
               | None -> []);
               [ { kname = "ot'"; extent = ker_shape.(c.ker_out_dim) } ];
             ])
      in
      let decode (a : float array) : Propagate.choice =
        if Array.length a <> Array.length knobs then
          invalid_arg "conv_template.decode: action length";
        let k = ref 0 in
        let next extent =
          let f = factor_of extent a.(!k) in
          incr k;
          f
        in
        let st = List.map (fun (s : Opdef.conv_spatial) -> next out_shape.(s.Opdef.out_dim)) c.spatials in
        let ot = next out_shape.(c.out_channel_dim) in
        (* second level factors must divide extent/first_level *)
        let st2, ot2 =
          if levels >= 2 then
            let st2 =
              List.map2
                (fun (s : Opdef.conv_spatial) f1 ->
                  factor_of (out_shape.(s.Opdef.out_dim) / f1) a.(!k) |> fun f ->
                  incr k;
                  f)
                c.spatials st
            in
            let ot2 = factor_of (out_shape.(c.out_channel_dim) / ot) a.(!k) in
            incr k;
            (st2, Some ot2)
          else (List.map (fun _ -> 1) c.spatials, None)
        in
        let it = next inp_shape.(c.inp_channel_dim) in
        let it' =
          match c.ker_in_dim with Some kd -> Some (next ker_shape.(kd)) | None -> None
        in
        let ot' = next ker_shape.(c.ker_out_dim) in
        (* --- output layout --- *)
        let two_level = levels >= 2 in
        (* factors are [mid; inner] for two-level, [inner] for one-level;
           the outermost part is derived by [make] *)
        let out_ops =
          List.map2
            (fun (s : Opdef.conv_spatial) (f1, f2) ->
              ( s.Opdef.out_dim,
                Dsplit (if two_level then [ f2; f1 ] else [ f1 ]) ))
            c.spatials
            (List.combine st st2)
          @ [
              ( c.out_channel_dim,
                Dsplit
                  (match ot2 with
                  | Some o2 when two_level -> [ o2; ot ]
                  | _ -> [ ot ]) );
            ]
        in
        let out_order =
          List.map (fun d -> Whole d) batch_dims
          @ List.map (fun d -> Outer d) sp_dims
          @ [ Outer c.out_channel_dim ]
          @ (if two_level then
               List.map (fun d -> Mid d) sp_dims @ [ Mid c.out_channel_dim ]
             else [])
          @ List.map (fun d -> Inner d) sp_dims
          @ [ Inner c.out_channel_dim ]
        in
        let out_layout = make out_shape out_ops out_order in
        (* --- input layout: unfold tied to the *total* spatial tile --- *)
        let inp_sp_dims = List.map (fun (s : Opdef.conv_spatial) -> s.Opdef.inp_dim) c.spatials in
        let inp_batch_dims =
          List.filter
            (fun d -> d <> c.inp_channel_dim && not (List.mem d inp_sp_dims))
            (List.init (Shape.rank inp_shape) Fun.id)
        in
        let inp_ops =
          List.map2
            (fun (s : Opdef.conv_spatial) (f1, f2) ->
              let tile_sp = if two_level then f1 * f2 else f1 in
              let v = s.Opdef.stride and dk = s.Opdef.dilation and k = s.Opdef.kernel in
              let tile = (v * tile_sp) + (dk * (k - 1)) + 1 - v in
              (s.Opdef.inp_dim, Dunfold (tile, v * tile_sp)))
            c.spatials
            (List.combine st st2)
          @ [ (c.inp_channel_dim, Dsplit [ it ]) ]
        in
        let inp_order =
          List.map (fun d -> Whole d) inp_batch_dims
          @ List.map (fun d -> Outer d) inp_sp_dims
          @ [ Outer c.inp_channel_dim ]
          @ List.map (fun d -> Inner d) inp_sp_dims
          @ [ Inner c.inp_channel_dim ]
        in
        let inp_layout = make inp_shape inp_ops inp_order in
        (* --- weight layout --- *)
        let ker_ops =
          [ (c.ker_out_dim, Dsplit [ ot' ]) ]
          @ (match (c.ker_in_dim, it') with
            | Some kd, Some f -> [ (kd, Dsplit [ f ]) ]
            | _ -> [])
        in
        let tiled_ker_dims = List.map fst ker_ops in
        let ker_whole =
          List.filter
            (fun d -> not (List.mem d tiled_ker_dims))
            (List.init (Shape.rank ker_shape) Fun.id)
        in
        let ker_order =
          [ Outer c.ker_out_dim ]
          @ (match c.ker_in_dim with Some kd -> [ Outer kd ] | None -> [])
          @ List.map (fun d -> Whole d) ker_whole
          @ (match c.ker_in_dim with Some kd -> [ Inner kd ] | None -> [])
          @ [ Inner c.ker_out_dim ]
        in
        let ker_layout = make ker_shape ker_ops ker_order in
        {
          Propagate.out_layout;
          in_layouts = [ (c.inp, inp_layout); (c.ker, ker_layout) ];
        }
      in
      { op; knobs; decode }
  | Opdef.Simple | Opdef.Matmul _ -> raise Unsupported

let matmul_template ?levels:(_ = 1) (op : Opdef.t) : t =
  match op.Opdef.kind with
  | Opdef.Matmul mm ->
      let out_shape = op.Opdef.out_shape in
      let a_shape = Opdef.input_shape op mm.a in
      let b_shape = Opdef.input_shape op mm.b in
      let boff = if mm.batched then 1 else 0 in
      let m = out_shape.(boff) and n = out_shape.(boff + 1) in
      let k = a_shape.(boff + 1) in
      let knobs =
        [|
          { kname = "mt"; extent = m };
          { kname = "kt"; extent = k };
          { kname = "nt"; extent = n };
        |]
      in
      let decode (a : float array) : Propagate.choice =
        let mt = factor_of m a.(0)
        and kt = factor_of k a.(1)
        and nt = factor_of n a.(2) in
        let batch d = if mm.batched then [ Whole 0 ] else [] |> fun l -> ignore d; l in
        let block2 shape d0 f0 d1 f1 =
          make shape
            [ (d0, Dsplit [ f0 ]); (d1, Dsplit [ f1 ]) ]
            (batch 0 @ [ Outer d0; Outer d1; Inner d0; Inner d1 ])
        in
        {
          Propagate.out_layout = block2 out_shape boff mt (boff + 1) nt;
          in_layouts =
            [
              (mm.a, block2 a_shape boff mt (boff + 1) kt);
              (mm.b, block2 b_shape boff kt (boff + 1) nt);
            ];
        }
      in
      { op; knobs; decode }
  | Opdef.Simple | Opdef.Conv _ -> raise Unsupported

let for_op ?(levels = 1) (op : Opdef.t) : t option =
  match op.Opdef.kind with
  | Opdef.Conv _ -> Some (conv_template ~levels op)
  | Opdef.Matmul _ -> Some (matmul_template ~levels op)
  | Opdef.Simple -> None

(* ------------------------------------------------------------------ *)
(* Fixed layout choices for baselines and motivation experiments       *)
(* ------------------------------------------------------------------ *)

let trivial_choice (op : Opdef.t) : Propagate.choice =
  {
    Propagate.out_layout = Layout.create op.Opdef.out_shape;
    in_layouts =
      List.map (fun (n, s) -> (n, Layout.create s)) op.Opdef.inputs;
  }

(* Move a dim of a trivial layout to the last position. *)
let dim_last shape d =
  let r = Shape.rank shape in
  let perm = Array.of_list (List.filter (fun i -> i <> d) (List.init r Fun.id) @ [ d ]) in
  Layout.reorder (Layout.create shape) perm

(* Channels-last storage for every tensor of a convolution (the paper's
   NHWO / NDHWO / NWO family; weights become HWIO-style). *)
let channels_last_choice (op : Opdef.t) : Propagate.choice =
  match op.Opdef.kind with
  | Opdef.Conv c ->
      let ker_shape = Opdef.input_shape op c.ker in
      let ker =
        match c.ker_in_dim with
        | Some kd ->
            let r = Shape.rank ker_shape in
            let rest =
              List.filter
                (fun i -> i <> c.ker_out_dim && i <> kd)
                (List.init r Fun.id)
            in
            let perm = Array.of_list (rest @ [ kd; c.ker_out_dim ]) in
            Layout.reorder (Layout.create ker_shape) perm
        | None -> dim_last ker_shape c.ker_out_dim
      in
      {
        Propagate.out_layout = dim_last op.Opdef.out_shape c.out_channel_dim;
        in_layouts =
          [
            (c.inp, dim_last (Opdef.input_shape op c.inp) c.inp_channel_dim);
            (c.ker, ker);
          ];
      }
  | Opdef.Matmul _ | Opdef.Simple -> trivial_choice op

(* HWON: spatial dims first, then channel, then batch (the DSP layout of
   Fig. 1). *)
let hwon_choice (op : Opdef.t) : Propagate.choice =
  match op.Opdef.kind with
  | Opdef.Conv c ->
      let out_shape = op.Opdef.out_shape in
      let r = Shape.rank out_shape in
      let sp = List.map (fun (s : Opdef.conv_spatial) -> s.Opdef.out_dim) c.spatials in
      let batch =
        List.filter
          (fun d -> d <> c.out_channel_dim && not (List.mem d sp))
          (List.init r Fun.id)
      in
      let perm = Array.of_list (sp @ [ c.out_channel_dim ] @ batch) in
      let inp_shape = Opdef.input_shape op c.inp in
      let isp = List.map (fun (s : Opdef.conv_spatial) -> s.Opdef.inp_dim) c.spatials in
      let ibatch =
        List.filter
          (fun d -> d <> c.inp_channel_dim && not (List.mem d isp))
          (List.init (Shape.rank inp_shape) Fun.id)
      in
      let iperm = Array.of_list (isp @ [ c.inp_channel_dim ] @ ibatch) in
      {
        Propagate.out_layout = Layout.reorder (Layout.create out_shape) perm;
        in_layouts =
          [
            (c.inp, Layout.reorder (Layout.create inp_shape) iperm);
            (c.ker, Layout.create (Opdef.input_shape op c.ker));
          ];
      }
  | Opdef.Matmul _ | Opdef.Simple -> trivial_choice op

(* NCHWc-style blocked layout with a fixed block (NeoCPU / vendor
   blocking): channels of every tensor are split by [block] with the block
   innermost; no unfolding, so a uniform blocked pipeline needs no
   conversion operators — exactly how NeoCPU/Ansor deploy it. *)
let blocked_choice (op : Opdef.t) ~(block : int) : Propagate.choice =
  let chan_blocked shape dim rest_order =
    let b = Shape.round_to_divisor shape.(dim) (min block shape.(dim)) in
    make shape [ (dim, Dsplit [ b ]) ] rest_order
  in
  match op.Opdef.kind with
  | Opdef.Conv c ->
      let out_shape = op.Opdef.out_shape in
      let inp_shape = Opdef.input_shape op c.inp in
      let ker_shape = Opdef.input_shape op c.ker in
      let order shape dim =
        List.map
          (fun d -> if d = dim then Outer d else Whole d)
          (List.init (Shape.rank shape) Fun.id)
        @ [ Inner dim ]
      in
      let out_layout =
        chan_blocked out_shape c.out_channel_dim (order out_shape c.out_channel_dim)
      in
      let inp_layout =
        chan_blocked inp_shape c.inp_channel_dim (order inp_shape c.inp_channel_dim)
      in
      let ker_layout =
        match c.ker_in_dim with
        | Some kd ->
            (* OIHWio-style: block both channel dims of the weight *)
            let bo = Shape.round_to_divisor ker_shape.(c.ker_out_dim)
                       (min block ker_shape.(c.ker_out_dim)) in
            let bi = Shape.round_to_divisor ker_shape.(kd)
                       (min block ker_shape.(kd)) in
            let whole =
              List.filter
                (fun d -> d <> c.ker_out_dim && d <> kd)
                (List.init (Shape.rank ker_shape) Fun.id)
            in
            make ker_shape
              [ (c.ker_out_dim, Dsplit [ bo ]); (kd, Dsplit [ bi ]) ]
              ([ Outer c.ker_out_dim; Outer kd ]
              @ List.map (fun d -> Whole d) whole
              @ [ Inner kd; Inner c.ker_out_dim ])
        | None ->
            chan_blocked ker_shape c.ker_out_dim (order ker_shape c.ker_out_dim)
      in
      {
        Propagate.out_layout;
        in_layouts = [ (c.inp, inp_layout); (c.ker, ker_layout) ];
      }
  | Opdef.Matmul _ -> (
      match for_op op with
      | Some tpl ->
          let a =
            Array.map
              (fun kn ->
                Float.min 0.95
                  (float_of_int (min block kn.extent) /. float_of_int kn.extent))
              tpl.knobs
          in
          tpl.decode a
      | None -> trivial_choice op)
  | Opdef.Simple -> trivial_choice op

(* GMM fixed layouts of Fig. 1: KN (default), NK (B transposed), NKn
   (blocked with m=n=16). *)
let gmm_kn = trivial_choice

let gmm_nk (op : Opdef.t) : Propagate.choice =
  match op.Opdef.kind with
  | Opdef.Matmul mm when not mm.batched ->
      let b_shape = Opdef.input_shape op mm.b in
      {
        Propagate.out_layout = Layout.create op.Opdef.out_shape;
        in_layouts =
          [
            (mm.a, Layout.create (Opdef.input_shape op mm.a));
            (mm.b, Layout.reorder (Layout.create b_shape) [| 1; 0 |]);
          ];
      }
  | _ -> trivial_choice op

let gmm_nkn ?(block = 16) (op : Opdef.t) : Propagate.choice =
  blocked_choice op ~block

(* Deterministic affine "layout zoo" for cross-device rank validation
   (DESIGN.md 12): every choice keeps the loop-nest depth of the default
   schedule — the layouts differ only by [reorder] and [pad], never
   [split]/[unfold], which would change the compiled loop structure (and
   force the exec backend's generic fallback).  Candidates therefore
   differ in exactly one observable: memory access order.  Any two
   devices that price strides sanely must rank the zoo similarly. *)
let layout_zoo (op : Opdef.t) : Propagate.choice list =
  let pad_last l =
    let r = Shape.rank (Layout.physical_shape l) in
    Layout.pad l ~dim:(r - 1) ~lo:0 ~hi:1
  in
  (* swap the two innermost dims: KN <-> NK of Fig. 1 / row- vs
     column-major streaming *)
  let swap sh =
    let n = Shape.rank sh in
    let p = Array.init n Fun.id in
    p.(n - 2) <- n - 1;
    p.(n - 1) <- n - 2;
    Layout.reorder (Layout.create sh) p
  in
  match op.Opdef.kind with
  | Opdef.Matmul mm ->
      let a_shape = Opdef.input_shape op mm.a in
      let b_shape = Opdef.input_shape op mm.b in
      let outs =
        [ Layout.create op.Opdef.out_shape; swap op.Opdef.out_shape ]
      in
      let avs = [ Layout.create a_shape; swap a_shape ] in
      let bvs =
        [
          Layout.create b_shape;
          swap b_shape;
          pad_last (Layout.create b_shape);
          pad_last (swap b_shape);
        ]
      in
      List.concat_map
        (fun o ->
          List.concat_map
            (fun a ->
              List.map
                (fun b ->
                  {
                    Propagate.out_layout = o;
                    in_layouts = [ (mm.a, a); (mm.b, b) ];
                  })
                bvs)
            avs)
        outs
  | Opdef.Conv c ->
      let triv = trivial_choice op and cl = channels_last_choice op in
      let inp_of ch = List.assoc c.inp ch.Propagate.in_layouts in
      let ker_of ch = List.assoc c.ker ch.Propagate.in_layouts in
      let outs = [ triv.Propagate.out_layout; cl.Propagate.out_layout ] in
      let inps = [ inp_of triv; inp_of cl; pad_last (inp_of triv) ] in
      let kers = [ ker_of triv; ker_of cl ] in
      List.concat_map
        (fun o ->
          List.concat_map
            (fun i ->
              List.map
                (fun k ->
                  {
                    Propagate.out_layout = o;
                    in_layouts = [ (c.inp, i); (c.ker, k) ];
                  })
                kers)
            inps)
        outs
  | Opdef.Simple ->
      (* streaming grid: row- vs column-major storage of every tensor,
         with padded variants of the inputs.  A transposed input turns a
         unit-stride sweep into a large-stride one — the axis both a
         cache model and a real machine must price. *)
      if Shape.rank op.Opdef.out_shape < 2 then [ trivial_choice op ]
      else
        let outs =
          [
            Layout.create op.Opdef.out_shape;
            swap op.Opdef.out_shape;
          ]
        in
        let swap' sh = if Shape.rank sh < 2 then Layout.create sh else swap sh in
        let in_variants =
          [
            (fun sh -> Layout.create sh);
            swap';
            (fun sh -> pad_last (Layout.create sh));
            (fun sh -> pad_last (swap' sh));
          ]
        in
        List.concat_map
          (fun o ->
            List.map
              (fun v ->
                {
                  Propagate.out_layout = o;
                  in_layouts =
                    List.map (fun (n, sh) -> (n, v sh)) op.Opdef.inputs;
                })
              in_variants)
          outs
