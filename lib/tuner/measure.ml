(* Measurement harness: the "on-device measurements" of the tuning loop.

   A task fixes the operator (plus the elementwise chain that will be fused
   with it in the end-to-end flow), the machine model, random input data,
   and the per-measurement simulation point budget.  Candidates that fail
   to lower (illegal layout/schedule combinations) report [None] and cost
   no budget, mirroring real tuners that filter invalid configs before
   measuring.

   Two things distinguish this from a naive measure-one-at-a-time loop:

   - A keyed measurement cache.  Candidates are keyed by a canonical
     serialization of their *lowered program* (variables renamed to
     first-occurrence indices), so two (choice, schedule) pairs share a key
     exactly when they lower to the same program — common in the loop-only
     stage, where many points of the continuous loop space round to the
     same divisors.  A hit returns the stored simulator result without
     re-running the simulation; it still charges one unit of measurement
     budget, so the tuning trajectory is identical with and without the
     cache.

   - Batched, optionally parallel simulation ([measure_programs] /
     [measure_batch]).  Lowering and all mutation of the task (budget,
     cache, stats) happen on the calling domain in submission order; only
     the profiler runs of cache misses fan out over a {!Alt_parallel.Pool}.
     Since the profiler is deterministic and touches no shared state, the
     results — and therefore the whole tuning trajectory — are
     byte-identical for any pool size. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Buffer = Alt_tensor.Buffer
module Var = Alt_tensor.Var
module Ixexpr = Alt_tensor.Ixexpr
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Program = Alt_ir.Program
module Sexpr = Alt_ir.Sexpr
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Propagate = Alt_graph.Propagate
module Pool = Alt_parallel.Pool

type cache_stats = { mutable hits : int; mutable misses : int }

type task = {
  op : Opdef.t;
  fused : Opdef.t list;
  machine : Machine.t;
  max_points : int;
  feeds : (string * float array) list; (* logical data for all inputs *)
  mutable spent : int; (* measurements consumed *)
  cache : (string, Profiler.result) Hashtbl.t;
      (* canonical program digest -> simulator result *)
  stats : cache_stats;
}

(* All external input tensors of the task (op inputs + fused extras). *)
let task_inputs (op : Opdef.t) (fused : Opdef.t list) =
  let produced = ref [ op.Opdef.out_name ] in
  let acc = ref op.Opdef.inputs in
  List.iter
    (fun (f : Opdef.t) ->
      List.iter
        (fun (n, s) ->
          if (not (List.mem n !produced)) && not (List.mem_assoc n !acc) then
            acc := !acc @ [ (n, s) ])
        f.Opdef.inputs;
      produced := f.Opdef.out_name :: !produced)
    fused;
  !acc

let make_task ?(fused = []) ?(max_points = 40_000) ?(seed = 11) ~machine op =
  let feeds =
    List.mapi
      (fun i (n, s) -> (n, Buffer.random ~seed:(seed + i) s))
      (task_inputs op fused)
  in
  {
    op;
    fused;
    machine;
    max_points;
    feeds;
    spent = 0;
    cache = Hashtbl.create 64;
    stats = { hits = 0; misses = 0 };
  }

let cache_stats t = t.stats

(* Build the program for a candidate; None if the combination is illegal. *)
let program_of (t : task) (choice : Propagate.choice) (schedule : Schedule.t) :
    Program.t option =
  let layouts name =
    match List.assoc_opt name choice.Propagate.in_layouts with
    | Some l -> l
    | None -> (
        match List.assoc_opt name (task_inputs t.op t.fused) with
        | Some s -> Layout.create s
        | None -> invalid_arg (Fmt.str "Measure: unknown tensor %s" name))
  in
  let fused =
    List.map
      (fun (f : Opdef.t) ->
        {
          Lower.fop = f;
          fout_layout =
            Layout.of_prims f.Opdef.out_shape
              (Layout.prims choice.Propagate.out_layout);
        })
      t.fused
  in
  try
    Some
      (Lower.lower ~op:t.op ~layouts ~out_layout:choice.Propagate.out_layout
         ~fused ~schedule ())
  with Lower.Lower_error _ | Layout.Layout_error _ | Invalid_argument _ -> None

(* ------------------------------------------------------------------ *)
(* Canonical program serialization (cache keys)                       *)
(* ------------------------------------------------------------------ *)

(* Serialize a program with variables renamed to first-occurrence indices,
   so the key is invariant under the global [Var] counter state: lowering
   the same candidate twice yields the same key even though the loop
   variables carry fresh ids.  Everything the simulator reads is included
   (slot layouts, loop kinds and extents, access expressions, statement
   structure); everything it ignores (variable names, the program name) is
   left out. *)
let program_key (p : Program.t) : string =
  let buf = Stdlib.Buffer.create 512 in
  let add = Stdlib.Buffer.add_string buf in
  let ids : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let vid v =
    let id = Var.id v in
    match Hashtbl.find_opt ids id with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ids in
        Hashtbl.add ids id i;
        i
  in
  let rec ix (e : Ixexpr.t) =
    match e with
    | Ixexpr.Const n -> add (string_of_int n)
    | Ixexpr.Var v ->
        add "v";
        add (string_of_int (vid v))
    | Ixexpr.Add (a, b) -> bin "+" a b
    | Ixexpr.Sub (a, b) -> bin "-" a b
    | Ixexpr.Mul (a, b) -> bin "*" a b
    | Ixexpr.Div (a, b) -> bin "/" a b
    | Ixexpr.Mod (a, b) -> bin "%" a b
    | Ixexpr.Min (a, b) -> bin "_" a b
    | Ixexpr.Max (a, b) -> bin "^" a b
  and bin op a b =
    add "(";
    ix a;
    add op;
    ix b;
    add ")"
  in
  let access (a : Program.access) =
    add "s";
    add (string_of_int a.Program.slot);
    add "[";
    Array.iter
      (fun e ->
        ix e;
        add ";")
      a.Program.idx;
    add "]"
  in
  let rec cond (c : Sexpr.cond) =
    match c with
    | Sexpr.Cmp (op, a, b) ->
        add
          (match op with
          | Sexpr.Clt -> "<"
          | Sexpr.Cle -> "<="
          | Sexpr.Cgt -> ">"
          | Sexpr.Cge -> ">="
          | Sexpr.Ceq -> "==");
        add "(";
        ix a;
        add ",";
        ix b;
        add ")"
    | Sexpr.And (a, b) ->
        add "and(";
        cond a;
        add ",";
        cond b;
        add ")"
    | Sexpr.Or (a, b) ->
        add "or(";
        cond a;
        add ",";
        cond b;
        add ")"
  in
  let rec pexpr (e : Program.pexpr) =
    match e with
    | Program.Pload a ->
        add "L";
        access a
    | Program.Pconst f ->
        add "C";
        add (Printf.sprintf "%h" f)
    | Program.Pbin (op, a, b) ->
        add "B";
        add (Fmt.str "%a" Sexpr.pp_binop op);
        add "(";
        pexpr a;
        add ",";
        pexpr b;
        add ")"
    | Program.Pun (op, a) ->
        add "U";
        add (Fmt.str "%a" Sexpr.pp_unop op);
        add "(";
        pexpr a;
        add ")"
    | Program.Pselect (c, a, b) ->
        add "S(";
        cond c;
        add ",";
        pexpr a;
        add ",";
        pexpr b;
        add ")"
  in
  let rec stmt (s : Program.stmt) =
    match s with
    | Program.For (l, b) ->
        add "F";
        add (string_of_int (vid l.Program.v));
        add ":";
        add (string_of_int l.Program.extent);
        add
          (match l.Program.kind with
          | Program.Serial -> "s"
          | Program.Parallel -> "p"
          | Program.Vectorized -> "v"
          | Program.Unrolled -> "u");
        add "{";
        stmt b;
        add "}"
    | Program.Block lst ->
        add "[";
        List.iter stmt lst;
        add "]"
    | Program.Store (a, e) ->
        add "=";
        access a;
        pexpr e
    | Program.Reduce (a, r, e) ->
        add (match r with Program.Rsum -> "+=" | Program.Rmax -> "M=");
        access a;
        pexpr e
  in
  Array.iter
    (fun (s : Program.slot) ->
      add "slot(";
      add s.Program.sname;
      add ",";
      add
        (match s.Program.role with
        | Program.Input -> "i"
        | Program.Output -> "o"
        | Program.Temp -> "t");
      add ",";
      Array.iter
        (fun d ->
          add (string_of_int d);
          add ".")
        (Layout.logical_shape s.Program.layout);
      add "|";
      List.iter
        (fun pr -> add (Fmt.str "%a;" Layout.pp_prim pr))
        (Layout.prims s.Program.layout);
      add ")")
    p.Program.slots;
  stmt p.Program.body;
  Stdlib.Buffer.contents buf

let candidate_key (t : task) (choice : Propagate.choice)
    (schedule : Schedule.t) : string option =
  Option.map
    (fun p -> Digest.to_hex (Digest.string (program_key p)))
    (program_of t choice schedule)

(* ------------------------------------------------------------------ *)
(* Measurement                                                        *)
(* ------------------------------------------------------------------ *)

(* One profiler run: pack inputs through the candidate's layouts, allocate
   outputs/temps, simulate.  Pure w.r.t. the task (reads feeds/machine
   only), so it is safe to run concurrently from pool workers. *)
let simulate (t : task) (prog : Program.t) : Profiler.result =
  let bufs =
    Array.map
      (fun (s : Program.slot) ->
        match s.Program.role with
        | Program.Input ->
            Layout.pack s.Program.layout (List.assoc s.Program.sname t.feeds)
        | Program.Output | Program.Temp ->
            Array.make (Layout.num_physical_elements s.Program.layout) 0.0)
      prog.Program.slots
  in
  Profiler.run ~machine:t.machine ~max_points:t.max_points prog ~bufs

let measure_programs ?pool ?(on_result = fun _ _ -> ()) (t : task)
    (progs : Program.t option array) : Profiler.result option array =
  let n = Array.length progs in
  let keys =
    Array.map
      (Option.map (fun p -> Digest.to_hex (Digest.string (program_key p))))
      progs
  in
  (* cache misses needing a fresh simulation, deduplicated within the
     batch, in submission order *)
  let seen = Hashtbl.create 16 in
  let pending = ref [] in
  Array.iteri
    (fun i key ->
      match (key, progs.(i)) with
      | Some key, Some prog
        when (not (Hashtbl.mem t.cache key)) && not (Hashtbl.mem seen key) ->
          Hashtbl.add seen key ();
          pending := (key, prog) :: !pending
      | _ -> ())
    keys;
  let pending = List.rev !pending in
  let fresh_results =
    match pool with
    | Some pool -> Pool.map pool (fun (_, prog) -> simulate t prog) pending
    | None -> List.map (fun (_, prog) -> simulate t prog) pending
  in
  let fresh : (string, Profiler.result) Hashtbl.t = Hashtbl.create 16 in
  List.iter2
    (fun (key, _) r -> Hashtbl.replace fresh key r)
    pending fresh_results;
  (* replay in submission order: charge budget, account hits/misses, fill
     the cache, and hand each result to the caller's callback while the
     task state reflects exactly the serial trajectory *)
  let results = Array.make n None in
  Array.iteri
    (fun i key ->
      (match key with
      | None -> ()
      | Some key ->
          t.spent <- t.spent + 1;
          let r =
            match Hashtbl.find_opt t.cache key with
            | Some r ->
                t.stats.hits <- t.stats.hits + 1;
                r
            | None ->
                let r = Hashtbl.find fresh key in
                t.stats.misses <- t.stats.misses + 1;
                Hashtbl.replace t.cache key r;
                r
          in
          results.(i) <- Some r);
      on_result i results.(i))
    keys;
  results

let measure_batch ?pool (t : task)
    (cands : (Propagate.choice * Schedule.t) list) :
    Profiler.result option array =
  measure_programs ?pool t
    (Array.of_list (List.map (fun (c, s) -> program_of t c s) cands))

let measure (t : task) (choice : Propagate.choice) (schedule : Schedule.t) :
    Profiler.result option =
  (measure_programs t [| program_of t choice schedule |]).(0)

let latency_of = function
  | Some (r : Profiler.result) -> r.Profiler.latency_ms
  | None -> Float.infinity
