(* Measurement harness: the "on-device measurements" of the tuning loop.

   A task fixes the operator (plus the elementwise chain that will be fused
   with it in the end-to-end flow), the machine model, random input data,
   and the per-measurement simulation point budget.  Candidates that fail
   to lower (illegal layout/schedule combinations) report [None] and cost
   no budget, mirroring real tuners that filter invalid configs before
   measuring.

   Two things distinguish this from a naive measure-one-at-a-time loop:

   - A keyed measurement cache.  Candidates are keyed by a canonical
     serialization of their *lowered program* (variables renamed to
     first-occurrence indices), so two (choice, schedule) pairs share a key
     exactly when they lower to the same program — common in the loop-only
     stage, where many points of the continuous loop space round to the
     same divisors.  A hit returns the stored simulator result without
     re-running the simulation; it still charges one unit of measurement
     budget, so the tuning trajectory is identical with and without the
     cache.

   - Batched, optionally parallel simulation ([measure_programs] /
     [measure_batch]).  Lowering and all mutation of the task (budget,
     cache, stats) happen on the calling domain in submission order; only
     the profiler runs of cache misses fan out over a {!Alt_parallel.Pool}.
     Since the profiler is deterministic and touches no shared state, the
     results — and therefore the whole tuning trajectory — are
     byte-identical for any pool size.

   - A fault-tolerant recovery policy.  Measurements can fail: an
     {!Alt_faults.Fault} injector makes simulations crash, time out, or
     flake deterministically per candidate (and a watchdog can kill
     candidates whose iteration count exceeds a hard point cap).  Every
     measurement reports a structured [outcome]; failed attempts are
     retried a bounded number of times with deterministic backoff, and
     candidates that keep failing land in a quarantine table so later
     proposals are answered immediately (with an infinite latency the
     explorers steer away from) instead of aborting the run.  With the
     injector off and the watchdog unset, the pipeline is byte-identical
     to the fault-free one. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Buffer = Alt_tensor.Buffer
module Var = Alt_tensor.Var
module Ixexpr = Alt_tensor.Ixexpr
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Program = Alt_ir.Program
module Sexpr = Alt_ir.Sexpr
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Runtime = Alt_machine.Runtime
module Propagate = Alt_graph.Propagate
module Pool = Alt_parallel.Pool
module Fault = Alt_faults.Fault
module Features = Alt_costmodel.Features

type cache_stats = { mutable hits : int; mutable misses : int }

type lower_stats = {
  mutable prog_hits : int;
  mutable prog_misses : int;
  mutable feat_hits : int;
  mutable feat_misses : int;
}

type fault_stats = {
  mutable faulted : int;
  mutable retried : int;
  mutable recovered : int;
  mutable quarantined : int;
  mutable backoff_ms : float;
}

(* The structured result of one measurement (see the .mli). *)
type outcome =
  | Ok of Profiler.result
  | Lower_error
  | Sim_error of string
  | Timeout
  | Quarantined

(* Hooks into a measurement store shared across tasks (the serve daemon's
   sharded cache/quarantine).  Imported entries land in the task's own
   tables before a batch's misses are computed, exactly like a checkpoint
   restore, so sharing is trajectory-neutral: hits still charge budget,
   and a candidate quarantined by one session is answered from quarantine
   by every other session in the same measurement context. *)
type shared_store = {
  s_find_result : string -> Profiler.result option;
  s_publish_result : string -> Profiler.result -> unit;
  s_find_quarantine : string -> string option;
  s_publish_quarantine : string -> string -> unit;
}

type buf_stats = { mutable buf_hits : int; mutable buf_misses : int }

(* Per-task physical-buffer reuse for the measurement path: packed input
   arrays keyed by (slot name, layout) — candidates sharing a layout
   share one immutable pack — and a per-length free list of output/temp
   scratch arrays, zero-filled on acquire (same state [Array.make _ 0.0]
   gives).  Mutex-protected: [simulate] runs on pool worker domains. *)
type buf_cache = {
  bc_lock : Mutex.t;
  bc_packs : (string, float array) Hashtbl.t;
  bc_scratch : (int, float array list ref) Hashtbl.t;
  bstats : buf_stats;
}

type task = {
  op : Opdef.t;
  fused : Opdef.t list;
  machine : Machine.t;
  max_points : int;
  fast : bool; (* line-granular fast simulation (counter-identical) *)
  backend : Runtime.backend; (* which device measures candidates *)
  feeds : (string * float array) list; (* logical data for all inputs *)
  bufcache : buf_cache;
  mutable spent : int; (* measurements consumed *)
  cache : (string, Profiler.result) Hashtbl.t;
      (* canonical program digest -> simulator result *)
  stats : cache_stats;
  faults : Fault.t;
  retries : int; (* extra attempts after a failed simulation *)
  watchdog_points : int option; (* hard cap on a candidate's points *)
  quarantine : (string, string) Hashtbl.t; (* digest -> failure reason *)
  fstats : fault_stats;
  memo : bool; (* (choice, schedule)-keyed lowering/feature memo cache *)
  lcache : (string, Program.t option) Hashtbl.t;
      (* candidate digest -> lowered program (or None: illegal) *)
  fcache : (string, float array) Hashtbl.t;
      (* candidate digest -> cost-model feature vector *)
  lstats : lower_stats;
  shared : shared_store option; (* cross-task result/quarantine sharing *)
}

(* All external input tensors of the task (op inputs + fused extras). *)
let task_inputs (op : Opdef.t) (fused : Opdef.t list) =
  let produced = ref [ op.Opdef.out_name ] in
  let acc = ref op.Opdef.inputs in
  List.iter
    (fun (f : Opdef.t) ->
      List.iter
        (fun (n, s) ->
          if (not (List.mem n !produced)) && not (List.mem_assoc n !acc) then
            acc := !acc @ [ (n, s) ])
        f.Opdef.inputs;
      produced := f.Opdef.out_name :: !produced)
    fused;
  !acc

let make_task ?(fused = []) ?(max_points = 40_000) ?(seed = 11)
    ?(faults = Fault.none) ?(retries = 2) ?watchdog_points
    ?(fast = Profiler.fast_sim_enabled ()) ?(memo = true)
    ?(backend = Runtime.Sim) ?shared ~machine op =
  if retries < 0 then invalid_arg "Measure.make_task: retries must be >= 0";
  let feeds =
    List.mapi
      (fun i (n, s) -> (n, Buffer.random ~seed:(seed + i) s))
      (task_inputs op fused)
  in
  {
    op;
    fused;
    machine;
    max_points;
    fast;
    backend;
    feeds;
    bufcache =
      {
        bc_lock = Mutex.create ();
        bc_packs = Hashtbl.create 32;
        bc_scratch = Hashtbl.create 32;
        bstats = { buf_hits = 0; buf_misses = 0 };
      };
    spent = 0;
    cache = Hashtbl.create 64;
    stats = { hits = 0; misses = 0 };
    faults;
    retries;
    watchdog_points;
    quarantine = Hashtbl.create 8;
    fstats =
      { faulted = 0; retried = 0; recovered = 0; quarantined = 0;
        backoff_ms = 0.0 };
    memo;
    lcache = Hashtbl.create 256;
    fcache = Hashtbl.create 256;
    lstats = { prog_hits = 0; prog_misses = 0; feat_hits = 0; feat_misses = 0 };
    shared;
  }

let cache_stats t = t.stats
let fault_stats t = t.fstats
let lower_stats t = t.lstats
let buf_stats t = t.bufcache.bstats
let lower_cache_sizes t = (Hashtbl.length t.lcache, Hashtbl.length t.fcache)

(* Digest of a candidate's (choice, schedule) pair — the key of the
   lowering/feature memo cache.  Both are pure immutable data (shapes,
   layout primitive lists, tile arrays), so their marshalled bytes are a
   canonical serialization: equal values give equal keys, and distinct
   values give distinct keys up to digest collision. *)
let memo_key (choice : Propagate.choice) (schedule : Schedule.t) : string =
  Digest.string (Marshal.to_string (choice, schedule) [])

(* Build the program for a candidate; None if the combination is illegal. *)
let lower_candidate (t : task) (choice : Propagate.choice)
    (schedule : Schedule.t) : Program.t option =
  let layouts name =
    match List.assoc_opt name choice.Propagate.in_layouts with
    | Some l -> l
    | None -> (
        match List.assoc_opt name (task_inputs t.op t.fused) with
        | Some s -> Layout.create s
        | None -> invalid_arg (Fmt.str "Measure: unknown tensor %s" name))
  in
  let fused =
    List.map
      (fun (f : Opdef.t) ->
        {
          Lower.fop = f;
          fout_layout =
            Layout.replay f.Opdef.out_shape choice.Propagate.out_layout;
        })
      t.fused
  in
  try
    Some
      (Lower.lower ~op:t.op ~layouts ~out_layout:choice.Propagate.out_layout
         ~fused ~schedule ())
  with Lower.Lower_error _ | Layout.Layout_error _ | Invalid_argument _ -> None

(* Memoized lowering.  A cached hit returns the program lowered for the
   first occurrence of the (choice, schedule) pair; the replay is
   trajectory-neutral because everything downstream is invariant under
   relowering — the measurement-cache key canonicalizes variable ids, the
   profiler and the feature extractor read only program structure. *)
let program_of (t : task) (choice : Propagate.choice) (schedule : Schedule.t) :
    Program.t option =
  if not t.memo then lower_candidate t choice schedule
  else begin
    let key = memo_key choice schedule in
    match Hashtbl.find_opt t.lcache key with
    | Some p ->
        t.lstats.prog_hits <- t.lstats.prog_hits + 1;
        p
    | None ->
        let p = lower_candidate t choice schedule in
        t.lstats.prog_misses <- t.lstats.prog_misses + 1;
        Hashtbl.add t.lcache key p;
        p
  end

(* Memoized cost-model features of a candidate, shared between the
   ranking pass and the measurement pass; None iff it does not lower.
   [feat_misses] counts actual [Features.extract] calls, so with the memo
   on it equals the number of distinct featurized candidates. *)
let features_of (t : task) (choice : Propagate.choice)
    (schedule : Schedule.t) : float array option =
  if not t.memo then
    Option.map (Features.extract t.machine) (lower_candidate t choice schedule)
  else
    let key = memo_key choice schedule in
    match Hashtbl.find_opt t.fcache key with
    | Some f ->
        t.lstats.feat_hits <- t.lstats.feat_hits + 1;
        Some f
    | None -> (
        match program_of t choice schedule with
        | None -> None
        | Some p ->
            let f = Features.extract t.machine p in
            t.lstats.feat_misses <- t.lstats.feat_misses + 1;
            Hashtbl.add t.fcache key f;
            Some f)

(* ------------------------------------------------------------------ *)
(* Canonical program serialization (cache keys)                       *)
(* ------------------------------------------------------------------ *)

(* Serialize a program with variables renamed to first-occurrence indices,
   so the key is invariant under the global [Var] counter state: lowering
   the same candidate twice yields the same key even though the loop
   variables carry fresh ids.  Everything the simulator reads is included
   (slot layouts, loop kinds and extents, access expressions, statement
   structure); everything it ignores (variable names, the program name) is
   left out. *)
let program_key (p : Program.t) : string =
  let buf = Stdlib.Buffer.create 512 in
  let add = Stdlib.Buffer.add_string buf in
  let ids : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let vid v =
    let id = Var.id v in
    match Hashtbl.find_opt ids id with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ids in
        Hashtbl.add ids id i;
        i
  in
  let rec ix (e : Ixexpr.t) =
    match e with
    | Ixexpr.Const n -> add (string_of_int n)
    | Ixexpr.Var v ->
        add "v";
        add (string_of_int (vid v))
    | Ixexpr.Add (a, b) -> bin "+" a b
    | Ixexpr.Sub (a, b) -> bin "-" a b
    | Ixexpr.Mul (a, b) -> bin "*" a b
    | Ixexpr.Div (a, b) -> bin "/" a b
    | Ixexpr.Mod (a, b) -> bin "%" a b
    | Ixexpr.Min (a, b) -> bin "_" a b
    | Ixexpr.Max (a, b) -> bin "^" a b
  and bin op a b =
    add "(";
    ix a;
    add op;
    ix b;
    add ")"
  in
  let access (a : Program.access) =
    add "s";
    add (string_of_int a.Program.slot);
    add "[";
    Array.iter
      (fun e ->
        ix e;
        add ";")
      a.Program.idx;
    add "]"
  in
  let rec cond (c : Sexpr.cond) =
    match c with
    | Sexpr.Cmp (op, a, b) ->
        add
          (match op with
          | Sexpr.Clt -> "<"
          | Sexpr.Cle -> "<="
          | Sexpr.Cgt -> ">"
          | Sexpr.Cge -> ">="
          | Sexpr.Ceq -> "==");
        add "(";
        ix a;
        add ",";
        ix b;
        add ")"
    | Sexpr.And (a, b) ->
        add "and(";
        cond a;
        add ",";
        cond b;
        add ")"
    | Sexpr.Or (a, b) ->
        add "or(";
        cond a;
        add ",";
        cond b;
        add ")"
  in
  let rec pexpr (e : Program.pexpr) =
    match e with
    | Program.Pload a ->
        add "L";
        access a
    | Program.Pconst f ->
        add "C";
        add (Printf.sprintf "%h" f)
    | Program.Pbin (op, a, b) ->
        add "B";
        add (Fmt.str "%a" Sexpr.pp_binop op);
        add "(";
        pexpr a;
        add ",";
        pexpr b;
        add ")"
    | Program.Pun (op, a) ->
        add "U";
        add (Fmt.str "%a" Sexpr.pp_unop op);
        add "(";
        pexpr a;
        add ")"
    | Program.Pselect (c, a, b) ->
        add "S(";
        cond c;
        add ",";
        pexpr a;
        add ",";
        pexpr b;
        add ")"
  in
  let rec stmt (s : Program.stmt) =
    match s with
    | Program.For (l, b) ->
        add "F";
        add (string_of_int (vid l.Program.v));
        add ":";
        add (string_of_int l.Program.extent);
        add
          (match l.Program.kind with
          | Program.Serial -> "s"
          | Program.Parallel -> "p"
          | Program.Vectorized -> "v"
          | Program.Unrolled -> "u");
        add "{";
        stmt b;
        add "}"
    | Program.Block lst ->
        add "[";
        List.iter stmt lst;
        add "]"
    | Program.Store (a, e) ->
        add "=";
        access a;
        pexpr e
    | Program.Reduce (a, r, e) ->
        add (match r with Program.Rsum -> "+=" | Program.Rmax -> "M=");
        access a;
        pexpr e
  in
  Array.iter
    (fun (s : Program.slot) ->
      add "slot(";
      add s.Program.sname;
      add ",";
      add
        (match s.Program.role with
        | Program.Input -> "i"
        | Program.Output -> "o"
        | Program.Temp -> "t");
      add ",";
      Array.iter
        (fun d ->
          add (string_of_int d);
          add ".")
        (Layout.logical_shape s.Program.layout);
      add "|";
      List.iter
        (fun pr -> add (Fmt.str "%a;" Layout.pp_prim pr))
        (Layout.prims s.Program.layout);
      add ")")
    p.Program.slots;
  stmt p.Program.body;
  Stdlib.Buffer.contents buf

let candidate_key (t : task) (choice : Propagate.choice)
    (schedule : Schedule.t) : string option =
  Option.map
    (fun p -> Digest.to_hex (Digest.string (program_key p)))
    (program_of t choice schedule)

(* ------------------------------------------------------------------ *)
(* Measurement                                                        *)
(* ------------------------------------------------------------------ *)

(* One measurement: pack inputs through the candidate's layouts, allocate
   outputs/temps, then run the task's backend — the cache simulator, or
   the exec device (compiled macro-kernels timed for real; DESIGN.md
   §12).  Buffers come from the task's [buf_cache] — packed inputs are
   shared read-only across candidates with the same layout, scratch is
   recycled through per-length free lists — and the cache is
   mutex-protected, so it is safe to run concurrently from pool workers;
   under [Exec] with a [Wall] clock the result is real time and thus not
   reproducible — trajectory determinism tests use a [Virtual] exec
   clock. *)
(* Input slots are served from the pack cache only when the program never
   writes them — true of every lowered program today, but checked so a
   hypothetical in-place op cannot corrupt a shared pack. *)
let writes_input (prog : Program.t) : bool =
  let dirty = ref false in
  Program.iter_stmt
    (function
      | Program.Store (a, _) | Program.Reduce (a, _, _) ->
          if prog.Program.slots.(a.Program.slot).Program.role = Program.Input
          then dirty := true
      | _ -> ())
    prog.Program.body;
  !dirty

let acquire_bufs (t : task) (prog : Program.t) : float array array =
  let bc = t.bufcache in
  let cacheable_inputs = not (writes_input prog) in
  Mutex.lock bc.bc_lock;
  let bufs =
    Array.map
      (fun (s : Program.slot) ->
        match s.Program.role with
        | Program.Input when cacheable_inputs -> (
            let key =
              s.Program.sname ^ "|"
              ^ Digest.string (Marshal.to_string s.Program.layout [])
            in
            match Hashtbl.find_opt bc.bc_packs key with
            | Some a ->
                bc.bstats.buf_hits <- bc.bstats.buf_hits + 1;
                a
            | None ->
                bc.bstats.buf_misses <- bc.bstats.buf_misses + 1;
                let a =
                  Layout.pack s.Program.layout
                    (List.assoc s.Program.sname t.feeds)
                in
                Hashtbl.replace bc.bc_packs key a;
                a)
        | Program.Input ->
            Layout.pack s.Program.layout (List.assoc s.Program.sname t.feeds)
        | Program.Output | Program.Temp -> (
            let n = Layout.num_physical_elements s.Program.layout in
            match Hashtbl.find_opt bc.bc_scratch n with
            | Some ({ contents = a :: rest } as l) ->
                bc.bstats.buf_hits <- bc.bstats.buf_hits + 1;
                l := rest;
                Array.fill a 0 n 0.0;
                a
            | Some _ | None ->
                bc.bstats.buf_misses <- bc.bstats.buf_misses + 1;
                Array.make n 0.0))
      prog.Program.slots
  in
  Mutex.unlock bc.bc_lock;
  bufs

(* Return output/temp scratch to the free lists; the shared input packs
   stay keyed in the cache. *)
let release_bufs (t : task) (prog : Program.t) (bufs : float array array) =
  let bc = t.bufcache in
  Mutex.lock bc.bc_lock;
  Array.iteri
    (fun i (s : Program.slot) ->
      if s.Program.role <> Program.Input then begin
        let n = Array.length bufs.(i) in
        match Hashtbl.find_opt bc.bc_scratch n with
        | Some l -> l := bufs.(i) :: !l
        | None -> Hashtbl.replace bc.bc_scratch n (ref [ bufs.(i) ])
      end)
    prog.Program.slots;
  Mutex.unlock bc.bc_lock

let simulate (t : task) (prog : Program.t) : Profiler.result =
  let bufs = acquire_bufs t prog in
  Fun.protect
    ~finally:(fun () -> release_bufs t prog bufs)
    (fun () ->
      match t.backend with
      | Runtime.Sim ->
          Profiler.run ~machine:t.machine ~max_points:t.max_points
            ~fast:t.fast prog ~bufs
      | Runtime.Exec cfg ->
          let w = Alt_exec.Exec.measure ~cfg prog ~bufs in
          Runtime.result_of_wall ~machine:t.machine prog w)

(* Iteration points of a program — what the watchdog compares against its
   hard cap. *)
let rec stmt_points (s : Program.stmt) : float =
  match s with
  | Program.For (l, b) -> float_of_int l.Program.extent *. stmt_points b
  | Program.Block lst -> List.fold_left (fun a s -> a +. stmt_points s) 0.0 lst
  | Program.Store _ | Program.Reduce _ -> 1.0

let program_points (p : Program.t) : float = stmt_points p.Program.body

(* One simulation attempt of one candidate, as run by a pool worker.
   Injected crashes genuinely raise (exercising the pool's failure
   draining); everything else reports a value.  Pure in (task, key,
   attempt). *)
type sim_out = S_ok of Profiler.result | S_timeout | S_fail of string

let run_attempt_inner (t : task) ~attempt
    ((key, prog) : string * Program.t) : sim_out =
  match Fault.decide t.faults ~key with
  | Some Fault.Crash -> raise (Fault.Injected "injected simulation crash")
  | Some Fault.Timeout ->
      (* the watchdog kills the run when it exceeds the point budget *)
      S_timeout
  | Some Fault.Persistent -> S_fail "persistent simulation failure"
  | Some (Fault.Flaky k) when attempt < k ->
      S_fail "transient simulation failure"
  | Some (Fault.Flaky _) | None -> (
      match t.watchdog_points with
      | Some cap when program_points prog > float_of_int cap -> S_timeout
      | _ -> S_ok (simulate t prog))

(* Traced wrapper: one span per simulation attempt.  Runs on pool worker
   domains, where the span lands in the worker's capture buffer and is
   flushed by the pool in submission order; an injected crash raises
   through [with_span], which still closes the span.  The disabled path
   is a single flag check — the attrs list is never built. *)
let run_attempt (t : task) ~attempt ((key, _) as item : string * Program.t) :
    sim_out =
  if Alt_obs.Trace.enabled () then
    Alt_obs.Trace.with_span "measure.sim"
      ~attrs:
        [
          ("key", Alt_obs.Json.String key);
          ("attempt", Alt_obs.Json.Int attempt);
        ]
      (fun () -> run_attempt_inner t ~attempt item)
  else run_attempt_inner t ~attempt item

let quarantine_reason = function
  | Timeout -> "timeout"
  | Sim_error msg -> msg
  | Ok _ | Lower_error | Quarantined -> "failure"

(* Gated latency histogram: observed on the calling domain during the
   submission-order replay (histograms are not domain-safe), log-spaced
   buckets in milliseconds. *)
let h_latency =
  Alt_obs.Metrics.histogram "measure.latency_ms"
    ~buckets:[ 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 ]

let measure_programs ?pool ?(on_result = fun _ _ -> ()) (t : task)
    (progs : Program.t option array) : outcome array =
  let n = Array.length progs in
  let keys =
    Array.map
      (Option.map (fun p -> Digest.to_hex (Digest.string (program_key p))))
      progs
  in
  (* import shared-store entries for this batch's keys before computing
     misses — indistinguishable from a checkpoint restore: an imported
     result is served as a cache hit (budget charged), an imported
     quarantine entry answers without simulating *)
  (match t.shared with
  | None -> ()
  | Some s ->
      Array.iter
        (function
          | Some key
            when (not (Hashtbl.mem t.cache key))
                 && not (Hashtbl.mem t.quarantine key) -> (
              match s.s_find_result key with
              | Some r -> Hashtbl.replace t.cache key r
              | None -> (
                  match s.s_find_quarantine key with
                  | Some reason -> Hashtbl.replace t.quarantine key reason
                  | None -> ()))
          | _ -> ())
        keys);
  (* cache misses needing a fresh simulation, deduplicated within the
     batch, in submission order; quarantined candidates are answered from
     the quarantine table and never simulated again *)
  let seen = Hashtbl.create 16 in
  let pending = ref [] in
  Array.iteri
    (fun i key ->
      match (key, progs.(i)) with
      | Some key, Some prog
        when (not (Hashtbl.mem t.cache key))
             && (not (Hashtbl.mem t.quarantine key))
             && not (Hashtbl.mem seen key) ->
          Hashtbl.add seen key ();
          pending := (key, prog) :: !pending
      | _ -> ())
    keys;
  let pending = List.rev !pending in
  (* Simulate misses with bounded retry.  Each attempt round fans out over
     the pool through [map_result], so a crashing attempt is drained as a
     per-task outcome instead of poisoning the batch; classification and
     the retry decision happen on the calling domain in submission order,
     keeping the trajectory independent of the pool size. *)
  let fresh : (string, Profiler.result) Hashtbl.t = Hashtbl.create 16 in
  let terminal : (string, outcome) Hashtbl.t = Hashtbl.create 16 in
  let rec attempt_round attempt items =
    match items with
    | [] -> ()
    | _ ->
        let outs =
          match pool with
          | Some pool ->
              Pool.map_result pool (run_attempt t ~attempt) items
          | None ->
              List.map
                (fun item ->
                  match run_attempt t ~attempt item with
                  | s -> Stdlib.Ok s
                  | exception e -> Stdlib.Error e)
                items
        in
        let retry = ref [] in
        List.iter2
          (fun ((key, _) as item) out ->
            let fail o =
              if attempt = 0 then t.fstats.faulted <- t.fstats.faulted + 1;
              if attempt < t.retries then begin
                t.fstats.retried <- t.fstats.retried + 1;
                t.fstats.backoff_ms <-
                  t.fstats.backoff_ms +. Fault.backoff_ms ~attempt;
                retry := item :: !retry
              end
              else Hashtbl.replace terminal key o
            in
            match out with
            | Stdlib.Ok (S_ok r) ->
                if attempt > 0 then
                  t.fstats.recovered <- t.fstats.recovered + 1;
                Hashtbl.replace fresh key r
            | Stdlib.Ok S_timeout -> fail Timeout
            | Stdlib.Ok (S_fail msg) -> fail (Sim_error msg)
            | Stdlib.Error (Fault.Injected msg) -> fail (Sim_error msg)
            | Stdlib.Error e -> fail (Sim_error (Printexc.to_string e)))
          items outs;
        attempt_round (attempt + 1) (List.rev !retry)
  in
  (if Alt_obs.Trace.enabled () then
     Alt_obs.Trace.with_span "measure.batch"
       ~attrs:
         [
           ("n", Alt_obs.Json.Int n);
           ("pending", Alt_obs.Json.Int (List.length pending));
         ]
       (fun () -> attempt_round 0 pending)
   else attempt_round 0 pending);
  (* replay in submission order: charge budget, account hits/misses, fill
     the cache and the quarantine table, and hand each outcome to the
     caller's callback while the task state reflects exactly the serial
     trajectory *)
  let results = Array.make n Lower_error in
  Array.iteri
    (fun i key ->
      (match key with
      | None -> results.(i) <- Lower_error
      | Some key ->
          t.spent <- t.spent + 1;
          let o =
            if Hashtbl.mem t.quarantine key then Quarantined
            else
              match Hashtbl.find_opt t.cache key with
              | Some r ->
                  t.stats.hits <- t.stats.hits + 1;
                  Ok r
              | None -> (
                  match Hashtbl.find_opt fresh key with
                  | Some r ->
                      t.stats.misses <- t.stats.misses + 1;
                      Hashtbl.replace t.cache key r;
                      (match t.shared with
                      | Some s -> s.s_publish_result key r
                      | None -> ());
                      Ok r
                  | None ->
                      let o = Hashtbl.find terminal key in
                      t.stats.misses <- t.stats.misses + 1;
                      let reason = quarantine_reason o in
                      Hashtbl.replace t.quarantine key reason;
                      (match t.shared with
                      | Some s -> s.s_publish_quarantine key reason
                      | None -> ());
                      t.fstats.quarantined <- t.fstats.quarantined + 1;
                      o)
          in
          (match o with
          | Ok r -> Alt_obs.Metrics.observe h_latency r.Profiler.latency_ms
          | _ -> ());
          results.(i) <- o);
      on_result i results.(i))
    keys;
  results

let measure_batch ?pool (t : task)
    (cands : (Propagate.choice * Schedule.t) list) : outcome array =
  measure_programs ?pool t
    (Array.of_list (List.map (fun (c, s) -> program_of t c s) cands))

let measure (t : task) (choice : Propagate.choice) (schedule : Schedule.t) :
    outcome =
  (measure_programs t [| program_of t choice schedule |]).(0)

let result_of = function Ok r -> Some r | _ -> None

let latency_of = function
  | Ok (r : Profiler.result) -> r.Profiler.latency_ms
  | Lower_error | Sim_error _ | Timeout | Quarantined -> Float.infinity

(* Ansor-style penalty cost: what failed-but-lowerable candidates feed the
   learned cost model, so the search is steered away from failing regions
   instead of aborting.  Orders of magnitude above any real simulated
   latency, but finite, so log-space model fitting stays NaN-free. *)
let penalty_latency_ms = 1e4

let pp_outcome ppf = function
  | Ok r -> Fmt.pf ppf "ok(%.5fms)" r.Profiler.latency_ms
  | Lower_error -> Fmt.string ppf "lower-error"
  | Sim_error msg -> Fmt.pf ppf "sim-error(%s)" msg
  | Timeout -> Fmt.string ppf "timeout"
  | Quarantined -> Fmt.string ppf "quarantined"

(* ------------------------------------------------------------------ *)
(* Checkpoint support                                                 *)
(* ------------------------------------------------------------------ *)

let snapshot (t : task) =
  ( Hashtbl.fold (fun k r acc -> (k, r) :: acc) t.cache [],
    Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.quarantine [] )

let restore (t : task) ~cache ~quarantine =
  List.iter (fun (k, r) -> Hashtbl.replace t.cache k r) cache;
  List.iter (fun (k, m) -> Hashtbl.replace t.quarantine k m) quarantine

(* ------------------------------------------------------------------ *)
(* Observability publication                                           *)
(* ------------------------------------------------------------------ *)

(* Registry handles for the per-task stats structs.  The structs stay the
   sole live source of truth (no double counting on the hot path); a task
   is published into the registry once, at the end of its run, via the
   unconditional raw adds — so the CLI can print its human-readable
   summary from the registry whether or not metrics collection is on,
   keeping the default output byte-identical. *)
let m_spent = Alt_obs.Metrics.counter "measure.budget_spent"
let m_hits = Alt_obs.Metrics.counter "measure.cache.hits"
let m_misses = Alt_obs.Metrics.counter "measure.cache.misses"
let m_prog_hits = Alt_obs.Metrics.counter "measure.lower.prog_hits"
let m_prog_misses = Alt_obs.Metrics.counter "measure.lower.prog_misses"
let m_feat_hits = Alt_obs.Metrics.counter "measure.lower.feat_hits"
let m_feat_misses = Alt_obs.Metrics.counter "measure.lower.feat_misses"
let m_buf_hits = Alt_obs.Metrics.counter "measure.bufs.hits"
let m_buf_misses = Alt_obs.Metrics.counter "measure.bufs.misses"
let m_faulted = Alt_obs.Metrics.counter "measure.faults.faulted"
let m_retried = Alt_obs.Metrics.counter "measure.faults.retried"
let m_recovered = Alt_obs.Metrics.counter "measure.faults.recovered"
let m_quarantined = Alt_obs.Metrics.counter "measure.faults.quarantined"
let g_backoff = Alt_obs.Metrics.gauge "measure.faults.backoff_ms"

let publish_obs (t : task) =
  Alt_obs.Metrics.add_raw m_spent t.spent;
  Alt_obs.Metrics.add_raw m_hits t.stats.hits;
  Alt_obs.Metrics.add_raw m_misses t.stats.misses;
  Alt_obs.Metrics.add_raw m_prog_hits t.lstats.prog_hits;
  Alt_obs.Metrics.add_raw m_prog_misses t.lstats.prog_misses;
  Alt_obs.Metrics.add_raw m_feat_hits t.lstats.feat_hits;
  Alt_obs.Metrics.add_raw m_feat_misses t.lstats.feat_misses;
  Alt_obs.Metrics.add_raw m_buf_hits t.bufcache.bstats.buf_hits;
  Alt_obs.Metrics.add_raw m_buf_misses t.bufcache.bstats.buf_misses;
  Alt_obs.Metrics.add_raw m_faulted t.fstats.faulted;
  Alt_obs.Metrics.add_raw m_retried t.fstats.retried;
  Alt_obs.Metrics.add_raw m_recovered t.fstats.recovered;
  Alt_obs.Metrics.add_raw m_quarantined t.fstats.quarantined;
  let prev =
    match Alt_obs.Metrics.gauge_value g_backoff with Some v -> v | None -> 0.0
  in
  Alt_obs.Metrics.set_raw g_backoff (prev +. t.fstats.backoff_ms)

(* Everything that shapes a tuning trajectory besides the tuner's own
   parameters: operator, fused chain, machine, budgets of one simulation,
   input data, and the fault configuration.  Checkpoints written under one
   fingerprint can only be resumed under the same one. *)
let fingerprint ~seed ~tag (t : task) : string =
  let feeds = Digest.to_hex (Digest.string (Marshal.to_string t.feeds [])) in
  Digest.to_hex
    (Digest.string
       (Fmt.str "%s|%s|%a|%d|%s|%d|%s|%d|%.9f|%d|%d|%a|%s" tag
          t.op.Opdef.name Shape.pp t.op.Opdef.out_shape (List.length t.fused)
          t.machine.Machine.name t.max_points
          (Runtime.backend_tag t.backend)
          seed t.faults.Fault.rate t.faults.Fault.seed t.retries
          Fmt.(option int)
          t.watchdog_points feeds))
