(* Gradient task scheduler (DESIGN.md §14).

   One global trial budget across a whole model zoo.  Every unique task
   (deduplicated by Taskset.signature across all graphs) runs as a
   suspendable tuner fiber (Tuner.Step); the scheduler repeatedly picks a
   fiber and steps it one measurement round.  Policies:

   - Static: run the fibers to completion in first-seen order, each capped
     at its static per-task share — the paper's fixed budget split, and
     byte-identical to Graph_tuner's sequential per-task loop;
   - Roundrobin: step the least-recently-picked unfinished fiber;
   - Gradient: Ansor-style expected-gain allocation.  A task's weight is
     its zoo latency share (occurrence count x best-so-far latency) times
     the recent improvement slope of its own trajectory; every
     [epsilon_period]-th pick instead goes to the least-recently-picked
     task, so every task keeps a round-robin heartbeat (starvation
     freedom) and a plateaued estimate can still be revised.

   Every scheduling input — spent trials, rounds, best latencies — is a
   deterministic function of the simulated measurements, and no RNG is
   drawn, so trajectories are byte-identical for every --jobs value
   (Pool results are submission-ordered).  Cross-task cost-model transfer
   (on by default under Gradient) registers every fitted GBDT under its
   Taskset.transfer_key; a task's first fit warm-starts from the latest
   ensemble published by a similar task, via Gbdt.refit. *)

module Graph = Alt_graph.Graph
module Gbdt = Alt_costmodel.Gbdt
module Pool = Alt_parallel.Pool

let src = Logs.Src.create "alt.scheduler" ~doc:"ALT gradient task scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = Gradient | Roundrobin | Static

let policy_name = function
  | Gradient -> "gradient"
  | Roundrobin -> "roundrobin"
  | Static -> "static"

let policy_of_string = function
  | "gradient" -> Some Gradient
  | "roundrobin" -> Some Roundrobin
  | "static" -> Some Static
  | _ -> None

type make_tuner =
  pool:Pool.t ->
  share:int ->
  total:int ->
  transfer:Tuner.transfer option ->
  stop:(unit -> bool) ->
  on_progress:(Tuner.progress -> unit) ->
  Measure.task ->
  Tuner.result
(* Builds and runs one task's tuner.  [share] is the task's static slice
   of the global budget (the phase split — e.g. ALT's joint stage — is
   derived from it, so Static reproduces the legacy per-task split
   exactly); [total] caps the fiber's own budget and exceeds [share]
   under Gradient/Roundrobin so the scheduler may keep feeding a
   well-improving task past its share. *)

type task_report = {
  signature : string;
  occurrences : (string * int) list;
  trials : int;
  rounds : int;
  best_latency : float;
  transferred : bool; (* first GBDT fit warm-started from a donor *)
  result : Tuner.result;
}

type report = {
  policy : policy;
  budget : int;
  share : int;
  spent : int;
  picks : int;
  eps_picks : int;
  transfer : bool;
  tasks : task_report list; (* first-seen order *)
  curves : (string * (int * float) list) list;
      (* per model: (global trials spent, estimated model latency) *)
}

(* Per-fiber scheduling state. *)
type tstate = {
  entry : Taskset.entry;
  task : Measure.task;
  fiber : Tuner.Step.t;
  occ : int; (* total occurrences across the zoo, >= 1 *)
  transferred : bool ref;
  mutable steps : int; (* scheduler steps taken on this fiber *)
  mutable last_pick : int; (* global pick counter at last pick; 0 = never *)
  mutable best : float; (* best-so-far latency, ms *)
  mutable hist : (int * float) list; (* (task trials, best), newest first *)
}

let warmup_steps = 2

(* Improvement per trial over the task's recent own-step history, clamped
   at zero: the scheduler only ever rewards improvement.  A task whose
   window straddles the first finite measurement gets an infinite slope —
   it just produced its first real signal and is stepped immediately. *)
let slope (ts : tstate) : float =
  match ts.hist with
  | (t_new, b_new) :: (_ :: _ as rest) when Float.is_finite b_new ->
      let t_old, b_old = List.nth rest (List.length rest - 1) in
      if not (Float.is_finite b_old) then Float.infinity
      else
        let d = b_old -. b_new in
        if d <= 0.0 then 0.0 else d /. float_of_int (max 1 (t_new - t_old))
  | _ -> 0.0

(* The task's share of the zoo's end-to-end latency estimate. *)
let zoo_share (ts : tstate) : float = float_of_int ts.occ *. ts.best

let m_picks = Alt_obs.Metrics.counter "scheduler.picks"
let m_eps_picks = Alt_obs.Metrics.counter "scheduler.eps_picks"
let m_rounds = Alt_obs.Metrics.counter "scheduler.rounds"
let g_tasks = Alt_obs.Metrics.gauge "scheduler.tasks"

let tune_models ?(jobs = 1) ?pool ?transfer ?(epsilon_period = 7)
    ?(slope_window = 5) ~(policy : policy)
    ~(make_task : Taskset.entry -> Measure.task)
    ~(make_tuner : make_tuner) ~(budget : int)
    (graphs : (string * Graph.t) list) : report =
  Alt_obs.Trace.with_span "scheduler.tune_models" @@ fun () ->
  let entries = Taskset.of_graphs graphs in
  let n = List.length entries in
  let share = max 8 (budget / max 1 n) in
  let transfer_on =
    match transfer with Some b -> b | None -> policy = Gradient
  in
  let total = match policy with Static -> share | _ -> budget in
  let pool, own_pool =
    match pool with Some p -> (p, false) | None -> (Pool.create ~jobs (), true)
  in
  Fun.protect ~finally:(fun () -> if own_pool then Pool.shutdown pool)
  @@ fun () ->
  (* the transfer registry: latest fitted ensemble per transfer key *)
  let registry : (string, Gbdt.t) Hashtbl.t = Hashtbl.create 16 in
  let states =
    Array.of_list
      (List.map
         (fun (e : Taskset.entry) ->
           let task = make_task e in
           let transferred = ref false in
           let tx =
             if not transfer_on then None
             else
               let key = Taskset.transfer_key e.Taskset.node.Graph.op in
               Some
                 {
                   Tuner.donor =
                     (fun () ->
                       match Hashtbl.find_opt registry key with
                       | Some m ->
                           transferred := true;
                           Some m
                       | None -> None);
                   publish = (fun m -> Hashtbl.replace registry key m);
                 }
           in
           let fiber =
             Tuner.Step.start (fun ~stop ~on_progress ->
                 make_tuner ~pool ~share ~total ~transfer:tx ~stop
                   ~on_progress task)
           in
           {
             entry = e;
             task;
             fiber;
             occ = max 1 (Taskset.occurrences_total e);
             transferred;
             steps = 0;
             last_pick = 0;
             best = Float.infinity;
             hist = [];
           })
         entries)
  in
  if Alt_obs.Metrics.enabled () then Alt_obs.Metrics.set g_tasks (float_of_int n);
  (* per-model curve recording: which entries a model uses, with counts *)
  let models = Array.of_list (List.map fst graphs) in
  let model_entries =
    Array.map
      (fun m ->
        List.filter_map
          (fun i ->
            match List.assoc_opt m states.(i).entry.Taskset.occurrences with
            | Some c when c > 0 -> Some (i, c)
            | _ -> None)
          (List.init n Fun.id))
      models
  in
  let curves = Array.map (fun _ -> ref []) models in
  let total_spent () =
    Array.fold_left (fun a ts -> a + ts.task.Measure.spent) 0 states
  in
  let record_curves () =
    let spent = total_spent () in
    Array.iteri
      (fun mi uses ->
        let est =
          List.fold_left
            (fun a (i, c) -> a +. (float_of_int c *. states.(i).best))
            0.0 uses
        in
        if Float.is_finite est && uses <> [] then
          match !(curves.(mi)) with
          | (_, prev) :: _ when prev = est -> ()
          | tl -> curves.(mi) := (spent, est) :: tl)
      model_entries
  in
  let runnable () =
    List.filter
      (fun i -> not (Tuner.Step.finished states.(i).fiber))
      (List.init n Fun.id)
  in
  let lru run =
    List.fold_left
      (fun acc i ->
        match acc with
        | Some j when states.(j).last_pick <= states.(i).last_pick -> acc
        | _ -> Some i)
      None run
    |> Option.get
  in
  let weight ts =
    let s = slope ts in
    if s <= 0.0 then 0.0 else zoo_share ts *. s
  in
  let argmax f run =
    match run with
    | [] -> invalid_arg "Scheduler: argmax on empty runnable set"
    | i0 :: rest ->
        fst
          (List.fold_left
             (fun (bi, bw) i ->
               let w = f states.(i) in
               if w > bw then (i, w) else (bi, bw))
             (i0, f states.(i0))
             rest)
  in
  let picks = ref 0 and eps_picks = ref 0 in
  let choose run =
    match policy with
    | Static -> List.hd run
    | Roundrobin -> lru run
    | Gradient -> (
        match List.filter (fun i -> states.(i).steps < warmup_steps) run with
        | i :: _ -> i (* implicit warmup: every task measures first *)
        | [] ->
            if !picks mod epsilon_period = 0 then begin
              incr eps_picks;
              lru run
            end
            else
              let i = argmax weight run in
              if weight states.(i) > 0.0 then i
              else
                (* no task is improving: exploit the largest latency
                   share, where a revision moves the zoo estimate most *)
                argmax zoo_share run)
  in
  (* a backstop against tasks whose rounds cannot charge budget (nothing
     lowerable): the legacy sequential loop would spin exactly the same
     way, but the global loop here is easy to bound deterministically *)
  let pick_cap = (budget * 8) + (n * 16) + 64 in
  let continue () =
    runnable () <> []
    &&
    match policy with
    | Static -> true
    | Gradient | Roundrobin ->
        total_spent () < budget && !picks < pick_cap
  in
  while continue () do
    let run = runnable () in
    incr picks;
    let i = choose run in
    let ts = states.(i) in
    ts.last_pick <- !picks;
    ts.steps <- ts.steps + 1;
    if Alt_obs.Metrics.enabled () then Alt_obs.Metrics.incr m_picks;
    (match Tuner.Step.step ts.fiber with
    | Tuner.Step.Done r -> ts.best <- r.Tuner.best_latency
    | Tuner.Step.Running p ->
        if Alt_obs.Metrics.enabled () then Alt_obs.Metrics.incr m_rounds;
        ts.best <- p.Tuner.best_latency;
        ts.hist <-
          List.filteri
            (fun k _ -> k < slope_window)
            ((p.Tuner.spent, p.Tuner.best_latency) :: ts.hist));
    if Alt_obs.Trace.enabled () then
      Alt_obs.Trace.instant "scheduler.pick"
        ~attrs:
          [
            ("pick", Alt_obs.Json.Int !picks);
            ("task", Alt_obs.Json.Int i);
            ("signature", Alt_obs.Json.String ts.entry.Taskset.signature);
            ("spent", Alt_obs.Json.Int ts.task.Measure.spent);
            ("best_latency_ms", Alt_obs.Json.Float ts.best);
          ];
    record_curves ()
  done;
  if Alt_obs.Metrics.enabled () then
    Alt_obs.Metrics.add_raw m_eps_picks !eps_picks;
  (* wind down: flip every fiber's stop probe and run its finalization —
     no further measurement rounds, best-so-far results all around *)
  let results = Array.map (fun ts -> Tuner.Step.finish ts.fiber) states in
  Array.iter (fun ts -> Measure.publish_obs ts.task) states;
  record_curves ();
  let tasks =
    List.init n (fun i ->
        let ts = states.(i) in
        let r = results.(i) in
        {
          signature = ts.entry.Taskset.signature;
          occurrences = ts.entry.Taskset.occurrences;
          trials = ts.task.Measure.spent;
          rounds = (Tuner.Step.progress ts.fiber).Tuner.rounds;
          best_latency = r.Tuner.best_latency;
          transferred = !(ts.transferred);
          result = r;
        })
  in
  Log.info (fun m ->
      m "scheduler %s: %d tasks, %d/%d trials in %d picks (%d eps)"
        (policy_name policy) n (total_spent ()) budget !picks !eps_picks);
  {
    policy;
    budget;
    share;
    spent = total_spent ();
    picks = !picks;
    eps_picks = !eps_picks;
    transfer = transfer_on;
    tasks;
    curves =
      Array.to_list
        (Array.mapi (fun mi m -> (m, List.rev !(curves.(mi)))) models);
  }
