(* Tests for the fault-tolerant measurement pipeline (DESIGN.md §8):
   deterministic fault injection, bounded retry and quarantine, explorer
   and cost-model tolerance of failed measurements, and checkpoint/resume.

   The load-bearing properties:
   - the fault pattern is a pure function of (fault seed, candidate key),
     so tuning trajectories under faults stay byte-identical for every
     pool size;
   - a 100% fault rate degrades the tuner to a clean "nothing measured"
     result instead of a crash, with every explorer policy and the GBDT
     cost model tolerating infinite/penalty latencies;
   - killing a checkpointed run after an arbitrary round and resuming
     reproduces the uninterrupted run's result exactly. *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Ops = Alt_graph.Ops
module Propagate = Alt_graph.Propagate
module Machine = Alt_machine.Machine
module Runtime = Alt_machine.Runtime
module Exec = Alt_exec.Exec
module Program = Alt_ir.Program
module Fault = Alt_faults.Fault
module Templates = Alt_tuner.Templates
module Loopspace = Alt_tuner.Loopspace
module Measure = Alt_tuner.Measure
module Checkpoint = Alt_tuner.Checkpoint
module Tuner = Alt_tuner.Tuner

let tiny_c2d () =
  Ops.c2d ~name:"c2d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
    ~kh:3 ~kw:3 ()

let make_task ?faults ?retries ?watchdog_points ?backend op =
  Measure.make_task ~machine:Machine.intel_cpu ~max_points:2_000 ~seed:7
    ?faults ?retries ?watchdog_points ?backend op

(* Exec backend with a virtual clock: the kernel still compiles and runs
   once (so a crashing candidate crashes here too), but the reported
   latency is a pure function of the program — deterministic, so the
   jobs differential below can demand byte-identical trajectories. *)
let exec_backend =
  Runtime.Exec
    {
      Exec.warmup = 0;
      repeats = 1;
      clock = Exec.Virtual (fun p -> 0.001 *. float_of_int p.Program.flops);
      domains = 1;
    }

let choice_equal (a : Propagate.choice) (b : Propagate.choice) =
  Layout.equal a.Propagate.out_layout b.Propagate.out_layout
  && List.length a.Propagate.in_layouts = List.length b.Propagate.in_layouts
  && List.for_all2
       (fun (n1, l1) (n2, l2) -> n1 = n2 && Layout.equal l1 l2)
       a.Propagate.in_layouts b.Propagate.in_layouts

let result_equal (a : Tuner.result) (b : Tuner.result) =
  a.Tuner.best_latency = b.Tuner.best_latency
  && choice_equal a.Tuner.best_choice b.Tuner.best_choice
  && a.Tuner.best_schedule = b.Tuner.best_schedule
  && a.Tuner.history = b.Tuner.history
  && a.Tuner.spent = b.Tuner.spent
  && a.Tuner.best_result = b.Tuner.best_result

(* a fixed, lowerable candidate for the unit tests *)
let fixed_candidate op =
  let choice = Templates.channels_last_choice op in
  let sched = Schedule.vectorize (Schedule.default ~rank:4 ~nred:3) in
  (choice, sched)

(* The injector is deterministic: scan fault seeds for one that gives the
   wanted failure mode on this candidate's key. *)
let seed_with_mode op pred =
  let t = make_task op in
  let choice, sched = fixed_candidate op in
  let key = Option.get (Measure.candidate_key t choice sched) in
  let rec scan seed =
    if seed > 10_000 then Alcotest.fail "no fault seed with the wanted mode"
    else
      match Fault.decide (Fault.create ~seed ~rate:1.0 ()) ~key with
      | Some m when pred m -> seed
      | _ -> scan (seed + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Injector                                                           *)
(* ------------------------------------------------------------------ *)

let test_injector_deterministic () =
  let f = Fault.create ~seed:3 ~rate:0.5 () in
  for i = 0 to 99 do
    let key = Fmt.str "cand-%d" i in
    Alcotest.(check bool)
      "same key, same decision" true
      (Fault.decide f ~key = Fault.decide f ~key)
  done;
  Alcotest.(check bool)
    "inactive injector never fires" true
    (Fault.decide Fault.none ~key:"cand-0" = None);
  (match Fault.create ~rate:1.5 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* rate 1.0 fires on every key *)
  let all = Fault.create ~rate:1.0 () in
  for i = 0 to 99 do
    Alcotest.(check bool)
      "rate 1.0 always fires" true
      (Fault.decide all ~key:(Fmt.str "cand-%d" i) <> None)
  done

(* ------------------------------------------------------------------ *)
(* Retry, recovery and quarantine                                     *)
(* ------------------------------------------------------------------ *)

(* A transient (Flaky) fault recovers within the retry budget: the final
   outcome is Ok, indistinguishable from a fault-free measurement. *)
let test_flaky_recovers () =
  let op = tiny_c2d () in
  let seed = seed_with_mode op (function Fault.Flaky _ -> true | _ -> false) in
  let choice, sched = fixed_candidate op in
  let faulty = make_task ~faults:(Fault.create ~seed ~rate:1.0 ()) ~retries:2 op in
  let clean = make_task op in
  (match (Measure.measure faulty choice sched, Measure.measure clean choice sched) with
  | Measure.Ok a, Measure.Ok b ->
      Alcotest.(check bool) "recovered result = clean result" true (a = b)
  | a, b ->
      Alcotest.failf "expected Ok/Ok, got %a / %a" Measure.pp_outcome a
        Measure.pp_outcome b);
  let fs = Measure.fault_stats faulty in
  Alcotest.(check int) "faulted" 1 fs.Measure.faulted;
  Alcotest.(check bool) "retried" true (fs.Measure.retried >= 1);
  Alcotest.(check int) "recovered" 1 fs.Measure.recovered;
  Alcotest.(check int) "not quarantined" 0 fs.Measure.quarantined;
  Alcotest.(check bool) "backoff accrued" true (fs.Measure.backoff_ms > 0.0)

(* An injected crash exhausts its retries, surfaces as a structured
   Sim_error, and quarantines the candidate: re-proposing it is answered
   from the quarantine table (still charging budget) without simulating. *)
let test_crash_quarantines () =
  let op = tiny_c2d () in
  let seed = seed_with_mode op (function Fault.Crash -> true | _ -> false) in
  let choice, sched = fixed_candidate op in
  let t = make_task ~faults:(Fault.create ~seed ~rate:1.0 ()) ~retries:1 op in
  (match Measure.measure t choice sched with
  | Measure.Sim_error msg ->
      Alcotest.(check string)
        "crash message" "injected simulation crash" msg
  | o -> Alcotest.failf "expected Sim_error, got %a" Measure.pp_outcome o);
  (match Measure.measure t choice sched with
  | Measure.Quarantined -> ()
  | o -> Alcotest.failf "expected Quarantined, got %a" Measure.pp_outcome o);
  let fs = Measure.fault_stats t in
  Alcotest.(check int) "quarantined once" 1 fs.Measure.quarantined;
  Alcotest.(check int) "retried once" 1 fs.Measure.retried;
  Alcotest.(check int) "both attempts charged budget" 2 t.Measure.spent;
  Alcotest.(check bool)
    "failure latency is infinite" true
    (Measure.latency_of (Measure.measure t choice sched) = Float.infinity)

(* The watchdog cap converts oversized candidates into Timeouts without
   simulating them. *)
let test_watchdog_timeout () =
  let op = tiny_c2d () in
  let choice, sched = fixed_candidate op in
  let t = make_task ~watchdog_points:1 op in
  (match Measure.measure t choice sched with
  | Measure.Timeout -> ()
  | o -> Alcotest.failf "expected Timeout, got %a" Measure.pp_outcome o);
  let st = Measure.cache_stats t in
  Alcotest.(check int) "nothing simulated into the cache" 1 st.Measure.misses;
  (* a roomy cap changes nothing *)
  let t2 = make_task ~watchdog_points:max_int op in
  let clean = make_task op in
  Alcotest.(check bool)
    "roomy watchdog = no watchdog" true
    (Measure.measure t2 choice sched = Measure.measure clean choice sched)

(* Fault injection sits above the backend dispatch, so a crashing
   candidate must follow the exact same retry/quarantine path whether
   the measurement below it is the simulator or a compiled kernel: same
   structured error, same quarantine answer on re-proposal, same fault
   counters and budget charges. *)
let test_exec_crash_quarantines_identically () =
  let op = tiny_c2d () in
  let seed = seed_with_mode op (function Fault.Crash -> true | _ -> false) in
  let choice, sched = fixed_candidate op in
  let faults () = Fault.create ~seed ~rate:1.0 () in
  let sim = make_task ~faults:(faults ()) ~retries:1 op in
  let exec = make_task ~faults:(faults ()) ~retries:1 ~backend:exec_backend op in
  let sim1 = Measure.measure sim choice sched in
  let exec1 = Measure.measure exec choice sched in
  Alcotest.(check bool)
    (Fmt.str "first outcome identical (%a)" Measure.pp_outcome exec1)
    true (sim1 = exec1);
  (match exec1 with
  | Measure.Sim_error _ -> ()
  | o -> Alcotest.failf "expected Sim_error, got %a" Measure.pp_outcome o);
  let sim2 = Measure.measure sim choice sched in
  let exec2 = Measure.measure exec choice sched in
  Alcotest.(check bool) "re-proposal quarantined on both" true
    (sim2 = Measure.Quarantined && exec2 = Measure.Quarantined);
  let fs = Measure.fault_stats sim and fe = Measure.fault_stats exec in
  Alcotest.(check bool) "fault counters identical" true (fs = fe);
  Alcotest.(check int) "budget charged identically" sim.Measure.spent
    exec.Measure.spent

(* ------------------------------------------------------------------ *)
(* Fault-off identity; tuners under faults                             *)
(* ------------------------------------------------------------------ *)

(* With the injector off, the retry budget is dead code: trajectories are
   byte-identical whatever its value (the fault-free pipeline is the
   pre-fault-model pipeline). *)
let prop_fault_off_retries_inert =
  QCheck2.Test.make ~count:20 ~name:"fault off: retries/watchdog are inert"
    QCheck2.Gen.(pair (int_bound 999) (int_bound 4))
    (fun (seed, retries) ->
      let op = tiny_c2d () in
      let run ?watchdog_points retries =
        let task = make_task ~retries ?watchdog_points op in
        Tuner.tune_loop_only ~seed ~explorer:Tuner.Guided ~budget:12
          ~layouts:[ Templates.trivial_choice op ]
          task
      in
      result_equal (run 0) (run retries)
      && result_equal (run 0) (run ~watchdog_points:max_int 0))

(* Under faults the trajectory must still be independent of the pool
   size: faults are decided per candidate key, retries are replayed on
   the calling domain, so jobs=1 and jobs=4 agree byte-for-byte. *)
let prop_faulty_differential =
  QCheck2.Test.make ~count:20 ~name:"fault rate 0.3: jobs=1 = jobs=4"
    QCheck2.Gen.(pair (int_bound 999) (int_bound 2))
    (fun (seed, e) ->
      let explorer =
        match e with 0 -> Tuner.Guided | 1 -> Tuner.Walk | _ -> Tuner.Restricted
      in
      let op = tiny_c2d () in
      let run jobs =
        let task =
          make_task ~faults:(Fault.create ~seed ~rate:0.3 ()) ~retries:2 op
        in
        Tuner.tune_loop_only ~seed ~jobs ~explorer ~budget:14
          ~layouts:[ Templates.trivial_choice op ]
          task
      in
      result_equal (run 1) (run 4))

(* The same pool-size independence must hold when the measurements are
   exec-backend kernel runs (virtual clock: deterministic latencies). *)
let prop_exec_faulty_differential =
  QCheck2.Test.make ~count:20
    ~name:"exec backend, fault rate 0.3: jobs=1 = jobs=4"
    QCheck2.Gen.(pair (int_bound 999) (int_bound 2))
    (fun (seed, e) ->
      let explorer =
        match e with 0 -> Tuner.Guided | 1 -> Tuner.Walk | _ -> Tuner.Restricted
      in
      let op = tiny_c2d () in
      let run jobs =
        let task =
          make_task
            ~faults:(Fault.create ~seed ~rate:0.3 ())
            ~retries:2 ~backend:exec_backend op
        in
        Tuner.tune_loop_only ~seed ~jobs ~explorer ~budget:14
          ~layouts:[ Templates.trivial_choice op ]
          task
      in
      result_equal (run 1) (run 4))

(* jobs x domains composition (DESIGN.md §15): pool workers measuring
   concurrently, each kernel fanning its parallel band out over the
   shared 4-domain team, under 30% faults — the trajectory must still be
   byte-identical to the serial pool, serial kernels.  Exercises
   Team.parallel_for being entered from inside Pool tasks. *)
let exec_domains_backend domains =
  Runtime.Exec
    {
      Exec.warmup = 0;
      repeats = 1;
      clock = Exec.Virtual (fun p -> 0.001 *. float_of_int p.Program.flops);
      domains;
    }

let prop_jobs_domains_composition =
  QCheck2.Test.make ~count:10
    ~name:"exec backend, 30% faults: jobs=1/domains=1 = jobs=4/domains=4"
    QCheck2.Gen.(int_bound 999)
    (fun seed ->
      let op = tiny_c2d () in
      let run jobs domains =
        let task =
          make_task
            ~faults:(Fault.create ~seed ~rate:0.3 ())
            ~retries:2
            ~backend:(exec_domains_backend domains)
            op
        in
        Tuner.tune_loop_only ~seed ~jobs ~explorer:Tuner.Guided ~budget:12
          ~layouts:[ Templates.trivial_choice op ]
          task
      in
      (* the backend tag (and so the fingerprint) differs at domains=4,
         but the measured trajectory must not: compare fields *)
      result_equal (run 1 1) (run 4 4) && result_equal (run 1 4) (run 1 1))

(* Every explorer policy (and the GBDT cost model they feed) must survive
   a run where every measurement fails: finite budget fully spent, no NaN
   anywhere in the trajectory, and a well-formed fallback result. *)
let test_all_fail_still_completes () =
  let op = tiny_c2d () in
  List.iter
    (fun explorer ->
      let task =
        make_task ~faults:(Fault.create ~seed:1 ~rate:1.0 ()) ~retries:0 op
      in
      let r =
        Tuner.tune_loop_only ~seed:3 ~explorer ~budget:20
          ~layouts:[ Templates.trivial_choice op ]
          task
      in
      Alcotest.(check bool)
        "best latency is infinite, not NaN" true
        (r.Tuner.best_latency = Float.infinity);
      Alcotest.(check bool)
        "no NaN in history" true
        (List.for_all (fun (_, l) -> not (Float.is_nan l)) r.Tuner.history);
      Alcotest.(check bool) "budget spent" true (r.Tuner.spent >= 20);
      Alcotest.(check bool)
        "fallback candidate lowers" true
        (Measure.program_of task r.Tuner.best_choice r.Tuner.best_schedule
        <> None);
      let fs = Measure.fault_stats task in
      Alcotest.(check bool) "faults recorded" true (fs.Measure.faulted > 0))
    [ Tuner.Guided; Tuner.Walk; Tuner.Restricted ]

(* At a moderate fault rate the tuner must still find a finite best; the
   run with faults can never beat the fault-free run (it only loses
   measurements). *)
let test_partial_faults_still_tune () =
  let op = tiny_c2d () in
  let run faults =
    let task = make_task ?faults ~retries:2 op in
    let r =
      Tuner.tune_alt ~seed:5 ~layout_explorer:`Random ~joint_budget:10
        ~loop_budget:10 task
    in
    (r, Measure.fault_stats task)
  in
  let clean, _ = run None in
  let faulty, fs = run (Some (Fault.create ~seed:2 ~rate:0.3 ())) in
  Alcotest.(check bool)
    "faulty run finds a finite best" true
    (Float.is_finite faulty.Tuner.best_latency);
  Alcotest.(check bool) "faults were injected" true (fs.Measure.faulted > 0);
  Alcotest.(check bool)
    "faulty best >= clean best" true
    (faulty.Tuner.best_latency >= clean.Tuner.best_latency);
  Alcotest.(check int) "same budget spent" clean.Tuner.spent faulty.Tuner.spent

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume                                                  *)
(* ------------------------------------------------------------------ *)

let with_tmp f =
  let path = Filename.temp_file "altckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_tmp (fun path ->
      let op = tiny_c2d () in
      let t = make_task op in
      let choice, sched = fixed_candidate op in
      ignore (Measure.measure t choice sched : Measure.outcome);
      let cache, quarantine = Measure.snapshot t in
      let c =
        {
          Checkpoint.fingerprint = Measure.fingerprint ~seed:0 ~tag:"t" t;
          rounds = 3;
          spent = t.Measure.spent;
          best_latency = 1.5;
          rng_digest = "d";
          cache;
          quarantine;
        }
      in
      Checkpoint.save ~path c;
      Alcotest.(check bool) "roundtrip" true (Checkpoint.load ~path = c);
      (* restoring into a fresh task turns the measurement into a hit *)
      let t2 = make_task op in
      Measure.restore t2 ~cache ~quarantine;
      (match Measure.measure t2 choice sched with
      | Measure.Ok _ -> ()
      | o -> Alcotest.failf "expected Ok from cache, got %a" Measure.pp_outcome o);
      Alcotest.(check int)
        "restored measurement is a cache hit" 1
        (Measure.cache_stats t2).Measure.hits)

let test_checkpoint_rejects_garbage () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "definitely not a checkpoint";
      close_out oc;
      match Checkpoint.load ~path with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ());
  Alcotest.(check bool)
    "load_opt on a missing path" true
    (Checkpoint.load_opt ~path:"/nonexistent/alt.ckpt" = None)

exception Killed

(* A tuning run as a function of the checkpoint triple; each call builds
   its own fresh task, as a restarted process would. *)
type runner = {
  run :
    checkpoint:string option ->
    resume:string option ->
    on_round:(int -> unit) option ->
    Tuner.result;
}

let loop_runner ~faults =
  {
    run =
      (fun ~checkpoint ~resume ~on_round ->
        let op = tiny_c2d () in
        let task = make_task ?faults ~retries:1 op in
        Tuner.tune_loop_only ~seed:11 ?checkpoint ?resume ?on_round
          ~explorer:Tuner.Guided ~budget:30
          ~layouts:
            [ Templates.trivial_choice op; Templates.channels_last_choice op ]
          task);
  }

let alt_runner ~faults =
  {
    run =
      (fun ~checkpoint ~resume ~on_round ->
        let op = tiny_c2d () in
        let task = make_task ?faults ~retries:1 op in
        Tuner.tune_alt ~seed:4 ~layout_explorer:`Ppo_fresh ?checkpoint ?resume
          ?on_round ~joint_budget:12 ~loop_budget:12 task);
  }

(* Kill a checkpointed run after round [kill_round] (the hook raising
   stands in for a killed process), resume from the journal, and require
   the exact result of the uninterrupted run. *)
let kill_and_resume ~kill_round { run } =
  with_tmp (fun path ->
      let uninterrupted = run ~checkpoint:None ~resume:None ~on_round:None in
      (try
         ignore
           (run ~checkpoint:(Some path) ~resume:None
              ~on_round:(Some (fun r -> if r = kill_round then raise Killed))
             : Tuner.result)
       with Killed -> ());
      Alcotest.(check bool)
        "a checkpoint was written" true
        (Checkpoint.load_opt ~path <> None);
      let resumed =
        run ~checkpoint:(Some path) ~resume:(Some path) ~on_round:None
      in
      Alcotest.(check bool)
        "resumed = uninterrupted" true
        (result_equal uninterrupted resumed))

let test_kill_resume_loop_only () =
  List.iter
    (fun kill_round -> kill_and_resume ~kill_round (loop_runner ~faults:None))
    [ 1; 2; 3 ]

(* With faults on, the quarantine table rides through the journal too:
   the resumed run answers quarantined candidates without re-simulating
   and still reproduces the uninterrupted trajectory. *)
let test_kill_resume_alt_under_faults () =
  let faults = Some (Fault.create ~seed:6 ~rate:0.25 ()) in
  List.iter
    (fun kill_round -> kill_and_resume ~kill_round (alt_runner ~faults))
    [ 2; 4 ]

(* A checkpoint written under one tuner configuration must not resume a
   differently-configured run whose trajectory it would silently
   corrupt. *)
let test_fingerprint_mismatch_rejected () =
  with_tmp (fun path ->
      ignore
        ((loop_runner ~faults:None).run ~checkpoint:(Some path) ~resume:None
           ~on_round:None
          : Tuner.result);
      let op = tiny_c2d () in
      let task = make_task ~retries:1 op in
      match
        Tuner.tune_loop_only ~seed:11 ~resume:path ~explorer:Tuner.Walk
          ~budget:10
          ~layouts:[ Templates.trivial_choice op ]
          task
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_faults"
    [
      ( "injector",
        [
          Alcotest.test_case "deterministic per (seed, key)" `Quick
            test_injector_deterministic;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "flaky fault recovers by retry" `Quick
            test_flaky_recovers;
          Alcotest.test_case "crash exhausts retries, quarantines" `Quick
            test_crash_quarantines;
          Alcotest.test_case "watchdog timeout" `Quick test_watchdog_timeout;
          Alcotest.test_case "exec backend quarantines identically" `Quick
            test_exec_crash_quarantines_identically;
        ] );
      ( "tuners-under-faults",
        [
          Alcotest.test_case "100% faults: every explorer completes" `Quick
            test_all_fail_still_completes;
          Alcotest.test_case "30% faults: still tunes" `Quick
            test_partial_faults_still_tune;
        ] );
      qsuite "fault-props"
        [
          prop_fault_off_retries_inert;
          prop_faulty_differential;
          prop_exec_faulty_differential;
          prop_jobs_domains_composition;
        ];
      ( "checkpoint",
        [
          Alcotest.test_case "save/load roundtrip + restore" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "garbage and missing files" `Quick
            test_checkpoint_rejects_garbage;
          Alcotest.test_case "kill+resume = uninterrupted (loop-only)" `Quick
            test_kill_resume_loop_only;
          Alcotest.test_case "kill+resume = uninterrupted (alt, faults)"
            `Quick test_kill_resume_alt_under_faults;
          Alcotest.test_case "foreign checkpoint rejected" `Quick
            test_fingerprint_mismatch_rejected;
        ] );
    ]
