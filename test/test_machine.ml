(* Machine-model invariants: determinism, monotonicity of the latency
   model, counter consistency between machines, and sampling extrapolation
   on programs where exact counters are known. *)

open Alt_tensor
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Ops = Alt_graph.Ops
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Runtime = Alt_machine.Runtime
module Opdef = Alt_ir.Opdef

let trivial shape = Layout.create shape

let gmm_prog ?(vec = false) ?(par = 0) () =
  let op = Ops.gmm ~name:"g" ~a:"A" ~b:"B" ~out:"C" ~m:16 ~k:16 ~n:16 () in
  let s = Schedule.default ~rank:2 ~nred:1 in
  let s = if vec then Schedule.vectorize s else s in
  let s = Schedule.parallel s par in
  let prog =
    Lower.lower ~op
      ~layouts:(fun n -> trivial (if n = "A" then [| 16; 16 |] else [| 16; 16 |]))
      ~out_layout:(trivial [| 16; 16 |])
      ~schedule:s ()
  in
  (op, prog)

let run_prog ?machine prog =
  let inputs =
    [ ("A", Buffer.random ~seed:1 [| 16; 16 |]); ("B", Buffer.random ~seed:2 [| 16; 16 |]) ]
  in
  Runtime.run_logical ?machine prog ~inputs

let test_determinism () =
  let _, prog = gmm_prog () in
  let _, r1 = run_prog prog in
  let _, r2 = run_prog prog in
  Alcotest.(check (float 0.0)) "latency deterministic" r1.Profiler.latency_ms
    r2.Profiler.latency_ms;
  Alcotest.(check (float 0.0)) "misses deterministic" r1.Profiler.l1_misses
    r2.Profiler.l1_misses

let test_flops_exact () =
  (* GMM 16x16x16: mul+add per MAC -> 2*16^3 flops *)
  let _, prog = gmm_prog () in
  let _, r = run_prog prog in
  Alcotest.(check (float 0.0)) "flops" (2.0 *. (16.0 ** 3.0)) r.Profiler.flops

let test_machines_differ () =
  let _, prog = gmm_prog ~vec:true () in
  let lats =
    List.map
      (fun m ->
        let _, r = run_prog ~machine:m prog in
        r.Profiler.latency_ms)
      Machine.all
  in
  (* three distinct profiles should give three distinct latencies *)
  Alcotest.(check int) "distinct" 3
    (List.length (List.sort_uniq Float.compare lats))

let test_latency_positive_and_finite () =
  List.iter
    (fun m ->
      let _, prog = gmm_prog ~vec:true ~par:1 () in
      let _, r = run_prog ~machine:m prog in
      Alcotest.(check bool)
        (m.Machine.name ^ " positive")
        true
        (Float.is_finite r.Profiler.latency_ms && r.Profiler.latency_ms > 0.0))
    Machine.all

let test_register_promotion () =
  (* with reduction innermost, the accumulator must not dominate stores:
     output stores should be near one per output element *)
  let _, prog = gmm_prog () in
  let _, r = run_prog prog in
  Alcotest.(check bool)
    (Fmt.str "stores %.0f < 3x outputs" r.Profiler.stores)
    true
    (r.Profiler.stores < 3.0 *. 256.0)

let test_sampling_scale_bounds () =
  let op =
    Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8 ~o:8 ~h:12 ~w:12
      ~kh:3 ~kw:3 ()
  in
  let prog =
    Lower.lower ~op
      ~layouts:(fun n ->
        trivial (Opdef.input_shape op n))
      ~out_layout:(trivial [| 1; 8; 12; 12 |])
      ~schedule:(Schedule.default ~rank:4 ~nred:3)
      ()
  in
  let inputs =
    List.map (fun (n, s) -> (n, Buffer.random s)) op.Opdef.inputs
  in
  let bufs = Runtime.alloc_bufs prog ~inputs in
  let full = Profiler.run prog ~bufs in
  List.iter
    (fun budget ->
      let bufs = Runtime.alloc_bufs prog ~inputs in
      let s = Profiler.run ~max_points:budget prog ~bufs in
      Alcotest.(check bool) "sampled" true s.Profiler.sampled;
      let ratio = s.Profiler.flops /. full.Profiler.flops in
      Alcotest.(check bool)
        (Fmt.str "flops ratio %.3f within 25%% at budget %d" ratio budget)
        true
        (ratio > 0.75 && ratio < 1.25))
    [ 2_000; 10_000; 50_000 ]

let test_gpu_parallel_wins () =
  (* the GPU profile must reward parallel programs more than the ARM one *)
  let _, prog_par = gmm_prog ~vec:true ~par:2 () in
  let _, prog_ser = gmm_prog ~vec:true ~par:0 () in
  let speedup m =
    let _, rp = run_prog ~machine:m prog_par in
    let _, rs = run_prog ~machine:m prog_ser in
    rs.Profiler.latency_ms /. rp.Profiler.latency_ms
  in
  Alcotest.(check bool) "gpu speedup > arm speedup" true
    (speedup Machine.nvidia_gpu >= speedup Machine.arm_cpu)

let test_fused_logical_profile_independent () =
  (* one fused conv+relu program, executed under all three machine
     profiles: latencies differ, logical outputs must not *)
  let op =
    Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:8 ~w:8
      ~kh:3 ~kw:3 ()
  in
  let relu = Ops.relu ~name:"r" ~inp:"Y" ~out:"Z" ~shape:op.Opdef.out_shape () in
  let out_layout = trivial op.Opdef.out_shape in
  let prog =
    Lower.lower ~op
      ~layouts:(fun n -> trivial (Opdef.input_shape op n))
      ~out_layout
      ~fused:[ { Lower.fop = relu; fout_layout = out_layout } ]
      ~schedule:(Schedule.default ~rank:4 ~nred:3)
      ()
  in
  let inputs =
    List.map (fun (n, s) -> (n, Buffer.random ~seed:11 s)) op.Opdef.inputs
  in
  let runs =
    List.map
      (fun m ->
        let outs, r = Runtime.run_logical ~machine:m prog ~inputs in
        (m, List.assoc "Z" outs, r))
      Machine.all
  in
  let _, z0, _ = List.hd runs in
  Alcotest.(check bool) "relu clamped" true (Array.for_all (fun v -> v >= 0.0) z0);
  Alcotest.(check bool) "relu nontrivial" true (Array.exists (fun v -> v > 0.0) z0);
  List.iter
    (fun ((m : Machine.t), z, (r : Profiler.result)) ->
      Alcotest.(check bool)
        (m.Machine.name ^ " finite latency")
        true
        (Float.is_finite r.Profiler.latency_ms && r.Profiler.latency_ms > 0.0);
      Alcotest.(check bool)
        (m.Machine.name ^ " logical output profile-independent")
        true (z = z0))
    runs

(* ------------------------------------------------------------------ *)
(* Cache bulk interface: state-level oracle                           *)
(* ------------------------------------------------------------------ *)

module Cache = Alt_machine.Cache

(* The profiler's fast path memoizes a way handle per stream and only
   revalidates it when [generation] moved (DESIGN.md §9).  This drives a
   cache through that exact discipline — touch_run on an unchanged
   generation, access_run re-probe when installs happened but the way
   still holds the line, full access_run reinstall after a conflict
   eviction — while a reference cache replays the equivalent plain
   [access] sequence.  Tags, per-set recency order and all counters
   must end identical; this is the state oracle behind the fast
   engine's counter-exactness claim. *)
let test_bulk_state_oracle () =
  let cfg = { Cache.size_bytes = 1024; assoc = 2; line_bytes = 64 } in
  let sets = cfg.Cache.size_bytes / (cfg.Cache.assoc * cfg.Cache.line_bytes) in
  let fast = Cache.create cfg and elem = Cache.create cfg in
  let line_of addr = addr / cfg.Cache.line_bytes in
  (* memoized stream handle, exactly as the profiler keeps one *)
  let s_addr = ref 0 in
  let s_way = ref (-1) and s_line = ref (-1) and s_gen = ref (-1) in
  let revalidations = ref 0 and reinstalls = ref 0 and memo_hits = ref 0 in
  let run_stream n =
    let line = line_of !s_addr in
    (if !s_way >= 0 && !s_line = line && !s_gen = Cache.generation fast then begin
       (* no install since validation: guaranteed-hit bulk touch *)
       incr memo_hits;
       Cache.touch_run fast !s_way n
     end
     else if !s_way >= 0 && !s_line = line && Cache.way_line fast !s_way = line
     then begin
       (* generation moved but the way still holds our line: one real
          probe revalidates, the rest is bulk *)
       incr revalidations;
       let hit, way = Cache.access_run fast !s_addr n in
       Alcotest.(check bool) "revalidated line hits" true hit;
       s_way := way;
       s_gen := Cache.generation fast
     end
     else begin
       (* cold or evicted (or the stream advanced): full re-probe *)
       incr reinstalls;
       let _hit, way = Cache.access_run fast !s_addr n in
       s_way := way;
       s_line := line;
       s_gen := Cache.generation fast
     end);
    for _ = 1 to n do
      ignore (Cache.access elem !s_addr : bool)
    done
  in
  let both_access addr =
    ignore (Cache.access fast addr : bool);
    ignore (Cache.access elem addr : bool)
  in
  let both_prefetch addr =
    ignore (Cache.prefetch fast addr : bool);
    ignore (Cache.prefetch elem addr : bool)
  in
  let st = Random.State.make [| 7 |] in
  for _round = 1 to 400 do
    run_stream (1 + Random.State.int st 4);
    match Random.State.int st 5 with
    | 0 ->
        (* conflicting same-set traffic; k > assoc - 1 evicts our line *)
        let k = 1 + Random.State.int st (cfg.Cache.assoc + 1) in
        for j = 1 to k do
          both_access (!s_addr + (j * sets * cfg.Cache.line_bytes))
        done
    | 1 ->
        (* prefetch install elsewhere bumps the generation without
           touching our set *)
        both_prefetch (!s_addr + cfg.Cache.line_bytes)
    | 2 ->
        (* stream advances to the next line, as at a loop-row boundary *)
        s_addr := (!s_addr + cfg.Cache.line_bytes)
                  mod (4 * sets * cfg.Cache.line_bytes)
    | _ -> ()
  done;
  (* every branch of the memoization discipline must actually fire *)
  Alcotest.(check bool)
    (Fmt.str "all paths exercised (memo %d, revalidate %d, reinstall %d)"
       !memo_hits !revalidations !reinstalls)
    true
    (!memo_hits > 0 && !revalidations > 0 && !reinstalls > 0);
  let fs = Cache.stats fast and es = Cache.stats elem in
  Alcotest.(check int) "accesses" es.Cache.accesses fs.Cache.accesses;
  Alcotest.(check int) "hits" es.Cache.hits fs.Cache.hits;
  Alcotest.(check int) "misses" es.Cache.misses fs.Cache.misses;
  Alcotest.(check int) "prefetch installs" es.Cache.prefetch_installs
    fs.Cache.prefetch_installs;
  Alcotest.(check int) "prefetch hits" es.Cache.prefetch_hits
    fs.Cache.prefetch_hits;
  let ftags, fstamps = Cache.dump fast and etags, estamps = Cache.dump elem in
  Alcotest.(check bool) "tags identical" true (ftags = etags);
  let recency tags stamps =
    List.init sets (fun s ->
        List.init cfg.Cache.assoc (fun w -> w)
        |> List.filter (fun w -> tags.((s * cfg.Cache.assoc) + w) >= 0)
        |> List.sort (fun a b ->
               compare
                 stamps.((s * cfg.Cache.assoc) + a)
                 stamps.((s * cfg.Cache.assoc) + b)))
  in
  Alcotest.(check bool) "per-set recency order identical" true
    (recency ftags fstamps = recency etags estamps)

let () =
  Alcotest.run "alt_machine"
    [
      ( "profiler",
        [
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "exact flops" `Quick test_flops_exact;
          Alcotest.test_case "machines differ" `Quick test_machines_differ;
          Alcotest.test_case "finite latency" `Quick
            test_latency_positive_and_finite;
          Alcotest.test_case "register promotion" `Quick
            test_register_promotion;
          Alcotest.test_case "sampling extrapolation" `Quick
            test_sampling_scale_bounds;
          Alcotest.test_case "gpu parallel advantage" `Quick
            test_gpu_parallel_wins;
          Alcotest.test_case "fused conv+relu profile-independent" `Quick
            test_fused_logical_profile_independent;
        ] );
      ( "cache",
        [
          Alcotest.test_case "bulk interface state oracle" `Quick
            test_bulk_state_oracle;
        ] );
    ]
