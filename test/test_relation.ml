(* The proof burden of the layout algebra (DESIGN.md §16).

   Random layout primitive chains (depth <= 8, all five single-tensor
   primitives, padded/unfolded/fused shapes) drive the relation laws:

   - backward o forward = id on every in-domain point,
   - forward o backward = id on the live range (holes are zero-filled),
   - compose = sequential application at every chain split point,
   - canonicalization is idempotent,
   - the relation-backed [Layout.pack]/[unpack]/[eval_fwd]/[phys_index]
     are byte-identical to the kept-verbatim seed implementations in
     [Layout.Reference] (the differential oracle, runtime-selectable
     with ALT_LAYOUT_REFERENCE=1),
   - strides/extents/conversion-cost read off the relation agree with
     the physical shape,

   plus pinned unit regressions for each canonicalization rewrite, the
   window/shift guards, and the incremental-validation fix (an
   n-primitive chain costs exactly n validations, counted by the
   [layout.relation.validate] metric — the seed re-validated the whole
   prefix per step, n(n+1)/2).

   ALT_RELATION_COUNT scales the per-property chain count (default 500,
   the ISSUE floor; `make relation-smoke` runs a reduced count). *)

open Alt_tensor

let counts =
  match Sys.getenv_opt "ALT_RELATION_COUNT" with
  | Some s -> ( try max 10 (int_of_string s) with _ -> 500)
  | None -> 500

let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Random primitive chains                                            *)
(* ------------------------------------------------------------------ *)

let gen_shape =
  let open QCheck2.Gen in
  let* rank = int_range 1 3 in
  let* dims = list_repeat rank (oneofl [ 2; 3; 4; 6 ]) in
  return (Array.of_list dims)

let gen_perm rank =
  let open QCheck2.Gen in
  let* swaps =
    list_size (int_range 0 4) (pair (int_range 0 (rank - 1)) (int_range 0 (rank - 1)))
  in
  let perm = Array.init rank (fun i -> i) in
  List.iter
    (fun (i, j) ->
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t)
    swaps;
  return perm

(* One random primitive applied to [l], or [l] unchanged when the drawn
   primitive has no legal instantiation on the current physical shape.
   [basic_only] restricts to split/reorder/fuse (bijective chains). *)
let gen_step ?(basic_only = false) l =
  let open QCheck2.Gen in
  let phys = Layout.physical_shape l in
  let rank = Shape.rank phys in
  if Shape.num_elements phys > 1024 then return l
  else
    let* k = if basic_only then int_range 0 2 else int_range 0 4 in
    match k with
    | 0 ->
        let* dim = int_range 0 (rank - 1) in
        let d = phys.(dim) in
        let ds = List.filter (fun f -> f > 1 && f < d) (Shape.divisors d) in
        if ds = [] then return l
        else
          let* f = oneofl ds in
          return (Layout.split l ~dim ~factors:[ d / f; f ])
    | 1 ->
        let* perm = gen_perm rank in
        return (Layout.reorder l perm)
    | 2 ->
        if rank < 2 then return l
        else
          let* dim = int_range 0 (rank - 2) in
          let* count = int_range 2 (min 3 (rank - dim)) in
          return (Layout.fuse l ~dim ~count)
    | 3 ->
        let* dim = int_range 0 (rank - 1) in
        let* lo = int_range 0 2 in
        let* hi = int_range 0 2 in
        if lo = 0 && hi = 0 then return l else return (Layout.pad l ~dim ~lo ~hi)
    | _ ->
        let* dim = int_range 0 (rank - 1) in
        let d = phys.(dim) in
        if d < 2 then return l
        else
          let* tile = int_range 2 (min d 4) in
          let* stride = int_range 1 tile in
          return (Layout.unfold l ~dim ~tile ~stride)

let gen_chain ?basic_only () =
  let open QCheck2.Gen in
  let* shape = gen_shape in
  let* depth = int_range 0 8 in
  let rec go l n = if n = 0 then return l else bind (gen_step ?basic_only l) (fun l' -> go l' (n - 1)) in
  go (Layout.create shape) depth

let print_layout l = Fmt.str "%a" Layout.pp l

let src_of l =
  Array.init (Shape.num_elements (Layout.logical_shape l)) (fun i ->
      float_of_int (i + 1))

(* ------------------------------------------------------------------ *)
(* Round-trip laws                                                    *)
(* ------------------------------------------------------------------ *)

let prop_bwd_fwd_id =
  QCheck2.Test.make ~count:counts ~name:"backward o forward = id (domain)"
    ~print:print_layout (gen_chain ()) (fun l ->
      let r = Layout.relation l in
      let dom = Relation.domain r in
      let bwd = Relation.compile_bwd r in
      let ok = ref true in
      for off = 0 to Shape.num_elements dom - 1 do
        let x = Shape.index_of_offset dom off in
        let images = Relation.fwd_points r x in
        (* stride <= tile in the generator: every element lives in >= 1 tile *)
        if images = [] then ok := false;
        List.iter (fun y -> if bwd y <> Some x then ok := false) images
      done;
      !ok)

let prop_fwd_bwd_id =
  QCheck2.Test.make ~count:counts ~name:"forward o backward = id (range)"
    ~print:print_layout (gen_chain ()) (fun l ->
      let r = Layout.relation l in
      let rng = Relation.range r in
      let bwd = Relation.compile_bwd r in
      let packed = Layout.pack l (src_of l) in
      let ok = ref true in
      for off = 0 to Shape.num_elements rng - 1 do
        let y = Shape.index_of_offset rng off in
        match bwd y with
        | Some x ->
            (* the unique source must map forward onto this very point *)
            if not (List.exists (fun y' -> y' = y) (Relation.fwd_points r x))
            then ok := false
        | None ->
            (* a hole: pack must have zero-filled it (source is all > 0) *)
            if packed.(off) <> 0.0 then ok := false
      done;
      !ok)

let prop_compose_sequential =
  QCheck2.Test.make ~count:counts ~name:"compose = sequential application"
    ~print:(fun (l, k) -> Fmt.str "%s @ %d" (print_layout l) k)
    QCheck2.Gen.(
      bind (gen_chain ()) (fun l ->
          map (fun k -> (l, k)) (int_range 0 (List.length (Layout.prims l)))))
    (fun (l, k) ->
      let ps = Layout.prims l in
      let take n xs = List.filteri (fun i _ -> i < n) xs in
      let drop n xs = List.filteri (fun i _ -> i >= n) xs in
      let l1 = Layout.of_prims (Layout.logical_shape l) (take k ps) in
      let l2 = Layout.of_prims (Layout.physical_shape l1) (drop k ps) in
      let r = Layout.relation l
      and r12 = Relation.compose (Layout.relation l1) (Layout.relation l2) in
      if not (Shape.equal (Relation.domain r) (Relation.domain r12)) then false
      else if not (Shape.equal (Relation.range r) (Relation.range r12)) then
        false
      else begin
        let rng = Relation.range r in
        let bwd = Relation.compile_bwd r
        and bwd12 = Relation.compile_bwd r12 in
        let ok = ref true in
        for off = 0 to Shape.num_elements rng - 1 do
          let y = Shape.index_of_offset rng off in
          if bwd y <> bwd12 y then ok := false
        done;
        !ok
      end)

let prop_canonicalize_idempotent =
  QCheck2.Test.make ~count:counts ~name:"canonicalization idempotent"
    ~print:print_layout (gen_chain ()) (fun l ->
      let r = Layout.relation l in
      let c = Relation.canonicalize r in
      Relation.equal r c && Relation.equal c (Relation.canonicalize c))

let prop_inverse_roundtrip =
  QCheck2.Test.make ~count:counts ~name:"inverse o forward = id (bijective)"
    ~print:print_layout
    (gen_chain ~basic_only:true ())
    (fun l ->
      let r = Layout.relation l in
      if not (Relation.bijective r) then false
      else begin
        let inv = Relation.inverse r in
        let fwd = Relation.compile_fwd r
        and back = Relation.compile_fwd inv in
        let dom = Relation.domain r in
        let ok = ref true in
        if not (Shape.equal (Relation.domain inv) (Relation.range r)) then
          ok := false;
        if not (Shape.equal (Relation.range inv) dom) then ok := false;
        for off = 0 to Shape.num_elements dom - 1 do
          let x = Shape.index_of_offset dom off in
          if back (fwd x) <> x then ok := false
        done;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Differential oracle: relation path = seed path, byte-identical     *)
(* ------------------------------------------------------------------ *)

let prop_pack_differential =
  QCheck2.Test.make ~count:counts
    ~name:"pack/unpack/physical_shape = Reference (byte-identical)"
    ~print:print_layout (gen_chain ()) (fun l ->
      let src = src_of l in
      let packed = Layout.pack l src and packed_ref = Layout.Reference.pack l src in
      packed = packed_ref
      && Layout.unpack l packed = Layout.Reference.unpack l packed_ref
      && Layout.physical_shape l = Layout.Reference.physical_shape l)

let prop_phys_index_differential =
  QCheck2.Test.make ~count:counts
    ~name:"phys_index/eval_fwd = Reference (byte-identical)"
    ~print:print_layout
    (* unfold is one-to-many: eval_fwd/phys_index reject it, so the
       oracle runs on pad/split/reorder/fuse chains (pad included via a
       post-hoc filter on unfold only) *)
    (QCheck2.Gen.map
       (fun l ->
         if
           List.exists
             (function Layout.Unfold _ -> true | _ -> false)
             (Layout.prims l)
         then Layout.create (Layout.logical_shape l)
         else l)
       (gen_chain ()))
    (fun l ->
      let fwd = Layout.eval_fwd l and fwd_ref = Layout.Reference.eval_fwd l in
      let pix = Layout.phys_index l and pix_ref = Layout.Reference.phys_index l in
      let dom = Layout.logical_shape l in
      let ok = ref true in
      for off = 0 to Shape.num_elements dom - 1 do
        let x = Shape.index_of_offset dom off in
        if fwd x <> fwd_ref x then ok := false;
        if pix x <> pix_ref x then ok := false
      done;
      !ok)

let prop_strides_and_cost =
  QCheck2.Test.make ~count:counts ~name:"strides/extents/cost from relation"
    ~print:print_layout (gen_chain ()) (fun l ->
      let r = Layout.relation l in
      let phys = Layout.Reference.physical_shape l in
      Layout.phys_strides l = Shape.strides phys
      && Relation.range_strides r = Shape.strides phys
      && Relation.num_range_elements r = Shape.num_elements phys
      && Relation.expansion r >= 1.0
      && Relation.conversion_cost r
         = Shape.num_elements (Layout.logical_shape l) + Shape.num_elements phys
      && Layout.conversion_cost l = Relation.conversion_cost r)

(* ------------------------------------------------------------------ *)
(* Pinned canonicalization / guard regressions                        *)
(* ------------------------------------------------------------------ *)

let steps_str r = Fmt.str "%a" Fmt.(list ~sep:(any ";") Relation.pp_step) (Relation.steps r)

let test_canon_permute_fusion () =
  let s = [| 2; 3; 4 |] in
  let r1 = Relation.permute s [| 1; 2; 0 |] in
  let r2 = Relation.permute (Relation.range r1) [| 2; 0; 1 |] in
  (* fusing the two rotations yields the identity: empty canonical chain *)
  let r = Relation.compose r1 r2 in
  check_int "identity chain" 0 (List.length (Relation.steps r));
  (* a non-identity fusion stays a single permute *)
  let r3 = Relation.permute (Relation.range r1) [| 1; 0; 2 |] in
  let r' = Relation.compose r1 r3 in
  Alcotest.(check string) "fused" "permute([2,1,0])" (steps_str r')

let test_canon_decode_encode_cancel () =
  let s = [| 12 |] in
  let d = Relation.decode s ~dim:0 ~radices:[| 3; 4 |] in
  let e = Relation.encode (Relation.range d) ~dim:0 ~radices:[| 3; 4 |] in
  check_int "decode;encode cancels" 0
    (List.length (Relation.steps (Relation.compose d e)));
  let e' = Relation.encode [| 3; 4 |] ~dim:0 ~radices:[| 3; 4 |] in
  let d' = Relation.decode [| 12 |] ~dim:0 ~radices:[| 3; 4 |] in
  check_int "encode;decode cancels" 0
    (List.length (Relation.steps (Relation.compose e' d')))

let test_canon_shift_merge () =
  let s = [| 4 |] in
  let a = Relation.shift s ~dim:0 ~lo:1 ~hi:0 in
  let b = Relation.shift (Relation.range a) ~dim:0 ~lo:0 ~hi:2 in
  Alcotest.(check string) "merged" "shift(dim=0, lo=1, hi=2)"
    (steps_str (Relation.compose a b))

let test_canon_nested_decode () =
  let s = [| 8 |] in
  let a = Relation.decode s ~dim:0 ~radices:[| 2; 4 |] in
  let b = Relation.decode (Relation.range a) ~dim:1 ~radices:[| 2; 2 |] in
  Alcotest.(check string) "flattened" "decode(dim=0, [2,2,2])"
    (steps_str (Relation.compose a b))

let test_canon_preserves_semantics_pinned () =
  (* the nested-decode rewrite above must not change the point map *)
  let s = [| 8 |] in
  let a = Relation.decode s ~dim:0 ~radices:[| 2; 4 |] in
  let b = Relation.decode (Relation.range a) ~dim:1 ~radices:[| 2; 2 |] in
  let r = Relation.compose a b in
  let fwd = Relation.compile_fwd r in
  for x = 0 to 7 do
    (* digits of x in radix 2,2,2, most significant first *)
    check_ints
      (Fmt.str "decode %d" x)
      [ x / 4; x / 2 mod 2; x mod 2 ]
      (Array.to_list (fwd [| x |]))
  done

let test_window_guards () =
  (* extent 6, tile 3, stride 2: last tile overhangs by one *)
  let r = Relation.window [| 6 |] ~dim:0 ~tile:3 ~stride:2 in
  let bwd = Relation.compile_bwd r in
  Alcotest.(check (option (list int)))
    "in range" (Some [ 5 ])
    (Option.map Array.to_list (bwd [| 2; 1 |]));
  Alcotest.(check (option (list int)))
    "overhang hole" None
    (Option.map Array.to_list (bwd [| 2; 2 |]));
  (* forward images of x=2 with extent 5: tiles 0 (offset 2) and 1 (offset 0) *)
  let r5 = Relation.window [| 5 |] ~dim:0 ~tile:3 ~stride:2 in
  Alcotest.(check (list (list int)))
    "fwd points"
    [ [ 0; 2 ]; [ 1; 0 ] ]
    (List.map Array.to_list (Relation.fwd_points r5 [| 2 |]))

let test_shift_guards () =
  let r = Relation.shift [| 3 |] ~dim:0 ~lo:2 ~hi:1 in
  let bwd = Relation.compile_bwd r in
  Alcotest.(check (option (list int)))
    "lo margin" None
    (Option.map Array.to_list (bwd [| 1 |]));
  Alcotest.(check (option (list int)))
    "body" (Some [ 0 ])
    (Option.map Array.to_list (bwd [| 2 |]));
  Alcotest.(check (option (list int)))
    "hi margin" None
    (Option.map Array.to_list (bwd [| 5 |]))

let test_inverse_pinned () =
  let s = [| 4; 6 |] in
  let l = Layout.create s in
  let l = Layout.split l ~dim:1 ~factors:[ 2; 3 ] in
  let l = Layout.reorder l [| 2; 0; 1 |] in
  let r = Layout.relation l in
  let inv = Relation.inverse r in
  Alcotest.(check bool) "bijective" true (Relation.bijective r);
  Alcotest.(check bool)
    "domains swap" true
    (Shape.equal (Relation.domain inv) (Relation.range r)
    && Shape.equal (Relation.range inv) (Relation.domain r));
  let fwd = Relation.compile_fwd r and back = Relation.compile_fwd inv in
  for off = 0 to 23 do
    let x = Shape.index_of_offset s off in
    check_ints "roundtrip" (Array.to_list x) (Array.to_list (back (fwd x)))
  done

let test_relation_errors () =
  let raises f =
    Alcotest.(check bool) "raises" true
      (try
         ignore (f ());
         false
       with Relation.Relation_error _ -> true)
  in
  raises (fun () -> Relation.decode [| 6 |] ~dim:0 ~radices:[| 2; 2 |]);
  raises (fun () -> Relation.permute [| 2; 3 |] [| 0; 0 |]);
  raises (fun () -> Relation.shift [| 4 |] ~dim:0 ~lo:(-1) ~hi:0);
  raises (fun () -> Relation.window [| 4 |] ~dim:0 ~tile:5 ~stride:1);
  raises (fun () ->
      Relation.compose (Relation.id [| 2 |]) (Relation.id [| 3 |]));
  raises (fun () -> Relation.inverse (Relation.shift [| 4 |] ~dim:0 ~lo:1 ~hi:0));
  raises (fun () ->
      Relation.compile_fwd (Relation.window [| 4 |] ~dim:0 ~tile:2 ~stride:2))

(* ------------------------------------------------------------------ *)
(* Incremental validation (obs-counter regression)                    *)
(* ------------------------------------------------------------------ *)

let validate_count () =
  match Alt_obs.Metrics.find "layout.relation.validate" with
  | Some { value = Alt_obs.Metrics.Counter n; _ } -> n
  | _ -> 0

let test_incremental_validation_count () =
  Alt_obs.Metrics.enable ();
  Alt_obs.Metrics.reset ();
  let prims =
    [
      Layout.Split { dim = 0; factors = [ 2; 2 ] };
      Layout.Reorder [| 1; 0; 2 |];
      Layout.Fuse { dim = 1; count = 2 };
      Layout.Pad { dim = 0; lo = 1; hi = 1 };
      Layout.Unfold { dim = 1; tile = 3; stride = 2 };
    ]
  in
  let n = List.length prims in
  let l = Layout.of_prims [| 4; 6 |] prims in
  (* incremental apply: one validation per primitive, not n(n+1)/2 *)
  check_int "linear validation count" n (validate_count ());
  (* same-shape replay shares the proven relation: zero re-validation *)
  Alt_obs.Metrics.reset ();
  let l' = Layout.replay [| 4; 6 |] l in
  check_int "replay shares, no revalidation" 0 (validate_count ());
  Alcotest.(check bool) "replay equal" true (Layout.equal l l');
  (* replay onto a different shape must still validate the whole chain *)
  Alt_obs.Metrics.reset ();
  let basic = Layout.of_prims [| 4; 6 |] [ Layout.Reorder [| 1; 0 |] ] in
  Alt_obs.Metrics.reset ();
  let (_ : Layout.t) = Layout.replay [| 6; 4 |] basic in
  Alcotest.(check bool) "cross-shape replay validates" true
    (validate_count () >= 1);
  Alt_obs.Metrics.disable ()

let test_compose_metrics () =
  Alt_obs.Metrics.enable ();
  Alt_obs.Metrics.reset ();
  let a = Relation.permute [| 2; 3 |] [| 1; 0 |] in
  let b = Relation.permute [| 3; 2 |] [| 1; 0 |] in
  let (_ : Relation.t) = Relation.compose a b in
  let count name =
    match Alt_obs.Metrics.find name with
    | Some { value = Alt_obs.Metrics.Counter n; _ } -> n
    | _ -> 0
  in
  check_int "compose ticked" 1 (count "layout.relation.compose");
  Alcotest.(check bool) "simplify ticked" true
    (count "layout.relation.simplify" >= 1);
  Alt_obs.Metrics.reset ();
  Unix.putenv "ALT_LAYOUT_REFERENCE" "1";
  let l = Layout.of_prims [| 4 |] [ Layout.Split { dim = 0; factors = [ 2; 2 ] } ] in
  let (_ : float array) = Layout.pack l [| 1.; 2.; 3.; 4. |] in
  Unix.putenv "ALT_LAYOUT_REFERENCE" "0";
  Alcotest.(check bool) "fallback ticked" true
    (count "layout.relation.fallback" >= 1);
  Alt_obs.Metrics.disable ()

let test_reference_escape_hatch () =
  (* ALT_LAYOUT_REFERENCE=1 routes pack through the seed path; outputs
     must be identical either way *)
  let l =
    Layout.of_prims [| 4; 6 |]
      [
        Layout.Split { dim = 1; factors = [ 2; 3 ] };
        Layout.Pad { dim = 0; lo = 1; hi = 0 };
      ]
  in
  let src = Array.init 24 (fun i -> float_of_int (i + 1)) in
  let fast = Layout.pack l src in
  Unix.putenv "ALT_LAYOUT_REFERENCE" "1";
  let slow = Layout.pack l src in
  Unix.putenv "ALT_LAYOUT_REFERENCE" "0";
  Alcotest.(check bool) "byte-identical" true (fast = slow)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_relation"
    [
      ( "canonicalization",
        [
          Alcotest.test_case "permute fusion" `Quick test_canon_permute_fusion;
          Alcotest.test_case "decode/encode cancel" `Quick
            test_canon_decode_encode_cancel;
          Alcotest.test_case "shift merge" `Quick test_canon_shift_merge;
          Alcotest.test_case "nested decode flatten" `Quick
            test_canon_nested_decode;
          Alcotest.test_case "rewrites preserve semantics" `Quick
            test_canon_preserves_semantics_pinned;
        ] );
      ( "guards",
        [
          Alcotest.test_case "window guards + fwd points" `Quick
            test_window_guards;
          Alcotest.test_case "shift guards" `Quick test_shift_guards;
          Alcotest.test_case "inverse pinned" `Quick test_inverse_pinned;
          Alcotest.test_case "constructor validation" `Quick
            test_relation_errors;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "validation count linear" `Quick
            test_incremental_validation_count;
          Alcotest.test_case "compose/simplify/fallback metrics" `Quick
            test_compose_metrics;
          Alcotest.test_case "reference escape hatch" `Quick
            test_reference_escape_hatch;
        ] );
      qsuite "roundtrip-props"
        [
          prop_bwd_fwd_id;
          prop_fwd_bwd_id;
          prop_compose_sequential;
          prop_canonicalize_idempotent;
          prop_inverse_roundtrip;
        ];
      qsuite "differential-props"
        [
          prop_pack_differential;
          prop_phys_index_differential;
          prop_strides_and_cost;
        ];
    ]
