(* Differential tests for the parallel measurement engine.

   Three layers, matching the engine's determinism contract (DESIGN.md §7):
   - the domain pool itself: submission-order results, exception draining,
     serial degeneration, nested-use rejection;
   - the measurement cache: a hit is structurally equal to a fresh
     simulation, and keys collide exactly when two candidates lower to the
     same canonical program;
   - the tuners end to end: [tune_alt] and [tune_loop_only] (under every
     explorer policy) produce byte-identical results for [~jobs:1] and
     [~jobs:4] at a fixed seed. *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Ops = Alt_graph.Ops
module Propagate = Alt_graph.Propagate
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Templates = Alt_tuner.Templates
module Loopspace = Alt_tuner.Loopspace
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Pool = Alt_parallel.Pool

(* tiny workloads keep the 40-case properties fast *)
let tiny_c2d () =
  Ops.c2d ~name:"c2d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
    ~kh:3 ~kw:3 ()

let tiny_gmm () = Ops.gmm ~name:"gmm" ~a:"A" ~b:"B" ~out:"C" ~m:8 ~k:8 ~n:8 ()

let make_task ~seed op =
  Measure.make_task ~machine:Machine.intel_cpu ~max_points:2_000 ~seed op

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_submission_order () =
  let p = Pool.create ~jobs:4 () in
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) xs)
    (Pool.map p (fun x -> x * x) xs)

let test_exception_drains () =
  let p = Pool.create ~jobs:3 () in
  let started = Atomic.make 0 in
  let xs = List.init 12 Fun.id in
  (match
     Pool.map p
       (fun i ->
         Atomic.incr started;
         if i = 5 || i = 9 then failwith (Fmt.str "boom-%d" i);
         i)
       xs
   with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Pool.Task_failed (i, Failure msg) ->
      Alcotest.(check int) "submission index of the failing task" 5 i;
      Alcotest.(check string) "lowest-index failure re-raised" "boom-5" msg);
  (* every task still ran: the batch drained, no domain was left hung *)
  Alcotest.(check int) "batch drained" 12 (Atomic.get started)

(* The discipline the measurement pipeline uses: exceptions surface as
   per-task [Error] outcomes in submission order, identical for every
   pool size, and never wedge or poison the batch. *)
let test_map_result_surfaces_errors () =
  let run jobs =
    let p = Pool.create ~jobs () in
    Pool.map_result p
      (fun i -> if i mod 3 = 1 then failwith (Fmt.str "boom-%d" i) else i * i)
      (List.init 10 Fun.id)
  in
  let expect =
    List.init 10 (fun i ->
        if i mod 3 = 1 then Error (Failure (Fmt.str "boom-%d" i))
        else Ok (i * i))
  in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Fmt.str "per-task outcomes, jobs=%d" jobs)
        true
        (run jobs = expect))
    [ 1; 4 ]

let test_size_one_degenerates () =
  let p = Pool.create () in
  Alcotest.(check int) "jobs" 1 (Pool.jobs p);
  let self = Domain.self () in
  let on_caller = ref true in
  let ys =
    Pool.map p
      (fun x ->
        if Domain.self () <> self then on_caller := false;
        x + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "List.map result" [ 2; 3; 4 ] ys;
  Alcotest.(check bool) "ran on the calling domain" true !on_caller;
  (* an exception propagates immediately, like List.map: later tasks
     never execute *)
  let count = ref 0 in
  (match
     Pool.map p
       (fun i ->
         incr count;
         if i = 1 then failwith "stop";
         i)
       [ 0; 1; 2; 3 ]
   with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Pool.Task_failed (1, Failure _) -> ());
  Alcotest.(check int) "stopped at the failing task" 2 !count

let test_nested_rejected () =
  let outer = Pool.create ~jobs:2 () in
  let inner = Pool.create ~jobs:2 () in
  match Pool.map outer (fun _ -> Pool.map inner Fun.id [ 1 ]) [ 1; 2 ] with
  | _ -> Alcotest.fail "expected Nested_pool"
  | exception Pool.Task_failed (0, Pool.Nested_pool) -> ()

let test_bad_jobs_rejected () =
  match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Shutdown racing a submitter: every batch either delivers its full
   result (and its side effects are included in the count observed when
   [shutdown] returns) or raises [Closed] having run nothing — no task
   lost, none duplicated, and the pool is quiescent once [shutdown]
   returns. *)
let test_shutdown_races_submission () =
  let p = Pool.create ~jobs:3 () in
  let effects = Atomic.make 0 in
  let delivered = Atomic.make 0 in
  let batches = Atomic.make 0 in
  let submitter =
    Domain.spawn (fun () ->
        let rec loop () =
          match
            Pool.map p
              (fun i ->
                Atomic.incr effects;
                i * i)
              (List.init 8 Fun.id)
          with
          | ys ->
              Atomic.fetch_and_add delivered (List.length ys) |> ignore;
              Atomic.incr batches;
              loop ()
          | exception Pool.Closed -> ()
        in
        loop ())
  in
  (* let some batches land before pulling the plug *)
  while Atomic.get batches < 3 do
    Domain.cpu_relax ()
  done;
  Pool.shutdown p;
  let at_shutdown = Atomic.get effects in
  Domain.join submitter;
  Alcotest.(check bool) "closed" true (Pool.is_closed p);
  (* quiescence: no task ran after shutdown returned *)
  Alcotest.(check int) "no task ran after shutdown" at_shutdown
    (Atomic.get effects);
  (* conservation: each task effect corresponds to exactly one delivered
     result — nothing lost, nothing duplicated *)
  Alcotest.(check int) "delivered = executed" (Atomic.get effects)
    (Atomic.get delivered);
  (* post-shutdown submissions are rejected without running anything, on
     both the parallel and the serial (jobs=1-or-singleton) paths *)
  (match Pool.map p (fun i -> Atomic.incr effects; i) [ 1; 2 ] with
  | _ -> Alcotest.fail "expected Closed"
  | exception Pool.Closed -> ());
  (match Pool.map p (fun i -> Atomic.incr effects; i) [ 1 ] with
  | _ -> Alcotest.fail "expected Closed (serial path)"
  | exception Pool.Closed -> ());
  Alcotest.(check int) "rejected submissions ran nothing" at_shutdown
    (Atomic.get effects);
  (* idempotent *)
  Pool.shutdown p

let test_drain_waits_without_closing () =
  let p = Pool.create ~jobs:2 () in
  let started = Atomic.make false in
  let done_ = Atomic.make false in
  let worker =
    Domain.spawn (fun () ->
        Pool.map p
          (fun i ->
            Atomic.set started true;
            Unix.sleepf 0.05;
            Atomic.set done_ true;
            i)
          [ 0 ]
        |> ignore)
  in
  (* wait until the batch is actually in flight, then drain must block
     until it completes *)
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Pool.drain p;
  Alcotest.(check bool) "drain waited for the batch" true (Atomic.get done_);
  Domain.join worker;
  Alcotest.(check bool) "still open" false (Pool.is_closed p);
  Alcotest.(check (list int)) "still accepts work" [ 42 ]
    (Pool.map p Fun.id [ 42 ])

let prop_pool_map_is_list_map =
  QCheck2.Test.make ~count:100 ~name:"Pool.map = List.map for every jobs"
    QCheck2.Gen.(pair (int_range 1 6) (small_list int))
    (fun (jobs, xs) ->
      let p = Pool.create ~jobs () in
      Pool.map p (fun x -> (2 * x) - 7) xs = List.map (fun x -> (2 * x) - 7) xs)

(* ------------------------------------------------------------------ *)
(* Measurement cache                                                  *)
(* ------------------------------------------------------------------ *)

(* a random candidate = template decode vector + loop-space point *)
let gen_candidate =
  QCheck2.Gen.(
    pair (array_size (return 6) (float_bound_exclusive 1.0)) (int_bound 9_999))

let candidate_of (knobs, sseed) =
  let op = tiny_c2d () in
  let tpl = Option.get (Templates.for_op op) in
  let choice = tpl.Templates.decode knobs in
  let space = Loopspace.of_layout op choice.Propagate.out_layout in
  let rng = Random.State.make [| sseed |] in
  let sched = Loopspace.decode space (Loopspace.random_point ~rng space) in
  (op, choice, sched)

(* A cache hit must return a result structurally equal to a fresh
   simulation (here: the same candidate on a fresh task with the same
   feeds), and hits must still charge budget. *)
let prop_cache_hit_equals_fresh =
  QCheck2.Test.make ~count:40 ~name:"cache hit = fresh simulation"
    gen_candidate
    (fun g ->
      let op, choice, sched = candidate_of g in
      let t1 = make_task ~seed:5 op in
      let r_first = Measure.measure t1 choice sched in
      let r_hit = Measure.measure t1 choice sched in
      let t2 = make_task ~seed:5 op in
      let r_fresh = Measure.measure t2 choice sched in
      let st = Measure.cache_stats t1 in
      match r_first with
      | Measure.Lower_error ->
          (* failed lowering: no key, no budget, no counters *)
          r_hit = Measure.Lower_error
          && r_fresh = Measure.Lower_error
          && st.Measure.hits = 0 && st.Measure.misses = 0
          && t1.Measure.spent = 0
      | Measure.Ok _ ->
          st.Measure.misses = 1 && st.Measure.hits = 1 && r_hit = r_first
          && r_fresh = r_first
          && t1.Measure.spent = 2
      | Measure.Sim_error _ | Measure.Timeout | Measure.Quarantined ->
          (* no fault injector on these tasks: impossible *)
          false)

(* Keys are rename-invariant (every [candidate_key] call re-lowers with
   fresh variable ids) and collide exactly when two candidates lower to
   the same canonical program. *)
let prop_key_collision_iff_same_program =
  QCheck2.Test.make ~count:60 ~name:"keys collide iff same canonical program"
    QCheck2.Gen.(pair gen_candidate gen_candidate)
    (fun (g1, g2) ->
      let op, c1, s1 = candidate_of g1 in
      let _, c2, s2 = candidate_of g2 in
      let t = make_task ~seed:1 op in
      Measure.candidate_key t c1 s1 = Measure.candidate_key t c1 s1
      &&
      match (Measure.program_of t c1 s1, Measure.program_of t c2 s2) with
      | Some p1, Some p2 ->
          Measure.candidate_key t c1 s1 = Measure.candidate_key t c2 s2
          = (Measure.program_key p1 = Measure.program_key p2)
      | None, _ | _, None ->
          Measure.candidate_key t c1 s1 = None
          || Measure.candidate_key t c2 s2 = None)

(* ------------------------------------------------------------------ *)
(* Serial/parallel tuner equivalence                                  *)
(* ------------------------------------------------------------------ *)

let choice_equal (a : Propagate.choice) (b : Propagate.choice) =
  Layout.equal a.Propagate.out_layout b.Propagate.out_layout
  && List.length a.Propagate.in_layouts = List.length b.Propagate.in_layouts
  && List.for_all2
       (fun (n1, l1) (n2, l2) -> n1 = n2 && Layout.equal l1 l2)
       a.Propagate.in_layouts b.Propagate.in_layouts

(* byte-identical trajectories: exact float equality on latency and every
   history entry, structural equality on the schedule *)
let result_equal (a : Tuner.result) (b : Tuner.result) =
  a.Tuner.best_latency = b.Tuner.best_latency
  && choice_equal a.Tuner.best_choice b.Tuner.best_choice
  && a.Tuner.best_schedule = b.Tuner.best_schedule
  && a.Tuner.history = b.Tuner.history
  && a.Tuner.spent = b.Tuner.spent
  && a.Tuner.best_result = b.Tuner.best_result

let prop_tune_alt_differential =
  QCheck2.Test.make ~count:40 ~name:"tune_alt: jobs=1 = jobs=4"
    QCheck2.Gen.(triple bool (int_bound 999) bool)
    (fun (use_gmm, seed, use_ppo) ->
      let op = if use_gmm then tiny_gmm () else tiny_c2d () in
      let layout_explorer = if use_ppo then `Ppo_fresh else `Random in
      let run jobs =
        let task = make_task ~seed:7 op in
        Tuner.tune_alt ~seed ~jobs ~layout_explorer ~joint_budget:8
          ~loop_budget:6 task
      in
      result_equal (run 1) (run 4))

let prop_tune_loop_only_differential =
  QCheck2.Test.make ~count:40
    ~name:"tune_loop_only: jobs=1 = jobs=4, all explorers"
    QCheck2.Gen.(pair (int_bound 2) (int_bound 999))
    (fun (e, seed) ->
      let explorer =
        match e with 0 -> Tuner.Guided | 1 -> Tuner.Walk | _ -> Tuner.Restricted
      in
      let op = tiny_c2d () in
      let layouts =
        [ Templates.trivial_choice op; Templates.blocked_choice op ~block:4 ]
      in
      let run jobs =
        let task = make_task ~seed:3 op in
        Tuner.tune_loop_only ~seed ~jobs ~explorer ~budget:10 ~layouts task
      in
      result_equal (run 1) (run 4))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "submission order" `Quick test_submission_order;
          Alcotest.test_case "exception drains batch" `Quick
            test_exception_drains;
          Alcotest.test_case "map_result surfaces per-task errors" `Quick
            test_map_result_surfaces_errors;
          Alcotest.test_case "size-1 degenerates to List.map" `Quick
            test_size_one_degenerates;
          Alcotest.test_case "nested use rejected" `Quick test_nested_rejected;
          Alcotest.test_case "jobs < 1 rejected" `Quick test_bad_jobs_rejected;
          Alcotest.test_case "shutdown races submission" `Quick
            test_shutdown_races_submission;
          Alcotest.test_case "drain waits without closing" `Quick
            test_drain_waits_without_closing;
        ] );
      qsuite "pool-props" [ prop_pool_map_is_list_map ];
      qsuite "cache-props"
        [ prop_cache_hit_equals_fresh; prop_key_collision_iff_same_program ];
      qsuite "differential"
        [ prop_tune_alt_differential; prop_tune_loop_only_differential ];
    ]
