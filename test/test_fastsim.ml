(* Fast-path simulation engine tests (DESIGN.md §9).

   The engine's contract is *bit-identical counters and outputs* to the
   element-wise scalar interpreter, so the core of this suite is
   differential: random layout choices and random loop-space points are
   run through both engines on all three machine profiles and every
   counter is compared with [=] (no tolerance).  The Cache bulk entry
   points are additionally checked at the state level ([Cache.dump]),
   and a tuning run is replayed end-to-end under both engines. *)


module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Ops = Alt_graph.Ops
module Propagate = Alt_graph.Propagate
module Cache = Alt_machine.Cache
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Runtime = Alt_machine.Runtime
module Templates = Alt_tuner.Templates
module Loopspace = Alt_tuner.Loopspace
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner

let machines = [ Machine.intel_cpu; Machine.nvidia_gpu; Machine.arm_cpu ]

(* ------------------------------------------------------------------ *)
(* Cache bulk entry points                                            *)
(* ------------------------------------------------------------------ *)

let cache_cfg = { Cache.size_bytes = 1024; assoc = 4; line_bytes = 64 }

let same_state a b =
  let ta, sa = Cache.dump a and tb, sb = Cache.dump b in
  (* stamps must match exactly: the bulk entry points promise the same
     clock arithmetic as the element-wise calls, not just the same
     recency order *)
  ta = tb && sa = sb

let stats_eq (a : Cache.stats) (b : Cache.stats) =
  a.Cache.accesses = b.Cache.accesses
  && a.Cache.hits = b.Cache.hits
  && a.Cache.misses = b.Cache.misses
  && a.Cache.prefetch_installs = b.Cache.prefetch_installs
  && a.Cache.prefetch_hits = b.Cache.prefetch_hits

(* access_run n == n consecutive accesses to the same address, for any
   interleaving with other traffic *)
let prop_access_run =
  QCheck2.Test.make ~count:200 ~name:"Cache.access_run == n * access"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (pair (int_range 0 4096) (int_range 1 5)))
    (fun trace ->
      let c1 = Cache.create cache_cfg and c2 = Cache.create cache_cfg in
      List.iter
        (fun (addr, n) ->
          for _ = 1 to n do
            ignore (Cache.access c1 addr : bool)
          done;
          ignore (Cache.access_run c2 addr n : bool * int))
        trace;
      same_state c1 c2 && stats_eq (Cache.stats c1) (Cache.stats c2))

(* touch_run replays hits on a resident way exactly *)
let prop_touch_run =
  QCheck2.Test.make ~count:200 ~name:"Cache.touch_run == n * access (hits)"
    QCheck2.Gen.(
      pair (int_range 0 4096) (pair (int_range 1 6) (int_range 1 32)))
    (fun (addr, (n, warm)) ->
      let c1 = Cache.create cache_cfg and c2 = Cache.create cache_cfg in
      for _ = 1 to warm do
        ignore (Cache.access c1 addr : bool);
        ignore (Cache.access c2 addr : bool)
      done;
      (let _, way = Cache.access_way c2 addr in
       ignore (Cache.access c1 addr : bool);
       Cache.touch_run c2 way n;
       for _ = 1 to n do
         ignore (Cache.access c1 addr : bool)
       done);
      same_state c1 c2 && stats_eq (Cache.stats c1) (Cache.stats c2))

let test_prefetch_stats () =
  let c = Cache.create cache_cfg in
  ignore (Cache.access c 0 : bool);
  (* demand miss *)
  ignore (Cache.prefetch c 64 : bool);
  ignore (Cache.prefetch c 128 : bool);
  let st = Cache.stats c in
  Alcotest.(check int) "prefetch installs" 2 st.Cache.prefetch_installs;
  Alcotest.(check int) "no prefetch hits yet" 0 st.Cache.prefetch_hits;
  ignore (Cache.access c 64 : bool);
  ignore (Cache.access c 80 : bool);
  (* same line: bit already cleared *)
  ignore (Cache.access c 128 : bool);
  let st = Cache.stats c in
  Alcotest.(check int) "prefetch hits counted once per line" 2
    st.Cache.prefetch_hits;
  Alcotest.(check int) "demand misses" 1 st.Cache.misses

(* ------------------------------------------------------------------ *)
(* Differential: fast engine == scalar interpreter                    *)
(* ------------------------------------------------------------------ *)

let conv_op =
  Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
    ~kh:3 ~kw:3 ()

let gmm_op = Ops.gmm ~name:"g" ~a:"A" ~b:"B" ~out:"Y" ~m:6 ~k:12 ~n:16 ()

let results_equal (a : Profiler.result) (b : Profiler.result) =
  a.Profiler.insts = b.Profiler.insts
  && a.Profiler.loads = b.Profiler.loads
  && a.Profiler.stores = b.Profiler.stores
  && a.Profiler.flops = b.Profiler.flops
  && a.Profiler.l1_accesses = b.Profiler.l1_accesses
  && a.Profiler.l1_misses = b.Profiler.l1_misses
  && a.Profiler.l2_misses = b.Profiler.l2_misses
  && a.Profiler.parallel_extent = b.Profiler.parallel_extent
  && a.Profiler.cycles = b.Profiler.cycles
  && a.Profiler.latency_ms = b.Profiler.latency_ms
  && a.Profiler.sampled = b.Profiler.sampled
  && a.Profiler.scale = b.Profiler.scale

let bufs_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> x = y) a b

(* run one (choice, schedule) candidate through both engines on one
   machine; counters and every output buffer must be bit-identical *)
let differential ?max_points machine op (choice : Propagate.choice) sched =
  let task = Measure.make_task ~machine op in
  match Measure.program_of task choice sched with
  | None -> true (* candidate does not lower; nothing to compare *)
  | Some prog ->
      let bufs () = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
      let bf = bufs () and bs = bufs () in
      let rf = Profiler.run ~machine ?max_points ~fast:true prog ~bufs:bf in
      let rs = Profiler.run ~machine ?max_points ~fast:false prog ~bufs:bs in
      results_equal rf rs && Array.for_all2 bufs_equal bf bs

let prop_differential op nactions name =
  QCheck2.Test.make ~count:25 ~name
    QCheck2.Gen.(
      pair
        (array_size (return nactions) (float_bound_exclusive 1.0))
        (array_size (return 32) (float_bound_exclusive 1.0)))
    (fun (actions, point) ->
      let tpl = Option.get (Templates.for_op op) in
      let choice = tpl.Templates.decode actions in
      (* the loop-space dimension depends on the decoded layout's rank *)
      let space = Loopspace.of_layout op choice.Propagate.out_layout in
      let sched = Loopspace.decode space (Array.sub point 0 (Loopspace.dim space)) in
      List.for_all (fun m -> differential m op choice sched) machines)

(* the tuned-style shape the bench uses: fast path must both engage and
   agree (guards the ">= 5x on a vacuous loop" failure mode) *)
let test_engagement () =
  let choice = Templates.channels_last_choice conv_op in
  let sched =
    let s = Schedule.default ~rank:4 ~nred:3 in
    let s = Schedule.split s ~dim:3 ~inner:8 in
    let s = Schedule.reorder_reduce_outer s true in
    Schedule.vectorize s
  in
  let machine = Machine.intel_cpu in
  let task = Measure.make_task ~machine conv_op in
  let prog = Option.get (Measure.program_of task choice sched) in
  let bufs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
  let es = Profiler.fresh_engine_stats () in
  let _ = Profiler.run ~machine ~fast:true ~engine:es prog ~bufs in
  Alcotest.(check bool)
    "fast engine engaged" true
    (es.Profiler.fast_groups > 0 && es.Profiler.fast_runs > 0);
  let es0 = Profiler.fresh_engine_stats () in
  let bufs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
  let _ = Profiler.run ~machine ~fast:false ~engine:es0 prog ~bufs in
  Alcotest.(check int) "fast=false never batches" 0 es0.Profiler.fast_groups

(* sampling: when the point budget truncates outer loops, the fast path
   must rescale identically (same [sampled], same [scale], same counters) *)
let test_sampling () =
  let op =
    Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8 ~o:16 ~h:10
      ~w:10 ~kh:3 ~kw:3 ()
  in
  let choice = Templates.channels_last_choice op in
  let sched =
    let s = Schedule.default ~rank:4 ~nred:3 in
    let s = Schedule.split s ~dim:3 ~inner:16 in
    let s = Schedule.reorder_reduce_outer s true in
    Schedule.vectorize s
  in
  let machine = Machine.intel_cpu in
  let task = Measure.make_task ~machine op in
  let prog = Option.get (Measure.program_of task choice sched) in
  let run fast =
    let bufs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
    Profiler.run ~machine ~max_points:20_000 ~fast prog ~bufs
  in
  let rf = run true and rs = run false in
  Alcotest.(check bool) "sampling engaged" true rf.Profiler.sampled;
  Alcotest.(check bool) "sampled flag equal" rs.Profiler.sampled
    rf.Profiler.sampled;
  Alcotest.(check (float 0.0)) "scale equal" rs.Profiler.scale
    rf.Profiler.scale;
  Alcotest.(check bool) "sampled counters equal" true (results_equal rf rs)

(* ------------------------------------------------------------------ *)
(* End-to-end: the tuner's trajectory is engine-independent            *)
(* ------------------------------------------------------------------ *)

let test_tune_alt_invariant () =
  let op =
    Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
      ~kh:3 ~kw:3 ()
  in
  let tune fast =
    let task = Measure.make_task ~machine:Machine.intel_cpu ~fast op in
    Tuner.tune_op ~system:Tuner.Alt ~budget:24 task
  in
  let rf = tune true and rs = tune false in
  Alcotest.(check (float 0.0))
    "best latency identical" rs.Tuner.best_latency rf.Tuner.best_latency;
  Alcotest.(check bool)
    "best choice identical" true (rf.Tuner.best_choice = rs.Tuner.best_choice);
  Alcotest.(check bool)
    "best schedule identical" true
    (rf.Tuner.best_schedule = rs.Tuner.best_schedule);
  Alcotest.(check bool)
    "history identical" true (rf.Tuner.history = rs.Tuner.history);
  Alcotest.(check int) "spent identical" rs.Tuner.spent rf.Tuner.spent

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "alt_fastsim"
    [
      ( "cache-bulk",
        qsuite [ prop_access_run; prop_touch_run ]
        @ [ Alcotest.test_case "prefetch stats" `Quick test_prefetch_stats ] );
      ( "differential",
        qsuite
          [
            prop_differential conv_op 6 "conv2d: fast == scalar (3 machines)";
            prop_differential gmm_op 3 "matmul: fast == scalar (3 machines)";
          ]
        @ [
            Alcotest.test_case "fast engine engages" `Quick test_engagement;
            Alcotest.test_case "sampling rescales identically" `Quick
              test_sampling;
          ] );
      ( "end-to-end",
        [
          Alcotest.test_case "ALT tuning trajectory engine-invariant" `Quick
            test_tune_alt_invariant;
        ] );
    ]
