(* Tests for the auto-tuning stack: layout templates, the loop space, the
   GBDT cost model, MLP gradients, PPO learning, and the end-to-end tuners
   (ALT and every baseline system). *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Ops = Alt_graph.Ops
module Propagate = Alt_graph.Propagate
module Machine = Alt_machine.Machine
module Templates = Alt_tuner.Templates
module Loopspace = Alt_tuner.Loopspace
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Gbdt = Alt_costmodel.Gbdt
module Mlp = Alt_rl.Mlp
module Ppo = Alt_rl.Ppo

let small_c2d () =
  Ops.c2d ~name:"c2d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8 ~o:16 ~h:8 ~w:8
    ~kh:3 ~kw:3 ()

let small_gmm () =
  Ops.gmm ~name:"gmm" ~a:"A" ~b:"B" ~out:"C" ~m:16 ~k:16 ~n:16 ()

(* ------------------------------------------------------------------ *)
(* Templates                                                          *)
(* ------------------------------------------------------------------ *)

let test_conv_template_shape () =
  let op = small_c2d () in
  let tpl = Option.get (Templates.for_op op) in
  (* knobs: ht, wt, ot, it, it', ot' *)
  Alcotest.(check int) "six knobs" 6 (Array.length tpl.Templates.knobs);
  let choice = tpl.Templates.decode [| 0.5; 0.5; 0.25; 0.5; 0.5; 0.25 |] in
  (* output physical rank: N + 3 outers + 3 inners = 7 *)
  Alcotest.(check int) "out rank" 7
    (Shape.rank (Layout.physical_shape choice.Propagate.out_layout));
  let inp_layout = List.assoc "X" choice.Propagate.in_layouts in
  Alcotest.(check bool) "input unfolded" true (Layout.has_advanced inp_layout)

let test_conv_template_two_level () =
  let op = small_c2d () in
  let tpl = Option.get (Templates.for_op ~levels:2 op) in
  (* 2 spatial + ot + 2 spatial-mid + ot2 + it + it' + ot' *)
  Alcotest.(check int) "nine knobs" 9 (Array.length tpl.Templates.knobs);
  let a = Array.make 9 0.5 in
  let choice = tpl.Templates.decode a in
  Alcotest.(check int) "out rank (two-level)" 10
    (Shape.rank (Layout.physical_shape choice.Propagate.out_layout))

let test_matmul_template () =
  let op = small_gmm () in
  let tpl = Option.get (Templates.for_op op) in
  Alcotest.(check int) "three knobs" 3 (Array.length tpl.Templates.knobs);
  let choice = tpl.Templates.decode [| 0.25; 0.25; 0.25 |] in
  Alcotest.(check int) "blocked C rank" 4
    (Shape.rank (Layout.physical_shape choice.Propagate.out_layout))

(* Template-decoded candidates must both lower AND compute correct results. *)
let prop_template_candidates_correct =
  QCheck2.Test.make ~count:12 ~name:"template candidates correct"
    QCheck2.Gen.(array_size (return 6) (float_bound_exclusive 1.0))
    (fun actions ->
      let op = small_c2d () in
      let tpl = Option.get (Templates.for_op op) in
      let choice = tpl.Templates.decode actions in
      let task = Measure.make_task ~machine:Machine.intel_cpu op in
      let schedule =
        Alt_ir.Schedule.default
          ~rank:(Shape.rank (Layout.physical_shape choice.Propagate.out_layout))
          ~nred:3
      in
      match Measure.program_of task choice schedule with
      | None -> false
      | Some prog ->
          let inputs = task.Measure.feeds in
          let expected = Opdef.reference_eval op inputs in
          let outs, _ = Alt_machine.Runtime.run_logical prog ~inputs in
          Buffer.allclose ~tol:1e-4 expected (List.assoc "Y" outs))

let test_fixed_choices () =
  let op = small_c2d () in
  List.iter
    (fun (nm, choice) ->
      let task = Measure.make_task ~machine:Machine.intel_cpu op in
      let sched =
        Alt_ir.Schedule.default
          ~rank:(Shape.rank (Layout.physical_shape choice.Propagate.out_layout))
          ~nred:3
      in
      match Measure.measure task choice sched with
      | Measure.Ok r ->
          Alcotest.(check bool) (nm ^ " finite") true
            (Float.is_finite r.Alt_machine.Profiler.latency_ms)
      | o -> Alcotest.failf "%s did not measure: %a" nm Measure.pp_outcome o)
    [
      ("trivial", Templates.trivial_choice op);
      ("channels_last", Templates.channels_last_choice op);
      ("hwon", Templates.hwon_choice op);
      ("blocked", Templates.blocked_choice op ~block:8);
    ]

(* ------------------------------------------------------------------ *)
(* Loop space                                                         *)
(* ------------------------------------------------------------------ *)

let test_loopspace_decode () =
  let op = small_c2d () in
  let space = Loopspace.of_layout op (Layout.create [| 1; 16; 8; 8 |]) in
  Alcotest.(check int) "dim" (4 + 3 + 4) (Loopspace.dim space);
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 50 do
    let v = Loopspace.random_point ~rng space in
    let s = Loopspace.decode space v in
    (* all tiles must divide the extents *)
    Array.iteri
      (fun d t -> Alcotest.(check int) "divides" 0 ([| 1; 16; 8; 8 |].(d) mod t))
      s.Alt_ir.Schedule.sp_tiles
  done

(* ------------------------------------------------------------------ *)
(* Cost model                                                         *)
(* ------------------------------------------------------------------ *)

let test_gbdt_fits_synthetic () =
  let rng = Random.State.make [| 7 |] in
  let f x = (3.0 *. x.(0)) +. (x.(1) *. x.(1)) -. (2.0 *. x.(2)) in
  let sample () =
    Array.init 5 (fun _ -> Random.State.float rng 2.0 -. 1.0)
  in
  let xs = Array.init 300 (fun _ -> sample ()) in
  let ys = Array.map f xs in
  let model = Gbdt.fit xs ys in
  let xs_test = Array.init 100 (fun _ -> sample ()) in
  let ys_test = Array.map f xs_test in
  let r2 = Gbdt.r2 model xs_test ys_test in
  Alcotest.(check bool) (Fmt.str "r2 %.3f > 0.8" r2) true (r2 > 0.8)

let test_gbdt_empty () =
  let model = Gbdt.fit [||] [||] in
  Alcotest.(check (float 0.0)) "zero" 0.0 (Gbdt.predict model [| 1.0 |])

(* ------------------------------------------------------------------ *)
(* MLP gradient check                                                 *)
(* ------------------------------------------------------------------ *)

let test_mlp_gradients () =
  let net = Mlp.create ~seed:3 [| 4; 6; 2 |] in
  let x = [| 0.3; -0.5; 0.8; 0.1 |] in
  (* loss = sum of outputs squared *)
  let loss () =
    let out = Mlp.forward net x in
    Array.fold_left (fun a v -> a +. (v *. v)) 0.0 out
  in
  Mlp.zero_grads net;
  let out, cache = Mlp.forward_cache net x in
  ignore (Mlp.backward net cache ~dout:(Array.map (fun v -> 2.0 *. v) out));
  (* compare a few analytic grads against finite differences *)
  let layer = net.Mlp.layers.(0) in
  let eps = 1e-5 in
  for o = 0 to 1 do
    for i = 0 to 1 do
      let saved = layer.Mlp.w.(o).(i) in
      layer.Mlp.w.(o).(i) <- saved +. eps;
      let lp = loss () in
      layer.Mlp.w.(o).(i) <- saved -. eps;
      let lm = loss () in
      layer.Mlp.w.(o).(i) <- saved;
      let fd = (lp -. lm) /. (2.0 *. eps) in
      let an = layer.Mlp.gw.(o).(i) in
      if Float.abs (fd -. an) > 1e-3 *. (1.0 +. Float.abs fd) then
        Alcotest.failf "grad mismatch w[%d][%d]: fd=%g an=%g" o i fd an
    done
  done

let test_mlp_learns () =
  (* regression: y = x0 - x1 *)
  let net = Mlp.create ~seed:5 [| 2; 8; 1 |] in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 600 do
    Mlp.zero_grads net;
    for _ = 1 to 8 do
      let x = [| Random.State.float rng 2.0 -. 1.0; Random.State.float rng 2.0 -. 1.0 |] in
      let target = x.(0) -. x.(1) in
      let out, cache = Mlp.forward_cache net x in
      ignore (Mlp.backward net cache ~dout:[| 2.0 *. (out.(0) -. target) /. 8.0 |])
    done;
    Mlp.adam_step ~lr:5e-3 net
  done;
  let err = ref 0.0 in
  for _ = 1 to 50 do
    let x = [| Random.State.float rng 2.0 -. 1.0; Random.State.float rng 2.0 -. 1.0 |] in
    let out = Mlp.forward net x in
    err := Float.max !err (Float.abs (out.(0) -. (x.(0) -. x.(1))))
  done;
  Alcotest.(check bool) (Fmt.str "max err %.3f < 0.2" !err) true (!err < 0.2)

(* ------------------------------------------------------------------ *)
(* PPO                                                                *)
(* ------------------------------------------------------------------ *)

let test_ppo_converges () =
  (* maximize reward = -|a - 0.7| on a constant state *)
  let agent = Ppo.create ~seed:1 ~state_dim:3 () in
  let state = [| 1.0; 0.0; 0.5 |] in
  for _ = 1 to 120 do
    let batch =
      List.init 16 (fun _ ->
          let a, s = Ppo.act agent state in
          s.Ppo.reward <- -.Float.abs (a -. 0.7);
          s)
    in
    Ppo.update agent batch
  done;
  let a, _ = Ppo.act ~explore:false agent state in
  Alcotest.(check bool) (Fmt.str "mean %.3f near 0.7" a) true
    (Float.abs (a -. 0.7) < 0.12)

(* ------------------------------------------------------------------ *)
(* End-to-end tuners                                                  *)
(* ------------------------------------------------------------------ *)

let test_all_systems_run () =
  let op = small_c2d () in
  List.iter
    (fun sys ->
      let task = Measure.make_task ~machine:Machine.intel_cpu ~max_points:8000 op in
      let r = Tuner.tune_op ~system:sys ~budget:24 task in
      Alcotest.(check bool)
        (Tuner.system_name sys ^ " finite")
        true
        (Float.is_finite r.Tuner.best_latency);
      if sys <> Tuner.Vendor then
        Alcotest.(check bool)
          (Tuner.system_name sys ^ " respects budget")
          true (r.Tuner.spent <= 24))
    [
      Tuner.Vendor; Tuner.Autotvm_like; Tuner.Flextensor_like;
      Tuner.Ansor_like; Tuner.Alt_ol; Tuner.Alt;
    ]

let test_history_monotone () =
  let op = small_gmm () in
  let task = Measure.make_task ~machine:Machine.intel_cpu ~max_points:8000 op in
  let r = Tuner.tune_op ~system:Tuner.Alt ~budget:32 task in
  let rec check prev = function
    | [] -> ()
    | (_, best) :: tl ->
        Alcotest.(check bool) "monotone non-increasing" true (best <= prev +. 1e-9);
        check best tl
  in
  check Float.infinity r.Tuner.history

let test_alt_improves_over_default () =
  let op = small_c2d () in
  let task = Measure.make_task ~machine:Machine.intel_cpu ~max_points:8000 op in
  let default_sched = Alt_ir.Schedule.default ~rank:4 ~nred:3 in
  let base =
    Measure.latency_of
      (Measure.measure task (Templates.trivial_choice op) default_sched)
  in
  let task2 = Measure.make_task ~machine:Machine.intel_cpu ~max_points:8000 op in
  let r = Tuner.tune_op ~system:Tuner.Alt ~budget:48 task2 in
  Alcotest.(check bool)
    (Fmt.str "tuned %.4f < default %.4f" r.Tuner.best_latency base)
    true
    (r.Tuner.best_latency < base)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_tuner"
    [
      ( "templates",
        [
          Alcotest.test_case "conv knobs/shape" `Quick test_conv_template_shape;
          Alcotest.test_case "conv two-level" `Quick test_conv_template_two_level;
          Alcotest.test_case "matmul" `Quick test_matmul_template;
          Alcotest.test_case "fixed choices lower" `Quick test_fixed_choices;
        ] );
      qsuite "template-props" [ prop_template_candidates_correct ];
      ( "loopspace",
        [ Alcotest.test_case "decode legal" `Quick test_loopspace_decode ] );
      ( "gbdt",
        [
          Alcotest.test_case "fits synthetic" `Quick test_gbdt_fits_synthetic;
          Alcotest.test_case "empty" `Quick test_gbdt_empty;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "gradient check" `Quick test_mlp_gradients;
          Alcotest.test_case "learns regression" `Quick test_mlp_learns;
        ] );
      ("ppo", [ Alcotest.test_case "converges" `Quick test_ppo_converges ]);
      ( "tuners",
        [
          Alcotest.test_case "all systems run" `Slow test_all_systems_run;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "ALT beats default" `Slow
            test_alt_improves_over_default;
        ] );
    ]
