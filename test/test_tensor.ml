(* Tests for the alt_tensor substrate: shapes, the symbolic index algebra,
   and layout primitives (Table 1 and Eq. (1) of the paper).

   Coverage accounting for the layout section (kept >= the pre-relation
   suite, which ran one basic-prims-only pack/unpack property at count
   100 + 12 pinned cases): the generic relation round-trip property
   below draws random chains over ALL FIVE primitives (split / reorder /
   fuse / unfold / pad) at count 120, the symbolic-forward property
   keeps its basic-prims generator at count 60 (eval_fwd is undefined
   on unfold by design), and every primitive retains at least one
   pinned regression — blocked NOHW + fuse/split/reorder (split,
   reorder, fuse), unfold array example + ragged tail + Eq.(1) x2
   (unfold), pad (pad) — 12 pinned cases in the "layout" section.
   Deeper relation laws (inverse composition, canonicalization,
   differential vs the seed reference) live in test_relation.ml. *)

open Alt_tensor

let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Shape                                                              *)
(* ------------------------------------------------------------------ *)

let test_strides () =
  check_ints "strides 2x3x4"
    [ 12; 4; 1 ]
    (Array.to_list (Shape.strides [| 2; 3; 4 |]));
  check_int "elements" 24 (Shape.num_elements [| 2; 3; 4 |])

let test_offset_roundtrip () =
  let s = [| 3; 5; 7 |] in
  for off = 0 to Shape.num_elements s - 1 do
    let idx = Shape.index_of_offset s off in
    check_int "roundtrip" off (Shape.offset_of_index s idx)
  done

let test_divisors () =
  check_ints "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Shape.divisors 12);
  check_int "round 12 5" 4 (Shape.round_to_divisor 12 5);
  check_int "round 12 12" 12 (Shape.round_to_divisor 12 12);
  check_int "round 7 3" 1 (Shape.round_to_divisor 7 3)

let test_shape_validate () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Shape.validate: non-positive extent in [2x0]")
    (fun () -> Shape.validate [| 2; 0 |])

(* ------------------------------------------------------------------ *)
(* Ixexpr                                                             *)
(* ------------------------------------------------------------------ *)

let test_fdiv_fmod () =
  check_int "fdiv pos" 2 (Ixexpr.fdiv 7 3);
  check_int "fdiv neg" (-3) (Ixexpr.fdiv (-7) 3);
  check_int "fmod pos" 1 (Ixexpr.fmod 7 3);
  check_int "fmod neg" 2 (Ixexpr.fmod (-7) 3);
  (* invariant: a = fdiv a b * b + fmod a b, 0 <= fmod < b *)
  for a = -20 to 20 do
    for b = 1 to 6 do
      check_int "recompose" a ((Ixexpr.fdiv a b * b) + Ixexpr.fmod a b);
      Alcotest.(check bool) "fmod range" true
        (Ixexpr.fmod a b >= 0 && Ixexpr.fmod a b < b)
    done
  done

let v name = Var.fresh name
let bounds_of lst v =
  List.assoc_opt (Var.id v) (List.map (fun (x, r) -> (Var.id x, r)) lst)

let test_simplify_div_mod () =
  let ho = v "ho" and hi = v "hi" in
  let bounds = bounds_of [ (ho, (0, 6)); (hi, (0, 3)) ] in
  let open Ixexpr in
  (* (ho*4 + hi) / 4 = ho when 0 <= hi < 4 *)
  let e = div (add (mul (var ho) (const 4)) (var hi)) (const 4) in
  Alcotest.(check string) "div simpl" "ho" (to_string (simplify ~bounds e));
  (* (ho*4 + hi) mod 4 = hi *)
  let e = mod_ (add (mul (var ho) (const 4)) (var hi)) (const 4) in
  Alcotest.(check string) "mod simpl" "hi" (to_string (simplify ~bounds e));
  (* without bounds, the div must remain *)
  let e = div (add (mul (var ho) (const 4)) (var hi)) (const 4) in
  Alcotest.(check bool) "no bounds keeps div" true
    (String.length (to_string (simplify e)) > 2)

let test_simplify_cancellation () =
  let ho = v "ho" and hi = v "hi" and rh = v "rh" in
  let bounds = bounds_of [ (ho, (0, 3)); (hi, (0, 1)); (rh, (0, 1)) ] in
  let open Ixexpr in
  (* the Eq.(1) residual: V*(ho*ht + hi) + rh - S*ho with V=1, ht=2, S=2
     must simplify to hi + rh *)
  let oh = add (mul (var ho) (const 2)) (var hi) in
  let e = sub (add oh (var rh)) (mul (const 2) (var ho)) in
  let s = simplify ~bounds e in
  Alcotest.(check bool) "cancel"
    true
    (equal ~bounds s (add (var hi) (var rh)))

let test_range () =
  let x = v "x" in
  let bounds = bounds_of [ (x, (0, 9)) ] in
  let open Ixexpr in
  (match range ~bounds (add (mul (var x) (const 3)) (const 5)) with
  | Some (lo, hi) ->
      check_int "lo" 5 lo;
      check_int "hi" 32 hi
  | None -> Alcotest.fail "expected range");
  (match range ~bounds (mod_ (var x) (const 4)) with
  | Some (lo, hi) ->
      check_int "mod lo" 0 lo;
      check_int "mod hi" 3 hi
  | None -> Alcotest.fail "expected range")

let test_coeff_of () =
  let i = v "i" and r = v "r" in
  let open Ixexpr in
  let e = add (mul (const 2) (var i)) (var r) in
  Alcotest.(check (option int)) "coeff i" (Some 2) (coeff_of e i);
  Alcotest.(check (option int)) "coeff r" (Some 1) (coeff_of e r);
  (match drop_var e i with
  | Some rest -> Alcotest.(check bool) "drop" true (equal rest (var r))
  | None -> Alcotest.fail "drop_var");
  (* variable under div is not affine *)
  let e2 = div (var i) (const 2) in
  Alcotest.(check (option int)) "nested" None (coeff_of e2 i)

(* qcheck: simplify preserves evaluation. *)
let arb_expr vars_list =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map Ixexpr.const (int_range (-8) 8);
        map Ixexpr.var (oneofl vars_list);
      ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      let sub = go (n - 1) in
      oneof
        [
          leaf;
          map2 Ixexpr.add sub sub;
          map2 Ixexpr.sub sub sub;
          map2 Ixexpr.mul sub sub;
          map2 (fun a c -> Ixexpr.div a (Ixexpr.const c)) sub (int_range 1 6);
          map2 (fun a c -> Ixexpr.mod_ a (Ixexpr.const c)) sub (int_range 1 6);
          map2 Ixexpr.min_ sub sub;
          map2 Ixexpr.max_ sub sub;
        ]
  in
  go 4

let prop_simplify_preserves_eval =
  let x = v "x" and y = v "y" and z = v "z" in
  let vars_list = [ x; y; z ] in
  QCheck2.Test.make ~count:500 ~name:"simplify preserves evaluation"
    QCheck2.Gen.(
      pair (arb_expr vars_list) (triple (int_range 0 7) (int_range 0 7) (int_range 0 7)))
    (fun (e, (a, b, c)) ->
      let env w =
        if Var.equal w x then a else if Var.equal w y then b else c
      in
      let bounds = bounds_of [ (x, (0, 7)); (y, (0, 7)); (z, (0, 7)) ] in
      Ixexpr.eval env e = Ixexpr.eval env (Ixexpr.simplify ~bounds e))

let prop_simplify_idempotent =
  let x = v "x" and y = v "y" in
  QCheck2.Test.make ~count:300 ~name:"simplify idempotent"
    (arb_expr [ x; y ])
    (fun e ->
      let s = Ixexpr.simplify e in
      Ixexpr.equal s (Ixexpr.simplify s))

(* ------------------------------------------------------------------ *)
(* Layout                                                             *)
(* ------------------------------------------------------------------ *)

let test_paper_blocked_layout () =
  (* NOHW -> N O/ot H W ot (paper Section 4.1.1 first example):
     split(T, dim=1, factors=[O/ot; ot]); reorder([0;1;3;4;2]) *)
  let n, o, h, w = (2, 8, 4, 4) in
  let ot = 4 in
  let l = Layout.create [| n; o; h; w |] in
  let l = Layout.split l ~dim:1 ~factors:[ o / ot; ot ] in
  (* after split: N (O/ot) ot H W; move ot last *)
  let l = Layout.reorder l [| 0; 1; 3; 4; 2 |] in
  check_ints "physical" [ 2; 2; 4; 4; 4 ]
    (Array.to_list (Layout.physical_shape l));
  (* index map: logical (n,o,h,w) -> (n, o/ot, h, w, o mod ot) *)
  let idx = Layout.eval_fwd l [| 1; 6; 2; 3 |] in
  check_ints "fwd idx" [ 1; 1; 2; 3; 2 ] (Array.to_list idx)

let test_paper_fuse_split_example () =
  (* Section 4.1.1 second example on NHWO:
     fuse(dims 1..3); split(dim=1, [O/4; 4; H*W]); reorder([0;1;3;2]) *)
  let n, h, w, o = (1, 2, 3, 8) in
  let l = Layout.create [| n; h; w; o |] in
  let l = Layout.fuse l ~dim:1 ~count:3 in
  let l = Layout.split l ~dim:1 ~factors:[ o / 4; 4; h * w ] in
  let l = Layout.reorder l [| 0; 1; 3; 2 |] in
  check_ints "shape N (O/4) (HW) 4" [ 1; 2; 6; 4 ]
    (Array.to_list (Layout.physical_shape l));
  (* data round-trips *)
  let src = Buffer.iota [| n; h; w; o |] in
  let packed = Layout.pack l src in
  let back = Layout.unpack l packed in
  Alcotest.(check bool) "roundtrip" true (Buffer.allclose src back)

let test_unfold_array_example () =
  (* Paper: {1,2,3,4,5} unfolded with B=3, S=2 -> {{1,2,3},{3,4,5}} *)
  let l = Layout.create [| 5 |] in
  let l = Layout.unfold l ~dim:0 ~tile:3 ~stride:2 in
  check_ints "shape" [ 2; 3 ] (Array.to_list (Layout.physical_shape l));
  let packed = Layout.pack l [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (array (float 0.0))) "data"
    [| 1.; 2.; 3.; 3.; 4.; 5. |]
    packed;
  Alcotest.(check bool) "expansion" true (Layout.expansion_ratio l > 1.0)

let test_unfold_ragged () =
  (* extent 6, tile 3, stride 2: tiles at 0,2,4; the last overhangs by one
     and zero-fills *)
  let l = Layout.create [| 6 |] in
  let l = Layout.unfold l ~dim:0 ~tile:3 ~stride:2 in
  check_ints "shape" [ 3; 3 ] (Array.to_list (Layout.physical_shape l));
  let packed = Layout.pack l [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  Alcotest.(check (array (float 0.0)))
    "ragged data"
    [| 1.; 2.; 3.; 3.; 4.; 5.; 5.; 6.; 0. |]
    packed;
  Alcotest.(check bool) "unpack" true
    (Buffer.allclose [| 1.; 2.; 3.; 4.; 5.; 6. |] (Layout.unpack l packed))

let test_pad () =
  let l = Layout.create [| 2; 3 |] in
  let l = Layout.pad l ~dim:1 ~lo:0 ~hi:2 in
  check_ints "shape" [ 2; 5 ] (Array.to_list (Layout.physical_shape l));
  let packed = Layout.pack l [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  Alcotest.(check (array (float 0.0))) "zeros appended"
    [| 1.; 2.; 3.; 0.; 0.; 4.; 5.; 6.; 0.; 0. |]
    packed;
  Alcotest.(check bool) "unpack" true
    (Buffer.allclose [| 1.; 2.; 3.; 4.; 5.; 6. |] (Layout.unpack l packed))

let test_forward_exprs_match_eval_fwd () =
  (* Symbolic forward rewriting agrees with the concrete map on every
     logical index, for a basic-primitive layout. *)
  let shape = [| 4; 6 |] in
  let l = Layout.create shape in
  let l = Layout.split l ~dim:1 ~factors:[ 2; 3 ] in
  let l = Layout.reorder l [| 1; 0; 2 |] in
  let l = Layout.fuse l ~dim:1 ~count:2 in
  let a = v "a" and b = v "b" in
  let exprs =
    Layout.forward_exprs l [| Ixexpr.var a; Ixexpr.var b |]
  in
  for i = 0 to 3 do
    for j = 0 to 5 do
      let env w = if Var.equal w a then i else j in
      let sym = Array.map (Ixexpr.eval env) exprs in
      let conc = Layout.eval_fwd l [| i; j |] in
      check_ints
        (Fmt.str "idx %d %d" i j)
        (Array.to_list conc) (Array.to_list sym)
    done
  done

let test_inverse_exprs_roundtrip () =
  let shape = [| 4; 6; 2 |] in
  let l = Layout.create shape in
  let l = Layout.split l ~dim:0 ~factors:[ 2; 2 ] in
  let l = Layout.reorder l [| 3; 0; 2; 1 |] in
  let phys = Layout.physical_shape l in
  (* inverse(concrete physical idx) must equal the logical source *)
  let pvars = Array.init (Shape.rank phys) (fun i -> v (Fmt.str "p%d" i)) in
  let inv = Layout.inverse_exprs l (Array.map Ixexpr.var pvars) in
  for off = 0 to Shape.num_elements phys - 1 do
    let pidx = Shape.index_of_offset phys off in
    let env w =
      let rec find k =
        if Var.equal pvars.(k) w then pidx.(k) else find (k + 1)
      in
      find 0
    in
    let lidx = Array.map (Ixexpr.eval env) inv in
    let fwd = Layout.eval_fwd l lidx in
    check_ints "roundtrip" (Array.to_list pidx) (Array.to_list fwd)
  done

let test_unfold_eq1_rewrite () =
  (* Sliding-window access: Inp[oh + rh] with oh in [0,4), rh in [0,2),
     input extent 5 = 4 + (2-1).  Unfold with tile = ht + KH - 1 = 3,
     stride = ht = 2.  Invariant: packed[fwd(oh, rh)] = logical[oh + rh]. *)
  let d = 5 in
  let l = Layout.create [| d |] in
  let l = Layout.unfold l ~dim:0 ~tile:3 ~stride:2 in
  let oh = v "oh" and rh = v "rh" in
  let bounds = bounds_of [ (oh, (0, 3)); (rh, (0, 1)) ] in
  let window w = if Var.equal w oh then Some 1 else None in
  let access = Ixexpr.add (Ixexpr.var oh) (Ixexpr.var rh) in
  let exprs = Layout.forward_exprs ~bounds ~window l [| access |] in
  check_int "rank" 2 (Array.length exprs);
  let logical = Buffer.iota [| d |] in
  let packed = Layout.pack l logical in
  let phys = Layout.physical_shape l in
  for i = 0 to 3 do
    for r = 0 to 1 do
      let env w = if Var.equal w oh then i else r in
      let pidx = Array.map (Ixexpr.eval env) exprs in
      let poff = Shape.offset_of_index phys pidx in
      Alcotest.(check (float 0.0))
        (Fmt.str "oh=%d rh=%d" i r)
        logical.(i + r) packed.(poff)
    done
  done

let test_unfold_eq1_strided () =
  (* Conv stride V=2: access 2*oh + rh, oh in [0,4), rh in [0,3).
     Input extent D = 2*4 + 3 - 2 = 9.  Output tiled by ht=2:
     tile B = V*ht + KH - V = 2*2+3-2 = 5, S = V*ht = 4. *)
  let d = 9 in
  let l = Layout.create [| d |] in
  let l = Layout.unfold l ~dim:0 ~tile:5 ~stride:4 in
  check_ints "tiles" [ 2; 5 ] (Array.to_list (Layout.physical_shape l));
  let oh = v "oh" and rh = v "rh" in
  let bounds = bounds_of [ (oh, (0, 3)); (rh, (0, 2)) ] in
  let window w = if Var.equal w oh then Some 2 else None in
  let access =
    Ixexpr.add (Ixexpr.mul (Ixexpr.const 2) (Ixexpr.var oh)) (Ixexpr.var rh)
  in
  let exprs = Layout.forward_exprs ~bounds ~window l [| access |] in
  let logical = Buffer.iota [| d |] in
  let packed = Layout.pack l logical in
  let phys = Layout.physical_shape l in
  for i = 0 to 3 do
    for r = 0 to 2 do
      let env w = if Var.equal w oh then i else r in
      let pidx = Array.map (Ixexpr.eval env) exprs in
      let poff = Shape.offset_of_index phys pidx in
      Alcotest.(check (float 0.0))
        (Fmt.str "oh=%d rh=%d" i r)
        logical.((2 * i) + r)
        packed.(poff)
    done
  done

let test_unfold_rejects_non_window () =
  let l = Layout.create [| 5 |] in
  let l = Layout.unfold l ~dim:0 ~tile:3 ~stride:2 in
  let x = v "x" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Layout.forward_exprs l [| Ixexpr.var x |]);
       false
     with Layout.Layout_error _ -> true)

let test_layout_validation () =
  let l = Layout.create [| 4; 6 |] in
  let raises f =
    Alcotest.(check bool) "raises" true
      (try
         ignore (f ());
         false
       with Layout.Layout_error _ -> true)
  in
  raises (fun () -> Layout.split l ~dim:1 ~factors:[ 4; 2 ]);
  raises (fun () -> Layout.split l ~dim:5 ~factors:[ 2; 3 ]);
  raises (fun () -> Layout.reorder l [| 0; 0 |]);
  raises (fun () -> Layout.fuse l ~dim:1 ~count:3);
  raises (fun () -> Layout.unfold l ~dim:0 ~tile:5 ~stride:2);
  raises (fun () -> Layout.pad l ~dim:0 ~lo:(-1) ~hi:0)

let test_invertible_flags () =
  let l = Layout.create [| 4; 4 |] in
  Alcotest.(check bool) "trivial" true (Layout.is_trivial l);
  Alcotest.(check bool) "invertible" true (Layout.invertible l);
  let l2 = Layout.split l ~dim:0 ~factors:[ 2; 2 ] in
  Alcotest.(check bool) "basic invertible" true (Layout.invertible l2);
  Alcotest.(check bool) "no advanced" false (Layout.has_advanced l2);
  let l3 = Layout.pad l ~dim:0 ~lo:0 ~hi:4 in
  Alcotest.(check bool) "pad advanced" true (Layout.has_advanced l3);
  Alcotest.(check bool) "pad not invertible" false (Layout.invertible l3)

(* qcheck: generic relation round-trip — random chains over all five
   primitives.  [Layout.pack] pushes every logical element through the
   (possibly one-to-many) forward relation and [unpack] pulls it back
   through the guarded backward map, so exact reconstruction over
   unfold-duplicated and pad-holed physical buffers is the executable
   [backward o forward = id] law. *)
let gen_full_layout =
  let open QCheck2.Gen in
  let* d0 = oneofl [ 2; 4; 6 ] in
  let* d1 = oneofl [ 3; 4; 8 ] in
  let shape = [| d0; d1 |] in
  let rec add_prims l n =
    if n = 0 then return l
    else
      let phys = Layout.physical_shape l in
      let rank = Shape.rank phys in
      if Shape.num_elements phys > 1024 then return l
      else
        let* choice = int_range 0 4 in
        let* l' =
          match choice with
          | 0 ->
              let* dim = int_range 0 (rank - 1) in
              let d = phys.(dim) in
              let ds = List.filter (fun f -> f > 1 && f < d) (Shape.divisors d) in
              if ds = [] then return l
              else
                let* f = oneofl ds in
                return (Layout.split l ~dim ~factors:[ d / f; f ])
          | 1 ->
              let perm = Array.init rank (fun i -> i) in
              let* swaps =
                list_size (return 3)
                  (pair (int_range 0 (rank - 1)) (int_range 0 (rank - 1)))
              in
              List.iter
                (fun (i, j) ->
                  let t = perm.(i) in
                  perm.(i) <- perm.(j);
                  perm.(j) <- t)
                swaps;
              return (Layout.reorder l perm)
          | 2 ->
              if rank >= 2 then
                let* dim = int_range 0 (rank - 2) in
                return (Layout.fuse l ~dim ~count:2)
              else return l
          | 3 ->
              let* dim = int_range 0 (rank - 1) in
              let* lo = int_range 0 2 in
              let* hi = int_range 0 2 in
              if lo = 0 && hi = 0 then return l
              else return (Layout.pad l ~dim ~lo ~hi)
          | _ ->
              let* dim = int_range 0 (rank - 1) in
              let d = phys.(dim) in
              if d < 2 then return l
              else
                let* tile = int_range 2 (min d 4) in
                let* stride = int_range 1 tile in
                return (Layout.unfold l ~dim ~tile ~stride)
        in
        add_prims l' (n - 1)
  in
  let* n = int_range 0 5 in
  add_prims (Layout.create shape) n

let prop_relation_roundtrip =
  QCheck2.Test.make ~count:120
    ~name:"relation roundtrip: unpack o pack = id (all five prims)"
    ~print:(fun l -> Fmt.str "%a" Layout.pp l)
    gen_full_layout
    (fun l ->
      let shape = Layout.logical_shape l in
      let src =
        Array.init (Shape.num_elements shape) (fun i -> float_of_int (i + 1))
      in
      let rel = Layout.relation l in
      Layout.unpack l (Layout.pack l src) = src
      && Shape.equal (Relation.domain rel) shape
      && Shape.equal (Relation.range rel) (Layout.physical_shape l)
      && Relation.num_range_elements rel = Layout.num_physical_elements l)

(* qcheck: random basic layouts for the symbolic-forward property
   (eval_fwd is undefined on unfold, so this generator stays basic). *)
let gen_basic_layout =
  let open QCheck2.Gen in
  let* d0 = oneofl [ 2; 4; 6 ] in
  let* d1 = oneofl [ 4; 8 ] in
  let* d2 = oneofl [ 3; 6 ] in
  let shape = [| d0; d1; d2 |] in
  let rec add_prims l n =
    if n = 0 then return l
    else
      let phys = Layout.physical_shape l in
      let rank = Shape.rank phys in
      let* choice = int_range 0 2 in
      let* l' =
        match choice with
        | 0 ->
            let* dim = int_range 0 (rank - 1) in
            let ds = Shape.divisors phys.(dim) in
            let* f = oneofl ds in
            return (Layout.split l ~dim ~factors:[ phys.(dim) / f; f ])
        | 1 ->
            let perm = Array.init rank (fun i -> i) in
            let* swaps = list_size (return 3) (pair (int_range 0 (rank - 1)) (int_range 0 (rank - 1))) in
            List.iter
              (fun (i, j) ->
                let t = perm.(i) in
                perm.(i) <- perm.(j);
                perm.(j) <- t)
              swaps;
            return (Layout.reorder l perm)
        | _ ->
            if rank >= 2 then
              let* dim = int_range 0 (rank - 2) in
              return (Layout.fuse l ~dim ~count:2)
            else return l
      in
      add_prims l' (n - 1)
  in
  let* n = int_range 0 4 in
  add_prims (Layout.create shape) n

let prop_forward_matches_concrete =
  QCheck2.Test.make ~count:60 ~name:"symbolic forward = concrete forward"
    gen_basic_layout (fun l ->
      let shape = Layout.logical_shape l in
      let vars = Array.map (fun _ -> v "i") shape in
      let exprs = Layout.forward_exprs l (Array.map Ixexpr.var vars) in
      let ok = ref true in
      let n = Shape.num_elements shape in
      let step = max 1 (n / 37) in
      let off = ref 0 in
      while !off < n do
        let lidx = Shape.index_of_offset shape !off in
        let env w =
          let rec find k =
            if k >= Array.length vars then 0
            else if Var.equal vars.(k) w then lidx.(k)
            else find (k + 1)
          in
          find 0
        in
        let sym = Array.map (Ixexpr.eval env) exprs in
        let conc = Layout.eval_fwd l lidx in
        if sym <> conc then ok := false;
        off := !off + step
      done;
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "strides" `Quick test_strides;
          Alcotest.test_case "offset roundtrip" `Quick test_offset_roundtrip;
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "validate" `Quick test_shape_validate;
        ] );
      ( "ixexpr",
        [
          Alcotest.test_case "fdiv/fmod" `Quick test_fdiv_fmod;
          Alcotest.test_case "div/mod simplification" `Quick
            test_simplify_div_mod;
          Alcotest.test_case "cancellation" `Quick test_simplify_cancellation;
          Alcotest.test_case "range analysis" `Quick test_range;
          Alcotest.test_case "coeff_of/drop_var" `Quick test_coeff_of;
        ] );
      qsuite "ixexpr-props"
        [ prop_simplify_preserves_eval; prop_simplify_idempotent ];
      ( "layout",
        [
          Alcotest.test_case "blocked NOHW layout" `Quick
            test_paper_blocked_layout;
          Alcotest.test_case "fuse/split/reorder example" `Quick
            test_paper_fuse_split_example;
          Alcotest.test_case "unfold array example" `Quick
            test_unfold_array_example;
          Alcotest.test_case "unfold ragged tail" `Quick test_unfold_ragged;
          Alcotest.test_case "pad" `Quick test_pad;
          Alcotest.test_case "forward exprs = concrete" `Quick
            test_forward_exprs_match_eval_fwd;
          Alcotest.test_case "inverse exprs roundtrip" `Quick
            test_inverse_exprs_roundtrip;
          Alcotest.test_case "unfold Eq.(1) stride 1" `Quick
            test_unfold_eq1_rewrite;
          Alcotest.test_case "unfold Eq.(1) stride 2" `Quick
            test_unfold_eq1_strided;
          Alcotest.test_case "unfold rejects non-window" `Quick
            test_unfold_rejects_non_window;
          Alcotest.test_case "validation" `Quick test_layout_validation;
          Alcotest.test_case "invertibility flags" `Quick test_invertible_flags;
        ] );
      qsuite "layout-props"
        [ prop_relation_roundtrip; prop_forward_matches_concrete ];
    ]
