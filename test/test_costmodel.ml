(* Cost-model unit tests: the exact-greedy GBDT fitter against the seed
   (per-node re-sorting) fitter, batched prediction, warm-start boosting,
   and the tuner-side lowering/feature memo cache. *)

module Ops = Alt_graph.Ops
module Machine = Alt_machine.Machine
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Gbdt = Alt_costmodel.Gbdt

(* Deterministic continuous data: sampled from (0,1) so feature columns
   are tie-free, where the two fitters are guaranteed bit-identical (see
   DESIGN.md §10 for the tied-column caveat). *)
let continuous_data ~seed ~n ~d =
  let rng = Random.State.make [| seed |] in
  let xs = Array.init n (fun _ -> Array.init d (fun _ -> Random.State.float rng 1.0)) in
  let ys =
    Array.map
      (fun x ->
        Array.fold_left ( +. ) 0.0 x +. (Random.State.float rng 0.1))
      xs
  in
  (xs, ys)

(* ------------------------------------------------------------------ *)
(* Fitting                                                            *)
(* ------------------------------------------------------------------ *)

(* A monotone 1-d relation must be learned monotonically (up to leaf
   granularity): predictions at well-separated inputs must increase. *)
let test_monotone () =
  let xs = Array.init 200 (fun i -> [| float_of_int i /. 200.0 |]) in
  let ys = Array.map (fun x -> (3.0 *. x.(0)) +. 1.0) xs in
  let m = Gbdt.fit xs ys in
  let r2 = Gbdt.r2 m xs ys in
  Alcotest.(check bool) (Fmt.str "r2 %.3f > 0.9" r2) true (r2 > 0.9);
  let p_lo = Gbdt.predict m [| 0.1 |]
  and p_mid = Gbdt.predict m [| 0.5 |]
  and p_hi = Gbdt.predict m [| 0.9 |] in
  Alcotest.(check bool) "monotone" true (p_lo < p_mid && p_mid < p_hi)

(* Fitting is deterministic: same data, same trees, bit for bit. *)
let test_split_determinism () =
  let xs, ys = continuous_data ~seed:11 ~n:120 ~d:6 in
  Alcotest.(check bool) "identical refits" true
    (Gbdt.equal (Gbdt.fit xs ys) (Gbdt.fit xs ys))

(* The exact-greedy fitter reproduces the seed fitter bit-identically on
   continuous (tie-free) data. *)
let prop_old_new_equivalent =
  QCheck2.Test.make ~count:30 ~name:"exact-greedy == reference fitter"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 20 150))
    (fun (seed, n) ->
      let xs, ys = continuous_data ~seed ~n ~d:5 in
      Gbdt.equal (Gbdt.fit xs ys) (Gbdt.fit_reference xs ys))

(* ------------------------------------------------------------------ *)
(* Prediction                                                         *)
(* ------------------------------------------------------------------ *)

(* Batched prediction over the flattened trees is bitwise the per-sample
   recursive fold. *)
let prop_predict_batch_bitwise =
  QCheck2.Test.make ~count:30 ~name:"predict_batch == predict, bitwise"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let xs, ys = continuous_data ~seed ~n:80 ~d:5 in
      let m = Gbdt.fit xs ys in
      let cands, _ = continuous_data ~seed:(seed + 1) ~n:33 ~d:5 in
      let batched = Gbdt.predict_batch m cands in
      Array.for_all2 Float.equal batched (Array.map (Gbdt.predict m) cands))

let test_predict_batch_empty () =
  let xs, ys = continuous_data ~seed:3 ~n:50 ~d:4 in
  let m = Gbdt.fit xs ys in
  Alcotest.(check int) "empty batch" 0 (Array.length (Gbdt.predict_batch m [||]));
  let e = Gbdt.fit [||] [||] in
  Alcotest.(check (float 0.0)) "empty model" 0.0 (Gbdt.predict_batch e [| [| 1.0 |] |]).(0)

(* ------------------------------------------------------------------ *)
(* Warm start                                                         *)
(* ------------------------------------------------------------------ *)

let test_refit_grows () =
  let xs, ys = continuous_data ~seed:7 ~n:100 ~d:5 in
  let m = Gbdt.fit xs ys in
  let n0 = Gbdt.n_trees m in
  let xs2, ys2 = continuous_data ~seed:8 ~n:140 ~d:5 in
  let m' = Gbdt.refit m xs2 ys2 in
  Alcotest.(check bool) "trees grew" true (Gbdt.n_trees m' > n0);
  (* the boosted model must still fit the grown data it was refit on *)
  let r2 = Gbdt.r2 m' xs2 ys2 in
  Alcotest.(check bool) (Fmt.str "refit r2 %.3f > 0.5" r2) true (r2 > 0.5);
  (* explicit extra budget is honored; zero/empty are no-ops *)
  Alcotest.(check int) "extra_trees" (n0 + 3)
    (Gbdt.n_trees (Gbdt.refit ~extra_trees:3 m xs2 ys2));
  Alcotest.(check bool) "zero extra is a no-op" true
    (Gbdt.equal m (Gbdt.refit ~extra_trees:0 m xs2 ys2));
  Alcotest.(check bool) "empty data is a no-op" true
    (Gbdt.equal m (Gbdt.refit m [||] [||]));
  Alcotest.check_raises "negative extra"
    (Invalid_argument "Gbdt.refit: extra_trees must be >= 0") (fun () ->
      ignore (Gbdt.refit ~extra_trees:(-1) m xs2 ys2 : Gbdt.t))

(* ------------------------------------------------------------------ *)
(* Lowering/feature memo cache                                        *)
(* ------------------------------------------------------------------ *)

let small_c2d () =
  Ops.c2d ~name:"c2d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
    ~kh:3 ~kw:3 ()

let tune ~memo ?(warm_start = false) () =
  let task = Measure.make_task ~machine:Machine.intel_cpu ~memo (small_c2d ()) in
  let r =
    Tuner.tune_alt ~seed:3 ~warm_start ~joint_budget:8 ~loop_budget:16 task
  in
  (task, r)

(* With the cache on, Features.extract runs at most once per distinct
   (choice, schedule): the miss counter equals the number of cached
   feature vectors, and the ranking passes actually hit. *)
let test_feature_cache_single_extract () =
  let task, _ = tune ~memo:true () in
  let ls = Measure.lower_stats task in
  let _, feat_cached = Measure.lower_cache_sizes task in
  Alcotest.(check int) "one extract per distinct candidate" feat_cached
    ls.Measure.feat_misses;
  Alcotest.(check bool) "ranking hits the cache" true (ls.Measure.feat_hits > 0);
  Alcotest.(check bool) "lowering hits too" true (ls.Measure.prog_hits > 0)

(* The memo cache must not change the trajectory. *)
let test_memo_trajectory_neutral () =
  let task_on, r_on = tune ~memo:true () in
  let _, r_off = tune ~memo:false () in
  Alcotest.(check (float 0.0)) "best latency" r_off.Tuner.best_latency
    r_on.Tuner.best_latency;
  Alcotest.(check int) "spent" r_off.Tuner.spent r_on.Tuner.spent;
  Alcotest.(check bool) "history" true
    (List.equal
       (fun (a, b) (c, d) -> a = c && Float.equal b d)
       r_off.Tuner.history r_on.Tuner.history);
  (* memo off leaves the counters untouched *)
  let ls = Measure.lower_stats task_on in
  Alcotest.(check bool) "stats populated when on" true
    (ls.Measure.feat_misses > 0)

(* Warm start completes and yields a finite result (its trajectory is
   allowed to differ — that is why it is off by default). *)
let test_warm_start_runs () =
  let _, r = tune ~memo:true ~warm_start:true () in
  Alcotest.(check bool) "finite best" true
    (Float.is_finite r.Tuner.best_latency)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_costmodel"
    [
      ( "fit",
        [
          Alcotest.test_case "monotone synthetic" `Quick test_monotone;
          Alcotest.test_case "split determinism" `Quick test_split_determinism;
        ] );
      qsuite "fit-props" [ prop_old_new_equivalent ];
      ( "predict",
        [ Alcotest.test_case "empty batches" `Quick test_predict_batch_empty ]
      );
      qsuite "predict-props" [ prop_predict_batch_bitwise ];
      ( "warm-start",
        [
          Alcotest.test_case "refit grows the ensemble" `Quick test_refit_grows;
          Alcotest.test_case "tuner runs warm" `Quick test_warm_start_runs;
        ] );
      ( "memo-cache",
        [
          Alcotest.test_case "single extract per candidate" `Quick
            test_feature_cache_single_extract;
          Alcotest.test_case "trajectory neutral" `Quick
            test_memo_trajectory_neutral;
        ] );
    ]
