(* Tests for the observability layer (DESIGN.md §11): the JSON codec, the
   metrics registry, span tracing, trace-file validation, and — the
   load-bearing property — trajectory neutrality: running any tuner with
   tracing and metrics enabled produces the bit-identical result of the
   same run with observability off, for every machine model, pool size
   and fault rate.  The trace record stream itself (modulo timestamps)
   must also be identical across --jobs values and across repeated runs,
   with its schema pinned by a committed golden file. *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Ops = Alt_graph.Ops
module Propagate = Alt_graph.Propagate
module Machine = Alt_machine.Machine
module Fault = Alt_faults.Fault
module Pool = Alt_parallel.Pool
module Json = Alt_obs.Json
module Metrics = Alt_obs.Metrics
module Trace = Alt_obs.Trace
module Tracecheck = Alt_obs.Tracecheck
module Templates = Alt_tuner.Templates
module Measure = Alt_tuner.Measure
module Checkpoint = Alt_tuner.Checkpoint
module Tuner = Alt_tuner.Tuner

let tiny_c2d () =
  Ops.c2d ~name:"c2d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
    ~kh:3 ~kw:3 ()

let make_task ?(machine = Machine.intel_cpu) ?faults ?retries op =
  Measure.make_task ~machine ~max_points:2_000 ~seed:7 ?faults ?retries op

let choice_equal (a : Propagate.choice) (b : Propagate.choice) =
  Layout.equal a.Propagate.out_layout b.Propagate.out_layout
  && List.length a.Propagate.in_layouts = List.length b.Propagate.in_layouts
  && List.for_all2
       (fun (n1, l1) (n2, l2) -> n1 = n2 && Layout.equal l1 l2)
       a.Propagate.in_layouts b.Propagate.in_layouts

let result_equal (a : Tuner.result) (b : Tuner.result) =
  a.Tuner.best_latency = b.Tuner.best_latency
  && choice_equal a.Tuner.best_choice b.Tuner.best_choice
  && a.Tuner.best_schedule = b.Tuner.best_schedule
  && a.Tuner.history = b.Tuner.history
  && a.Tuner.spent = b.Tuner.spent
  && a.Tuner.best_result = b.Tuner.best_result

let with_tmp ?(suffix = ".tmp") f =
  let path = Filename.temp_file "altobs" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* every observability test leaves the process with obs fully off *)
let obs_off () =
  Trace.close ();
  Metrics.disable ();
  Metrics.reset ()

let with_metrics f =
  Metrics.enable ();
  Metrics.reset ();
  Fun.protect ~finally:obs_off f

let is_err = function Error _ -> true | Ok _ -> false

(* ------------------------------------------------------------------ *)
(* JSON codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.Float 2.5);
        ("c", Json.String "x\"y\\z\n\t\001");
        ("d", Json.Bool true);
        ("e", Json.Null);
        ("f", Json.List [ Json.Int 0; Json.Float 1.0; Json.String "" ]);
        ("g", Json.Obj []);
      ]
  in
  Alcotest.(check bool)
    "composite value round-trips" true
    (Json.parse_exn (Json.to_string v) = v);
  (* field order is preserved, rendering is stable *)
  Alcotest.(check string)
    "stable rendering" (Json.to_string v)
    (Json.to_string (Json.parse_exn (Json.to_string v)))

let test_json_floats () =
  Alcotest.(check string) "whole float keeps .0" "1.0"
    (Json.to_string (Json.Float 1.0));
  Alcotest.(check string) "0.25" "0.25" (Json.to_string (Json.Float 0.25));
  Alcotest.(check bool)
    "0.1 round-trips" true
    (Json.parse_exn (Json.to_string (Json.Float 0.1)) = Json.Float 0.1);
  Alcotest.(check string) "nan renders null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "infinity renders null" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check bool)
    "exponent notation parses" true
    (Json.parse_exn "1e3" = Json.Float 1000.0)

let test_json_escapes () =
  Alcotest.(check bool)
    "\\u0041 decodes" true
    (Json.parse_exn "\"\\u0041\"" = Json.String "A");
  Alcotest.(check string)
    "control char escapes" "\"\\u0001\""
    (Json.to_string (Json.String "\001"));
  Alcotest.(check bool)
    "escaped control char round-trips" true
    (Json.parse_exn "\"\\u0001\"" = Json.String "\001")

let test_json_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Fmt.str "reject %S" s) true (is_err (Json.parse s)))
    [ ""; "{"; "[1,]"; "tru"; "1 2"; "{\"a\":1,}"; "{\"a\":}"; "\"unterminated" ];
  (match Json.parse_exn "{" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ())

let test_json_accessors () =
  let v = Json.parse_exn "{\"n\":3,\"s\":\"hi\",\"l\":[1],\"b\":false}" in
  Alcotest.(check bool) "member hit" true
    (Json.member "n" v = Some (Json.Int 3));
  Alcotest.(check bool) "member miss" true (Json.member "zz" v = None);
  Alcotest.(check bool) "member of non-object" true
    (Json.member "n" (Json.Int 1) = None);
  Alcotest.(check bool)
    "to_float_opt accepts Int" true
    (Option.bind (Json.member "n" v) Json.to_float_opt = Some 3.0);
  Alcotest.(check bool) "to_int_opt" true
    (Option.bind (Json.member "n" v) Json.to_int_opt = Some 3);
  Alcotest.(check bool) "to_int_opt rejects strings" true
    (Json.to_int_opt (Json.String "3") = None);
  Alcotest.(check bool) "to_string_opt" true
    (Option.bind (Json.member "s" v) Json.to_string_opt = Some "hi");
  Alcotest.(check bool) "to_bool_opt" true
    (Option.bind (Json.member "b" v) Json.to_bool_opt = Some false);
  Alcotest.(check bool) "to_list_opt" true
    (Option.bind (Json.member "l" v) Json.to_list_opt = Some [ Json.Int 1 ])

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_metrics_gating () =
  obs_off ();
  let c = Metrics.counter "t.gate.c" in
  let g = Metrics.gauge "t.gate.g" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.set g 3.0;
  Alcotest.(check int) "disabled incr is a no-op" 0 (Metrics.counter_value c);
  Alcotest.(check bool) "disabled set is a no-op" true
    (Metrics.gauge_value g = None);
  Metrics.add_raw c 5;
  Metrics.set_raw g 2.5;
  Alcotest.(check int) "add_raw bypasses the gate" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "set_raw bypasses the gate" true
    (Metrics.gauge_value g = Some 2.5);
  Metrics.enable ();
  Fun.protect ~finally:obs_off (fun () ->
      Metrics.incr c;
      Metrics.set g 4.0;
      Alcotest.(check int) "enabled incr applies" 6 (Metrics.counter_value c);
      Alcotest.(check bool) "enabled set applies" true
        (Metrics.gauge_value g = Some 4.0))

let test_metrics_registration () =
  let c1 = Metrics.counter "t.reg.x" in
  let c2 = Metrics.counter "t.reg.x" in
  Metrics.add_raw c1 3;
  Alcotest.(check int)
    "same name, same instrument" 3 (Metrics.counter_value c2);
  (match Metrics.gauge "t.reg.x" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind clash"
  | exception Invalid_argument _ -> ());
  (match Metrics.histogram "t.reg.empty" ~buckets:[] with
  | _ -> Alcotest.fail "expected Invalid_argument on empty buckets"
  | exception Invalid_argument _ -> ());
  (match Metrics.histogram "t.reg.unsorted" ~buckets:[ 2.0; 1.0 ] with
  | _ -> Alcotest.fail "expected Invalid_argument on unsorted buckets"
  | exception Invalid_argument _ -> ());
  Metrics.reset ()

let test_metrics_histogram () =
  with_metrics (fun () ->
      let h = Metrics.histogram "t.hist" ~buckets:[ 1.0; 10.0 ] in
      List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
      match Metrics.find "t.hist" with
      | Some
          {
            Metrics.value = Metrics.Histogram { buckets; overflow; count; sum };
            _;
          } ->
          Alcotest.(check bool)
            "bucket counts" true
            (buckets = [ (1.0, 1); (10.0, 1) ]);
          Alcotest.(check int) "overflow" 1 overflow;
          Alcotest.(check int) "count" 3 count;
          Alcotest.(check (float 1e-9)) "sum" 55.5 sum
      | _ -> Alcotest.fail "histogram not found in registry")

let test_metrics_snapshot_and_reset () =
  with_metrics (fun () ->
      let c = Metrics.counter "t.snap.c" in
      let g = Metrics.gauge "t.snap.g" in
      Metrics.incr c;
      Metrics.set g 1.0;
      let names = List.map (fun m -> m.Metrics.name) (Metrics.snapshot ()) in
      Alcotest.(check bool)
        "snapshot is name-sorted" true
        (names = List.sort compare names);
      Alcotest.(check bool) "snapshot finds both" true
        (List.mem "t.snap.c" names && List.mem "t.snap.g" names);
      (* the snapshot renders as the versioned JSON document *)
      (match Json.member "version" (Metrics.to_json ()) with
      | Some (Json.Int 1) -> ()
      | _ -> Alcotest.fail "to_json carries version 1");
      Metrics.reset ();
      Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c);
      Alcotest.(check bool) "reset clears gauges" true
        (Metrics.gauge_value g = None);
      Alcotest.(check bool)
        "registration survives reset" true
        (Metrics.find "t.snap.c" <> None))

(* ------------------------------------------------------------------ *)
(* Trace emission and validation                                      *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_passthrough () =
  obs_off ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  Alcotest.(check int) "with_span is a direct call" 42
    (Trace.with_span "t" (fun () -> 42));
  Trace.instant "nothing";
  Alcotest.(check bool) "task_begin is None" true (Trace.task_begin () = None)

let test_trace_roundtrip () =
  with_tmp ~suffix:".trace.jsonl" (fun path ->
      Trace.configure ~path;
      Fun.protect ~finally:obs_off (fun () ->
          Trace.with_span "outer"
            ~attrs:[ ("k", Json.Int 1) ]
            (fun () ->
              Trace.instant "mark";
              Trace.with_span "inner" (fun () -> ()));
          (* an exception inside a span still closes it *)
          (try Trace.with_span "boom" (fun () -> failwith "x")
           with Failure _ -> ()));
      let records =
        match Tracecheck.parse_file path with
        | Ok rs -> rs
        | Error e -> Alcotest.failf "parse_file: %s" e
      in
      Alcotest.(check int) "seven records" 7 (List.length records);
      Alcotest.(check bool) "validates" true
        (Tracecheck.validate records = Ok ());
      let shape =
        List.map (fun r -> (r.Tracecheck.ph, r.Tracecheck.name)) records
      in
      Alcotest.(check bool)
        "phases and nesting" true
        (shape
        = [
            ("B", "outer"); ("I", "mark"); ("B", "inner"); ("E", "inner");
            ("E", "outer"); ("B", "boom"); ("E", "boom");
          ]);
      match records with
      | r :: _ ->
          Alcotest.(check bool) "attrs survive the round trip" true
            (r.Tracecheck.attrs = [ ("k", Json.Int 1) ])
      | [] -> Alcotest.fail "no records")

let test_trace_task_buffers () =
  with_tmp ~suffix:".trace.jsonl" (fun path ->
      Trace.configure ~path;
      Fun.protect ~finally:obs_off (fun () ->
          Trace.instant "direct0";
          let b = Trace.task_begin () in
          Trace.instant "buffered";
          Trace.task_end b;
          Trace.instant "direct1";
          (* the pool flushes captured records after the batch joins *)
          Trace.flush_buffer b);
      let records = Result.get_ok (Tracecheck.parse_file path) in
      Alcotest.(check bool) "validates" true
        (Tracecheck.validate records = Ok ());
      Alcotest.(check bool)
        "buffered records land at flush time" true
        (List.map (fun r -> r.Tracecheck.name) records
        = [ "direct0"; "direct1"; "buffered" ]))

let rcd ?(attrs = []) seq ts ph name =
  { Tracecheck.seq; ts; ph; name; attrs }

let test_trace_validator_rejections () =
  let bad =
    [
      ("seq gap", [ rcd 0 0 "I" "a"; rcd 2 0 "I" "b" ]);
      ("seq not from zero", [ rcd 1 0 "I" "a" ]);
      ("timestamp goes backwards", [ rcd 0 10 "I" "a"; rcd 1 5 "I" "b" ]);
      ("mismatched span end", [ rcd 0 0 "B" "a"; rcd 1 0 "E" "b" ]);
      ("unclosed span", [ rcd 0 0 "B" "a" ]);
      ("end with no open span", [ rcd 0 0 "E" "a" ]);
    ]
  in
  List.iter
    (fun (what, records) ->
      Alcotest.(check bool) what true (is_err (Tracecheck.validate records)))
    bad;
  Alcotest.(check bool)
    "well-nested stream accepted" true
    (Tracecheck.validate
       [ rcd 0 0 "B" "a"; rcd 1 1 "B" "b"; rcd 2 2 "E" "b"; rcd 3 2 "E" "a" ]
    = Ok ())

let test_trace_parse_line_errors () =
  List.iter
    (fun (what, line) ->
      Alcotest.(check bool) what true (is_err (Tracecheck.parse_line line)))
    [
      ("not JSON", "nope");
      ("missing fields", "{}");
      ( "bad phase",
        "{\"seq\":0,\"ts\":0,\"ph\":\"X\",\"name\":\"a\",\"attrs\":{}}" );
      ( "attrs not an object",
        "{\"seq\":0,\"ts\":0,\"ph\":\"I\",\"name\":\"a\",\"attrs\":1}" );
    ]

(* The committed golden file pins the on-disk schema: field names and
   order, phase letters, attribute spellings of every instrumented site,
   and the volatile-attribute scrub in [normalize].  If this test breaks,
   the trace format changed — bump it deliberately. *)
let test_trace_golden () =
  (* dune runtest runs in the test directory; dune exec from the root *)
  let golden =
    if Sys.file_exists "obs_golden.trace.jsonl" then "obs_golden.trace.jsonl"
    else "test/obs_golden.trace.jsonl"
  in
  let records =
    match Tracecheck.parse_file golden with
    | Ok rs -> rs
    | Error e -> Alcotest.failf "golden trace failed to parse: %s" e
  in
  Alcotest.(check bool) "golden validates" true
    (Tracecheck.validate records = Ok ());
  let expected =
    [
      {|{"ph":"B","name":"tuner.tune_alt","attrs":{}}|};
      {|{"ph":"B","name":"measure.batch","attrs":{"n":8,"pending":4}}|};
      {|{"ph":"B","name":"measure.sim","attrs":{"key":"0e4dca5e60b476ee51674865d8d8e39d","attempt":0}}|};
      {|{"ph":"B","name":"profiler.run","attrs":{"machine":"intel-cpu","points":10656,"sampled":false}}|};
      {|{"ph":"E","name":"profiler.run","attrs":{}}|};
      {|{"ph":"E","name":"measure.sim","attrs":{}}|};
      {|{"ph":"E","name":"measure.batch","attrs":{}}|};
      {|{"ph":"I","name":"tuner.round","attrs":{"round":1,"generated":8,"measured":4,"spent":4,"cache_hits":0,"cache_misses":4,"faulted":0,"retried":0,"quarantined":0,"best_latency_ms":0.25,"layout_chain_depth":1}}|};
      {|{"ph":"B","name":"checkpoint.save","attrs":{}}|};
      {|{"ph":"E","name":"checkpoint.save","attrs":{}}|};
      {|{"ph":"E","name":"tuner.tune_alt","attrs":{}}|};
    ]
  in
  Alcotest.(check (list string))
    "normalize matches the pinned projection (gbdt_fit_ms scrubbed)" expected
    (Tracecheck.normalize records);
  (* a freshly emitted record carries exactly the golden field layout *)
  with_tmp ~suffix:".trace.jsonl" (fun path ->
      Trace.configure ~path;
      Fun.protect ~finally:obs_off (fun () ->
          Trace.with_span "s" (fun () -> ()));
      let ic = open_in path in
      let line =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
            input_line ic)
      in
      Alcotest.(check bool)
        "emitted line leads with seq then ts" true
        (let prefix = {|{"seq":0,"ts":|} in
         let m = String.length prefix in
         String.length line > m && String.sub line 0 m = prefix);
      Alcotest.(check bool)
        "emitted line ends with ph/name/attrs" true
        (let suffix = {|"ph":"B","name":"s","attrs":{}}|} in
         let n = String.length line and m = String.length suffix in
         n >= m && String.sub line (n - m) m = suffix))

(* ------------------------------------------------------------------ *)
(* Pool edge cases and counter ground truth                           *)
(* ------------------------------------------------------------------ *)

let pool_counts () =
  ( Metrics.counter_value (Metrics.counter "pool.batches"),
    Metrics.counter_value (Metrics.counter "pool.tasks.submitted"),
    Metrics.counter_value (Metrics.counter "pool.tasks.completed"),
    Metrics.counter_value (Metrics.counter "pool.tasks.failed") )

let check_counts what (b, s, c, f) =
  let got = pool_counts () in
  Alcotest.(check (list int)) what [ b; s; c; f ]
    (let b', s', c', f' = got in
     [ b'; s'; c'; f' ])

let test_pool_zero_tasks () =
  with_metrics (fun () ->
      let p1 = Pool.create ~jobs:1 () in
      Alcotest.(check bool) "serial empty map" true
        (Pool.map_array p1 (fun x -> x) [||] = [||]);
      check_counts "empty batch counted, nothing submitted" (1, 0, 0, 0);
      let p4 = Pool.create ~jobs:4 () in
      Alcotest.(check bool) "parallel empty map" true
        (Pool.map p4 (fun x -> x) [] = []);
      check_counts "second empty batch" (2, 0, 0, 0))

let test_pool_more_jobs_than_tasks () =
  with_metrics (fun () ->
      let p = Pool.create ~jobs:8 () in
      Alcotest.(check (list int))
        "jobs > tasks still maps in order" [ 2; 4; 6 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ]);
      check_counts "three tasks, all completed" (1, 3, 3, 0))

let test_pool_exception_in_last_task () =
  let f i = if i = 3 then failwith "boom" else i in
  with_metrics (fun () ->
      (* serial: the failure propagates immediately, after 3 successes *)
      (match Pool.map_array (Pool.create ()) f [| 0; 1; 2; 3 |] with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Pool.Task_failed (3, Failure _) -> ());
      check_counts "serial: last task fails" (1, 4, 3, 1);
      Metrics.reset ();
      (* parallel: the whole batch drains, then the same failure surfaces *)
      (match Pool.map_array (Pool.create ~jobs:4 ()) f [| 0; 1; 2; 3 |] with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Pool.Task_failed (3, Failure _) -> ());
      check_counts "parallel: batch drained, one failed" (1, 4, 3, 1);
      Metrics.reset ();
      (* result discipline: the failure is a per-task outcome in order *)
      let rs = Pool.map_result (Pool.create ~jobs:4 ()) f [ 0; 1; 2; 3 ] in
      Alcotest.(check bool)
        "map_result surfaces the last-task error in order" true
        (match rs with
        | [ Ok 0; Ok 1; Ok 2; Error (Failure _) ] -> true
        | _ -> false);
      check_counts "map_result counters" (1, 4, 3, 1))

(* Counter totals must agree with ground truth computed from the result
   list, for assorted batch shapes and pool sizes. *)
let test_pool_counters_ground_truth () =
  List.iter
    (fun (n, fail_at, jobs) ->
      with_metrics (fun () ->
          let f i =
            match fail_at with
            | Some k when i = k -> failwith "injected"
            | _ -> i * i
          in
          let rs =
            Pool.map_result (Pool.create ~jobs ()) f (List.init n (fun i -> i))
          in
          let ok = List.length (List.filter Result.is_ok rs) in
          let err = List.length (List.filter is_err rs) in
          check_counts
            (Fmt.str "n=%d jobs=%d" n jobs)
            (1, n, ok, err)))
    [
      (5, None, 1); (5, Some 4, 1); (7, Some 6, 4); (1, Some 0, 4);
      (6, None, 3); (0, None, 2);
    ]

(* ------------------------------------------------------------------ *)
(* Checkpoint robustness                                              *)
(* ------------------------------------------------------------------ *)

let sample_checkpoint () =
  {
    Checkpoint.fingerprint = "fp";
    rounds = 2;
    spent = 9;
    best_latency = 1.25;
    rng_digest = "digest";
    cache = [];
    quarantine = [ ("k", "why") ];
  }

let expect_load_failure what path =
  match Checkpoint.load ~path with
  | _ -> Alcotest.failf "%s: expected Failure" what
  | exception Failure msg ->
      Alcotest.(check bool)
        (what ^ ": message names the path") true
        (String.length msg >= String.length path
        && String.sub msg 0 (String.length path) = path)

let test_checkpoint_empty_and_short () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      close_out oc;
      expect_load_failure "empty file" path);
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "ALT";
      close_out oc;
      expect_load_failure "shorter than the magic" path)

let test_checkpoint_corrupt_magic () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTACKPTxxxxxxxxxxxxxxxx";
      close_out oc;
      expect_load_failure "foreign magic" path)

let test_checkpoint_truncated () =
  (* magic alone: the version marshal is missing *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "ALTCKPT\001";
      close_out oc;
      expect_load_failure "magic only" path);
  (* a valid checkpoint cut short mid-record *)
  with_tmp (fun path ->
      Checkpoint.save ~path (sample_checkpoint ());
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 (len - 4));
      close_out oc;
      expect_load_failure "truncated record" path)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_checkpoint_version_mismatch () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "ALTCKPT\001";
      Marshal.to_channel oc (99 : int) [];
      Marshal.to_channel oc (sample_checkpoint ()) [];
      close_out oc;
      match Checkpoint.load ~path with
      | _ -> Alcotest.fail "expected Failure on version 99"
      | exception Failure msg ->
          Alcotest.(check bool)
            "message names the version" true
            (contains_sub msg "version 99"))

let test_checkpoint_fingerprint_mismatch () =
  with_tmp (fun path ->
      Checkpoint.save ~path (sample_checkpoint ());
      let op = tiny_c2d () in
      let task = make_task op in
      match
        Tuner.tune_loop_only ~seed:3 ~resume:path ~explorer:Tuner.Guided
          ~budget:10
          ~layouts:[ Templates.trivial_choice op ]
          task
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Trace round-trip over a real tuning run; --jobs stability          *)
(* ------------------------------------------------------------------ *)

let traced_tune ~path ~jobs =
  let op = tiny_c2d () in
  let task =
    make_task ~faults:(Fault.create ~seed:2 ~rate:0.2 ()) ~retries:1 op
  in
  Trace.configure ~path;
  Fun.protect ~finally:obs_off (fun () ->
      Tuner.tune_alt ~seed:9 ~jobs ~joint_budget:8 ~loop_budget:10 task)

let required_round_attrs =
  [
    "round"; "generated"; "measured"; "spent"; "cache_hits"; "cache_misses";
    "faulted"; "retried"; "quarantined"; "gbdt_fit_ms"; "best_latency_ms";
    "layout_chain_depth";
  ]

let test_trace_real_run_roundtrip () =
  with_tmp ~suffix:".trace.jsonl" (fun p1 ->
      with_tmp ~suffix:".trace.jsonl" (fun p2 ->
          with_tmp ~suffix:".trace.jsonl" (fun p3 ->
              let r1 = traced_tune ~path:p1 ~jobs:4 in
              let r2 = traced_tune ~path:p2 ~jobs:4 in
              let r3 = traced_tune ~path:p3 ~jobs:1 in
              Alcotest.(check bool) "repeat run, same result" true
                (result_equal r1 r2);
              Alcotest.(check bool) "jobs=1 run, same result" true
                (result_equal r1 r3);
              let parse p = Result.get_ok (Tracecheck.parse_file p) in
              let t1 = parse p1 and t2 = parse p2 and t3 = parse p3 in
              List.iter
                (fun (what, t) ->
                  Alcotest.(check bool) what true
                    (Tracecheck.validate t = Ok ()))
                [ ("run 1 validates", t1); ("run 2 validates", t2);
                  ("jobs=1 run validates", t3) ];
              Alcotest.(check bool)
                "two identical jobs=4 runs: identical normalized streams"
                true
                (Tracecheck.normalize t1 = Tracecheck.normalize t2);
              Alcotest.(check bool)
                "jobs=1 and jobs=4: identical normalized streams" true
                (Tracecheck.normalize t1 = Tracecheck.normalize t3);
              (* per-round telemetry is present and fully populated *)
              let rounds =
                List.filter
                  (fun r ->
                    r.Tracecheck.ph = "I" && r.Tracecheck.name = "tuner.round")
                  t1
              in
              Alcotest.(check bool) "round instants present" true
                (List.length rounds > 0);
              List.iter
                (fun r ->
                  List.iter
                    (fun k ->
                      Alcotest.(check bool)
                        (Fmt.str "round attr %s" k)
                        true
                        (List.mem_assoc k r.Tracecheck.attrs))
                    required_round_attrs)
                rounds;
              (* the spans the pipeline promises all show up *)
              List.iter
                (fun name ->
                  Alcotest.(check bool) (name ^ " span present") true
                    (List.exists
                       (fun r ->
                         r.Tracecheck.ph = "B" && r.Tracecheck.name = name)
                       t1))
                [ "tuner.tune_alt"; "measure.batch"; "measure.sim";
                  "profiler.run" ])))

(* ------------------------------------------------------------------ *)
(* Differential: observability on vs off is bit-identical             *)
(* ------------------------------------------------------------------ *)

let machines = [| Machine.intel_cpu; Machine.nvidia_gpu; Machine.arm_cpu |]

let run_leg which ~obs ~seed ~machine ~jobs =
  let op = tiny_c2d () in
  let task =
    make_task ~machine ~faults:(Fault.create ~seed ~rate:0.3 ()) ~retries:2 op
  in
  let run () =
    match which with
    | `Alt -> Tuner.tune_alt ~seed ~jobs ~joint_budget:8 ~loop_budget:8 task
    | `Loop ->
        Tuner.tune_loop_only ~seed ~jobs ~explorer:Tuner.Guided ~budget:14
          ~layouts:[ Templates.trivial_choice op ]
          task
  in
  if not obs then begin
    obs_off ();
    run ()
  end
  else
    let path = Filename.temp_file "altobs" ".trace.jsonl" in
    Fun.protect
      ~finally:(fun () ->
        obs_off ();
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Trace.configure ~path;
        Metrics.enable ();
        run ())

let diff_prop which name =
  QCheck2.Test.make ~count:9 ~name
    QCheck2.Gen.(triple (int_bound 999) (int_bound 2) bool)
    (fun (seed, m, par) ->
      let machine = machines.(m) in
      let jobs = if par then 4 else 1 in
      let off = run_leg which ~obs:false ~seed ~machine ~jobs in
      let on = run_leg which ~obs:true ~seed ~machine ~jobs in
      result_equal off on)

let prop_diff_alt =
  diff_prop `Alt "tune_alt: traced+metrics = disabled (bit-identical)"

let prop_diff_loop =
  diff_prop `Loop "tune_loop_only: traced+metrics = disabled (bit-identical)"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float rendering" `Quick test_json_floats;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "malformed input" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "off-by-default gating" `Quick test_metrics_gating;
          Alcotest.test_case "registration" `Quick test_metrics_registration;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram;
          Alcotest.test_case "snapshot and reset" `Quick
            test_metrics_snapshot_and_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled passthrough" `Quick
            test_trace_disabled_passthrough;
          Alcotest.test_case "emit, parse, validate" `Quick test_trace_roundtrip;
          Alcotest.test_case "task capture buffers" `Quick
            test_trace_task_buffers;
          Alcotest.test_case "validator rejections" `Quick
            test_trace_validator_rejections;
          Alcotest.test_case "parse_line errors" `Quick
            test_trace_parse_line_errors;
          Alcotest.test_case "golden schema" `Quick test_trace_golden;
        ] );
      ( "pool-edges",
        [
          Alcotest.test_case "zero tasks" `Quick test_pool_zero_tasks;
          Alcotest.test_case "more jobs than tasks" `Quick
            test_pool_more_jobs_than_tasks;
          Alcotest.test_case "exception in the last task" `Quick
            test_pool_exception_in_last_task;
          Alcotest.test_case "counters match ground truth" `Quick
            test_pool_counters_ground_truth;
        ] );
      ( "checkpoint-robustness",
        [
          Alcotest.test_case "empty and short files" `Quick
            test_checkpoint_empty_and_short;
          Alcotest.test_case "corrupt magic" `Quick test_checkpoint_corrupt_magic;
          Alcotest.test_case "truncated journal" `Quick test_checkpoint_truncated;
          Alcotest.test_case "version mismatch" `Quick
            test_checkpoint_version_mismatch;
          Alcotest.test_case "fingerprint mismatch on resume" `Quick
            test_checkpoint_fingerprint_mismatch;
        ] );
      ( "trace-roundtrip",
        [
          Alcotest.test_case "real run: validate + --jobs stability" `Quick
            test_trace_real_run_roundtrip;
        ] );
      qsuite "trajectory-neutrality" [ prop_diff_alt; prop_diff_loop ];
    ]
