(* Exec backend differential suite (DESIGN.md §12).

   The exec backend's contract is *element-wise identical outputs* to
   the scalar interpreter: the compiled macro-kernels mirror the
   interpreter's combine functions and accumulation chains exactly, so
   every buffer is compared with [=] — no epsilon.  The suite drives
   random (layout, schedule) candidates from the tuning templates
   through both devices on all three machine profiles, plus directed
   candidates covering every layout primitive (split / reorder / fuse /
   unfold / pad), fused conv+relu chains, and the generic fallback for
   non-affine bodies.  The rank-correlation regression at the end is the
   paper's cross-validation claim in miniature: simulator latency must
   rank a seeded candidate set like real execution does (tolerance-
   gated: wall clocks on loaded CI boxes can be arbitrarily noisy, so
   the assertion is skipped when timing is demonstrably unreliable). *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Program = Alt_ir.Program
module Ops = Alt_graph.Ops
module Propagate = Alt_graph.Propagate
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Runtime = Alt_machine.Runtime
module Kernel = Alt_exec.Kernel
module Exec = Alt_exec.Exec
module Rankcorr = Alt_exec.Rankcorr
module Templates = Alt_tuner.Templates
module Loopspace = Alt_tuner.Loopspace
module Measure = Alt_tuner.Measure

let machines = [ Machine.intel_cpu; Machine.nvidia_gpu; Machine.arm_cpu ]
let trivial shape = Layout.create shape

let conv_op =
  Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
    ~kh:3 ~kw:3 ()

let gmm_op = Ops.gmm ~name:"g" ~a:"A" ~b:"B" ~out:"Y" ~m:6 ~k:12 ~n:16 ()

let bufs_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> x = y) a b

(* Run one program through the exec kernels and the scalar interpreter;
   every physical buffer must be bit-identical afterwards. *)
let prog_differential machine prog ~inputs =
  let be = Runtime.alloc_bufs prog ~inputs
  and bs = Runtime.alloc_bufs prog ~inputs in
  let k = Kernel.compile prog ~bufs:be in
  k.Kernel.run ();
  let _ = Profiler.run ~machine ~fast:false prog ~bufs:bs in
  Array.for_all2 bufs_equal be bs

(* One (choice, schedule) candidate, via the measurement harness's
   lowering (the exact path the tuner takes). *)
let differential ?(fused = []) machine op (choice : Propagate.choice) sched =
  let task = Measure.make_task ~fused ~machine op in
  match Measure.program_of task choice sched with
  | None -> true (* candidate does not lower; nothing to compare *)
  | Some prog -> prog_differential machine prog ~inputs:task.Measure.feeds

let prop_differential op nactions name =
  QCheck2.Test.make ~count:20 ~name
    QCheck2.Gen.(
      pair
        (array_size (return nactions) (float_bound_exclusive 1.0))
        (array_size (return 32) (float_bound_exclusive 1.0)))
    (fun (actions, point) ->
      let tpl = Option.get (Templates.for_op op) in
      let choice = tpl.Templates.decode actions in
      let space = Loopspace.of_layout op choice.Propagate.out_layout in
      let sched =
        Loopspace.decode space (Array.sub point 0 (Loopspace.dim space))
      in
      List.for_all (fun m -> differential m op choice sched) machines)

(* ------------------------------------------------------------------ *)
(* Directed candidates: every layout primitive                        *)
(* ------------------------------------------------------------------ *)

(* The hand-built ALT C2D template of Section 5.1 (as in test_ir):
   split + reorder + unfold on the input, split + reorder on kernel and
   output — the layout-primitive-heavy shape the tuner actually emits. *)
let alt_template_candidate () =
  let out =
    let l = trivial [| 1; 8; 8; 8 |] in
    let l = Layout.split l ~dim:1 ~factors:[ 2; 4 ] in
    let l = Layout.split l ~dim:3 ~factors:[ 2; 4 ] in
    let l = Layout.split l ~dim:5 ~factors:[ 2; 4 ] in
    Layout.reorder l [| 0; 3; 5; 1; 4; 6; 2 |]
  in
  let inp =
    let l = trivial [| 1; 4; 10; 10 |] in
    let l = Layout.split l ~dim:1 ~factors:[ 2; 2 ] in
    let l = Layout.unfold l ~dim:3 ~tile:6 ~stride:4 in
    let l = Layout.unfold l ~dim:5 ~tile:6 ~stride:4 in
    Layout.reorder l [| 0; 3; 5; 1; 4; 6; 2 |]
  in
  let ker =
    let l = trivial [| 8; 4; 3; 3 |] in
    let l = Layout.split l ~dim:0 ~factors:[ 2; 4 ] in
    let l = Layout.split l ~dim:2 ~factors:[ 2; 2 ] in
    Layout.reorder l [| 0; 2; 4; 5; 3; 1 |]
  in
  let op =
    Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:8 ~w:8
      ~kh:3 ~kw:3 ()
  in
  let choice =
    { Propagate.out_layout = out; in_layouts = [ ("X", inp); ("K", ker) ] }
  in
  let sched =
    Schedule.vectorize (Schedule.default ~rank:7 ~nred:3)
  in
  (op, choice, sched)

let has_prim pred (prog : Program.t) =
  Array.exists
    (fun (s : Program.slot) -> List.exists pred (Layout.prims s.Program.layout))
    prog.Program.slots

let test_unfolded_template () =
  let op, choice, sched = alt_template_candidate () in
  let task = Measure.make_task ~machine:Machine.intel_cpu op in
  let prog = Option.get (Measure.program_of task choice sched) in
  Alcotest.(check bool)
    "unfold present" true
    (has_prim (function Layout.Unfold _ -> true | _ -> false) prog);
  Alcotest.(check bool)
    "split+reorder present" true
    (has_prim (function Layout.Split _ -> true | _ -> false) prog
    && has_prim (function Layout.Reorder _ -> true | _ -> false) prog);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Machine.name ^ " exec == interpreter")
        true
        (differential m op choice sched))
    machines

let test_padded_fused () =
  (* padded input (advanced, non-invertible: inputs only) + fused relu *)
  let relu =
    Ops.relu ~name:"r" ~inp:"Y" ~out:"Z" ~shape:conv_op.Opdef.out_shape ()
  in
  let inp = Layout.pad (trivial [| 1; 4; 8; 8 |]) ~dim:2 ~lo:1 ~hi:1 in
  let choice =
    {
      Propagate.out_layout = trivial conv_op.Opdef.out_shape;
      in_layouts = [ ("X", inp) ];
    }
  in
  let sched = Schedule.default ~rank:4 ~nred:3 in
  let task =
    Measure.make_task ~fused:[ relu ] ~machine:Machine.intel_cpu conv_op
  in
  let prog = Option.get (Measure.program_of task choice sched) in
  Alcotest.(check bool)
    "pad present" true
    (has_prim (function Layout.Pad _ -> true | _ -> false) prog);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Machine.name ^ " fused+padded exec == interpreter")
        true
        (differential ~fused:[ relu ] m conv_op choice sched))
    machines

let test_fused_output_layout () =
  (* fuse on the output layout (basic primitive, invertible) *)
  let out = Layout.fuse (trivial conv_op.Opdef.out_shape) ~dim:2 ~count:2 in
  let choice = { Propagate.out_layout = out; in_layouts = [] } in
  let sched = Schedule.vectorize (Schedule.default ~rank:3 ~nred:3) in
  let task = Measure.make_task ~machine:Machine.intel_cpu conv_op in
  let prog = Option.get (Measure.program_of task choice sched) in
  Alcotest.(check bool)
    "fuse present" true
    (has_prim (function Layout.Fuse _ -> true | _ -> false) prog);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Machine.name ^ " fused-layout exec == interpreter")
        true
        (differential m conv_op choice sched))
    machines

(* ------------------------------------------------------------------ *)
(* Engine coverage                                                    *)
(* ------------------------------------------------------------------ *)

let test_macro_engagement () =
  (* a tuned matmul must hit the macro path (MAC kernel + tile init),
     not the generic fallback *)
  let task = Measure.make_task ~machine:Machine.intel_cpu gmm_op in
  let choice = Templates.trivial_choice gmm_op in
  let sched = Schedule.vectorize (Schedule.default ~rank:2 ~nred:1) in
  let prog = Option.get (Measure.program_of task choice sched) in
  let bufs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
  let k = Kernel.compile prog ~bufs in
  k.Kernel.run ();
  Alcotest.(check bool)
    "macro groups compiled" true
    (k.Kernel.stats.Kernel.macro_groups > 0
    && k.Kernel.stats.Kernel.macro_runs > 0);
  Alcotest.(check int) "no generic fallback" 0
    k.Kernel.stats.Kernel.generic_groups

let test_generic_fallback () =
  (* a layout conversion writes through div/mod of the loop variable —
     non-affine, so the macro planner must decline and the generic path
     must still match the interpreter *)
  let shape = [| 8; 12 |] in
  let src = Layout.split (trivial shape) ~dim:1 ~factors:[ 3; 4 ] in
  let prog = Lower.conversion ~src ~dst:(trivial shape) () in
  let logical = Buffer.random ~seed:7 shape in
  let mk () =
    [| Layout.pack src logical;
       Array.make (Layout.num_physical_elements (trivial shape)) 0.0 |]
  in
  let be = mk () and bs = mk () in
  let k = Kernel.compile prog ~bufs:be in
  k.Kernel.run ();
  Alcotest.(check bool)
    "generic fallback engaged" true
    (k.Kernel.stats.Kernel.generic_groups > 0);
  let _ = Profiler.run ~fast:false prog ~bufs:bs in
  Alcotest.(check bool) "outputs equal" true (Array.for_all2 bufs_equal be bs)

(* ------------------------------------------------------------------ *)
(* Relation-derived layouts: random primitive chains (DESIGN.md §16)  *)
(* ------------------------------------------------------------------ *)

(* Scaled-down mirror of test_relation's chain generator.  A conversion
   program from a bijective src chain into an arbitrary dst chain is the
   executable form of the relation's backward map — the pad/unfold
   guards become Pselect zero-fills — so exec == interpreter over random
   chains extends the round-trip laws from pack/unpack to compiled
   kernels. *)

let chain_counts =
  match Sys.getenv_opt "ALT_RELATION_COUNT" with
  | Some s -> ( try max 10 (int_of_string s) with _ -> 500)
  | None -> 500

let gen_chain_perm rank =
  let open QCheck2.Gen in
  let* swaps =
    list_size (int_range 0 4)
      (pair (int_range 0 (rank - 1)) (int_range 0 (rank - 1)))
  in
  let perm = Array.init rank (fun i -> i) in
  List.iter
    (fun (i, j) ->
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t)
    swaps;
  return perm

(* One random primitive applied to [l] (or [l] unchanged when the drawn
   primitive has no legal instantiation); [basic_only] keeps the chain
   bijective, as Lower.conversion requires of its source. *)
let gen_chain_prim ?(basic_only = false) l =
  let open QCheck2.Gen in
  let phys = Layout.physical_shape l in
  let rank = Shape.rank phys in
  if Shape.num_elements phys > 512 then return l
  else
    let* k = if basic_only then int_range 0 2 else int_range 0 4 in
    match k with
    | 0 ->
        let* dim = int_range 0 (rank - 1) in
        let d = phys.(dim) in
        let ds = List.filter (fun f -> f > 1 && f < d) (Shape.divisors d) in
        if ds = [] then return l
        else
          let* f = oneofl ds in
          return (Layout.split l ~dim ~factors:[ d / f; f ])
    | 1 ->
        let* perm = gen_chain_perm rank in
        return (Layout.reorder l perm)
    | 2 ->
        if rank < 2 then return l
        else
          let* dim = int_range 0 (rank - 2) in
          let* count = int_range 2 (min 3 (rank - dim)) in
          return (Layout.fuse l ~dim ~count)
    | 3 ->
        let* dim = int_range 0 (rank - 1) in
        let* lo = int_range 0 2 in
        let* hi = int_range 0 2 in
        if lo = 0 && hi = 0 then return l
        else return (Layout.pad l ~dim ~lo ~hi)
    | _ ->
        let* dim = int_range 0 (rank - 1) in
        let d = phys.(dim) in
        if d < 2 then return l
        else
          let* tile = int_range 2 (min d 4) in
          let* stride = int_range 1 tile in
          return (Layout.unfold l ~dim ~tile ~stride)

let gen_layout_chain ?basic_only shape =
  let open QCheck2.Gen in
  let* depth = int_range 0 4 in
  let rec go l n =
    if n = 0 then return l
    else bind (gen_chain_prim ?basic_only l) (fun l' -> go l' (n - 1))
  in
  go (trivial shape) depth

let gen_conversion_pair =
  let open QCheck2.Gen in
  let* rank = int_range 1 3 in
  let* dims = list_repeat rank (oneofl [ 2; 3; 4; 6 ]) in
  let shape = Array.of_list dims in
  let* src = gen_layout_chain ~basic_only:true shape in
  let* dst = gen_layout_chain shape in
  return (src, dst)

let prop_relation_chains =
  QCheck2.Test.make ~count:chain_counts
    ~name:"random primitive chains: conversion exec == interpreter"
    ~print:(fun (src, dst) ->
      Fmt.str "src=%a dst=%a" Layout.pp src Layout.pp dst)
    gen_conversion_pair
    (fun (src, dst) ->
      let prog = Lower.conversion ~src ~dst () in
      let logical =
        Array.init
          (Shape.num_elements (Layout.logical_shape src))
          (fun i -> float_of_int (i + 1))
      in
      prog_differential Machine.intel_cpu prog
        ~inputs:[ ("convert.src", logical) ])

(* ------------------------------------------------------------------ *)
(* Measurement discipline                                             *)
(* ------------------------------------------------------------------ *)

let test_measure_repeatable () =
  (* warmup+repeats rerun the kernel; the buffer reset between runs must
     make the final outputs equal to a single interpreter execution *)
  let task = Measure.make_task ~machine:Machine.intel_cpu gmm_op in
  let choice = Templates.trivial_choice gmm_op in
  let sched = Schedule.default ~rank:2 ~nred:1 in
  let prog = Option.get (Measure.program_of task choice sched) in
  let be = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds
  and bs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
  let w =
    Exec.measure
      ~cfg:{ Exec.warmup = 2; repeats = 3; clock = Exec.Wall; domains = 1 }
      prog ~bufs:be
  in
  Alcotest.(check int) "3 samples" 3 (Array.length w.Exec.samples);
  Alcotest.(check bool) "finite median" true
    (Float.is_finite w.Exec.median_ms && w.Exec.median_ms >= 0.0);
  Alcotest.(check bool) "ordered stats" true
    (w.Exec.min_ms <= w.Exec.median_ms && w.Exec.median_ms <= w.Exec.max_ms);
  let _ = Profiler.run ~fast:false prog ~bufs:bs in
  Alcotest.(check bool)
    "outputs equal after repeated runs" true
    (Array.for_all2 bufs_equal be bs)

let test_virtual_clock () =
  (* Virtual clock: fully deterministic measurement, zero spread, and
     the kernel still produces real outputs *)
  let task = Measure.make_task ~machine:Machine.intel_cpu gmm_op in
  let choice = Templates.trivial_choice gmm_op in
  let sched = Schedule.default ~rank:2 ~nred:1 in
  let prog = Option.get (Measure.program_of task choice sched) in
  let clock = Exec.Virtual (fun p -> float_of_int p.Program.flops *. 1e-6) in
  let measure () =
    let bufs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
    (Exec.measure ~cfg:{ Exec.warmup = 2; repeats = 5; clock; domains = 1 } prog ~bufs, bufs)
  in
  let w1, b1 = measure () in
  let w2, b2 = measure () in
  Alcotest.(check (float 0.0)) "deterministic median" w1.Exec.median_ms
    w2.Exec.median_ms;
  Alcotest.(check (float 0.0)) "zero spread" 0.0 (Exec.spread w1);
  Alcotest.(check bool) "samples identical" true
    (w1.Exec.samples = w2.Exec.samples);
  let yi = Program.slot_index prog "Y" in
  Alcotest.(check bool) "outputs produced and equal" true
    (Array.for_all2 bufs_equal b1 b2
    && Array.exists (fun v -> v <> 0.0) b1.(yi))

let test_backend_through_runtime () =
  (* Runtime.run_logical with the exec backend: logical outputs equal
     the sim backend's, latency comes from the wall clock *)
  let task = Measure.make_task ~machine:Machine.intel_cpu gmm_op in
  let choice = Templates.trivial_choice gmm_op in
  let sched = Schedule.default ~rank:2 ~nred:1 in
  let prog = Option.get (Measure.program_of task choice sched) in
  let outs_sim, _ =
    Runtime.run_logical ~machine:Machine.intel_cpu prog
      ~inputs:task.Measure.feeds
  in
  let cfg = { Exec.warmup = 1; repeats = 3; clock = Exec.Wall; domains = 1 } in
  let outs_exec, r =
    Runtime.run_logical ~machine:Machine.intel_cpu
      ~backend:(Runtime.Exec cfg) prog ~inputs:task.Measure.feeds
  in
  Alcotest.(check bool) "logical outputs identical" true
    (List.for_all2
       (fun (n1, a) (n2, b) -> n1 = n2 && bufs_equal a b)
       outs_sim outs_exec);
  Alcotest.(check bool) "exec result sane" true
    (Float.is_finite r.Profiler.latency_ms
    && r.Profiler.latency_ms >= 0.0
    && (not r.Profiler.sampled)
    && r.Profiler.flops = float_of_int prog.Program.flops)

(* ------------------------------------------------------------------ *)
(* Parallel driver (DESIGN.md §15)                                    *)
(* ------------------------------------------------------------------ *)

(* One full kernel execution at a given domain count. *)
let run_with_domains ~domains prog ~inputs =
  let bufs = Runtime.alloc_bufs prog ~inputs in
  let k = Kernel.compile ~domains prog ~bufs in
  k.Kernel.run ();
  (k, bufs)

(* The §15 contract: exec_domains = 1 and exec_domains = 4 produce
   bit-identical buffers, engaged or fallen back. *)
let parallel_differential ?(fused = []) op (choice : Propagate.choice) sched =
  let task = Measure.make_task ~fused ~machine:Machine.intel_cpu op in
  match Measure.program_of task choice sched with
  | None -> true
  | Some prog ->
      let _, b1 =
        run_with_domains ~domains:1 prog ~inputs:task.Measure.feeds
      in
      let _, b4 =
        run_with_domains ~domains:4 prog ~inputs:task.Measure.feeds
      in
      Array.for_all2 bufs_equal b1 b4

let prop_parallel op nactions name =
  QCheck2.Test.make ~count:15 ~name
    QCheck2.Gen.(
      triple
        (array_size (return nactions) (float_bound_exclusive 1.0))
        (array_size (return 32) (float_bound_exclusive 1.0))
        (int_range 0 2))
    (fun (actions, point, par) ->
      let tpl = Option.get (Templates.for_op op) in
      let choice = tpl.Templates.decode actions in
      let space = Loopspace.of_layout op choice.Propagate.out_layout in
      let sched =
        Loopspace.decode space (Array.sub point 0 (Loopspace.dim space))
      in
      parallel_differential op choice (Schedule.parallel sched par))

let test_parallel_directed () =
  (* the layout-primitive-heavy candidates from the directed suite, with
     their leading loops marked parallel *)
  let op, choice, sched = alt_template_candidate () in
  Alcotest.(check bool)
    "ALT template (unfold): domains 1 == 4" true
    (parallel_differential op choice (Schedule.parallel sched 2));
  let relu =
    Ops.relu ~name:"r" ~inp:"Y" ~out:"Z" ~shape:conv_op.Opdef.out_shape ()
  in
  let inp = Layout.pad (trivial [| 1; 4; 8; 8 |]) ~dim:2 ~lo:1 ~hi:1 in
  let pchoice =
    {
      Propagate.out_layout = trivial conv_op.Opdef.out_shape;
      in_layouts = [ ("X", inp) ];
    }
  in
  let psched = Schedule.parallel (Schedule.default ~rank:4 ~nred:3) 2 in
  Alcotest.(check bool)
    "padded + fused relu: domains 1 == 4" true
    (parallel_differential ~fused:[ relu ] conv_op pchoice psched)

let test_parallel_engages () =
  (* a tuned parallel matmul must actually chunk — and still match the
     scalar interpreter bit for bit *)
  let task = Measure.make_task ~machine:Machine.intel_cpu gmm_op in
  let choice = Templates.trivial_choice gmm_op in
  let sched = Schedule.parallel (Schedule.default ~rank:2 ~nred:1) 1 in
  let prog = Option.get (Measure.program_of task choice sched) in
  let k4, b4 = run_with_domains ~domains:4 prog ~inputs:task.Measure.feeds in
  Alcotest.(check bool)
    "chunks dispatched" true
    (k4.Kernel.stats.Kernel.par_chunks > 0);
  Alcotest.(check int) "no fallback" 0 k4.Kernel.stats.Kernel.par_fallbacks;
  Alcotest.(check bool)
    "per-chunk timings recorded" true
    (Array.length k4.Kernel.par_ms = k4.Kernel.stats.Kernel.par_chunks
    && Array.for_all (fun ms -> Float.is_finite ms && ms >= 0.0)
         k4.Kernel.par_ms);
  let bs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
  let _ = Profiler.run ~machine:Machine.intel_cpu ~fast:false prog ~bufs:bs in
  Alcotest.(check bool)
    "parallel outputs == interpreter" true
    (Array.for_all2 bufs_equal b4 bs)

(* A bare parallel loop reducing into one scalar: every iteration writes
   offset 0.  Non-disjoint (the forced-fallback case) and, having no
   init store, the canonical Reduce-accumulation footgun. *)
let scalar_reduce_prog n =
  let i = Var.fresh "i" in
  {
    Program.pname = "scalar_reduce";
    body =
      Program.For
        ( { Program.v = i; extent = n; kind = Program.Parallel },
          Program.Reduce
            ( { Program.slot = 1; idx = [| Ixexpr.Const 0 |] },
              Program.Rsum,
              Program.Pload { Program.slot = 0; idx = [| Ixexpr.Var i |] } )
        );
    slots =
      [|
        { Program.sname = "X"; layout = trivial [| n |];
          role = Program.Input };
        { Program.sname = "Y"; layout = trivial [| 1 |];
          role = Program.Output };
      |];
    flops = n;
  }

let test_forced_fallback () =
  (* the disjointness check must refuse the scalar reduction and the
     driver must fall back — loudly — while outputs stay identical *)
  let n = 64 in
  let prog = scalar_reduce_prog n in
  let inputs = [ ("X", Buffer.random ~seed:3 [| n |]) ] in
  let k1, b1 = run_with_domains ~domains:1 prog ~inputs in
  let k4, b4 = run_with_domains ~domains:4 prog ~inputs in
  Alcotest.(check int) "serial path has no fallback tick" 0
    k1.Kernel.stats.Kernel.par_fallbacks;
  Alcotest.(check int) "fallback counted" 1
    k4.Kernel.stats.Kernel.par_fallbacks;
  Alcotest.(check int) "no chunks dispatched" 0
    k4.Kernel.stats.Kernel.par_chunks;
  Alcotest.(check bool) "outputs identical" true
    (Array.for_all2 bufs_equal b1 b4)

(* The disjointness check driven by the relation algebra: an overlapped
   unfold (stride < tile) makes the window relation non-injective, so a
   nest whose parallel loop runs over tiles while storing back through
   the inverse window map [t*stride + r] has chunks with overlapping
   write footprints.  The driver must refuse to chunk and fall back,
   with bit-identical outputs (the overlapped writes carry equal values,
   but the checker cannot know that). *)
let test_relation_noninjective_fallback () =
  let d = 7 and tile = 3 and stride = 2 in
  let src = Layout.unfold (trivial [| d |]) ~dim:0 ~tile ~stride in
  Alcotest.(check bool)
    "overlapped window relation is non-injective" false
    (Relation.injective (Layout.relation src));
  let tiles = (Layout.physical_shape src).(0) in
  let t = Var.fresh "t" and r = Var.fresh "r" in
  let prog =
    {
      Program.pname = "overlap_unfold";
      body =
        Program.For
          ( { Program.v = t; extent = tiles; kind = Program.Parallel },
            Program.For
              ( { Program.v = r; extent = tile; kind = Program.Serial },
                Program.Store
                  ( {
                      Program.slot = 1;
                      idx =
                        [|
                          Ixexpr.Add
                            ( Ixexpr.Mul (Ixexpr.Var t, Ixexpr.Const stride),
                              Ixexpr.Var r );
                        |];
                    },
                    Program.Pload
                      {
                        Program.slot = 0;
                        idx = [| Ixexpr.Var t; Ixexpr.Var r |];
                      } ) ) );
      slots =
        [|
          { Program.sname = "X"; layout = src; role = Program.Input };
          { Program.sname = "Y"; layout = trivial [| d |];
            role = Program.Output };
        |];
      flops = 0;
    }
  in
  let logical = Array.init d (fun i -> float_of_int (i + 1)) in
  let inputs = [ ("X", logical) ] in
  let k1, b1 = run_with_domains ~domains:1 prog ~inputs in
  let k4, b4 = run_with_domains ~domains:4 prog ~inputs in
  Alcotest.(check int) "serial path has no fallback tick" 0
    k1.Kernel.stats.Kernel.par_fallbacks;
  Alcotest.(check int) "fallback counted" 1
    k4.Kernel.stats.Kernel.par_fallbacks;
  Alcotest.(check int) "no chunks dispatched" 0
    k4.Kernel.stats.Kernel.par_chunks;
  Alcotest.(check bool) "outputs identical" true
    (Array.for_all2 bufs_equal b1 b4);
  (* folding the unfolded view back through the inverse window map must
     reproduce the logical tensor exactly *)
  let yi = Program.slot_index prog "Y" in
  Alcotest.(check bool) "inverse window reconstructs the tensor" true
    (bufs_equal b1.(yi) logical)

let test_reset_required () =
  (* the Reduce-accumulation footgun (kernel.mli): back-to-back runs
     without reset must produce detectably different outputs, and the
     measurement path's per-repeat reset must hide it.  (Programs the
     tuner lowers re-init their outputs inside the nest; the bare
     reduce program is the one that genuinely accumulates.) *)
  let n = 64 in
  let prog = scalar_reduce_prog n in
  let inputs = [ ("X", Buffer.random ~seed:5 [| n |]) ] in
  let reference = Runtime.alloc_bufs prog ~inputs in
  let kr = Kernel.compile prog ~bufs:reference in
  kr.Kernel.run ();
  let dirty = Runtime.alloc_bufs prog ~inputs in
  let kd = Kernel.compile prog ~bufs:dirty in
  kd.Kernel.run ();
  kd.Kernel.run ();
  let yi = Program.slot_index prog "Y" in
  Alcotest.(check bool)
    "unreset rerun accumulates (footgun detected)" false
    (bufs_equal reference.(yi) dirty.(yi));
  Kernel.reset_non_inputs kd;
  kd.Kernel.run ();
  Alcotest.(check bool)
    "reset_non_inputs restores repeatability" true
    (bufs_equal reference.(yi) dirty.(yi));
  (* Exec.measure resets before every timed repeat, warmup or not:
     warmup = 0 exercises the reset ahead of the very first timed run *)
  let mb = Runtime.alloc_bufs prog ~inputs in
  let _ =
    Exec.measure
      ~cfg:{ Exec.warmup = 0; repeats = 3; clock = Exec.Wall; domains = 1 }
      prog ~bufs:mb
  in
  Alcotest.(check bool)
    "measured outputs == single run" true
    (bufs_equal reference.(yi) mb.(yi))

let test_measure_parallel_fields () =
  (* Exec.measure at domains = 4: wall carries the parallel counters and
     the buffers equal the serial measurement's *)
  let task = Measure.make_task ~machine:Machine.intel_cpu gmm_op in
  let choice = Templates.trivial_choice gmm_op in
  let sched = Schedule.parallel (Schedule.default ~rank:2 ~nred:1) 1 in
  let prog = Option.get (Measure.program_of task choice sched) in
  let measure domains =
    let bufs = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
    let w =
      Exec.measure
        ~cfg:{ Exec.warmup = 1; repeats = 2; clock = Exec.Wall; domains }
        prog ~bufs
    in
    (w, bufs)
  in
  let w1, b1 = measure 1 in
  let w4, b4 = measure 4 in
  Alcotest.(check int) "serial: no chunks" 0 w1.Exec.par_chunks;
  Alcotest.(check (float 0.0)) "serial: no imbalance" 0.0 w1.Exec.imbalance_pct;
  Alcotest.(check bool) "parallel: chunks counted" true
    (w4.Exec.par_chunks > 0);
  Alcotest.(check int) "parallel: no fallback" 0 w4.Exec.par_fallbacks;
  Alcotest.(check bool) "imbalance finite" true
    (Float.is_finite w4.Exec.imbalance_pct && w4.Exec.imbalance_pct >= 0.0);
  Alcotest.(check bool) "outputs equal across domain counts" true
    (Array.for_all2 bufs_equal b1 b4)

let test_buffer_reuse () =
  (* satellite: the second candidate of a task must be served from the
     buffer cache (shared input packs + recycled scratch), not malloc *)
  let task = Measure.make_task ~machine:Machine.intel_cpu gmm_op in
  let choice = Templates.trivial_choice gmm_op in
  let s1 = Schedule.default ~rank:2 ~nred:1 in
  let s2 = Schedule.split s1 ~dim:0 ~inner:2 in
  ignore (Measure.measure task choice s1);
  let st = Measure.buf_stats task in
  Alcotest.(check bool) "first candidate allocates" true
    (st.Measure.buf_misses > 0);
  let h0 = st.Measure.buf_hits and m0 = st.Measure.buf_misses in
  ignore (Measure.measure task choice s2);
  Alcotest.(check bool) "second candidate reuses buffers" true
    (st.Measure.buf_hits > h0);
  Alcotest.(check int) "no new allocations" m0 st.Measure.buf_misses

(* ------------------------------------------------------------------ *)
(* Rank correlation                                                   *)
(* ------------------------------------------------------------------ *)

let test_rankcorr_units () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let up = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  let down = [| 5.0; 4.0; 3.0; 2.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "spearman perfect" 1.0 (Rankcorr.spearman a up);
  Alcotest.(check (float 1e-9))
    "spearman reversed" (-1.0) (Rankcorr.spearman a down);
  Alcotest.(check (float 1e-9)) "kendall perfect" 1.0 (Rankcorr.kendall a up);
  Alcotest.(check (float 1e-9))
    "kendall reversed" (-1.0) (Rankcorr.kendall a down);
  (* ties: average ranks *)
  Alcotest.(check bool) "tied ranks averaged" true
    (Rankcorr.ranks [| 2.0; 1.0; 2.0 |] = [| 2.5; 1.0; 2.5 |]);
  Alcotest.(check bool) "constant vector gated" true
    (Float.is_nan (Rankcorr.spearman [| 1.0; 1.0; 1.0 |] a)
    || Array.length a <> 3);
  Alcotest.(check bool) "too short gated" true
    (Float.is_nan (Rankcorr.spearman [| 1.0 |] [| 2.0 |]))

(* Fixed candidate set for the regression: the deterministic layout zoo
   of a large streaming operator, under one fixed serial scalar
   schedule.  The design picks the one axis both devices price the same
   way.  The simulator's latency is (cache misses + static flops) — it
   deliberately omits the per-operation interpreter overhead that
   dominates the exec device's wall clock — so rank agreement can only
   be asserted on candidates that (a) hold the loop structure constant
   (reorder/pad layouts, never split/unfold) and (b) are miss-bound on
   the real machine too.  A 512x512 elementwise sweep is exactly that:
   2 MB per tensor busts every modeled and physical cache level, and a
   transposed input layout turns the unit-stride sweep into a
   4 KB-stride one that both the cache model and the hardware must pay
   for, while the operation count (the exec overhead) stays fixed. *)
let crossval_candidates op =
  let sched =
    Schedule.no_vectorize (Schedule.parallel (Schedule.default ~rank:2 ~nred:0) 0)
  in
  List.map (fun choice -> (choice, sched)) (Templates.layout_zoo op)

let test_rank_correlation () =
  let side = 512 in
  let op = Ops.relu ~name:"r" ~inp:"X" ~out:"Y" ~shape:[| side; side |] () in
  let machine = Machine.intel_cpu in
  let max_points = 8 * side * side in
  let task = Measure.make_task ~max_points ~machine op in
  let progs =
    crossval_candidates op
    |> List.filter_map (fun (c, s) -> Measure.program_of task c s)
    |> List.fold_left
         (fun (seen, acc) p ->
           let key = Measure.program_key p in
           if List.mem key seen then (seen, acc)
           else (key :: seen, p :: acc))
         ([], [])
    |> snd |> List.rev
  in
  Alcotest.(check bool)
    (Fmt.str "enough distinct candidates (%d)" (List.length progs))
    true
    (List.length progs >= 8);
  let cfg = { Exec.warmup = 1; repeats = 5; clock = Exec.Wall; domains = 1 } in
  let wall p =
    let bufs = Runtime.alloc_bufs p ~inputs:task.Measure.feeds in
    Exec.measure ~cfg p ~bufs
  in
  let sim p =
    let bufs = Runtime.alloc_bufs p ~inputs:task.Measure.feeds in
    let r = Profiler.run ~machine ~max_points ~fast:true p ~bufs in
    Alcotest.(check bool) "sim not sampled" false r.Profiler.sampled;
    r.Profiler.latency_ms
  in
  let sims = List.map sim progs |> Array.of_list in
  (* the model must actually differentiate the zoo — otherwise the rank
     assertion below would be vacuous *)
  let smin = Array.fold_left Float.min sims.(0) sims in
  let smax = Array.fold_left Float.max sims.(0) sims in
  Alcotest.(check bool) "sim differentiates the layout zoo" true
    (smax > 2.0 *. smin);
  (* One measurement attempt: a noise probe (time the first candidate
     twice) plus the wall vector.  A transient load spike — another
     test suite's build step, a busy host — can flatten the wall signal
     while the probe happens to land in a quiet window, so a failed
     verdict is retried on fresh measurements a couple of times before
     the test judges the ranking itself wrong. *)
  let attempt () =
    let p0 = List.hd progs in
    let a = (wall p0).Exec.median_ms and b = (wall p0).Exec.median_ms in
    let noise = Float.abs (a -. b) /. Float.max 1e-9 (Float.min a b) in
    let walls =
      List.map (fun p -> (wall p).Exec.median_ms) progs |> Array.of_list
    in
    let rho = Rankcorr.spearman sims walls in
    let tau = Rankcorr.kendall sims walls in
    let wmin = Array.fold_left Float.min walls.(0) walls in
    let wmax = Array.fold_left Float.max walls.(0) walls in
    let wspread = wmax /. Float.max 1e-9 wmin in
    Fmt.epr "crossval: n=%d rho=%.3f tau=%.3f noise=%.3f wspread=%.2fx@."
      (Array.length sims) rho tau noise wspread;
    (noise, rho, tau, wspread)
  in
  let rec judge tries =
    let noise, rho, tau, wspread = attempt () in
    if noise > 0.3 then
      Fmt.epr "crossval: wall clock unreliable (noise %.2f) — floor skipped@."
        noise
    else if rho > 0.5 && tau > 0.0 then ()
    else if tries > 1 then begin
      Fmt.epr "crossval: rho %.3f below floor — remeasuring (%d left)@." rho
        (tries - 1);
      judge (tries - 1)
    end
    else if wspread < 1.5 then
      (* the wall-side twin of the sim non-vacuity guard above: on a
         healthy box the zoo spans >= 2x on the wall clock; a
         cache-thrashing neighbor (shared host) makes every layout
         equally miss-bound, and rank agreement over a flat vector is
         noise by construction — skip, loudly, rather than judge *)
      Fmt.epr
        "crossval: wall spread %.2fx cannot separate the zoo (contended \
         box) — floor skipped@."
        wspread
    else begin
      (* pinned floor: conservative against the 0.8-0.95 observed, because
         exec wall and the cache model measure different
         micro-architectures and the box may be loaded *)
      Alcotest.(check bool)
        (Fmt.str "spearman %.3f above floor 0.5" rho)
        true (rho > 0.5);
      Alcotest.(check bool) (Fmt.str "kendall %.3f positive" tau) true
        (tau > 0.0)
    end
  in
  judge 3

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "alt_exec"
    [
      ( "differential",
        qsuite
          [
            prop_differential conv_op 6 "conv2d: exec == interpreter (3 machines)";
            prop_differential gmm_op 3 "matmul: exec == interpreter (3 machines)";
            prop_relation_chains;
          ]
        @ [
            Alcotest.test_case "ALT template (split/reorder/unfold)" `Quick
              test_unfolded_template;
            Alcotest.test_case "padded input + fused relu" `Quick
              test_padded_fused;
            Alcotest.test_case "fused output layout" `Quick
              test_fused_output_layout;
          ] );
      ( "engine",
        [
          Alcotest.test_case "macro kernels engage" `Quick
            test_macro_engagement;
          Alcotest.test_case "generic fallback matches" `Quick
            test_generic_fallback;
        ] );
      ( "parallel",
        qsuite
          [
            prop_parallel conv_op 6 "conv2d: domains 1 == 4 (random par)";
            prop_parallel gmm_op 3 "matmul: domains 1 == 4 (random par)";
          ]
        @ [
            Alcotest.test_case "directed: unfold/pad/fused-relu" `Quick
              test_parallel_directed;
            Alcotest.test_case "parallel chunks engage" `Quick
              test_parallel_engages;
            Alcotest.test_case "non-disjoint nest falls back" `Quick
              test_forced_fallback;
            Alcotest.test_case "non-injective window relation falls back"
              `Quick test_relation_noninjective_fallback;
          ] );
      ( "measurement",
        [
          Alcotest.test_case "warmup/repeat/median discipline" `Quick
            test_measure_repeatable;
          Alcotest.test_case "reset-before-repeat regression" `Quick
            test_reset_required;
          Alcotest.test_case "parallel measurement fields" `Quick
            test_measure_parallel_fields;
          Alcotest.test_case "buffer-cache reuse" `Quick test_buffer_reuse;
          Alcotest.test_case "virtual clock deterministic" `Quick
            test_virtual_clock;
          Alcotest.test_case "runtime backend threading" `Quick
            test_backend_through_runtime;
        ] );
      ( "crossval",
        [
          Alcotest.test_case "rank correlation units" `Quick
            test_rankcorr_units;
          Alcotest.test_case "sim ranks like exec (seeded set)" `Quick
            test_rank_correlation;
        ] );
    ]
