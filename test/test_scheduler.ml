(* Differential tests for the gradient task scheduler (DESIGN.md §14):
   jobs-count invariance of whole-zoo trajectories, Static-policy
   equivalence with the legacy sequential graph tuner, Tuner.Step fiber
   equivalence with direct tuner calls, and the headline perf property —
   gradient scheduling with cost-model transfer beats (or matches) the
   static split on end-to-end latency at equal budget. *)

module Graph = Alt_graph.Graph
module Ops = Alt_graph.Ops
module Machine = Alt_machine.Machine
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Taskset = Alt_tuner.Taskset
module Scheduler = Alt_tuner.Scheduler
module Graph_tuner = Alt_tuner.Graph_tuner

(* --- tiny two-model zoo: a conv net and an MLP sharing one gmm task --- *)

let conv_model () =
  let b = Graph.builder () in
  let x = Graph.input b "x" [| 1; 4; 8; 8 |] in
  let k = Graph.param b "k" [| 8; 4; 3; 3 |] in
  let y =
    Graph.add b
      (Ops.c2d ~name:"conv" ~inp:x ~ker:k ~out:"y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
         ~kh:3 ~kw:3 ())
  in
  let yr =
    Graph.add b (Ops.relu ~name:"relu" ~inp:y ~out:"yr" ~shape:[| 1; 8; 6; 6 |] ())
  in
  ignore yr;
  Graph.finish b ~outputs:[ yr ]

let mlp_model () =
  let b = Graph.builder () in
  let x = Graph.input b "x" [| 8; 8 |] in
  let w0 = Graph.param b "w0" [| 8; 8 |] in
  let w1 = Graph.param b "w1" [| 8; 12 |] in
  let h =
    Graph.add b (Ops.gmm ~name:"fc0" ~a:x ~b:w0 ~out:"h" ~m:8 ~k:8 ~n:8 ())
  in
  let hr =
    Graph.add b (Ops.relu ~name:"relu0" ~inp:h ~out:"hr" ~shape:[| 8; 8 |] ())
  in
  let o =
    Graph.add b (Ops.gmm ~name:"fc1" ~a:hr ~b:w1 ~out:"o" ~m:8 ~k:8 ~n:12 ())
  in
  ignore o;
  Graph.finish b ~outputs:[ o ]

(* the mlp's fc0 (gmm 8x8x8 + relu chain) also appears here, so the zoo
   exercises cross-model task dedup *)
let mixed_model () =
  let b = Graph.builder () in
  let x = Graph.input b "x" [| 8; 8 |] in
  let w0 = Graph.param b "w0" [| 8; 8 |] in
  let h =
    Graph.add b (Ops.gmm ~name:"g0" ~a:x ~b:w0 ~out:"h" ~m:8 ~k:8 ~n:8 ())
  in
  let hr =
    Graph.add b (Ops.relu ~name:"r0" ~inp:h ~out:"hr" ~shape:[| 8; 8 |] ())
  in
  let h2 =
    Graph.add b (Ops.gmm ~name:"g1" ~a:hr ~b:w0 ~out:"h2" ~m:8 ~k:8 ~n:8 ())
  in
  let h2r =
    Graph.add b (Ops.relu ~name:"r1" ~inp:h2 ~out:"h2r" ~shape:[| 8; 8 |] ())
  in
  ignore h2r;
  Graph.finish b ~outputs:[ h2r ]

let zoo () = [ ("convnet", conv_model ()); ("mlp", mlp_model ()) ]

let tune ?(jobs = 1) ?transfer ~policy ~budget graphs =
  Graph_tuner.tune_models ~jobs ~max_points:2_000 ?transfer ~policy
    ~system:Graph_tuner.Galt ~machine:Machine.intel_cpu ~budget graphs

(* --- task extraction across the zoo --- *)

let test_taskset_dedup () =
  let graphs =
    [ ("mlp", mlp_model ()); ("mixed", mixed_model ()) ]
  in
  let entries = Taskset.of_graphs graphs in
  (* fc0 and both of mixed's gmms share one signature; fc1 is its own *)
  Alcotest.(check int) "unique tasks" 2 (List.length entries);
  let shared = List.hd entries in
  Alcotest.(check (list (pair string int)))
    "occurrence counts"
    [ ("mlp", 1); ("mixed", 2) ]
    shared.Taskset.occurrences;
  Alcotest.(check int) "total occurrences" 3 (Taskset.occurrences_total shared)

(* --- determinism: jobs=1 and jobs=4 trajectories are byte-identical --- *)

let task_key (t : Scheduler.task_report) =
  ( t.Scheduler.signature,
    t.Scheduler.trials,
    t.Scheduler.rounds,
    t.Scheduler.best_latency,
    t.Scheduler.result.Tuner.history )

let check_reports_equal what (a : Scheduler.report) (b : Scheduler.report) =
  Alcotest.(check int) (what ^ ": picks") a.Scheduler.picks b.Scheduler.picks;
  Alcotest.(check int)
    (what ^ ": eps picks") a.Scheduler.eps_picks b.Scheduler.eps_picks;
  Alcotest.(check int) (what ^ ": spent") a.Scheduler.spent b.Scheduler.spent;
  List.iter2
    (fun ta tb ->
      if task_key ta <> task_key tb then
        Alcotest.failf "%s: task %s trajectory differs" what
          ta.Scheduler.signature)
    a.Scheduler.tasks b.Scheduler.tasks;
  Alcotest.(check (list (pair string (list (pair int (float 1e-12))))))
    (what ^ ": curves") a.Scheduler.curves b.Scheduler.curves

let test_jobs_invariance policy () =
  let budget = 72 in
  let r1, _ = tune ~jobs:1 ~policy ~budget (zoo ()) in
  let r4, _ = tune ~jobs:4 ~policy ~budget (zoo ()) in
  check_reports_equal (Scheduler.policy_name policy) r1 r4

(* --- Static through the scheduler == the legacy sequential loop --- *)

let test_static_equals_legacy () =
  let budget = 64 in
  let legacy =
    Graph_tuner.tune_graph ~max_points:2_000 ~system:Graph_tuner.Galt
      ~machine:Machine.intel_cpu ~budget (conv_model ())
  in
  let via_sched =
    Graph_tuner.tune_graph ~max_points:2_000 ~scheduler:Scheduler.Static
      ~system:Graph_tuner.Galt ~machine:Machine.intel_cpu ~budget
      (conv_model ())
  in
  Alcotest.(check int)
    "tasks" legacy.Graph_tuner.tasks_tuned via_sched.Graph_tuner.tasks_tuned;
  Alcotest.(check int)
    "measurements" legacy.Graph_tuner.measurements
    via_sched.Graph_tuner.measurements;
  List.iter2
    (fun (sa, (ra : Tuner.result)) (sb, (rb : Tuner.result)) ->
      Alcotest.(check string) "task signature" sa sb;
      Alcotest.(check (float 0.0))
        "task best latency" ra.Tuner.best_latency rb.Tuner.best_latency;
      Alcotest.(check int) "task spent" ra.Tuner.spent rb.Tuner.spent;
      if ra.Tuner.history <> rb.Tuner.history then
        Alcotest.failf "task %s: history differs" sa)
    legacy.Graph_tuner.per_task via_sched.Graph_tuner.per_task

(* --- Tuner.Step: stepping to completion == calling the tuner directly --- *)

let step_task () =
  Measure.make_task ~machine:Machine.intel_cpu ~max_points:2_000
    (Ops.gmm ~name:"gmm" ~a:"A" ~b:"B" ~out:"C" ~m:8 ~k:8 ~n:8 ())

let test_step_equals_direct () =
  let direct =
    Tuner.tune_alt ~seed:0 ~joint_budget:12 ~loop_budget:20 (step_task ())
  in
  let fiber =
    Tuner.Step.start (fun ~stop ~on_progress ->
        Tuner.tune_alt ~seed:0 ~stop ~on_progress ~joint_budget:12
          ~loop_budget:20 (step_task ()))
  in
  let rec drive n =
    if n > 10_000 then Alcotest.fail "fiber did not finish";
    match Tuner.Step.step fiber with
    | Tuner.Step.Done r -> r
    | Tuner.Step.Running _ -> drive (n + 1)
  in
  let stepped = drive 0 in
  Alcotest.(check (float 0.0))
    "best latency" direct.Tuner.best_latency stepped.Tuner.best_latency;
  Alcotest.(check int) "spent" direct.Tuner.spent stepped.Tuner.spent;
  if direct.Tuner.history <> stepped.Tuner.history then
    Alcotest.fail "history differs";
  Alcotest.(check bool) "finished" true (Tuner.Step.finished fiber);
  (* finish is idempotent on a done fiber *)
  let again = Tuner.Step.finish fiber in
  Alcotest.(check (float 0.0))
    "finish after done" stepped.Tuner.best_latency again.Tuner.best_latency

let test_step_early_finish () =
  let fiber =
    Tuner.Step.start (fun ~stop ~on_progress ->
        Tuner.tune_alt ~seed:0 ~stop ~on_progress ~joint_budget:12
          ~loop_budget:20 (step_task ()))
  in
  (match Tuner.Step.step fiber with
  | Tuner.Step.Done _ -> Alcotest.fail "finished after one round"
  | Tuner.Step.Running p ->
      Alcotest.(check bool) "one round" true (p.Tuner.rounds >= 1));
  let r = Tuner.Step.finish fiber in
  Alcotest.(check bool)
    "early result measured something" true
    (Float.is_finite r.Tuner.best_latency);
  Alcotest.(check bool) "finished" true (Tuner.Step.finished fiber);
  let p = Tuner.Step.progress fiber in
  Alcotest.(check bool)
    "progress tracks result" true
    (p.Tuner.best_latency >= r.Tuner.best_latency)

(* --- the perf property: gradient + transfer >= static at equal budget --- *)

let e2e_latency tuned =
  List.fold_left
    (fun acc (_, tg) ->
      let r = Graph_tuner.run ~max_points:2_000 tg ~machine:Machine.intel_cpu in
      acc +. r.Alt_graph.Compile.latency_ms)
    0.0 tuned

let test_gradient_beats_static () =
  let budget = 96 in
  let rs, static = tune ~policy:Scheduler.Static ~budget (zoo ()) in
  let rg, gradient = tune ~policy:Scheduler.Gradient ~budget (zoo ()) in
  Alcotest.(check bool) "transfer on under gradient" true rg.Scheduler.transfer;
  Alcotest.(check bool) "transfer off under static" false rs.Scheduler.transfer;
  Alcotest.(check bool)
    "gradient spends within budget" true
    (rg.Scheduler.spent <= budget);
  let ls = e2e_latency static and lg = e2e_latency gradient in
  if not (lg <= ls *. 1.0001) then
    Alcotest.failf "gradient %g ms worse than static %g ms at budget %d" lg ls
      budget;
  (* curves exist for every model and spend is non-decreasing *)
  List.iter
    (fun (m, pts) ->
      Alcotest.(check bool) (m ^ ": has curve points") true (pts <> []);
      let rec mono = function
        | (s0, _) :: ((s1, _) :: _ as tl) ->
            if s0 > s1 then Alcotest.failf "%s: curve spend decreases" m;
            mono tl
        | _ -> ()
      in
      mono pts)
    rg.Scheduler.curves

(* --- QCheck2: jobs invariance over random seeds and job counts --- *)

let prop_jobs_invariant =
  QCheck2.Test.make ~count:3 ~name:"scheduler trajectory independent of jobs"
    QCheck2.Gen.(pair (int_range 0 3) (int_range 2 4))
    (fun (seed, jobs) ->
      let budget = 48 in
      let go jobs =
        Graph_tuner.tune_models ~seed ~jobs ~max_points:2_000
          ~policy:Scheduler.Gradient ~system:Graph_tuner.Galt
          ~machine:Machine.intel_cpu ~budget
          [ ("mlp", mlp_model ()); ("mixed", mixed_model ()) ]
      in
      let r1, _ = go 1 and rn, _ = go jobs in
      r1.Scheduler.picks = rn.Scheduler.picks
      && r1.Scheduler.spent = rn.Scheduler.spent
      && r1.Scheduler.curves = rn.Scheduler.curves
      && List.for_all2
           (fun a b -> task_key a = task_key b)
           r1.Scheduler.tasks rn.Scheduler.tasks)

let () =
  Alcotest.run "scheduler"
    [
      ( "taskset",
        [ Alcotest.test_case "cross-model dedup" `Quick test_taskset_dedup ] );
      ( "determinism",
        [
          Alcotest.test_case "gradient jobs=1 == jobs=4" `Quick
            (test_jobs_invariance Scheduler.Gradient);
          Alcotest.test_case "roundrobin jobs=1 == jobs=4" `Quick
            (test_jobs_invariance Scheduler.Roundrobin);
          QCheck_alcotest.to_alcotest prop_jobs_invariant;
        ] );
      ( "static",
        [
          Alcotest.test_case "scheduler static == legacy loop" `Quick
            test_static_equals_legacy;
        ] );
      ( "step",
        [
          Alcotest.test_case "stepping == direct call" `Quick
            test_step_equals_direct;
          Alcotest.test_case "early finish is valid" `Quick
            test_step_early_finish;
        ] );
      ( "perf",
        [
          Alcotest.test_case "gradient+transfer >= static" `Quick
            test_gradient_beats_static;
        ] );
    ]
