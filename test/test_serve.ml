(* Tests for the tuning-as-a-service daemon (DESIGN.md §13): wire
   protocol framing, the sharded cross-session store, and the serve
   engine's headline guarantees —

   - N concurrent daemon sessions produce byte-identical results to N
     solo tune-op runs (with and without faults, for every pool size);
   - results and quarantine decisions are shared across sessions within
     one measurement context and never across contexts;
   - a crash (abandoned engine) followed by recovery resumes every
     interrupted session and completes it byte-identically;
   - corrupt / version-mismatched checkpoints are parked as [.bad] and
     the session restarts fresh instead of wedging recovery;
   - overload sheds with a structured rejection and never perturbs the
     admitted sessions; deadlines park sessions resumable;
   - graceful shutdown answers everything as interrupted-but-resumable
     and a restarted engine finishes the work. *)

module Ops = Alt_graph.Ops
module Machine = Alt_machine.Machine
module Templates = Alt_tuner.Templates
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Schedule = Alt_ir.Schedule
module Pool = Alt_parallel.Pool
module Json = Alt_obs.Json
module Workload = Alt_serve.Workload
module Proto = Alt_serve.Proto
module Store = Alt_serve.Store
module Serve = Alt_serve.Serve
module Daemon = Alt_serve.Daemon

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let gmm_op =
  { Workload.default_op with kind = "gmm"; spatial = 8; channels = 8;
    out_channels = 8 }

let c2d_op =
  { Workload.default_op with kind = "c2d"; spatial = 6; channels = 4;
    out_channels = 8 }

let spec ?(op = gmm_op) ?(system = "alt") ?(budget = 12) ?(seed = 0)
    ?(fault_rate = 0.0) ?(fault_seed = 0) () =
  {
    Workload.default_tune_spec with
    Workload.op;
    system;
    budget;
    seed;
    fault_rate;
    fault_seed;
    max_points = 2_000;
  }

(* the reference: the same spec tuned solo, straight through the tuner *)
let solo_json (s : Workload.tune_spec) =
  let task = Workload.task_of_spec s in
  let r =
    Tuner.tune_op ~seed:s.Workload.seed
      ~system:(Workload.system_of_spec s)
      ~budget:s.Workload.budget task
  in
  Json.to_string (Serve.json_of_tuner_result r)

let drive engine =
  let acc = ref [] in
  while Serve.has_work engine do
    acc := !acc @ Serve.step engine
  done;
  !acc

let tune ~id s = Proto.Tune { id; spec = s; deadline_rounds = None }

let response_of responses id =
  match List.assoc_opt id responses with
  | Some j -> j
  | None -> Alcotest.failf "no response for id %S" id

let status_of j =
  match Option.bind (Json.member "status" j) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "response without status: %s" (Json.to_string j)

let ok_result j =
  if status_of j <> "ok" then
    Alcotest.failf "expected ok, got %s" (Json.to_string j);
  match Json.member "result" j with
  | Some r -> Json.to_string r
  | None -> Alcotest.failf "ok response without result: %s" (Json.to_string j)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let path = Filename.temp_file "altserve" ".d" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf path with _ -> ()) (fun () -> f path)

let journal_files dir suffix =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f suffix)

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let test_framing_roundtrip () =
  Alcotest.(check string) "frame shape" "5\nhello\n" (Proto.frame "hello");
  (* byte-at-a-time feeding must reassemble both frames *)
  let d = Proto.Frames.create () in
  let wire = Proto.frame "hello" ^ Proto.frame "" ^ Proto.frame "x\ny" in
  String.iter (fun c -> Proto.Frames.feed d (String.make 1 c)) wire;
  let pull () =
    match Proto.Frames.next d with
    | Ok (Some p) -> p
    | Ok None -> Alcotest.fail "expected a complete frame"
    | Error e -> Alcotest.failf "unexpected framing error: %s" e
  in
  Alcotest.(check string) "first" "hello" (pull ());
  Alcotest.(check string) "empty payload" "" (pull ());
  Alcotest.(check string) "embedded newline survives" "x\ny" (pull ());
  Alcotest.(check bool) "drained" true (Proto.Frames.next d = Ok None);
  (match Proto.frame (String.make (Proto.max_frame + 1) 'x') with
  | _ -> Alcotest.fail "oversize frame accepted"
  | exception Invalid_argument _ -> ())

let test_framing_strict () =
  let feed s =
    let d = Proto.Frames.create () in
    Proto.Frames.feed d s;
    Proto.Frames.next d
  in
  let expect_error what s =
    match feed s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" what
  in
  expect_error "non-numeric prefix" "abc\nxyz\n";
  expect_error "negative length" "-1\n\n";
  expect_error "oversize length" (string_of_int (Proto.max_frame + 1) ^ "\n");
  expect_error "missing trailing newline" "3\nabcX";
  (* an incomplete frame is not an error — just more bytes needed *)
  Alcotest.(check bool) "incomplete = Ok None" true (feed "10\nabc" = Ok None)

let test_request_roundtrip () =
  let reqs =
    [
      Proto.Tune { id = "t"; spec = spec (); deadline_rounds = None };
      Proto.Tune
        { id = "t2"; spec = spec ~op:c2d_op ~fault_rate:0.3 ();
          deadline_rounds = Some 3 };
      Proto.Compile
        { id = "c"; op = gmm_op; machine = "intel-cpu"; preset = "alt" };
      Proto.Stats { id = "s" };
      Proto.Shutdown { id = "k" };
    ]
  in
  List.iter
    (fun r ->
      match Proto.parse_request (Json.to_string (Proto.request_to_json r)) with
      | Ok r' ->
          Alcotest.(check bool)
            ("roundtrip " ^ Proto.request_id r)
            true (r = r')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    reqs;
  let bad s =
    match Proto.parse_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "not json";
  bad {|{"kind":"frobnicate","id":"x"}|};
  bad {|{"kind":"tune","id":"x","spec":{"machine":"no-such-machine"}}|};
  bad {|{"kind":"tune","id":"x","spec":{},"deadline_rounds":0}|}

(* ------------------------------------------------------------------ *)
(* Store                                                              *)
(* ------------------------------------------------------------------ *)

let some_result () =
  let op = Workload.op_of_spec gmm_op in
  let task = Measure.make_task ~machine:Machine.intel_cpu ~max_points:2_000 op in
  let choice = Templates.trivial_choice op in
  let sched = Schedule.default ~rank:2 ~nred:1 in
  match Measure.measure task choice sched with
  | Measure.Ok r -> r
  | o -> Alcotest.failf "fixed candidate did not measure: %a" Measure.pp_outcome o

let test_store_isolation_and_first_writer () =
  let st = Store.create ~shards:4 () in
  let r = some_result () in
  Store.publish_result st ~ctx:"ctxA" "k1" r;
  Alcotest.(check bool)
    "hit in the same context" true
    (Store.find_result st ~ctx:"ctxA" "k1" = Some r);
  Alcotest.(check bool)
    "other context is blind" true
    (Store.find_result st ~ctx:"ctxB" "k1" = None);
  (* first writer wins: a second publish never replaces *)
  let r2 = { r with Alt_machine.Profiler.latency_ms = r.latency_ms +. 1.0 } in
  Store.publish_result st ~ctx:"ctxA" "k1" r2;
  Alcotest.(check bool)
    "first writer wins" true
    (Store.find_result st ~ctx:"ctxA" "k1" = Some r);
  Store.publish_quarantine st ~ctx:"ctxA" "k2" "crash";
  Store.publish_quarantine st ~ctx:"ctxA" "k2" "timeout";
  Alcotest.(check (option string))
    "quarantine first writer wins" (Some "crash")
    (Store.find_quarantine st ~ctx:"ctxA" "k2");
  Alcotest.(check (option string))
    "quarantine is context-scoped" None
    (Store.find_quarantine st ~ctx:"ctxB" "k2");
  let s = Store.stats st in
  Alcotest.(check int) "result inserts" 1 s.Store.result_inserts;
  Alcotest.(check int) "quarantine inserts" 1 s.Store.quarantine_inserts;
  Alcotest.(check bool) "hits counted" true (s.Store.result_hits >= 2);
  Alcotest.(check (pair int int)) "sizes" (1, 1) (Store.sizes st);
  (match Store.create ~shards:0 () with
  | _ -> Alcotest.fail "accepted 0 shards"
  | exception Invalid_argument _ -> ())

let test_context_keys () =
  let a = spec () in
  Alcotest.(check bool)
    "tuner seed is outside the context" true
    (Workload.context_key a = Workload.context_key { a with Workload.seed = 9 });
  Alcotest.(check bool)
    "system is outside the context" true
    (Workload.context_key a
    = Workload.context_key { a with Workload.system = "ansor" });
  Alcotest.(check bool)
    "fault seed is inside the context" false
    (Workload.context_key a
    = Workload.context_key { a with Workload.fault_seed = 9 });
  Alcotest.(check bool)
    "session key covers the tuner seed" false
    (Workload.session_key a = Workload.session_key { a with Workload.seed = 9 })

(* ------------------------------------------------------------------ *)
(* Engine: differential vs solo runs                                  *)
(* ------------------------------------------------------------------ *)

let test_concurrent_equals_solo () =
  let specs =
    [
      ("r0", spec ());
      ("r1", spec ~op:c2d_op ~seed:1 ());
      ("r2", spec ~budget:8 ~seed:5 ());
    ]
  in
  let engine =
    Serve.create (Serve.default_config ~jobs:1 ~max_active:2 ~max_queue:8 ())
  in
  List.iter
    (fun (id, s) ->
      Alcotest.(check int)
        "admission is silent" 0
        (List.length (Serve.submit engine (tune ~id s))))
    specs;
  let responses = drive engine in
  List.iter
    (fun (id, s) ->
      Alcotest.(check string)
        ("daemon = solo for " ^ id)
        (solo_json s)
        (ok_result (response_of responses id)))
    specs;
  Alcotest.(check int) "all sessions completed" 3
    (Serve.completed_count engine)

let test_duplicate_submit_attaches () =
  let engine = Serve.create (Serve.default_config ()) in
  let s = spec () in
  ignore (Serve.submit engine (tune ~id:"d0" s));
  ignore (Serve.submit engine (tune ~id:"d1" s));
  let responses = drive engine in
  Alcotest.(check int) "one session ran" 1 (Serve.completed_count engine);
  let a = ok_result (response_of responses "d0") in
  let b = ok_result (response_of responses "d1") in
  Alcotest.(check string) "both ids get the one result" a b;
  Alcotest.(check string) "and it is the solo result" (solo_json s) a

let test_result_sharing_within_context () =
  (* same measurement context, different tuner seeds: overlapping
     candidates are measured once and served to the other session *)
  let cfg = Serve.default_config ~max_active:2 () in
  let engine = Serve.create cfg in
  let a = spec ~seed:0 () and b = spec ~seed:1 () in
  ignore (Serve.submit engine (tune ~id:"a" a));
  ignore (Serve.submit engine (tune ~id:"b" b));
  let responses = drive engine in
  Alcotest.(check string) "a = solo a" (solo_json a)
    (ok_result (response_of responses "a"));
  Alcotest.(check string) "b = solo b" (solo_json b)
    (ok_result (response_of responses "b"));
  let st = Store.stats cfg.Serve.store in
  Alcotest.(check bool) "results were shared" true (st.Store.result_hits > 0)

let test_quarantine_sharing_within_context () =
  (* 100% fault rate: overlapping candidates quarantined by whichever
     session gets there first are answered from the store for the other
     — and both trajectories still equal their solo runs *)
  let cfg = Serve.default_config ~max_active:2 () in
  let engine = Serve.create cfg in
  let a = spec ~fault_rate:1.0 ~budget:10 () in
  let b = { a with Workload.budget = 14 } in
  ignore (Serve.submit engine (tune ~id:"a" a));
  ignore (Serve.submit engine (tune ~id:"b" b));
  let responses = drive engine in
  Alcotest.(check string) "a = solo a" (solo_json a)
    (ok_result (response_of responses "a"));
  Alcotest.(check string) "b = solo b" (solo_json b)
    (ok_result (response_of responses "b"));
  let st = Store.stats cfg.Serve.store in
  Alcotest.(check bool) "quarantine was populated" true
    (st.Store.quarantine_inserts > 0);
  Alcotest.(check bool) "quarantine was shared" true
    (st.Store.quarantine_hits > 0)

let prop_daemon_differential =
  QCheck2.Test.make ~count:5
    ~name:"daemon sessions = solo runs (jobs 1 = jobs 4, faults on/off)"
    QCheck2.Gen.(pair (int_bound 999) bool)
    (fun (seed, faulty) ->
      let rate = if faulty then 0.3 else 0.0 in
      let a = spec ~seed ~budget:10 ~fault_rate:rate ~fault_seed:seed () in
      let b =
        spec ~op:c2d_op ~seed:(seed + 1) ~budget:10 ~fault_rate:rate
          ~fault_seed:seed ()
      in
      let run jobs =
        let engine = Serve.create (Serve.default_config ~jobs ~max_active:2 ()) in
        ignore (Serve.submit engine (tune ~id:"a" a));
        ignore (Serve.submit engine (tune ~id:"b" b));
        let responses = drive engine in
        ( ok_result (response_of responses "a"),
          ok_result (response_of responses "b") )
      in
      let r1 = run 1 and r4 = run 4 in
      r1 = r4 && r1 = (solo_json a, solo_json b))

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                     *)
(* ------------------------------------------------------------------ *)

(* Admit two sessions, run the engine for [steps] rounds, then abandon
   it — the moral equivalent of SIGKILL: no drain, no cleanup, only the
   journals survive. *)
let crashed_journal dir ~steps specs =
  let engine =
    Serve.create
      (Serve.default_config ~max_active:2 ~journal_dir:dir ())
  in
  List.iter (fun (id, s) -> ignore (Serve.submit engine (tune ~id s))) specs;
  for _ = 1 to steps do
    ignore (Serve.step engine : (string * Json.t) list)
  done

let test_crash_recovery_byte_identical () =
  with_tmpdir @@ fun dir ->
  let specs = [ ("a", spec ~budget:16 ()); ("b", spec ~op:c2d_op ~budget:16 ()) ] in
  crashed_journal dir ~steps:3 specs;
  Alcotest.(check int) "both request journals survive" 2
    (List.length (journal_files dir ".req.json"));
  let engine =
    Serve.create (Serve.default_config ~max_active:2 ~journal_dir:dir ())
  in
  Alcotest.(check int) "both sessions recovered" 2 (Serve.recover engine);
  let responses = drive engine in
  List.iter
    (fun (id, s) ->
      Alcotest.(check string)
        ("recovered " ^ id ^ " = solo")
        (solo_json s)
        (ok_result (response_of responses id)))
    specs;
  Alcotest.(check int) "journals cleaned after completion" 0
    (List.length (journal_files dir ".req.json")
    + List.length (journal_files dir ".ckpt"))

let corrupt_then_recover ~corrupt () =
  with_tmpdir @@ fun dir ->
  let s = spec ~budget:16 () in
  crashed_journal dir ~steps:2 [ ("a", s) ];
  (match journal_files dir ".ckpt" with
  | [ f ] -> corrupt (Filename.concat dir f)
  | l -> Alcotest.failf "expected one checkpoint, found %d" (List.length l));
  let engine = Serve.create (Serve.default_config ~journal_dir:dir ()) in
  Alcotest.(check int) "session recovered" 1 (Serve.recover engine);
  let responses = drive engine in
  Alcotest.(check string) "fresh rerun = solo" (solo_json s)
    (ok_result (response_of responses "a"));
  Alcotest.(check int) "bad checkpoint parked" 1
    (List.length (journal_files dir ".ckpt.bad"))

let test_truncated_checkpoint_recovers () =
  corrupt_then_recover () ~corrupt:(fun path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let half = really_input_string ic (n / 2) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc half;
      close_out oc)

let test_version_mismatch_recovers () =
  corrupt_then_recover () ~corrupt:(fun path ->
      let oc = open_out_bin path in
      output_string oc "ALTCKPT\001";
      Marshal.to_channel oc (999 : int) [];
      Marshal.to_channel oc "stale payload" [];
      close_out oc)

(* ------------------------------------------------------------------ *)
(* Admission control and deadlines                                    *)
(* ------------------------------------------------------------------ *)

let test_overload_sheds_structurally () =
  let engine =
    Serve.create (Serve.default_config ~max_active:1 ~max_queue:1 ())
  in
  let specs =
    List.init 4 (fun i -> (Fmt.str "o%d" i, spec ~seed:(100 + i) ~budget:8 ()))
  in
  let immediate =
    List.concat_map (fun (id, s) -> Serve.submit engine (tune ~id s)) specs
  in
  Alcotest.(check int) "two requests shed" 2 (List.length immediate);
  Alcotest.(check int) "shed counter" 2 (Serve.shed_count engine);
  List.iter
    (fun (_, j) ->
      Alcotest.(check string) "status" "rejected" (status_of j);
      Alcotest.(check (option string))
        "reason" (Some "overloaded")
        (Option.bind (Json.member "reason" j) Json.to_string_opt);
      match Option.bind (Json.member "retry_after_ms" j) Json.to_int_opt with
      | Some ms -> Alcotest.(check bool) "retry hint positive" true (ms > 0)
      | None -> Alcotest.fail "rejection without retry_after_ms")
    immediate;
  (* the admitted two complete unperturbed by the shedding *)
  let responses = drive engine in
  List.iteri
    (fun i (id, s) ->
      if i < 2 then
        Alcotest.(check string)
          ("admitted " ^ id ^ " = solo")
          (solo_json s)
          (ok_result (response_of responses id)))
    specs;
  Alcotest.(check int) "two completed" 2 (Serve.completed_count engine)

let test_deadline_parks_resumable () =
  with_tmpdir @@ fun dir ->
  let engine = Serve.create (Serve.default_config ~journal_dir:dir ()) in
  let s = spec ~budget:16 () in
  ignore
    (Serve.submit engine
       (Proto.Tune { id = "d"; spec = s; deadline_rounds = Some 1 }));
  let responses = drive engine in
  let j = response_of responses "d" in
  Alcotest.(check string) "deadline status" "deadline" (status_of j);
  Alcotest.(check (option bool))
    "resumable" (Some true)
    (Option.bind (Json.member "resumable" j) (function
      | Json.Bool b -> Some b
      | _ -> None));
  Alcotest.(check int) "nothing completed" 0 (Serve.completed_count engine);
  Alcotest.(check int) "checkpoint kept" 1
    (List.length (journal_files dir ".ckpt"));
  Alcotest.(check int) "request journal dropped" 0
    (List.length (journal_files dir ".req.json"));
  (* resubmission resumes from the checkpoint and matches an
     uninterrupted solo run byte-for-byte *)
  ignore (Serve.submit engine (tune ~id:"d2" s));
  let responses = drive engine in
  Alcotest.(check string) "resumed = solo" (solo_json s)
    (ok_result (response_of responses "d2"))

let test_graceful_shutdown_and_restart () =
  with_tmpdir @@ fun dir ->
  let cfg = Serve.default_config ~max_active:2 ~journal_dir:dir () in
  let engine = Serve.create cfg in
  let specs = [ ("a", spec ~budget:16 ()); ("b", spec ~op:c2d_op ~budget:16 ()) ] in
  List.iter (fun (id, s) -> ignore (Serve.submit engine (tune ~id s))) specs;
  ignore (Serve.step engine : (string * Json.t) list);
  let responses = Serve.shutdown engine in
  List.iter
    (fun (id, _) ->
      let j = response_of responses id in
      Alcotest.(check string) (id ^ " interrupted") "interrupted" (status_of j))
    specs;
  Alcotest.(check bool) "pool closed" true (Pool.is_closed cfg.Serve.pool);
  Alcotest.(check bool) "engine idle" false (Serve.has_work engine);
  Alcotest.(check int) "journals survive shutdown" 2
    (List.length (journal_files dir ".req.json"));
  (* a restarted engine picks the sessions up and finishes them *)
  let engine = Serve.create (Serve.default_config ~max_active:2 ~journal_dir:dir ()) in
  Alcotest.(check int) "recovered" 2 (Serve.recover engine);
  let responses = drive engine in
  List.iter
    (fun (id, s) ->
      Alcotest.(check string)
        ("after restart " ^ id ^ " = solo")
        (solo_json s)
        (ok_result (response_of responses id)))
    specs

(* ------------------------------------------------------------------ *)
(* Pipe-mode daemon over real fds                                     *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_frames bytes =
  let d = Proto.Frames.create () in
  Proto.Frames.feed d bytes;
  let rec go acc =
    match Proto.Frames.next d with
    | Ok (Some p) -> (
        match Json.parse p with
        | Ok j -> go (j :: acc)
        | Error e -> Alcotest.failf "daemon emitted bad JSON: %s" e)
    | Ok None -> List.rev acc
    | Error e -> Alcotest.failf "daemon emitted a bad frame: %s" e
  in
  go []

let run_pipe_on_file ~requests =
  with_tmpdir @@ fun dir ->
  let in_path = Filename.concat dir "in.bin" in
  let out_path = Filename.concat dir "out.bin" in
  let oc = open_out_bin in_path in
  List.iter
    (fun r -> output_string oc (Proto.frame_json (Proto.request_to_json r)))
    requests;
  close_out oc;
  let input = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
  let output =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let engine = Serve.create (Serve.default_config ~max_active:2 ()) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close input;
      Unix.close output)
    (fun () -> Daemon.run_pipe ~input ~output engine);
  parse_frames (read_file out_path)

let test_pipe_daemon_end_to_end () =
  let s = spec () in
  let frames =
    run_pipe_on_file
      ~requests:
        [
          Proto.Stats { id = "s" };
          tune ~id:"t" s;
          Proto.Compile
            { id = "c"; op = gmm_op; machine = "intel-cpu"; preset = "alt" };
        ]
  in
  let by_id id =
    match
      List.find_opt
        (fun j ->
          Option.bind (Json.member "id" j) Json.to_string_opt = Some id)
        frames
    with
    | Some j -> j
    | None -> Alcotest.failf "no frame for id %S" id
  in
  Alcotest.(check string) "stats ok" "ok" (status_of (by_id "s"));
  Alcotest.(check string) "compile ok" "ok" (status_of (by_id "c"));
  Alcotest.(check bool) "compile has program" true
    (Json.member "program" (by_id "c") <> None);
  Alcotest.(check string) "tune = solo over the pipe" (solo_json s)
    (ok_result (by_id "t"))

let test_pipe_daemon_rejects_bad_stream () =
  with_tmpdir @@ fun dir ->
  let in_path = Filename.concat dir "in.bin" in
  let out_path = Filename.concat dir "out.bin" in
  let oc = open_out_bin in_path in
  output_string oc "this is not a frame\n";
  close_out oc;
  let input = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
  let output =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let engine = Serve.create (Serve.default_config ()) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close input;
      Unix.close output)
    (fun () -> Daemon.run_pipe ~input ~output engine);
  match parse_frames (read_file out_path) with
  | [ j ] ->
      Alcotest.(check string) "structured error" "error" (status_of j)
  | l -> Alcotest.failf "expected one error frame, got %d" (List.length l)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "framing roundtrip" `Quick test_framing_roundtrip;
          Alcotest.test_case "strict framing errors" `Quick test_framing_strict;
          Alcotest.test_case "request codec roundtrip" `Quick
            test_request_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "context isolation + first writer wins" `Quick
            test_store_isolation_and_first_writer;
          Alcotest.test_case "session/context key coverage" `Quick
            test_context_keys;
        ] );
      ( "engine",
        [
          Alcotest.test_case "concurrent sessions = solo runs" `Quick
            test_concurrent_equals_solo;
          Alcotest.test_case "duplicate submit attaches" `Quick
            test_duplicate_submit_attaches;
          Alcotest.test_case "results shared within a context" `Quick
            test_result_sharing_within_context;
          Alcotest.test_case "quarantine shared within a context" `Quick
            test_quarantine_sharing_within_context;
        ] );
      qsuite "engine-props" [ prop_daemon_differential ];
      ( "recovery",
        [
          Alcotest.test_case "crash + recover = solo, byte-identical" `Quick
            test_crash_recovery_byte_identical;
          Alcotest.test_case "truncated checkpoint parked, rerun ok" `Quick
            test_truncated_checkpoint_recovers;
          Alcotest.test_case "version-mismatch checkpoint parked, rerun ok"
            `Quick test_version_mismatch_recovers;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload sheds structurally" `Quick
            test_overload_sheds_structurally;
          Alcotest.test_case "deadline parks resumable" `Quick
            test_deadline_parks_resumable;
          Alcotest.test_case "graceful shutdown + restart" `Quick
            test_graceful_shutdown_and_restart;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "pipe daemon end to end" `Quick
            test_pipe_daemon_end_to_end;
          Alcotest.test_case "pipe daemon rejects a bad stream" `Quick
            test_pipe_daemon_rejects_bad_stream;
        ] );
    ]
