(* Error-path tests: the [invalid_arg] guards that protect the operator
   constructors, the graph builder and the cache model from malformed
   inputs.  Each test pins the exact message, so a refactor that silently
   drops or reroutes a guard fails loudly here. *)

module Opdef = Alt_ir.Opdef
module Ops = Alt_graph.Ops
module Graph = Alt_graph.Graph
module Cache = Alt_machine.Cache

let check_invalid_arg name msg f =
  Alcotest.check_raises name (Invalid_argument msg) (fun () ->
      ignore (Sys.opaque_identity (f ())))

(* ------------------------------------------------------------------ *)
(* Operator constructors                                              *)
(* ------------------------------------------------------------------ *)

(* [h]/[w] are OUTPUT spatial sizes; [in_h]/[in_w] override the inferred
   input sizes, so forcing a 2x2 input under a 3x3 kernel must be
   rejected. *)
let test_c2d_input_too_small () =
  check_invalid_arg "c2d 2x2 input, 3x3 kernel" "Ops.c2d: input too small"
    (fun () ->
      Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
        ~kh:3 ~kw:3 ~in_h:2 ~in_w:2 ())

let test_dep_input_too_small () =
  check_invalid_arg "dep 2x2 input, 3x3 kernel" "Ops.dep: input too small"
    (fun () ->
      Ops.dep ~name:"d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~c:4 ~h:6 ~w:6 ~kh:3
        ~kw:3 ~in_h:2 ~in_w:2 ())

let test_grp_channels_not_divisible () =
  check_invalid_arg "grp 6 channels, 4 groups"
    "Ops.grp: channels not divisible by groups" (fun () ->
      Ops.grp ~name:"g" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:6 ~o:8 ~h:6 ~w:6
        ~kh:3 ~kw:3 ~groups:4 ())

let test_split_heads_not_divisible () =
  check_invalid_arg "split_heads 10 dims, 4 heads" "Ops.split_heads"
    (fun () ->
      Ops.split_heads ~name:"s" ~inp:"X" ~out:"Y" ~s:8 ~h:10 ~heads:4 ())

(* sanity: the guarded constructors still accept well-formed arguments *)
let test_valid_ops_accepted () =
  ignore
    (Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
       ~kh:3 ~kw:3 ()
      : Opdef.t);
  ignore
    (Ops.grp ~name:"g" ~inp:"A" ~ker:"W" ~out:"B" ~n:1 ~i:8 ~o:8 ~h:6 ~w:6
       ~kh:3 ~kw:3 ~groups:4 ()
      : Opdef.t);
  ignore
    (Ops.split_heads ~name:"s" ~inp:"P" ~out:"Q" ~s:8 ~h:12 ~heads:4 ()
      : Opdef.t)

(* ------------------------------------------------------------------ *)
(* Graph builder                                                      *)
(* ------------------------------------------------------------------ *)

let test_graph_duplicate_tensor () =
  check_invalid_arg "duplicate input name" "Graph: duplicate tensor name x"
    (fun () ->
      let b = Graph.builder () in
      ignore (Graph.input b "x" [| 4 |] : string);
      Graph.input b "x" [| 4 |])

let test_graph_unknown_output () =
  check_invalid_arg "unknown output tensor" "Graph: unknown output tensor nope"
    (fun () ->
      let b = Graph.builder () in
      ignore (Graph.input b "x" [| 4 |] : string);
      Graph.finish b ~outputs:[ "nope" ])

(* ------------------------------------------------------------------ *)
(* Cache geometry                                                     *)
(* ------------------------------------------------------------------ *)

let test_cache_bad_geometry () =
  (* 3 lines cannot be divided into 2-way sets *)
  check_invalid_arg "lines not divisible by assoc" "Cache.create: geometry"
    (fun () ->
      Cache.create { Cache.size_bytes = 3 * 64; assoc = 2; line_bytes = 64 })

let test_cache_non_pow2_line () =
  check_invalid_arg "line size not a power of two"
    "Cache.log2_exact: not a power of two" (fun () ->
      Cache.create { Cache.size_bytes = 4 * 48; assoc = 2; line_bytes = 48 })

let test_cache_non_pow2_sets () =
  (* 6 lines / 2-way = 3 sets: passes the divisibility check, fails the
     power-of-two set-index check *)
  check_invalid_arg "set count not a power of two"
    "Cache.log2_exact: not a power of two" (fun () ->
      Cache.create { Cache.size_bytes = 6 * 64; assoc = 2; line_bytes = 64 })

let () =
  Alcotest.run "alt_errors"
    [
      ( "ops",
        [
          Alcotest.test_case "c2d input too small" `Quick
            test_c2d_input_too_small;
          Alcotest.test_case "dep input too small" `Quick
            test_dep_input_too_small;
          Alcotest.test_case "grp channels/groups" `Quick
            test_grp_channels_not_divisible;
          Alcotest.test_case "split_heads divisibility" `Quick
            test_split_heads_not_divisible;
          Alcotest.test_case "well-formed ops accepted" `Quick
            test_valid_ops_accepted;
        ] );
      ( "graph",
        [
          Alcotest.test_case "duplicate tensor rejected" `Quick
            test_graph_duplicate_tensor;
          Alcotest.test_case "unknown output rejected" `Quick
            test_graph_unknown_output;
        ] );
      ( "cache",
        [
          Alcotest.test_case "bad geometry rejected" `Quick
            test_cache_bad_geometry;
          Alcotest.test_case "non-pow2 line rejected" `Quick
            test_cache_non_pow2_line;
          Alcotest.test_case "non-pow2 sets rejected" `Quick
            test_cache_non_pow2_sets;
        ] );
    ]
