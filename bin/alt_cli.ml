(* alt_cli — command-line front end for the ALT compiler.

   Subcommands:
     tune-op     tune a single operator with a chosen system
     tune-model  tune and run an end-to-end model
     show-op     print the lowered program for an operator + layout preset

   Examples:
     dune exec bin/alt_cli.exe -- tune-op --op c2d --channels 32 --out-channels 64 \
         --spatial 28 --machine intel-cpu --system alt --budget 128
     dune exec bin/alt_cli.exe -- tune-model --model mv2 --system ansor
     dune exec bin/alt_cli.exe -- show-op --op gmm --spatial 64 --layout blocked *)

open Alt
open Cmdliner

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info)

(* ------------------------------------------------------------------ *)
(* Common arguments                                                   *)
(* ------------------------------------------------------------------ *)

let machine_arg =
  let machines = List.map (fun m -> (m.Machine.name, m)) Machine.all in
  Arg.(
    value
    & opt (enum machines) Machine.intel_cpu
    & info [ "machine" ] ~docv:"NAME"
        ~doc:"Machine model: intel-cpu, nvidia-gpu or arm-cpu.")

let budget_arg =
  Arg.(
    value & opt int 128
    & info [ "budget" ] ~docv:"N" ~doc:"Measurement budget (simulated runs).")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains used for concurrent measurements (0 = all cores).  The \
           tuning result is identical for every value; only wall-clock time \
           changes.")

let resolve_jobs jobs = if jobs <= 0 then Pool.default_jobs () else jobs

let fault_rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Probability in [0,1] that a measurement is hit by an injected \
           fault (crash, timeout, transient flake or persistent failure).  \
           Deterministic per candidate: the fault pattern is a pure \
           function of --fault-seed, independent of --jobs, retries and \
           resume.")

let fault_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Seed of the deterministic fault injector.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra simulation attempts after a failed measurement before the \
           candidate is quarantined.")

let watchdog_arg =
  Arg.(
    value & opt (some int) None
    & info [ "watchdog" ] ~docv:"POINTS"
        ~doc:
          "Watchdog cap on a candidate's iteration points: candidates \
           above it report a timeout instead of simulating (off by \
           default).")

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Journal the tuning state to $(docv) after every measurement \
           round (atomic write).")

let resume_arg =
  Arg.(
    value & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from the checkpoint at $(docv): replays the interrupted \
           trajectory from the warmed measurement cache, byte-identically, \
           then continues.  A missing file starts fresh, so the same path \
           can be passed to --checkpoint and --resume across restarts.")

let faults_of ~rate ~seed =
  if rate > 0.0 then Fault.create ~seed ~rate () else Fault.none

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured JSONL trace of the run (spans and per-round \
           tuner telemetry) to $(docv).  Off by default; the ALT_TRACE \
           environment variable is an equivalent knob.  Tracing is \
           trajectory-neutral: the tuning result is bit-identical with it \
           on or off.")

let metrics_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable metrics collection and write the final registry snapshot \
           as JSON to $(docv) at exit.  Off by default; the ALT_METRICS \
           environment variable is an equivalent knob.  Collection is \
           trajectory-neutral.")

(* Install the observability sinks: explicit flags win, otherwise the
   ALT_TRACE / ALT_METRICS environment knobs apply. *)
let setup_obs ~trace ~metrics =
  (match trace with
  | Some path -> Trace.configure ~path
  | None -> Trace.configure_from_env ());
  match metrics with
  | Some path -> Metrics.set_output path
  | None -> Metrics.configure_from_env ()

let fast_arg =
  Arg.(
    value
    & opt bool (Profiler.fast_sim_enabled ())
    & info [ "fast-sim" ] ~docv:"BOOL"
        ~doc:
          "Use the profiler's line-granular fast simulation engine \
           (counters are identical to the scalar interpreter either way). \
           Defaults to true unless ALT_FAST_SIM=0 is set.")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("exec", `Exec) ]) `Sim
    & info [ "backend" ] ~docv:"DEV"
        ~doc:
          "Measurement device: 'sim' (the cache simulator, default) or \
           'exec' (compile each candidate to macro-kernels and time real \
           execution with warmup/repeat/median discipline).")

let exec_warmup_arg =
  Arg.(
    value & opt int 2
    & info [ "exec-warmup" ] ~docv:"N"
        ~doc:"Untimed warmup runs per exec-backend measurement.")

let exec_repeats_arg =
  Arg.(
    value & opt int 5
    & info [ "exec-repeats" ] ~docv:"N"
        ~doc:
          "Timed runs per exec-backend measurement; the median is the \
           reported latency.")

let exec_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "exec-domains" ] ~docv:"N"
        ~doc:
          "Domains each exec-backend kernel runs its leading parallel loops \
           across (0 = all cores; default 1 = serial, today's behavior).  \
           Outputs are bit-identical for every value; kernels whose \
           schedules cannot be proven write-disjoint fall back to serial \
           and are counted in exec.parallel.fallbacks.  Composes with \
           --jobs: each concurrently measured candidate uses the shared \
           domain team in turn.")

let backend_of sel ~warmup ~repeats ~domains =
  let domains = if domains <= 0 then Pool.default_jobs () else domains in
  match sel with
  | `Sim -> Runtime.Sim
  | `Exec -> Runtime.Exec { Exec.warmup; repeats; clock = Exec.Wall; domains }

let warm_start_arg =
  Arg.(
    value & flag
    & info [ "warm-start-model" ]
        ~doc:
          "Keep the GBDT cost model's trees across measurement batches and \
           boost a few new trees on the grown dataset instead of refitting \
           from scratch.  Faster fits, but the model (and therefore the \
           tuning trajectory) differs from a from-scratch fit, so this is \
           off by default.")

let op_kind_arg =
  Arg.(
    value & opt string "c2d"
    & info [ "op" ] ~docv:"KIND"
        ~doc:"Operator: c2d, grp, dep, dil, c1d, c3d, gmm, t2d.")

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Batch size.")

let channels_arg =
  Arg.(
    value & opt int 16
    & info [ "channels" ] ~docv:"N" ~doc:"Input channels (or GMM K).")

let out_channels_arg =
  Arg.(
    value & opt int 32
    & info [ "out-channels" ] ~docv:"N" ~doc:"Output channels (or GMM N).")

let spatial_arg =
  Arg.(
    value & opt int 14
    & info [ "spatial" ] ~docv:"N" ~doc:"Spatial size (or GMM M).")

let kernel_arg =
  Arg.(value & opt int 3 & info [ "kernel" ] ~docv:"N" ~doc:"Kernel size.")

let stride_arg =
  Arg.(value & opt int 1 & info [ "stride" ] ~docv:"N" ~doc:"Stride.")

(* One definition of the CLI operator space: the serve workload spec is
   the wire-level twin of these flags, so the construction lives there. *)
let op_spec_of kind ~batch ~channels ~out_channels ~spatial ~kernel ~stride =
  { Workload.kind; batch; channels; out_channels; spatial; kernel; stride }

let make_op kind ~batch ~channels ~out_channels ~spatial ~kernel ~stride =
  Workload.op_of_spec
    (op_spec_of kind ~batch ~channels ~out_channels ~spatial ~kernel ~stride)

(* ------------------------------------------------------------------ *)
(* tune-op                                                            *)
(* ------------------------------------------------------------------ *)

let system_arg =
  let all =
    [
      ("vendor", Tuner.Vendor); ("autotvm", Tuner.Autotvm_like);
      ("flextensor", Tuner.Flextensor_like); ("ansor", Tuner.Ansor_like);
      ("alt", Tuner.Alt); ("alt-ol", Tuner.Alt_ol);
    ]
  in
  Arg.(
    value
    & opt (enum all) Tuner.Alt
    & info [ "system" ] ~docv:"SYS"
        ~doc:"Tuner: vendor, autotvm, flextensor, ansor, alt, alt-ol.")

let tune_op_cmd =
  let run machine budget seed jobs kind batch channels out_channels spatial
      kernel stride system fault_rate fault_seed retries watchdog checkpoint
      resume fast backend_sel exec_warmup exec_repeats exec_domains
      warm_start trace metrics =
    setup_logs ();
    setup_obs ~trace ~metrics;
    let jobs = resolve_jobs jobs in
    let op =
      make_op kind ~batch ~channels ~out_channels ~spatial ~kernel ~stride
    in
    let faults = faults_of ~rate:fault_rate ~seed:fault_seed in
    let backend =
      backend_of backend_sel ~warmup:exec_warmup ~repeats:exec_repeats
        ~domains:exec_domains
    in
    let task =
      Measure.make_task ~machine ~faults ~retries ?watchdog_points:watchdog
        ~fast ~backend op
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Tuner.tune_op ~seed ~jobs ~warm_start ?checkpoint ?resume ~system
        ~budget task
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    (* the summary below prints from the metrics registry: the task's
       stats structs are published once (unconditionally), so the output
       is byte-identical to the struct-printing code it replaced, with or
       without --metrics *)
    Measure.publish_obs task;
    let c name = Metrics.counter_value (Metrics.counter name) in
    let g name =
      match Metrics.gauge_value (Metrics.gauge name) with
      | Some v -> v
      | None -> 0.0
    in
    Fmt.pr "system      : %s@." (Tuner.system_name system);
    (match backend with
    | Runtime.Sim -> ()
    | Runtime.Exec cfg ->
        (* the serial line is byte-identical to before the knob existed *)
        if cfg.Exec.domains = 1 then
          Fmt.pr "backend     : %s (wall-clock, serial device)@."
            (Runtime.backend_tag backend)
        else
          Fmt.pr "backend     : %s (wall-clock, %d domains)@."
            (Runtime.backend_tag backend) cfg.Exec.domains);
    Fmt.pr "machine     : %a@." Machine.pp machine;
    Fmt.pr "jobs        : %d (%.2fs wall; cache %d hits / %d misses)@." jobs
      elapsed
      (c "measure.cache.hits")
      (c "measure.cache.misses");
    Fmt.pr
      "search cache: lowering %d hits / %d misses, features %d hits / %d \
       misses@."
      (c "measure.lower.prog_hits")
      (c "measure.lower.prog_misses")
      (c "measure.lower.feat_hits")
      (c "measure.lower.feat_misses");
    (if Fault.active faults || watchdog <> None then
       Fmt.pr
         "faults      : %d faulted, %d retries (%.0f ms backoff), %d \
          recovered, %d quarantined@."
         (c "measure.faults.faulted")
         (c "measure.faults.retried")
         (g "measure.faults.backoff_ms")
         (c "measure.faults.recovered")
         (c "measure.faults.quarantined"));
    Fmt.pr "best latency: %.5f ms (after %d measurements)@." r.Tuner.best_latency
      r.Tuner.spent;
    Fmt.pr "out layout  : %a@." Layout.pp r.Tuner.best_choice.Propagate.out_layout;
    List.iter
      (fun (n, l) -> Fmt.pr "%-4s layout : %a@." n Layout.pp l)
      r.Tuner.best_choice.Propagate.in_layouts;
    Fmt.pr "schedule    : %a@." Schedule.pp r.Tuner.best_schedule;
    (* a tuning run must end with a usable result even under injected
       faults: a finite best latency and a best candidate that lowers *)
    if not (Float.is_finite r.Tuner.best_latency) then begin
      Fmt.epr "error: no finite-latency candidate was measured@.";
      exit 1
    end;
    match Measure.program_of task r.Tuner.best_choice r.Tuner.best_schedule with
    | Some _ -> ()
    | None ->
        Fmt.epr "error: best schedule does not lower@.";
        exit 1
  in
  Cmd.v (Cmd.info "tune-op" ~doc:"Tune a single operator.")
    Term.(
      const run $ machine_arg $ budget_arg $ seed_arg $ jobs_arg $ op_kind_arg
      $ batch_arg $ channels_arg $ out_channels_arg $ spatial_arg $ kernel_arg
      $ stride_arg $ system_arg $ fault_rate_arg $ fault_seed_arg
      $ retries_arg $ watchdog_arg $ checkpoint_arg $ resume_arg $ fast_arg
      $ backend_arg $ exec_warmup_arg $ exec_repeats_arg $ exec_domains_arg
      $ warm_start_arg $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* tune-model                                                         *)
(* ------------------------------------------------------------------ *)

let model_arg =
  Arg.(
    value & opt string "r18"
    & info [ "model" ] ~docv:"NAME" ~doc:"Model: r18, mv2, bb, bt, r3d.")

let gsystem_arg =
  let all =
    [
      ("vendor", Graph_tuner.Gvendor); ("autotvm", Graph_tuner.Gautotvm);
      ("ansor", Graph_tuner.Gansor); ("alt", Graph_tuner.Galt);
      ("alt-ol", Graph_tuner.Galt_ol); ("alt-wp", Graph_tuner.Galt_wp);
    ]
  in
  Arg.(
    value
    & opt (enum all) Graph_tuner.Galt
    & info [ "system" ] ~docv:"SYS"
        ~doc:"System: vendor, autotvm, ansor, alt, alt-ol, alt-wp.")

let zoo_spec model ~batch =
  match model with
  | "r18" -> Zoo.resnet18 ~batch ()
  | "mv2" -> Zoo.mobilenet_v2 ~batch ()
  | "bb" -> Zoo.bert_base ~batch ()
  | "bt" -> Zoo.bert_tiny ~batch ()
  | "r3d" -> Zoo.resnet3d_18 ~batch ()
  | m -> Fmt.failwith "unknown model %S" m

let policy_enum =
  [
    ("gradient", Scheduler.Gradient); ("roundrobin", Scheduler.Roundrobin);
    ("static", Scheduler.Static);
  ]

let scheduler_arg =
  Arg.(
    value
    & opt (some (enum policy_enum)) None
    & info [ "scheduler" ] ~docv:"POLICY"
        ~doc:
          "Trial allocation policy: gradient (expected-gain with \
           ε-round-robin heartbeat), roundrobin, or static (the fixed \
           per-task split).  Without it, tune-model keeps the legacy \
           sequential path.")

let tune_model_cmd =
  let run machine budget seed jobs model batch system scheduler fault_rate
      fault_seed retries fast backend_sel exec_warmup exec_repeats
      exec_domains warm_start trace metrics =
    setup_logs ();
    setup_obs ~trace ~metrics;
    let jobs = resolve_jobs jobs in
    let faults = faults_of ~rate:fault_rate ~seed:fault_seed in
    let backend =
      backend_of backend_sel ~warmup:exec_warmup ~repeats:exec_repeats
        ~domains:exec_domains
    in
    let spec = zoo_spec model ~batch in
    Fmt.pr "tuning %s with %s on %a (budget %d)...@." spec.Zoo.name
      (Graph_tuner.gsystem_name system)
      Machine.pp machine budget;
    let tg =
      Graph_tuner.tune_graph ~seed ~jobs ~faults ~retries ~fast ~backend
        ~warm_start ?scheduler ~system ~machine ~budget spec.Zoo.graph
    in
    let r = Graph_tuner.run tg ~machine in
    Fmt.pr "end-to-end latency: %.4f ms@." r.Compile.latency_ms;
    Fmt.pr "unique tuning tasks: %d, measurements: %d@."
      tg.Graph_tuner.tasks_tuned tg.Graph_tuner.measurements;
    Fmt.pr "plan: %d conversions, %d fused elementwise ops@."
      tg.Graph_tuner.compiled.Compile.plan.Propagate.conversions
      tg.Graph_tuner.compiled.Compile.plan.Propagate.fused_ops
  in
  Cmd.v (Cmd.info "tune-model" ~doc:"Tune and run an end-to-end model.")
    Term.(
      const run $ machine_arg $ budget_arg $ seed_arg $ jobs_arg $ model_arg
      $ batch_arg $ gsystem_arg $ scheduler_arg $ fault_rate_arg
      $ fault_seed_arg $ retries_arg $ fast_arg $ backend_arg
      $ exec_warmup_arg $ exec_repeats_arg $ exec_domains_arg
      $ warm_start_arg $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* schedule                                                           *)
(* ------------------------------------------------------------------ *)

let models_arg =
  Arg.(
    value
    & opt string "r18,mv2,bt,r3d"
    & info [ "models" ] ~docv:"LIST"
        ~doc:
          "Comma-separated zoo to tune under one global budget \
           (r18, mv2, bb, bt, r3d).")

let transfer_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "transfer" ] ~docv:"BOOL"
        ~doc:
          "Cross-task cost-model transfer: warm-start a task's first GBDT \
           fit from the latest ensemble of a similar task.  Defaults to \
           true under the gradient policy, false otherwise.")

let schedule_cmd =
  let run machine budget seed jobs models batch system policy transfer
      fault_rate fault_seed retries fast warm_start trace metrics =
    setup_logs ();
    setup_obs ~trace ~metrics;
    let jobs = resolve_jobs jobs in
    let faults = faults_of ~rate:fault_rate ~seed:fault_seed in
    let policy = Option.value policy ~default:Scheduler.Gradient in
    let specs =
      String.split_on_char ',' models
      |> List.filter (fun s -> s <> "")
      |> List.map (fun m -> zoo_spec (String.trim m) ~batch)
    in
    let graphs = List.map (fun s -> (s.Zoo.name, s.Zoo.graph)) specs in
    Fmt.pr "scheduling %d models (%s) with %s/%s on %a, global budget %d...@."
      (List.length graphs)
      (String.concat ", " (List.map fst graphs))
      (Graph_tuner.gsystem_name system)
      (Scheduler.policy_name policy)
      Machine.pp machine budget;
    let report, tuned =
      Graph_tuner.tune_models ~seed ~jobs ~faults ~retries ~fast ~warm_start
        ?transfer ~policy ~system ~machine ~budget graphs
    in
    Fmt.pr
      "tasks: %d unique (share %d), %d/%d trials in %d picks (%d \
       ε-round-robin)@."
      (List.length report.Scheduler.tasks)
      report.Scheduler.share report.Scheduler.spent report.Scheduler.budget
      report.Scheduler.picks report.Scheduler.eps_picks;
    if report.Scheduler.transfer then
      Fmt.pr "transfer: %d of %d tasks warm-started from a donor model@."
        (List.length
           (List.filter
              (fun (t : Scheduler.task_report) -> t.Scheduler.transferred)
              report.Scheduler.tasks))
        (List.length report.Scheduler.tasks);
    List.iter
      (fun (name, tg) ->
        let r = Graph_tuner.run tg ~machine in
        let curve =
          Option.value ~default:[]
            (List.assoc_opt name report.Scheduler.curves)
        in
        Fmt.pr
          "%-24s end-to-end %.4f ms  (%d tasks, %d trials, %d curve \
           points)@."
          name r.Compile.latency_ms tg.Graph_tuner.tasks_tuned
          tg.Graph_tuner.measurements (List.length curve))
      tuned
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:
         "Tune a whole model zoo under one global trial budget with the \
          gradient task scheduler.")
    Term.(
      const run $ machine_arg $ budget_arg $ seed_arg $ jobs_arg $ models_arg
      $ batch_arg $ gsystem_arg $ scheduler_arg $ transfer_arg
      $ fault_rate_arg $ fault_seed_arg $ retries_arg $ fast_arg
      $ warm_start_arg $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* show-op                                                            *)
(* ------------------------------------------------------------------ *)

let layout_preset_arg =
  Arg.(
    value & opt string "alt"
    & info [ "layout" ] ~docv:"PRESET"
        ~doc:"Layout preset: default, channels-last, blocked, alt.")

let show_op_cmd =
  let run machine kind batch channels out_channels spatial kernel stride preset
      fast =
    setup_logs ();
    let op =
      make_op kind ~batch ~channels ~out_channels ~spatial ~kernel ~stride
    in
    let choice =
      match preset with
      | "default" -> Templates.trivial_choice op
      | "channels-last" -> Templates.channels_last_choice op
      | "blocked" -> Templates.blocked_choice op ~block:(2 * machine.Machine.lanes)
      | "alt" -> (
          match Templates.for_op op with
          | Some tpl ->
              tpl.Templates.decode
                (Array.make (Array.length tpl.Templates.knobs) 0.4)
          | None -> Templates.trivial_choice op)
      | p -> Fmt.failwith "unknown preset %S" p
    in
    let task = Measure.make_task ~machine ~fast op in
    let rank = Shape.rank (Layout.physical_shape choice.Propagate.out_layout) in
    let sched =
      Schedule.vectorize
        (Schedule.default ~rank ~nred:(List.length op.Opdef.reduce))
    in
    match Measure.program_of task choice sched with
    | None -> Fmt.epr "this layout/schedule combination does not lower@."
    | Some prog ->
        Fmt.pr "%a@." Program.pp prog;
        (match Measure.measure task choice sched with
        | Measure.Ok r -> Fmt.pr "profile: %a@." Profiler.pp_result r
        | o -> Fmt.pr "profile: %a@." Measure.pp_outcome o)
  in
  Cmd.v (Cmd.info "show-op" ~doc:"Print the lowered program for an operator.")
    Term.(
      const run $ machine_arg $ op_kind_arg $ batch_arg $ channels_arg
      $ out_channels_arg $ spatial_arg $ kernel_arg $ stride_arg
      $ layout_preset_arg $ fast_arg)

(* ------------------------------------------------------------------ *)
(* obs-validate                                                       *)
(* ------------------------------------------------------------------ *)

(* Validate observability artifacts: trace files must parse line by line
   and satisfy the sink invariants (seq 0,1,2,..., monotone timestamps,
   well-nested spans); metrics files must parse as JSON with the
   versioned {"version":1,"metrics":[...]} shape. *)

let validate_metrics_file path : (int, string) result =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse content with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> (
      match Option.bind (Json.member "version" j) Json.to_int_opt with
      | Some 1 -> (
          match Option.bind (Json.member "metrics" j) Json.to_list_opt with
          | Some ms ->
              let bad =
                List.filter
                  (fun m ->
                    Option.bind (Json.member "name" m) Json.to_string_opt
                      = None
                    || Option.bind (Json.member "kind" m) Json.to_string_opt
                       = None)
                  ms
              in
              if bad = [] then Ok (List.length ms)
              else Error "metric entries missing \"name\"/\"kind\" fields"
          | None -> Error "missing \"metrics\" array")
      | Some v -> Error (Printf.sprintf "unsupported version %d" v)
      | None -> Error "missing \"version\" field")

let obs_validate_cmd =
  let trace_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"JSONL trace file to validate.")
  in
  let metrics_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"Metrics JSON file to validate.")
  in
  let run trace metrics =
    if trace = None && metrics = None then begin
      Fmt.epr "obs-validate: pass --trace and/or --metrics@.";
      exit 2
    end;
    let ok = ref true in
    (match trace with
    | None -> ()
    | Some path -> (
        match Tracecheck.parse_file path with
        | Error msg ->
            ok := false;
            Fmt.epr "trace %s: %s@." path msg
        | Ok records -> (
            match Tracecheck.validate records with
            | Error msg ->
                ok := false;
                Fmt.epr "trace %s: %s@." path msg
            | Ok () ->
                Fmt.pr "trace %s: OK (%d records)@." path
                  (List.length records))));
    (match metrics with
    | None -> ()
    | Some path -> (
        match validate_metrics_file path with
        | Error msg ->
            ok := false;
            Fmt.epr "metrics %s: %s@." path msg
        | Ok n -> Fmt.pr "metrics %s: OK (%d metrics)@." path n));
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "obs-validate"
       ~doc:"Validate trace (JSONL) and metrics (JSON) files.")
    Term.(const run $ trace_file_arg $ metrics_file_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve any number of concurrent clients over a Unix-domain \
           socket at $(docv).  Without it the daemon speaks the same \
           framed protocol over stdin/stdout (pipe mode) — one client, \
           deterministic, used by tests and scripts.")

let journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Session journal directory: every admitted request and its \
           per-round checkpoint live here, and a restarted daemon \
           recovers interrupted sessions from it byte-identically.  \
           Without it sessions are neither durable nor resumable.")

let max_active_arg =
  Arg.(
    value & opt int 4
    & info [ "max-active" ] ~docv:"N"
        ~doc:"Tuning sessions interleaved concurrently.")

let max_queue_arg =
  Arg.(
    value & opt int 8
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admitted-but-waiting sessions; beyond it requests are shed \
           with a structured rejection and a retry-after hint.")

let shards_arg =
  Arg.(
    value & opt int 16
    & info [ "shards" ] ~docv:"N"
        ~doc:"Shards of the cross-session measurement store.")

let deadline_rounds_arg =
  Arg.(
    value & opt (some int) None
    & info [ "deadline-rounds" ] ~docv:"N"
        ~doc:
          "Default per-request deadline in measurement rounds; on expiry \
           the session is parked resumable at its last checkpoint and \
           the request answered with status 'deadline'.")

let kill_after_arg =
  Arg.(
    value & opt (some int) None
    & info [ "kill-after-rounds" ] ~docv:"N"
        ~doc:
          "Crash-injection hook for recovery tests: exit with code 42 \
           after $(docv) scheduler rounds, without draining or cleaning \
           journals.")

let serve_cmd =
  let run socket journal jobs max_active max_queue shards deadline_rounds
      kill_after trace metrics =
    setup_logs ();
    setup_obs ~trace ~metrics;
    let jobs = resolve_jobs jobs in
    let cfg =
      Serve.default_config ~jobs ~max_active ~max_queue ~shards
        ?journal_dir:journal ?default_deadline_rounds:deadline_rounds ()
    in
    let engine = Serve.create cfg in
    let recovered = Serve.recover engine in
    if recovered > 0 then
      Fmt.epr "alt serve: recovered %d interrupted session(s)@." recovered;
    match socket with
    | Some path -> Daemon.run_socket ?kill_after_rounds:kill_after ~path engine
    | None -> Daemon.run_pipe ?kill_after_rounds:kill_after engine
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tuning service: concurrent sessions, admission control \
          with load shedding, deadlines, crash-safe recovery.")
    Term.(
      const run $ socket_arg $ journal_arg $ jobs_arg $ max_active_arg
      $ max_queue_arg $ shards_arg $ deadline_rounds_arg $ kill_after_arg
      $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* request                                                            *)
(* ------------------------------------------------------------------ *)

let req_kind_arg =
  Arg.(
    value
    & opt (enum [ ("tune", `Tune); ("compile", `Compile); ("stats", `Stats);
                  ("shutdown", `Shutdown) ]) `Tune
    & info [ "req" ] ~docv:"KIND"
        ~doc:"Request kind: tune, compile, stats or shutdown.")

let req_id_arg =
  Arg.(
    value & opt string "r0"
    & info [ "id" ] ~docv:"ID"
        ~doc:"Request id echoed in the response (route your replies).")

let emit_arg =
  Arg.(
    value & flag
    & info [ "emit" ]
        ~doc:
          "Print the framed request to stdout instead of sending it — \
           concatenate emitted frames into a file to drive a pipe-mode \
           daemon.")

let request_cmd =
  let run kind id machine budget seed fault_rate fault_seed retries watchdog
      op_kind batch channels out_channels spatial kernel stride system preset
      deadline socket emit =
    setup_logs ();
    let op =
      op_spec_of op_kind ~batch ~channels ~out_channels ~spatial ~kernel
        ~stride
    in
    let req =
      match kind with
      | `Tune ->
          let spec =
            {
              Workload.default_tune_spec with
              Workload.op;
              machine = machine.Machine.name;
              system = Tuner.system_name system;
              budget;
              seed;
              fault_rate;
              fault_seed;
              retries;
              watchdog_points = watchdog;
            }
          in
          Proto.Tune { id; spec; deadline_rounds = deadline }
      | `Compile ->
          Proto.Compile { id; op; machine = machine.Machine.name; preset }
      | `Stats -> Proto.Stats { id }
      | `Shutdown -> Proto.Shutdown { id }
    in
    if emit then print_string (Proto.frame_json (Proto.request_to_json req))
    else
      match socket with
      | None ->
          Fmt.epr "request: pass --socket PATH to send, or --emit to print@.";
          exit 2
      | Some path -> (
          match Daemon.request ~path req with
          | Error msg ->
              Fmt.epr "request: %s@." msg;
              exit 1
          | Ok reply -> (
              Fmt.pr "%s@." (Json.to_string reply);
              match Option.bind (Json.member "status" reply) Json.to_string_opt
              with
              | Some "ok" -> ()
              | _ -> exit 1))
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Build one service request; send it to a daemon (--socket) or \
          print the wire frame (--emit).")
    Term.(
      const run $ req_kind_arg $ req_id_arg $ machine_arg $ budget_arg
      $ seed_arg $ fault_rate_arg $ fault_seed_arg $ retries_arg
      $ watchdog_arg $ op_kind_arg $ batch_arg $ channels_arg
      $ out_channels_arg $ spatial_arg $ kernel_arg $ stride_arg $ system_arg
      $ layout_preset_arg $ deadline_rounds_arg $ socket_arg $ emit_arg)

let () =
  let info =
    Cmd.info "alt" ~version:Alt.version
      ~doc:"ALT: joint data layout and loop auto-tuning (EuroSys'23 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            tune_op_cmd; tune_model_cmd; schedule_cmd; show_op_cmd;
            obs_validate_cmd; serve_cmd; request_cmd;
          ]))
