(* Tests for lowering, schedules, programs, and the machine profiler.

   The central invariant: for ANY combination of data layouts and loop
   schedules, the lowered program must compute exactly the same tensor as
   the naive reference interpreter.  That is the paper's claim that layout
   manipulation needs no operator re-implementation, made executable. *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Sexpr = Alt_ir.Sexpr
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Program = Alt_ir.Program
module Ops = Alt_graph.Ops
module Graph = Alt_graph.Graph
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Runtime = Alt_machine.Runtime
module Cache = Alt_machine.Cache

let trivial shape = Layout.create shape

let layouts_of (assoc : (string * Layout.t) list) name =
  match List.assoc_opt name assoc with
  | Some l -> l
  | None -> invalid_arg ("test: no layout for " ^ name)

let check_close ?(tol = 1e-4) msg expected actual =
  if not (Buffer.allclose ~tol expected actual) then
    Alcotest.failf "%s: max diff %g" msg (Buffer.max_abs_diff expected actual)

(* Reference pipeline: reference-eval [op] on random inputs, then run the
   lowered program and compare logical outputs. *)
let run_and_compare ?(machine = Machine.intel_cpu) ?tol op ~layouts ~out_layout
    ?(fused = []) ~schedule () =
  let inputs =
    List.mapi
      (fun i (n, s) -> (n, Buffer.random ~seed:(7 * (i + 1)) s))
      op.Opdef.inputs
  in
  let expected = Opdef.reference_eval op inputs in
  let prog = Lower.lower ~op ~layouts ~out_layout ~fused ~schedule () in
  let outs, result = Runtime.run_logical ~machine prog ~inputs in
  let actual = List.assoc op.Opdef.out_name outs in
  check_close ?tol ("output of " ^ op.Opdef.name) expected actual;
  (prog, outs, result, inputs, expected)

(* ------------------------------------------------------------------ *)
(* GMM                                                                *)
(* ------------------------------------------------------------------ *)

let small_gmm () = Ops.gmm ~name:"gmm" ~a:"A" ~b:"B" ~out:"C" ~m:8 ~k:12 ~n:16 ()

let test_gmm_trivial () =
  let op = small_gmm () in
  let layouts = layouts_of [ ("A", trivial [| 8; 12 |]); ("B", trivial [| 12; 16 |]) ] in
  let schedule = Schedule.default ~rank:2 ~nred:1 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 8; 16 |]) ~schedule ())

let test_gmm_transposed_b () =
  (* the paper's NK layout: B stored transposed *)
  let op = small_gmm () in
  let bl = Layout.reorder (trivial [| 12; 16 |]) [| 1; 0 |] in
  let layouts = layouts_of [ ("A", trivial [| 8; 12 |]); ("B", bl) ] in
  let schedule = Schedule.default ~rank:2 ~nred:1 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 8; 16 |]) ~schedule ())

let nkn_layouts () =
  (* the paper's NKn custom layout, m_t = n_t = k_t = 4 *)
  let block2 l d0 f0 d1 f1 =
    let s = Layout.physical_shape l in
    let l = Layout.split l ~dim:d0 ~factors:[ s.(d0) / f0; f0 ] in
    let s = Layout.physical_shape l in
    let l = Layout.split l ~dim:d1 ~factors:[ s.(d1) / f1; f1 ] in
    (* [X/f0; f0; Y/f1; f1] -> [X/f0; Y/f1; f0; f1] *)
    Layout.reorder l [| 0; 2; 1; 3 |]
  in
  let c = block2 (trivial [| 8; 16 |]) 0 4 2 4 in
  let a = block2 (trivial [| 8; 12 |]) 0 4 2 4 in
  let b = block2 (trivial [| 12; 16 |]) 0 4 2 4 in
  (a, b, c)

let test_gmm_nkn () =
  let op = small_gmm () in
  let a, b, c = nkn_layouts () in
  let layouts = layouts_of [ ("A", a); ("B", b) ] in
  let schedule =
    Schedule.default ~rank:4 ~nred:1
    |> (fun s -> Schedule.split s ~dim:2 ~inner:4)
    |> Schedule.vectorize
  in
  ignore (run_and_compare op ~layouts ~out_layout:c ~schedule ())

let gmm_schedule_gen =
  let open QCheck2.Gen in
  let* t0 = oneofl [ 1; 2; 4; 8 ] in
  let* t1 = oneofl [ 1; 4; 16 ] in
  let* rt = oneofl [ 1; 3; 12 ] in
  let* ro = bool in
  let* vec = bool in
  let* par = int_range 0 2 in
  let* unroll = bool in
  let s = Schedule.default ~rank:2 ~nred:1 in
  let s = Schedule.split s ~dim:0 ~inner:t0 in
  let s = Schedule.split s ~dim:1 ~inner:t1 in
  let s = Schedule.split_reduce s ~index:0 ~inner:rt in
  let s = Schedule.reorder_reduce_outer s ro in
  let s = if vec then Schedule.vectorize s else s in
  let s = Schedule.parallel s par in
  let s = if unroll then Schedule.unroll s else s in
  return s

let prop_gmm_schedules_preserve_semantics =
  QCheck2.Test.make ~count:40 ~name:"any GMM schedule preserves semantics"
    gmm_schedule_gen (fun schedule ->
      let op = small_gmm () in
      let layouts =
        layouts_of [ ("A", trivial [| 8; 12 |]); ("B", trivial [| 12; 16 |]) ]
      in
      let inputs =
        List.mapi (fun i (n, s) -> (n, Buffer.random ~seed:(i + 1) s)) op.Opdef.inputs
      in
      let expected = Opdef.reference_eval op inputs in
      let prog =
        Lower.lower ~op ~layouts ~out_layout:(trivial [| 8; 16 |]) ~schedule ()
      in
      let outs, _ = Runtime.run_logical prog ~inputs in
      Buffer.allclose expected (List.assoc "C" outs))

(* ------------------------------------------------------------------ *)
(* C2D under layout transformations                                   *)
(* ------------------------------------------------------------------ *)

let small_c2d ?(stride = 1) ?(dilation = 1) () =
  Ops.c2d ~name:"c2d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:8 ~w:8
    ~kh:3 ~kw:3 ~stride ~dilation ()

let c2d_trivial_layouts (op : Opdef.t) =
  List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs

let test_c2d_trivial () =
  let op = small_c2d () in
  let layouts = layouts_of (c2d_trivial_layouts op) in
  let schedule = Schedule.default ~rank:4 ~nred:3 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 1; 8; 8; 8 |]) ~schedule ())

let test_c2d_nhwo () =
  (* NHWO output storage = reorder [0;2;3;1] of logical NOHW *)
  let op = small_c2d () in
  let layouts = layouts_of (c2d_trivial_layouts op) in
  let out_layout = Layout.reorder (trivial [| 1; 8; 8; 8 |]) [| 0; 2; 3; 1 |] in
  let schedule = Schedule.vectorize (Schedule.default ~rank:4 ~nred:3) in
  ignore (run_and_compare op ~layouts ~out_layout ~schedule ())

(* The full ALT C2D tiling template of Section 5.1, built by hand:
   output N H/ht W/wt O/ot ht wt ot; input unfolded on H and W; weight
   O/ot' I/it' KH KW it' ot'. *)
let alt_c2d_layouts ~n ~i ~o ~h ~w ~kh ~kw ~stride ~dilation ~ht ~wt ~ot ~it
    ~it' ~ot' =
  ignore n;
  let out =
    let l = trivial [| n; o; h; w |] in
    let l = Layout.split l ~dim:1 ~factors:[ o / ot; ot ] in
    let l = Layout.split l ~dim:3 ~factors:[ h / ht; ht ] in
    let l = Layout.split l ~dim:5 ~factors:[ w / wt; wt ] in
    Layout.reorder l [| 0; 3; 5; 1; 4; 6; 2 |]
  in
  let hin = (stride * (h - 1)) + (dilation * (kh - 1)) + 1 in
  let win = (stride * (w - 1)) + (dilation * (kw - 1)) + 1 in
  let bh = (stride * ht) + (dilation * (kh - 1)) + 1 - stride in
  let bw = (stride * wt) + (dilation * (kw - 1)) + 1 - stride in
  let inp =
    let l = trivial [| n; i; hin; win |] in
    let l = Layout.split l ~dim:1 ~factors:[ i / it; it ] in
    let l = Layout.unfold l ~dim:3 ~tile:bh ~stride:(stride * ht) in
    let l = Layout.unfold l ~dim:5 ~tile:bw ~stride:(stride * wt) in
    Layout.reorder l [| 0; 3; 5; 1; 4; 6; 2 |]
  in
  let ker =
    let l = trivial [| o; i; kh; kw |] in
    let l = Layout.split l ~dim:0 ~factors:[ o / ot'; ot' ] in
    let l = Layout.split l ~dim:2 ~factors:[ i / it'; it' ] in
    Layout.reorder l [| 0; 2; 4; 5; 3; 1 |]
  in
  (out, inp, ker)

let test_c2d_alt_template () =
  let op = small_c2d () in
  let out, inp, ker =
    alt_c2d_layouts ~n:1 ~i:4 ~o:8 ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:1 ~dilation:1
      ~ht:4 ~wt:4 ~ot:4 ~it:2 ~it':2 ~ot':4
  in
  let layouts = layouts_of [ ("X", inp); ("K", ker) ] in
  let schedule =
    Schedule.default ~rank:7 ~nred:3
    |> Schedule.vectorize
    |> (fun s -> Schedule.reorder_reduce_outer s true)
    |> (fun s -> Schedule.parallel s 1)
  in
  let prog, _, _, _, _ =
    run_and_compare op ~layouts ~out_layout:out ~schedule ()
  in
  (* the unfolded input layout must expand storage *)
  let inp_slot = prog.Program.slots.(Program.slot_index prog "X") in
  Alcotest.(check bool) "expansion" true
    (Layout.expansion_ratio inp_slot.Program.layout > 1.0)

let test_c2d_alt_template_strided () =
  let op = small_c2d ~stride:2 () in
  let out, inp, ker =
    alt_c2d_layouts ~n:1 ~i:4 ~o:8 ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:2 ~dilation:1
      ~ht:4 ~wt:2 ~ot:8 ~it:4 ~it':4 ~ot':2
  in
  let layouts = layouts_of [ ("X", inp); ("K", ker) ] in
  let schedule = Schedule.default ~rank:7 ~nred:3 in
  ignore (run_and_compare op ~layouts ~out_layout:out ~schedule ())

let test_c2d_alt_template_dilated () =
  let op = small_c2d ~dilation:2 () in
  let out, inp, ker =
    alt_c2d_layouts ~n:1 ~i:4 ~o:8 ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:1 ~dilation:2
      ~ht:2 ~wt:4 ~ot:4 ~it:2 ~it':4 ~ot':4
  in
  let layouts = layouts_of [ ("X", inp); ("K", ker) ] in
  let schedule = Schedule.default ~rank:7 ~nred:3 in
  ignore (run_and_compare op ~layouts ~out_layout:out ~schedule ())

(* ------------------------------------------------------------------ *)
(* Other complex operators, spot-checked with a tuned-ish setup        *)
(* ------------------------------------------------------------------ *)

let test_grp () =
  let op =
    Ops.grp ~name:"grp" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8 ~o:8 ~h:6 ~w:6
      ~kh:3 ~kw:3 ~groups:4 ()
  in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  let out_layout = Layout.reorder (trivial [| 1; 8; 6; 6 |]) [| 0; 2; 3; 1 |] in
  let schedule = Schedule.default ~rank:4 ~nred:3 in
  ignore (run_and_compare op ~layouts ~out_layout ~schedule ())

let test_dep () =
  let op =
    Ops.dep ~name:"dep" ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~c:6 ~h:6 ~w:6 ~kh:3
      ~kw:3 ~stride:2 ()
  in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  let schedule = Schedule.default ~rank:4 ~nred:2 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 2; 6; 6; 6 |]) ~schedule ())

let test_c1d () =
  let op = Ops.c1d ~name:"c1d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~i:4 ~o:6 ~w:10 ~kw:3 () in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  let schedule = Schedule.default ~rank:3 ~nred:2 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 2; 6; 10 |]) ~schedule ())

let test_c3d () =
  let op =
    Ops.c3d ~name:"c3d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:3 ~o:4 ~d:4 ~h:4
      ~w:4 ~kd:3 ~kh:3 ~kw:3 ()
  in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  let out_layout =
    Layout.reorder (trivial [| 1; 4; 4; 4; 4 |]) [| 0; 2; 3; 4; 1 |]
  in
  let schedule = Schedule.default ~rank:5 ~nred:4 in
  ignore (run_and_compare op ~layouts ~out_layout ~schedule ())

let test_t2d () =
  let op = Ops.t2d ~name:"t2d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:4 ~h:6 ~w:6 ~kh:3 ~kw:3 () in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  let schedule = Schedule.default ~rank:4 ~nred:3 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 1; 4; 6; 6 |]) ~schedule ())

let test_t3d () =
  let op =
    Ops.t3d ~name:"t3d" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:2 ~o:3 ~d:4 ~h:4
      ~w:4 ~kd:3 ~kh:3 ~kw:3 ()
  in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  let schedule = Schedule.default ~rank:5 ~nred:4 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 1; 3; 4; 4; 4 |]) ~schedule ())

let test_bmm () =
  let op = Ops.bmm ~name:"bmm" ~a:"A" ~b:"B" ~out:"C" ~batch:3 ~m:4 ~k:5 ~n:6 () in
  let layouts =
    layouts_of [ ("A", trivial [| 3; 4; 5 |]); ("B", trivial [| 3; 5; 6 |]) ]
  in
  let schedule = Schedule.default ~rank:3 ~nred:1 in
  ignore (run_and_compare op ~layouts ~out_layout:(trivial [| 3; 4; 6 |]) ~schedule ())

(* ------------------------------------------------------------------ *)
(* Fusion                                                             *)
(* ------------------------------------------------------------------ *)

let test_fused_bias_relu () =
  let op = small_c2d () in
  let shape = [| 1; 8; 8; 8 |] in
  let bias = Ops.bias_add ~name:"bias" ~inp:"Y" ~bias:"B" ~out:"Yb" ~shape ~dim:1 () in
  let relu = Ops.relu ~name:"relu" ~inp:"Yb" ~out:"Yr" ~shape () in
  let out_layout = Layout.reorder (trivial shape) [| 0; 2; 3; 1 |] in
  let layouts =
    layouts_of
      (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs
      @ [ ("B", trivial [| 8 |]) ])
  in
  let fused =
    [
      { Lower.fop = bias; fout_layout = out_layout };
      { Lower.fop = relu; fout_layout = out_layout };
    ]
  in
  let schedule =
    Schedule.default ~rank:4 ~nred:3
    |> (fun s -> Schedule.split s ~dim:1 ~inner:4)
    |> (fun s -> Schedule.reorder_reduce_outer s true)
    |> Schedule.vectorize
  in
  let inputs =
    [
      ("X", Buffer.random ~seed:1 [| 1; 4; 10; 10 |]);
      ("K", Buffer.random ~seed:2 [| 8; 4; 3; 3 |]);
      ("B", Buffer.random ~seed:3 [| 8 |]);
    ]
  in
  let conv_ref = Opdef.reference_eval op (List.filteri (fun i _ -> i < 2) inputs) in
  let bias_ref = Opdef.reference_eval bias [ ("Y", conv_ref); ("B", List.assoc "B" inputs) ] in
  let relu_ref = Opdef.reference_eval relu [ ("Yb", bias_ref) ] in
  let prog = Lower.lower ~op ~layouts ~out_layout ~fused ~schedule () in
  let outs, _ = Runtime.run_logical prog ~inputs in
  check_close "fused conv" conv_ref (List.assoc "Y" outs);
  check_close "fused bias" bias_ref (List.assoc "Yb" outs);
  check_close "fused relu" relu_ref (List.assoc "Yr" outs)

let test_fusion_conflict_detected () =
  let op = small_c2d () in
  let shape = [| 1; 8; 8; 8 |] in
  let relu = Ops.relu ~name:"relu" ~inp:"Y" ~out:"Yr" ~shape () in
  let out_layout = Layout.reorder (trivial shape) [| 0; 2; 3; 1 |] in
  let conflicting = Layout.split (trivial shape) ~dim:1 ~factors:[ 2; 4 ] in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  Alcotest.(check bool) "conflict raises" true
    (try
       ignore
         (Lower.lower ~op ~layouts ~out_layout
            ~fused:[ { Lower.fop = relu; fout_layout = conflicting } ]
            ~schedule:(Schedule.default ~rank:4 ~nred:3) ());
       false
     with Lower.Lower_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Conversion programs and layout-emitting elementwise ops             *)
(* ------------------------------------------------------------------ *)

let test_conversion_program () =
  let shape = [| 4; 6; 8 |] in
  let src = Layout.reorder (trivial shape) [| 2; 0; 1 |] in
  let dst =
    let l = Layout.split (trivial shape) ~dim:2 ~factors:[ 2; 4 ] in
    Layout.pad l ~dim:1 ~lo:0 ~hi:2
  in
  let prog = Lower.conversion ~src ~dst () in
  let logical = Buffer.random ~seed:9 shape in
  let bufs =
    [| Layout.pack src logical;
       Array.make (Layout.num_physical_elements dst) Float.nan |]
  in
  let _ = Profiler.run prog ~bufs in
  check_close "conversion = pack" (Layout.pack dst logical) bufs.(1)

let test_conversion_to_unfolded () =
  let shape = [| 10 |] in
  let src = trivial shape in
  let dst = Layout.unfold (trivial shape) ~dim:0 ~tile:4 ~stride:2 in
  let prog = Lower.conversion ~src ~dst () in
  let logical = Buffer.iota shape in
  let bufs =
    [| Layout.pack src logical;
       Array.make (Layout.num_physical_elements dst) Float.nan |]
  in
  let _ = Profiler.run prog ~bufs in
  check_close "unfold conversion" (Layout.pack dst logical) bufs.(1)

let test_assign_to_advanced_layout () =
  (* pad2d emitting a blocked+padded layout directly (Fig. 5b) *)
  let op = Ops.pad2d ~name:"pad" ~inp:"X" ~out:"Xp" ~n:1 ~c:4 ~h:6 ~w:6 ~pad:1 () in
  let out_shape = [| 1; 4; 8; 8 |] in
  let out_layout =
    let l = Layout.split (trivial out_shape) ~dim:1 ~factors:[ 2; 2 ] in
    Layout.reorder l [| 0; 1; 3; 4; 2 |]
  in
  let x = Buffer.random ~seed:4 [| 1; 4; 6; 6 |] in
  let expected = Opdef.reference_eval op [ ("X", x) ] in
  let prog =
    Lower.lower_assign_to ~op
      ~layouts:(layouts_of [ ("X", trivial [| 1; 4; 6; 6 |]) ])
      ~out_layout ()
  in
  let outs, _ = Runtime.run_logical prog ~inputs:[ ("X", x) ] in
  check_close "pad to blocked layout" expected (List.assoc "Xp" outs)

let test_assign_to_unfolded_layout () =
  (* relu emitting an unfolded layout: producer performs the conversion *)
  let shape = [| 2; 9 |] in
  let op = Ops.relu ~name:"relu" ~inp:"X" ~out:"Y" ~shape () in
  let out_layout = Layout.unfold (trivial shape) ~dim:1 ~tile:3 ~stride:2 in
  let x = Buffer.random ~seed:5 shape in
  let expected = Opdef.reference_eval op [ ("X", x) ] in
  let prog =
    Lower.lower_assign_to ~op ~layouts:(layouts_of [ ("X", trivial shape) ])
      ~out_layout ()
  in
  let bufs = Runtime.alloc_bufs prog ~inputs:[ ("X", x) ] in
  let _ = Profiler.run prog ~bufs in
  let packed_expected = Layout.pack out_layout expected in
  check_close "relu to unfolded" packed_expected
    bufs.(Program.slot_index prog "Y")

(* ------------------------------------------------------------------ *)
(* Profiler behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let test_cache_basic () =
  let c = Cache.create { Cache.size_bytes = 1024; assoc = 2; line_bytes = 64 } in
  (* sequential bytes: one miss per line *)
  let misses = ref 0 in
  for a = 0 to 1023 do
    if not (Cache.access c a) then incr misses
  done;
  Alcotest.(check int) "1 miss per line" 16 !misses;
  (* re-access: all hits *)
  misses := 0;
  for a = 0 to 1023 do
    if not (Cache.access c a) then incr misses
  done;
  Alcotest.(check int) "all hits" 0 !misses

let test_cache_eviction () =
  let c = Cache.create { Cache.size_bytes = 256; assoc = 2; line_bytes = 64 } in
  (* 4 lines capacity; touch 8 distinct lines twice: second pass all miss *)
  for k = 0 to 7 do
    ignore (Cache.access c (k * 64) : bool)
  done;
  let misses = ref 0 in
  for k = 0 to 7 do
    if not (Cache.access c (k * 64)) then incr misses
  done;
  Alcotest.(check int) "thrash" 8 !misses

let test_cache_prefetch () =
  let c = Cache.create { Cache.size_bytes = 1024; assoc = 2; line_bytes = 64 } in
  ignore (Cache.access c 0 : bool);
  ignore (Cache.prefetch c 64 : bool);
  Alcotest.(check bool) "prefetched line hits" true (Cache.access c 64)

let test_vectorize_reduces_insts () =
  let op = small_gmm () in
  let layouts = layouts_of [ ("A", trivial [| 8; 12 |]); ("B", trivial [| 12; 16 |]) ] in
  let base = Schedule.default ~rank:2 ~nred:1 in
  let prog1 = Lower.lower ~op ~layouts ~out_layout:(trivial [| 8; 16 |]) ~schedule:base () in
  let prog2 =
    Lower.lower ~op ~layouts ~out_layout:(trivial [| 8; 16 |])
      ~schedule:(Schedule.vectorize base) ()
  in
  let inputs = List.map (fun (n, s) -> (n, Buffer.random s)) op.Opdef.inputs in
  let _, r1 = Runtime.run_logical prog1 ~inputs in
  let _, r2 = Runtime.run_logical prog2 ~inputs in
  Alcotest.(check bool) "vectorized fewer insts" true
    (r2.Profiler.insts < r1.Profiler.insts)

let test_parallel_reduces_latency () =
  let op = small_gmm () in
  let layouts = layouts_of [ ("A", trivial [| 8; 12 |]); ("B", trivial [| 12; 16 |]) ] in
  let base = Schedule.default ~rank:2 ~nred:1 in
  let prog1 = Lower.lower ~op ~layouts ~out_layout:(trivial [| 8; 16 |]) ~schedule:base () in
  let prog2 =
    Lower.lower ~op ~layouts ~out_layout:(trivial [| 8; 16 |])
      ~schedule:(Schedule.parallel base 1) ()
  in
  let inputs = List.map (fun (n, s) -> (n, Buffer.random s)) op.Opdef.inputs in
  let _, r1 = Runtime.run_logical prog1 ~inputs in
  let _, r2 = Runtime.run_logical prog2 ~inputs in
  Alcotest.(check bool) "parallel faster" true
    (r2.Profiler.latency_ms < r1.Profiler.latency_ms)

let test_sampling () =
  let op =
    Ops.c2d ~name:"big" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8 ~o:16 ~h:16 ~w:16
      ~kh:3 ~kw:3 ()
  in
  let layouts = layouts_of (List.map (fun (n, s) -> (n, trivial s)) op.Opdef.inputs) in
  let prog =
    Lower.lower ~op ~layouts ~out_layout:(trivial [| 1; 16; 16; 16 |])
      ~schedule:(Schedule.default ~rank:4 ~nred:3) ()
  in
  let inputs = List.map (fun (n, s) -> (n, Buffer.random s)) op.Opdef.inputs in
  let bufs = Runtime.alloc_bufs prog ~inputs in
  let full = Profiler.run prog ~bufs in
  let bufs2 = Runtime.alloc_bufs prog ~inputs in
  let sampled = Profiler.run ~max_points:5000 prog ~bufs:bufs2 in
  Alcotest.(check bool) "sampled flag" true sampled.Profiler.sampled;
  Alcotest.(check bool) "not sampled flag" false full.Profiler.sampled;
  (* scaled instruction counts should be within 30% of the full run *)
  let ratio = sampled.Profiler.insts /. full.Profiler.insts in
  Alcotest.(check bool)
    (Fmt.str "inst ratio %.3f in [0.7, 1.3]" ratio)
    true
    (ratio > 0.7 && ratio < 1.3)

let test_layout_changes_misses () =
  (* Reading a matrix along its rows vs along its columns must differ in
     L1 misses — the basic sanity check that layouts matter at all. *)
  let shape = [| 512; 512 |] in
  let op = Ops.relu ~name:"r" ~inp:"X" ~out:"Y" ~shape () in
  let row_major = trivial shape in
  let col_major = Layout.reorder (trivial shape) [| 1; 0 |] in
  let run layout =
    let prog =
      Lower.lower ~op
        ~layouts:(layouts_of [ ("X", layout) ])
        ~out_layout:(trivial shape)
        ~schedule:(Schedule.default ~rank:2 ~nred:0)
        ()
    in
    let inputs = [ ("X", Buffer.random shape) ] in
    let _, r = Runtime.run_logical ~machine:Machine.intel_cpu prog ~inputs in
    r.Profiler.l1_misses
  in
  let m_row = run row_major and m_col = run col_major in
  Alcotest.(check bool)
    (Fmt.str "row %.0f < col %.0f misses" m_row m_col)
    true (m_row < m_col)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_ir"
    [
      ( "gmm",
        [
          Alcotest.test_case "trivial layouts" `Quick test_gmm_trivial;
          Alcotest.test_case "transposed B (NK)" `Quick test_gmm_transposed_b;
          Alcotest.test_case "blocked NKn" `Quick test_gmm_nkn;
        ] );
      qsuite "gmm-props" [ prop_gmm_schedules_preserve_semantics ];
      ( "c2d",
        [
          Alcotest.test_case "trivial" `Quick test_c2d_trivial;
          Alcotest.test_case "NHWO" `Quick test_c2d_nhwo;
          Alcotest.test_case "ALT template (unfold)" `Quick test_c2d_alt_template;
          Alcotest.test_case "ALT template stride 2" `Quick
            test_c2d_alt_template_strided;
          Alcotest.test_case "ALT template dilated" `Quick
            test_c2d_alt_template_dilated;
        ] );
      ( "operators",
        [
          Alcotest.test_case "group conv" `Quick test_grp;
          Alcotest.test_case "depthwise conv" `Quick test_dep;
          Alcotest.test_case "conv1d" `Quick test_c1d;
          Alcotest.test_case "conv3d" `Quick test_c3d;
          Alcotest.test_case "transposed conv2d" `Quick test_t2d;
          Alcotest.test_case "transposed conv3d" `Quick test_t3d;
          Alcotest.test_case "batched matmul" `Quick test_bmm;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "conv+bias+relu fused" `Quick test_fused_bias_relu;
          Alcotest.test_case "fusion conflict detected" `Quick
            test_fusion_conflict_detected;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "basic->split+pad" `Quick test_conversion_program;
          Alcotest.test_case "to unfolded" `Quick test_conversion_to_unfolded;
          Alcotest.test_case "assign to advanced layout" `Quick
            test_assign_to_advanced_layout;
          Alcotest.test_case "assign to unfolded layout" `Quick
            test_assign_to_unfolded_layout;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "cache basics" `Quick test_cache_basic;
          Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
          Alcotest.test_case "cache prefetch" `Quick test_cache_prefetch;
          Alcotest.test_case "vectorize reduces insts" `Quick
            test_vectorize_reduces_insts;
          Alcotest.test_case "parallel reduces latency" `Quick
            test_parallel_reduces_latency;
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "layout changes misses" `Quick
            test_layout_changes_misses;
        ] );
    ]
