(* Model zoo tests: every network builds, its reference execution runs, and
   — the strongest end-to-end check — compiled execution (with and without
   tuned layouts) matches the reference interpreter exactly. *)

open Alt_tensor
module Graph = Alt_graph.Graph
module Propagate = Alt_graph.Propagate
module Compile = Alt_graph.Compile
module Zoo = Alt_models.Zoo
module Machine = Alt_machine.Machine
module Tuner = Alt_tuner.Tuner
module Graph_tuner = Alt_tuner.Graph_tuner

let check_model_structure () =
  let r18 = Zoo.resnet18 () in
  let mv2 = Zoo.mobilenet_v2 () in
  let bb = Zoo.bert_base () in
  let r3d = Zoo.resnet3d_18 () in
  let n_complex g = List.length (Graph.complex_nodes g) in
  (* R18: stem + 8 stage convs x2 + 3 downsamples + fc *)
  Alcotest.(check int) "r18 complex ops" 21 (n_complex r18.Zoo.graph);
  Alcotest.(check bool) "mv2 complex ops" true (n_complex mv2.Zoo.graph >= 15);
  (* BB: per layer 4 gmm + 2 bmm + 2 ffn gmm = 8; 2 layers *)
  Alcotest.(check int) "bert complex ops" 16 (n_complex bb.Zoo.graph);
  Alcotest.(check bool) "r3d complex ops" true (n_complex r3d.Zoo.graph >= 13)

let compiled_matches_reference ?(tol = 1e-3) name (g : Graph.t) =
  let feeds = Graph.random_feeds g in
  let ref_env = Graph.reference_execute g ~feeds in
  let choices = Compile.trivial_choices g in
  let plan = Propagate.plan g ~choices in
  let compiled = Compile.compile g plan in
  let r = Compile.execute compiled ~feeds in
  Alcotest.(check bool) (name ^ " unsampled") false r.Compile.sampled;
  List.iter
    (fun (tname, actual) ->
      let expected = List.assoc tname ref_env in
      if not (Buffer.allclose ~tol expected actual) then
        Alcotest.failf "%s: %s differs by %g" name tname
          (Buffer.max_abs_diff expected actual))
    r.Compile.outputs

let test_r18_tiny_correct () =
  let m = Zoo.resnet18 ~size:8 ~base:4 () in
  compiled_matches_reference "r18" m.Zoo.graph

let test_mv2_tiny_correct () =
  let m = Zoo.mobilenet_v2 ~size:8 () in
  compiled_matches_reference "mv2" m.Zoo.graph

let test_bert_tiny_correct () =
  let m = Zoo.bert_tiny () in
  compiled_matches_reference ~tol:5e-3 "bert" m.Zoo.graph

let test_r3d_tiny_correct () =
  let m = Zoo.resnet3d_18 ~size:8 ~depth:4 ~base:4 () in
  compiled_matches_reference "r3d" m.Zoo.graph

(* The full loop: tune a small network with ALT, then verify the tuned,
   propagated, fused, conversion-inserted execution is still bit-correct
   against the naive interpreter. *)
let test_tuned_r18_correct () =
  let m = Zoo.resnet18 ~size:8 ~base:4 () in
  let g = m.Zoo.graph in
  let tg =
    Graph_tuner.tune_graph ~system:Graph_tuner.Galt ~machine:Machine.intel_cpu
      ~budget:60 ~max_points:8000 g
  in
  let feeds = Graph.random_feeds g in
  let ref_env = Graph.reference_execute g ~feeds in
  let r = Compile.execute tg.Graph_tuner.compiled ~feeds in
  List.iter
    (fun (tname, actual) ->
      let expected = List.assoc tname ref_env in
      if not (Buffer.allclose ~tol:1e-3 expected actual) then
        Alcotest.failf "tuned r18: %s differs by %g" tname
          (Buffer.max_abs_diff expected actual))
    r.Compile.outputs

let test_tuned_bert_correct () =
  let m = Zoo.bert_tiny () in
  let g = m.Zoo.graph in
  let tg =
    Graph_tuner.tune_graph ~system:Graph_tuner.Galt_wp
      ~machine:Machine.arm_cpu ~budget:40 ~max_points:8000 g
  in
  let feeds = Graph.random_feeds g in
  let ref_env = Graph.reference_execute g ~feeds in
  let r = Compile.execute tg.Graph_tuner.compiled ~feeds in
  List.iter
    (fun (tname, actual) ->
      let expected = List.assoc tname ref_env in
      if not (Buffer.allclose ~tol:5e-3 expected actual) then
        Alcotest.failf "tuned bert: %s differs by %g" tname
          (Buffer.max_abs_diff expected actual))
    r.Compile.outputs

let () =
  Alcotest.run "alt_models"
    [
      ( "structure",
        [ Alcotest.test_case "complex op counts" `Quick check_model_structure ]
      );
      ( "correctness",
        [
          Alcotest.test_case "resnet18 tiny" `Quick test_r18_tiny_correct;
          Alcotest.test_case "mobilenet-v2 tiny" `Quick test_mv2_tiny_correct;
          Alcotest.test_case "bert tiny" `Quick test_bert_tiny_correct;
          Alcotest.test_case "resnet3d tiny" `Quick test_r3d_tiny_correct;
        ] );
      ( "tuned",
        [
          Alcotest.test_case "ALT-tuned resnet is correct" `Slow
            test_tuned_r18_correct;
          Alcotest.test_case "ALT-WP-tuned bert is correct" `Slow
            test_tuned_bert_correct;
        ] );
    ]
