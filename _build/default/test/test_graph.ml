(* Tests for the graph layer: building, reference execution, Algorithm 1
   layout propagation, conversion insertion, fusion grouping, and full
   compiled-graph correctness against the reference interpreter. *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Graph = Alt_graph.Graph
module Ops = Alt_graph.Ops
module Propagate = Alt_graph.Propagate
module Compile = Alt_graph.Compile
module Machine = Alt_machine.Machine

let trivial shape = Layout.create shape

(* pad -> c2d -> bias -> relu -> maxpool : the first layer of a scaled
   ResNet, exercising padding, a complex op, a fusable chain and a
   windowed simple op. *)
let conv_block ~n ~i ~o ~h ~w () =
  let b = Graph.builder () in
  let x = Graph.input b "x" [| n; i; h; w |] in
  let k = Graph.param b "k" [| o; i; 3; 3 |] in
  let bias = Graph.param b "bias" [| o |] in
  let xp =
    Graph.add b (Ops.pad2d ~name:"pad0" ~inp:x ~out:"xp" ~n ~c:i ~h ~w ~pad:1 ())
  in
  let y =
    Graph.add b
      (Ops.c2d ~name:"conv0" ~inp:xp ~ker:k ~out:"y" ~n ~i ~o ~h ~w ~kh:3 ~kw:3 ())
  in
  let yb =
    Graph.add b
      (Ops.bias_add ~name:"bias0" ~inp:y ~bias ~out:"yb"
         ~shape:[| n; o; h; w |] ~dim:1 ())
  in
  let yr =
    Graph.add b (Ops.relu ~name:"relu0" ~inp:yb ~out:"yr" ~shape:[| n; o; h; w |] ())
  in
  let yp =
    Graph.add b
      (Ops.maxpool2d ~name:"pool0" ~inp:yr ~out:"yp" ~n ~c:o ~h:(h / 2)
         ~w:(w / 2) ~k:2 ~stride:2 ())
  in
  (Graph.finish b ~outputs:[ yp ], x, k)

let check_outputs msg g compiled feeds =
  let ref_env = Graph.reference_execute g ~feeds in
  let r = Compile.execute compiled ~feeds in
  Alcotest.(check bool) (msg ^ ": not sampled") false r.Compile.sampled;
  List.iter
    (fun (name, actual) ->
      let expected = List.assoc name ref_env in
      if not (Buffer.allclose ~tol:1e-4 expected actual) then
        Alcotest.failf "%s: output %s differs by %g" msg name
          (Buffer.max_abs_diff expected actual))
    r.Compile.outputs;
  r

let test_builder_validation () =
  let b = Graph.builder () in
  let _ = Graph.input b "x" [| 2; 2 |] in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Graph: duplicate tensor name x") (fun () ->
      ignore (Graph.input b "x" [| 2; 2 |]));
  Alcotest.(check bool) "unknown tensor" true
    (try
       ignore (Graph.add b (Ops.relu ~name:"r" ~inp:"nope" ~out:"y" ~shape:[| 2; 2 |] ()));
       false
     with Invalid_argument _ -> true)

let test_reference_execute () =
  let g, _, _ = conv_block ~n:1 ~i:3 ~o:4 ~h:8 ~w:8 () in
  let feeds = Graph.random_feeds g in
  let env = Graph.reference_execute g ~feeds in
  Alcotest.(check int) "yp size"
    (Shape.num_elements [| 1; 4; 4; 4 |])
    (Array.length (List.assoc "yp" env))

let test_graph_trivial_choices () =
  let g, _, _ = conv_block ~n:1 ~i:3 ~o:4 ~h:8 ~w:8 () in
  let choices = Compile.trivial_choices g in
  let plan = Propagate.plan g ~choices in
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "trivial" g compiled feeds)

let test_graph_blocked_with_fusion () =
  let g, _, _ = conv_block ~n:1 ~i:4 ~o:8 ~h:8 ~w:8 () in
  (* conv output stored N H W O/ot ot style: split O and move inner-most *)
  let out_shape = [| 1; 8; 8; 8 |] in
  let out_layout =
    let l = Layout.split (trivial out_shape) ~dim:1 ~factors:[ 2; 4 ] in
    Layout.reorder l [| 0; 1; 3; 4; 2 |]
  in
  let choices =
    [
      ( "conv0",
        {
          Propagate.out_layout;
          in_layouts =
            [ ("xp", trivial [| 1; 4; 10; 10 |]); ("k", trivial [| 8; 4; 3; 3 |]) ];
        } );
    ]
  in
  let plan = Propagate.plan g ~choices in
  (* bias and relu must be fused; pool is not elementwise so stops it *)
  Alcotest.(check int) "fused ops" 2 plan.Propagate.fused_ops;
  Alcotest.(check int) "no conversions" 0 plan.Propagate.conversions;
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "blocked+fusion" g compiled feeds)

let test_graph_unfolded_input_backward_emit () =
  (* conv desires an unfolded input; the pad producer must emit it (Fig 5b)
     without any conversion stage *)
  let g, _, _ = conv_block ~n:1 ~i:4 ~o:8 ~h:8 ~w:8 () in
  let inp_layout =
    (* [1;4;10;10] input (padded): unfold H with ht=4: tile 4+2=6 stride 4 *)
    let l = trivial [| 1; 4; 10; 10 |] in
    Layout.unfold l ~dim:2 ~tile:6 ~stride:4
  in
  let choices =
    [
      ( "conv0",
        {
          Propagate.out_layout = trivial [| 1; 8; 8; 8 |];
          in_layouts = [ ("xp", inp_layout); ("k", trivial [| 8; 4; 3; 3 |]) ];
        } );
    ]
  in
  let plan = Propagate.plan g ~choices in
  Alcotest.(check int) "no conversions (producer emits)" 0
    plan.Propagate.conversions;
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "unfolded backward emit" g compiled feeds)

let test_graph_mode_off_inserts_conversion () =
  let g, _, _ = conv_block ~n:1 ~i:4 ~o:8 ~h:8 ~w:8 () in
  let inp_layout =
    let l = trivial [| 1; 4; 10; 10 |] in
    Layout.unfold l ~dim:2 ~tile:6 ~stride:4
  in
  let choices =
    [
      ( "conv0",
        {
          Propagate.out_layout = trivial [| 1; 8; 8; 8 |];
          in_layouts = [ ("xp", inp_layout); ("k", trivial [| 8; 4; 3; 3 |]) ];
        } );
    ]
  in
  let plan = Propagate.plan ~mode:Propagate.Off g ~choices in
  Alcotest.(check int) "conversion inserted" 1 plan.Propagate.conversions;
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "mode=Off conversion" g compiled feeds)

let test_graph_mode_adjacent_no_fusion () =
  let g, _, _ = conv_block ~n:1 ~i:4 ~o:8 ~h:8 ~w:8 () in
  let out_shape = [| 1; 8; 8; 8 |] in
  let out_layout =
    let l = Layout.split (trivial out_shape) ~dim:1 ~factors:[ 2; 4 ] in
    Layout.reorder l [| 0; 1; 3; 4; 2 |]
  in
  let choices =
    [
      ( "conv0",
        {
          Propagate.out_layout;
          in_layouts =
            [ ("xp", trivial [| 1; 4; 10; 10 |]); ("k", trivial [| 8; 4; 3; 3 |]) ];
        } );
    ]
  in
  let plan = Propagate.plan ~mode:Propagate.Adjacent g ~choices in
  Alcotest.(check int) "no fusion in WP mode" 0 plan.Propagate.fused_ops;
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "mode=Adjacent" g compiled feeds)

(* Two back-to-back convolutions: a conversion operator must appear between
   them when their layouts differ (Algorithm 1's second constraint). *)
let two_convs () =
  let n, c, h, w = (1, 4, 8, 8) in
  let b = Graph.builder () in
  let x = Graph.input b "x" [| n; c; h; w |] in
  let k1 = Graph.param b "k1" [| c; c; 3; 3 |] in
  let k2 = Graph.param b "k2" [| c; c; 1; 1 |] in
  let xp =
    Graph.add b (Ops.pad2d ~name:"pad1" ~inp:x ~out:"xp" ~n ~c ~h ~w ~pad:1 ())
  in
  let y1 =
    Graph.add b
      (Ops.c2d ~name:"conv1" ~inp:xp ~ker:k1 ~out:"y1" ~n ~i:c ~o:c ~h ~w
         ~kh:3 ~kw:3 ())
  in
  let y2 =
    Graph.add b
      (Ops.c2d ~name:"conv2" ~inp:y1 ~ker:k2 ~out:"y2" ~n ~i:c ~o:c ~h ~w
         ~kh:1 ~kw:1 ())
  in
  Graph.finish b ~outputs:[ y2 ]

let test_conversion_between_convs () =
  let g = two_convs () in
  let shape = [| 1; 4; 8; 8 |] in
  let l1 =
    Layout.reorder (trivial shape) [| 0; 2; 3; 1 |] (* conv1 emits NHWO *)
  in
  let l2_in =
    Layout.split (trivial shape) ~dim:1 ~factors:[ 2; 2 ] (* conv2 wants blocked *)
  in
  let choices =
    [
      ( "conv1",
        {
          Propagate.out_layout = l1;
          in_layouts =
            [ ("xp", trivial [| 1; 4; 10; 10 |]); ("k1", trivial [| 4; 4; 3; 3 |]) ];
        } );
      ( "conv2",
        {
          Propagate.out_layout = trivial shape;
          in_layouts = [ ("y1", l2_in); ("k2", trivial [| 4; 4; 1; 1 |]) ];
        } );
    ]
  in
  let plan = Propagate.plan g ~choices in
  Alcotest.(check int) "one conversion" 1 plan.Propagate.conversions;
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "conv-conv conversion" g compiled feeds);
  (* same layouts on both sides: conversion disappears *)
  let choices_same =
    [
      ( "conv1",
        {
          Propagate.out_layout = l1;
          in_layouts =
            [ ("xp", trivial [| 1; 4; 10; 10 |]); ("k1", trivial [| 4; 4; 3; 3 |]) ];
        } );
      ( "conv2",
        {
          Propagate.out_layout = trivial shape;
          in_layouts = [ ("y1", l1); ("k2", trivial [| 4; 4; 1; 1 |]) ];
        } );
    ]
  in
  let plan2 = Propagate.plan g ~choices:choices_same in
  Alcotest.(check int) "no conversion when layouts agree" 0
    plan2.Propagate.conversions;
  let compiled2 = Compile.compile g plan2 in
  ignore (check_outputs "conv-conv same layout" g compiled2 feeds)

(* Residual branch: y = relu(conv(x) + x) — a consumer with two inputs. *)
let test_residual_add () =
  let n, c, h, w = (1, 4, 8, 8) in
  let b = Graph.builder () in
  let x = Graph.input b "x" [| n; c; h; w |] in
  let k = Graph.param b "k" [| c; c; 3; 3 |] in
  let xp = Graph.add b (Ops.pad2d ~name:"pad" ~inp:x ~out:"xp" ~n ~c ~h ~w ~pad:1 ()) in
  let y =
    Graph.add b
      (Ops.c2d ~name:"conv" ~inp:xp ~ker:k ~out:"y" ~n ~i:c ~o:c ~h ~w ~kh:3 ~kw:3 ())
  in
  let s = Graph.add b (Ops.add ~name:"res" ~a:y ~b:x ~out:"s" ~shape:[| n; c; h; w |] ()) in
  let r = Graph.add b (Ops.relu ~name:"relu" ~inp:s ~out:"r" ~shape:[| n; c; h; w |] ()) in
  let g = Graph.finish b ~outputs:[ r ] in
  let out_layout = Layout.reorder (trivial [| n; c; h; w |]) [| 0; 2; 3; 1 |] in
  let choices =
    [
      ( "conv",
        {
          Propagate.out_layout;
          in_layouts =
            [ ("xp", trivial [| 1; 4; 10; 10 |]); ("k", trivial [| 4; 4; 3; 3 |]) ];
        } );
    ]
  in
  let plan = Propagate.plan g ~choices in
  Alcotest.(check int) "add+relu fused" 2 plan.Propagate.fused_ops;
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "residual" g compiled feeds)

let test_gmm_chain () =
  (* gmm -> bias -> gelu, blocked layouts everywhere *)
  let m, k, n = (8, 12, 16) in
  let b = Graph.builder () in
  let a = Graph.input b "a" [| m; k |] in
  let w = Graph.param b "w" [| k; n |] in
  let bias = Graph.param b "bias" [| n |] in
  let c = Graph.add b (Ops.gmm ~name:"gmm" ~a ~b:w ~out:"c" ~m ~k ~n ()) in
  let cb =
    Graph.add b
      (Ops.bias_add ~name:"biasadd" ~inp:c ~bias ~out:"cb" ~shape:[| m; n |] ~dim:1 ())
  in
  let cg = Graph.add b (Ops.gelu ~name:"gelu" ~inp:cb ~out:"cg" ~shape:[| m; n |] ()) in
  let g = Graph.finish b ~outputs:[ cg ] in
  let block2 l d0 f0 d1 f1 =
    let s = Layout.physical_shape l in
    let l = Layout.split l ~dim:d0 ~factors:[ s.(d0) / f0; f0 ] in
    let s = Layout.physical_shape l in
    let l = Layout.split l ~dim:d1 ~factors:[ s.(d1) / f1; f1 ] in
    Layout.reorder l [| 0; 2; 1; 3 |]
  in
  let choices =
    [
      ( "gmm",
        {
          Propagate.out_layout = block2 (trivial [| m; n |]) 0 4 1 4;
          in_layouts =
            [
              ("a", block2 (trivial [| m; k |]) 0 4 1 4);
              ("w", block2 (trivial [| k; n |]) 0 4 1 4);
            ];
        } );
    ]
  in
  let plan = Propagate.plan g ~choices in
  Alcotest.(check int) "bias+gelu fused" 2 plan.Propagate.fused_ops;
  let compiled = Compile.compile g plan in
  let feeds = Graph.random_feeds g in
  ignore (check_outputs "gmm chain" g compiled feeds)

(* ------------------------------------------------------------------ *)
(* store_at placement                                                 *)
(* ------------------------------------------------------------------ *)

module Placement = Alt_graph.Placement
module Lower = Alt_ir.Lower
module Schedule = Alt_ir.Schedule
module Runtime = Alt_machine.Runtime

let test_store_at_roundtrip () =
  let host_shape = [| 5; 3 |] in
  let p = { Placement.host = "W"; guest = "B"; dim = 0; combined = "WB" } in
  let host = Buffer.iota host_shape in
  let guest = [| 100.; 200.; 300. |] in
  let combined = Placement.pack_combined ~host_shape p ~host ~guest in
  Alcotest.(check int) "size" 18 (Array.length combined);
  Alcotest.(check (float 0.)) "guest row" 200. combined.(16);
  let h, g = Placement.unpack_combined ~host_shape p combined in
  Alcotest.(check bool) "host back" true (Buffer.allclose h host);
  Alcotest.(check bool) "guest back" true (Buffer.allclose g guest)

let test_store_at_gmm_bias () =
  (* out = A @ W + B computed through the combined buffer must equal the
     plain computation *)
  let m, k, n = (4, 6, 8) in
  let gmm = Ops.gmm ~name:"fc" ~a:"A" ~b:"W" ~out:"Y" ~m ~k ~n () in
  let bias =
    Ops.bias_add ~name:"bias" ~inp:"Y" ~bias:"B" ~out:"Yb" ~shape:[| m; n |]
      ~dim:1 ()
  in
  let a = Buffer.random ~seed:1 [| m; k |] in
  let w = Buffer.random ~seed:2 [| k; n |] in
  let bv = Buffer.random ~seed:3 [| n |] in
  let y_ref = Opdef.reference_eval gmm [ ("A", a); ("W", w) ] in
  let yb_ref = Opdef.reference_eval bias [ ("Y", y_ref); ("B", bv) ] in
  let p = { Placement.host = "W"; guest = "B"; dim = 0; combined = "WB" } in
  let gmm' = Placement.apply ~host_shape:[| k; n |] gmm p in
  let bias' = Placement.apply ~host_shape:[| k; n |] bias p in
  let combined = Placement.pack_combined ~host_shape:[| k; n |] p ~host:w ~guest:bv in
  let prog =
    Lower.lower ~op:gmm'
      ~layouts:(fun nm ->
        Layout.create (if nm = "A" then [| m; k |] else [| k + 1; n |]))
      ~out_layout:(Layout.create [| m; n |])
      ~fused:[ { Lower.fop = bias'; fout_layout = Layout.create [| m; n |] } ]
      ~schedule:(Schedule.default ~rank:2 ~nred:1)
      ()
  in
  let outs, _ =
    Runtime.run_logical prog ~inputs:[ ("A", a); ("WB", combined) ]
  in
  Alcotest.(check bool) "store_at result" true
    (Buffer.allclose ~tol:1e-5 yb_ref (List.assoc "Yb" outs))

let test_store_at_validation () =
  let gmm = Ops.gmm ~name:"fc" ~a:"A" ~b:"W" ~out:"Y" ~m:4 ~k:6 ~n:8 () in
  let p = { Placement.host = "W"; guest = "B"; dim = 0; combined = "WB" } in
  Alcotest.(check bool) "neither input" true
    (try
       ignore
         (Placement.apply ~host_shape:[| 6; 8 |]
            (Ops.relu ~name:"r" ~inp:"X" ~out:"Z" ~shape:[| 2; 2 |] ())
            p);
       false
     with Invalid_argument _ -> true);
  ignore (Placement.apply ~host_shape:[| 6; 8 |] gmm p)

let () =
  Alcotest.run "alt_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
          Alcotest.test_case "reference execute" `Quick test_reference_execute;
        ] );
      ( "placement",
        [
          Alcotest.test_case "pack/unpack roundtrip" `Quick
            test_store_at_roundtrip;
          Alcotest.test_case "gmm+bias via combined buffer" `Quick
            test_store_at_gmm_bias;
          Alcotest.test_case "validation" `Quick test_store_at_validation;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "trivial choices" `Quick test_graph_trivial_choices;
          Alcotest.test_case "blocked + fusion" `Quick
            test_graph_blocked_with_fusion;
          Alcotest.test_case "unfolded input, backward emit" `Quick
            test_graph_unfolded_input_backward_emit;
          Alcotest.test_case "mode=Off inserts conversion" `Quick
            test_graph_mode_off_inserts_conversion;
          Alcotest.test_case "mode=Adjacent disables fusion" `Quick
            test_graph_mode_adjacent_no_fusion;
          Alcotest.test_case "conversion between convs" `Quick
            test_conversion_between_convs;
          Alcotest.test_case "residual add" `Quick test_residual_add;
          Alcotest.test_case "gmm chain" `Quick test_gmm_chain;
        ] );
    ]
