(* Cross-module property tests: randomized layout pairs through conversion
   programs, randomized template choices through the full graph pipeline,
   and schedule legalization laws. *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Ops = Alt_graph.Ops
module Graph = Alt_graph.Graph
module Propagate = Alt_graph.Propagate
module Compile = Alt_graph.Compile
module Profiler = Alt_machine.Profiler
module Templates = Alt_tuner.Templates
module Loopspace = Alt_tuner.Loopspace
module Measure = Alt_tuner.Measure
module Machine = Alt_machine.Machine


(* random invertible layout on a given shape *)
let gen_basic_layout shape =
  let open QCheck2.Gen in
  let rec add l n =
    if n = 0 then return l
    else
      let phys = Layout.physical_shape l in
      let rank = Shape.rank phys in
      let* c = int_range 0 2 in
      let* l' =
        match c with
        | 0 ->
            let* dim = int_range 0 (rank - 1) in
            let* f = oneofl (Shape.divisors phys.(dim)) in
            return (Layout.split l ~dim ~factors:[ phys.(dim) / f; f ])
        | 1 ->
            let* i = int_range 0 (rank - 1) in
            let* j = int_range 0 (rank - 1) in
            let perm = Array.init rank Fun.id in
            let t = perm.(i) in
            perm.(i) <- perm.(j);
            perm.(j) <- t;
            return (Layout.reorder l perm)
        | _ ->
            if rank >= 2 then
              let* dim = int_range 0 (rank - 2) in
              return (Layout.fuse l ~dim ~count:2)
            else return l
      in
      add l' (n - 1)
  in
  let open QCheck2.Gen in
  int_range 0 3 >>= add (Layout.create shape)

(* conversion program between two random layouts produces exactly
   pack(dst) of the logical data *)
let prop_conversion_equals_pack =
  let shape = [| 4; 6; 8 |] in
  QCheck2.Test.make ~count:40 ~name:"conversion program == Layout.pack"
    QCheck2.Gen.(pair (gen_basic_layout shape) (gen_basic_layout shape))
    (fun (src, dst) ->
      let logical = Buffer.iota shape in
      let prog = Lower.conversion ~src ~dst () in
      let bufs =
        [|
          Layout.pack src logical;
          Array.make (Layout.num_physical_elements dst) Float.nan;
        |]
      in
      let _ = Profiler.run prog ~bufs in
      Buffer.allclose (Layout.pack dst logical) bufs.(1))

(* random template choices + random loop points through the whole graph
   pipeline stay correct *)
let conv_graph () =
  let n, i, o, hw = (1, 4, 8, 8) in
  let b = Graph.builder () in
  let x = Graph.input b "x" [| n; i; hw; hw |] in
  let k = Graph.param b "k" [| o; i; 3; 3 |] in
  let bias = Graph.param b "bias" [| o |] in
  let xp = Graph.add b (Ops.pad2d ~name:"pad" ~inp:x ~out:"xp" ~n ~c:i ~h:hw ~w:hw ~pad:1 ()) in
  let y = Graph.add b (Ops.c2d ~name:"conv" ~inp:xp ~ker:k ~out:"y" ~n ~i ~o ~h:hw ~w:hw ~kh:3 ~kw:3 ()) in
  let yb = Graph.add b (Ops.bias_add ~name:"bias0" ~inp:y ~bias ~out:"yb" ~shape:[| n; o; hw; hw |] ~dim:1 ()) in
  let yr = Graph.add b (Ops.relu ~name:"relu" ~inp:yb ~out:"yr" ~shape:[| n; o; hw; hw |] ()) in
  Graph.finish b ~outputs:[ yr ]

let prop_random_choice_graph_correct =
  QCheck2.Test.make ~count:15 ~name:"random template choice keeps graphs correct"
    QCheck2.Gen.(array_size (return 6) (float_bound_exclusive 1.0))
    (fun actions ->
      let g = conv_graph () in
      let conv =
        List.find
          (fun (n : Graph.node) -> n.Graph.op.Opdef.name = "conv")
          (Graph.complex_nodes g)
      in
      let tpl = Option.get (Templates.for_op conv.Graph.op) in
      let choice = tpl.Templates.decode actions in
      let plan = Propagate.plan g ~choices:[ ("conv", choice) ] in
      let compiled = Compile.compile g plan in
      let feeds = Graph.random_feeds g in
      let expected = Graph.reference_execute g ~feeds in
      let r = Compile.execute compiled ~feeds in
      List.for_all
        (fun (name, actual) ->
          Buffer.allclose ~tol:1e-4 (List.assoc name expected) actual)
        r.Compile.outputs)

(* legalize is idempotent and always emits divisors *)
let prop_legalize_idempotent =
  QCheck2.Test.make ~count:100 ~name:"Schedule.legalize idempotent"
    QCheck2.Gen.(
      pair
        (array_size (return 3) (int_range 1 40))
        (array_size (return 2) (int_range 1 40)))
    (fun (sp, rt) ->
      let phys = [| 12; 18; 32 |] and reds = [| 9; 16 |] in
      let s = Schedule.default ~rank:3 ~nred:2 in
      let s = Array.to_list sp |> List.mapi (fun i f -> (i, f))
              |> List.fold_left (fun s (i, f) -> Schedule.split s ~dim:i ~inner:f) s in
      let s = Array.to_list rt |> List.mapi (fun i f -> (i, f))
              |> List.fold_left (fun s (i, f) -> Schedule.split_reduce s ~index:i ~inner:f) s in
      let l1 = Schedule.legalize s ~phys ~reduce_extents:reds in
      let l2 = Schedule.legalize l1 ~phys ~reduce_extents:reds in
      l1 = l2
      && Array.for_all2 (fun e f -> e mod f = 0) phys l1.Schedule.sp_tiles
      && Array.for_all2 (fun e f -> e mod f = 0) reds l1.Schedule.r_tiles)

(* any loop-space point measured through the tuner harness is correct *)
let prop_measured_points_correct =
  let op =
    Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:4 ~o:8 ~h:6 ~w:6
      ~kh:3 ~kw:3 ()
  in
  QCheck2.Test.make ~count:20 ~name:"measured candidates compute correctly"
    QCheck2.Gen.(array_size (return 11) (float_bound_exclusive 1.0))
    (fun point ->
      let choice = Templates.channels_last_choice op in
      let space = Loopspace.of_layout op choice.Propagate.out_layout in
      let sched = Loopspace.decode space point in
      let task = Measure.make_task ~machine:Machine.intel_cpu op in
      match Measure.program_of task choice sched with
      | None -> false
      | Some prog ->
          let inputs = task.Measure.feeds in
          let expected = Opdef.reference_eval op inputs in
          let outs, _ = Alt_machine.Runtime.run_logical prog ~inputs in
          Buffer.allclose ~tol:1e-4 expected (List.assoc "Y" outs))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "alt_props"
    [
      qsuite "cross-module"
        [
          prop_conversion_equals_pack;
          prop_random_choice_graph_correct;
          prop_legalize_idempotent;
          prop_measured_points_correct;
        ];
    ]
