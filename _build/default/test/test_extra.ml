(* Additional coverage: attention plumbing operators, operator validation,
   the vendor tuner, and graph-tuner task deduplication / budget
   accounting. *)

open Alt_tensor
module Opdef = Alt_ir.Opdef
module Sexpr = Alt_ir.Sexpr
module Ops = Alt_graph.Ops
module Graph = Alt_graph.Graph
module Machine = Alt_machine.Machine
module Measure = Alt_tuner.Measure
module Tuner = Alt_tuner.Tuner
module Graph_tuner = Alt_tuner.Graph_tuner
module Zoo = Alt_models.Zoo

let test_split_merge_heads_roundtrip () =
  let s, h, heads = (6, 8, 2) in
  let x = Buffer.random ~seed:3 [| s; h |] in
  let split = Ops.split_heads ~name:"sh" ~inp:"X" ~out:"Q" ~s ~h ~heads () in
  let merge = Ops.merge_heads ~name:"mh" ~inp:"Q" ~out:"Y" ~s ~h ~heads () in
  let q = Opdef.reference_eval split [ ("X", x) ] in
  let y = Opdef.reference_eval merge [ ("Q", q) ] in
  Alcotest.(check bool) "roundtrip" true (Buffer.allclose x y)

let test_split_heads_t_is_transpose () =
  let s, h, heads = (4, 6, 2) in
  let dh = h / heads in
  let x = Buffer.random ~seed:4 [| s; h |] in
  let st = Ops.split_heads_t ~name:"sht" ~inp:"X" ~out:"K" ~s ~h ~heads () in
  let k = Opdef.reference_eval st [ ("X", x) ] in
  (* K[a][d][s] = X[s][a*dh + d] *)
  for a = 0 to heads - 1 do
    for d = 0 to dh - 1 do
      for si = 0 to s - 1 do
        let lhs = k.((((a * dh) + d) * s) + si) in
        let rhs = x.((si * h) + (a * dh) + d) in
        if Float.abs (lhs -. rhs) > 1e-9 then
          Alcotest.failf "mismatch at a=%d d=%d s=%d" a d si
      done
    done
  done

let test_softmax_pieces () =
  (* softmax over the last dim sums to 1 *)
  let lead = [| 2; 3 |] and n = 5 in
  let x = Buffer.random ~seed:6 [| 2; 3; 5 |] in
  let mx = Opdef.reference_eval (Ops.rowmax ~name:"m" ~inp:"X" ~out:"M" ~lead ~n ()) [ ("X", x) ] in
  let ex =
    Opdef.reference_eval
      (Ops.exp_sub ~name:"e" ~inp:"X" ~row:"M" ~out:"E" ~lead ~n ())
      [ ("X", x); ("M", mx) ]
  in
  let sm = Opdef.reference_eval (Ops.rowsum ~name:"s" ~inp:"E" ~out:"S" ~lead ~n ()) [ ("E", ex) ] in
  let p =
    Opdef.reference_eval
      (Ops.div_rows ~name:"d" ~inp:"E" ~row:"S" ~out:"P" ~lead ~n ())
      [ ("E", ex); ("S", sm) ]
  in
  for row = 0 to 5 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      sum := !sum +. p.((row * n) + j)
    done;
    Alcotest.(check (float 1e-6)) "sums to 1" 1.0 !sum
  done

let test_opdef_validation () =
  let v = Var.fresh "i" in
  Alcotest.(check bool) "unknown tensor rejected" true
    (try
       ignore
         (Opdef.make ~name:"bad" ~inputs:[ ("A", [| 4 |]) ] ~out_name:"Y"
            ~out_shape:[| 4 |] ~spatial:[| v |] ~reduce:[]
            ~combiner:Opdef.Assign ~init:0.0
            ~body:(Sexpr.load "NOPE" [| Ixexpr.var v |])
            ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rank mismatch rejected" true
    (try
       ignore
         (Opdef.make ~name:"bad2" ~inputs:[ ("A", [| 4; 4 |]) ] ~out_name:"Y"
            ~out_shape:[| 4; 4 |] ~spatial:[| v |] ~reduce:[]
            ~combiner:Opdef.Assign ~init:0.0
            ~body:(Sexpr.load "A" [| Ixexpr.var v; Ixexpr.var v |])
            ());
       false
     with Invalid_argument _ -> true)

let test_vendor_no_search () =
  let op =
    Ops.c2d ~name:"c" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8 ~o:16 ~h:8 ~w:8
      ~kh:3 ~kw:3 ()
  in
  let task = Measure.make_task ~machine:Machine.arm_cpu ~max_points:5_000 op in
  let r = Tuner.tune_vendor task in
  (* the vendor stand-in tries its small fixed kernel set only *)
  Alcotest.(check bool) "few measurements" true (r.Tuner.spent <= 6);
  Alcotest.(check bool) "finite" true (Float.is_finite r.Tuner.best_latency)

let test_graph_tuner_dedup () =
  (* a network with many identical layers must tune far fewer tasks *)
  let m = Zoo.resnet3d_18 ~size:8 ~depth:4 ~base:4 () in
  let g = m.Zoo.graph in
  let tg =
    Graph_tuner.tune_graph ~system:Graph_tuner.Gansor ~machine:Machine.intel_cpu
      ~budget:40 ~max_points:4_000 g
  in
  let n_complex = List.length (Graph.complex_nodes g) in
  Alcotest.(check bool)
    (Fmt.str "dedup: %d tasks < %d complex ops" tg.Graph_tuner.tasks_tuned
       n_complex)
    true
    (tg.Graph_tuner.tasks_tuned < n_complex);
  Alcotest.(check int) "every complex op got a choice" n_complex
    (List.length tg.Graph_tuner.choices)

let test_history_budget_accounting () =
  let op = Ops.gmm ~name:"g" ~a:"A" ~b:"B" ~out:"C" ~m:8 ~k:8 ~n:8 () in
  let task = Measure.make_task ~machine:Machine.intel_cpu ~max_points:4_000 op in
  let r = Tuner.tune_op ~system:Tuner.Ansor_like ~budget:20 task in
  Alcotest.(check bool) "spent <= budget" true (r.Tuner.spent <= 20);
  List.iter
    (fun (spent, _) ->
      Alcotest.(check bool) "history within budget" true (spent <= 20))
    r.Tuner.history

let () =
  Alcotest.run "alt_extra"
    [
      ( "attention-ops",
        [
          Alcotest.test_case "split/merge heads roundtrip" `Quick
            test_split_merge_heads_roundtrip;
          Alcotest.test_case "split_heads_t transpose" `Quick
            test_split_heads_t_is_transpose;
          Alcotest.test_case "softmax pieces" `Quick test_softmax_pieces;
        ] );
      ( "validation",
        [ Alcotest.test_case "opdef validation" `Quick test_opdef_validation ]
      );
      ( "tuners",
        [
          Alcotest.test_case "vendor fixed kernels" `Quick test_vendor_no_search;
          Alcotest.test_case "graph tuner dedup" `Quick test_graph_tuner_dedup;
          Alcotest.test_case "budget accounting" `Quick
            test_history_budget_accounting;
        ] );
    ]
