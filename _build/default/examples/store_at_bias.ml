(* The store_at advanced primitive (paper Section 4.1.2): attach each
   element of a bias vector to the corresponding column of a GMM weight
   matrix so the inner product and the bias addition share cache lines.

   Run with:  dune exec examples/store_at_bias.exe

   Builds a fully connected layer out = A @ W + bias twice: once with the
   bias as a separate tensor, once with the bias fused into the weight
   buffer via [Placement.store_at]; verifies both against the reference
   and compares the profiles. *)

open Alt

let m, k, n = (64, 256, 64)

let fc_op ~weights_name =
  let vm = Var.fresh "m" and vn = Var.fresh "n" in
  let rk = Var.fresh "k" in
  let body =
    Sexpr.(
      load "A" [| Ixexpr.var vm; Ixexpr.var rk |]
      *. load weights_name [| Ixexpr.var rk; Ixexpr.var vn |])
  in
  Opdef.make ~name:"fc"
    ~inputs:[ ("A", [| m; k |]); (weights_name, [| k; n |]) ]
    ~out_name:"Y" ~out_shape:[| m; n |]
    ~spatial:[| vm; vn |]
    ~reduce:[ (rk, k) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~kind:(Opdef.Matmul { a = "A"; b = weights_name; batched = false })
    ~complex:true ()

let () =
  Fmt.pr "=== store_at: fusing a bias vector into the weight matrix ===@.@.";
  let machine = Machine.intel_cpu in
  let a_data = Buffer.random ~seed:1 [| m; k |] in
  let w_data = Buffer.random ~seed:2 [| k; n |] in
  let b_data = Buffer.random ~seed:3 [| n |] in

  (* ---- baseline: gmm + separate bias_add ---- *)
  let gmm = fc_op ~weights_name:"W" in
  let bias =
    Ops.bias_add ~name:"bias" ~inp:"Y" ~bias:"B" ~out:"Yb" ~shape:[| m; n |]
      ~dim:1 ()
  in
  let sched = Schedule.vectorize (Schedule.default ~rank:2 ~nred:1) in
  let prog_sep =
    Lower.lower ~op:gmm
      ~layouts:(fun name ->
        Layout.create (if name = "A" then [| m; k |] else if name = "W" then [| k; n |] else [| n |]))
      ~out_layout:(Layout.create [| m; n |])
      ~fused:[ { Lower.fop = bias; fout_layout = Layout.create [| m; n |] } ]
      ~schedule:sched ()
  in
  let outs, r_sep =
    Runtime.run_logical ~machine prog_sep
      ~inputs:[ ("A", a_data); ("W", w_data); ("B", b_data) ]
  in
  let reference = List.assoc "Yb" outs in
  Fmt.pr "separate bias : %a@." Profiler.pp_result r_sep;

  (* ---- store_at: combined (K+1) x N buffer ---- *)
  let placement =
    { Placement.host = "W"; guest = "B"; dim = 0; combined = "WB" }
  in
  (* rewrite BOTH the gmm and the bias consumer to read the combined buffer *)
  let gmm' = Placement.apply ~host_shape:[| k; n |] gmm placement in
  let bias' = Placement.apply ~host_shape:[| k; n |] bias placement in
  let combined =
    Placement.pack_combined ~host_shape:[| k; n |] placement ~host:w_data
      ~guest:b_data
  in
  let prog_fused =
    Lower.lower ~op:gmm'
      ~layouts:(fun name ->
        Layout.create (if name = "A" then [| m; k |] else [| k + 1; n |]))
      ~out_layout:(Layout.create [| m; n |])
      ~fused:[ { Lower.fop = bias'; fout_layout = Layout.create [| m; n |] } ]
      ~schedule:sched ()
  in
  let outs', r_fused =
    Runtime.run_logical ~machine prog_fused
      ~inputs:[ ("A", a_data); ("WB", combined) ]
  in
  let fused_out = List.assoc "Yb" outs' in
  Fmt.pr "store_at bias : %a@." Profiler.pp_result r_fused;
  Fmt.pr "@.results agree: max |diff| = %.2e@."
    (Buffer.max_abs_diff reference fused_out);
  Fmt.pr "buffers: 3 tensors -> 2 tensors; bias rides in the weight lines@.";
  Fmt.pr "L1 misses: separate=%.0f  fused=%.0f@." r_sep.Profiler.l1_misses
    r_fused.Profiler.l1_misses;
  (* and the inverse primitive (decouple_at) recovers the original parts *)
  let w_back, b_back =
    Placement.unpack_combined ~host_shape:[| k; n |] placement combined
  in
  Fmt.pr "decouple_at roundtrip: %s@."
    (if Buffer.allclose w_back w_data && Buffer.allclose b_back b_data then
       "OK"
     else "MISMATCH")
