(* Quickstart: jointly tune the data layout and loops of one convolution.

   Run with:  dune exec examples/quickstart.exe

   Defines a 2-D convolution, tunes it with ALT's two-stage joint tuner on
   the Intel-like machine model, compares against a loop-only Ansor-like
   baseline with the same measurement budget, and checks that the tuned
   program still computes the exact same tensor as the naive reference
   interpreter. *)

open Alt

let () =
  Fmt.pr "=== ALT quickstart: joint layout + loop tuning of a C2D ===@.";
  let op =
    Ops.c2d ~name:"conv" ~inp:"input" ~ker:"weight" ~out:"output" ~n:1 ~i:16
      ~o:32 ~h:28 ~w:28 ~kh:3 ~kw:3 ()
  in
  let machine = Machine.intel_cpu in
  let budget = 240 in
  let max_points = 15_000 in

  (* --- baseline: loop-only tuning on fixed layouts (Ansor-like) --- *)
  let base_task = Measure.make_task ~machine ~max_points op in
  let base = Tuner.tune_op ~system:Tuner.Ansor_like ~budget base_task in
  Fmt.pr "loop-only (Ansor-like): %.4f ms after %d measurements@."
    base.Tuner.best_latency base.Tuner.spent;

  (* --- ALT: joint stage + loop-only stage --- *)
  let r = tune_operator ~machine ~budget ~max_points op in
  Fmt.pr "ALT (joint tuning):     %.4f ms after %d measurements@."
    r.Tuner.best_latency r.Tuner.spent;
  Fmt.pr "speedup over loop-only: %.2fx@."
    (base.Tuner.best_latency /. r.Tuner.best_latency);

  (* --- what did it find? --- *)
  let c = r.Tuner.best_choice in
  Fmt.pr "@.tuned output layout: %a@." Layout.pp c.Propagate.out_layout;
  List.iter
    (fun (name, l) -> Fmt.pr "tuned %-6s layout: %a@." name Layout.pp l)
    c.Propagate.in_layouts;
  Fmt.pr "tuned loop schedule: %a@." Schedule.pp r.Tuner.best_schedule;

  (* --- correctness: transformed program == naive reference --- *)
  let task = Measure.make_task ~machine op in
  let prog =
    Option.get (Measure.program_of task c r.Tuner.best_schedule)
  in
  let inputs = task.Measure.feeds in
  let expected = Opdef.reference_eval op inputs in
  let outs, prof = Runtime.run_logical ~machine prog ~inputs in
  let actual = List.assoc "output" outs in
  Fmt.pr "@.correctness: max |diff| vs reference = %.2e (%s)@."
    (Buffer.max_abs_diff expected actual)
    (if Buffer.allclose ~tol:1e-4 expected actual then "OK" else "MISMATCH");
  Fmt.pr "profile: %a@." Profiler.pp_result prof
