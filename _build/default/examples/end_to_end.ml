(* End-to-end compilation of a light-weight vision network.

   Run with:  dune exec examples/end_to_end.exe

   Compiles the scaled MobileNet-V2 with three systems — the vendor-library
   stand-in, a loop-only Ansor-like tuner, and ALT's joint tuner — and
   reports the simulated end-to-end latency, the layout propagation plan
   (fused operators, conversion operators) and a per-stage breakdown of the
   ALT execution.  The workload is the kind of lightweight, memory-bound
   network where the paper reports ALT's largest end-to-end wins. *)

open Alt

let () =
  let m = Zoo.mobilenet_v2 ~size:32 () in
  let g = m.Zoo.graph in
  let machine = Machine.arm_cpu in
  let budget = 240 in
  Fmt.pr "=== end-to-end: %s on %a ===@." m.Zoo.name Machine.pp machine;
  Fmt.pr "%a@." Graph.pp g;

  let systems =
    [ Graph_tuner.Gvendor; Graph_tuner.Gansor; Graph_tuner.Galt ]
  in
  let results =
    List.map
      (fun sys ->
        let tg = compile_model ~system:sys ~machine ~budget g in
        let r = run_model tg ~machine in
        Fmt.pr "%-8s latency=%8.3f ms  (tasks=%d, measurements=%d, \
                conversions=%d, fused=%d)@."
          (Graph_tuner.gsystem_name sys)
          r.Compile.latency_ms tg.Graph_tuner.tasks_tuned
          tg.Graph_tuner.measurements
          tg.Graph_tuner.compiled.Compile.plan.Propagate.conversions
          tg.Graph_tuner.compiled.Compile.plan.Propagate.fused_ops;
        (sys, tg, r))
      systems
  in
  (match (List.nth results 1, List.nth results 2) with
  | (_, _, ansor), (_, _, alt) ->
      Fmt.pr "@.ALT speedup over Ansor-like: %.2fx@."
        (ansor.Compile.latency_ms /. alt.Compile.latency_ms));

  (* per-stage breakdown of the ALT execution *)
  (match List.nth results 2 with
  | _, _, r ->
      Fmt.pr "@.--- ALT per-stage breakdown (top 10 by latency) ---@.";
      let sorted =
        List.sort
          (fun (_, (a : Profiler.result)) (_, b) ->
            Float.compare b.Profiler.latency_ms a.Profiler.latency_ms)
          r.Compile.per_stage
      in
      List.iteri
        (fun i (label, (pr : Profiler.result)) ->
          if i < 10 then
            Fmt.pr "  %-24s %8.4f ms  l1-mis=%8.0f@." label
              pr.Profiler.latency_ms pr.Profiler.l1_misses)
        sorted)
