(* Transformer encoder compilation: tune the scaled BERT-tiny model and
   inspect how layout choices land on a GMM-dominated graph.

   Run with:  dune exec examples/bert_attention.exe

   NLP workloads exercise a different corner of ALT than CNNs: the complex
   operators are GMM/BMM, the templates are the (m_t, k_t, n_t) blockings
   of Section 5.1, and the elementwise chains to fuse are bias/gelu/softmax
   pieces rather than bias/relu. *)

open Alt

let () =
  let m = Zoo.bert_tiny () in
  let g = m.Zoo.graph in
  let machine = Machine.intel_cpu in
  Fmt.pr "=== %s on %a ===@." m.Zoo.name Machine.pp machine;
  Fmt.pr "%d operators, %d complex (GMM/BMM)@."
    (Array.length g.Graph.nodes)
    (List.length (Graph.complex_nodes g));

  (* correctness first: compiled trivial-layout execution == reference *)
  let feeds = Graph.random_feeds g in
  let reference = Graph.reference_execute g ~feeds in
  let plan = Propagate.plan g ~choices:(Compile.trivial_choices g) in
  let compiled = Compile.compile g plan in
  let r0 = Compile.execute ~machine compiled ~feeds in
  let out_name = List.hd g.Graph.outputs in
  Fmt.pr "untuned: %.4f ms; |diff| vs reference = %.2e@." r0.Compile.latency_ms
    (Buffer.max_abs_diff (List.assoc out_name reference)
       (List.assoc out_name r0.Compile.outputs));

  (* tune with ALT and with the loop-only ablation *)
  let run sys =
    let tg =
      Graph_tuner.tune_graph ~system:sys ~machine ~budget:200
        ~max_points:20_000 g
    in
    let r = Graph_tuner.run ~max_points:60_000 tg ~machine in
    (tg, r)
  in
  let _, r_ansor = run Graph_tuner.Gansor in
  let tg_alt, r_alt = run Graph_tuner.Galt in
  Fmt.pr "ansor-like: %.4f ms@." r_ansor.Compile.latency_ms;
  Fmt.pr "ALT:        %.4f ms  (%.2fx)@." r_alt.Compile.latency_ms
    (r_ansor.Compile.latency_ms /. r_alt.Compile.latency_ms);

  (* what layouts did the matmuls get? *)
  Fmt.pr "@.tuned GMM layouts (first three unique tasks):@.";
  List.iteri
    (fun i (_, (res : Tuner.result)) ->
      if i < 3 then
        Fmt.pr "  task %d: C stored %a@." i Layout.pp
          res.Tuner.best_choice.Propagate.out_layout)
    tg_alt.Graph_tuner.per_task;
  Fmt.pr "@.plan: %d fused elementwise ops, %d conversions@."
    tg_alt.Graph_tuner.compiled.Compile.plan.Propagate.fused_ops
    tg_alt.Graph_tuner.compiled.Compile.plan.Propagate.conversions
