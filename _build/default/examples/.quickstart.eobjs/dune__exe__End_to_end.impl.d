examples/end_to_end.ml: Alt Compile Float Fmt Graph Graph_tuner List Machine Profiler Propagate Zoo
