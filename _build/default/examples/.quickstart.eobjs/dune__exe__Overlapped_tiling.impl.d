examples/overlapped_tiling.ml: Alt Buffer Fmt Layout List Machine Measure Opdef Ops Option Profiler Program Propagate Runtime Schedule Shape Templates
