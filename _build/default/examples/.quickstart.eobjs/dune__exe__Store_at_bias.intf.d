examples/store_at_bias.mli:
