examples/quickstart.mli:
