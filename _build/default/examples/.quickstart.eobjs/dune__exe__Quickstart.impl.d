examples/quickstart.ml: Alt Buffer Fmt Layout List Machine Measure Opdef Ops Option Profiler Propagate Runtime Schedule Tuner
