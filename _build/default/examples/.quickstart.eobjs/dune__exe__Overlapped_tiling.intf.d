examples/overlapped_tiling.mli:
