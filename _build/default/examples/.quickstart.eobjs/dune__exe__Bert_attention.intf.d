examples/bert_attention.mli:
