examples/bert_attention.ml: Alt Array Buffer Compile Fmt Graph Graph_tuner Layout List Machine Propagate Tuner Zoo
