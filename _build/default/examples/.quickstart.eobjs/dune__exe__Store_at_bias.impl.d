examples/store_at_bias.ml: Alt Buffer Fmt Ixexpr Layout List Lower Machine Opdef Ops Placement Profiler Runtime Schedule Sexpr Var
