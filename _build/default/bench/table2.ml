(* Table 2: profiled L1 data cache misses — layout tiling vs loop tiling.

   Reproduces the paper's Cortex-A76 experiment: two functions load a
   512 x K float32 block.  In the first (layout tiling) the block's
   elements are stored contiguously; in the second (loop tiling) each row
   sits at a large stride inside an untransformed matrix.  The prediction
   column models a prefetcher that fetches 4 consecutive lines per miss:
   misses ~ (512*K) / (16 floats per line * 4 lines). *)

open Alt
open Bench_util

let rows = 512
let tile_widths = [ 4; 16; 64; 256 ]
let big_row = 512 (* row length of the untransformed matrix *)

(* Drive the raw cache model directly, like the paper's microbenchmark. *)
let simulate ~(machine : Machine.t) ~contiguous ~k =
  let l1 = Cache.create machine.Machine.l1 in
  let misses = ref 0 in
  let touch addr =
    if not (Cache.access l1 addr) then begin
      incr misses;
      let lb = Cache.line_bytes l1 in
      for p = 1 to machine.Machine.prefetch_extra do
        ignore (Cache.prefetch l1 (addr + (p * lb)) : bool)
      done
    end
  in
  for r = 0 to rows - 1 do
    for c = 0 to k - 1 do
      let elem = if contiguous then (r * k) + c else (r * big_row) + c in
      touch (elem * 4)
    done
  done;
  !misses

let run () =
  section "Table 2: L1 misses, layout tiling vs loop tiling (ARM profile)";
  let machine = Machine.arm_cpu in
  Fmt.pr "%-12s %22s %18s@." "Tile size" "#L1-mis / Pred. (layout)"
    "#L1-mis (loop)";
  List.iter
    (fun k ->
      let layout_misses = simulate ~machine ~contiguous:true ~k in
      let loop_misses = simulate ~machine ~contiguous:false ~k in
      let lanes_per_line = Cache.line_bytes (Cache.create machine.Machine.l1) / 4 in
      let pred =
        Shape.cdiv (rows * k)
          (lanes_per_line * (machine.Machine.prefetch_extra + 1))
      in
      Fmt.pr "%4d x %-5d %12d / %-10d %14d@." rows k layout_misses pred
        loop_misses)
    tile_widths;
  Fmt.pr "@.(paper: 32/32->208, 96/128->262, 501/512->785, 2037/2048->2952;@.";
  Fmt.pr " the shape to reproduce: layout tiling tracks the 4-lines-per-miss@.";
  Fmt.pr " prefetch prediction; loop tiling misses are several times higher)@."
