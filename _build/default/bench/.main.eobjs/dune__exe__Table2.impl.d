bench/table2.ml: Alt Bench_util Cache Fmt List Machine Shape
