bench/main.mli:
