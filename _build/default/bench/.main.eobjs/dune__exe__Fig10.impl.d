bench/fig10.ml: Alt Bench_util Compile Fmt Graph_tuner List Machine Propagate Zoo
