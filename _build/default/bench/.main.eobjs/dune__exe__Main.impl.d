bench/main.ml: Array Bechamel_suite Bench_util Fig1 Fig10 Fig11 Fig12 Fig13 Fig9 Fmt List String Sys Table2 Table3
