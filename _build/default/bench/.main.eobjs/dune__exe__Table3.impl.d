bench/table3.ml: Alt Bench_util Fmt Machine Measure Ops Profiler Templates Tuner
