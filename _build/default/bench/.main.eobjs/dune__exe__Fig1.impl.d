bench/fig1.ml: Alt Bench_util Float Fmt List Machine Measure Ops Templates Tuner
