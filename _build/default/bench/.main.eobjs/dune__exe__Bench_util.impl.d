bench/bench_util.ml: Alt Float Fmt List Machine String Sys Unix
