bench/fig12.ml: Alt Array Bench_util Buffer Float Fmt Layout List Lower Machine Measure Opdef Ops Profiler Propagate Templates Tuner
