bench/fig13.ml: Alt Bench_util Compile Fmt Graph_tuner List Machine Zoo
