bench/fig9.ml: Alt Array Bench_util Fmt Hashtbl Layout List Machine Measure Ops Option Propagate Shape String Tuner
