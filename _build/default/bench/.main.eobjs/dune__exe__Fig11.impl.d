bench/fig11.ml: Alt Bench_util Float Fmt List Machine Measure Ops Option Ppo String Tuner
