(* Model zoo: the networks of the paper's end-to-end evaluation (Fig. 10),
   built programmatically from the operator library.

   Spatial sizes and channel counts are scaled down so the trace-driven
   simulator stays tractable (see DESIGN.md §5 and EXPERIMENTS.md); the
   graph *structures* — residual blocks, inverted bottlenecks, multi-head
   attention, 3-D residual stages — are preserved, because propagation,
   fusion conflicts and conversion placement depend on structure, not
   absolute size.  Batch normalization is folded into the preceding
   convolution (standard for inference), leaving conv + bias + activation
   chains. *)

module Shape = Alt_tensor.Shape
module Graph = Alt_graph.Graph
module Ops = Alt_graph.Ops

type spec = { name : string; graph : Graph.t }

let uid = ref 0

let fresh prefix =
  incr uid;
  Fmt.str "%s_%d" prefix !uid

(* ------------------------------------------------------------------ *)
(* ResNet-18 (image)                                                  *)
(* ------------------------------------------------------------------ *)

(* conv3x3 (+optional stride) + bias + relu, with explicit padding *)
let conv3x3_block b ~x ~n ~cin ~cout ~h ~w ~stride ~relu =
  let tag = fresh "c3" in
  let k = Graph.param b (tag ^ ".k") [| cout; cin; 3; 3 |] in
  let bias = Graph.param b (tag ^ ".b") [| cout |] in
  let ho = h / stride and wo = w / stride in
  let pad_hi = if stride = 2 then 0 else 1 in
  let xp =
    Graph.add b
      (Ops.pad2d ~name:(tag ^ ".pad") ~inp:x ~out:(tag ^ ".xp") ~n ~c:cin ~h
         ~w ~pad:1 ~pad_hi ())
  in
  let y =
    Graph.add b
      (Ops.c2d ~name:(tag ^ ".conv") ~inp:xp ~ker:k ~out:(tag ^ ".y") ~n
         ~i:cin ~o:cout ~h:ho ~w:wo ~kh:3 ~kw:3 ~stride ())
  in
  let yb =
    Graph.add b
      (Ops.bias_add ~name:(tag ^ ".bias") ~inp:y ~bias ~out:(tag ^ ".yb")
         ~shape:[| n; cout; ho; wo |] ~dim:1 ())
  in
  if relu then
    Graph.add b
      (Ops.relu ~name:(tag ^ ".relu") ~inp:yb ~out:(tag ^ ".yr")
         ~shape:[| n; cout; ho; wo |] ())
  else yb

let conv1x1_block b ~x ~n ~cin ~cout ~h ~w ~stride ~relu =
  let tag = fresh "c1" in
  let k = Graph.param b (tag ^ ".k") [| cout; cin; 1; 1 |] in
  let bias = Graph.param b (tag ^ ".b") [| cout |] in
  let ho = h / stride and wo = w / stride in
  let y =
    Graph.add b
      (Ops.c2d ~name:(tag ^ ".conv") ~inp:x ~ker:k ~out:(tag ^ ".y") ~n
         ~i:cin ~o:cout ~h:ho ~w:wo ~kh:1 ~kw:1 ~stride ~in_h:h ~in_w:w ())
  in
  let yb =
    Graph.add b
      (Ops.bias_add ~name:(tag ^ ".bias") ~inp:y ~bias ~out:(tag ^ ".yb")
         ~shape:[| n; cout; ho; wo |] ~dim:1 ())
  in
  if relu then
    Graph.add b
      (Ops.relu ~name:(tag ^ ".relu") ~inp:yb ~out:(tag ^ ".yr")
         ~shape:[| n; cout; ho; wo |] ())
  else yb

let basic_block b ~x ~n ~cin ~cout ~h ~w ~stride =
  let y1 = conv3x3_block b ~x ~n ~cin ~cout ~h ~w ~stride ~relu:true in
  let ho = h / stride and wo = w / stride in
  let y2 = conv3x3_block b ~x:y1 ~n ~cin:cout ~cout ~h:ho ~w:wo ~stride:1 ~relu:false in
  let skip =
    if stride = 1 && cin = cout then x
    else conv1x1_block b ~x ~n ~cin ~cout ~h ~w ~stride ~relu:false
  in
  let tag = fresh "res" in
  let s =
    Graph.add b
      (Ops.add ~name:(tag ^ ".add") ~a:y2 ~b:skip ~out:(tag ^ ".s")
         ~shape:[| n; cout; ho; wo |] ())
  in
  Graph.add b
    (Ops.relu ~name:(tag ^ ".relu") ~inp:s ~out:(tag ^ ".r")
       ~shape:[| n; cout; ho; wo |] ())

let classifier b ~x ~n ~c ~classes =
  let tag = fresh "fc" in
  let w = Graph.param b (tag ^ ".w") [| c; classes |] in
  let bias = Graph.param b (tag ^ ".b") [| classes |] in
  let y = Graph.add b (Ops.gmm ~name:(tag ^ ".gmm") ~a:x ~b:w ~out:(tag ^ ".y") ~m:n ~k:c ~n:classes ()) in
  Graph.add b
    (Ops.bias_add ~name:(tag ^ ".bias") ~inp:y ~bias ~out:(tag ^ ".yb")
       ~shape:[| n; classes |] ~dim:1 ())

let resnet18 ?(batch = 1) ?(size = 32) ?(base = 16) ?(classes = 10) () : spec =
  uid := 0;
  let b = Graph.builder () in
  let n = batch in
  let x = Graph.input b "input" [| n; 3; size; size |] in
  let stem = conv3x3_block b ~x ~n ~cin:3 ~cout:base ~h:size ~w:size ~stride:1 ~relu:true in
  let stages = [ (base, 1); (base * 2, 2); (base * 4, 2); (base * 8, 2) ] in
  let cur = ref stem and ch = ref base and sz = ref size in
  List.iter
    (fun (cout, stride) ->
      (* two basic blocks per stage, first may downsample *)
      cur := basic_block b ~x:!cur ~n ~cin:!ch ~cout ~h:!sz ~w:!sz ~stride;
      sz := !sz / stride;
      ch := cout;
      cur := basic_block b ~x:!cur ~n ~cin:!ch ~cout ~h:!sz ~w:!sz ~stride:1)
    stages;
  let pooled =
    Graph.add b
      (Ops.global_avgpool ~name:"gap" ~inp:!cur ~out:"pooled" ~n ~c:!ch
         ~h:!sz ~w:!sz ())
  in
  let logits = classifier b ~x:pooled ~n ~c:!ch ~classes in
  { name = Fmt.str "R18-b%d" batch; graph = Graph.finish b ~outputs:[ logits ] }

(* ------------------------------------------------------------------ *)
(* MobileNet-V2 (image, lightweight)                                  *)
(* ------------------------------------------------------------------ *)

let dep3x3_block b ~x ~n ~c ~h ~w ~stride =
  let tag = fresh "dw" in
  let k = Graph.param b (tag ^ ".k") [| c; 3; 3 |] in
  let bias = Graph.param b (tag ^ ".b") [| c |] in
  let ho = h / stride and wo = w / stride in
  let pad_hi = if stride = 2 then 0 else 1 in
  let xp =
    Graph.add b
      (Ops.pad2d ~name:(tag ^ ".pad") ~inp:x ~out:(tag ^ ".xp") ~n ~c ~h ~w
         ~pad:1 ~pad_hi ())
  in
  let y =
    Graph.add b
      (Ops.dep ~name:(tag ^ ".dep") ~inp:xp ~ker:k ~out:(tag ^ ".y") ~n ~c
         ~h:ho ~w:wo ~kh:3 ~kw:3 ~stride ())
  in
  let yb =
    Graph.add b
      (Ops.bias_add ~name:(tag ^ ".bias") ~inp:y ~bias ~out:(tag ^ ".yb")
         ~shape:[| n; c; ho; wo |] ~dim:1 ())
  in
  Graph.add b
    (Ops.relu ~name:(tag ^ ".relu") ~inp:yb ~out:(tag ^ ".yr")
       ~shape:[| n; c; ho; wo |] ())

let inverted_residual b ~x ~n ~cin ~cout ~h ~w ~stride ~expand =
  let mid = cin * expand in
  let e =
    if expand = 1 then x
    else conv1x1_block b ~x ~n ~cin ~cout:mid ~h ~w ~stride:1 ~relu:true
  in
  let d = dep3x3_block b ~x:e ~n ~c:mid ~h ~w ~stride in
  let ho = h / stride and wo = w / stride in
  let p = conv1x1_block b ~x:d ~n ~cin:mid ~cout ~h:ho ~w:wo ~stride:1 ~relu:false in
  if stride = 1 && cin = cout then begin
    let tag = fresh "ir" in
    Graph.add b
      (Ops.add ~name:(tag ^ ".add") ~a:p ~b:x ~out:(tag ^ ".s")
         ~shape:[| n; cout; ho; wo |] ())
  end
  else p

let mobilenet_v2 ?(batch = 1) ?(size = 32) ?(classes = 10) () : spec =
  uid := 0;
  let b = Graph.builder () in
  let n = batch in
  let x = Graph.input b "input" [| n; 3; size; size |] in
  let stem = conv3x3_block b ~x ~n ~cin:3 ~cout:8 ~h:size ~w:size ~stride:2 ~relu:true in
  (* (expand, cout, repeats, first-stride), scaled from the paper's table *)
  let cfg = [ (1, 8, 1, 1); (4, 12, 2, 2); (4, 16, 2, 2); (4, 24, 2, 1) ] in
  let cur = ref stem and ch = ref 8 and sz = ref (size / 2) in
  List.iter
    (fun (expand, cout, repeats, stride) ->
      for r = 0 to repeats - 1 do
        let s = if r = 0 then stride else 1 in
        cur :=
          inverted_residual b ~x:!cur ~n ~cin:!ch ~cout ~h:!sz ~w:!sz ~stride:s
            ~expand;
        sz := !sz / s;
        ch := cout
      done)
    cfg;
  let head = conv1x1_block b ~x:!cur ~n ~cin:!ch ~cout:32 ~h:!sz ~w:!sz ~stride:1 ~relu:true in
  let pooled =
    Graph.add b
      (Ops.global_avgpool ~name:"gap" ~inp:head ~out:"pooled" ~n ~c:32 ~h:!sz
         ~w:!sz ())
  in
  let logits = classifier b ~x:pooled ~n ~c:32 ~classes in
  { name = Fmt.str "MV2-b%d" batch; graph = Graph.finish b ~outputs:[ logits ] }

(* ------------------------------------------------------------------ *)
(* BERT encoder stack (NLP)                                           *)
(* ------------------------------------------------------------------ *)

let dense b ~x ~rows ~cin ~cout ~tag =
  let w = Graph.param b (tag ^ ".w") [| cin; cout |] in
  let bias = Graph.param b (tag ^ ".b") [| cout |] in
  let y = Graph.add b (Ops.gmm ~name:(tag ^ ".gmm") ~a:x ~b:w ~out:(tag ^ ".y") ~m:rows ~k:cin ~n:cout ()) in
  Graph.add b
    (Ops.bias_add ~name:(tag ^ ".bias") ~inp:y ~bias ~out:(tag ^ ".yb")
       ~shape:[| rows; cout |] ~dim:1 ())

let layernorm b ~x ~rows ~cols ~tag =
  let mean =
    Graph.add b
      (Ops.rowsum ~name:(tag ^ ".mean") ~inp:x ~out:(tag ^ ".mu")
         ~lead:[| rows |] ~n:cols
         ~scale:(1.0 /. float_of_int cols)
         ())
  in
  let var =
    Graph.add b
      (Ops.rowvar ~name:(tag ^ ".var") ~inp:x ~mean ~out:(tag ^ ".va")
         ~lead:[| rows |] ~n:cols ())
  in
  Graph.add b
    (Ops.normalize_rows ~name:(tag ^ ".norm") ~inp:x ~mean ~var
       ~out:(tag ^ ".ln") ~lead:[| rows |] ~n:cols ())

let softmax_last b ~x ~lead ~n ~tag =
  let mx =
    Graph.add b
      (Ops.rowmax ~name:(tag ^ ".max") ~inp:x ~out:(tag ^ ".mx") ~lead ~n ())
  in
  let ex =
    Graph.add b
      (Ops.exp_sub ~name:(tag ^ ".exp") ~inp:x ~row:mx ~out:(tag ^ ".ex")
         ~lead ~n ())
  in
  let sum =
    Graph.add b
      (Ops.rowsum ~name:(tag ^ ".sum") ~inp:ex ~out:(tag ^ ".sm") ~lead ~n ())
  in
  Graph.add b
    (Ops.div_rows ~name:(tag ^ ".div") ~inp:ex ~row:sum ~out:(tag ^ ".p")
       ~lead ~n ())

let encoder_layer b ~x ~s ~h ~heads ~ff ~l =
  let dh = h / heads in
  let tag name = Fmt.str "l%d.%s" l name in
  let q = dense b ~x ~rows:s ~cin:h ~cout:h ~tag:(tag "q") in
  let k = dense b ~x ~rows:s ~cin:h ~cout:h ~tag:(tag "k") in
  let v = dense b ~x ~rows:s ~cin:h ~cout:h ~tag:(tag "v") in
  let qh = Graph.add b (Ops.split_heads ~name:(tag "qh") ~inp:q ~out:(tag "qh.t") ~s ~h ~heads ()) in
  let kh = Graph.add b (Ops.split_heads_t ~name:(tag "kh") ~inp:k ~out:(tag "kh.t") ~s ~h ~heads ()) in
  let vh = Graph.add b (Ops.split_heads ~name:(tag "vh") ~inp:v ~out:(tag "vh.t") ~s ~h ~heads ()) in
  let scores =
    Graph.add b
      (Ops.bmm ~name:(tag "scores") ~a:qh ~b:kh ~out:(tag "scores.t")
         ~batch:heads ~m:s ~k:dh ~n:s ())
  in
  let scaled =
    Graph.add b
      (Ops.scale ~name:(tag "scale") ~inp:scores ~out:(tag "scaled.t")
         ~shape:[| heads; s; s |]
         ~factor:(1.0 /. Float.sqrt (float_of_int dh))
         ())
  in
  let probs = softmax_last b ~x:scaled ~lead:[| heads; s |] ~n:s ~tag:(tag "sm") in
  let ctx =
    Graph.add b
      (Ops.bmm ~name:(tag "ctx") ~a:probs ~b:vh ~out:(tag "ctx.t") ~batch:heads
         ~m:s ~k:s ~n:dh ())
  in
  let merged =
    Graph.add b
      (Ops.merge_heads ~name:(tag "merge") ~inp:ctx ~out:(tag "merged.t") ~s ~h
         ~heads ())
  in
  let attn = dense b ~x:merged ~rows:s ~cin:h ~cout:h ~tag:(tag "attn_out") in
  let res1 =
    Graph.add b
      (Ops.add ~name:(tag "res1") ~a:x ~b:attn ~out:(tag "res1.t")
         ~shape:[| s; h |] ())
  in
  let ln1 = layernorm b ~x:res1 ~rows:s ~cols:h ~tag:(tag "ln1") in
  let f1 = dense b ~x:ln1 ~rows:s ~cin:h ~cout:ff ~tag:(tag "ff1") in
  let g =
    Graph.add b
      (Ops.gelu ~name:(tag "gelu") ~inp:f1 ~out:(tag "gelu.t")
         ~shape:[| s; ff |] ())
  in
  let f2 = dense b ~x:g ~rows:s ~cin:ff ~cout:h ~tag:(tag "ff2") in
  let res2 =
    Graph.add b
      (Ops.add ~name:(tag "res2") ~a:ln1 ~b:f2 ~out:(tag "res2.t")
         ~shape:[| s; h |] ())
  in
  layernorm b ~x:res2 ~rows:s ~cols:h ~tag:(tag "ln2")

let bert ?(batch = 1) ?(seq = 32) ?(hidden = 64) ?(heads = 4) ?(layers = 2)
    ~name () : spec =
  uid := 0;
  let b = Graph.builder () in
  (* embedded token representations; rows fold the batch (standard for
     dense transformer inference) *)
  let s = batch * seq in
  let x = Graph.input b "input" [| s; hidden |] in
  let cur = ref x in
  for l = 0 to layers - 1 do
    cur := encoder_layer b ~x:!cur ~s ~h:hidden ~heads ~ff:(4 * hidden) ~l
  done;
  { name = Fmt.str "%s-b%d" name batch; graph = Graph.finish b ~outputs:[ !cur ] }

let bert_base ?(batch = 1) () =
  bert ~batch ~seq:32 ~hidden:64 ~heads:4 ~layers:2 ~name:"BB" ()

let bert_tiny ?(batch = 1) () =
  bert ~batch ~seq:16 ~hidden:32 ~heads:2 ~layers:1 ~name:"BT" ()

(* ------------------------------------------------------------------ *)
(* ResNet3D-18 (video)                                                *)
(* ------------------------------------------------------------------ *)

let conv3d_block b ~x ~n ~cin ~cout ~d ~h ~w ~stride ~relu =
  let tag = fresh "v3" in
  let k = Graph.param b (tag ^ ".k") [| cout; cin; 3; 3; 3 |] in
  let bias = Graph.param b (tag ^ ".b") [| cout |] in
  let d' = d / stride and h' = h / stride and w' = w / stride in
  let pad_hi = if stride = 2 then 0 else 1 in
  let xp =
    Graph.add b
      (Ops.pad3d ~name:(tag ^ ".pad") ~inp:x ~out:(tag ^ ".xp") ~n ~c:cin ~d
         ~h ~w ~pad:1 ~pad_hi ())
  in
  let y =
    Graph.add b
      (Ops.c3d ~name:(tag ^ ".conv") ~inp:xp ~ker:k ~out:(tag ^ ".y") ~n
         ~i:cin ~o:cout ~d:d' ~h:h' ~w:w' ~kd:3 ~kh:3 ~kw:3 ~stride ())
  in
  let yb =
    Graph.add b
      (Ops.bias_add ~name:(tag ^ ".bias") ~inp:y ~bias ~out:(tag ^ ".yb")
         ~shape:[| n; cout; d'; h'; w' |] ~dim:1 ())
  in
  if relu then
    Graph.add b
      (Ops.relu ~name:(tag ^ ".relu") ~inp:yb ~out:(tag ^ ".yr")
         ~shape:[| n; cout; d'; h'; w' |] ())
  else yb

let basic_block3d b ~x ~n ~cin ~cout ~d ~h ~w ~stride =
  let y1 = conv3d_block b ~x ~n ~cin ~cout ~d ~h ~w ~stride ~relu:true in
  let d' = d / stride and h' = h / stride and w' = w / stride in
  let y2 = conv3d_block b ~x:y1 ~n ~cin:cout ~cout ~d:d' ~h:h' ~w:w' ~stride:1 ~relu:false in
  let skip =
    if stride = 1 && cin = cout then x
    else begin
      let tag = fresh "v1" in
      let k = Graph.param b (tag ^ ".k") [| cout; cin; 1; 1; 1 |] in
      Graph.add b
        (Ops.c3d ~name:(tag ^ ".conv") ~inp:x ~ker:k ~out:(tag ^ ".y") ~n
           ~i:cin ~o:cout ~d:d' ~h:h' ~w:w' ~kd:1 ~kh:1 ~kw:1 ~stride ~in_d:d
           ~in_h:h ~in_w:w ())
    end
  in
  let tag = fresh "vres" in
  let s =
    Graph.add b
      (Ops.add ~name:(tag ^ ".add") ~a:y2 ~b:skip ~out:(tag ^ ".s")
         ~shape:[| n; cout; d'; h'; w' |] ())
  in
  Graph.add b
    (Ops.relu ~name:(tag ^ ".relu") ~inp:s ~out:(tag ^ ".r")
       ~shape:[| n; cout; d'; h'; w' |] ())

let resnet3d_18 ?(batch = 1) ?(size = 16) ?(depth = 8) ?(base = 8)
    ?(classes = 10) () : spec =
  uid := 0;
  let b = Graph.builder () in
  let n = batch in
  let x = Graph.input b "input" [| n; 3; depth; size; size |] in
  let stem =
    conv3d_block b ~x ~n ~cin:3 ~cout:base ~d:depth ~h:size ~w:size ~stride:1
      ~relu:true
  in
  let cur = ref stem and ch = ref base and sz = ref size and dp = ref depth in
  List.iter
    (fun (cout, stride) ->
      cur :=
        basic_block3d b ~x:!cur ~n ~cin:!ch ~cout ~d:!dp ~h:!sz ~w:!sz ~stride;
      dp := !dp / stride;
      sz := !sz / stride;
      ch := cout;
      cur := basic_block3d b ~x:!cur ~n ~cin:!ch ~cout ~d:!dp ~h:!sz ~w:!sz ~stride:1)
    [ (base, 1); (base * 2, 2); (base * 4, 2) ];
  let pooled =
    Graph.add b
      (Ops.global_avgpool3d ~name:"gap" ~inp:!cur ~out:"pooled" ~n ~c:!ch
         ~d:!dp ~h:!sz ~w:!sz ())
  in
  let logits = classifier b ~x:pooled ~n ~c:!ch ~classes in
  { name = Fmt.str "R3D-b%d" batch; graph = Graph.finish b ~outputs:[ logits ] }
