lib/models/zoo.ml: Alt_graph Alt_tensor Float Fmt List
