lib/models/zoo.mli: Alt_graph
