(** Model zoo: the networks of the paper's end-to-end evaluation, scaled
    for the trace-driven simulator (structures preserved; see DESIGN.md). *)

module Graph = Alt_graph.Graph

type spec = { name : string; graph : Graph.t }

val resnet18 :
  ?batch:int -> ?size:int -> ?base:int -> ?classes:int -> unit -> spec
(** Residual CNN: stem + 4 stages of basic blocks + global pool + FC. *)

val mobilenet_v2 : ?batch:int -> ?size:int -> ?classes:int -> unit -> spec
(** Inverted-residual CNN with depthwise convolutions. *)

val bert :
  ?batch:int -> ?seq:int -> ?hidden:int -> ?heads:int -> ?layers:int ->
  name:string -> unit -> spec
(** Transformer encoder stack (multi-head attention + FFN + layernorm). *)

val bert_base : ?batch:int -> unit -> spec
val bert_tiny : ?batch:int -> unit -> spec

val resnet3d_18 :
  ?batch:int -> ?size:int -> ?depth:int -> ?base:int -> ?classes:int ->
  unit -> spec
(** 3-D residual CNN for video. *)
