(** store_at / decouple_at: inter-tensor placement (Section 4.1.2).

    [store_at] fuses a guest tensor into a host buffer — the paper's
    example attaches a bias vector to the columns of a weight matrix so
    the inner product and the bias addition share cache lines.  The host's
    dim [dim] grows by one; the guest occupies the extra hyperplane, and
    the combined tensor takes ordinary layout primitives. *)

module Shape = Alt_tensor.Shape
module Opdef = Alt_ir.Opdef

type t = {
  host : string;
  guest : string;
  dim : int; (** host dimension that grows by one *)
  combined : string; (** name of the fused tensor *)
}

val combined_shape : Shape.t -> t -> Shape.t

val apply : host_shape:Shape.t -> Opdef.t -> t -> Opdef.t
(** Rewrite an operator to read the combined tensor wherever it reads the
    host or the guest (an operator may read only one of them, e.g. the
    bias-add consumer reads only the guest).  Raises if the guest shape is
    not the host shape minus [dim]. *)

val pack_combined :
  host_shape:Shape.t -> t -> host:float array -> guest:float array ->
  float array
(** Build the combined tensor's logical data. *)

val unpack_combined :
  host_shape:Shape.t -> t -> float array -> float array * float array
(** The inverse (decouple_at): recover [(host, guest)]. *)
