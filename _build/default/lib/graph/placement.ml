(* store_at / decouple_at: inter-tensor placement (paper Section 4.1.2).

   [store_at] fuses two tensors into one buffer so that related elements
   share cache lines — the paper's example attaches each element of a bias
   vector to the corresponding column of a weight matrix, letting the inner
   product and the bias addition touch the same line.

   Realization: the host tensor's logical dim [dim] is extended by one; the
   guest occupies the extra hyperplane.  The operator is rewritten so reads
   of the host keep their indices and reads of the guest index the extra
   hyperplane; the combined tensor can then be given any layout through the
   ordinary primitives.  [decouple_at] is the inverse: simply stop fusing
   (the combined tensor splits back into its parts). *)

module Shape = Alt_tensor.Shape
module Ixexpr = Alt_tensor.Ixexpr
module Opdef = Alt_ir.Opdef
module Sexpr = Alt_ir.Sexpr

type t = {
  host : string;
  guest : string;
  dim : int; (* host dim that grows by one *)
  combined : string;
}

let combined_shape (host_shape : Shape.t) (p : t) : Shape.t =
  let s = Array.copy host_shape in
  s.(p.dim) <- s.(p.dim) + 1;
  s

(* Guest must have the host's shape minus dimension [dim]. *)
let validate ~(host_shape : Shape.t) (op : Opdef.t) (p : t) =
  match List.assoc_opt p.guest op.Opdef.inputs with
  | None -> ()
  | Some gs ->
      let expect =
        Array.of_list
          (List.filteri (fun i _ -> i <> p.dim) (Array.to_list host_shape))
      in
      if not (Shape.equal gs expect) then
        invalid_arg
          (Fmt.str "Placement.store_at: guest %s shape %a incompatible with \
                    host %s %a at dim %d"
             p.guest Shape.pp gs p.host Shape.pp host_shape p.dim)

(* Rewrite an operator to read the combined tensor wherever it reads the
   host or the guest.  [host_shape] must be supplied because an operator
   may read only the guest (e.g. the bias-add consumer). *)
let apply ~(host_shape : Shape.t) (op : Opdef.t) (p : t) : Opdef.t =
  if
    (not (List.mem_assoc p.host op.Opdef.inputs))
    && not (List.mem_assoc p.guest op.Opdef.inputs)
  then
    invalid_arg
      (Fmt.str "Placement.apply: op %s reads neither %s nor %s" op.Opdef.name
         p.host p.guest);
  validate ~host_shape op p;
  let hs = host_shape in
  let host_extent = hs.(p.dim) in
  let body =
    Sexpr.map_loads
      (fun name idx ->
        if name = p.host then Sexpr.Load (p.combined, idx)
        else if name = p.guest then begin
          (* insert the extra coordinate at [dim] *)
          let n = Array.length idx in
          let idx' = Array.make (n + 1) (Ixexpr.const host_extent) in
          let j = ref 0 in
          for i = 0 to n do
            if i <> p.dim then begin
              idx'.(i) <- idx.(!j);
              incr j
            end
          done;
          Sexpr.Load (p.combined, idx')
        end
        else Sexpr.Load (name, idx))
      op.Opdef.body
  in
  let inputs =
    List.filter (fun (n, _) -> n <> p.host && n <> p.guest) op.Opdef.inputs
    @ [ (p.combined, combined_shape hs p) ]
  in
  Opdef.make ~name:op.Opdef.name ~inputs ~out_name:op.Opdef.out_name
    ~out_shape:op.Opdef.out_shape ~spatial:op.Opdef.spatial
    ~reduce:op.Opdef.reduce ~combiner:op.Opdef.combiner ~init:op.Opdef.init
    ~body ~window:op.Opdef.window ~complex:op.Opdef.complex
    ~kind:op.Opdef.kind ()

(* Build the combined tensor's logical data from its parts. *)
let pack_combined ~(host_shape : Shape.t) (p : t) ~(host : float array)
    ~(guest : float array) : float array =
  let cs = combined_shape host_shape p in
  let out = Array.make (Shape.num_elements cs) 0.0 in
  let gs =
    Array.of_list
      (List.filteri (fun i _ -> i <> p.dim) (Array.to_list host_shape))
  in
  for off = 0 to Array.length out - 1 do
    let idx = Shape.index_of_offset cs off in
    if idx.(p.dim) < host_shape.(p.dim) then
      out.(off) <- host.(Shape.offset_of_index host_shape idx)
    else begin
      let gidx =
        Array.of_list
          (List.filteri (fun i _ -> i <> p.dim) (Array.to_list idx))
      in
      out.(off) <- guest.(Shape.offset_of_index gs gidx)
    end
  done;
  out

(* Inverse (decouple_at): split the combined logical data back. *)
let unpack_combined ~(host_shape : Shape.t) (p : t)
    (combined : float array) : float array * float array =
  let cs = combined_shape host_shape p in
  if Array.length combined <> Shape.num_elements cs then
    invalid_arg "Placement.unpack_combined: size";
  let gs =
    Array.of_list
      (List.filteri (fun i _ -> i <> p.dim) (Array.to_list host_shape))
  in
  let host = Array.make (Shape.num_elements host_shape) 0.0 in
  let guest = Array.make (Shape.num_elements gs) 0.0 in
  for off = 0 to Array.length combined - 1 do
    let idx = Shape.index_of_offset cs off in
    if idx.(p.dim) < host_shape.(p.dim) then
      host.(Shape.offset_of_index host_shape idx) <- combined.(off)
    else
      let gidx =
        Array.of_list
          (List.filteri (fun i _ -> i <> p.dim) (Array.to_list idx))
      in
      guest.(Shape.offset_of_index gs gidx) <- combined.(off)
  done;
  (host, guest)
