(** Operator library: constructors for every operator used in the
    evaluation.

    Complex operators (the nine of Fig. 9) are marked [complex] and carry
    the {!Alt_ir.Opdef.kind} metadata the layout templates need.  Logical
    dimension conventions: convolutions are
    [output [N;O;spatial...]], [input [N;I;spatial_in...]],
    [weight [O;I;kernel...]]; GMM is [C [M;N] = A [M;K] x B [K;N]].
    Convolution constructors take {e output} spatial sizes; [in_*]
    overrides allow an oversized input (e.g. subsampling 1x1 stride-2
    convolutions). *)

module Shape = Alt_tensor.Shape
module Opdef = Alt_ir.Opdef

val conv_in_extent : out:int -> kernel:int -> stride:int -> dilation:int -> int

(** {1 Complex operators} *)

val c2d :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> i:int ->
  o:int -> h:int -> w:int -> kh:int -> kw:int -> ?stride:int ->
  ?dilation:int -> ?in_h:int -> ?in_w:int -> unit -> Opdef.t

val dil :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> i:int ->
  o:int -> h:int -> w:int -> kh:int -> kw:int -> ?stride:int ->
  ?dilation:int -> ?in_h:int -> ?in_w:int -> unit -> Opdef.t
(** Dilated convolution (defaults to dilation 2). *)

val grp :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> i:int ->
  o:int -> h:int -> w:int -> kh:int -> kw:int -> groups:int -> ?stride:int ->
  unit -> Opdef.t

val dep :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> c:int ->
  h:int -> w:int -> kh:int -> kw:int -> ?stride:int -> ?in_h:int ->
  ?in_w:int -> unit -> Opdef.t
(** Depthwise convolution (weight [C;KH;KW]). *)

val t2d :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> i:int ->
  o:int -> h:int -> w:int -> kh:int -> kw:int -> unit -> Opdef.t
(** Transposed convolution, stride 1 (flipped-kernel correlation over an
    input padded by k-1; weight [I;O;KH;KW]). *)

val c1d :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> i:int ->
  o:int -> w:int -> kw:int -> ?stride:int -> unit -> Opdef.t

val c3d :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> i:int ->
  o:int -> d:int -> h:int -> w:int -> kd:int -> kh:int -> kw:int ->
  ?stride:int -> ?in_d:int -> ?in_h:int -> ?in_w:int -> unit -> Opdef.t

val t3d :
  name:string -> inp:string -> ker:string -> out:string -> n:int -> i:int ->
  o:int -> d:int -> h:int -> w:int -> kd:int -> kh:int -> kw:int -> unit ->
  Opdef.t

val gmm :
  name:string -> a:string -> b:string -> out:string -> m:int -> k:int ->
  n:int -> unit -> Opdef.t

val bmm :
  name:string -> a:string -> b:string -> out:string -> batch:int -> m:int ->
  k:int -> n:int -> unit -> Opdef.t

(** {1 Elementwise operators} *)

val unary :
  name:string -> inp:string -> out:string -> shape:Shape.t ->
  Alt_ir.Sexpr.unop -> Opdef.t

val relu : name:string -> inp:string -> out:string -> shape:Shape.t -> unit -> Opdef.t
val gelu : name:string -> inp:string -> out:string -> shape:Shape.t -> unit -> Opdef.t

val binary :
  name:string -> a:string -> b:string -> out:string -> shape:Shape.t ->
  Alt_ir.Sexpr.binop -> Opdef.t

val add :
  name:string -> a:string -> b:string -> out:string -> shape:Shape.t ->
  unit -> Opdef.t

val bias_add :
  name:string -> inp:string -> bias:string -> out:string -> shape:Shape.t ->
  dim:int -> unit -> Opdef.t

val scale :
  name:string -> inp:string -> out:string -> shape:Shape.t -> factor:float ->
  unit -> Opdef.t

(** {1 Padding} *)

val pad2d :
  name:string -> inp:string -> out:string -> n:int -> c:int -> h:int ->
  w:int -> pad:int -> ?pad_hi:int -> unit -> Opdef.t
(** Zero padding of the trailing spatial dims; [pad_hi] defaults to [pad]
    (asymmetric padding serves stride-2 convolutions). *)

val pad3d :
  name:string -> inp:string -> out:string -> n:int -> c:int -> d:int ->
  h:int -> w:int -> pad:int -> ?pad_hi:int -> unit -> Opdef.t

val pad1d :
  name:string -> inp:string -> out:string -> n:int -> c:int -> w:int ->
  pad:int -> unit -> Opdef.t

(** {1 Pooling and reductions} *)

val maxpool2d :
  name:string -> inp:string -> out:string -> n:int -> c:int -> h:int ->
  w:int -> k:int -> ?stride:int -> unit -> Opdef.t

val global_avgpool :
  name:string -> inp:string -> out:string -> n:int -> c:int -> h:int ->
  w:int -> unit -> Opdef.t

val global_avgpool3d :
  name:string -> inp:string -> out:string -> n:int -> c:int -> d:int ->
  h:int -> w:int -> unit -> Opdef.t

val rowmax :
  name:string -> inp:string -> out:string -> lead:Shape.t -> n:int -> unit ->
  Opdef.t
(** Reduce the last dim; [lead] are the leading dims kept. *)

val rowsum :
  name:string -> inp:string -> out:string -> lead:Shape.t -> n:int ->
  ?scale:float -> unit -> Opdef.t

val rowvar :
  name:string -> inp:string -> mean:string -> out:string -> lead:Shape.t ->
  n:int -> unit -> Opdef.t

(** {1 Softmax / normalization pieces} *)

val exp_sub :
  name:string -> inp:string -> row:string -> out:string -> lead:Shape.t ->
  n:int -> unit -> Opdef.t

val div_rows :
  name:string -> inp:string -> row:string -> out:string -> lead:Shape.t ->
  n:int -> unit -> Opdef.t

val normalize_rows :
  name:string -> inp:string -> mean:string -> var:string -> out:string ->
  lead:Shape.t -> n:int -> ?eps:float -> unit -> Opdef.t

(** {1 Attention head plumbing} *)

val split_heads :
  name:string -> inp:string -> out:string -> s:int -> h:int -> heads:int ->
  unit -> Opdef.t
(** [S;H] -> [A;S;H/A]. *)

val split_heads_t :
  name:string -> inp:string -> out:string -> s:int -> h:int -> heads:int ->
  unit -> Opdef.t
(** [S;H] -> [A;H/A;S] (transposed keys). *)

val merge_heads :
  name:string -> inp:string -> out:string -> s:int -> h:int -> heads:int ->
  unit -> Opdef.t
(** [A;S;H/A] -> [S;H]. *)
