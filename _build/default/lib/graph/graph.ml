(* Computational graphs: operators as nodes, tensors as edges.

   Tensors are identified by unique names.  A tensor is either a graph
   input, a parameter (constant weight, packable offline for free), or the
   output of exactly one node.  Nodes are kept in topological order by
   construction.  The [reference_execute] interpreter evaluates the whole
   graph naively over logical buffers and is the end-to-end correctness
   oracle for compiled/tuned executions. *)

module Shape = Alt_tensor.Shape
module Buffer = Alt_tensor.Buffer
module Opdef = Alt_ir.Opdef

type node = { nid : int; op : Opdef.t }

type t = {
  inputs : (string * Shape.t) list;
  params : (string * Shape.t) list;
  nodes : node array; (* topological *)
  outputs : string list;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable b_inputs : (string * Shape.t) list;
  mutable b_params : (string * Shape.t) list;
  mutable b_nodes : node list; (* reversed *)
  mutable b_shapes : (string * Shape.t) list; (* every known tensor *)
  mutable b_next : int;
}

let builder () =
  { b_inputs = []; b_params = []; b_nodes = []; b_shapes = []; b_next = 0 }

let declare b name shape =
  if List.mem_assoc name b.b_shapes then
    invalid_arg (Fmt.str "Graph: duplicate tensor name %s" name);
  b.b_shapes <- (name, shape) :: b.b_shapes

let input b name shape =
  declare b name shape;
  b.b_inputs <- b.b_inputs @ [ (name, shape) ];
  name

let param b name shape =
  declare b name shape;
  b.b_params <- b.b_params @ [ (name, shape) ];
  name

let add b (op : Opdef.t) =
  List.iter
    (fun (n, s) ->
      match List.assoc_opt n b.b_shapes with
      | Some s' when Shape.equal s s' -> ()
      | Some s' ->
          invalid_arg
            (Fmt.str "Graph: op %s expects %s%a but tensor is %a" op.Opdef.name
               n Shape.pp s Shape.pp s')
      | None ->
          invalid_arg
            (Fmt.str "Graph: op %s reads unknown tensor %s" op.Opdef.name n))
    op.Opdef.inputs;
  declare b op.Opdef.out_name op.Opdef.out_shape;
  let nid = b.b_next in
  b.b_next <- nid + 1;
  b.b_nodes <- { nid; op } :: b.b_nodes;
  op.Opdef.out_name

let finish b ~outputs =
  let shapes = b.b_shapes in
  List.iter
    (fun o ->
      if not (List.mem_assoc o shapes) then
        invalid_arg (Fmt.str "Graph: unknown output tensor %s" o))
    outputs;
  {
    inputs = b.b_inputs;
    params = b.b_params;
    nodes = Array.of_list (List.rev b.b_nodes);
    outputs;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let producer g name =
  Array.to_seq g.nodes
  |> Seq.find (fun n -> n.op.Opdef.out_name = name)

let consumers g name =
  Array.to_list g.nodes
  |> List.filter (fun n -> List.mem_assoc name n.op.Opdef.inputs)

let is_input g name = List.mem_assoc name g.inputs
let is_param g name = List.mem_assoc name g.params

let tensor_shape g name =
  match List.assoc_opt name g.inputs with
  | Some s -> s
  | None -> (
      match List.assoc_opt name g.params with
      | Some s -> s
      | None -> (
          match producer g name with
          | Some n -> n.op.Opdef.out_shape
          | None -> invalid_arg (Fmt.str "Graph.tensor_shape: unknown %s" name)))

let complex_nodes g =
  Array.to_list g.nodes |> List.filter (fun n -> n.op.Opdef.complex)

let total_flops g =
  Array.fold_left (fun acc n -> acc + Opdef.flops n.op) 0 g.nodes

(* ------------------------------------------------------------------ *)
(* Reference execution                                                *)
(* ------------------------------------------------------------------ *)

let reference_execute g ~(feeds : (string * float array) list) :
    (string * float array) list =
  let env = Hashtbl.create 64 in
  List.iter (fun (n, a) -> Hashtbl.replace env n a) feeds;
  List.iter
    (fun (n, _) ->
      if not (Hashtbl.mem env n) then
        invalid_arg (Fmt.str "Graph.reference_execute: missing feed %s" n))
    (g.inputs @ g.params);
  Array.iter
    (fun node ->
      let ins =
        List.map
          (fun (n, _) -> (n, Hashtbl.find env n))
          node.op.Opdef.inputs
      in
      Hashtbl.replace env node.op.Opdef.out_name
        (Opdef.reference_eval node.op ins))
    g.nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) env []

(* Deterministic random feeds for all inputs and params. *)
let random_feeds ?(seed = 42) g : (string * float array) list =
  List.mapi
    (fun i (n, s) -> (n, Buffer.random ~seed:(seed + i) s))
    (g.inputs @ g.params)

let pp ppf g =
  Fmt.pf ppf "graph: %d inputs, %d params, %d nodes, outputs [%a]@."
    (List.length g.inputs) (List.length g.params) (Array.length g.nodes)
    Fmt.(list ~sep:comma string)
    g.outputs;
  Array.iter
    (fun n ->
      Fmt.pf ppf "  %3d: %s -> %s %a%s@." n.nid n.op.Opdef.name
        n.op.Opdef.out_name Shape.pp n.op.Opdef.out_shape
        (if n.op.Opdef.complex then " [complex]" else ""))
    g.nodes
