(* Operator library: constructors for every operator the evaluation uses.

   Complex operators (Section 5.1) — the nine of Fig. 9: C2D, GRP
   (group-wise), DEP (depth-wise), DIL (dilated), C3D, C1D, GMM (+ batched
   GMM), T2D, T3D — are marked [complex = true]; their tensors receive
   layout tuning spaces.  Everything else (padding, bias, activations,
   pooling, normalization pieces) is "simple" and participates through
   layout propagation only.

   Logical dimension conventions (layouts reorder the *storage*, not these):
     convolutions:  output [N; O; H; W (; D before H for 3-D)]
                    input  [N; I; H_in; W_in]
                    weight [O; I; KH; KW]
     GMM:           C [M; N],  A [M; K],  B [K; N]
   Convolution operators take *output* spatial sizes; the input must have
   the matching [stride*(s-1) + dilation*(k-1) + 1] extent (explicit [pad2d]
   operators produce it, so operator bodies stay guard-free). *)

module Shape = Alt_tensor.Shape
module Var = Alt_tensor.Var
module Ixexpr = Alt_tensor.Ixexpr
module Opdef = Alt_ir.Opdef
module Sexpr = Alt_ir.Sexpr

let fv = Var.fresh
let ( %* ) c v = Ixexpr.mul (Ixexpr.const c) (Ixexpr.var v)
let ( %+ ) = Ixexpr.add
let iv = Ixexpr.var
let ic = Ixexpr.const

let conv_in_extent ~out ~kernel ~stride ~dilation =
  (stride * (out - 1)) + (dilation * (kernel - 1)) + 1

(* ------------------------------------------------------------------ *)
(* 2-D convolution family                                             *)
(* ------------------------------------------------------------------ *)

let c2d ~name ~inp ~ker ~out ~n ~i ~o ~h ~w ~kh ~kw ?(stride = 1)
    ?(dilation = 1) ?in_h ?in_w () =
  (* [in_h]/[in_w] may exceed the minimal extent (e.g. 1x1 stride-2 convs
     subsample their input); accesses never exceed the minimal extent. *)
  let need_h = conv_in_extent ~out:h ~kernel:kh ~stride ~dilation in
  let need_w = conv_in_extent ~out:w ~kernel:kw ~stride ~dilation in
  let hi = Option.value in_h ~default:need_h in
  let wi = Option.value in_w ~default:need_w in
  if hi < need_h || wi < need_w then invalid_arg "Ops.c2d: input too small";
  let vn = fv "n" and vo = fv "o" and vh = fv "h" and vw = fv "w" in
  let ri = fv "ri" and rh = fv "rh" and rw = fv "rw" in
  let body =
    Sexpr.(
      load inp
        [|
          iv vn; iv ri; (stride %* vh) %+ (dilation %* rh);
          (stride %* vw) %+ (dilation %* rw);
        |]
      *. load ker [| iv vo; iv ri; iv rh; iv rw |])
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; i; hi; wi |]); (ker, [| o; i; kh; kw |]) ]
    ~out_name:out ~out_shape:[| n; o; h; w |]
    ~spatial:[| vn; vo; vh; vw |]
    ~reduce:[ (ri, i); (rh, kh); (rw, kw) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~window:[ (vh, stride); (vw, stride) ]
    ~complex:true
    ~kind:
      (Opdef.Conv
         {
           inp;
           ker;
           out_channel_dim = 1;
           inp_channel_dim = 1;
           ker_out_dim = 0;
           ker_in_dim = Some 1;
           spatials =
             [
               { Opdef.out_dim = 2; inp_dim = 2; kernel = kh; stride; dilation };
               { Opdef.out_dim = 3; inp_dim = 3; kernel = kw; stride; dilation };
             ];
         })
    ()

let dil ~name ~inp ~ker ~out ~n ~i ~o ~h ~w ~kh ~kw ?(stride = 1)
    ?(dilation = 2) ?in_h ?in_w () =
  c2d ~name ~inp ~ker ~out ~n ~i ~o ~h ~w ~kh ~kw ~stride ~dilation ?in_h
    ?in_w ()

let grp ~name ~inp ~ker ~out ~n ~i ~o ~h ~w ~kh ~kw ~groups ?(stride = 1) () =
  if i mod groups <> 0 || o mod groups <> 0 then
    invalid_arg "Ops.grp: channels not divisible by groups";
  let ig = i / groups and og = o / groups in
  let hi = conv_in_extent ~out:h ~kernel:kh ~stride ~dilation:1 in
  let wi = conv_in_extent ~out:w ~kernel:kw ~stride ~dilation:1 in
  let vn = fv "n" and vo = fv "o" and vh = fv "h" and vw = fv "w" in
  let ri = fv "ri" and rh = fv "rh" and rw = fv "rw" in
  (* group of output channel o is o / og; its input channels start at
     (o / og) * ig *)
  let in_chan = Ixexpr.add (Ixexpr.mul (Ixexpr.div (iv vo) (ic og)) (ic ig)) (iv ri) in
  let body =
    Sexpr.(
      load inp
        [| iv vn; in_chan; (stride %* vh) %+ iv rh; (stride %* vw) %+ iv rw |]
      *. load ker [| iv vo; iv ri; iv rh; iv rw |])
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; i; hi; wi |]); (ker, [| o; ig; kh; kw |]) ]
    ~out_name:out ~out_shape:[| n; o; h; w |]
    ~spatial:[| vn; vo; vh; vw |]
    ~reduce:[ (ri, ig); (rh, kh); (rw, kw) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~window:[ (vh, stride); (vw, stride) ]
    ~complex:true
    ~kind:
      (Opdef.Conv
         {
           inp;
           ker;
           out_channel_dim = 1;
           inp_channel_dim = 1;
           ker_out_dim = 0;
           ker_in_dim = Some 1;
           spatials =
             [
               { Opdef.out_dim = 2; inp_dim = 2; kernel = kh; stride; dilation = 1 };
               { Opdef.out_dim = 3; inp_dim = 3; kernel = kw; stride; dilation = 1 };
             ];
         })
    ()

let dep ~name ~inp ~ker ~out ~n ~c ~h ~w ~kh ~kw ?(stride = 1) ?in_h ?in_w () =
  let need_h = conv_in_extent ~out:h ~kernel:kh ~stride ~dilation:1 in
  let need_w = conv_in_extent ~out:w ~kernel:kw ~stride ~dilation:1 in
  let hi = Option.value in_h ~default:need_h in
  let wi = Option.value in_w ~default:need_w in
  if hi < need_h || wi < need_w then invalid_arg "Ops.dep: input too small";
  let vn = fv "n" and vc = fv "c" and vh = fv "h" and vw = fv "w" in
  let rh = fv "rh" and rw = fv "rw" in
  let body =
    Sexpr.(
      load inp
        [| iv vn; iv vc; (stride %* vh) %+ iv rh; (stride %* vw) %+ iv rw |]
      *. load ker [| iv vc; iv rh; iv rw |])
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; c; hi; wi |]); (ker, [| c; kh; kw |]) ]
    ~out_name:out ~out_shape:[| n; c; h; w |]
    ~spatial:[| vn; vc; vh; vw |]
    ~reduce:[ (rh, kh); (rw, kw) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~window:[ (vh, stride); (vw, stride) ]
    ~complex:true
    ~kind:
      (Opdef.Conv
         {
           inp;
           ker;
           out_channel_dim = 1;
           inp_channel_dim = 1;
           ker_out_dim = 0;
           ker_in_dim = None;
           spatials =
             [
               { Opdef.out_dim = 2; inp_dim = 2; kernel = kh; stride; dilation = 1 };
               { Opdef.out_dim = 3; inp_dim = 3; kernel = kw; stride; dilation = 1 };
             ];
         })
    ()

(* Transposed 2-D convolution, stride 1: correlation with a flipped kernel
   over an input padded by (k-1) on each side (the caller pads).  Weight is
   stored [I; O; KH; KW] as in deconvolution layers. *)
let t2d ~name ~inp ~ker ~out ~n ~i ~o ~h ~w ~kh ~kw () =
  let hi = h + kh - 1 and wi = w + kw - 1 in
  let vn = fv "n" and vo = fv "o" and vh = fv "h" and vw = fv "w" in
  let ri = fv "ri" and rh = fv "rh" and rw = fv "rw" in
  let body =
    Sexpr.(
      load inp [| iv vn; iv ri; iv vh %+ iv rh; iv vw %+ iv rw |]
      *. load ker
           [|
             iv ri; iv vo;
             Ixexpr.sub (ic (kh - 1)) (iv rh);
             Ixexpr.sub (ic (kw - 1)) (iv rw);
           |])
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; i; hi; wi |]); (ker, [| i; o; kh; kw |]) ]
    ~out_name:out ~out_shape:[| n; o; h; w |]
    ~spatial:[| vn; vo; vh; vw |]
    ~reduce:[ (ri, i); (rh, kh); (rw, kw) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~window:[ (vh, 1); (vw, 1) ]
    ~complex:true
    ~kind:
      (Opdef.Conv
         {
           inp;
           ker;
           out_channel_dim = 1;
           inp_channel_dim = 1;
           ker_out_dim = 1;
           ker_in_dim = Some 0;
           spatials =
             [
               { Opdef.out_dim = 2; inp_dim = 2; kernel = kh; stride = 1; dilation = 1 };
               { Opdef.out_dim = 3; inp_dim = 3; kernel = kw; stride = 1; dilation = 1 };
             ];
         })
    ()

(* ------------------------------------------------------------------ *)
(* 1-D / 3-D convolutions                                             *)
(* ------------------------------------------------------------------ *)

let c1d ~name ~inp ~ker ~out ~n ~i ~o ~w ~kw ?(stride = 1) () =
  let wi = conv_in_extent ~out:w ~kernel:kw ~stride ~dilation:1 in
  let vn = fv "n" and vo = fv "o" and vw = fv "w" in
  let ri = fv "ri" and rw = fv "rw" in
  let body =
    Sexpr.(
      load inp [| iv vn; iv ri; (stride %* vw) %+ iv rw |]
      *. load ker [| iv vo; iv ri; iv rw |])
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; i; wi |]); (ker, [| o; i; kw |]) ]
    ~out_name:out ~out_shape:[| n; o; w |]
    ~spatial:[| vn; vo; vw |]
    ~reduce:[ (ri, i); (rw, kw) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~window:[ (vw, stride) ]
    ~complex:true
    ~kind:
      (Opdef.Conv
         {
           inp;
           ker;
           out_channel_dim = 1;
           inp_channel_dim = 1;
           ker_out_dim = 0;
           ker_in_dim = Some 1;
           spatials =
             [ { Opdef.out_dim = 2; inp_dim = 2; kernel = kw; stride; dilation = 1 } ];
         })
    ()

let c3d ~name ~inp ~ker ~out ~n ~i ~o ~d ~h ~w ~kd ~kh ~kw ?(stride = 1)
    ?in_d ?in_h ?in_w () =
  let need_d = conv_in_extent ~out:d ~kernel:kd ~stride ~dilation:1 in
  let need_h = conv_in_extent ~out:h ~kernel:kh ~stride ~dilation:1 in
  let need_w = conv_in_extent ~out:w ~kernel:kw ~stride ~dilation:1 in
  let di = Option.value in_d ~default:need_d in
  let hi = Option.value in_h ~default:need_h in
  let wi = Option.value in_w ~default:need_w in
  if di < need_d || hi < need_h || wi < need_w then
    invalid_arg "Ops.c3d: input too small";
  let vn = fv "n" and vo = fv "o" and vd = fv "d" and vh = fv "h"
  and vw = fv "w" in
  let ri = fv "ri" and rd = fv "rd" and rh = fv "rh" and rw = fv "rw" in
  let body =
    Sexpr.(
      load inp
        [|
          iv vn; iv ri; (stride %* vd) %+ iv rd; (stride %* vh) %+ iv rh;
          (stride %* vw) %+ iv rw;
        |]
      *. load ker [| iv vo; iv ri; iv rd; iv rh; iv rw |])
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; i; di; hi; wi |]); (ker, [| o; i; kd; kh; kw |]) ]
    ~out_name:out ~out_shape:[| n; o; d; h; w |]
    ~spatial:[| vn; vo; vd; vh; vw |]
    ~reduce:[ (ri, i); (rd, kd); (rh, kh); (rw, kw) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~window:[ (vd, stride); (vh, stride); (vw, stride) ]
    ~complex:true
    ~kind:
      (Opdef.Conv
         {
           inp;
           ker;
           out_channel_dim = 1;
           inp_channel_dim = 1;
           ker_out_dim = 0;
           ker_in_dim = Some 1;
           spatials =
             [
               { Opdef.out_dim = 2; inp_dim = 2; kernel = kd; stride; dilation = 1 };
               { Opdef.out_dim = 3; inp_dim = 3; kernel = kh; stride; dilation = 1 };
               { Opdef.out_dim = 4; inp_dim = 4; kernel = kw; stride; dilation = 1 };
             ];
         })
    ()

(* Transposed 3-D convolution, stride 1 (see t2d). *)
let t3d ~name ~inp ~ker ~out ~n ~i ~o ~d ~h ~w ~kd ~kh ~kw () =
  let di = d + kd - 1 and hi = h + kh - 1 and wi = w + kw - 1 in
  let vn = fv "n" and vo = fv "o" and vd = fv "d" and vh = fv "h"
  and vw = fv "w" in
  let ri = fv "ri" and rd = fv "rd" and rh = fv "rh" and rw = fv "rw" in
  let body =
    Sexpr.(
      load inp
        [| iv vn; iv ri; iv vd %+ iv rd; iv vh %+ iv rh; iv vw %+ iv rw |]
      *. load ker
           [|
             iv ri; iv vo;
             Ixexpr.sub (ic (kd - 1)) (iv rd);
             Ixexpr.sub (ic (kh - 1)) (iv rh);
             Ixexpr.sub (ic (kw - 1)) (iv rw);
           |])
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; i; di; hi; wi |]); (ker, [| i; o; kd; kh; kw |]) ]
    ~out_name:out ~out_shape:[| n; o; d; h; w |]
    ~spatial:[| vn; vo; vd; vh; vw |]
    ~reduce:[ (ri, i); (rd, kd); (rh, kh); (rw, kw) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body
    ~window:[ (vd, 1); (vh, 1); (vw, 1) ]
    ~complex:true
    ~kind:
      (Opdef.Conv
         {
           inp;
           ker;
           out_channel_dim = 1;
           inp_channel_dim = 1;
           ker_out_dim = 1;
           ker_in_dim = Some 0;
           spatials =
             [
               { Opdef.out_dim = 2; inp_dim = 2; kernel = kd; stride = 1; dilation = 1 };
               { Opdef.out_dim = 3; inp_dim = 3; kernel = kh; stride = 1; dilation = 1 };
               { Opdef.out_dim = 4; inp_dim = 4; kernel = kw; stride = 1; dilation = 1 };
             ];
         })
    ()

(* ------------------------------------------------------------------ *)
(* Matrix multiplication                                              *)
(* ------------------------------------------------------------------ *)

let gmm ~name ~a ~b ~out ~m ~k ~n () =
  let vm = fv "m" and vn = fv "n" in
  let rk = fv "k" in
  let body = Sexpr.(load a [| iv vm; iv rk |] *. load b [| iv rk; iv vn |]) in
  Opdef.make ~name
    ~inputs:[ (a, [| m; k |]); (b, [| k; n |]) ]
    ~out_name:out ~out_shape:[| m; n |] ~spatial:[| vm; vn |]
    ~reduce:[ (rk, k) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body ~complex:true
    ~kind:(Opdef.Matmul { a; b; batched = false })
    ()

let bmm ~name ~a ~b ~out ~batch ~m ~k ~n () =
  let vb = fv "b" and vm = fv "m" and vn = fv "n" in
  let rk = fv "k" in
  let body =
    Sexpr.(load a [| iv vb; iv vm; iv rk |] *. load b [| iv vb; iv rk; iv vn |])
  in
  Opdef.make ~name
    ~inputs:[ (a, [| batch; m; k |]); (b, [| batch; k; n |]) ]
    ~out_name:out ~out_shape:[| batch; m; n |] ~spatial:[| vb; vm; vn |]
    ~reduce:[ (rk, k) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body ~complex:true
    ~kind:(Opdef.Matmul { a; b; batched = true })
    ()

(* ------------------------------------------------------------------ *)
(* Simple (non-complex) operators                                     *)
(* ------------------------------------------------------------------ *)

(* Generic unary elementwise operator over any logical shape. *)
let unary ~name ~inp ~out ~shape op =
  let vars = Array.map (fun _ -> fv "i") shape in
  let idx = Array.map iv vars in
  Opdef.make ~name
    ~inputs:[ (inp, shape) ]
    ~out_name:out ~out_shape:shape ~spatial:vars ~reduce:[]
    ~combiner:Opdef.Assign ~init:0.0
    ~body:(Sexpr.Un (op, Sexpr.load inp idx))
    ()

let relu ~name ~inp ~out ~shape () = unary ~name ~inp ~out ~shape Sexpr.Urelu

let gelu ~name ~inp ~out ~shape () =
  (* tanh approximation: 0.5 x (1 + tanh(0.7978845608 (x + 0.044715 x^3))) *)
  let vars = Array.map (fun _ -> fv "i") shape in
  let idx = Array.map iv vars in
  let x = Sexpr.load inp idx in
  let body =
    Sexpr.(
      fconst 0.5 *. x
      *. (fconst 1.0
         +. Un
              ( Utanh,
                fconst 0.7978845608
                *. (x +. (fconst 0.044715 *. x *. x *. x)) )))
  in
  Opdef.make ~name
    ~inputs:[ (inp, shape) ]
    ~out_name:out ~out_shape:shape ~spatial:vars ~reduce:[]
    ~combiner:Opdef.Assign ~init:0.0 ~body ()

let binary ~name ~a ~b ~out ~shape op =
  let vars = Array.map (fun _ -> fv "i") shape in
  let idx = Array.map iv vars in
  Opdef.make ~name
    ~inputs:[ (a, shape); (b, shape) ]
    ~out_name:out ~out_shape:shape ~spatial:vars ~reduce:[]
    ~combiner:Opdef.Assign ~init:0.0
    ~body:(Sexpr.Bin (op, Sexpr.load a idx, Sexpr.load b idx))
    ()

let add ~name ~a ~b ~out ~shape () = binary ~name ~a ~b ~out ~shape Sexpr.Badd

(* Bias add along dimension [dim] of [shape] (e.g. the channel dim). *)
let bias_add ~name ~inp ~bias ~out ~shape ~dim () =
  let vars = Array.map (fun _ -> fv "i") shape in
  let idx = Array.map iv vars in
  Opdef.make ~name
    ~inputs:[ (inp, shape); (bias, [| shape.(dim) |]) ]
    ~out_name:out ~out_shape:shape ~spatial:vars ~reduce:[]
    ~combiner:Opdef.Assign ~init:0.0
    ~body:Sexpr.(load inp idx +. load bias [| iv vars.(dim) |])
    ()

(* Explicit zero padding of the two trailing spatial dims of [N;C;H;W]
   (or the three trailing dims of 5-D video tensors via [pad3d]). *)
let pad2d ~name ~inp ~out ~n ~c ~h ~w ~pad ?pad_hi () =
  let lo = pad and hi_p = Option.value pad_hi ~default:pad in
  let vn = fv "n" and vc = fv "c" and vh = fv "h" and vw = fv "w" in
  let hh = h + lo + hi_p and ww = w + lo + hi_p in
  let inb e extent =
    Sexpr.And
      ( Sexpr.Cmp (Sexpr.Cge, e, ic 0),
        Sexpr.Cmp (Sexpr.Clt, e, ic extent) )
  in
  let eh = Ixexpr.sub (iv vh) (ic lo) and ew = Ixexpr.sub (iv vw) (ic lo) in
  let body =
    Sexpr.select
      (Sexpr.And (inb eh h, inb ew w))
      (Sexpr.load inp [| iv vn; iv vc; eh; ew |])
      (Sexpr.fconst 0.0)
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; c; h; w |]) ]
    ~out_name:out ~out_shape:[| n; c; hh; ww |]
    ~spatial:[| vn; vc; vh; vw |]
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0 ~body ()

let pad3d ~name ~inp ~out ~n ~c ~d ~h ~w ~pad ?pad_hi () =
  let lo = pad and hi_p = Option.value pad_hi ~default:pad in
  let vn = fv "n" and vc = fv "c" and vd = fv "d" and vh = fv "h"
  and vw = fv "w" in
  let dd = d + lo + hi_p and hh = h + lo + hi_p and ww = w + lo + hi_p in
  let inb e extent =
    Sexpr.And
      (Sexpr.Cmp (Sexpr.Cge, e, ic 0), Sexpr.Cmp (Sexpr.Clt, e, ic extent))
  in
  let ed = Ixexpr.sub (iv vd) (ic lo)
  and eh = Ixexpr.sub (iv vh) (ic lo)
  and ew = Ixexpr.sub (iv vw) (ic lo) in
  let body =
    Sexpr.select
      (Sexpr.And (inb ed d, Sexpr.And (inb eh h, inb ew w)))
      (Sexpr.load inp [| iv vn; iv vc; ed; eh; ew |])
      (Sexpr.fconst 0.0)
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; c; d; h; w |]) ]
    ~out_name:out ~out_shape:[| n; c; dd; hh; ww |]
    ~spatial:[| vn; vc; vd; vh; vw |]
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0 ~body ()

let pad1d ~name ~inp ~out ~n ~c ~w ~pad () =
  let vn = fv "n" and vc = fv "c" and vw = fv "w" in
  let ww = w + (2 * pad) in
  let ew = Ixexpr.sub (iv vw) (ic pad) in
  let body =
    Sexpr.select
      (Sexpr.And
         (Sexpr.Cmp (Sexpr.Cge, ew, ic 0), Sexpr.Cmp (Sexpr.Clt, ew, ic w)))
      (Sexpr.load inp [| iv vn; iv vc; ew |])
      (Sexpr.fconst 0.0)
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; c; w |]) ]
    ~out_name:out ~out_shape:[| n; c; ww |]
    ~spatial:[| vn; vc; vw |]
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0 ~body ()

let maxpool2d ~name ~inp ~out ~n ~c ~h ~w ~k ?(stride = 2) () =
  let hi = conv_in_extent ~out:h ~kernel:k ~stride ~dilation:1 in
  let wi = conv_in_extent ~out:w ~kernel:k ~stride ~dilation:1 in
  let vn = fv "n" and vc = fv "c" and vh = fv "h" and vw = fv "w" in
  let rh = fv "rh" and rw = fv "rw" in
  let body =
    Sexpr.load inp
      [| iv vn; iv vc; (stride %* vh) %+ iv rh; (stride %* vw) %+ iv rw |]
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; c; hi; wi |]) ]
    ~out_name:out ~out_shape:[| n; c; h; w |]
    ~spatial:[| vn; vc; vh; vw |]
    ~reduce:[ (rh, k); (rw, k) ]
    ~combiner:Opdef.Max ~init:Float.neg_infinity ~body
    ~window:[ (vh, stride); (vw, stride) ]
    ()

(* Global average pooling [N;C;H;W] -> [N;C]. *)
let global_avgpool ~name ~inp ~out ~n ~c ~h ~w () =
  let vn = fv "n" and vc = fv "c" in
  let rh = fv "rh" and rw = fv "rw" in
  let inv_hw = 1.0 /. float_of_int (h * w) in
  let body =
    Sexpr.(load inp [| iv vn; iv vc; iv rh; iv rw |] *. fconst inv_hw)
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; c; h; w |]) ]
    ~out_name:out ~out_shape:[| n; c |] ~spatial:[| vn; vc |]
    ~reduce:[ (rh, h); (rw, w) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body ()

(* Row-wise reductions over the last dim of a tensor with leading dims
   [lead] (e.g. [|m|] for matrices, [|heads; s|] for attention scores). *)
let rowmax ~name ~inp ~out ~lead ~n () =
  let vs = Array.map (fun _ -> fv "i") lead in
  let rn = fv "rn" in
  Opdef.make ~name
    ~inputs:[ (inp, Array.append lead [| n |]) ]
    ~out_name:out ~out_shape:lead ~spatial:vs
    ~reduce:[ (rn, n) ]
    ~combiner:Opdef.Max ~init:Float.neg_infinity
    ~body:(Sexpr.load inp (Array.append (Array.map iv vs) [| iv rn |]))
    ()

let rowsum ~name ~inp ~out ~lead ~n ?(scale = 1.0) () =
  let vs = Array.map (fun _ -> fv "i") lead in
  let rn = fv "rn" in
  Opdef.make ~name
    ~inputs:[ (inp, Array.append lead [| n |]) ]
    ~out_name:out ~out_shape:lead ~spatial:vs
    ~reduce:[ (rn, n) ]
    ~combiner:Opdef.Sum ~init:0.0
    ~body:
      Sexpr.(
        load inp (Array.append (Array.map iv vs) [| iv rn |]) *. fconst scale)
    ()

(* out[..,n] = exp(X[..,n] - R[..]) -- the shifted exponent of softmax. *)
let exp_sub ~name ~inp ~row ~out ~lead ~n () =
  let vs = Array.map (fun _ -> fv "i") lead in
  let vn = fv "n" in
  let full = Array.append (Array.map iv vs) [| iv vn |] in
  Opdef.make ~name
    ~inputs:[ (inp, Array.append lead [| n |]); (row, lead) ]
    ~out_name:out
    ~out_shape:(Array.append lead [| n |])
    ~spatial:(Array.append vs [| vn |])
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0
    ~body:Sexpr.(Un (Uexp, load inp full -. load row (Array.map iv vs)))
    ()

(* out[..,n] = X[..,n] * recip(R[..]) -- softmax normalization. *)
let div_rows ~name ~inp ~row ~out ~lead ~n () =
  let vs = Array.map (fun _ -> fv "i") lead in
  let vn = fv "n" in
  let full = Array.append (Array.map iv vs) [| iv vn |] in
  Opdef.make ~name
    ~inputs:[ (inp, Array.append lead [| n |]); (row, lead) ]
    ~out_name:out
    ~out_shape:(Array.append lead [| n |])
    ~spatial:(Array.append vs [| vn |])
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0
    ~body:Sexpr.(load inp full *. Un (Urecip, load row (Array.map iv vs)))
    ()

(* out[..,n] = (X[..,n] - Mu[..]) * recip(sqrt(Var[..] + eps)) -- layernorm. *)
let normalize_rows ~name ~inp ~mean ~var ~out ~lead ~n ?(eps = 1e-5) () =
  let vs = Array.map (fun _ -> fv "i") lead in
  let vn = fv "n" in
  let full = Array.append (Array.map iv vs) [| iv vn |] in
  let x = Sexpr.load inp full in
  let mu = Sexpr.load mean (Array.map iv vs) in
  let va = Sexpr.load var (Array.map iv vs) in
  Opdef.make ~name
    ~inputs:[ (inp, Array.append lead [| n |]); (mean, lead); (var, lead) ]
    ~out_name:out
    ~out_shape:(Array.append lead [| n |])
    ~spatial:(Array.append vs [| vn |])
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0
    ~body:Sexpr.((x -. mu) *. Un (Urecip, Un (Usqrt, va +. fconst eps)))
    ()

(* Var[..] = sum_n (X[..,n]-Mu[..])^2 / n *)
let rowvar ~name ~inp ~mean ~out ~lead ~n () =
  let vs = Array.map (fun _ -> fv "i") lead in
  let rn = fv "rn" in
  let full = Array.append (Array.map iv vs) [| iv rn |] in
  let d = Sexpr.(load inp full -. load mean (Array.map iv vs)) in
  Opdef.make ~name
    ~inputs:[ (inp, Array.append lead [| n |]); (mean, lead) ]
    ~out_name:out ~out_shape:lead ~spatial:vs
    ~reduce:[ (rn, n) ]
    ~combiner:Opdef.Sum ~init:0.0
    ~body:
      (let inv_n = 1.0 /. float_of_int n in
       Sexpr.(d *. d *. fconst inv_n))
    ()

(* ------------------------------------------------------------------ *)
(* Attention head plumbing (index-shuffling Assign operators)          *)
(* ------------------------------------------------------------------ *)

(* [S; H] -> [A; S; H/A] *)
let split_heads ~name ~inp ~out ~s ~h ~heads () =
  if h mod heads <> 0 then invalid_arg "Ops.split_heads";
  let dh = h / heads in
  let va = fv "a" and vs = fv "s" and vd = fv "d" in
  Opdef.make ~name
    ~inputs:[ (inp, [| s; h |]) ]
    ~out_name:out ~out_shape:[| heads; s; dh |]
    ~spatial:[| va; vs; vd |]
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0
    ~body:
      (Sexpr.load inp
         [| iv vs; Ixexpr.add (Ixexpr.mul (iv va) (ic dh)) (iv vd) |])
    ()

(* [S; H] -> [A; H/A; S] (transposed, for attention keys) *)
let split_heads_t ~name ~inp ~out ~s ~h ~heads () =
  if h mod heads <> 0 then invalid_arg "Ops.split_heads_t";
  let dh = h / heads in
  let va = fv "a" and vd = fv "d" and vs = fv "s" in
  Opdef.make ~name
    ~inputs:[ (inp, [| s; h |]) ]
    ~out_name:out ~out_shape:[| heads; dh; s |]
    ~spatial:[| va; vd; vs |]
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0
    ~body:
      (Sexpr.load inp
         [| iv vs; Ixexpr.add (Ixexpr.mul (iv va) (ic dh)) (iv vd) |])
    ()

(* [A; S; H/A] -> [S; H] *)
let merge_heads ~name ~inp ~out ~s ~h ~heads () =
  if h mod heads <> 0 then invalid_arg "Ops.merge_heads";
  let dh = h / heads in
  let vs = fv "s" and vh = fv "h" in
  Opdef.make ~name
    ~inputs:[ (inp, [| heads; s; dh |]) ]
    ~out_name:out ~out_shape:[| s; h |] ~spatial:[| vs; vh |]
    ~reduce:[] ~combiner:Opdef.Assign ~init:0.0
    ~body:
      (Sexpr.load inp
         [| Ixexpr.div (iv vh) (ic dh); iv vs; Ixexpr.mod_ (iv vh) (ic dh) |])
    ()

(* Scale every element by a constant. *)
let scale ~name ~inp ~out ~shape ~factor () =
  let vars = Array.map (fun _ -> fv "i") shape in
  let idx = Array.map iv vars in
  Opdef.make ~name
    ~inputs:[ (inp, shape) ]
    ~out_name:out ~out_shape:shape ~spatial:vars ~reduce:[]
    ~combiner:Opdef.Assign ~init:0.0
    ~body:Sexpr.(load inp idx *. fconst factor)
    ()

(* Global average pooling for video tensors: [N;C;D;H;W] -> [N;C]. *)
let global_avgpool3d ~name ~inp ~out ~n ~c ~d ~h ~w () =
  let vn = fv "n" and vc = fv "c" in
  let rd = fv "rd" and rh = fv "rh" and rw = fv "rw" in
  let inv = 1.0 /. float_of_int (d * h * w) in
  let body =
    Sexpr.(load inp [| iv vn; iv vc; iv rd; iv rh; iv rw |] *. fconst inv)
  in
  Opdef.make ~name
    ~inputs:[ (inp, [| n; c; d; h; w |]) ]
    ~out_name:out ~out_shape:[| n; c |] ~spatial:[| vn; vc |]
    ~reduce:[ (rd, d); (rh, h); (rw, w) ]
    ~combiner:Opdef.Sum ~init:0.0 ~body ()
