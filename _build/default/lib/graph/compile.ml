(* End-to-end graph compilation and execution.

   Turns a propagation [plan] plus per-operator loop schedules into a list
   of lowered programs (one per stage), then executes them in order against
   a tensor environment, accumulating simulated latency.  A tensor may be
   materialized in several layouts at once (its storage layout plus
   conversion results); stages select the materialization whose layout
   matches what they were planned to read. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Buffer = Alt_tensor.Buffer
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Program = Alt_ir.Program
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler

type compiled_stage = {
  stage : Propagate.stage;
  prog : Program.t;
  label : string;
}

type compiled = {
  graph : Graph.t;
  plan : Propagate.plan;
  stages : compiled_stage list;
}

(* Default schedule for simple stages: parallel outer loop + vectorized
   innermost — what any baseline compiler does for elementwise code. *)
let simple_schedule ~rank ~nred =
  let s = Schedule.default ~rank ~nred in
  let s = Schedule.vectorize s in
  Schedule.parallel s 1

let compile ?(schedules : (string * Schedule.t) list = []) (g : Graph.t)
    (plan : Propagate.plan) : compiled =
  let storage name =
    match List.assoc_opt name plan.Propagate.storage with
    | Some l -> l
    | None -> Layout.create (Graph.tensor_shape g name)
  in
  let stages =
    List.map
      (fun (stage : Propagate.stage) ->
        match stage with
        | Propagate.Convert { tensor; src; dst } ->
            {
              stage;
              prog = Lower.conversion ~name:("convert." ^ tensor) ~src ~dst ();
              label = "convert." ^ tensor;
            }
        | Propagate.Complex_stage { node; out_layout; in_layouts; fused } ->
            let op = node.Graph.op in
            let layouts name =
              match List.assoc_opt name in_layouts with
              | Some l -> l
              | None -> storage name
            in
            let schedule =
              match List.assoc_opt op.Opdef.name schedules with
              | Some s -> s
              | None ->
                  simple_schedule
                    ~rank:(Shape.rank (Layout.physical_shape out_layout))
                    ~nred:(List.length op.Opdef.reduce)
            in
            let fused =
              List.map
                (fun (c : Graph.node) ->
                  {
                    Lower.fop = c.Graph.op;
                    fout_layout = storage c.Graph.op.Opdef.out_name;
                  })
                fused
            in
            {
              stage;
              prog = Lower.lower ~op ~layouts ~out_layout ~fused ~schedule ();
              label = op.Opdef.name;
            }
        | Propagate.Simple_stage { node; out_layout } ->
            let op = node.Graph.op in
            let layouts name = storage name in
            let prog =
              if op.Opdef.combiner = Opdef.Assign then
                Lower.lower_assign_to ~op ~layouts ~out_layout ~parallel:1 ()
              else
                Lower.lower ~op ~layouts ~out_layout
                  ~schedule:
                    (simple_schedule
                       ~rank:(Shape.rank (Layout.physical_shape out_layout))
                       ~nred:(List.length op.Opdef.reduce))
                  ()
            in
            { stage; prog; label = op.Opdef.name })
      plan.Propagate.stages
  in
  { graph = g; plan; stages }

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

type exec_result = {
  latency_ms : float;
  per_stage : (string * Profiler.result) list;
  outputs : (string * float array) list; (* logical; valid when unsampled *)
  sampled : bool;
}

let execute ?(machine = Machine.intel_cpu) ?max_points (c : compiled)
    ~(feeds : (string * float array) list) : exec_result =
  let g = c.graph in
  (* env: tensor name -> materializations *)
  let env : (string, (Layout.t * float array) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let add name layout data =
    let prev = try Hashtbl.find env name with Not_found -> [] in
    Hashtbl.replace env name ((layout, data) :: prev)
  in
  let find name layout =
    match Hashtbl.find_opt env name with
    | None -> invalid_arg (Fmt.str "Compile.execute: tensor %s not materialized" name)
    | Some ms -> (
        match List.find_opt (fun (l, _) -> Layout.equal l layout) ms with
        | Some (_, d) -> d
        | None ->
            invalid_arg
              (Fmt.str "Compile.execute: %s not available in layout %a" name
                 Layout.pp layout))
  in
  (* Pack graph inputs and parameters in their storage layouts (inputs at
     graph entry; parameters offline — both free, see DESIGN.md). *)
  let storage name =
    match List.assoc_opt name c.plan.Propagate.storage with
    | Some l -> l
    | None -> Layout.create (Graph.tensor_shape g name)
  in
  List.iter
    (fun (name, _) ->
      match List.assoc_opt name feeds with
      | Some logical -> add name (storage name) (Layout.pack (storage name) logical)
      | None -> invalid_arg (Fmt.str "Compile.execute: missing feed %s" name))
    (g.Graph.inputs @ g.Graph.params);
  let per_stage = ref [] in
  let total = ref 0.0 in
  let any_sampled = ref false in
  List.iter
    (fun cs ->
      let prog = cs.prog in
      let bufs =
        Array.map
          (fun (s : Program.slot) ->
            match (cs.stage, s.Program.role) with
            | Propagate.Convert { tensor; src; _ }, Program.Input ->
                find tensor src
            | _, Program.Input -> find s.Program.sname s.Program.layout
            | _, (Program.Output | Program.Temp) ->
                Array.make (Layout.num_physical_elements s.Program.layout) 0.0)
          prog.Program.slots
      in
      let r = Profiler.run ~machine ?max_points prog ~bufs in
      if r.Profiler.sampled then any_sampled := true;
      total := !total +. r.Profiler.latency_ms;
      per_stage := (cs.label, r) :: !per_stage;
      Array.iteri
        (fun i (s : Program.slot) ->
          match (cs.stage, s.Program.role) with
          | Propagate.Convert { tensor; dst; _ }, Program.Output ->
              add tensor dst bufs.(i)
          | _, (Program.Output | Program.Temp) ->
              add s.Program.sname s.Program.layout bufs.(i)
          | _, Program.Input -> ())
        prog.Program.slots)
    c.stages;
  let outputs =
    List.map
      (fun name ->
        match Hashtbl.find_opt env name with
        | Some ((l, d) :: _) -> (name, Layout.unpack l d)
        | _ -> invalid_arg (Fmt.str "Compile.execute: no output %s" name))
      g.Graph.outputs
  in
  {
    latency_ms = !total;
    per_stage = List.rev !per_stage;
    outputs;
    sampled = !any_sampled;
  }

(* Convenience: plan with trivial choices for each complex op (used by
   loop-only baselines that keep default layouts). *)
let trivial_choices ?(out_perm : int array option) (g : Graph.t) :
    (string * Propagate.choice) list =
  List.map
    (fun (n : Graph.node) ->
      let op = n.Graph.op in
      let out_shape = op.Opdef.out_shape in
      let out_layout =
        match out_perm with
        | Some p when Array.length p = Shape.rank out_shape ->
            Layout.reorder (Layout.create out_shape) p
        | _ -> Layout.create out_shape
      in
      ( op.Opdef.name,
        {
          Propagate.out_layout;
          in_layouts =
            List.map (fun (t, s) -> (t, Layout.create s)) op.Opdef.inputs;
        } ))
    (Graph.complex_nodes g)
