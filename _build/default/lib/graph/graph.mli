(** Computational graphs: operators as nodes, tensors as edges.

    Tensors are unique names; each is a graph input, a parameter (constant,
    packable offline), or the output of exactly one node.  Nodes are kept
    in topological order by construction. *)

module Shape = Alt_tensor.Shape
module Opdef = Alt_ir.Opdef

type node = { nid : int; op : Opdef.t }

type t = {
  inputs : (string * Shape.t) list;
  params : (string * Shape.t) list;
  nodes : node array; (* topological *)
  outputs : string list;
}

(** {1 Builder} *)

type builder

val builder : unit -> builder
val input : builder -> string -> Shape.t -> string
val param : builder -> string -> Shape.t -> string

val add : builder -> Opdef.t -> string
(** Adds a node; validates input names/shapes; returns the output name. *)

val finish : builder -> outputs:string list -> t

(** {1 Queries} *)

val producer : t -> string -> node option
val consumers : t -> string -> node list
val is_input : t -> string -> bool
val is_param : t -> string -> bool
val tensor_shape : t -> string -> Shape.t
val complex_nodes : t -> node list
val total_flops : t -> int

(** {1 Execution} *)

val reference_execute :
  t -> feeds:(string * float array) list -> (string * float array) list
(** Naive interpretation of the whole graph over logical buffers; the
    end-to-end correctness oracle. *)

val random_feeds : ?seed:int -> t -> (string * float array) list
(** Deterministic random data for all inputs and parameters. *)

val pp : t Fmt.t
