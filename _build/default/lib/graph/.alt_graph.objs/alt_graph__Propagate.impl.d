lib/graph/propagate.ml: Alt_ir Alt_tensor Array Fmt Graph Hashtbl List
