lib/graph/compile.ml: Alt_ir Alt_machine Alt_tensor Array Fmt Graph Hashtbl List Propagate
