lib/graph/ops.mli: Alt_ir Alt_tensor
