lib/graph/placement.ml: Alt_ir Alt_tensor Array Fmt List
