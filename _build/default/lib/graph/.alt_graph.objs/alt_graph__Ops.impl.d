lib/graph/ops.ml: Alt_ir Alt_tensor Array Float Option
