lib/graph/placement.mli: Alt_ir Alt_tensor
