lib/graph/graph.mli: Alt_ir Alt_tensor Fmt
