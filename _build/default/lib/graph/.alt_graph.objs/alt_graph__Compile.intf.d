lib/graph/compile.mli: Alt_ir Alt_machine Alt_tensor Graph Propagate
