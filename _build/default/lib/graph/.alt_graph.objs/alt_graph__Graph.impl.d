lib/graph/graph.ml: Alt_ir Alt_tensor Array Fmt Hashtbl List Seq
