lib/graph/propagate.mli: Alt_tensor Fmt Graph
