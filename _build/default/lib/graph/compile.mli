(** End-to-end graph compilation and execution: lowers a propagation plan
    (plus per-operator schedules) into one program per stage, then executes
    the stages in order against a tensor environment, accumulating
    simulated latency. *)

module Layout = Alt_tensor.Layout
module Schedule = Alt_ir.Schedule
module Program = Alt_ir.Program
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler

type compiled_stage = {
  stage : Propagate.stage;
  prog : Program.t;
  label : string;
}

type compiled = {
  graph : Graph.t;
  plan : Propagate.plan;
  stages : compiled_stage list;
}

val simple_schedule : rank:int -> nred:int -> Schedule.t
(** Default schedule for simple stages (parallel outer + vectorized
    innermost). *)

val compile :
  ?schedules:(string * Schedule.t) list -> Graph.t -> Propagate.plan ->
  compiled
(** [schedules] maps complex-operator names to tuned loop schedules. *)

type exec_result = {
  latency_ms : float;
  per_stage : (string * Profiler.result) list;
  outputs : (string * float array) list; (** logical; valid when unsampled *)
  sampled : bool;
}

val execute :
  ?machine:Machine.t -> ?max_points:int -> compiled ->
  feeds:(string * float array) list -> exec_result

val trivial_choices :
  ?out_perm:int array -> Graph.t -> (string * Propagate.choice) list
(** Identity (or permuted) layouts for every complex operator — the
    baseline configuration of loop-only systems. *)
