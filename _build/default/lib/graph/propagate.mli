(** Layout propagation (Algorithm 1) and compilation planning.

    Given layout choices for complex operators, decides the storage layout
    of every tensor, which elementwise producers emit a requested layout
    directly (Fig. 5b), which consumer chains share the producer's layout
    so fusion stays legal (Fig. 7), and where conversion operators are
    inserted. *)

module Layout = Alt_tensor.Layout

(** Propagation policy, realizing the paper's ablations:
    [Full] = ALT; [Adjacent] = ALT-WP (adjacent conversion elimination
    only, no fusion-enabling sharing); [Off] = conversions everywhere. *)
type mode = Full | Adjacent | Off

type choice = {
  out_layout : Layout.t; (** must be invertible *)
  in_layouts : (string * Layout.t) list;
}

type stage =
  | Convert of { tensor : string; src : Layout.t; dst : Layout.t }
  | Complex_stage of {
      node : Graph.node;
      out_layout : Layout.t;
      in_layouts : (string * Layout.t) list;
      fused : Graph.node list;
    }
  | Simple_stage of { node : Graph.node; out_layout : Layout.t }

type plan = {
  stages : stage list; (** dependency-correct execution order *)
  storage : (string * Layout.t) list;
  conversions : int;
  fused_ops : int;
}

val plan : ?mode:mode -> Graph.t -> choices:(string * choice) list -> plan
(** [choices] maps complex-operator names to their tuned layouts. *)

val pp_stage : stage Fmt.t
val pp : plan Fmt.t
