lib/rl/mlp.ml: Array Float Random
