lib/rl/ppo.ml: Array Float List Mlp Random
