lib/rl/ppo.mli: Mlp Random
