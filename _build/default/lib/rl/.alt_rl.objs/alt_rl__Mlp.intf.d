lib/rl/mlp.mli:
