(** Small multi-layer perceptron with tanh hidden activations, explicit
    backpropagation and Adam.  Gradients are checked against finite
    differences in the test suite. *)

type layer = {
  w : float array array; (** out x in *)
  b : float array;
  gw : float array array; (** gradient accumulators *)
  gb : float array;
  mw : float array array; (** Adam moments *)
  vw : float array array;
  mb : float array;
  vb : float array;
}

type t = { sizes : int array; layers : layer array; mutable step : int }

type cache

val create : ?seed:int -> int array -> t
(** [create [|n_in; hidden...; n_out|]] with Xavier-style init. *)

val forward : t -> float array -> float array
val forward_cache : t -> float array -> float array * cache

val backward : t -> cache -> dout:float array -> float array
(** Accumulate gradients for dL/d(output) = [dout]; returns dL/d(input). *)

val zero_grads : t -> unit

val adam_step :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> t -> unit

val copy : t -> t
(** Deep copy (snapshotting pretrained agents). *)
