(* Small multi-layer perceptron with tanh hidden activations, explicit
   backward pass and Adam — the neural substrate for the PPO actor and
   critic networks (Section 5.2).  No autodiff frameworks exist in this
   environment, so gradients are hand-derived; the test suite checks them
   against finite differences. *)

type layer = {
  w : float array array; (* out x in *)
  b : float array;
  (* gradient accumulators *)
  gw : float array array;
  gb : float array;
  (* Adam moments *)
  mw : float array array;
  vw : float array array;
  mb : float array;
  vb : float array;
}

type t = {
  sizes : int array; (* e.g. [| in; hidden; out |] *)
  layers : layer array;
  mutable step : int;
}

type cache = {
  xs : float array array; (* input of each layer *)
  zs : float array array; (* pre-activations *)
}

let mk_layer rng n_out n_in =
  let scale = Float.sqrt (2.0 /. float_of_int (n_in + n_out)) in
  let gauss () =
    (* Box-Muller *)
    let u1 = Float.max 1e-9 (Random.State.float rng 1.0) in
    let u2 = Random.State.float rng 1.0 in
    Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)
  in
  {
    w = Array.init n_out (fun _ -> Array.init n_in (fun _ -> scale *. gauss ()));
    b = Array.make n_out 0.0;
    gw = Array.init n_out (fun _ -> Array.make n_in 0.0);
    gb = Array.make n_out 0.0;
    mw = Array.init n_out (fun _ -> Array.make n_in 0.0);
    vw = Array.init n_out (fun _ -> Array.make n_in 0.0);
    mb = Array.make n_out 0.0;
    vb = Array.make n_out 0.0;
  }

let create ?(seed = 0) (sizes : int array) : t =
  if Array.length sizes < 2 then invalid_arg "Mlp.create: need >= 2 sizes";
  let rng = Random.State.make [| seed; 77 |] in
  {
    sizes;
    layers =
      Array.init
        (Array.length sizes - 1)
        (fun i -> mk_layer rng sizes.(i + 1) sizes.(i));
    step = 0;
  }

let n_layers t = Array.length t.layers

let forward_cache t (x : float array) : float array * cache =
  let n = n_layers t in
  let xs = Array.make n [||] and zs = Array.make n [||] in
  let cur = ref x in
  for li = 0 to n - 1 do
    let l = t.layers.(li) in
    xs.(li) <- !cur;
    let z =
      Array.mapi
        (fun o row ->
          let s = ref l.b.(o) in
          Array.iteri (fun i w -> s := !s +. (w *. !cur.(i))) row;
          !s)
        l.w
    in
    zs.(li) <- z;
    (* tanh on hidden layers, identity on the last *)
    cur := if li = n - 1 then z else Array.map Float.tanh z
  done;
  (!cur, { xs; zs })

let forward t x = fst (forward_cache t x)

(* Accumulate gradients for dL/d(output) = dout; returns dL/d(input). *)
let backward t (c : cache) ~(dout : float array) : float array =
  let n = n_layers t in
  let delta = ref dout in
  for li = n - 1 downto 0 do
    let l = t.layers.(li) in
    let d =
      if li = n - 1 then !delta
      else
        Array.mapi
          (fun o dz ->
            let th = Float.tanh c.zs.(li).(o) in
            dz *. (1.0 -. (th *. th)))
          !delta
    in
    let x = c.xs.(li) in
    Array.iteri
      (fun o dv ->
        l.gb.(o) <- l.gb.(o) +. dv;
        let row = l.gw.(o) in
        Array.iteri (fun i xv -> row.(i) <- row.(i) +. (dv *. xv)) x)
      d;
    (* propagate *)
    let din = Array.make (Array.length x) 0.0 in
    Array.iteri
      (fun o dv ->
        let row = l.w.(o) in
        Array.iteri (fun i w -> din.(i) <- din.(i) +. (dv *. w)) row)
      d;
    delta := din
  done;
  !delta

let zero_grads t =
  Array.iter
    (fun l ->
      Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) l.gw;
      Array.fill l.gb 0 (Array.length l.gb) 0.0)
    t.layers

let adam_step ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) t =
  t.step <- t.step + 1;
  let bc1 = 1.0 -. (beta1 ** float_of_int t.step) in
  let bc2 = 1.0 -. (beta2 ** float_of_int t.step) in
  Array.iter
    (fun l ->
      Array.iteri
        (fun o row ->
          Array.iteri
            (fun i g ->
              l.mw.(o).(i) <- (beta1 *. l.mw.(o).(i)) +. ((1.0 -. beta1) *. g);
              l.vw.(o).(i) <- (beta2 *. l.vw.(o).(i)) +. ((1.0 -. beta2) *. g *. g);
              let m = l.mw.(o).(i) /. bc1 and v = l.vw.(o).(i) /. bc2 in
              row.(i) <- row.(i) -. (lr *. m /. (Float.sqrt v +. eps)))
            l.gw.(o))
        l.w;
      Array.iteri
        (fun o g ->
          l.mb.(o) <- (beta1 *. l.mb.(o)) +. ((1.0 -. beta1) *. g);
          l.vb.(o) <- (beta2 *. l.vb.(o)) +. ((1.0 -. beta2) *. g *. g);
          let m = l.mb.(o) /. bc1 and v = l.vb.(o) /. bc2 in
          l.b.(o) <- l.b.(o) -. (lr *. m /. (Float.sqrt v +. eps)))
        l.gb)
    t.layers

(* Deep copy (used to snapshot pretrained agents). *)
let copy t =
  {
    sizes = Array.copy t.sizes;
    step = t.step;
    layers =
      Array.map
        (fun l ->
          {
            w = Array.map Array.copy l.w;
            b = Array.copy l.b;
            gw = Array.map Array.copy l.gw;
            gb = Array.copy l.gb;
            mw = Array.map Array.copy l.mw;
            vw = Array.map Array.copy l.vw;
            mb = Array.copy l.mb;
            vb = Array.copy l.vb;
          })
        t.layers;
  }
