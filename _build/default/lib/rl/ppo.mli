(** Proximal Policy Optimization with a clipped surrogate — the paper's
    layout-space exploration algorithm (Section 5.2).

    One generic actor is invoked per tunable knob; its Gaussian sample,
    squashed to (0,1), becomes the action from which a concrete split
    factor is derived as F = R(D * a) (Eq. (2)).  A single critic is
    shared by all actors. *)

type sample = {
  state : float array;
  action_u : float; (** unsquashed Gaussian sample *)
  logp : float;
  mutable reward : float; (** filled when the episode's reward arrives *)
}

type t = {
  actor : Mlp.t;
  critic : Mlp.t;
  mutable log_std : float;
  mutable g_log_std : float;
  mutable m_log_std : float;
  mutable v_log_std : float;
  mutable std_step : int;
  clip : float;
  entropy_coef : float;
  lr : float;
  rng : Random.State.t;
}

val create :
  ?seed:int -> ?hidden:int -> ?clip:float -> ?entropy_coef:float ->
  ?lr:float -> state_dim:int -> unit -> t

val act : ?explore:bool -> t -> float array -> float * sample
(** Sample an action in (0,1) for a state; the returned [sample] must be
    rewarded and passed to {!update}. *)

val act_uniform : t -> float array -> float * sample
(** Uniform warm-up action scored under the current policy (for the first
    proposals of a fresh agent). *)

val value : t -> float array -> float

val update : ?epochs:int -> t -> sample list -> unit
(** One PPO update (clipped surrogate + critic regression + entropy
    bonus) over a batch of rewarded samples. *)

val copy : t -> t
