(* Proximal Policy Optimization with a clipped surrogate objective
   (Schulman et al., the paper's exploration algorithm, Section 5.2).

   The "generic split actor" design of the paper: a single actor network is
   invoked once per tunable knob.  Its input is the concatenation of a
   fixed-size state embedding (the current primitive/knob configuration)
   and per-knob features; its output is the pre-squash mean of a Gaussian
   whose sample, squashed to (0,1), becomes the action a_s from which the
   concrete split factor is derived as F = R(D * a_s) (Eq. (2)).

   A single critic network is shared by all actors ("global shared critic",
   Section 5.2.2), fitting rewards from the same state embedding. *)

type sample = {
  state : float array;
  action_u : float; (* unsquashed Gaussian sample *)
  logp : float;
  mutable reward : float; (* filled when the episode's reward arrives *)
}

type t = {
  actor : Mlp.t;
  critic : Mlp.t;
  mutable log_std : float;
  mutable g_log_std : float;
  mutable m_log_std : float;
  mutable v_log_std : float;
  mutable std_step : int;
  clip : float;
  entropy_coef : float;
  lr : float;
  rng : Random.State.t;
}

let create ?(seed = 0) ?(hidden = 32) ?(clip = 0.2) ?(entropy_coef = 0.01)
    ?(lr = 6e-3) ~state_dim () =
  {
    actor = Mlp.create ~seed [| state_dim; hidden; 1 |];
    critic = Mlp.create ~seed:(seed + 1) [| state_dim; hidden; 1 |];
    log_std = Float.log 0.4;
    g_log_std = 0.0;
    m_log_std = 0.0;
    v_log_std = 0.0;
    std_step = 0;
    clip;
    entropy_coef;
    lr;
    rng = Random.State.make [| seed; 1234 |];
  }

let sigmoid x = 1.0 /. (1.0 +. Float.exp (-.x))

let gauss rng =
  let u1 = Float.max 1e-9 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let log_prob t ~mean ~u =
  let std = Float.exp t.log_std in
  let d = (u -. mean) /. std in
  (-0.5 *. d *. d) -. t.log_std -. (0.5 *. Float.log (2.0 *. Float.pi))

(* Sample an action for [state]: returns the squashed action in (0,1) and
   the sample record to be rewarded later. *)
let act ?(explore = true) t (state : float array) : float * sample =
  let m_tilde = (Mlp.forward t.actor state).(0) in
  let mean = sigmoid m_tilde in
  let u =
    if explore then mean +. (Float.exp t.log_std *. gauss t.rng) else mean
  in
  let a = Float.min 0.999 (Float.max 0.001 u) in
  (a, { state; action_u = u; logp = log_prob t ~mean ~u; reward = 0.0 })

(* Uniform warm-up action: drawn uniformly but scored under the current
   policy, so early PPO updates still receive a valid importance ratio.
   Used for the first proposals of a fresh (non-pretrained) agent, whose
   sigmoid-centred initialization would otherwise bias exploration. *)
let act_uniform t (state : float array) : float * sample =
  let u = 0.001 +. Random.State.float t.rng 0.998 in
  let m_tilde = (Mlp.forward t.actor state).(0) in
  let mean = sigmoid m_tilde in
  (u, { state; action_u = u; logp = log_prob t ~mean ~u; reward = 0.0 })

let value t state = (Mlp.forward t.critic state).(0)

(* One PPO update over a batch of rewarded samples. *)
let update ?(epochs = 4) t (batch : sample list) =
  if batch <> [] then begin
    let n = float_of_int (List.length batch) in
    (* advantage normalization stabilizes tiny batches *)
    let advs =
      List.map (fun s -> s.reward -. value t s.state) batch
    in
    let amean = List.fold_left ( +. ) 0.0 advs /. n in
    let astd =
      Float.sqrt
        (List.fold_left (fun acc a -> acc +. ((a -. amean) ** 2.0)) 0.0 advs
        /. n)
      +. 1e-6
    in
    let data =
      List.map2 (fun s a -> (s, (a -. amean) /. astd)) batch advs
    in
    for _ = 1 to epochs do
      Mlp.zero_grads t.actor;
      Mlp.zero_grads t.critic;
      t.g_log_std <- 0.0;
      List.iter
        (fun (s, adv) ->
          (* actor *)
          let out, cache = Mlp.forward_cache t.actor s.state in
          let m_tilde = out.(0) in
          let mean = sigmoid m_tilde in
          let logp = log_prob t ~mean ~u:s.action_u in
          let ratio = Float.exp (logp -. s.logp) in
          let clipped_active =
            (adv >= 0.0 && ratio > 1.0 +. t.clip)
            || (adv < 0.0 && ratio < 1.0 -. t.clip)
          in
          (* logit regularization keeps the squashed mean away from the
             saturated ends of the sigmoid, where the policy gradient
             vanishes and the agent can no longer adapt to a new task *)
          let reg = 0.02 *. 2.0 *. m_tilde /. n in
          if not clipped_active then begin
            (* dL/dlogp = -ratio * adv  (minimizing loss) *)
            let dlogp = -.ratio *. adv /. n in
            let std = Float.exp t.log_std in
            let dmean = (s.action_u -. mean) /. (std *. std) in
            let dm_tilde = (dlogp *. dmean *. mean *. (1.0 -. mean)) +. reg in
            ignore (Mlp.backward t.actor cache ~dout:[| dm_tilde |]);
            let d2 = ((s.action_u -. mean) /. std) ** 2.0 in
            t.g_log_std <- t.g_log_std +. (dlogp *. (d2 -. 1.0))
          end
          else ignore (Mlp.backward t.actor cache ~dout:[| reg |]);
          (* entropy bonus: H = log_std + c; grad wrt log_std is 1 *)
          t.g_log_std <- t.g_log_std -. (t.entropy_coef /. n);
          (* critic: squared error to reward *)
          let vout, vcache = Mlp.forward_cache t.critic s.state in
          let dv = 2.0 *. (vout.(0) -. s.reward) /. n in
          ignore (Mlp.backward t.critic vcache ~dout:[| dv |]))
        data;
      Mlp.adam_step ~lr:t.lr t.actor;
      Mlp.adam_step ~lr:t.lr t.critic;
      (* Adam on log_std *)
      t.std_step <- t.std_step + 1;
      t.m_log_std <- (0.9 *. t.m_log_std) +. (0.1 *. t.g_log_std);
      t.v_log_std <-
        (0.999 *. t.v_log_std) +. (0.001 *. t.g_log_std *. t.g_log_std);
      let mc = t.m_log_std /. (1.0 -. (0.9 ** float_of_int t.std_step)) in
      let vc = t.v_log_std /. (1.0 -. (0.999 ** float_of_int t.std_step)) in
      t.log_std <- t.log_std -. (t.lr *. mc /. (Float.sqrt vc +. 1e-8));
      (* keep exploration within sane bounds *)
      t.log_std <- Float.max (Float.log 0.15) (Float.min (Float.log 0.6) t.log_std)
    done
  end

let copy t =
  {
    t with
    actor = Mlp.copy t.actor;
    critic = Mlp.copy t.critic;
    rng = Random.State.copy t.rng;
  }
