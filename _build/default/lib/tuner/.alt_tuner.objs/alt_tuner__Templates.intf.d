lib/tuner/templates.mli: Alt_graph Alt_ir Alt_tensor
