lib/tuner/graph_tuner.mli: Alt_graph Alt_ir Alt_machine Tuner
