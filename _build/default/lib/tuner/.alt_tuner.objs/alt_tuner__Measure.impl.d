lib/tuner/measure.ml: Alt_graph Alt_ir Alt_machine Alt_tensor Array Float Fmt List
