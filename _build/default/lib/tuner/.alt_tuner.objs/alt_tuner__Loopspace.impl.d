lib/tuner/loopspace.ml: Alt_ir Alt_tensor Array Float List Random
