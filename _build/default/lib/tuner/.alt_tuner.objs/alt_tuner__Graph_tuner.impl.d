lib/tuner/graph_tuner.ml: Alt_graph Alt_ir Alt_machine Alt_tensor Fmt Hashtbl List Measure String Templates Tuner
