lib/tuner/tuner.ml: Alt_costmodel Alt_graph Alt_ir Alt_machine Alt_rl Alt_tensor Array Float Fmt Fun Hashtbl List Logs Loopspace Measure Random Templates
