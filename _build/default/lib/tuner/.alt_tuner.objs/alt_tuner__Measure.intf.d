lib/tuner/measure.mli: Alt_graph Alt_ir Alt_machine
