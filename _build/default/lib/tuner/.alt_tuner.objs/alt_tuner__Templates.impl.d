lib/tuner/templates.ml: Alt_graph Alt_ir Alt_tensor Array Float Fmt Fun List
