lib/tuner/loopspace.mli: Alt_ir Alt_tensor Random
