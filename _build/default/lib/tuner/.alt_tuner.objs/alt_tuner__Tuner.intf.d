lib/tuner/tuner.mli: Alt_graph Alt_ir Alt_machine Alt_rl Measure
