(* Measurement harness: one "on-device measurement" of the tuning loop.

   A task fixes the operator (plus the elementwise chain that will be fused
   with it in the end-to-end flow), the machine model, random input data,
   and the per-measurement simulation point budget.  Candidates that fail
   to lower (illegal layout/schedule combinations) report [None] and cost
   no budget, mirroring real tuners that filter invalid configs before
   measuring. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Buffer = Alt_tensor.Buffer
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Lower = Alt_ir.Lower
module Program = Alt_ir.Program
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Propagate = Alt_graph.Propagate

type task = {
  op : Opdef.t;
  fused : Opdef.t list;
  machine : Machine.t;
  max_points : int;
  feeds : (string * float array) list; (* logical data for all inputs *)
  mutable spent : int; (* measurements consumed *)
}

(* All external input tensors of the task (op inputs + fused extras). *)
let task_inputs (op : Opdef.t) (fused : Opdef.t list) =
  let produced = ref [ op.Opdef.out_name ] in
  let acc = ref op.Opdef.inputs in
  List.iter
    (fun (f : Opdef.t) ->
      List.iter
        (fun (n, s) ->
          if (not (List.mem n !produced)) && not (List.mem_assoc n !acc) then
            acc := !acc @ [ (n, s) ])
        f.Opdef.inputs;
      produced := f.Opdef.out_name :: !produced)
    fused;
  !acc

let make_task ?(fused = []) ?(max_points = 40_000) ?(seed = 11) ~machine op =
  let feeds =
    List.mapi
      (fun i (n, s) -> (n, Buffer.random ~seed:(seed + i) s))
      (task_inputs op fused)
  in
  { op; fused; machine; max_points; feeds; spent = 0 }

(* Build the program for a candidate; None if the combination is illegal. *)
let program_of (t : task) (choice : Propagate.choice) (schedule : Schedule.t) :
    Program.t option =
  let layouts name =
    match List.assoc_opt name choice.Propagate.in_layouts with
    | Some l -> l
    | None -> (
        match List.assoc_opt name (task_inputs t.op t.fused) with
        | Some s -> Layout.create s
        | None -> invalid_arg (Fmt.str "Measure: unknown tensor %s" name))
  in
  let fused =
    List.map
      (fun (f : Opdef.t) ->
        {
          Lower.fop = f;
          fout_layout =
            Layout.of_prims f.Opdef.out_shape
              (Layout.prims choice.Propagate.out_layout);
        })
      t.fused
  in
  try
    Some
      (Lower.lower ~op:t.op ~layouts ~out_layout:choice.Propagate.out_layout
         ~fused ~schedule ())
  with Lower.Lower_error _ | Layout.Layout_error _ | Invalid_argument _ -> None

let measure (t : task) (choice : Propagate.choice) (schedule : Schedule.t) :
    Profiler.result option =
  match program_of t choice schedule with
  | None -> None
  | Some prog ->
      t.spent <- t.spent + 1;
      let bufs =
        Array.map
          (fun (s : Program.slot) ->
            match s.Program.role with
            | Program.Input ->
                Layout.pack s.Program.layout
                  (List.assoc s.Program.sname t.feeds)
            | Program.Output | Program.Temp ->
                Array.make (Layout.num_physical_elements s.Program.layout) 0.0)
          prog.Program.slots
      in
      Some
        (Profiler.run ~machine:t.machine ~max_points:t.max_points prog ~bufs)

let latency_of = function
  | Some (r : Profiler.result) -> r.Profiler.latency_ms
  | None -> Float.infinity
