(** Loop tuning space: continuous points in (0,1)^k decoded into schedules.
    The space depends on the output physical shape, so it is reconstructed
    whenever the layout changes — the coupling ALT's two-stage design
    works around. *)

module Layout = Alt_tensor.Layout
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule

type t

val of_layout : ?restricted:bool -> Opdef.t -> Layout.t -> t
(** [restricted] models AutoTVM-like template spaces (only the two
    innermost spatial dims tunable). *)

val dim : t -> int
(** Point dimension: one tile knob per spatial dim and per reduction, plus
    reduce-order / vectorize / parallel / unroll. *)

val decode : t -> float array -> Schedule.t
(** Always produces a legal schedule (divisor rounding). *)

val random_point : ?rng:Random.State.t -> t -> float array
val mutate : ?rng:Random.State.t -> ?rate:float -> t -> float array -> float array

val heuristic_point : t -> float array
(** A competent default (vectorized innermost, parallel outer, register
    blocking) used as the first candidate in a fresh space. *)
