(** Measurement harness: one "on-device measurement" of the tuning loop is
    one profiler run of the candidate program on the machine simulator. *)

module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule
module Program = Alt_ir.Program
module Machine = Alt_machine.Machine
module Profiler = Alt_machine.Profiler
module Propagate = Alt_graph.Propagate

type task = {
  op : Opdef.t;
  fused : Opdef.t list;
      (** elementwise chain co-tuned with the operator (end-to-end flow) *)
  machine : Machine.t;
  max_points : int; (** per-measurement simulation budget *)
  feeds : (string * float array) list;
  mutable spent : int; (** measurements consumed *)
}

val make_task :
  ?fused:Opdef.t list -> ?max_points:int -> ?seed:int ->
  machine:Machine.t -> Opdef.t -> task

val program_of : task -> Propagate.choice -> Schedule.t -> Program.t option
(** Lower a candidate; [None] when the combination is illegal (costs no
    budget, like real tuners filtering invalid configs). *)

val measure : task -> Propagate.choice -> Schedule.t -> Profiler.result option
(** Lower, pack inputs, simulate.  Consumes one unit of budget. *)

val latency_of : Profiler.result option -> float
(** Latency in ms, or infinity for failed candidates. *)
