(* Loop tuning space: a continuous vector in (0,1)^k decoded into a
   Schedule (Section 5.1 "loop space", following FlexTensor/Ansor).

   The space depends on the output *physical* shape, so changing the layout
   reconstructs it — exactly the coupling the paper's two-stage design
   works around.  Because points are continuous and decoded with the
   divisor-rounding function R, a point sampled for one layout remains
   decodable after a layout change (it just decodes differently), which is
   how the cross-exploration architecture keeps walking. *)

module Shape = Alt_tensor.Shape
module Layout = Alt_tensor.Layout
module Opdef = Alt_ir.Opdef
module Schedule = Alt_ir.Schedule

type t = {
  phys : int array;
  reds : int array;
  restricted : bool;
      (* AutoTVM-like baselines: only the two innermost spatial dims are
         tunable and reduction placement is fixed *)
}

let of_layout ?(restricted = false) (op : Opdef.t)
    (out_layout : Layout.t) : t =
  {
    phys = Layout.physical_shape out_layout;
    reds = Array.of_list (List.map snd op.Opdef.reduce);
    restricted;
  }

(* vector length: one tile knob per spatial dim + one per reduction +
   [reduce_outer; vectorize; parallel; unroll] *)
let dim t = Array.length t.phys + Array.length t.reds + 4

let clamp01 x = Float.min 0.999 (Float.max 0.001 x)

let decode (t : t) (a : float array) : Schedule.t =
  if Array.length a <> dim t then invalid_arg "Loopspace.decode: length";
  let rank = Array.length t.phys in
  let nred = Array.length t.reds in
  let s = ref (Schedule.default ~rank ~nred) in
  for d = 0 to rank - 1 do
    let tunable = (not t.restricted) || d >= rank - 2 in
    if tunable then begin
      let f =
        Shape.round_to_divisor t.phys.(d)
          (max 1
             (int_of_float
                (Float.round (clamp01 a.(d) *. float_of_int t.phys.(d)))))
      in
      s := Schedule.split !s ~dim:d ~inner:f
    end
  done;
  for j = 0 to nred - 1 do
    if not t.restricted then begin
      let f =
        Shape.round_to_divisor t.reds.(j)
          (max 1
             (int_of_float
                (Float.round (clamp01 a.(rank + j) *. float_of_int t.reds.(j)))))
      in
      s := Schedule.split_reduce !s ~index:j ~inner:f
    end
  done;
  let base = rank + nred in
  let reduce_outer = if t.restricted then false else a.(base) > 0.5 in
  s := Schedule.reorder_reduce_outer !s reduce_outer;
  if a.(base + 1) > 0.3 then s := Schedule.vectorize !s;
  let par = int_of_float (Float.round (clamp01 a.(base + 2) *. 3.0)) in
  s := Schedule.parallel !s par;
  if a.(base + 3) > 0.5 then s := Schedule.unroll !s;
  !s

let random_point ?(rng = Random.State.make_self_init ()) t =
  Array.init (dim t) (fun _ -> Random.State.float rng 1.0)

let mutate ?(rng = Random.State.make_self_init ()) ?(rate = 0.3) t
    (a : float array) =
  Array.mapi
    (fun i x ->
      ignore i;
      if Random.State.float rng 1.0 < rate then
        clamp01 (x +. (Random.State.float rng 0.5 -. 0.25))
      else x)
    (if Array.length a = dim t then a else random_point ~rng t)

(* A sensible default point: small spatial tiles with the innermost dim
   fully inner (vectorizable), no reduction split, register-blocked
   reduction order, vectorized, parallel, unrolled.  Used as the first
   candidate whenever a layout's loop space is explored from scratch, so a
   candidate layout's potential is estimated from a competent schedule
   rather than from pure noise. *)
let heuristic_point (t : t) : float array =
  let rank = Array.length t.phys in
  let nred = Array.length t.reds in
  let a = Array.make (dim t) 0.01 in
  (* innermost physical dim fully inner *)
  if rank > 0 then a.(rank - 1) <- 0.99;
  (* second innermost: small tile *)
  if rank > 1 then
    a.(rank - 2) <- Float.min 0.99 (4.0 /. float_of_int t.phys.(rank - 2));
  let base = rank + nred in
  a.(base) <- 0.9 (* reduce_outer *);
  a.(base + 1) <- 0.9 (* vectorize *);
  a.(base + 2) <- 0.9 (* parallel *);
  a.(base + 3) <- 0.9 (* unroll *);
  a
