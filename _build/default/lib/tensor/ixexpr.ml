(* Symbolic integer index expressions.

   Accesses such as [Inp[n][oh*2 + rh][ow*2 + rw][i]] are represented
   symbolically so that layout primitives (Table 1 of the paper and the
   unfold rule, Eq. (1)) can rewrite them, and so that the lowering pass can
   substitute the inverse output-layout mapping into operator bodies.

   Division is floor division and modulo returns a value in [0, divisor)
   (divisors are always positive constants in this code base).  With that
   convention the identity floor((c*q + r) / c) = q + floor(r / c) holds for
   all integers, which the simplifier relies on.

   The simplifier normalizes an expression to a linear combination
   [const + sum coeff * atom] where atoms are variables, floor-divisions,
   modulos, min/max, or opaque products.  Combined with interval analysis
   over variable bounds it proves facts like
   [(ho*ht + hi) / ht = ho] when [0 <= hi < ht], which is exactly what turns
   the mechanical Eq. (1) rewrite into the tidy tiled indices of Fig. 3. *)

type t =
  | Const of int
  | Var of Var.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t (* floor division, positive constant divisor expected *)
  | Mod of t * t (* remainder in [0, divisor) *)
  | Min of t * t
  | Max of t * t

type bounds = Var.t -> (int * int) option
(* Inclusive variable ranges; [None] means unknown. *)

let no_bounds : bounds = fun _ -> None

(* ------------------------------------------------------------------ *)
(* Integer helpers: floor division and matching modulo.               *)
(* ------------------------------------------------------------------ *)

let fdiv a b =
  if b <= 0 then invalid_arg "Ixexpr.fdiv: non-positive divisor";
  if a >= 0 then a / b else -((-a + b - 1) / b)

let fmod a b = a - (fdiv a b * b)

(* ------------------------------------------------------------------ *)
(* Smart constructors with constant folding.                          *)
(* ------------------------------------------------------------------ *)

let const n = Const n
let var v = Var v
let zero = Const 0
let one = Const 1

let add a b =
  match (a, b) with
  | Const 0, e | e, Const 0 -> e
  | Const x, Const y -> Const (x + y)
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | e, Const 0 -> e
  | Const x, Const y -> Const (x - y)
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, e | e, Const 1 -> e
  | Const x, Const y -> Const (x * y)
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | e, Const 1 -> e
  | Const x, Const y when y > 0 -> Const (fdiv x y)
  | _ -> Div (a, b)

let mod_ a b =
  match (a, b) with
  | _, Const 1 -> Const 0
  | Const x, Const y when y > 0 -> Const (fmod x y)
  | _ -> Mod (a, b)

let min_ a b =
  match (a, b) with Const x, Const y -> Const (min x y) | _ -> Min (a, b)

let max_ a b =
  match (a, b) with Const x, Const y -> Const (max x y) | _ -> Max (a, b)

let rec sum = function [] -> zero | [ e ] -> e | e :: tl -> add e (sum tl)

(* ------------------------------------------------------------------ *)
(* Traversals.                                                        *)
(* ------------------------------------------------------------------ *)

let rec vars_fold f acc = function
  | Const _ -> acc
  | Var v -> f acc v
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
      vars_fold f (vars_fold f acc a) b

let vars e = vars_fold (fun s v -> Var.Set.add v s) Var.Set.empty e

let rec subst (f : Var.t -> t option) e =
  match e with
  | Const _ -> e
  | Var v -> ( match f v with Some e' -> e' | None -> e)
  | Add (a, b) -> add (subst f a) (subst f b)
  | Sub (a, b) -> sub (subst f a) (subst f b)
  | Mul (a, b) -> mul (subst f a) (subst f b)
  | Div (a, b) -> div (subst f a) (subst f b)
  | Mod (a, b) -> mod_ (subst f a) (subst f b)
  | Min (a, b) -> min_ (subst f a) (subst f b)
  | Max (a, b) -> max_ (subst f a) (subst f b)

let subst_var v repl e = subst (fun w -> if Var.equal v w then Some repl else None) e

let rec eval (env : Var.t -> int) = function
  | Const n -> n
  | Var v -> env v
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) -> fdiv (eval env a) (eval env b)
  | Mod (a, b) -> fmod (eval env a) (eval env b)
  | Min (a, b) -> min (eval env a) (eval env b)
  | Max (a, b) -> max (eval env a) (eval env b)

let rec pp ppf = function
  | Const n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf (Var.name v)
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b
  | Mod (a, b) -> Fmt.pf ppf "(%a %% %a)" pp a pp b
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b

let to_string e = Fmt.str "%a" pp e

(* ------------------------------------------------------------------ *)
(* Normal form: const + sum of coeff * atom.                          *)
(* ------------------------------------------------------------------ *)

type atom =
  | Avar of Var.t
  | Adiv of lin * int
  | Amod of lin * int
  | Amin of lin * lin
  | Amax of lin * lin
  | Aopaque of t (* non-affine residue, e.g. variable * variable *)

and lin = { terms : (atom * int) list; k : int }

let rec compare_atom a b =
  match (a, b) with
  | Avar x, Avar y -> Var.compare x y
  | Avar _, _ -> -1
  | _, Avar _ -> 1
  | Adiv (l1, c1), Adiv (l2, c2) ->
      let c = Int.compare c1 c2 in
      if c <> 0 then c else compare_lin l1 l2
  | Adiv _, _ -> -1
  | _, Adiv _ -> 1
  | Amod (l1, c1), Amod (l2, c2) ->
      let c = Int.compare c1 c2 in
      if c <> 0 then c else compare_lin l1 l2
  | Amod _, _ -> -1
  | _, Amod _ -> 1
  | Amin (a1, b1), Amin (a2, b2) | Amax (a1, b1), Amax (a2, b2) ->
      let c = compare_lin a1 a2 in
      if c <> 0 then c else compare_lin b1 b2
  | Amin _, _ -> -1
  | _, Amin _ -> 1
  | Amax _, Aopaque _ -> -1
  | Aopaque _, Amax _ -> 1
  | Aopaque e1, Aopaque e2 -> Stdlib.compare e1 e2

and compare_lin l1 l2 =
  let c = Int.compare l1.k l2.k in
  if c <> 0 then c
  else
    List.compare
      (fun (a1, c1) (a2, c2) ->
        let c = compare_atom a1 a2 in
        if c <> 0 then c else Int.compare c1 c2)
      l1.terms l2.terms

let lin_const k = { terms = []; k }

let lin_add l1 l2 =
  let rec merge t1 t2 =
    match (t1, t2) with
    | [], t | t, [] -> t
    | (a1, c1) :: r1, (a2, c2) :: r2 ->
        let c = compare_atom a1 a2 in
        if c < 0 then (a1, c1) :: merge r1 t2
        else if c > 0 then (a2, c2) :: merge t1 r2
        else
          let s = c1 + c2 in
          if s = 0 then merge r1 r2 else (a1, s) :: merge r1 r2
  in
  { terms = merge l1.terms l2.terms; k = l1.k + l2.k }

let lin_scale c l =
  if c = 0 then lin_const 0
  else { terms = List.map (fun (a, x) -> (a, x * c)) l.terms; k = l.k * c }

let lin_is_const l = l.terms = []

(* Interval arithmetic over the normal form. *)
let rec range_of_lin (b : bounds) l : (int * int) option =
  List.fold_left
    (fun acc (a, c) ->
      match (acc, range_of_atom b a) with
      | Some (lo, hi), Some (alo, ahi) ->
          if c >= 0 then Some (lo + (c * alo), hi + (c * ahi))
          else Some (lo + (c * ahi), hi + (c * alo))
      | _ -> None)
    (Some (l.k, l.k))
    l.terms

and range_of_atom b = function
  | Avar v -> b v
  | Adiv (l, c) -> (
      match range_of_lin b l with
      | Some (lo, hi) -> Some (fdiv lo c, fdiv hi c)
      | None -> None)
  | Amod (_, c) -> Some (0, c - 1)
  | Amin (l1, l2) -> (
      match (range_of_lin b l1, range_of_lin b l2) with
      | Some (lo1, hi1), Some (lo2, hi2) -> Some (min lo1 lo2, min hi1 hi2)
      | _ -> None)
  | Amax (l1, l2) -> (
      match (range_of_lin b l1, range_of_lin b l2) with
      | Some (lo1, hi1), Some (lo2, hi2) -> Some (max lo1 lo2, max hi1 hi2)
      | _ -> None)
  | Aopaque _ -> None

(* Splits [l] into (q, r) such that l = c*q + r and r collects the terms
   whose coefficient is not divisible by c, plus the constant remainder. *)
let split_divisible c l =
  let qs, rs =
    List.partition_map
      (fun (a, x) ->
        if x mod c = 0 then Left (a, x / c) else Right (a, x))
      l.terms
  in
  let qk = fdiv l.k c in
  let rk = l.k - (qk * c) in
  ({ terms = qs; k = qk }, { terms = rs; k = rk })

let rec to_lin (b : bounds) (e : t) : lin =
  match e with
  | Const n -> lin_const n
  | Var v -> { terms = [ (Avar v, 1) ]; k = 0 }
  | Add (x, y) -> lin_add (to_lin b x) (to_lin b y)
  | Sub (x, y) -> lin_add (to_lin b x) (lin_scale (-1) (to_lin b y))
  | Mul (x, y) -> (
      let lx = to_lin b x and ly = to_lin b y in
      match (lin_is_const lx, lin_is_const ly) with
      | true, _ -> lin_scale lx.k ly
      | _, true -> lin_scale ly.k lx
      | false, false -> { terms = [ (Aopaque e, 1) ]; k = 0 })
  | Div (x, y) -> (
      let ly = to_lin b y in
      if not (lin_is_const ly && ly.k > 0) then
        { terms = [ (Aopaque e, 1) ]; k = 0 }
      else
        let c = ly.k in
        let lx = to_lin b x in
        let q, r = split_divisible c lx in
        (* x = c*q + r  ==>  x/c = q + floor(r/c)  (valid for all ints). *)
        match range_of_lin b r with
        | Some (lo, hi) when fdiv lo c = fdiv hi c ->
            lin_add q (lin_const (fdiv lo c))
        | _ ->
            if lin_is_const r then lin_add q (lin_const (fdiv r.k c))
            else lin_add q { terms = [ (Adiv (r, c), 1) ]; k = 0 })
  | Mod (x, y) -> (
      let ly = to_lin b y in
      if not (lin_is_const ly && ly.k > 0) then
        { terms = [ (Aopaque e, 1) ]; k = 0 }
      else
        let c = ly.k in
        let lx = to_lin b x in
        let _, r = split_divisible c lx in
        (* x mod c = r mod c since the divisible part vanishes. *)
        match range_of_lin b r with
        | Some (lo, hi) when fdiv lo c = fdiv hi c ->
            lin_add r (lin_const (-c * fdiv lo c))
        | _ ->
            if lin_is_const r then lin_const (fmod r.k c)
            else { terms = [ (Amod (r, c), 1) ]; k = 0 })
  | Min (x, y) -> (
      let lx = to_lin b x and ly = to_lin b y in
      match (range_of_lin b lx, range_of_lin b ly) with
      | Some (_, hix), Some (loy, _) when hix <= loy -> lx
      | Some (lox, _), Some (_, hiy) when hiy <= lox -> ly
      | _ ->
          if compare_lin lx ly = 0 then lx
          else { terms = [ (Amin (lx, ly), 1) ]; k = 0 })
  | Max (x, y) -> (
      let lx = to_lin b x and ly = to_lin b y in
      match (range_of_lin b lx, range_of_lin b ly) with
      | Some (_, hix), Some (loy, _) when hix <= loy -> ly
      | Some (lox, _), Some (_, hiy) when hiy <= lox -> lx
      | _ ->
          if compare_lin lx ly = 0 then lx
          else { terms = [ (Amax (lx, ly), 1) ]; k = 0 })

let rec of_lin (l : lin) : t =
  let term (a, c) =
    let base = of_atom a in
    if c = 1 then base else mul (Const c) base
  in
  let body =
    match l.terms with
    | [] -> Const l.k
    | t0 :: rest ->
        let e = List.fold_left (fun acc t -> add acc (term t)) (term t0) rest in
        if l.k = 0 then e else add e (Const l.k)
  in
  body

and of_atom = function
  | Avar v -> Var v
  | Adiv (l, c) -> div (of_lin l) (Const c)
  | Amod (l, c) -> mod_ (of_lin l) (Const c)
  | Amin (a, b) -> min_ (of_lin a) (of_lin b)
  | Amax (a, b) -> max_ (of_lin a) (of_lin b)
  | Aopaque e -> e

let simplify ?(bounds = no_bounds) e = of_lin (to_lin bounds e)

let equal ?(bounds = no_bounds) a b =
  compare_lin (to_lin bounds a) (to_lin bounds b) = 0

let range ?(bounds = no_bounds) e = range_of_lin bounds (to_lin bounds e)

let is_const e = match simplify e with Const _ -> true | _ -> false

let to_const_opt e = match simplify e with Const n -> Some n | _ -> None

(* Coefficient of [v] when [e] is affine in [v] at the top level (i.e. [v]
   does not occur under div/mod/min/max/opaque atoms).  Used by the unfold
   access analysis to recognize sliding-window patterns [V*i + r]. *)
let coeff_of ?(bounds = no_bounds) e v : int option =
  let l = to_lin bounds e in
  let rec var_in_atom = function
    | Avar w -> Var.equal v w
    | Adiv (l, _) | Amod (l, _) -> var_in_lin l
    | Amin (a, b) | Amax (a, b) -> var_in_lin a || var_in_lin b
    | Aopaque e -> Var.Set.mem v (vars e)
  and var_in_lin l = List.exists (fun (a, _) -> var_in_atom a) l.terms in
  let coeff = ref 0 in
  let nested = ref false in
  List.iter
    (fun (a, c) ->
      match a with
      | Avar w when Var.equal v w -> coeff := !coeff + c
      | a -> if var_in_atom a then nested := true)
    l.terms;
  if !nested then None else Some !coeff

let drop_var ?(bounds = no_bounds) e v =
  match coeff_of ~bounds e v with
  | None -> None
  | Some c -> Some (simplify ~bounds (sub e (mul (Const c) (Var v))))
