(** Tensor shapes (dimension extents) and small integer utilities. *)

type t = int array

val of_list : int list -> t
val to_list : t -> int list
val rank : t -> int
val num_elements : t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

val validate : t -> unit
(** Raises [Invalid_argument] if any extent is non-positive. *)

val strides : t -> int array
(** Row-major strides. *)

val offset_of_index : t -> int array -> int
(** Linear row-major offset; bounds-checked. *)

val index_of_offset : t -> int -> int array
(** Inverse of [offset_of_index]. *)

val divisors : int -> int list
(** Divisors in increasing order. *)

val round_to_divisor : int -> int -> int
(** [round_to_divisor n x] is the divisor of [n] nearest to [x] (the paper's
    rounding function [R] used to map a continuous action to a split factor). *)

val cdiv : int -> int -> int
(** Ceiling division. *)

val prod_range : int array -> int -> int -> int
(** Product of [a.(lo..hi)] inclusive. *)
