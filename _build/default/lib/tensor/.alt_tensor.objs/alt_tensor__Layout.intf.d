lib/tensor/layout.mli: Fmt Ixexpr Shape Var
