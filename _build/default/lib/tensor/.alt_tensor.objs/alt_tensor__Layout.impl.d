lib/tensor/layout.ml: Array Fmt Ixexpr List Option Shape Var
