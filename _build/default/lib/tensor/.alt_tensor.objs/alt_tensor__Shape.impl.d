lib/tensor/shape.ml: Array Fmt List
