lib/tensor/ixexpr.mli: Fmt Var
