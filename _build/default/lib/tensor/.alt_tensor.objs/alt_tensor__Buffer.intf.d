lib/tensor/buffer.mli: Layout Shape
