lib/tensor/var.ml: Fmt Int Map Set
