lib/tensor/var.mli: Fmt Map Set
