lib/tensor/buffer.ml: Array Float Layout Random Shape
