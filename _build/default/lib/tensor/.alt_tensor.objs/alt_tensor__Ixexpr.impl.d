lib/tensor/ixexpr.ml: Fmt Int List Stdlib Var
