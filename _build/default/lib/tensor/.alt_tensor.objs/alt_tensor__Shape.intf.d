lib/tensor/shape.mli: Fmt
