(* Tensor shapes and small integer utilities shared across the compiler.

   A shape is the list of dimension extents of a (logical or physical)
   tensor, stored as an [int array].  All layouts in this code base are
   row-major over their physical shape, so strides are derived here. *)

type t = int array

let of_list = Array.of_list
let to_list = Array.to_list
let rank (s : t) = Array.length s

let num_elements (s : t) = Array.fold_left ( * ) 1 s

let equal (a : t) (b : t) = a = b

let pp ppf (s : t) =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "x") int) s

let to_string s = Fmt.str "%a" pp s

let validate (s : t) =
  Array.iter
    (fun d ->
      if d <= 0 then
        invalid_arg (Fmt.str "Shape.validate: non-positive extent in %a" pp s))
    s

(* Row-major strides: stride.(i) = product of extents of dims > i. *)
let strides (s : t) : int array =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let offset_of_index (s : t) (idx : int array) =
  let st = strides s in
  let n = rank s in
  if Array.length idx <> n then invalid_arg "Shape.offset_of_index: rank";
  let off = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= s.(i) then
      invalid_arg
        (Fmt.str "Shape.offset_of_index: index %d out of bounds for dim %d (%a)"
           idx.(i) i pp s);
    off := !off + (idx.(i) * st.(i))
  done;
  !off

let index_of_offset (s : t) (off : int) : int array =
  let st = strides s in
  Array.mapi (fun i _ -> off / st.(i) mod s.(i)) s

(* Divisors of [n] in increasing order; search spaces of split factors are
   restricted to divisors so that loop splitting never needs guard code. *)
let divisors n =
  if n <= 0 then invalid_arg "Shape.divisors";
  let rec loop d acc =
    if d > n then List.rev acc
    else loop (d + 1) (if n mod d = 0 then d :: acc else acc)
  in
  loop 1 []

let round_to_divisor n x =
  (* Nearest divisor of [n] to [x]; realizes the paper's F = R(D * a). *)
  let ds = divisors n in
  List.fold_left
    (fun best d -> if abs (d - x) < abs (best - x) then d else best)
    1 ds

let cdiv a b = (a + b - 1) / b

let prod_range (a : int array) lo hi =
  let p = ref 1 in
  for i = lo to hi do
    p := !p * a.(i)
  done;
  !p
