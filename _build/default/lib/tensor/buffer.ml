(* Concrete tensor storage: a float array laid out according to a layout.

   The [data] array is row-major over the layout's physical shape.  Logical
   views are obtained by packing/unpacking through the layout, which is how
   conversion operators, offline weight packing and test oracles move
   data. *)

type t = { layout : Layout.t; data : float array }

let create layout =
  { layout; data = Array.make (Layout.num_physical_elements layout) 0.0 }

let of_logical layout (src : float array) =
  { layout; data = Layout.pack layout src }

let to_logical t = Layout.unpack t.layout t.data

let layout t = t.layout
let data t = t.data
let logical_shape t = Layout.logical_shape t.layout
let physical_shape t = Layout.physical_shape t.layout

let random ?(seed = 0) shape =
  let st = Random.State.make [| seed; Shape.num_elements shape |] in
  let n = Shape.num_elements shape in
  Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let iota shape =
  Array.init (Shape.num_elements shape) (fun i -> float_of_int i)

let max_abs_diff (a : float array) (b : float array) =
  if Array.length a <> Array.length b then invalid_arg "Buffer.max_abs_diff";
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
  !m

let allclose ?(tol = 1e-4) a b = max_abs_diff a b <= tol
