(** Loop / index variables with globally unique identifiers. *)

type t = { id : int; name : string }

val fresh : string -> t
(** [fresh name] returns a variable with a globally unique [id]. *)

val id : t -> int
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

val renamed : t -> string -> t
(** [renamed v name] is [v] with a different display name (same identity). *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
