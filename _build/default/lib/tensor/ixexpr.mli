(** Symbolic integer index expressions with range-aware simplification.

    Division is floor division; modulo returns a value in [0, divisor).
    Divisors are expected to be positive constants. *)

type t =
  | Const of int
  | Var of Var.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Min of t * t
  | Max of t * t

type bounds = Var.t -> (int * int) option
(** Inclusive variable ranges used by the simplifier; [None] = unknown. *)

val no_bounds : bounds

val fdiv : int -> int -> int
(** Floor division (positive divisor). *)

val fmod : int -> int -> int
(** Modulo matching [fdiv]; result in [0, divisor). *)

(** {1 Smart constructors (constant folding)} *)

val const : int -> t
val var : Var.t -> t
val zero : t
val one : t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val mod_ : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val sum : t list -> t

(** {1 Traversals and evaluation} *)

val vars : t -> Var.Set.t
val subst : (Var.t -> t option) -> t -> t
val subst_var : Var.t -> t -> t -> t
val eval : (Var.t -> int) -> t -> int
val pp : t Fmt.t
val to_string : t -> string

(** {1 Simplification} *)

val simplify : ?bounds:bounds -> t -> t
(** Normalizes to a sorted linear combination over div/mod atoms, using
    interval analysis to discharge divisions and modulos; e.g.
    [(ho*ht + hi) / ht] simplifies to [ho] when [0 <= hi < ht]. *)

val equal : ?bounds:bounds -> t -> t -> bool
(** Structural equality of normal forms. *)

val range : ?bounds:bounds -> t -> (int * int) option
(** Inclusive value range, if derivable. *)

val is_const : t -> bool
val to_const_opt : t -> int option

val coeff_of : ?bounds:bounds -> t -> Var.t -> int option
(** Coefficient of a variable when the expression is affine in it at top
    level ([None] if the variable occurs under div/mod/min/max or a
    non-affine residue).  Recognizes sliding-window patterns [V*i + r]. *)

val drop_var : ?bounds:bounds -> t -> Var.t -> t option
(** [drop_var e v] is [e - coeff*v] simplified, when [coeff_of] succeeds. *)
