(** Concrete tensor storage: a float array row-major over a layout's
    physical shape. *)

type t = { layout : Layout.t; data : float array }

val create : Layout.t -> t
(** Zero-initialized physical buffer. *)

val of_logical : Layout.t -> float array -> t
(** Packs logical row-major data through the layout. *)

val to_logical : t -> float array
(** Unpacks back to logical row-major data. *)

val layout : t -> Layout.t
val data : t -> float array
val logical_shape : t -> Shape.t
val physical_shape : t -> Shape.t

val random : ?seed:int -> Shape.t -> float array
(** Deterministic pseudo-random logical data in [-1, 1). *)

val iota : Shape.t -> float array
(** 0., 1., 2., ... — useful in layout round-trip tests. *)

val max_abs_diff : float array -> float array -> float
val allclose : ?tol:float -> float array -> float array -> bool
