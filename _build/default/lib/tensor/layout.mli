(** Data layout state and layout primitives (paper Section 4.1).

    A layout records a tensor's logical shape plus a cached sequence of
    primitives.  Basic primitives ([split]/[reorder]/[fuse], Table 1)
    perform one-to-one transformations; advanced primitives ([unfold] for
    overlapped tiling and [pad] for alignment, Section 4.1.2) may expand
    data.  [store_at] couples two tensors and lives at the graph level
    ({!Alt_graph.Placement}).  Physical buffers are row-major over
    [physical_shape]. *)

exception Layout_error of string

type prim =
  | Split of { dim : int; factors : int list }
  | Reorder of int array
  | Fuse of { dim : int; count : int }
  | Unfold of { dim : int; tile : int; stride : int }
  | Pad of { dim : int; lo : int; hi : int }

type t

val create : Shape.t -> t
(** Identity layout of a logical shape. *)

val logical_shape : t -> Shape.t
val physical_shape : t -> Shape.t
val prims : t -> prim list
val is_trivial : t -> bool

val has_advanced : t -> bool
(** True if the primitive sequence contains [unfold] or [pad] — the
    "non-trivial advanced primitives" test of Algorithm 1. *)

val invertible : t -> bool
(** True if the logical->physical index map is a bijection (no advanced
    primitives); required of output-tensor layouts. *)

val apply : t -> prim -> t

val split : t -> dim:int -> factors:int list -> t
(** Factors must multiply to the current extent of [dim]. *)

val reorder : t -> int array -> t
(** [reorder t perm]: new dim [i] is old dim [perm.(i)]. *)

val fuse : t -> dim:int -> count:int -> t
val unfold : t -> dim:int -> tile:int -> stride:int -> t
val pad : t -> dim:int -> lo:int -> hi:int -> t

val equal : t -> t -> bool
val pp : t Fmt.t
val pp_prim : prim Fmt.t

type window = Var.t -> int option
(** Maps sliding-window variables (e.g. a convolution's output spatial
    iterators) to their constant stride V; used by the unfold rewrite. *)

val no_window : window

val forward_exprs :
  ?bounds:Ixexpr.bounds -> ?window:window -> t -> Ixexpr.t array ->
  Ixexpr.t array
(** Rewrites logical access expressions to physical ones (Table 1); for
    [unfold] the access must have the sliding form [V*i + r] with window
    variable [i] (Eq. (1)).  Raises {!Layout_error} otherwise. *)

val inverse_exprs : ?bounds:Ixexpr.bounds -> t -> Ixexpr.t array -> Ixexpr.t array
(** Physical index expressions -> logical; requires [invertible].  This is
    the S_Y^{-1} used when reconstructing a producer's loop nest. *)

val logical_of_physical :
  ?bounds:Ixexpr.bounds -> t -> Ixexpr.t array ->
  Ixexpr.t array * (Ixexpr.t * int) list
(** Physical index expressions -> logical, total even for [unfold] and
    [pad]; also returns in-bounds conditions [(expr, extent)] meaning
    [0 <= expr < extent] that guard padded / overhanging positions.  Used to
    generate conversion-operator programs. *)

val eval_fwd : t -> int array -> int array
(** Concrete logical index -> physical index; rejects layouts with
    [unfold] (one-to-many). *)

val pack : t -> float array -> float array
(** Materializes the physical buffer from logical row-major data (zero
    fills padding; duplicates overlapped tiles). *)

val unpack : t -> float array -> float array
(** Recovers logical row-major data from a physical buffer. *)

val num_physical_elements : t -> int

val expansion_ratio : t -> float
(** Physical elements / logical elements (>= 1; > 1 for unfold and pad). *)

val of_prims : Shape.t -> prim list -> t
(** Replays a primitive sequence onto a fresh layout of [shape] (validated
    step by step) — used by layout propagation to copy a source tensor's
    primitives onto a same-shaped tensor. *)
