(* Lowered tensor programs: explicit loop nests over physical buffers.

   A program is what the transformation module hands to the machine
   simulator: a loop nest whose accesses are physical index expressions
   into a table of tensor slots.  Loop kinds carry the scheduling
   annotations (parallel / vectorized / unrolled) that the machine model
   interprets. *)

module Shape = Alt_tensor.Shape
module Var = Alt_tensor.Var
module Ixexpr = Alt_tensor.Ixexpr
module Layout = Alt_tensor.Layout

type loop_kind = Serial | Parallel | Vectorized | Unrolled

type loop = { v : Var.t; extent : int; kind : loop_kind }

type access = { slot : int; idx : Ixexpr.t array }

type pexpr =
  | Pload of access
  | Pconst of float
  | Pbin of Sexpr.binop * pexpr * pexpr
  | Pun of Sexpr.unop * pexpr
  | Pselect of Sexpr.cond * pexpr * pexpr

type reducer = Rsum | Rmax

type stmt =
  | For of loop * stmt
  | Block of stmt list
  | Store of access * pexpr
  | Reduce of access * reducer * pexpr

type role = Input | Output | Temp

type slot = { sname : string; layout : Layout.t; role : role }

type t = { pname : string; body : stmt; slots : slot array; flops : int }

let slot_index t name =
  let rec find i =
    if i >= Array.length t.slots then
      invalid_arg (Fmt.str "Program.slot_index: no slot %s" name)
    else if t.slots.(i).sname = name then i
    else find (i + 1)
  in
  find 0

let rec iter_stmt f s =
  f s;
  match s with
  | For (_, b) -> iter_stmt f b
  | Block l -> List.iter (iter_stmt f) l
  | Store _ | Reduce _ -> ()

let loops t =
  let acc = ref [] in
  iter_stmt (function For (l, _) -> acc := l :: !acc | _ -> ()) t.body;
  List.rev !acc

let rec expr_accesses = function
  | Pload a -> [ a ]
  | Pconst _ -> []
  | Pbin (_, a, b) -> expr_accesses a @ expr_accesses b
  | Pun (_, a) -> expr_accesses a
  | Pselect (_, a, b) -> expr_accesses a @ expr_accesses b

(* All (read, write) accesses in the program. *)
let accesses t =
  let reads = ref [] and writes = ref [] in
  iter_stmt
    (function
      | Store (a, e) ->
          writes := a :: !writes;
          reads := expr_accesses e @ !reads
      | Reduce (a, _, e) ->
          writes := a :: !writes;
          reads := (a :: expr_accesses e) @ !reads
      | For _ | Block _ -> ())
    t.body;
  (List.rev !reads, List.rev !writes)

(* Total number of innermost statement executions. *)
let rec points_of_stmt = function
  | For (l, b) -> l.extent * points_of_stmt b
  | Block l -> List.fold_left (fun a s -> a + points_of_stmt s) 0 l
  | Store _ | Reduce _ -> 1

let points t = points_of_stmt t.body

let pp_kind ppf = function
  | Serial -> ()
  | Parallel -> Fmt.string ppf " parallel"
  | Vectorized -> Fmt.string ppf " vectorize"
  | Unrolled -> Fmt.string ppf " unroll"

let rec pp_pexpr slots ppf = function
  | Pload a -> pp_access slots ppf a
  | Pconst f -> Fmt.float ppf f
  | Pbin (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" (pp_pexpr slots) a Sexpr.pp_binop op
        (pp_pexpr slots) b
  | Pun (op, a) -> Fmt.pf ppf "%a(%a)" Sexpr.pp_unop op (pp_pexpr slots) a
  | Pselect (c, a, b) ->
      Fmt.pf ppf "select(%a, %a, %a)" Sexpr.pp_cond c (pp_pexpr slots) a
        (pp_pexpr slots) b

and pp_access slots ppf a =
  Fmt.pf ppf "%s[%a]"
    (slots.(a.slot)).sname
    Fmt.(array ~sep:(any "][") Ixexpr.pp)
    a.idx

let rec pp_stmt slots indent ppf s =
  let pad = String.make indent ' ' in
  match s with
  | For (l, b) ->
      Fmt.pf ppf "%sfor %s in 0..%d%a:@." pad (Var.name l.v) l.extent pp_kind
        l.kind;
      pp_stmt slots (indent + 2) ppf b
  | Block lst -> List.iter (pp_stmt slots indent ppf) lst
  | Store (a, e) ->
      Fmt.pf ppf "%s%a = %a@." pad (pp_access slots) a (pp_pexpr slots) e
  | Reduce (a, r, e) ->
      let op = match r with Rsum -> "+=" | Rmax -> "max=" in
      Fmt.pf ppf "%s%a %s %a@." pad (pp_access slots) a op (pp_pexpr slots) e

let pp ppf t =
  Fmt.pf ppf "program %s (flops=%d):@." t.pname t.flops;
  Array.iteri
    (fun i s ->
      Fmt.pf ppf "  slot %d: %s %a (%s)@." i s.sname Shape.pp
        (Layout.physical_shape s.layout)
        (match s.role with Input -> "in" | Output -> "out" | Temp -> "tmp"))
    t.slots;
  pp_stmt t.slots 2 ppf t.body

let to_string t = Fmt.str "%a" pp t
