(* Operator compute definitions: an einsum-like description of one tensor
   operator, independent of data layouts and loop schedules.

   An operator produces one output tensor.  [spatial] has one iterator per
   logical output dimension; [reduce] lists reduction iterators with their
   extents; [body] is evaluated for every (spatial x reduce) point and
   combined with [combiner] ([`Assign] means a pure elementwise operator
   with no reduction).

   [window] annotates spatial iterators that participate in sliding-window
   accesses (e.g. the output height/width of a convolution) with their
   constant stride V — the information the unfold rewrite (Eq. (1)) needs.

   The [reference_eval] interpreter computes the operator naively over
   logical row-major buffers and serves as the correctness oracle for every
   layout/loop transformation in the test suite. *)

module Shape = Alt_tensor.Shape
module Var = Alt_tensor.Var
module Ixexpr = Alt_tensor.Ixexpr

type combiner = Sum | Max | Assign

(* Metadata the layout-template builder needs about a convolution-like
   operator: which output dim is the channel, which input-tensor dim holds
   input channels, which weight dims to tile, and the sliding-window
   geometry per spatial dimension. *)
type conv_spatial = {
  out_dim : int; (* output tensor dim *)
  inp_dim : int; (* input tensor dim *)
  kernel : int;
  stride : int;
  dilation : int;
}

type kind =
  | Simple
  | Conv of {
      inp : string;
      ker : string;
      out_channel_dim : int;
      inp_channel_dim : int;
      ker_out_dim : int;
      ker_in_dim : int option; (* None for depthwise weights *)
      spatials : conv_spatial list;
    }
  | Matmul of { a : string; b : string; batched : bool }

type t = {
  name : string;
  inputs : (string * Shape.t) list;
  out_name : string;
  out_shape : Shape.t;
  spatial : Var.t array;
  reduce : (Var.t * int) list;
  combiner : combiner;
  init : float;
  body : Sexpr.t;
  window : (Var.t * int) list;
  complex : bool;
      (* "complex operator" in the paper's sense: convolutions and GMM,
         whose tensors get layout tuning spaces (Section 5.1). *)
  kind : kind;
}

let validate t =
  if Array.length t.spatial <> Shape.rank t.out_shape then
    invalid_arg
      (Fmt.str "Opdef %s: %d spatial vars for rank-%d output" t.name
         (Array.length t.spatial) (Shape.rank t.out_shape));
  if t.combiner = Assign && t.reduce <> [] then
    invalid_arg (Fmt.str "Opdef %s: Assign operator with reductions" t.name);
  let known = List.map fst t.inputs in
  List.iter
    (fun (n, _) ->
      if not (List.mem n known) then
        invalid_arg (Fmt.str "Opdef %s: body reads unknown tensor %s" t.name n))
    (Sexpr.loads t.body)

let make ~name ~inputs ~out_name ~out_shape ~spatial ~reduce ~combiner ~init
    ~body ?(window = []) ?(complex = false) ?(kind = Simple) () =
  let t =
    {
      name;
      inputs;
      out_name;
      out_shape;
      spatial;
      reduce;
      combiner;
      init;
      body;
      window;
      complex;
      kind;
    }
  in
  validate t;
  t

let input_shape t name =
  match List.assoc_opt name t.inputs with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Opdef %s: unknown input %s" t.name name)

(* Inclusive bounds for all iterators of the operator. *)
let bounds t : Ixexpr.bounds =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i v -> Hashtbl.replace tbl (Var.id v) (0, t.out_shape.(i) - 1))
    t.spatial;
  List.iter (fun (v, e) -> Hashtbl.replace tbl (Var.id v) (0, e - 1)) t.reduce;
  fun v -> Hashtbl.find_opt tbl (Var.id v)

let window_fn t : Alt_tensor.Layout.window =
  fun v -> List.assoc_opt v (List.map (fun (w, s) -> (w, s)) t.window)

(* Arithmetic work per output point (for FLOP accounting). *)
let flops t =
  let per_point = Sexpr.arith_ops t.body in
  let acc = match t.combiner with Assign -> 0 | Sum | Max -> 1 in
  let red = List.fold_left (fun p (_, e) -> p * e) 1 t.reduce in
  Shape.num_elements t.out_shape * red * (per_point + acc)

let total_points t =
  let red = List.fold_left (fun p (_, e) -> p * e) 1 t.reduce in
  Shape.num_elements t.out_shape * red

(* Naive interpreter over logical row-major buffers. *)
let reference_eval t (inputs : (string * float array) list) : float array =
  List.iter
    (fun (n, s) ->
      match List.assoc_opt n inputs with
      | Some a when Array.length a = Shape.num_elements s -> ()
      | Some a ->
          invalid_arg
            (Fmt.str "reference_eval %s: input %s has %d elements, want %d"
               t.name n (Array.length a) (Shape.num_elements s))
      | None -> invalid_arg (Fmt.str "reference_eval %s: missing input %s" t.name n))
    t.inputs;
  let out = Array.make (Shape.num_elements t.out_shape) 0.0 in
  let env_tbl = Hashtbl.create 16 in
  let env v =
    match Hashtbl.find_opt env_tbl (Var.id v) with
    | Some x -> x
    | None -> invalid_arg (Fmt.str "reference_eval: unbound var %s" (Var.name v))
  in
  let lookup name idx env =
    let shape = input_shape t name in
    let data = List.assoc name inputs in
    let concrete = Array.map (Ixexpr.eval env) idx in
    data.(Shape.offset_of_index shape concrete)
  in
  let rank = Shape.rank t.out_shape in
  let sp_idx = Array.make rank 0 in
  let reduce = Array.of_list t.reduce in
  let nred = Array.length reduce in
  let rec spatial_loop d =
    if d = rank then begin
      let acc = ref (if t.combiner = Assign then 0.0 else t.init) in
      let rec reduce_loop j =
        if j = nred then begin
          let v = Sexpr.eval ~lookup env t.body in
          match t.combiner with
          | Assign -> acc := v
          | Sum -> acc := !acc +. v
          | Max -> acc := Float.max !acc v
        end
        else
          let rv, ext = reduce.(j) in
          for x = 0 to ext - 1 do
            Hashtbl.replace env_tbl (Var.id rv) x;
            reduce_loop (j + 1)
          done
      in
      reduce_loop 0;
      out.(Shape.offset_of_index t.out_shape sp_idx) <- !acc
    end
    else
      for x = 0 to t.out_shape.(d) - 1 do
        sp_idx.(d) <- x;
        Hashtbl.replace env_tbl (Var.id t.spatial.(d)) x;
        spatial_loop (d + 1)
      done
  in
  spatial_loop 0;
  out

let pp ppf t =
  Fmt.pf ppf "@[<v>op %s: %s%a = %s(...)@ spatial [%a]@ reduce [%a]@ body %a@]"
    t.name t.out_name Shape.pp t.out_shape t.name
    Fmt.(array ~sep:comma (using Var.name string))
    t.spatial
    Fmt.(list ~sep:comma (pair ~sep:(any ":") (using Var.name string) int))
    t.reduce Sexpr.pp t.body
