(* Loop schedules: the instantiation of TVM-style loop primitives that the
   lowering pass realizes (paper Section 4.3).

   A schedule is relative to a given output *physical* shape (the loop nest
   mirrors the output layout one-to-one, Section 6), so it is created from
   the operator and its output layout.  Knobs:

   - [sp_tiles.(d)]  inner tile extent for physical spatial dim [d]
     (a divisor; 1 = untouched) — realizes loop split + reorder into an
     outer band and an inner band;
   - [r_tiles.(j)]   split factor for reduction iterator [j];
   - [reduce_outer]  whether reduction loops wrap the inner spatial band
     (register-blocking style) or sit innermost with a scalar accumulator;
   - [vectorize]     vectorize the innermost spatial loop;
   - [parallel]      number of leading outer-band loops marked parallel;
   - [unroll]        mark the innermost reduction loop unrolled.

   The primitive-style functions ([split], [reorder_reduce_outer],
   [vectorize], [parallel], [unroll]) mirror the paper's schedule-language
   interface: each records a decision into the schedule state. *)

type t = {
  sp_tiles : int array;
  r_tiles : int array;
  reduce_outer : bool;
  vectorize : bool;
  parallel : int;
  unroll : bool;
}

let default ~rank ~nred =
  {
    sp_tiles = Array.make rank 1;
    r_tiles = Array.make nred 1;
    reduce_outer = false;
    vectorize = false;
    parallel = 0;
    unroll = false;
  }

let split t ~dim ~inner =
  let sp = Array.copy t.sp_tiles in
  sp.(dim) <- inner;
  { t with sp_tiles = sp }

let split_reduce t ~index ~inner =
  let r = Array.copy t.r_tiles in
  r.(index) <- inner;
  { t with r_tiles = r }

let reorder_reduce_outer t b = { t with reduce_outer = b }
let vectorize t = { t with vectorize = true }
let no_vectorize t = { t with vectorize = false }
let parallel t n = { t with parallel = n }
let unroll t = { t with unroll = true }

(* Clamp every factor to the nearest divisor of its extent, so schedules
   sampled from a continuous space are always legal. *)
let legalize t ~(phys : int array) ~(reduce_extents : int array) =
  let sp =
    Array.mapi
      (fun d f -> Alt_tensor.Shape.round_to_divisor phys.(d) (max 1 f))
      t.sp_tiles
  in
  let r =
    Array.mapi
      (fun j f -> Alt_tensor.Shape.round_to_divisor reduce_extents.(j) (max 1 f))
      t.r_tiles
  in
  {
    t with
    sp_tiles = sp;
    r_tiles = r;
    parallel = max 0 (min t.parallel (Array.length phys));
  }

let pp ppf t =
  Fmt.pf ppf
    "@[<h>tiles=[%a] rtiles=[%a] reduce_outer=%b vec=%b par=%d unroll=%b@]"
    Fmt.(array ~sep:comma int)
    t.sp_tiles
    Fmt.(array ~sep:comma int)
    t.r_tiles t.reduce_outer t.vectorize t.parallel t.unroll
