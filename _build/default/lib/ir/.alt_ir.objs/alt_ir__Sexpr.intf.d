lib/ir/sexpr.mli: Alt_tensor Fmt
