lib/ir/program.ml: Alt_tensor Array Fmt List Sexpr String
