lib/ir/opdef.mli: Alt_tensor Fmt Sexpr
