lib/ir/lower.ml: Alt_tensor Array Fmt Hashtbl List Opdef Option Program Schedule Sexpr
