lib/ir/opdef.ml: Alt_tensor Array Float Fmt Hashtbl List Sexpr
