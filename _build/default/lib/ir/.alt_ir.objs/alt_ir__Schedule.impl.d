lib/ir/schedule.ml: Alt_tensor Array Fmt
