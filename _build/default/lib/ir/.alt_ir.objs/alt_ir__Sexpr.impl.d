lib/ir/sexpr.ml: Alt_tensor Array Float Fmt
