lib/ir/schedule.mli: Fmt
