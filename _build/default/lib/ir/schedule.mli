(** Loop schedules: the instantiation of loop primitives (Section 4.3)
    realized by lowering.  A schedule is relative to the output tensor's
    physical shape, since the loop nest mirrors it one-to-one. *)

type t = {
  sp_tiles : int array;  (** inner tile extent per physical spatial dim *)
  r_tiles : int array;  (** split factor per reduction iterator *)
  reduce_outer : bool;
      (** reductions wrap the inner spatial band (register blocking)
          instead of sitting innermost with a scalar accumulator *)
  vectorize : bool;  (** vectorize the innermost spatial loop *)
  parallel : int;  (** leading outer loops marked parallel *)
  unroll : bool;  (** unroll the innermost reduction loop *)
}

val default : rank:int -> nred:int -> t

(** Primitive-style builders (each records a decision). *)

val split : t -> dim:int -> inner:int -> t
val split_reduce : t -> index:int -> inner:int -> t
val reorder_reduce_outer : t -> bool -> t
val vectorize : t -> t
val no_vectorize : t -> t
val parallel : t -> int -> t
val unroll : t -> t

val legalize : t -> phys:int array -> reduce_extents:int array -> t
(** Clamp every factor to the nearest divisor of its extent, so schedules
    sampled from a continuous space are always legal. *)

val pp : t Fmt.t
